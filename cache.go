package maskfrac

import (
	"context"
	"fmt"
	"time"

	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/telemetry"
)

// ShapeCache is a content-addressed cache of fracturing solutions.
// Solutions are keyed by a canonical form of the target polygon
// (translated to the origin and reduced over the eight axis-aligned
// symmetries) together with the parameters, method and options, so
// congruent repeated shapes — the dominant case on a real mask, where
// billions of polygons repeat a small dictionary — run the solver once
// per congruence class. It is safe for concurrent use and deduplicates
// in-flight solves of the same class.
//
// A hit returns the cached run's shot list mapped into the query's
// frame along with the cached evaluation (FailOn/FailOff/Cost) and
// timings. The mapped shots deliver a dose field exactly congruent to
// the cached one; see DESIGN.md ("Shape canonicalization and the cache
// key") for why the cached evaluation is reported instead of
// re-sampling it on the query grid.
type ShapeCache struct {
	c *shapecache.Cache
}

// NewShapeCache returns a cache bounded to maxEntries stored
// congruence classes; maxEntries <= 0 selects a default of 4096.
func NewShapeCache(maxEntries int) *ShapeCache {
	return &ShapeCache{c: shapecache.New(maxEntries)}
}

// CacheStats is a snapshot of the cache counters.
type CacheStats = shapecache.Stats

// Stats returns a snapshot of the hit/miss/eviction counters and size.
func (sc *ShapeCache) Stats() CacheStats { return sc.c.Stats() }

// ClassStat is a per-congruence-class frequency record: placement
// count, solved shot count and canonical bounding box. The stencil
// planner mines these.
type ClassStat = shapecache.ClassStat

// TopClasses returns the k highest-placement congruence classes seen by
// the cache (k <= 0 returns all tracked classes). The records survive
// LRU eviction of their entries.
func (sc *ShapeCache) TopClasses(k int) []ClassStat { return sc.c.TopClasses(k) }

// CacheKey identifies a congruence class in the shape cache.
type CacheKey = shapecache.Key

// AddClassUses credits the congruence class k with n extra placements
// without running a lookup. Batch clients that memoize congruent
// placements locally (the cluster pipeline's class memo) collapse many
// placements into one request, which would starve the stencil
// planner's frequency signal; they call this to report the collapsed
// multiplicity.
func (sc *ShapeCache) AddClassUses(k CacheKey, n uint64) { sc.c.AddClassUses(k, n) }

// CacheKeyFor returns the key FractureCached files the query under:
// the canonical form of target hashed together with the parameters,
// method and options. Callers crediting class statistics out of band
// (AddClassUses) use it to address the same record the solve created.
func CacheKeyFor(target Polygon, params Params, m Method, opt *Options) (CacheKey, error) {
	if err := target.Validate(); err != nil {
		return CacheKey{}, fmt.Errorf("maskfrac: invalid target: %w", err)
	}
	return shapecache.Canonicalize(target).KeyWith(fractureKeyExtra(params, m, opt)), nil
}

// cachedSolution is the per-entry metadata stored next to the
// canonical-frame shot list.
type cachedSolution struct {
	FailOn   int
	FailOff  int
	Cost     float64
	Runtime  time.Duration
	EvalTime time.Duration
	Stage    *StageInfo
	// Pairs are the run's L-shot pairs as indices into the shot list.
	// ToCanonical/FromCanonical preserve element order, so the indices
	// are valid in both the canonical and the query frame.
	Pairs [][2]int
}

// FractureCached samples and fractures one target, consulting the
// cache first when it is non-nil. It returns the result, whether it was
// served from the cache (or an in-flight solve of a congruent shape),
// and any error. A nil cache always runs the solver. The context is
// checked before solving; cancellation while waiting on a concurrent
// solve of the same congruence class returns ctx.Err().
func FractureCached(ctx context.Context, target Polygon, params Params, m Method, opt *Options, cache *ShapeCache) (*Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if cache == nil {
		res, err := fractureDirect(ctx, target, params, m, opt)
		return res, false, err
	}
	if err := target.Validate(); err != nil {
		return nil, false, fmt.Errorf("maskfrac: invalid target: %w", err)
	}
	canon := shapecache.Canonicalize(target)
	key := canon.KeyWith(fractureKeyExtra(params, m, opt))
	var computed *Result
	entry, hit, err := cache.c.Do(ctx, key, func() (*shapecache.Entry, error) {
		res, err := fractureDirect(ctx, target, params, m, opt)
		if err != nil {
			return nil, err
		}
		computed = res
		sol := &cachedSolution{
			FailOn:   res.FailOn,
			FailOff:  res.FailOff,
			Cost:     res.Cost,
			Runtime:  res.Runtime,
			EvalTime: res.EvalTime,
			Stage:    res.Stage,
			Pairs:    res.LPairs,
		}
		return &shapecache.Entry{
			Shots: canon.ToCanonical(res.Shots),
			Pairs: res.LPairs,
			Meta:  sol,
			Bytes: entryBytes(len(res.Shots), len(res.LPairs)),
		}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit && computed != nil {
		// this call ran the solver: return its result untouched
		return computed, false, nil
	}
	sol := entry.Meta.(*cachedSolution)
	res := &Result{
		Method:   m,
		Shots:    canon.FromCanonical(entry.Shots),
		LPairs:   sol.Pairs,
		FailOn:   sol.FailOn,
		FailOff:  sol.FailOff,
		Cost:     sol.Cost,
		Runtime:  sol.Runtime,
		EvalTime: sol.EvalTime,
	}
	if sol.Stage != nil {
		st := *sol.Stage
		res.Stage = &st
	}
	return res, true, nil
}

// fractureDirect is the uncached sample-and-solve path.
func fractureDirect(ctx context.Context, target Polygon, params Params, m Method, opt *Options) (*Result, error) {
	_, span := telemetry.StartSpan(ctx, "sample")
	prob, err := NewProblem(target, params)
	if err != nil {
		span.End()
		return nil, err
	}
	on, off := prob.PixelCounts()
	span.Set("pixels_on", on)
	span.Set("pixels_off", off)
	span.End()
	return prob.FractureCtx(ctx, m, opt)
}

// fractureKeyExtra serializes everything besides the shape that can
// change a solution: parameters, method and options.
func fractureKeyExtra(params Params, m Method, opt *Options) []byte {
	buf := make([]byte, 0, 96)
	for _, v := range []float64{params.Sigma, params.Gamma, params.Rho, params.Pitch, params.Lmin, params.Beta, params.Eta} {
		buf = maskio.AppendFloat64(buf, v)
	}
	buf = append(buf, 0)
	buf = append(buf, m...)
	buf = append(buf, 0)
	if opt != nil {
		buf = maskio.AppendFloat64(buf, float64(opt.MaxIterations))
		order := opt.ColoringOrder
		if order == "" {
			order = "sequential"
		}
		buf = append(buf, order...)
		buf = append(buf, 0)
		if opt.SkipRefinement {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	} else {
		buf = maskio.AppendFloat64(buf, 0)
		buf = append(buf, "sequential"...)
		buf = append(buf, 0, 0)
	}
	return buf
}

// entryBytes estimates the memory footprint of a cache entry.
func entryBytes(shots, pairs int) int64 {
	const overhead = 160 // key, metadata struct, list/map bookkeeping
	return int64(shots)*32 + int64(pairs)*16 + overhead
}
