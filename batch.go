package maskfrac

import (
	"fmt"
	"runtime"
	"sync"
)

// BatchItem is the outcome of fracturing one shape in a batch.
type BatchItem struct {
	Index  int
	Result *Result
	Err    error
}

// FractureBatch fractures many target shapes concurrently with the
// given method. A full mask contains billions of polygons and each
// shape is fractured independently (paper §2), so the mask data prep
// flow is embarrassingly parallel; workers ≤ 0 selects GOMAXPROCS.
// Results are returned in input order. Shapes that fail to sample or
// fracture carry their error in the corresponding item.
func FractureBatch(targets []Polygon, params Params, m Method, opt *Options, workers int) []BatchItem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	items := make([]BatchItem, len(targets))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				items[idx] = fractureOne(idx, targets[idx], params, m, opt)
			}
		}()
	}
	for i := range targets {
		work <- i
	}
	close(work)
	wg.Wait()
	return items
}

// fractureOne samples and fractures a single shape, capturing errors.
func fractureOne(idx int, target Polygon, params Params, m Method, opt *Options) BatchItem {
	prob, err := NewProblem(target, params)
	if err != nil {
		return BatchItem{Index: idx, Err: fmt.Errorf("maskfrac: shape %d: %w", idx, err)}
	}
	res, err := prob.Fracture(m, opt)
	if err != nil {
		return BatchItem{Index: idx, Err: fmt.Errorf("maskfrac: shape %d: %w", idx, err)}
	}
	return BatchItem{Index: idx, Result: res}
}

// BatchSummary aggregates a batch run.
type BatchSummary struct {
	Shapes   int
	Errors   int
	Shots    int
	Failing  int
	Feasible int // shapes with zero failing pixels
}

// Summarize folds batch items into totals.
func Summarize(items []BatchItem) BatchSummary {
	var s BatchSummary
	s.Shapes = len(items)
	for _, it := range items {
		if it.Err != nil {
			s.Errors++
			continue
		}
		s.Shots += it.Result.ShotCount()
		s.Failing += it.Result.FailingPixels()
		if it.Result.Feasible() {
			s.Feasible++
		}
	}
	return s
}
