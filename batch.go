package maskfrac

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"maskfrac/internal/fracture/engine"
)

// BatchItem is the outcome of fracturing one shape in a batch.
type BatchItem struct {
	Index    int
	Result   *Result
	Err      error
	CacheHit bool // the result came from the shape cache
}

// FractureBatch fractures many target shapes concurrently with the
// given method. A full mask contains billions of polygons and each
// shape is fractured independently (paper §2), so the mask data prep
// flow is embarrassingly parallel; workers ≤ 0 selects GOMAXPROCS.
// Results are returned in input order. Shapes that fail to sample or
// fracture carry their error in the corresponding item.
func FractureBatch(targets []Polygon, params Params, m Method, opt *Options, workers int) []BatchItem {
	return FractureBatchCached(context.Background(), targets, params, m, opt, workers, nil)
}

// FractureBatchCtx is FractureBatch with cancellation: when ctx is
// cancelled, no further shapes are dispatched and every undone item
// carries ctx.Err(). Shapes already being solved run to completion.
func FractureBatchCtx(ctx context.Context, targets []Polygon, params Params, m Method, opt *Options, workers int) []BatchItem {
	return FractureBatchCached(ctx, targets, params, m, opt, workers, nil)
}

// FractureBatchCached is FractureBatchCtx with an optional shape cache
// in front of the solver: congruent repeated shapes run the solver once
// per congruence class and items served from the cache set CacheHit.
// A nil cache solves every shape.
func FractureBatchCached(ctx context.Context, targets []Polygon, params Params, m Method, opt *Options, workers int, cache *ShapeCache) []BatchItem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spawn := workers
	if spawn > len(targets) {
		spawn = len(targets)
	}
	// batch-level and region-level concurrency share one bounded pool:
	// worker slots the batch does not need (more workers than shapes)
	// become extra tokens the engine's region solves may claim, so a
	// batch of one huge multi-SRAF instance still parallelizes while a
	// full batch never oversubscribes the worker budget
	if engine.PoolFrom(ctx) == nil {
		ctx = engine.WithPool(ctx, engine.NewPool(workers-spawn))
	}
	workers = spawn
	items := make([]BatchItem, len(targets))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				if err := ctx.Err(); err != nil {
					items[idx] = BatchItem{Index: idx, Err: err}
					continue
				}
				items[idx] = fractureOne(ctx, idx, targets[idx], params, m, opt, cache)
			}
		}()
	}
dispatch:
	for i := range targets {
		select {
		case work <- i:
		case <-ctx.Done():
			for j := i; j < len(targets); j++ {
				items[j] = BatchItem{Index: j, Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return items
}

// fractureOne samples and fractures a single shape, capturing errors.
func fractureOne(ctx context.Context, idx int, target Polygon, params Params, m Method, opt *Options, cache *ShapeCache) BatchItem {
	res, hit, err := FractureCached(ctx, target, params, m, opt, cache)
	if err != nil {
		return BatchItem{Index: idx, Err: fmt.Errorf("maskfrac: shape %d: %w", idx, err)}
	}
	return BatchItem{Index: idx, Result: res, CacheHit: hit}
}

// BatchSummary aggregates a batch run.
type BatchSummary struct {
	Shapes    int
	Errors    int
	Shots     int
	Failing   int
	Feasible  int // shapes with zero failing pixels
	CacheHits int // shapes served from the shape cache
}

// Summarize folds batch items into totals.
func Summarize(items []BatchItem) BatchSummary {
	var s BatchSummary
	s.Shapes = len(items)
	for _, it := range items {
		if it.Err != nil {
			s.Errors++
			continue
		}
		if it.CacheHit {
			s.CacheHits++
		}
		s.Shots += it.Result.ShotCount()
		s.Failing += it.Result.FailingPixels()
		if it.Result.Feasible() {
			s.Feasible++
		}
	}
	return s
}
