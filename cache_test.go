package maskfrac

import (
	"context"
	"testing"
)

// congruence helpers for cache tests

func translated(pg Polygon, dx, dy float64) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = Point{X: p.X + dx, Y: p.Y + dy}
	}
	return out
}

func rotated90(pg Polygon) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = Point{X: -p.Y, Y: p.X}
	}
	return out
}

func mirrored(pg Polygon) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = Point{X: -p.X, Y: p.Y}
	}
	return out
}

// asymmetricL returns a polygon with no self-symmetry.
func asymmetricL() Polygon {
	return Polygon{
		{X: 0, Y: 0}, {X: 90, Y: 0}, {X: 90, Y: 30},
		{X: 30, Y: 30}, {X: 30, Y: 120}, {X: 0, Y: 120},
	}
}

func TestFractureCachedCongruentShapesSolveOnce(t *testing.T) {
	base := asymmetricL()
	queries := []Polygon{
		base,
		translated(base, 250, -75),
		rotated90(base),
		translated(rotated90(base), -31, 17),
		mirrored(base),
	}
	cache := NewShapeCache(64)
	params := DefaultParams()
	var first *Result
	for i, q := range queries {
		res, hit, err := FractureCached(context.Background(), q, params, MethodProtoEDA, nil, cache)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if (i == 0) == hit {
			t.Errorf("query %d: hit = %v", i, hit)
		}
		if first == nil {
			first = res
			continue
		}
		// congruent queries report identical evaluation and shot count
		if res.ShotCount() != first.ShotCount() {
			t.Errorf("query %d: %d shots, want %d", i, res.ShotCount(), first.ShotCount())
		}
		if res.Feasible() != first.Feasible() || res.FailOn != first.FailOn || res.FailOff != first.FailOff {
			t.Errorf("query %d: eval %d/%d, want %d/%d", i, res.FailOn, res.FailOff, first.FailOn, first.FailOff)
		}
		// returned shots live in the query's frame
		qb := q.Bounds()
		for _, s := range res.Shots {
			if !qb.ContainsRect(Shot(s)) && !qb.Overlaps(Shot(s)) {
				t.Errorf("query %d: shot %v outside query frame %v", i, s, qb)
			}
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats = %+v, want 1 miss / 4 hits", st)
	}
}

// TestFractureCachedLPairsRoundTrip: L-shot pairs stored on a miss come
// back on every congruent hit, with indices valid for the frame-mapped
// shot list (canonicalization preserves shot order).
func TestFractureCachedLPairsRoundTrip(t *testing.T) {
	base := asymmetricL()
	cache := NewShapeCache(64)
	params := DefaultParams()
	miss, hit0, err := FractureCached(context.Background(), base, params, MethodMBFL, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if hit0 {
		t.Fatal("first query hit an empty cache")
	}
	if len(miss.LPairs) == 0 {
		t.Fatal("no L-pairs on an L-shaped target")
	}
	for i, q := range []Polygon{translated(base, 500, 500), rotated90(base), mirrored(base)} {
		res, hit, err := FractureCached(context.Background(), q, params, MethodMBFL, nil, cache)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !hit {
			t.Fatalf("query %d: congruent shape missed", i)
		}
		if len(res.LPairs) != len(miss.LPairs) {
			t.Fatalf("query %d: %d pairs, want %d", i, len(res.LPairs), len(miss.LPairs))
		}
		checkLPairs(t, res)
		if res.FlashCount() != miss.FlashCount() {
			t.Errorf("query %d: flashes %d, want %d", i, res.FlashCount(), miss.FlashCount())
		}
	}
}

func TestFractureCachedMatchesUncachedOnTranslations(t *testing.T) {
	// the solver is exactly translation-invariant (the grid anchors to
	// the shape's bounding box), so cached results for translated
	// duplicates must agree with solving each copy from scratch
	base := asymmetricL()
	targets := []Polygon{
		base,
		translated(base, 1000, 0),
		translated(base, -40, 260.5),
		translated(base, 0.25, -3.75),
	}
	params := DefaultParams()
	cached := FractureBatchCached(context.Background(), targets, params, MethodProtoEDA, nil, 2, NewShapeCache(16))
	plain := FractureBatch(targets, params, MethodProtoEDA, nil, 2)
	for i := range targets {
		c, p := cached[i], plain[i]
		if c.Err != nil || p.Err != nil {
			t.Fatalf("shape %d: cached err %v, plain err %v", i, c.Err, p.Err)
		}
		if c.Result.FailOn != p.Result.FailOn || c.Result.FailOff != p.Result.FailOff {
			t.Errorf("shape %d: cached eval %d/%d, plain %d/%d",
				i, c.Result.FailOn, c.Result.FailOff, p.Result.FailOn, p.Result.FailOff)
		}
		if c.Result.ShotCount() != p.Result.ShotCount() {
			t.Errorf("shape %d: cached %d shots, plain %d", i, c.Result.ShotCount(), p.Result.ShotCount())
		}
	}
	// in-flight dedup guarantees exactly one solver run even with
	// concurrent workers, so three of the four items are cache hits
	s := Summarize(cached)
	if s.Errors != 0 || s.CacheHits != 3 {
		t.Errorf("summary = %+v, want 3 cache hits", s)
	}
}

func TestFractureCachedNilCache(t *testing.T) {
	res, hit, err := FractureCached(context.Background(), square(70), DefaultParams(), MethodGSC, nil, nil)
	if err != nil || hit {
		t.Fatalf("res err=%v hit=%v", err, hit)
	}
	if res.ShotCount() == 0 {
		t.Error("no shots")
	}
}

func TestFractureCachedDistinctOptionsMiss(t *testing.T) {
	cache := NewShapeCache(16)
	ctx := context.Background()
	target := asymmetricL()
	if _, hit, err := FractureCached(ctx, target, DefaultParams(), MethodMBF, &Options{SkipRefinement: true}, cache); err != nil || hit {
		t.Fatalf("first: hit=%v err=%v", hit, err)
	}
	// same method, different options: must not share the entry
	if _, hit, err := FractureCached(ctx, target, DefaultParams(), MethodMBF, &Options{SkipRefinement: true, MaxIterations: 1}, cache); err != nil || hit {
		t.Fatalf("different options hit the cache: hit=%v err=%v", hit, err)
	}
	// nil options and the zero Options are the same configuration
	if _, hit, err := FractureCached(ctx, target, DefaultParams(), MethodProtoEDA, nil, cache); err != nil || hit {
		t.Fatalf("proto-eda first: hit=%v err=%v", hit, err)
	}
	if _, hit, err := FractureCached(ctx, target, DefaultParams(), MethodProtoEDA, &Options{}, cache); err != nil || !hit {
		t.Fatalf("zero options missed: hit=%v err=%v", hit, err)
	}
	// different params: miss
	p2 := DefaultParams()
	p2.Gamma = 3
	if _, hit, err := FractureCached(ctx, target, p2, MethodProtoEDA, nil, cache); err != nil || hit {
		t.Fatalf("different params hit the cache: hit=%v err=%v", hit, err)
	}
}

func TestFractureCachedError(t *testing.T) {
	cache := NewShapeCache(16)
	bad := Polygon{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if _, _, err := FractureCached(context.Background(), bad, DefaultParams(), MethodGSC, nil, cache); err == nil {
		t.Error("degenerate polygon produced no error")
	}
	if _, _, err := FractureCached(context.Background(), square(60), DefaultParams(), Method("nope"), nil, cache); err == nil {
		t.Error("unknown method produced no error")
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("errors were cached: %+v", st)
	}
}

func TestResultRuntimeSplitsSolverAndEval(t *testing.T) {
	prob, err := NewProblem(square(80), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Fracture(MethodGSC, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Error("solver runtime not recorded")
	}
	if res.EvalTime <= 0 {
		t.Error("evaluation time not recorded")
	}
}
