// loadgen replays full-mask traffic against a locally spawned fracd
// cluster and reports what the cluster is for: latency percentiles,
// shot throughput, and per-node cache-hit rate.
//
// It spawns -nodes in-process fracd servers, routes every placement of
// the input layout (a hierarchical GDSII from -gds, or the synthetic
// shapegen full-mask demo) through the internal/cluster router, and
// scrapes each node's /stats when the replay drains. Unlike the
// pipeline driver, loadgen deliberately skips run-level class
// memoization: every placement becomes a wire request, the way a fleet
// of independent prep jobs would hit a shared cluster, so repeated
// congruence classes land as node cache hits and the measured hit rate
// is the real one.
//
// Soak mode (-soak) holds the cluster at a steady -qps for -duration
// with a token-bucket pacer and reports a rolling time series instead
// of a single aggregate: one row per -window with hit rate, p50/p99,
// shots/s, retry/hedge/failover deltas and per-node balance, an SLO
// verdict (p99 under -slo-p99 in at least 95% of windows), and at
// least one complete cross-node trace waterfall captured by tracing
// every -trace-every'th request. The run ends with the same /clusterz
// control-plane table that fracd -peers serves.
//
// After a soak the report always ends with the projected
// character-projection savings: the per-class placement statistics the
// node caches accumulated are mined (cluster TopClasses), a stencil is
// planned for them, and the write-time reduction it would buy is
// printed. -plan does the same after a replay, and in both modes adds
// the full per-class plan table plus a stencil_plan JSON field.
//
// Usage:
//
//	loadgen -nodes 3 -method proto-eda -cols 8 -rows 8 -json BENCH.json
//	loadgen -gds mask.gds -method mbf
//	loadgen -nodes 3 -cols 4 -rows 4 -plan -plan-slots 8
//	loadgen -soak -nodes 3 -qps 150 -duration 60s -json BENCH-soak.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"maskfrac/internal/cluster"
	"maskfrac/internal/fracserve"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/shapegen"
	"maskfrac/internal/stencil"
	"maskfrac/internal/writecost"
)

type nodeReport struct {
	ID        string  `json:"id"`
	Requests  uint64  `json:"requests"`
	CacheHits uint64  `json:"cache_hits"`
	CacheMiss uint64  `json:"cache_misses"`
	HitRate   float64 `json:"hit_rate"`
}

type report struct {
	Date       string  `json:"date"`
	Input      string  `json:"input"`
	Method     string  `json:"method"`
	Nodes      int     `json:"nodes"`
	Placements int64   `json:"placements"`
	Classes    int     `json:"classes"`
	ElapsedSec float64 `json:"elapsed_sec"`

	LatencyMS struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`

	PlacementsPerSec float64 `json:"placements_per_sec"`
	ShotsPerSec      float64 `json:"shots_per_sec"`
	TotalShots       int64   `json:"total_shots"`
	EstWriteTimeSec  float64 `json:"est_write_time_sec"`

	ClusterHitRate float64      `json:"cluster_cache_hit_rate"`
	NodeReports    []nodeReport `json:"nodes_detail"`

	Retries     float64 `json:"retries"`
	Hedges      float64 `json:"hedges"`
	Failovers   float64 `json:"failovers"`
	Coalesced   float64 `json:"client_singleflight_dedup"`
	RingChanges uint64  `json:"ring_rebalances"`

	StencilPlan *stencil.Plan `json:"stencil_plan,omitempty"`
}

func main() {
	nodes := flag.Int("nodes", 3, "fracd nodes to spawn")
	gds := flag.String("gds", "", "hierarchical GDSII input (default: synthetic demo layout)")
	cols := flag.Int("cols", 8, "synthetic layout tile columns")
	rows := flag.Int("rows", 8, "synthetic layout tile rows")
	method := flag.String("method", "proto-eda", "fracturing method")
	concurrency := flag.Int("concurrency", 16, "concurrent placement requests")
	inflight := flag.Int("max-inflight", 8, "per-node in-flight cap (back-pressure)")
	hedge := flag.Duration("hedge", 0, "tail-hedge delay (0 disables)")
	workers := flag.Int("node-workers", 4, "solver workers per node")
	jsonOut := flag.String("json", "", "write the report as JSON to this path")
	soak := flag.Bool("soak", false, "soak mode: hold -qps for -duration and report a time series")
	qps := flag.Float64("qps", 50, "soak target request rate")
	duration := flag.Duration("duration", time.Minute, "soak run length")
	window := flag.Duration("window", 10*time.Second, "soak time-series bucket")
	sloP99 := flag.Duration("slo-p99", 500*time.Millisecond, "soak SLO: per-window p99 objective (0 disables)")
	traceEvery := flag.Int("trace-every", 64, "soak: trace request 0 and every Nth after (0 disables)")
	plan := flag.Bool("plan", false, "after the run, mine the cluster and print a character-projection stencil plan")
	planSlots := flag.Int("plan-slots", 0, "stencil character slot budget (0 = model default)")
	planLoad := flag.Float64("plan-load-ms", 0, "stencil load overhead in ms (-1 = model default; default 0 suits short runs)")
	flag.Parse()

	lib, input, err := loadLibrary(*gds, *cols, *rows)
	if err != nil {
		log.Fatal(err)
	}
	placements, err := lib.PlacementCount()
	if err != nil {
		log.Fatal(err)
	}

	cl, shutdown, err := spawnCluster(*nodes, cluster.Config{
		Method:      *method,
		MaxInflight: *inflight,
		HedgeDelay:  *hedge,
		Fallbacks:   2,
	}, *workers)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()

	var out any
	if *soak {
		fmt.Printf("soaking %d placements (%s) against %d nodes at %.0f qps for %v, method %s\n",
			placements, input, *nodes, *qps, *duration, *method)
		srep, err := runSoak(context.Background(), cl, lib, soakOptions{
			QPS:         *qps,
			Duration:    *duration,
			Window:      *window,
			Concurrency: *concurrency,
			Method:      *method,
			SLOP99:      *sloP99,
			TraceEvery:  *traceEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		srep.Date = time.Now().UTC().Format("2006-01-02")
		srep.Input = input
		srep.Method = *method
		srep.Nodes = *nodes
		printSoakReport(srep)
		// every soak ends with the projected CP savings the observed
		// class traffic would buy
		p, err := minePlan(context.Background(), cl, *planSlots, *planLoad)
		if err != nil {
			log.Printf("stencil mine failed: %v", err)
		} else {
			srep.StencilPlan = p
			printPlanSummary(p)
			if *plan {
				p.WriteReport(os.Stdout)
			}
		}
		printClusterz(context.Background(), cl)
		out = srep
	} else {
		fmt.Printf("replaying %d placements (%s) against %d nodes, method %s, concurrency %d\n",
			placements, input, *nodes, *method, *concurrency)
		rep, err := replay(context.Background(), cl, lib, *method, *concurrency)
		if err != nil {
			log.Fatal(err)
		}
		rep.Date = time.Now().UTC().Format("2006-01-02")
		rep.Input = input
		rep.Method = *method
		rep.Nodes = *nodes
		printReport(rep)
		if *plan {
			p, err := minePlan(context.Background(), cl, *planSlots, *planLoad)
			if err != nil {
				log.Fatalf("stencil mine failed: %v", err)
			}
			rep.StencilPlan = p
			printPlanSummary(p)
			p.WriteReport(os.Stdout)
		}
		out = rep
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreport written to %s\n", *jsonOut)
	}
}

// minePlan mines the cluster's congruence-class statistics and plans a
// character-projection stencil for them. loadMS < 0 keeps the model's
// default stencil load overhead; loadgen defaults it to 0 because a
// short replay's beam time never amortizes a production mount cost.
func minePlan(ctx context.Context, cl *cluster.Client, slots int, loadMS float64) (*stencil.Plan, error) {
	classes, err := cl.TopClasses(ctx, 0)
	if err != nil {
		return nil, err
	}
	m := writecost.Default()
	m.Overhead = 0 // price beam time only, like the replay report
	if slots > 0 {
		m.CPSlots = slots
	}
	if loadMS >= 0 {
		m.CPLoadOverhead = time.Duration(loadMS * float64(time.Millisecond))
	}
	return stencil.PlanCP(ctx, classes, m), nil
}

// printPlanSummary is the one-line projected-savings verdict.
func printPlanSummary(p *stencil.Plan) {
	r := p.Report
	fmt.Printf("\nprojected CP stencil savings: %d characters cover %d of %d placements, write %.1f%% faster (mask cost -%.3f%%)\n",
		len(p.Characters), r.CPPlacements, r.TotalPlacements,
		100*safeDiv(r.NetSavedMS, r.BaselineWriteMS), 100*r.CostReduction)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// printClusterz renders the /clusterz control-plane table after a soak,
// the same view fracd -peers serves over HTTP.
func printClusterz(ctx context.Context, cl *cluster.Client) {
	fmt.Println("\nclusterz:")
	cluster.WriteStatusText(os.Stdout, cl.ClusterStatus(ctx))
}

func loadLibrary(path string, cols, rows int) (*maskio.Library, string, error) {
	if path == "" {
		return shapegen.DemoLibrary(cols, rows), fmt.Sprintf("synthetic %dx%d demo", cols, rows), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	lib, err := maskio.ReadGDSLib(f)
	if err != nil {
		return nil, "", fmt.Errorf("read %s: %w", path, err)
	}
	return lib, path, nil
}

// spawnCluster starts n in-process fracd servers on loopback listeners
// and wires them into one routed client.
func spawnCluster(n int, cfg cluster.Config, workers int) (*cluster.Client, func(), error) {
	cl := cluster.NewClient(cfg)
	var stops []func()
	shutdown := func() {
		for _, stop := range stops {
			stop()
		}
	}
	for i := 0; i < n; i++ {
		srv := fracserve.New(fracserve.Config{Workers: workers, QueueDepth: 256})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		go srv.Serve(l)
		stops = append(stops, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		id := fmt.Sprintf("node-%d", i)
		cl.AddNode(id, "http://"+l.Addr().String())
	}
	return cl, shutdown, nil
}

// replay streams every placement through the cluster with a bounded
// worker pool, one wire-visible request per placement.
func replay(ctx context.Context, cl *cluster.Client, lib *maskio.Library, method string, concurrency int) (*report, error) {
	type item struct {
		key shapecache.Key
		can shapecache.Canonical
	}
	jobs := make(chan item, concurrency)

	var (
		mu        sync.Mutex
		latencies []float64 // ms
		shots     int64
		classes   = make(map[shapecache.Key]struct{})
		firstErr  error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range jobs {
				t0 := time.Now()
				res, err := cl.SolveClass(ctx, it.key, it.can.Poly)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					continue
				}
				latencies = append(latencies, ms)
				shots += int64(res.ShotCount)
				classes[it.key] = struct{}{}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	walkErr := lib.Walk(func(pl maskio.Placement) error {
		can := shapecache.Canonicalize(pl.Polygon)
		select {
		case jobs <- item{key: can.KeyWith([]byte(method)), can: can}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	if walkErr != nil {
		return nil, walkErr
	}

	rep := &report{
		Placements: int64(len(latencies)),
		Classes:    len(classes),
		ElapsedSec: elapsed.Seconds(),
		TotalShots: shots,
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	var sum float64
	for _, v := range latencies {
		sum += v
	}
	rep.LatencyMS.P50 = pct(0.50)
	rep.LatencyMS.P90 = pct(0.90)
	rep.LatencyMS.P99 = pct(0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMS.Mean = sum / float64(n)
		rep.LatencyMS.Max = latencies[n-1]
	}
	rep.PlacementsPerSec = float64(rep.Placements) / elapsed.Seconds()
	rep.ShotsPerSec = float64(shots) / elapsed.Seconds()
	rep.EstWriteTimeSec = writecost.Default().WriteTime(shots).Seconds()

	var hits, misses uint64
	for _, id := range cl.Nodes() {
		st, err := cl.NodeStats(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("stats %s: %w", id, err)
		}
		nr := nodeReport{
			ID:        id,
			Requests:  st.Requests,
			CacheHits: st.Cache.Hits,
			CacheMiss: st.Cache.Misses,
		}
		if t := nr.CacheHits + nr.CacheMiss; t > 0 {
			nr.HitRate = float64(nr.CacheHits) / float64(t)
		}
		rep.NodeReports = append(rep.NodeReports, nr)
		hits += st.Cache.Hits
		misses += st.Cache.Misses
	}
	if t := hits + misses; t > 0 {
		rep.ClusterHitRate = float64(hits) / float64(t)
	}
	rep.Retries, rep.Hedges, rep.Failovers, rep.Coalesced = cl.CounterValues()
	rep.RingChanges = cl.RingRebalances()
	return rep, nil
}

func printReport(r *report) {
	fmt.Printf("\n%d placements, %d congruence classes in %.2fs\n", r.Placements, r.Classes, r.ElapsedSec)
	fmt.Printf("latency  p50 %.2fms  p90 %.2fms  p99 %.2fms  mean %.2fms  max %.2fms\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.P99, r.LatencyMS.Mean, r.LatencyMS.Max)
	fmt.Printf("throughput  %.0f placements/s  %.0f shots/s  (%d shots, est. write %.1fs)\n",
		r.PlacementsPerSec, r.ShotsPerSec, r.TotalShots, r.EstWriteTimeSec)
	fmt.Printf("cluster cache hit rate %.1f%%  (retries %.0f, hedges %.0f, failovers %.0f, singleflight dedup %.0f)\n",
		100*r.ClusterHitRate, r.Retries, r.Hedges, r.Failovers, r.Coalesced)
	for _, n := range r.NodeReports {
		fmt.Printf("  %-8s requests %-6d hits %-6d misses %-4d hit rate %.1f%%\n",
			n.ID, n.Requests, n.CacheHits, n.CacheMiss, 100*n.HitRate)
	}
}
