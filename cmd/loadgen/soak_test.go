package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"maskfrac/internal/cluster"
	"maskfrac/internal/shapegen"
)

// TestSoakSmoke is the CI soak: three in-process nodes held at a modest
// QPS for a few seconds must produce a gap-free time series and at
// least one complete cross-node trace waterfall. check.sh runs it under
// -race.
func TestSoakSmoke(t *testing.T) {
	cl, shutdown, err := spawnCluster(3, cluster.Config{
		Method:      "proto-eda",
		MaxInflight: 8,
		Fallbacks:   2,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	lib := shapegen.DemoLibrary(1, 1)
	rep, err := runSoak(context.Background(), cl, lib, soakOptions{
		QPS:         60,
		Duration:    4 * time.Second,
		Window:      time.Second,
		Concurrency: 8,
		Method:      "proto-eda",
		SLOP99:      2 * time.Second,
		TraceEvery:  10,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests == 0 {
		t.Fatal("soak issued no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("soak saw %d errors", rep.Errors)
	}
	if rep.DroppedWindows != 0 {
		t.Fatalf("%d dropped windows (zero completions) in %d", rep.DroppedWindows, len(rep.Windows))
	}
	if len(rep.Windows) < 3 {
		t.Fatalf("time series has %d windows, want >= 3", len(rep.Windows))
	}
	if rep.CompleteTraces < 1 {
		t.Fatal("no complete cross-node trace captured")
	}
	joined := strings.Join(rep.ExampleTrace, "\n")
	for _, want := range []string{"soak.request", "cluster.class", "cluster.attempt", "fracd.fracture"} {
		if !strings.Contains(joined, want) {
			t.Errorf("example waterfall missing %s:\n%s", want, joined)
		}
	}
	// cycling the same placements must hit the node caches
	if rep.ClusterHitRate == 0 {
		t.Error("hit rate stayed zero while cycling repeated placements")
	}
	if !rep.SLO.Pass {
		t.Errorf("SLO failed: %+v", rep.SLO)
	}
	// every window saw traffic on at least one node
	for i, w := range rep.Windows {
		if w.Requests > 0 && len(w.PerNode) == 0 {
			t.Errorf("window %d has %d requests but no per-node counts", i, w.Requests)
		}
	}
}
