package main

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"maskfrac/internal/cluster"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/stencil"
	"maskfrac/internal/telemetry"
)

// soakOptions tunes a soak run.
type soakOptions struct {
	QPS         float64       // target request rate
	Duration    time.Duration // total run length
	Window      time.Duration // rolling time-series bucket (default 10s)
	Concurrency int           // worker pool issuing requests
	Method      string
	SLOP99      time.Duration // per-window p99 objective (0 disables)
	TraceEvery  int           // trace request 0 and every Nth after (0 disables)
}

// windowReport is one time-series bucket of a soak run, keyed by
// request completion time.
type windowReport struct {
	StartSec float64 `json:"start_sec"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	HitRate  float64 `json:"hit_rate"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	ShotsPS  float64 `json:"shots_per_sec"`
	// Routing counter deltas over the window (client-side).
	Retries   float64 `json:"retries"`
	Hedges    float64 `json:"hedges"`
	Failovers float64 `json:"failovers"`
	// PerNode is the completion count by answering node — the balance
	// view.
	PerNode map[string]int `json:"per_node"`
}

// sloReport is the soak run's service-level objective check: the
// per-window p99 must beat the threshold in at least 95% of windows
// that saw traffic.
type sloReport struct {
	ThresholdMS  float64 `json:"threshold_ms"`
	WindowsOK    int     `json:"windows_ok"`
	WindowsTotal int     `json:"windows_total"`
	Pass         bool    `json:"pass"`
}

// soakReport is the -soak run report. The top-level fields mirror the
// replay report's JSON keys so BENCH_<date>.json tooling reads both.
type soakReport struct {
	Date       string  `json:"date"`
	Mode       string  `json:"mode"`
	Input      string  `json:"input"`
	Method     string  `json:"method"`
	Nodes      int     `json:"nodes"`
	TargetQPS  float64 `json:"target_qps"`
	ActualQPS  float64 `json:"actual_qps"`
	ElapsedSec float64 `json:"elapsed_sec"`
	WindowSec  float64 `json:"window_sec"`

	Requests   int64 `json:"requests"`
	Errors     int64 `json:"errors"`
	TotalShots int64 `json:"total_shots"`

	LatencyMS struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	ClusterHitRate float64 `json:"cluster_cache_hit_rate"`

	Windows []windowReport `json:"windows"`
	// DroppedWindows counts buckets inside the run that recorded zero
	// completions — a stall indicator; a healthy soak has none.
	DroppedWindows int       `json:"dropped_windows"`
	SLO            sloReport `json:"slo"`

	// CompleteTraces counts sampled requests whose stitched trace
	// contains the remote node's fracd.shape span — i.e. full
	// cross-node waterfalls, client span to solver phases.
	CompleteTraces int `json:"complete_traces"`
	// ExampleTrace is one rendered cross-node waterfall, line per span.
	ExampleTrace []string `json:"example_trace,omitempty"`

	Retries   float64 `json:"retries"`
	Hedges    float64 `json:"hedges"`
	Failovers float64 `json:"failovers"`

	// StencilPlan is the character-projection stencil the observed class
	// traffic justifies, with its projected write-time savings.
	StencilPlan *stencil.Plan `json:"stencil_plan,omitempty"`
}

// soakItem is one pre-canonicalized placement the soak cycles through.
type soakItem struct {
	key shapecache.Key
	can shapecache.Canonical
}

// collectItems canonicalizes every placement of the library once, so
// the soak loop pays no walk/canonicalize cost per request.
func collectItems(lib *maskio.Library, method string) ([]soakItem, error) {
	var items []soakItem
	err := lib.Walk(func(pl maskio.Placement) error {
		can := shapecache.Canonicalize(pl.Polygon)
		items = append(items, soakItem{key: can.KeyWith([]byte(method)), can: can})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("library has no placements")
	}
	return items, nil
}

// runSoak holds the target QPS against the cluster for the configured
// duration and accumulates the rolling-window time series.
func runSoak(ctx context.Context, cl *cluster.Client, lib *maskio.Library, opt soakOptions) (*soakReport, error) {
	if opt.Window <= 0 {
		opt.Window = 10 * time.Second
	}
	if opt.Concurrency <= 0 {
		opt.Concurrency = 16
	}
	if opt.QPS <= 0 {
		return nil, fmt.Errorf("soak needs -qps > 0")
	}
	items, err := collectItems(lib, opt.Method)
	if err != nil {
		return nil, err
	}

	// warm every distinct class once before the clock starts, so the
	// time series measures steady-state serving, not the cold-start miss
	// storm — the windows would otherwise drop while every worker sits
	// in a first-time solve
	uniq := make(map[shapecache.Key]soakItem, len(items))
	for _, it := range items {
		uniq[it.key] = it
	}
	warm := make(chan soakItem)
	var wwg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for it := range warm {
				if _, err := cl.SolveClass(ctx, it.key, it.can.Poly); err != nil && ctx.Err() != nil {
					return
				}
			}
		}()
	}
	for _, it := range uniq {
		warm <- it
	}
	close(warm)
	wwg.Wait()

	nWindows := int(opt.Duration / opt.Window)
	if time.Duration(nWindows)*opt.Window < opt.Duration {
		nWindows++
	}
	if nWindows == 0 {
		nWindows = 1
	}

	type record struct {
		ms    float64
		err   bool
		hit   bool
		shots int
		node  string
	}
	var (
		mu      sync.Mutex
		windows = make([][]record, nWindows)
		// routing counter snapshot per window boundary (index 0 = start)
		snaps = make([][3]float64, 1, nWindows+1)
	)
	r0, h0, f0, _ := cl.CounterValues()
	snaps[0] = [3]float64{r0, h0, f0}

	start := time.Now()
	windowIdx := func(at time.Time) int {
		i := int(at.Sub(start) / opt.Window)
		if i < 0 {
			i = 0
		}
		if i >= nWindows {
			i = nWindows - 1 // clamp drain stragglers into the last bucket
		}
		return i
	}

	var (
		traceMu      sync.Mutex
		completeTr   int
		exampleTrace []string
	)
	solveOne := func(seq int64, it soakItem) {
		sctx := ctx
		var root *telemetry.Span
		if opt.TraceEvery > 0 && seq%int64(opt.TraceEvery) == 0 {
			sctx, root = telemetry.WithTrace(ctx, "soak.request")
		}
		t0 := time.Now()
		res, err := cl.SolveClass(sctx, it.key, it.can.Poly)
		done := time.Now()
		rec := record{ms: float64(done.Sub(t0).Microseconds()) / 1000, err: err != nil}
		if err == nil {
			rec.hit = res.CacheHit
			rec.shots = res.ShotCount
			rec.node = res.Node
		}
		mu.Lock()
		i := windowIdx(done)
		windows[i] = append(windows[i], rec)
		mu.Unlock()
		if root != nil {
			root.End()
			// a complete cross-node trace reaches the remote solver: the
			// stitched tree carries the node's fracd.shape span
			if remote := root.Find("fracd.shape"); remote != nil && remote.TraceID() == root.TraceID() {
				traceMu.Lock()
				completeTr++
				if exampleTrace == nil {
					var sb strings.Builder
					root.WriteTree(&sb)
					exampleTrace = strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
				}
				traceMu.Unlock()
			}
		}
	}

	// worker pool fed by the pacer
	jobs := make(chan int64, opt.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range jobs {
				solveOne(seq, items[seq%int64(len(items))])
			}
		}()
	}

	// counter sampler: snapshot routing counters at each window boundary
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(opt.Window)
		defer tick.Stop()
		for i := 0; i < nWindows; i++ {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return
			}
			r, h, f, _ := cl.CounterValues()
			mu.Lock()
			snaps = append(snaps, [3]float64{r, h, f})
			mu.Unlock()
		}
	}()

	// token-bucket pacer: issue deficit = target(t) - issued every few
	// milliseconds, burst-capped so a GC pause cannot dump a flood
	var issued int64
	burst := int64(opt.QPS / 10)
	if burst < 1 {
		burst = 1
	}
	pace := time.NewTicker(5 * time.Millisecond)
	defer pace.Stop()
pacing:
	for {
		select {
		case <-pace.C:
			el := time.Since(start)
			if el >= opt.Duration {
				break pacing
			}
			target := int64(opt.QPS * el.Seconds())
			deficit := target - issued
			if deficit > burst {
				deficit = burst
			}
			for ; deficit > 0; deficit-- {
				select {
				case jobs <- issued:
					issued++
				case <-ctx.Done():
					break pacing
				default:
					// workers saturated: back-pressure wins over the pacer
					deficit = 0
				}
			}
		case <-ctx.Done():
			break pacing
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)
	<-samplerDone

	// final counter snapshot closes the last window's delta
	rN, hN, fN, _ := cl.CounterValues()
	mu.Lock()
	for len(snaps) < nWindows+1 {
		snaps = append(snaps, [3]float64{rN, hN, fN})
	}
	mu.Unlock()

	rep := &soakReport{
		Mode:       "soak",
		TargetQPS:  opt.QPS,
		ElapsedSec: elapsed.Seconds(),
		WindowSec:  opt.Window.Seconds(),
	}
	var all []float64
	var hits, nonErr int64
	for i, recs := range windows {
		wrep := windowReport{
			StartSec: float64(i) * opt.Window.Seconds(),
			Requests: len(recs),
			PerNode:  map[string]int{},
		}
		var lat []float64
		var shots int64
		for _, r := range recs {
			if r.err {
				wrep.Errors++
				rep.Errors++
				continue
			}
			nonErr++
			lat = append(lat, r.ms)
			shots += int64(r.shots)
			if r.hit {
				hits++
				wrep.HitRate++ // numerator; divided below
			}
			if r.node != "" {
				wrep.PerNode[r.node]++
			}
		}
		rep.Requests += int64(len(recs))
		rep.TotalShots += shots
		if n := len(lat); n > 0 {
			sort.Float64s(lat)
			wrep.P50MS = lat[int(0.50*float64(n-1))]
			wrep.P99MS = lat[int(0.99*float64(n-1))]
			wrep.HitRate /= float64(n)
		}
		wrep.ShotsPS = float64(shots) / opt.Window.Seconds()
		wrep.Retries = snaps[i+1][0] - snaps[i][0]
		wrep.Hedges = snaps[i+1][1] - snaps[i][1]
		wrep.Failovers = snaps[i+1][2] - snaps[i][2]
		if len(recs) == 0 {
			rep.DroppedWindows++
		}
		all = append(all, lat...)
		rep.Windows = append(rep.Windows, wrep)
	}

	sort.Float64s(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(p*float64(len(all)-1))]
	}
	var sum float64
	for _, v := range all {
		sum += v
	}
	rep.LatencyMS.P50 = pct(0.50)
	rep.LatencyMS.P90 = pct(0.90)
	rep.LatencyMS.P99 = pct(0.99)
	if n := len(all); n > 0 {
		rep.LatencyMS.Mean = sum / float64(n)
		rep.LatencyMS.Max = all[n-1]
	}
	if nonErr > 0 {
		rep.ClusterHitRate = float64(hits) / float64(nonErr)
	}
	rep.ActualQPS = float64(rep.Requests) / elapsed.Seconds()
	rep.CompleteTraces = completeTr
	rep.ExampleTrace = exampleTrace
	rep.Retries = rN - r0
	rep.Hedges = hN - h0
	rep.Failovers = fN - f0

	// SLO: p99 under threshold in >= 95% of windows that saw traffic
	if opt.SLOP99 > 0 {
		thr := float64(opt.SLOP99) / float64(time.Millisecond)
		rep.SLO.ThresholdMS = thr
		for _, w := range rep.Windows {
			if w.Requests == 0 {
				continue
			}
			rep.SLO.WindowsTotal++
			if w.P99MS < thr {
				rep.SLO.WindowsOK++
			}
		}
		rep.SLO.Pass = rep.SLO.WindowsTotal > 0 &&
			float64(rep.SLO.WindowsOK) >= 0.95*float64(rep.SLO.WindowsTotal)
	}
	return rep, nil
}

func printSoakReport(r *soakReport) {
	fmt.Printf("\nsoak: %d requests (%d errors) in %.1fs — %.1f qps of %.1f target\n",
		r.Requests, r.Errors, r.ElapsedSec, r.ActualQPS, r.TargetQPS)
	fmt.Printf("latency  p50 %.2fms  p90 %.2fms  p99 %.2fms  mean %.2fms  max %.2fms\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.P99, r.LatencyMS.Mean, r.LatencyMS.Max)
	fmt.Printf("hit rate %.1f%%  shots %d  retries %.0f  hedges %.0f  failovers %.0f\n",
		100*r.ClusterHitRate, r.TotalShots, r.Retries, r.Hedges, r.Failovers)
	fmt.Printf("windows (%gs):\n", r.WindowSec)
	fmt.Printf("  %8s %8s %6s %8s %8s %8s %9s  %s\n",
		"t", "reqs", "errs", "hit%", "p50ms", "p99ms", "shots/s", "per-node")
	for _, w := range r.Windows {
		nodes := make([]string, 0, len(w.PerNode))
		for id := range w.PerNode {
			nodes = append(nodes, id)
		}
		sort.Strings(nodes)
		var nb strings.Builder
		for _, id := range nodes {
			fmt.Fprintf(&nb, "%s:%d ", id, w.PerNode[id])
		}
		fmt.Printf("  %7.0fs %8d %6d %7.1f%% %8.2f %8.2f %9.0f  %s\n",
			w.StartSec, w.Requests, w.Errors, 100*w.HitRate, w.P50MS, w.P99MS, w.ShotsPS,
			strings.TrimSpace(nb.String()))
	}
	if r.DroppedWindows > 0 {
		fmt.Printf("DROPPED WINDOWS: %d buckets saw zero completions\n", r.DroppedWindows)
	}
	if r.SLO.ThresholdMS > 0 {
		verdict := "PASS"
		if !r.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("SLO p99<%.0fms: %s (%d/%d windows)\n",
			r.SLO.ThresholdMS, verdict, r.SLO.WindowsOK, r.SLO.WindowsTotal)
	}
	fmt.Printf("complete cross-node traces: %d\n", r.CompleteTraces)
	if len(r.ExampleTrace) > 0 {
		fmt.Println("example trace waterfall:")
		for _, line := range r.ExampleTrace {
			fmt.Println("  " + line)
		}
	}
}
