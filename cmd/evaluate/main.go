// Command evaluate regenerates the paper's experiment tables.
//
// Usage:
//
//	evaluate -table 2        # Table 2: ten ILT-like shapes, LB/UB, all methods
//	evaluate -table 3        # Table 3: ten known-optimal generated shapes
//	evaluate -table all      # both
//	evaluate -methods mbf,proto-eda
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"maskfrac"
)

func main() {
	var (
		table   = flag.String("table", "all", "which table to run: 2, 3 or all")
		methods = flag.String("methods", "gsc,mp,proto-eda,mbf", "comma-separated methods")
	)
	flag.Parse()
	var ms []maskfrac.Method
	for _, m := range strings.Split(*methods, ",") {
		ms = append(ms, maskfrac.Method(strings.TrimSpace(m)))
	}
	params := maskfrac.DefaultParams()
	if *table == "2" || *table == "all" {
		fmt.Println("=== Table 2: ILT-like mask shapes (shot count, failing pixels, runtime) ===")
		rows, err := maskfrac.RunSuite(maskfrac.ILTSuite(), params, ms)
		if err != nil {
			fatal(err)
		}
		fmt.Print(maskfrac.FormatTable(rows, ms, false))
		summarize(rows, ms)
	}
	if *table == "3" || *table == "all" {
		fmt.Println("=== Table 3: generated benchmark shapes with known optimal ===")
		rows, err := maskfrac.RunSuite(maskfrac.GeneratedSuite(params), params, ms)
		if err != nil {
			fatal(err)
		}
		fmt.Print(maskfrac.FormatTable(rows, ms, true))
		summarize(rows, ms)
	}
}

func summarize(rows []maskfrac.Row, ms []maskfrac.Method) {
	fmt.Println("total shots per method:")
	for _, m := range ms {
		fmt.Printf("  %-10s %d\n", m, maskfrac.TotalShots(rows, m))
	}
	fmt.Println("total runtime per method:")
	for _, mr := range maskfrac.MethodRuntimes(rows) {
		fmt.Printf("  %-10s %.2fs\n", mr.Method, mr.Runtime.Seconds())
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evaluate:", err)
	os.Exit(1)
}
