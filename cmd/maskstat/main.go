// Command maskstat prints a mask-quality report for a fractured shape:
// shot statistics, CD violations, edge placement error distribution,
// dose slope and estimated write cost impact.
//
// Usage:
//
//	maskstat [-in shapes.msk] [-shape NAME] [-shots shots.txt] [-method mbf]
//
// Without -shots the shape is fractured with the chosen method first.
package main

import (
	"flag"
	"fmt"
	"os"

	"maskfrac"
	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/metrics"
)

func main() {
	var (
		in     = flag.String("in", "", "input .msk shape file (default: built-in ILT-1)")
		shape  = flag.String("shape", "", "shape name (default: first)")
		shots  = flag.String("shots", "", "shot list file; when empty, fracture with -method")
		method = flag.String("method", "mbf", "fracturing method when -shots is empty")
	)
	flag.Parse()
	target, err := loadTarget(*in, *shape)
	if err != nil {
		fatal(err)
	}
	params := maskfrac.DefaultParams()
	p, err := cover.NewProblem(target, params)
	if err != nil {
		fatal(err)
	}
	var shotList []geom.Rect
	if *shots != "" {
		f, err := os.Open(*shots)
		if err != nil {
			fatal(err)
		}
		shotList, err = maskio.ReadShots(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		prob, err := maskfrac.NewProblem(target, params)
		if err != nil {
			fatal(err)
		}
		res, err := prob.Fracture(maskfrac.Method(*method), nil)
		if err != nil {
			fatal(err)
		}
		shotList = res.Shots
		fmt.Printf("fractured with %s in %v\n", *method, res.Runtime.Round(1e6))
	}

	st := p.Evaluate(shotList)
	fmt.Printf("shots:          %d\n", len(shotList))
	fmt.Printf("CD violations:  %d (on=%d off=%d), cost %.3f\n", st.Fail(), st.FailOn, st.FailOff, st.Cost)

	sliv := metrics.Slivers(shotList, 10)
	fmt.Printf("slivers <10nm:  %d of %d (min dimension %.1f nm, mean aspect %.1f)\n",
		sliv.Slivers, sliv.Shots, sliv.MinDim, sliv.MeanAspect)

	epe := metrics.EPE(p, shotList, 2)
	fmt.Printf("EPE:            mean %+.2f nm, RMS %.2f nm, p95 %.2f nm, max %.2f nm (%d samples)\n",
		epe.Mean, epe.RMS, epe.P95, epe.Max, epe.Samples)

	slope, minSlope := metrics.DoseSlope(p, shotList, 4)
	fmt.Printf("dose slope:     mean %.4f /nm, min %.4f /nm\n", slope, minSlope)
	fmt.Printf("write proxy:    %.2f (shots + area term)\n", metrics.WriteTimeProxy(shotList))
}

func loadTarget(path, name string) (maskfrac.Polygon, error) {
	if path == "" {
		return maskfrac.ILTSuite()[0].Target, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	shapes, err := maskio.ReadShapes(f)
	if err != nil {
		return nil, err
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("no shapes in %s", path)
	}
	if name == "" {
		return shapes[0].Polygon, nil
	}
	for _, s := range shapes {
		if s.Name == name {
			return s.Polygon, nil
		}
	}
	return nil, fmt.Errorf("shape %q not found", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maskstat:", err)
	os.Exit(1)
}
