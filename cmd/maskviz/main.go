// Command maskviz renders the stages of model-based mask fracturing to
// SVG, reproducing the paper's illustrations:
//
//	-stage rdp       boundary approximation + shot corner points (Fig 1)
//	-stage corner    iso-dose contour of a shot corner and Lth (Fig 2)
//	-stage coloring  corner points colored by shot assignment (Fig 3)
//	-stage final     target + final shot set
//
// Usage:
//
//	maskviz [-in shapes.msk] [-shape NAME] -stage final -out out.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"maskfrac"
	"maskfrac/internal/cover"
	"maskfrac/internal/ebeam"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/svg"
)

// palette colors shot classes in the coloring stage.
var palette = []string{
	"#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#bcf60c", "#008080", "#9a6324",
}

func main() {
	var (
		in    = flag.String("in", "", "input .msk shape file (default: built-in ILT-1)")
		shape = flag.String("shape", "", "shape name (default: first)")
		stage = flag.String("stage", "final", "rdp, corner, coloring or final")
		out   = flag.String("out", "maskviz.svg", "output SVG file")
	)
	flag.Parse()
	target, err := loadTarget(*in, *shape)
	if err != nil {
		fatal(err)
	}
	params := maskfrac.DefaultParams()
	p, err := cover.NewProblem(target, params)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *stage {
	case "rdp":
		err = renderRDP(f, p)
	case "corner":
		err = renderCorner(f, params)
	case "coloring":
		err = renderColoring(f, p)
	case "final":
		err = renderFinal(f, p)
	default:
		err = fmt.Errorf("unknown stage %q", *stage)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

// renderRDP draws the original boundary, the simplified boundary and
// the extracted shot corner points (Fig 1).
func renderRDP(f *os.File, p *cover.Problem) error {
	pts, simplified, _ := mbf.ExtractCorners(p, mbf.Options{})
	c := svg.NewCanvas(p.Target.Bounds(), 4)
	c.Polygon(p.Target, "#eeeeee", "#aaaaaa", 0.3)
	c.Polygon(simplified, "none", "#d62728", 0.5)
	for _, cp := range pts {
		c.Circle(cp.P, 1.2, typeColor(cp.Type))
		c.Text(cp.P.Add(geom.Pt(1.5, 1.5)), 3, cp.Type.String())
	}
	_, err := c.WriteTo(f)
	return err
}

// renderCorner draws the rounded iso-dose contour at a shot corner and
// the 45° chord of length Lth it can write (Fig 2).
func renderCorner(f *os.File, params maskfrac.Params) error {
	model := ebeam.NewModel(params.Sigma)
	contour := model.CornerContour(params.Rho, 200)
	lth := model.Lth(params.Rho, params.Gamma)
	depth := model.CornerDepth(params.Rho)
	view := geom.Rect{X0: -3 * params.Sigma, Y0: -3 * params.Sigma, X1: params.Sigma, Y1: params.Sigma}
	c := svg.NewCanvas(view, 12)
	// the ideal sharp corner of the quarter-plane shot {x<=0, y<=0}
	c.Line(geom.Pt(view.X0, 0), geom.Pt(0, 0), "#333333", 0.12)
	c.Line(geom.Pt(0, view.Y0), geom.Pt(0, 0), "#333333", 0.12)
	c.Polyline(contour, "#1a5ac8", 0.15)
	// 45° chord at offset depth+gamma along the inward diagonal
	off := (depth + params.Gamma) / 2 // per-axis offset of the chord line
	half := lth / (2 * 1.4142135)
	a := geom.Pt(-off-half, -off+half)
	b := geom.Pt(-off+half, -off-half)
	c.Line(a, b, "#d62728", 0.15)
	c.Text(geom.Pt(view.X0+1, view.Y1-1.5), 1.4,
		fmt.Sprintf("Lth = %.1f nm, corner depth = %.1f nm", lth, depth))
	_, err := c.WriteTo(f)
	return err
}

// renderColoring draws corner points colored by their assigned shot
// plus the initial shots (Fig 3).
func renderColoring(f *os.File, p *cover.Problem) error {
	res := mbf.Fracture(p, mbf.Options{SkipRefinement: true})
	pts, _, _ := mbf.ExtractCorners(p, mbf.Options{})
	c := svg.NewCanvas(p.Target.Bounds(), 4)
	c.Polygon(p.Target, "#eeeeee", "#aaaaaa", 0.3)
	for i, s := range res.Shots {
		col := palette[i%len(palette)]
		c.Rect(s, "none", col, 0.4)
	}
	for _, cp := range pts {
		c.Circle(cp.P, 1.2, typeColor(cp.Type))
	}
	_, err := c.WriteTo(f)
	return err
}

// renderFinal draws the target and the refined shot set.
func renderFinal(f *os.File, p *cover.Problem) error {
	res := mbf.Fracture(p, mbf.Options{})
	view := p.Target.Bounds()
	for _, s := range res.Shots {
		view = view.Union(s)
	}
	c := svg.NewCanvas(view, 4)
	c.Polygon(p.Target, "#dddddd", "#333333", 0.4)
	for _, s := range res.Shots {
		c.Rect(s, "rgba(30,90,200,0.25)", "#1a5ac8", 0.3)
	}
	c.Text(geom.Pt(view.X0+2, view.Y1-3), 4,
		fmt.Sprintf("%d shots, %d failing pixels", len(res.Shots), res.Stats.Fail()))
	_, err := c.WriteTo(f)
	return err
}

func typeColor(t mbf.CornerType) string {
	switch t {
	case mbf.BL:
		return "#d62728"
	case mbf.BR:
		return "#2ca02c"
	case mbf.TL:
		return "#9467bd"
	default:
		return "#1f77b4"
	}
}

func loadTarget(path, name string) (maskfrac.Polygon, error) {
	if path == "" {
		return maskfrac.ILTSuite()[0].Target, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	shapes, err := maskio.ReadShapes(f)
	if err != nil {
		return nil, err
	}
	if len(shapes) == 0 {
		return nil, fmt.Errorf("no shapes in %s", path)
	}
	if name == "" {
		return shapes[0].Polygon, nil
	}
	for _, s := range shapes {
		if s.Name == name {
			return s.Polygon, nil
		}
	}
	return nil, fmt.Errorf("shape %q not found", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maskviz:", err)
	os.Exit(1)
}
