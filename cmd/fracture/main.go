// Command fracture runs model-based mask fracturing on a shape file.
//
// Usage:
//
//	fracture -in shapes.msk [-shape NAME] [-method mbf|gsc|mp|proto-eda|partition]
//	         [-out shots.txt] [-svg out.svg] [-sigma 6.25] [-gamma 2] [-lmin 8]
//	         [-workers N] [-v] [-trace]
//	fracture -multi -in shapes.msk [-workers N]
//	fracture -batch -in shapes.msk [-workers N] [-cache 4096]
//	fracture -server http://host:8337 [-multi] [-trace] ...
//	fracture -plan -server http://host:8337 [-plan-slots N] [-plan-topk K] [-plan-load-ms MS]
//
// -server sends the instance to a running fracd instead of solving
// in-process; with -trace the caller's trace ID propagates to the
// daemon as a traceparent header, the daemon returns its span tree in
// the response, and the printed waterfall shows the local request span
// with the remote solver phases stitched underneath. The same trace is
// retained on the daemon under GET /debug/traces/{id}.
//
// Without -in it fractures the first built-in ILT benchmark clip (or,
// with -batch, the whole built-in suite; with -multi, a built-in SRAF
// cluster). Batch mode fractures every shape in the file concurrently
// through the content-addressed shape cache, so congruent repeated
// shapes run the solver once. Multi mode solves all shapes of the file
// as ONE instance sharing the dose budget: the decompose–solve–stitch
// engine clusters them into proximity-independent regions and solves
// up to -workers regions concurrently, with a result byte-identical to
// the sequential run.
//
// -plan asks the daemon to plan a character-projection stencil from the
// placement frequencies its shape cache has accumulated (POST /plan)
// and prints the plan with its modeled write-time savings.
//
// -trace records the solver's phase spans and prints the span tree —
// including the engine's plan/region/stitch phases, one span per
// independent region — and a per-phase timing table after the solve;
// -v adds problem detail (pixel counts, shot bounds, evaluation time).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"maskfrac"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/svg"
	"maskfrac/internal/telemetry"
)

func main() {
	var (
		in      = flag.String("in", "", "input .msk shape file (default: built-in ILT-1)")
		shape   = flag.String("shape", "", "shape name to fracture (default: first in file)")
		method  = flag.String("method", "mbf", "fracturing method: mbf, gsc, mp, proto-eda, partition")
		out     = flag.String("out", "", "write the shot list to this file")
		svgOut  = flag.String("svg", "", "render target + shots to this SVG file")
		sigma   = flag.Float64("sigma", 6.25, "e-beam blur sigma in nm")
		gamma   = flag.Float64("gamma", 2, "CD tolerance in nm")
		lmin    = flag.Float64("lmin", 8, "minimum shot size in nm")
		batch   = flag.Bool("batch", false, "fracture every shape in the file concurrently")
		multi   = flag.Bool("multi", false, "solve all shapes in the file as one multi-shape instance (default: built-in SRAF cluster)")
		workers = flag.Int("workers", 0, "concurrent batch shapes / independent regions (0 = GOMAXPROCS)")
		cacheN  = flag.Int("cache", 4096, "batch shape cache entry bound (0 disables)")
		verbose = flag.Bool("v", false, "print problem detail (pixel counts, bounds, eval time)")
		trace   = flag.Bool("trace", false, "record solver phase spans; print the span tree and per-phase timings")
		server  = flag.String("server", "", "fracture on a running fracd at this base URL instead of in-process")

		plan      = flag.Bool("plan", false, "plan a character-projection stencil from the fracd's cache statistics (requires -server)")
		planSlots = flag.Int("plan-slots", 0, "stencil character slot budget (0 = server default)")
		planTopK  = flag.Int("plan-topk", 0, "congruence classes mined as plan candidates (0 = server default)")
		planLoad  = flag.Float64("plan-load-ms", -1, "stencil load overhead in ms (-1 = server default, 0 = none)")
	)
	flag.Parse()

	params := maskfrac.DefaultParams()
	params.Sigma = *sigma
	params.Gamma = *gamma
	params.Lmin = *lmin

	if *plan {
		if *server == "" {
			fatal(fmt.Errorf("-plan needs a running daemon's cache statistics; set -server"))
		}
		if err := runPlan(*server, *planSlots, *planTopK, *planLoad, *trace); err != nil {
			fatal(err)
		}
		return
	}

	if *batch {
		if *server != "" {
			fatal(fmt.Errorf("-batch does not combine with -server; use loadgen for remote batches"))
		}
		if err := runBatch(*in, params, maskfrac.Method(*method), *workers, *cacheN); err != nil {
			fatal(err)
		}
		return
	}

	var (
		targets []maskfrac.Polygon
		name    string
	)
	if *multi {
		var err error
		targets, name, err = loadMulti(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		target, n, err := loadTarget(*in, *shape)
		if err != nil {
			fatal(err)
		}
		targets, name = []maskfrac.Polygon{target}, n
	}

	if *server != "" {
		if err := runRemote(*server, targets, name, maskfrac.Method(*method),
			*multi, params, *workers, *out, *svgOut, *verbose, *trace); err != nil {
			fatal(err)
		}
		return
	}

	var prob *maskfrac.Problem
	{
		var err error
		if *multi {
			prob, err = maskfrac.NewMultiProblem(targets, params)
		} else {
			prob, err = maskfrac.NewProblem(targets[0], params)
		}
		if err != nil {
			fatal(err)
		}
	}
	ctx := context.Background()
	var root *telemetry.Span
	if *trace {
		ctx, root = telemetry.WithTrace(ctx, "fracture "+name)
	}
	opt := &maskfrac.Options{Workers: *workers}
	res, err := prob.FractureCtx(ctx, maskfrac.Method(*method), opt)
	if err != nil {
		fatal(err)
	}
	root.End()
	vertices := 0
	for _, t := range targets {
		vertices += len(t)
	}
	lb, ub := prob.Bounds()
	fmt.Printf("shape %s: %d shapes, %d vertices, bounds LB=%d UB=%d\n", name, len(targets), vertices, lb, ub)
	fmt.Printf("method %s: %d shots, %d regions, %d failing pixels (on=%d off=%d), %.3fs\n",
		res.Method, res.ShotCount(), res.Regions, res.FailingPixels(), res.FailOn, res.FailOff, res.Runtime.Seconds())
	if res.Stage != nil {
		fmt.Printf("stage: %d->%d vertices, %d corners, %d colors, Lth=%.1fnm, %d iterations\n",
			res.Stage.VerticesIn, res.Stage.VerticesRDP, res.Stage.Corners,
			res.Stage.Colors, res.Stage.Lth, res.Stage.Iterations)
	}
	if *verbose {
		on, off := prob.PixelCounts()
		fmt.Printf("grid: %d interior pixels, %d exterior pixels, Lth=%.2fnm\n",
			on, off, prob.Lth())
		fmt.Printf("timing: solve %.3fs, evaluate %.3fs\n",
			res.Runtime.Seconds(), res.EvalTime.Seconds())
	}
	if root != nil {
		fmt.Println("\ntrace:")
		root.WriteTree(os.Stdout)
		fmt.Println()
		telemetry.WritePhaseTable(os.Stdout, root)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := maskio.WriteShots(f, res.Shots); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d shots to %s\n", res.ShotCount(), *out)
	}
	if *svgOut != "" {
		if err := render(*svgOut, targets, res.Shots); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

// runBatch fractures every shape of the file (or the built-in suite)
// concurrently through the shape cache and prints per-shape lines plus
// totals and cache counters.
func runBatch(path string, params maskfrac.Params, method maskfrac.Method, workers, cacheEntries int) error {
	shapes, err := loadAll(path)
	if err != nil {
		return err
	}
	var cache *maskfrac.ShapeCache
	if cacheEntries > 0 {
		cache = maskfrac.NewShapeCache(cacheEntries)
	}
	items := maskfrac.FractureBatchCached(context.Background(), polys(shapes), params, method, nil, workers, cache)
	for i, it := range items {
		name := shapes[i].Name
		if it.Err != nil {
			fmt.Printf("%-12s ERROR %v\n", name, it.Err)
			continue
		}
		hit := ""
		if it.CacheHit {
			hit = " (cache hit)"
		}
		fmt.Printf("%-12s %4d shots, %3d failing, %7.3fs solve%s\n",
			name, it.Result.ShotCount(), it.Result.FailingPixels(), it.Result.Runtime.Seconds(), hit)
	}
	s := maskfrac.Summarize(items)
	fmt.Printf("batch: %d shapes, %d errors, %d shots, %d feasible, %d cache hits\n",
		s.Shapes, s.Errors, s.Shots, s.Feasible, s.CacheHits)
	if cache != nil {
		cs := cache.Stats()
		fmt.Printf("cache: %d hits, %d misses, %d evictions, %d entries (~%d KiB)\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Entries, cs.Bytes/1024)
	}
	return nil
}

// loadAll reads every shape of the file, falling back to the built-in
// ILT suite.
func loadAll(path string) ([]maskio.NamedShape, error) {
	if path == "" {
		suite := maskfrac.ILTSuite()
		shapes := make([]maskio.NamedShape, len(suite))
		for i, b := range suite {
			shapes[i] = maskio.NamedShape{Name: b.Name, Polygon: b.Target}
		}
		return shapes, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return maskio.ReadShapes(f)
}

// polys strips the names off a shape list.
func polys(shapes []maskio.NamedShape) []maskfrac.Polygon {
	out := make([]maskfrac.Polygon, len(shapes))
	for i, s := range shapes {
		out[i] = s.Polygon
	}
	return out
}

// loadMulti reads every shape of the file as one multi-shape instance,
// falling back to a built-in SRAF cluster benchmark.
func loadMulti(path string) ([]maskfrac.Polygon, string, error) {
	if path == "" {
		return maskfrac.SRAFCluster(7, 4), "sraf-cluster", nil
	}
	shapes, err := loadAll(path)
	if err != nil {
		return nil, "", err
	}
	if len(shapes) == 0 {
		return nil, "", fmt.Errorf("no shapes in %s", path)
	}
	return polys(shapes), shapes[0].Name + "+", nil
}

// loadTarget reads the requested shape, falling back to the first
// built-in benchmark clip.
func loadTarget(path, name string) (maskfrac.Polygon, string, error) {
	if path == "" {
		suite := maskfrac.ILTSuite()
		return suite[0].Target, suite[0].Name, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	shapes, err := maskio.ReadShapes(f)
	if err != nil {
		return nil, "", err
	}
	if len(shapes) == 0 {
		return nil, "", fmt.Errorf("no shapes in %s", path)
	}
	if name == "" {
		return shapes[0].Polygon, shapes[0].Name, nil
	}
	for _, s := range shapes {
		if s.Name == name {
			return s.Polygon, s.Name, nil
		}
	}
	return nil, "", fmt.Errorf("shape %q not found in %s", name, path)
}

// render writes the targets and shots to an SVG file.
func render(path string, targets []maskfrac.Polygon, shots []maskfrac.Shot) error {
	view := targets[0].Bounds()
	for _, t := range targets[1:] {
		view = view.Union(t.Bounds())
	}
	for _, s := range shots {
		view = view.Union(geom.Rect(s))
	}
	c := svg.NewCanvas(view, 4)
	for _, t := range targets {
		c.Polygon(t, "#dddddd", "#333333", 0.4)
	}
	for _, s := range shots {
		c.Rect(s, "rgba(30,90,200,0.25)", "#1a5ac8", 0.3)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = c.WriteTo(f)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fracture:", err)
	os.Exit(1)
}
