// Command fracture runs model-based mask fracturing on a shape file.
//
// Usage:
//
//	fracture -in shapes.msk [-shape NAME] [-method mbf|gsc|mp|proto-eda|partition]
//	         [-out shots.txt] [-svg out.svg] [-sigma 6.25] [-gamma 2] [-lmin 8]
//
// Without -in it fractures the first built-in ILT benchmark clip.
package main

import (
	"flag"
	"fmt"
	"os"

	"maskfrac"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/svg"
)

func main() {
	var (
		in     = flag.String("in", "", "input .msk shape file (default: built-in ILT-1)")
		shape  = flag.String("shape", "", "shape name to fracture (default: first in file)")
		method = flag.String("method", "mbf", "fracturing method: mbf, gsc, mp, proto-eda, partition")
		out    = flag.String("out", "", "write the shot list to this file")
		svgOut = flag.String("svg", "", "render target + shots to this SVG file")
		sigma  = flag.Float64("sigma", 6.25, "e-beam blur sigma in nm")
		gamma  = flag.Float64("gamma", 2, "CD tolerance in nm")
		lmin   = flag.Float64("lmin", 8, "minimum shot size in nm")
	)
	flag.Parse()

	target, name, err := loadTarget(*in, *shape)
	if err != nil {
		fatal(err)
	}
	params := maskfrac.DefaultParams()
	params.Sigma = *sigma
	params.Gamma = *gamma
	params.Lmin = *lmin
	prob, err := maskfrac.NewProblem(target, params)
	if err != nil {
		fatal(err)
	}
	res, err := prob.Fracture(maskfrac.Method(*method), nil)
	if err != nil {
		fatal(err)
	}
	lb, ub := prob.Bounds()
	fmt.Printf("shape %s: %d vertices, bounds LB=%d UB=%d\n", name, len(target), lb, ub)
	fmt.Printf("method %s: %d shots, %d failing pixels (on=%d off=%d), %.3fs\n",
		res.Method, res.ShotCount(), res.FailingPixels(), res.FailOn, res.FailOff, res.Runtime.Seconds())
	if res.Stage != nil {
		fmt.Printf("stage: %d->%d vertices, %d corners, %d colors, Lth=%.1fnm, %d iterations\n",
			res.Stage.VerticesIn, res.Stage.VerticesRDP, res.Stage.Corners,
			res.Stage.Colors, res.Stage.Lth, res.Stage.Iterations)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := maskio.WriteShots(f, res.Shots); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d shots to %s\n", res.ShotCount(), *out)
	}
	if *svgOut != "" {
		if err := render(*svgOut, target, res.Shots); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
}

// loadTarget reads the requested shape, falling back to the first
// built-in benchmark clip.
func loadTarget(path, name string) (maskfrac.Polygon, string, error) {
	if path == "" {
		suite := maskfrac.ILTSuite()
		return suite[0].Target, suite[0].Name, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	shapes, err := maskio.ReadShapes(f)
	if err != nil {
		return nil, "", err
	}
	if len(shapes) == 0 {
		return nil, "", fmt.Errorf("no shapes in %s", path)
	}
	if name == "" {
		return shapes[0].Polygon, shapes[0].Name, nil
	}
	for _, s := range shapes {
		if s.Name == name {
			return s.Polygon, s.Name, nil
		}
	}
	return nil, "", fmt.Errorf("shape %q not found in %s", name, path)
}

// render writes the target and shots to an SVG file.
func render(path string, target maskfrac.Polygon, shots []maskfrac.Shot) error {
	view := target.Bounds()
	for _, s := range shots {
		view = view.Union(geom.Rect(s))
	}
	c := svg.NewCanvas(view, 4)
	c.Polygon(target, "#dddddd", "#333333", 0.4)
	for _, s := range shots {
		c.Rect(s, "rgba(30,90,200,0.25)", "#1a5ac8", 0.3)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = c.WriteTo(f)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fracture:", err)
	os.Exit(1)
}
