package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"maskfrac"
	"maskfrac/internal/fracserve"
	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
)

// runRemote fractures against a running fracd instead of solving
// in-process. The local trace root rides the request as a traceparent
// header, and the daemon ships its span tree back in the response; the
// tree is stitched under the local request span so -trace prints one
// client+server waterfall, and the same trace stays retrievable from
// the daemon at /debug/traces/{id}.
func runRemote(url string, targets []maskfrac.Polygon, name string, method maskfrac.Method,
	multi bool, params maskfrac.Params, workers int, outPath, svgPath string, verbose, trace bool) error {
	ctx := context.Background()
	var root *telemetry.Span
	if trace {
		ctx, root = telemetry.WithTrace(ctx, "fracture "+name)
	}
	cl := fracserve.NewClient(url)
	pw := &fracserve.ParamsWire{Sigma: params.Sigma, Gamma: params.Gamma, Lmin: params.Lmin}

	cctx, call := telemetry.StartSpan(ctx, "fracserve.request")
	call.Set("url", url)
	if tid := call.TraceID(); tid != "" {
		// same trace-derived request-ID scheme as the cluster client, so
		// daemon logs and /debug/traces grep on one identifier
		cctx = fracserve.WithRequestID(cctx, "t"+tid[:16])
	}
	start := time.Now()

	var (
		shotWires [][4]float64
		shotCount int
		failOn    int
		failOff   int
		feasible  bool
		solveMS   float64
		evalMS    float64
		regions   = 1
		traceID   string
		wire      *telemetry.SpanWire
	)
	if multi {
		wires := make([][][2]float64, len(targets))
		for i, t := range targets {
			wires[i] = maskio.PolygonWire(t)
		}
		resp, err := cl.Solve(cctx, &fracserve.SolveRequest{
			Shapes:      wires,
			Method:      string(method),
			Params:      pw,
			Workers:     workers,
			ReturnTrace: trace,
		})
		if err != nil {
			call.End()
			return err
		}
		shotWires, shotCount = resp.Shots, resp.ShotCount
		failOn, failOff, feasible = resp.FailOn, resp.FailOff, resp.Feasible
		solveMS, evalMS, regions = resp.SolveMS, resp.EvalMS, resp.Regions
		traceID, wire = resp.TraceID, resp.Trace
	} else {
		resp, err := cl.Do(cctx, &fracserve.Request{
			Shape:       maskio.PolygonWire(targets[0]),
			Method:      string(method),
			Params:      pw,
			ReturnTrace: trace,
		})
		if err != nil {
			call.End()
			return err
		}
		if len(resp.Results) != 1 {
			call.End()
			return fmt.Errorf("server returned %d results for one shape", len(resp.Results))
		}
		item := resp.Results[0]
		if item.Error != "" {
			call.End()
			return fmt.Errorf("remote fracture: %s", item.Error)
		}
		shotWires, shotCount = item.Shots, item.ShotCount
		failOn, failOff, feasible = item.FailOn, item.FailOff, item.Feasible
		solveMS, evalMS = item.SolveMS, item.EvalMS
		traceID, wire = resp.TraceID, resp.Trace
	}
	rtt := time.Since(start)
	if wire != nil {
		call.AdoptWire(wire)
	}
	call.End()
	root.End()

	vertices := 0
	for _, t := range targets {
		vertices += len(t)
	}
	fmt.Printf("shape %s: %d shapes, %d vertices (remote %s)\n", name, len(targets), vertices, url)
	fmt.Printf("method %s: %d shots, %d regions, %d failing pixels (on=%d off=%d), feasible=%v\n",
		method, shotCount, regions, failOn+failOff, failOn, failOff, feasible)
	fmt.Printf("timing: solve %.3fs on the server, %.3fs round trip\n", solveMS/1e3, rtt.Seconds())
	if verbose {
		fmt.Printf("timing: evaluate %.3fs on the server\n", evalMS/1e3)
	}
	if root != nil {
		if traceID != "" {
			fmt.Printf("\ntrace %s (server keeps it at %s/debug/traces/%s):\n", traceID, cl.BaseURL, traceID)
		} else {
			fmt.Println("\ntrace:")
		}
		root.WriteTree(os.Stdout)
		fmt.Println()
		telemetry.WritePhaseTable(os.Stdout, root)
	}

	if outPath != "" || svgPath != "" {
		shots, err := maskio.ShotsFromWire(shotWires)
		if err != nil {
			return err
		}
		if outPath != "" {
			f, err := os.Create(outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := maskio.WriteShots(f, shots); err != nil {
				return err
			}
			fmt.Printf("wrote %d shots to %s\n", len(shots), outPath)
		}
		if svgPath != "" {
			if err := render(svgPath, targets, shots); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", svgPath)
		}
	}
	return nil
}

// runPlan asks a running fracd to plan a character-projection stencil
// from its shape-cache class statistics (POST /plan) and prints the
// plan table. loadMS < 0 keeps the server's default stencil load
// overhead; an explicit 0 prices the plan with none.
func runPlan(url string, slots, topK int, loadMS float64, trace bool) error {
	ctx := context.Background()
	var root *telemetry.Span
	if trace {
		ctx, root = telemetry.WithTrace(ctx, "fracture plan")
	}
	cl := fracserve.NewClient(url)
	req := &fracserve.PlanRequest{TopK: topK, ReturnTrace: trace}
	if slots > 0 || loadMS >= 0 {
		req.CP = &fracserve.CPWire{Slots: slots}
		if loadMS >= 0 {
			req.CP.LoadOverheadMS = &loadMS
		}
	}
	cctx, call := telemetry.StartSpan(ctx, "fracserve.plan")
	call.Set("url", url)
	resp, err := cl.Plan(cctx, req)
	if err != nil {
		call.End()
		return err
	}
	if resp.Trace != nil {
		call.AdoptWire(resp.Trace)
	}
	call.End()
	root.End()

	fmt.Printf("stencil plan from %s:\n", url)
	resp.Plan.WriteReport(os.Stdout)
	if root != nil {
		if resp.TraceID != "" {
			fmt.Printf("\ntrace %s (server keeps it at %s/debug/traces/%s):\n",
				resp.TraceID, cl.BaseURL, resp.TraceID)
		} else {
			fmt.Println("\ntrace:")
		}
		root.WriteTree(os.Stdout)
	}
	return nil
}
