// Command benchgen writes the benchmark shape suites to .msk files:
// the ten ILT-like clips (Table 2) and the ten known-optimal generated
// shapes AGB-1..5 / RGB-1..5 (Table 3).
//
// Usage:
//
//	benchgen [-dir benchmarks]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"maskfrac"
	"maskfrac/internal/maskio"
)

func main() {
	dir := flag.String("dir", "benchmarks", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	params := maskfrac.DefaultParams()
	if err := write(filepath.Join(*dir, "ilt.msk"), maskfrac.ILTSuite()); err != nil {
		fatal(err)
	}
	if err := write(filepath.Join(*dir, "generated.msk"), maskfrac.GeneratedSuite(params)); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s/ilt.msk and %s/generated.msk\n", *dir, *dir)
}

func write(path string, suite []maskfrac.Benchmark) error {
	shapes := make([]maskio.NamedShape, 0, len(suite))
	for _, b := range suite {
		name := b.Name
		if b.Optimal > 0 {
			name = fmt.Sprintf("%s_opt%d", b.Name, b.Optimal)
		}
		shapes = append(shapes, maskio.NamedShape{Name: name, Polygon: b.Target})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return maskio.WriteShapes(f, shapes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
