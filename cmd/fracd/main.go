// Command fracd is the mask fracturing daemon: an HTTP JSON service
// exposing the maskfrac solvers behind a bounded worker pool and a
// content-addressed shape cache, so congruent repeated shapes across
// requests fracture once per congruence class.
//
// Usage:
//
//	fracd [-addr :8337] [-workers N] [-queue 256] [-cache-entries 4096]
//	      [-timeout 60s] [-max-timeout 10m] [-max-shapes 4096]
//	      [-sigma 6.25] [-gamma 2] [-lmin 8]
//
// Endpoints: POST /fracture, GET /healthz, GET /stats. SIGINT/SIGTERM
// shut the daemon down gracefully, draining in-flight requests.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"maskfrac"
	"maskfrac/internal/fracserve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8337", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "solver worker pool size")
		queue      = flag.Int("queue", 256, "bounded work queue depth (overflow returns 429)")
		cacheSize  = flag.Int("cache-entries", 4096, "shape cache entry bound (negative disables the cache)")
		timeout    = flag.Duration("timeout", 60*time.Second, "default per-request deadline")
		maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "clamp for client-supplied deadlines")
		maxShapes  = flag.Int("max-shapes", 4096, "per-request batch size limit")
		drain      = flag.Duration("drain", 2*time.Minute, "graceful shutdown drain budget")
		sigma      = flag.Float64("sigma", 6.25, "default e-beam blur sigma in nm")
		gamma      = flag.Float64("gamma", 2, "default CD tolerance in nm")
		lmin       = flag.Float64("lmin", 8, "default minimum shot size in nm")
	)
	flag.Parse()

	params := maskfrac.DefaultParams()
	params.Sigma = *sigma
	params.Gamma = *gamma
	params.Lmin = *lmin

	srv := fracserve.New(fracserve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Params:         params,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxShapes:      *maxShapes,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fracd: listen %s: %v", *addr, err)
	}
	log.Printf("fracd: serving on %s (%d workers, queue %d, cache %d entries)",
		l.Addr(), *workers, *queue, *cacheSize)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("fracd: %v received, draining", s)
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("fracd: serve: %v", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("fracd: shutdown: %v", err)
		os.Exit(1)
	}
	log.Print("fracd: drained, bye")
}
