// Command fracd is the mask fracturing daemon: an HTTP JSON service
// exposing the maskfrac solvers behind a bounded worker pool and a
// content-addressed shape cache, so congruent repeated shapes across
// requests fracture once per congruence class.
//
// Usage:
//
//	fracd [-addr :8337] [-workers N] [-queue 256] [-cache-entries 4096]
//	      [-timeout 60s] [-max-timeout 10m] [-max-shapes 4096]
//	      [-sigma 6.25] [-gamma 2] [-lmin 8]
//	      [-peers url,name=url,...]
//	      [-log-level info] [-pprof]
//
// Endpoints: POST /fracture, GET /healthz, GET /stats, GET /metrics
// (Prometheus text format), GET /debug/traces (retained request
// traces), with -peers GET /clusterz (control-plane view aggregating
// every peer's stats, quantiles and ring ownership; ?format=text for a
// terminal table) and, with -pprof, GET /debug/pprof/.
// Structured JSON logs go to stderr; every request is logged with its
// X-Request-ID. SIGINT/SIGTERM shut the daemon down gracefully,
// draining in-flight requests and logging drained/rejected counts.
package main

import (
	"context"
	"flag"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"maskfrac"
	"maskfrac/internal/cluster"
	"maskfrac/internal/fracserve"
	"maskfrac/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", ":8337", "listen address")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "solver worker pool size")
		queue       = flag.Int("queue", 256, "bounded work queue depth (overflow returns 429)")
		cacheSize   = flag.Int("cache-entries", 4096, "shape cache entry bound (negative disables the cache)")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 10*time.Minute, "clamp for client-supplied deadlines")
		maxShapes   = flag.Int("max-shapes", 4096, "per-request batch size limit")
		drain       = flag.Duration("drain", 2*time.Minute, "graceful shutdown drain budget")
		sigma       = flag.Float64("sigma", 6.25, "default e-beam blur sigma in nm")
		gamma       = flag.Float64("gamma", 2, "default CD tolerance in nm")
		lmin        = flag.Float64("lmin", 8, "default minimum shot size in nm")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		enablePprof = flag.Bool("pprof", false, "serve net/http/pprof on /debug/pprof/")
		peers       = flag.String("peers", "", "comma-separated peer fracd base URLs (or name=url) aggregated at GET /clusterz")
	)
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel)).
		With("service", "fracd")

	params := maskfrac.DefaultParams()
	params.Sigma = *sigma
	params.Gamma = *gamma
	params.Lmin = *lmin

	srv := fracserve.New(fracserve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Params:         params,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxShapes:      *maxShapes,
		Logger:         logger,
		EnablePprof:    *enablePprof,
	})

	if *peers != "" {
		// The cluster client gets its own private metrics registry
		// (Config.Metrics nil) — it must not collide with the server's
		// instrument names.
		cl := cluster.NewClient(cluster.Config{
			Logger: logger.With("component", "clusterz"),
		})
		added := 0
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			id, url := p, p
			if n, u, ok := strings.Cut(p, "="); ok && !strings.Contains(n, ":") {
				id, url = n, u
			} else {
				id = strings.TrimPrefix(strings.TrimPrefix(id, "https://"), "http://")
			}
			cl.AddNode(id, url)
			added++
		}
		srv.Handle("/clusterz", cluster.StatusHandler(cl))
		logger.Info("clusterz view enabled", "peers", added)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("serving", "addr", l.Addr().String(),
		"workers", *workers, "queue", *queue, "cache_entries", *cacheSize,
		"pprof", *enablePprof)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("signal received", "signal", s.String())
	case err := <-serveErr:
		if err != nil {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}
