package maskfrac

// Benchmark harness regenerating every table and figure of the paper
// (see DESIGN.md for the experiment index):
//
//	BenchmarkTable2/*    — Table 2: ten ILT-like shapes per method;
//	                       reports total shots and normalized shot sum.
//	BenchmarkTable3/*    — Table 3: ten known-optimal generated shapes.
//	BenchmarkFig1RDP     — boundary approximation + corner extraction.
//	BenchmarkFig2Lth     — corner rounding / Lth computation.
//	BenchmarkFig3Coloring — graph-coloring approximate fracturing stage.
//	BenchmarkFig4Extension — shot reconstruction with boundary extension.
//	BenchmarkFig5Merge   — the shot merging pass.
//	BenchmarkCostModel   — the intro's write-time/cost arithmetic.
//	BenchmarkAblation/*  — design-choice ablations of the paper's method.
//	Benchmark<micro>     — substrate micro-benchmarks (dose map, delta
//	                       cost, EDT, coloring, partition).
//
// Run: go test -bench=. -benchmem   (the table benches take minutes,
// dominated by the same runs the paper reports in its runtime columns).

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"maskfrac/internal/cover"
	"maskfrac/internal/ebeam"
	"maskfrac/internal/fracture/fixup"
	"maskfrac/internal/fracture/lshape"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/fracture/partition"
	"maskfrac/internal/fracture/vdose"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/metrics"
	"maskfrac/internal/raster"
	"maskfrac/internal/writecost"
)

var (
	suiteOnce sync.Once
	iltBench  []Benchmark
	genBench  []Benchmark
)

// suites generates the benchmark shapes once per process.
func suites() ([]Benchmark, []Benchmark) {
	suiteOnce.Do(func() {
		iltBench = ILTSuite()
		genBench = GeneratedSuite(DefaultParams())
	})
	return iltBench, genBench
}

// runTable fractures every shape in the suite with one method and
// reports the paper's summary metrics.
func runTable(b *testing.B, suite []Benchmark, m Method, useOptimal bool) {
	b.Helper()
	params := DefaultParams()
	var rows []Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = RunSuite(suite, params, []Method{m})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(TotalShots(rows, m)), "shots")
	b.ReportMetric(NormalizedShotSum(rows, m, useOptimal), "norm-shots")
	fail := 0
	for _, r := range rows {
		fail += r.FailOn + r.FailOff
	}
	b.ReportMetric(float64(fail), "failing-px")
}

func BenchmarkTable2(b *testing.B) {
	ilt, _ := suites()
	for _, m := range []Method{MethodGSC, MethodMP, MethodProtoEDA, MethodMBF} {
		b.Run(string(m), func(b *testing.B) { runTable(b, ilt, m, false) })
	}
}

func BenchmarkTable3(b *testing.B) {
	_, gen := suites()
	for _, m := range []Method{MethodGSC, MethodMP, MethodProtoEDA, MethodMBF} {
		b.Run(string(m), func(b *testing.B) { runTable(b, gen, m, true) })
	}
}

// BenchmarkFig1RDP measures the boundary approximation + corner point
// extraction stage and reports the vertex reduction of Fig 1.
func BenchmarkFig1RDP(b *testing.B) {
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	var pts []mbf.CornerPoint
	var simplified geom.Polygon
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, simplified, _ = mbf.ExtractCorners(p, mbf.Options{})
	}
	b.ReportMetric(float64(len(ilt[0].Target)), "vertices-in")
	b.ReportMetric(float64(len(simplified)), "vertices-rdp")
	b.ReportMetric(float64(len(pts)), "corner-points")
}

// BenchmarkFig2Lth measures the corner rounding analysis of Fig 2 and
// reports Lth and the rounding depth for the paper's parameters.
func BenchmarkFig2Lth(b *testing.B) {
	model := ebeam.NewModel(6.25)
	var lth float64
	for i := 0; i < b.N; i++ {
		lth = model.Lth(0.5, 2)
	}
	b.ReportMetric(lth, "Lth-nm")
	b.ReportMetric(model.CornerDepth(0.5), "depth-nm")
}

// BenchmarkFig3Coloring measures the full approximate fracturing stage
// (corner graph + inverse coloring + shot reconstruction) of Fig 3.
func BenchmarkFig3Coloring(b *testing.B) {
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	var res *mbf.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = mbf.Fracture(p, mbf.Options{SkipRefinement: true})
	}
	b.ReportMetric(float64(res.Info.Corners), "corners")
	b.ReportMetric(float64(res.Info.GraphEdges), "graph-edges")
	b.ReportMetric(float64(res.Info.Colors), "colors")
}

// BenchmarkFig4Extension exercises under-constrained shot
// reconstruction: a top-edge-only clique extended to the opposite
// boundary (Fig 4).
func BenchmarkFig4Extension(b *testing.B) {
	p := mustCover(b, square(100))
	var res *mbf.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = mbf.Fracture(p, mbf.Options{SkipRefinement: true})
	}
	b.ReportMetric(float64(res.Info.InitialShots), "initial-shots")
}

// BenchmarkFig5Merge measures the shot merging criteria of Fig 5 on a
// deliberately fragmented feasible cover.
func BenchmarkFig5Merge(b *testing.B) {
	p := mustCover(b, square(100))
	frag := []geom.Rect{
		{X0: -0.5, Y0: -0.5, X1: 100.5, Y1: 35},
		{X0: -0.4, Y0: 30, X1: 100.4, Y1: 70},
		{X0: -0.5, Y0: 65, X1: 100.5, Y1: 100.5},
		{X0: 20, Y0: 20, X1: 60, Y1: 60}, // contained after merges
	}
	var merged int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mbf.MergePass(p, append([]geom.Rect(nil), frag...))
		merged = len(res)
	}
	b.ReportMetric(float64(len(frag)), "shots-before")
	b.ReportMetric(float64(merged), "shots-after")
}

// BenchmarkCostModel reproduces the introduction's cost arithmetic:
// shot count → write time → mask cost.
func BenchmarkCostModel(b *testing.B) {
	m := writecost.Default()
	var reduction float64
	for i := 0; i < b.N; i++ {
		reduction = m.CostReduction(1_000_000_000, 900_000_000)
	}
	b.ReportMetric(reduction*100, "maskcost-%")
}

// BenchmarkAblation quantifies the design choices the paper calls out,
// on two representative clips. Reported metric: total shots (lower is
// better) and failing pixels.
func BenchmarkAblation(b *testing.B) {
	ilt, _ := suites()
	clips := []Benchmark{ilt[0], ilt[2]}
	cases := []struct {
		name string
		opt  mbf.Options
	}{
		{"baseline", mbf.Options{}},
		{"no-rdp", mbf.Options{DisableRDP: true}},
		{"no-clustering", mbf.Options{DisableClustering: true}},
		{"no-merge", mbf.Options{DisableMerge: true}},
		{"no-bias", mbf.Options{DisableBias: true}},
		{"no-blocking", mbf.Options{DisableBlocking: true}},
		{"welsh-powell", mbf.Options{Order: graphx.WelshPowell}},
		{"smallest-last", mbf.Options{Order: graphx.SmallestLast}},
		{"overlap-60", mbf.Options{OverlapFrac: 0.6}},
		{"overlap-90", mbf.Options{OverlapFrac: 0.9}},
		{"nh-2", mbf.Options{NH: 2}},
		{"nh-10", mbf.Options{NH: 10}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			shots, fails := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shots, fails = 0, 0
				for _, clip := range clips {
					p := mustCover(b, clip.Target)
					res := mbf.Fracture(p, tc.opt)
					shots += len(res.Shots)
					fails += res.Stats.Fail()
				}
			}
			b.ReportMetric(float64(shots), "shots")
			b.ReportMetric(float64(fails), "failing-px")
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkDoseMap(b *testing.B) {
	p := mustCover(b, square(100))
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 60, Y1: 100},
		{X0: 40, Y0: 0, X1: 100, Y1: 100},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Model.DoseMap(p.Grid, shots)
	}
}

func BenchmarkDeltaCost(b *testing.B) {
	p := mustCover(b, square(100))
	e := cover.NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 100, Y1: 100}})
	moved := geom.Rect{X0: 0, Y0: 0, X1: 101, Y1: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.DeltaCost(0, moved)
	}
}

func BenchmarkEDT(b *testing.B) {
	g := raster.Grid{Pitch: 1, W: 256, H: 256}
	bm := raster.NewBitmap(g)
	for k := 0; k < g.Len(); k += 97 {
		bm.Bits[k] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raster.DistanceTransform(bm)
	}
}

func BenchmarkGreedyColoring(b *testing.B) {
	g := graphx.New(200)
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j += 7 {
			g.AddEdge(i, j)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GreedyColor(graphx.Sequential)
	}
}

func BenchmarkMinimumPartition(b *testing.B) {
	// a 6-step staircase polygon
	pg := geom.Polygon{
		{X: 0, Y: 0}, {X: 120, Y: 0}, {X: 120, Y: 20}, {X: 100, Y: 20},
		{X: 100, Y: 40}, {X: 80, Y: 40}, {X: 80, Y: 60}, {X: 60, Y: 60},
		{X: 60, Y: 80}, {X: 40, Y: 80}, {X: 40, Y: 100}, {X: 20, Y: 100},
		{X: 20, Y: 120}, {X: 0, Y: 120},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Minimum(pg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFractureQuick(b *testing.B) {
	// end-to-end paper method on one small clip (per-shape runtime,
	// comparable to the paper's per-shape runtime column)
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mbf.Fracture(p, mbf.Options{})
	}
}

// mustCover builds the internal problem used by stage-level benches.
func mustCover(b *testing.B, target Polygon) *cover.Problem {
	b.Helper()
	p, err := cover.NewProblem(target, cover.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// --- extension benchmarks (the paper's cited alternatives) ---

// BenchmarkExtensionVDose measures the variable-dose post-pass (paper
// ref [18]): dose optimization + dose-backed shot deletion on top of
// the paper's fixed-dose solution.
func BenchmarkExtensionVDose(b *testing.B) {
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	fixed := mbf.Fracture(p, mbf.Options{})
	b.ResetTimer()
	var reduced int
	for i := 0; i < b.N; i++ {
		res := vdose.Optimize(p, fixed.Shots, vdose.Options{})
		res = vdose.Reduce(p, res, vdose.Options{})
		reduced = res.ShotCount()
	}
	b.ReportMetric(float64(len(fixed.Shots)), "fixed-shots")
	b.ReportMetric(float64(reduced), "vdose-shots")
}

// BenchmarkExtensionLShape measures L-shape pairing (paper ref [20]) on
// a rectilinearized ILT clip.
func BenchmarkExtensionLShape(b *testing.B) {
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	b.ResetTimer()
	var rects, shots int
	for i := 0; i < b.N; i++ {
		res, err := lshape.Fracture(p)
		if err != nil {
			b.Fatal(err)
		}
		rects, shots = res.RectCount, res.ShotCount()
	}
	b.ReportMetric(float64(rects), "rects")
	b.ReportMetric(float64(shots), "l-shots")
}

// BenchmarkBatch measures parallel full-mask fracturing throughput with
// the fast conventional baseline.
func BenchmarkBatch(b *testing.B) {
	ilt, _ := suites()
	targets := make([]Polygon, len(ilt))
	for i, bench := range ilt {
		targets[i] = bench.Target
	}
	params := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := FractureBatch(targets, params, MethodProtoEDA, nil, 0)
		if s := Summarize(items); s.Errors > 0 {
			b.Fatalf("batch errors: %d", s.Errors)
		}
	}
}

// BenchmarkMetricsEPE measures the edge-placement-error analysis.
func BenchmarkMetricsEPE(b *testing.B) {
	ilt, _ := suites()
	p := mustCover(b, ilt[0].Target)
	res := mbf.Fracture(p, mbf.Options{})
	b.ResetTimer()
	var st metrics.EPEStats
	for i := 0; i < b.N; i++ {
		st = metrics.EPE(p, res.Shots, 2)
	}
	b.ReportMetric(st.RMS, "epe-rms-nm")
	b.ReportMetric(st.Max, "epe-max-nm")
}

// BenchmarkBackscatter fractures one clip under the paper's single
// Gaussian and under the two-Gaussian forward+backscatter model
// (α = 6.25 nm, β = 30 nm, η = 0.3): long-range backscatter raises the
// background dose, so shots must shrink and counts typically rise.
func BenchmarkBackscatter(b *testing.B) {
	target := square(100)
	single := DefaultParams()
	double := single
	double.Beta = 30
	double.Eta = 0.3
	for _, tc := range []struct {
		name   string
		params Params
	}{{"single-gaussian", single}, {"with-backscatter", double}} {
		b.Run(tc.name, func(b *testing.B) {
			p, err := cover.NewProblem(target, tc.params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var res *mbf.Result
			for i := 0; i < b.N; i++ {
				// the 90 nm backscatter support makes refinement steps
				// expensive; a bounded budget keeps the bench tractable
				res = mbf.Fracture(p, mbf.Options{Nmax: 600})
			}
			b.ReportMetric(float64(len(res.Shots)), "shots")
			b.ReportMetric(float64(res.Stats.Fail()), "failing-px")
		})
	}
}

// BenchmarkShapeCache measures the content-addressed shape cache on a
// repeated ILT clip: "miss" pays the full model-based solve, "hit"
// only canonicalization, lookup and the frame mapping of the cached
// shot list. The gap is the per-duplicate saving on a real mask, where
// billions of polygons repeat a small shape dictionary.
func BenchmarkShapeCache(b *testing.B) {
	ilt, _ := suites()
	clip := ilt[0].Target
	params := DefaultParams()
	ctx := context.Background()

	b.Run("miss-mbf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache := NewShapeCache(16)
			if _, _, err := FractureCached(ctx, clip, params, MethodMBF, nil, cache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit-mbf", func(b *testing.B) {
		cache := NewShapeCache(16)
		if _, _, err := FractureCached(ctx, clip, params, MethodMBF, nil, cache); err != nil {
			b.Fatal(err)
		}
		// hits query a translated congruent copy, not the identical shape
		moved := clip.Translate(geom.Pt(1500, -700))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, hit, err := FractureCached(ctx, moved, params, MethodMBF, nil, cache)
			if err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// cacheBenchTargets builds a 100-shape mask with ~10 distinct shapes:
// each of the ten ILT suite clips placed at ten translated positions.
func cacheBenchTargets() []Polygon {
	ilt, _ := suites()
	targets := make([]Polygon, 0, 100)
	for rep := 0; rep < 10; rep++ {
		for _, bm := range ilt {
			targets = append(targets, bm.Target.Translate(geom.Pt(float64(rep)*2048, float64(rep)*512)))
		}
	}
	return targets
}

// BenchmarkBatchCache runs the 100-shape/10-distinct batch with and
// without the shape cache. With the cache, each congruence class is
// solved once and the other ninety shapes are served by lookup.
func BenchmarkBatchCache(b *testing.B) {
	targets := cacheBenchTargets()
	params := DefaultParams()
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		cached bool
	}{{"uncached", false}, {"cached", true}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cache *ShapeCache
				if tc.cached {
					cache = NewShapeCache(64)
				}
				items := FractureBatchCached(ctx, targets, params, MethodProtoEDA, nil, 0, cache)
				s := Summarize(items)
				if s.Errors != 0 {
					b.Fatalf("batch errors: %+v", s)
				}
				if tc.cached && s.CacheHits != 90 {
					b.Fatalf("cache hits = %d, want 90", s.CacheHits)
				}
			}
		})
	}
}

// refineBenchSetup builds the SRAF-cluster refinement instance: the
// fracturing problem plus the unrefined (coloring-stage) shot list the
// refinement benchmarks start from.
func refineBenchSetup(tb testing.TB) (*cover.Problem, []geom.Rect) {
	tb.Helper()
	p, err := cover.NewMultiProblem(SRAFCluster(3, 2), cover.DefaultParams())
	if err != nil {
		tb.Fatal(err)
	}
	seed := mbf.Fracture(p, mbf.Options{SkipRefinement: true}).Shots
	if len(seed) == 0 {
		tb.Fatal("no seed shots")
	}
	return p, seed
}

// edgeAdjustRescan mirrors fixup.EdgeAdjust but forces a full-grid
// violation rescan (RecomputeStats) wherever the incremental evaluator
// answers from maintained state — the pre-incremental cost model of
// Eval.Stats. It is the baseline the "incremental" sub-benchmark is
// compared against; the comparison is conservative because the old
// SetShot's double support-box accumulation is not emulated.
func edgeAdjustRescan(p *cover.Problem, e *cover.Eval, sweeps int) {
	best := e.SnapshotShots()
	bestFail := e.RecomputeStats().Fail()
	pitch := p.Params.Pitch
	for iter := 0; iter < sweeps && bestFail > 0; iter++ {
		improved := false
		for i := range e.Shots {
			r := e.Shots[i]
			bestDelta, bestRect := -1e-12, geom.Rect{}
			for s := 0; s < 4; s++ {
				for _, d := range []float64{pitch, -pitch} {
					nr := r
					switch s {
					case 0:
						nr.X0 += d
					case 1:
						nr.X1 += d
					case 2:
						nr.Y0 += d
					case 3:
						nr.Y1 += d
					}
					if !p.MinSizeOK(nr) {
						continue
					}
					if delta := e.DeltaCost(i, nr); delta < bestDelta {
						bestDelta, bestRect = delta, nr
					}
				}
			}
			if bestDelta < -1e-12 {
				e.SetShot(i, bestRect)
				e.RecomputeStats()
				improved = true
			}
		}
		if f := e.RecomputeStats().Fail(); f < bestFail {
			best = e.SnapshotShots()
			bestFail = f
		}
		if !improved {
			break
		}
	}
	e.Reset(best)
}

// BenchmarkRefine measures the edge-adjustment refinement loop on the
// SRAF cluster instance with the incremental evaluator ("incremental")
// against the same loop paying a full-grid violation rescan per
// accepted move ("full-rescan", the pre-incremental cost model). The
// px/mutation metric is the counter-verified pixel cost of committing
// one move; px/rescan is what a full-grid scan pays.
func BenchmarkRefine(b *testing.B) {
	p, seed := refineBenchSetup(b)
	const sweeps = 40
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		var e *cover.Eval
		for i := 0; i < b.N; i++ {
			e = cover.NewEval(p, seed)
			fixup.EdgeAdjust(p, e, sweeps)
			e.Close() // buffers recycle through the arena across iterations
		}
		b.ReportMetric(float64(e.PixelsMutated)/float64(max(int64(e.Mutations), 1)), "px/mutation")
		b.ReportMetric(float64(p.Grid.Len()), "px/rescan")
		b.ReportMetric(float64(e.Stats().Fail()), "failing-px")
	})
	b.Run("full-rescan", func(b *testing.B) {
		b.ReportAllocs()
		var e *cover.Eval
		for i := 0; i < b.N; i++ {
			e = cover.NewEval(p, seed)
			edgeAdjustRescan(p, e, sweeps)
			e.Close()
		}
		b.ReportMetric(float64(e.Stats().Fail()), "failing-px")
	})
}

// TestRefineSteadyStateZeroAlloc asserts the refinement inner loop —
// DeltaCost scoring plus ApplyDelta commits — allocates nothing once
// the evaluator's arena-backed scratch buffers are warm. Together with
// the fracd_eval_arena_* counters this is the acceptance check that
// the hot path stopped paying the allocator.
func TestRefineSteadyStateZeroAlloc(t *testing.T) {
	p, seed := refineBenchSetup(t)
	e := cover.NewEval(p, seed)
	defer e.Close()
	pitch := p.Params.Pitch
	// warm the edge-table scratch with one scored move per shot
	for i := range e.Shots {
		nr := e.Shots[i]
		nr.X1 += pitch
		e.DeltaCost(i, nr)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := range e.Shots {
			grow := e.Shots[i]
			grow.X1 += pitch
			d := e.DeltaCost(i, grow)
			e.ApplyDelta(i, grow, d)
			shrink := e.Shots[i]
			shrink.X1 -= pitch
			d = e.DeltaCost(i, shrink)
			e.ApplyDelta(i, shrink, d)
		}
	})
	if allocs != 0 {
		t.Errorf("refinement inner loop allocates %.1f objects per sweep at steady state, want 0", allocs)
	}
}

// TestRefineIncrementalEffort is the counter-verified acceptance check
// of the incremental evaluator: committing a refinement move must visit
// at least 2x fewer pixels than the full-grid rescan Stats used to pay
// per move (in practice the gap is orders of magnitude).
func TestRefineIncrementalEffort(t *testing.T) {
	p, seed := refineBenchSetup(t)
	e := cover.NewEval(p, seed)
	fixup.EdgeAdjust(p, e, 40)
	if e.Mutations == 0 {
		t.Fatal("refinement committed no mutations")
	}
	perMove := float64(e.PixelsMutated) / float64(e.Mutations)
	rescan := float64(p.Grid.Len())
	t.Logf("pixels per committed move: %.0f incremental vs %.0f full rescan (%.1fx)",
		perMove, rescan, rescan/perMove)
	if rescan < 2*perMove {
		t.Errorf("incremental commit scans %.0f px/move; want at least 2x below the %0.f px full rescan",
			perMove, rescan)
	}
}

// engineBenchTargets builds a four-cluster instance for the engine
// benchmark: four SRAF clusters translated far outside each other's
// proximity interaction range, so the planner decomposes the instance
// into exactly four independent regions.
func engineBenchTargets() []Polygon {
	offsets := []geom.Point{geom.Pt(0, 0), geom.Pt(600, 0), geom.Pt(0, 600), geom.Pt(600, 600)}
	var targets []Polygon
	for i, off := range offsets {
		for _, p := range SRAFCluster(int64(i+1), 2) {
			targets = append(targets, p.Translate(off))
		}
	}
	return targets
}

// BenchmarkEngineRegions measures the decompose–solve–stitch engine on
// the four-region instance with 1 worker (sequential) and 4 workers
// (each region on its own goroutine). The shot lists must be identical
// regardless of worker count; the speedup tracks the number of CPUs
// available, capped by the region count.
func BenchmarkEngineRegions(b *testing.B) {
	targets := engineBenchTargets()
	prob, err := NewMultiProblem(targets, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var baseline *Result
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = prob.FractureCtx(ctx, MethodMBF, &Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			if res.Regions != 4 {
				b.Fatalf("regions = %d, want 4", res.Regions)
			}
			if baseline == nil {
				baseline = res
			} else if !reflect.DeepEqual(baseline.Shots, res.Shots) {
				b.Fatal("worker counts produced different shot lists")
			} else if baseline.FailingPixels() != res.FailingPixels() {
				b.Fatalf("fail counts differ: %d vs %d", baseline.FailingPixels(), res.FailingPixels())
			}
			b.ReportMetric(float64(res.Regions), "regions")
			b.ReportMetric(float64(res.ShotCount()), "shots")
		})
	}
}

// TestEngineParallelSpeedup is the multicore acceptance gate: on a
// machine with at least 4 CPUs the four-region instance must solve at
// least 2x faster with 4 workers than with 1, producing identical shot
// lists. Single-CPU builders skip with an explicit message (the
// benchmark pair above still runs there and shows parity, which is the
// expected single-core result, not a regression).
func TestEngineParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore speedup gate skipped in -short mode")
	}
	if n, g := runtime.NumCPU(), runtime.GOMAXPROCS(0); n < 4 || g < 4 {
		t.Skipf("SKIP multicore speedup gate: needs >=4 usable CPUs, have NumCPU=%d GOMAXPROCS=%d "+
			"(single-CPU builders cannot demonstrate parallel speedup; this is a skip, not a pass)", n, g)
	}
	targets := engineBenchTargets()
	prob, err := NewMultiProblem(targets, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// min-of-3 wall time filters scheduler noise; the MBF solver is
	// deterministic, so every run returns the same shot list
	measure := func(workers int) (time.Duration, *Result) {
		best := time.Duration(1<<62 - 1)
		var res *Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := prob.FractureCtx(ctx, MethodMBF, &Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			res = r
		}
		return best, res
	}
	seq, seqRes := measure(1)
	par, parRes := measure(4)
	if !reflect.DeepEqual(seqRes.Shots, parRes.Shots) {
		t.Fatal("1-worker and 4-worker runs produced different shot lists")
	}
	speedup := float64(seq) / float64(par)
	t.Logf("4-region solve: 1 worker %v, 4 workers %v — %.2fx speedup", seq, par, speedup)
	if speedup < 2 {
		t.Errorf("4-worker speedup %.2fx below the 2x gate (1 worker %v, 4 workers %v)", speedup, seq, par)
	}
}
