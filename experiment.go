package maskfrac

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"maskfrac/internal/shapegen"
)

// Benchmark is one benchmark shape: a target polygon plus, for
// generated shapes, the construction-optimal shot count.
type Benchmark struct {
	Name    string
	Target  Polygon
	Optimal int // 0 when unknown (ILT shapes)
}

// ILTSuite returns the ten ILT-like clips reproducing the paper's
// Table 2 shape set (real ILT shapes are not distributable; see
// DESIGN.md for the substitution).
func ILTSuite() []Benchmark {
	shapes := shapegen.ILTSuite()
	out := make([]Benchmark, len(shapes))
	for i, s := range shapes {
		out[i] = Benchmark{Name: s.Name, Target: s.Target}
	}
	return out
}

// GeneratedSuite returns the ten known-optimal benchmark shapes
// reproducing the paper's Table 3 set: AGB-1..5 (dose-contour shapes)
// and RGB-1..5 (rectilinear unions), with the same per-shape optimal
// shot counts as the paper (3,16,17,7,3 and 5,7,5,9,6).
func GeneratedSuite(params Params) []Benchmark {
	var out []Benchmark
	for _, s := range shapegen.AGBSuite(params) {
		out = append(out, Benchmark{Name: s.Name, Target: s.Target, Optimal: s.Known})
	}
	for _, s := range shapegen.RGBSuite(params) {
		out = append(out, Benchmark{Name: s.Name, Target: s.Target, Optimal: s.Known})
	}
	return out
}

// Row is one benchmark × method measurement.
type Row struct {
	Shape   string
	Method  Method
	Shots   int
	FailOn  int
	FailOff int
	Runtime time.Duration
	Lower   int // shot-count lower bound (Table 2)
	Upper   int // shot-count upper bound (Table 2)
	Optimal int // known optimal (Table 3, 0 otherwise)
}

// RunSuite fractures every benchmark with every method and returns the
// rows plus bounds. Methods run with default options.
func RunSuite(benchmarks []Benchmark, params Params, methods []Method) ([]Row, error) {
	var rows []Row
	for _, b := range benchmarks {
		prob, err := NewProblem(b.Target, params)
		if err != nil {
			return nil, fmt.Errorf("maskfrac: %s: %w", b.Name, err)
		}
		lb, ub := prob.Bounds()
		for _, m := range methods {
			res, err := prob.Fracture(m, nil)
			if err != nil {
				return nil, fmt.Errorf("maskfrac: %s/%s: %w", b.Name, m, err)
			}
			rows = append(rows, Row{
				Shape:   b.Name,
				Method:  m,
				Shots:   res.ShotCount(),
				FailOn:  res.FailOn,
				FailOff: res.FailOff,
				Runtime: res.Runtime,
				Lower:   lb,
				Upper:   ub,
				Optimal: b.Optimal,
			})
		}
	}
	return rows, nil
}

// NormalizedShotSum reproduces the paper's summary metric: the sum over
// shapes of shot count divided by the reference count (the upper bound
// for Table 2, the known optimal for Table 3). Shapes without the
// chosen reference are skipped.
func NormalizedShotSum(rows []Row, m Method, useOptimal bool) float64 {
	total := 0.0
	for _, r := range rows {
		if r.Method != m {
			continue
		}
		ref := r.Upper
		if useOptimal {
			ref = r.Optimal
		}
		if ref <= 0 {
			continue
		}
		total += float64(r.Shots) / float64(ref)
	}
	return total
}

// FormatTable renders rows as an aligned text table in the layout of
// the paper's Tables 2/3: one line per shape, one column group per
// method, plus the normalized-shot-count summary line.
func FormatTable(rows []Row, methods []Method, useOptimal bool) string {
	shapes := orderedShapes(rows)
	byKey := make(map[string]Row)
	for _, r := range rows {
		byKey[r.Shape+"|"+string(r.Method)] = r
	}
	var b strings.Builder
	// header
	if useOptimal {
		fmt.Fprintf(&b, "%-8s %8s", "Clip-ID", "Optimal")
	} else {
		fmt.Fprintf(&b, "%-8s %8s", "Clip-ID", "LB/UB")
	}
	for _, m := range methods {
		fmt.Fprintf(&b, " | %-22s", m)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %8s", "", "")
	for range methods {
		fmt.Fprintf(&b, " | %6s %6s %8s", "shots", "fail", "time")
	}
	b.WriteString("\n")
	for _, shape := range shapes {
		first := byKey[shape+"|"+string(methods[0])]
		if useOptimal {
			fmt.Fprintf(&b, "%-8s %8d", shape, first.Optimal)
		} else {
			fmt.Fprintf(&b, "%-8s %5d/%-3d", shape, first.Lower, first.Upper)
		}
		for _, m := range methods {
			r := byKey[shape+"|"+string(m)]
			fmt.Fprintf(&b, " | %6d %6d %7.2fs", r.Shots, r.FailOn+r.FailOff, r.Runtime.Seconds())
		}
		b.WriteString("\n")
	}
	// normalized summary
	if useOptimal {
		fmt.Fprintf(&b, "%-17s", "Sum norm. (opt)")
	} else {
		fmt.Fprintf(&b, "%-17s", "Sum norm. (UB)")
	}
	for _, m := range methods {
		fmt.Fprintf(&b, " | %22.2f", NormalizedShotSum(rows, m, useOptimal))
	}
	b.WriteString("\n")
	return b.String()
}

// orderedShapes returns the distinct shape names in first-seen order.
func orderedShapes(rows []Row) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range rows {
		if !seen[r.Shape] {
			seen[r.Shape] = true
			out = append(out, r.Shape)
		}
	}
	return out
}

// TotalShots sums the shot counts of a method across all rows (the
// paper's secondary Table 2 comparison).
func TotalShots(rows []Row, m Method) int {
	total := 0
	for _, r := range rows {
		if r.Method == m {
			total += r.Shots
		}
	}
	return total
}

// MethodRuntimes returns each method's total runtime over the rows,
// slowest first.
func MethodRuntimes(rows []Row) []struct {
	Method  Method
	Runtime time.Duration
} {
	acc := make(map[Method]time.Duration)
	for _, r := range rows {
		acc[r.Method] += r.Runtime
	}
	out := make([]struct {
		Method  Method
		Runtime time.Duration
	}, 0, len(acc))
	for m, d := range acc {
		out = append(out, struct {
			Method  Method
			Runtime time.Duration
		}{m, d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Runtime > out[j].Runtime })
	return out
}
