module maskfrac

go 1.22
