# Development targets for the maskfrac repo. `make check` is the
# gate: formatting, vet and the full test suite under the race
# detector (the shapecache and fracserve tests are concurrency-heavy).

GO ?= go

.PHONY: all build fmt vet test race bench soak check

all: build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# -short skips the multi-minute fracturing integration suites, which are
# too slow under the race detector; the concurrency-heavy tests
# (shapecache, fracserve, batch, cache) all still run.
race:
	$(GO) test -race -short ./...

# bench runs the quick benchmarks with -benchmem and records the
# results to BENCH_<date>.json; pass BENCH='.' BENCHTIME=3x to widen it
BENCH ?= BenchmarkShapeCache|BenchmarkBatchCache|BenchmarkEngineRegions|BenchmarkRefine
BENCHTIME ?= 1x
bench:
	sh scripts/benchstat.sh '$(BENCH)' '$(BENCHTIME)'

# soak holds an in-process cluster at a steady QPS and records the
# rolling time series + SLO verdict to BENCH_<date>-soak.json
SOAK_NODES ?= 3
SOAK_QPS ?= 150
SOAK_DURATION ?= 60s
soak:
	$(GO) run ./cmd/loadgen -soak -nodes $(SOAK_NODES) -qps $(SOAK_QPS) \
		-duration $(SOAK_DURATION) -method proto-eda \
		-json BENCH_$$(date +%F)-soak.json

check: fmt vet test race
	@echo "check ok"
