// Extensions beyond the paper's fixed-dose rectangular shots: L-shaped
// shots (its reference [20]) and variable-dose shots (its reference
// [18]), plus mask-quality metrics (EPE, dose slope, slivers) for the
// resulting solutions.
package main

import (
	"fmt"
	"log"

	"maskfrac"
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/lshape"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/fracture/vdose"
	"maskfrac/internal/metrics"
)

func main() {
	params := maskfrac.DefaultParams()
	clip := maskfrac.ILTSuite()[0]
	p, err := cover.NewProblem(clip.Target, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip %s: %d vertices\n\n", clip.Name, len(clip.Target))

	// Baseline: the paper's fixed-dose method.
	fixed := mbf.Fracture(p, mbf.Options{})
	fmt.Printf("fixed-dose (paper's method): %d shots, %d failing pixels\n",
		len(fixed.Shots), fixed.Stats.Fail())
	epe := metrics.EPE(p, fixed.Shots, 2)
	slope, minSlope := metrics.DoseSlope(p, fixed.Shots, 4)
	sliv := metrics.Slivers(fixed.Shots, 10)
	fmt.Printf("  EPE: mean %+.2f nm, RMS %.2f nm, p95 %.2f nm, max %.2f nm\n",
		epe.Mean, epe.RMS, epe.P95, epe.Max)
	fmt.Printf("  dose slope: mean %.4f /nm (min %.4f), slivers<10nm: %d/%d\n\n",
		slope, minSlope, sliv.Slivers, sliv.Shots)

	// Extension 1: variable-dose shots. Optimize per-shot doses, then
	// try deleting shots whose area neighbors can re-cover at higher dose.
	vd := vdose.Optimize(p, fixed.Shots, vdose.Options{})
	vd = vdose.Reduce(p, vd, vdose.Options{})
	fmt.Printf("variable-dose extension: %d shots, %d failing pixels\n",
		vd.ShotCount(), vd.Stats.Fail())
	lo, hi := 10.0, 0.0
	for _, s := range vd.Shots {
		if s.Dose < lo {
			lo = s.Dose
		}
		if s.Dose > hi {
			hi = s.Dose
		}
	}
	fmt.Printf("  dose range used: %.2f .. %.2f of nominal\n\n", lo, hi)

	// Extension 2: L-shaped shots on a rectilinear version of the clip
	// (conventional partition, pairs written as single L shots).
	ls, err := lshape.Fracture(p)
	if err != nil {
		log.Fatal(err)
	}
	lCount := 0
	for _, s := range ls.Shots {
		if s.IsL() {
			lCount++
		}
	}
	fmt.Printf("L-shape extension: %d rectangles pair into %d shots (%d L-shots)\n",
		ls.RectCount, ls.ShotCount(), lCount)
	fmt.Printf("  note: partition-based, no proximity compensation — %d failing pixels\n",
		ls.Stats.Fail())
}
