// Quickstart: fracture a simple mask shape with the paper's method and
// inspect the result.
package main

import (
	"fmt"
	"log"

	"maskfrac"
)

func main() {
	// An L-shaped mask target, coordinates in nanometers.
	target := maskfrac.Polygon{
		{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 150, Y: 60},
		{X: 60, Y: 60}, {X: 60, Y: 150}, {X: 0, Y: 150},
	}

	// Sample the shape with the paper's parameters: σ = 6.25 nm blur,
	// γ = 2 nm CD tolerance, ρ = 0.5 dose threshold, 1 nm pixels.
	prob, err := maskfrac.NewProblem(target, maskfrac.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Run the model-based fracturing method (graph coloring + iterative
	// shot refinement).
	res, err := prob.Fracture(maskfrac.MethodMBF, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fractured the L-shape into %d shots in %v\n", res.ShotCount(), res.Runtime.Round(1e6))
	fmt.Printf("CD-clean: %v (failing pixels: %d)\n", res.Feasible(), res.FailingPixels())
	for i, s := range res.Shots {
		fmt.Printf("  shot %d: (%.1f, %.1f) - (%.1f, %.1f)  [%.0f x %.0f nm]\n",
			i+1, s.X0, s.Y0, s.X1, s.Y1, s.W(), s.H())
	}

	// Conventional partition fracturing needs more, non-overlapping
	// shots and ignores proximity. Compare:
	conv, err := prob.Fracture(maskfrac.MethodPartition, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconventional partition: %d shots, %d failing pixels\n",
		conv.ShotCount(), conv.FailingPixels())

	// The dose the shots deliver at the shape center and just outside:
	fmt.Printf("\ndose at (30, 30) inside: %.3f (>= 0.5 required)\n",
		prob.DoseAt(res.Shots, maskfrac.Point{X: 30, Y: 30}))
	fmt.Printf("dose at (100, 100) in the notch: %.3f (< 0.5 required)\n",
		prob.DoseAt(res.Shots, maskfrac.Point{X: 100, Y: 100}))
}
