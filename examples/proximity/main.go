// Proximity effect study: how e-beam blur shapes what a single shot can
// write — edge profiles, corner rounding depth, and the longest 45°
// segment Lth a shot corner can produce within CD tolerance (the
// quantity behind the paper's Fig 2 and its corner point extraction).
package main

import (
	"fmt"

	"maskfrac/internal/ebeam"
)

func main() {
	const rho = 0.5

	fmt.Println("edge profile P(d) for sigma = 6.25 nm (dose vs distance into the shot):")
	m := ebeam.NewModel(6.25)
	for _, d := range []float64{-6, -4, -2, 0, 2, 4, 6} {
		fmt.Printf("  d = %+5.1f nm  P = %.4f\n", d, m.EdgeProfile(d))
	}

	fmt.Println("\ncorner rounding depth and Lth vs CD tolerance gamma (sigma = 6.25 nm):")
	fmt.Printf("  rounding depth at rho=0.5: %.2f nm\n", m.CornerDepth(rho))
	for _, gamma := range []float64{0.5, 1, 2, 3, 4} {
		fmt.Printf("  gamma = %.1f nm  ->  Lth = %5.1f nm\n", gamma, m.Lth(rho, gamma))
	}

	fmt.Println("\nLth vs blur sigma (gamma = 2 nm):")
	for _, sigma := range []float64{3, 5, 6.25, 8, 10, 12} {
		mm := ebeam.NewModel(sigma)
		fmt.Printf("  sigma = %5.2f nm  ->  Lth = %5.1f nm  (depth %.2f nm)\n",
			sigma, mm.Lth(rho, 2), mm.CornerDepth(rho))
	}

	fmt.Println("\ncorner iso-dose contour (quarter-plane shot at the origin, rho = 0.5):")
	for _, p := range m.CornerContour(rho, 9) {
		fmt.Printf("  (%6.2f, %6.2f)\n", p.X, p.Y)
	}
	fmt.Println("\nthe 45-degree run near the diagonal is what mask fracturing exploits")
	fmt.Println("to write diagonal ILT boundary segments with single shot corners.")

	fmt.Println("\ntwo-Gaussian model (alpha=6.25, beta=30, eta=0.3): backscatter")
	fmt.Println("raises the dose tail far from the shot edge:")
	dg := ebeam.NewDoubleGaussian(6.25, 30, 0.3)
	for _, d := range []float64{-40, -25, -15, -8, 0, 8} {
		fmt.Printf("  d = %+5.1f nm  single P = %.4f   double P = %.4f\n",
			d, m.EdgeProfile(d), dg.EdgeProfile(d))
	}
}
