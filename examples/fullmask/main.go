// Full-mask data prep: fracture a batch of clips in parallel (each
// shape is independent, as the paper notes a practical tool must
// exploit), then roll the shot totals into the mask write-time and
// cost model.
package main

import (
	"fmt"
	"runtime"
	"time"

	"maskfrac"
	"maskfrac/internal/writecost"
)

func main() {
	params := maskfrac.DefaultParams()
	suite := maskfrac.ILTSuite()
	targets := make([]maskfrac.Polygon, len(suite))
	for i, b := range suite {
		targets[i] = b.Target
	}

	fmt.Printf("fracturing %d clips on %d workers (proto-eda, then mbf)...\n\n",
		len(targets), runtime.GOMAXPROCS(0))

	t0 := time.Now()
	conv := maskfrac.FractureBatch(targets, params, maskfrac.MethodProtoEDA, nil, 0)
	convSummary := maskfrac.Summarize(conv)
	fmt.Printf("conventional tool: %d shots, %d/%d clips clean (%.1fs)\n",
		convSummary.Shots, convSummary.Feasible, convSummary.Shapes, time.Since(t0).Seconds())

	t0 = time.Now()
	ours := maskfrac.FractureBatch(targets, params, maskfrac.MethodMBF, nil, 0)
	oursSummary := maskfrac.Summarize(ours)
	fmt.Printf("model-based:       %d shots, %d/%d clips clean (%.1fs)\n\n",
		oursSummary.Shots, oursSummary.Feasible, oursSummary.Shapes, time.Since(t0).Seconds())

	// extrapolate the clip-level reduction to a full critical layer
	const shapesPerMask = 100_000_000
	per := int64(shapesPerMask / len(targets))
	model := writecost.Default()
	fmt.Println(model.Summary("full mask layer",
		int64(convSummary.Shots)*per, int64(oursSummary.Shots)*per))
}
