// Full-mask data prep: fracture a batch of clips in parallel (each
// shape is independent, as the paper notes a practical tool must
// exploit), then roll the shot totals into the mask write-time and
// cost model.
//
// With -write-gds, instead emit the synthetic full-mask layout as a
// hierarchical GDSII file (SREF/AREF, ten congruence classes repeated
// across the grid) — the input format cmd/loadgen replays against a
// fracd cluster.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"maskfrac"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapegen"
	"maskfrac/internal/writecost"
)

func main() {
	writeGDS := flag.String("write-gds", "", "write the synthetic full-mask hierarchy as GDSII to this path and exit")
	cols := flag.Int("cols", 8, "tile columns for -write-gds")
	rows := flag.Int("rows", 8, "tile rows for -write-gds")
	flag.Parse()

	if *writeGDS != "" {
		lib := shapegen.DemoLibrary(*cols, *rows)
		n, err := lib.PlacementCount()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*writeGDS)
		if err != nil {
			log.Fatal(err)
		}
		if err := maskio.WriteGDSLib(f, lib); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d cells, %d×%d tile grid, %d placements\n",
			*writeGDS, len(lib.Cells), *cols, *rows, n)
		return
	}

	params := maskfrac.DefaultParams()
	suite := maskfrac.ILTSuite()
	targets := make([]maskfrac.Polygon, len(suite))
	for i, b := range suite {
		targets[i] = b.Target
	}

	fmt.Printf("fracturing %d clips on %d workers (proto-eda, then mbf)...\n\n",
		len(targets), runtime.GOMAXPROCS(0))

	t0 := time.Now()
	conv := maskfrac.FractureBatch(targets, params, maskfrac.MethodProtoEDA, nil, 0)
	convSummary := maskfrac.Summarize(conv)
	fmt.Printf("conventional tool: %d shots, %d/%d clips clean (%.1fs)\n",
		convSummary.Shots, convSummary.Feasible, convSummary.Shapes, time.Since(t0).Seconds())

	t0 = time.Now()
	ours := maskfrac.FractureBatch(targets, params, maskfrac.MethodMBF, nil, 0)
	oursSummary := maskfrac.Summarize(ours)
	fmt.Printf("model-based:       %d shots, %d/%d clips clean (%.1fs)\n\n",
		oursSummary.Shots, oursSummary.Feasible, oursSummary.Shapes, time.Since(t0).Seconds())

	// extrapolate the clip-level reduction to a full critical layer
	const shapesPerMask = 100_000_000
	per := int64(shapesPerMask / len(targets))
	model := writecost.Default()
	fmt.Println(model.Summary("full mask layer",
		int64(convSummary.Shots)*per, int64(oursSummary.Shots)*per))
}
