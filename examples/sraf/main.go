// SRAF cluster fracturing: a main contact feature plus sub-resolution
// assist features fractured as one instance — the workload that
// motivated matching-pursuit fracturing and a standard ILT mask
// pattern. All shapes share the dose budget: assist bars sit within the
// proximity range of the main feature, so their shots interact.
package main

import (
	"fmt"
	"log"

	"maskfrac"
)

func main() {
	cluster := maskfrac.SRAFCluster(7, 4)
	fmt.Printf("instance: 1 main feature + %d assist bars\n", len(cluster)-1)
	for i, pg := range cluster {
		kind := "SRAF"
		if i == 0 {
			kind = "main"
		}
		b := pg.Bounds()
		fmt.Printf("  %-4s %4.0f x %-4.0f nm at (%.0f, %.0f)\n", kind, b.W(), b.H(), b.X0, b.Y0)
	}

	prob, err := maskfrac.NewMultiProblem(cluster, maskfrac.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	on, off := prob.PixelCounts()
	fmt.Printf("\nsampled: %d interior / %d exterior pixels across %d shapes\n\n",
		on, off, len(prob.Targets()))

	for _, m := range []maskfrac.Method{maskfrac.MethodMBF, maskfrac.MethodGSC, maskfrac.MethodProtoEDA} {
		res, err := prob.Fracture(m, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %2d shots, %3d failing pixels, %6.2fs\n",
			m, res.ShotCount(), res.FailingPixels(), res.Runtime.Seconds())
	}
	fmt.Println("\nnote: the naive count is one shot per shape (5); model-based")
	fmt.Println("fracturing must still isolate each bar's dose from its neighbors.")
}
