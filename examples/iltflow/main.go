// ILT mask data prep flow: fracture a suite of curvilinear ILT-like
// clips with every available heuristic and compare shot counts,
// violations and runtimes — the workflow of the paper's Table 2.
package main

import (
	"fmt"
	"log"

	"maskfrac"
)

func main() {
	params := maskfrac.DefaultParams()
	suite := maskfrac.ILTSuite()[:4] // first four clips keep the demo quick
	methods := []maskfrac.Method{
		maskfrac.MethodMBF,
		maskfrac.MethodProtoEDA,
		maskfrac.MethodGSC,
	}

	fmt.Println("ILT mask data prep: per-clip fracturing comparison")
	fmt.Println()
	totals := map[maskfrac.Method]int{}
	for _, clip := range suite {
		prob, err := maskfrac.NewProblem(clip.Target, params)
		if err != nil {
			log.Fatal(err)
		}
		lb, ub := prob.Bounds()
		on, off := prob.PixelCounts()
		fmt.Printf("%s: %d vertices, %d interior / %d exterior pixels, bounds %d..%d\n",
			clip.Name, len(clip.Target), on, off, lb, ub)
		for _, m := range methods {
			res, err := prob.Fracture(m, nil)
			if err != nil {
				log.Fatal(err)
			}
			totals[m] += res.ShotCount()
			fmt.Printf("  %-10s %3d shots  %4d failing  %7.2fs\n",
				m, res.ShotCount(), res.FailingPixels(), res.Runtime.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("total shots:")
	for _, m := range methods {
		fmt.Printf("  %-10s %d\n", m, totals[m])
	}
	if totals[maskfrac.MethodProtoEDA] > 0 {
		saving := 100 * (1 - float64(totals[maskfrac.MethodMBF])/float64(totals[maskfrac.MethodProtoEDA]))
		fmt.Printf("\nmodel-based fracturing uses %.0f%% fewer shots than the conventional-tool baseline\n", saving)
	}
}
