// Mask cost analysis: translate shot-count reductions into mask write
// time and mask cost, reproducing the economic argument of the paper's
// introduction ("a reduction of even 10% in shot count would roughly
// translate to 2% improvement in mask cost").
package main

import (
	"fmt"
	"log"

	"maskfrac"
	"maskfrac/internal/writecost"
)

func main() {
	model := writecost.Default()

	// Headline arithmetic from the paper's introduction.
	fmt.Println("paper's introduction, reproduced:")
	fmt.Println(" ", model.Summary("10% shot reduction", 1_000_000_000, 900_000_000))
	fmt.Println()

	// Now with measured numbers: fracture a few clips with the
	// conventional-tool baseline and the paper's method, extrapolate to
	// a full mask (billions of shapes scale linearly since shapes are
	// fractured independently).
	params := maskfrac.DefaultParams()
	suite := maskfrac.ILTSuite()[:3]
	base, ours := 0, 0
	for _, clip := range suite {
		prob, err := maskfrac.NewProblem(clip.Target, params)
		if err != nil {
			log.Fatal(err)
		}
		pr, err := prob.Fracture(maskfrac.MethodProtoEDA, nil)
		if err != nil {
			log.Fatal(err)
		}
		mr, err := prob.Fracture(maskfrac.MethodMBF, nil)
		if err != nil {
			log.Fatal(err)
		}
		base += pr.ShotCount()
		ours += mr.ShotCount()
		fmt.Printf("%s: conventional %d shots, model-based %d shots\n",
			clip.Name, pr.ShotCount(), mr.ShotCount())
	}
	// extrapolate: a critical mask layer has ~1e9 shapes of this class
	const shapesPerMask = 1_000_000_000 / 3
	baseMask := int64(base) * shapesPerMask
	oursMask := int64(ours) * shapesPerMask
	fmt.Println()
	fmt.Println("extrapolated to a full critical mask layer:")
	fmt.Println(" ", model.Summary("model-based fracturing", baseMask, oursMask))
}
