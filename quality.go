package maskfrac

import "maskfrac/internal/metrics"

// EPEStats summarizes the edge placement error distribution of a shot
// configuration, in nm: the signed distance between the printed
// ρ-contour and the target boundary, sampled along the boundary.
type EPEStats = metrics.EPEStats

// SliverStats counts shots thinner than a sliver threshold. Slivers
// print unreliably on VSB tools, which is why conventional fracturing
// minimizes them.
type SliverStats = metrics.SliverStats

// EPE samples the problem's target boundaries every step nanometers
// (step <= 0 selects 2 nm) and measures the edge placement error the
// shot list produces at each sample.
func (pr *Problem) EPE(shots []Shot, step float64) EPEStats {
	return metrics.EPE(pr.p, shots, step)
}

// Slivers analyzes the shot dimensions against a sliver threshold in
// nm; threshold <= 0 selects the problem's minimum shot size Lmin.
func (pr *Problem) Slivers(shots []Shot, threshold float64) SliverStats {
	if threshold <= 0 {
		threshold = pr.p.Params.Lmin
	}
	return metrics.Slivers(shots, threshold)
}
