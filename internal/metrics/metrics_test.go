package metrics

import (
	"math"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

func squareProblem(t *testing.T, side float64) *cover.Problem {
	t.Helper()
	pg := geom.Polygon{geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side)}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEPEExactShot(t *testing.T) {
	// a shot exactly on the target prints edges exactly at the boundary
	// away from corners: tiny mean EPE, max limited by corner rounding
	p := squareProblem(t, 80)
	st := EPE(p, []geom.Rect{{X0: 0, Y0: 0, X1: 80, Y1: 80}}, 2)
	if st.Samples == 0 {
		t.Fatal("no samples")
	}
	if math.Abs(st.Mean) > 0.5 {
		t.Errorf("mean EPE = %v, want ~0", st.Mean)
	}
	if st.Max > 5.5 {
		t.Errorf("max EPE = %v, corner rounding near samples adjacent to corners stays under ~5", st.Max)
	}
}

func TestEPEBiasedShot(t *testing.T) {
	// a shot biased outward by 1.5 nm shifts the mean EPE positive
	p := squareProblem(t, 80)
	st := EPE(p, []geom.Rect{{X0: -1.5, Y0: -1.5, X1: 81.5, Y1: 81.5}}, 2)
	if st.Mean < 0.75 {
		t.Errorf("mean EPE = %v, want about +1.5", st.Mean)
	}
	under := EPE(p, []geom.Rect{{X0: 1.5, Y0: 1.5, X1: 78.5, Y1: 78.5}}, 2)
	if under.Mean > -0.75 {
		t.Errorf("undersized shot mean EPE = %v, want about -1.5", under.Mean)
	}
}

func TestEPENoShots(t *testing.T) {
	p := squareProblem(t, 80)
	st := EPE(p, nil, 2)
	// dose never crosses rho: every sample clamps to the inward window
	if st.Mean > -5 {
		t.Errorf("no-shot mean EPE = %v, want clamped negative", st.Mean)
	}
	if st.P95 < st.RMS/2 {
		t.Errorf("inconsistent stats: %+v", st)
	}
}

func TestDoseSlope(t *testing.T) {
	p := squareProblem(t, 80)
	mean, min := DoseSlope(p, []geom.Rect{{X0: 0, Y0: 0, X1: 80, Y1: 80}}, 4)
	if mean <= 0 || min <= 0 {
		t.Fatalf("slope = %v/%v", mean, min)
	}
	// analytic slope of the erf profile at the edge: 1/(σ√π) ≈ 0.0903
	want := 1 / (6.25 * math.Sqrt(math.Pi))
	if math.Abs(mean-want) > 0.02 {
		t.Errorf("mean slope = %v, want ≈ %v", mean, want)
	}
	// corners have shallower slope than straight edges
	if min >= mean {
		t.Errorf("min slope %v not below mean %v", min, mean)
	}
}

func TestDoseSlopeEmpty(t *testing.T) {
	p := squareProblem(t, 80)
	mean, min := DoseSlope(p, nil, 4)
	if mean != 0 || min != 0 {
		t.Errorf("empty shots slope = %v/%v", mean, min)
	}
}

func TestSlivers(t *testing.T) {
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 100, Y1: 4}, // sliver (min dim 4)
		{X0: 0, Y0: 0, X1: 50, Y1: 50}, // square
		{X0: 0, Y0: 0, X1: 30, Y1: 10}, // fine
	}
	st := Slivers(shots, 6)
	if st.Shots != 3 || st.Slivers != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MinDim != 4 {
		t.Errorf("MinDim = %v", st.MinDim)
	}
	wantAspect := (25.0 + 1.0 + 3.0) / 3
	if math.Abs(st.MeanAspect-wantAspect) > 1e-9 {
		t.Errorf("MeanAspect = %v, want %v", st.MeanAspect, wantAspect)
	}
	empty := Slivers(nil, 6)
	if empty.Shots != 0 || empty.MinDim != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestWriteTimeProxy(t *testing.T) {
	one := WriteTimeProxy([]geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}})
	two := WriteTimeProxy([]geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
	})
	if two <= one {
		t.Error("proxy not monotone in count")
	}
	big := WriteTimeProxy([]geom.Rect{{X0: 0, Y0: 0, X1: 100, Y1: 100}})
	if big <= one {
		t.Error("proxy not monotone in area")
	}
}
