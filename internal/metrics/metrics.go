// Package metrics computes mask-quality metrics for fracturing
// solutions beyond the pass/fail pixel counts of the core problem:
//
//   - Edge placement error (EPE): the signed distance between the
//     printed ρ-contour and the target boundary, sampled along the
//     boundary. Mask makers track its distribution, not just the
//     worst case.
//   - Dose slope: the dose gradient magnitude at boundary samples —
//     a proxy for exposure latitude (image log-slope); steeper is more
//     robust to dose fluctuation.
//   - Sliver statistics: counts of shots thinner than a threshold.
//     Slivers print unreliably on VSB tools, which is why conventional
//     fracturing minimizes them (Kahng et al., the paper's refs [6,7]).
package metrics

import (
	"math"
	"sort"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

// EPEStats summarizes the edge placement error distribution, in nm.
// Positive EPE means the printed contour bulges outside the target.
type EPEStats struct {
	Samples int
	Mean    float64
	RMS     float64
	Max     float64 // worst absolute EPE
	P95     float64 // 95th percentile of |EPE|
}

// EPE samples the target boundary every step nanometers and measures,
// for each sample, how far along the outward normal the dose crosses ρ
// (searched within ±window nm, resolution res nm).
func EPE(p *cover.Problem, shots []geom.Rect, step float64) EPEStats {
	if step <= 0 {
		step = 2
	}
	const window = 6.0
	const res = 0.25
	var epes []float64
	doseAt := func(pt geom.Point) float64 {
		total := 0.0
		for _, s := range shots {
			total += p.Model.ShotIntensity(s, pt)
		}
		return total
	}
	rho := p.Params.Rho
	for _, t := range p.Targets {
		target := t.EnsureCCW()
		epes = append(epes, epeAlong(p, target, doseAt, rho, step)...)
	}
	return summarizeEPE(epes)
}

// epeAlong samples one boundary and returns its raw EPE values.
func epeAlong(p *cover.Problem, target geom.Polygon, doseAt func(geom.Point) float64, rho, step float64) []float64 {
	const window = 6.0
	const res = 0.25
	var epes []float64
	for i := range target {
		a, b := target.Edge(i)
		d := b.Sub(a)
		length := d.Norm()
		if length == 0 {
			continue
		}
		dir := d.Scale(1 / length)
		outward := geom.Pt(dir.Y, -dir.X)
		for t := step / 2; t < length; t += step {
			base := a.Add(dir.Scale(t))
			// find the dose crossing along the normal
			prevU := -window
			prevD := doseAt(base.Add(outward.Scale(prevU)))
			found := false
			for u := -window + res; u <= window; u += res {
				dd := doseAt(base.Add(outward.Scale(u)))
				if (prevD >= rho) != (dd >= rho) {
					// linear interpolation of the crossing
					frac := (rho - prevD) / (dd - prevD)
					epes = append(epes, prevU+frac*res)
					found = true
					break
				}
				prevU, prevD = u, dd
			}
			if !found {
				// no crossing in the window: clamp to the window edge
				// with the sign of the failure
				if prevD >= rho {
					epes = append(epes, window)
				} else {
					epes = append(epes, -window)
				}
			}
		}
	}
	return epes
}

// summarizeEPE folds raw EPE samples into distribution statistics.
func summarizeEPE(epes []float64) EPEStats {
	st := EPEStats{Samples: len(epes)}
	if len(epes) == 0 {
		return st
	}
	sum, sq := 0.0, 0.0
	abs := make([]float64, len(epes))
	for i, e := range epes {
		sum += e
		sq += e * e
		abs[i] = math.Abs(e)
		if abs[i] > st.Max {
			st.Max = abs[i]
		}
	}
	st.Mean = sum / float64(len(epes))
	st.RMS = math.Sqrt(sq / float64(len(epes)))
	sort.Float64s(abs)
	st.P95 = abs[int(0.95*float64(len(abs)-1))]
	return st
}

// DoseSlope returns the mean and minimum dose gradient magnitude
// (per nm) at samples along the target boundary — the exposure
// latitude proxy. Higher is better.
func DoseSlope(p *cover.Problem, shots []geom.Rect, step float64) (mean, min float64) {
	if step <= 0 {
		step = 4
	}
	const h = 0.5
	doseAt := func(pt geom.Point) float64 {
		total := 0.0
		for _, s := range shots {
			total += p.Model.ShotIntensity(s, pt)
		}
		return total
	}
	min = math.Inf(1)
	n := 0
	sum := 0.0
	for _, target := range p.Targets {
		for i := range target {
			a, b := target.Edge(i)
			d := b.Sub(a)
			length := d.Norm()
			if length == 0 {
				continue
			}
			dir := d.Scale(1 / length)
			for t := step / 2; t < length; t += step {
				pt := a.Add(dir.Scale(t))
				gx := (doseAt(geom.Pt(pt.X+h, pt.Y)) - doseAt(geom.Pt(pt.X-h, pt.Y))) / (2 * h)
				gy := (doseAt(geom.Pt(pt.X, pt.Y+h)) - doseAt(geom.Pt(pt.X, pt.Y-h))) / (2 * h)
				g := math.Hypot(gx, gy)
				sum += g
				n++
				if g < min {
					min = g
				}
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), min
}

// SliverStats summarizes shot aspect quality.
type SliverStats struct {
	Shots      int
	Slivers    int     // shots with min dimension below the threshold
	MinDim     float64 // smallest shot dimension in the set
	MeanAspect float64 // mean of max(w,h)/min(w,h)
}

// Slivers analyzes shot dimensions against a sliver threshold in nm.
func Slivers(shots []geom.Rect, threshold float64) SliverStats {
	st := SliverStats{Shots: len(shots), MinDim: math.Inf(1)}
	if len(shots) == 0 {
		st.MinDim = 0
		return st
	}
	aspectSum := 0.0
	for _, s := range shots {
		w, h := s.W(), s.H()
		minD, maxD := w, h
		if minD > maxD {
			minD, maxD = maxD, minD
		}
		if minD < st.MinDim {
			st.MinDim = minD
		}
		if minD < threshold {
			st.Slivers++
		}
		if minD > 0 {
			aspectSum += maxD / minD
		}
	}
	st.MeanAspect = aspectSum / float64(len(shots))
	return st
}

// WriteTimeProxy returns the sum of per-shot overheads plus a small
// area-dependent term: a finer write-time proxy than raw shot count,
// used to compare solutions with equal counts. Units are arbitrary.
func WriteTimeProxy(shots []geom.Rect) float64 {
	const perShot = 1.0
	const perArea = 1e-4
	total := 0.0
	for _, s := range shots {
		total += perShot + perArea*s.Area()
	}
	return total
}
