// Package svg renders mask shapes, shots, corner points and dose
// contours to standalone SVG files — the library's replacement for the
// paper's figures (Fig 1–5 illustrations and shape/solution plots).
package svg

import (
	"bufio"
	"fmt"
	"io"

	"maskfrac/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport.
// Y is flipped so larger y renders upward, as in the paper's figures.
type Canvas struct {
	view  geom.Rect
	scale float64
	elems []string
}

// NewCanvas creates a canvas for the world-coordinate viewport view,
// rendered at the given scale (pixels per nanometer).
func NewCanvas(view geom.Rect, scale float64) *Canvas {
	if scale <= 0 {
		scale = 4
	}
	return &Canvas{view: view.Inset(-4), scale: scale}
}

// x and y map world coordinates to SVG pixels.
func (c *Canvas) x(v float64) float64 { return (v - c.view.X0) * c.scale }
func (c *Canvas) y(v float64) float64 { return (c.view.Y1 - v) * c.scale }

// Polygon draws a closed polygon with the given fill and stroke.
func (c *Canvas) Polygon(pg geom.Polygon, fill, stroke string, width float64) {
	if len(pg) == 0 {
		return
	}
	pts := ""
	for _, p := range pg {
		pts += fmt.Sprintf("%.2f,%.2f ", c.x(p.X), c.y(p.Y))
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<polygon points=%q fill=%q stroke=%q stroke-width="%.2f"/>`,
		pts, fill, stroke, width*c.scale))
}

// Rect draws a rectangle with the given fill (use e.g. "rgba(0,0,255,0.2)"
// for translucent shots) and stroke.
func (c *Canvas) Rect(r geom.Rect, fill, stroke string, width float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill=%q stroke=%q stroke-width="%.2f"/>`,
		c.x(r.X0), c.y(r.Y1), r.W()*c.scale, r.H()*c.scale, fill, stroke, width*c.scale))
}

// Circle draws a dot at p with radius rad (world units).
func (c *Canvas) Circle(p geom.Point, rad float64, fill string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill=%q/>`,
		c.x(p.X), c.y(p.Y), rad*c.scale, fill))
}

// Line draws a segment from a to b.
func (c *Canvas) Line(a, b geom.Point, stroke string, width float64) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke=%q stroke-width="%.2f"/>`,
		c.x(a.X), c.y(a.Y), c.x(b.X), c.y(b.Y), stroke, width*c.scale))
}

// Text places a label at p with the given font size in world units.
func (c *Canvas) Text(p geom.Point, size float64, s string) {
	c.elems = append(c.elems, fmt.Sprintf(
		`<text x="%.2f" y="%.2f" font-size="%.2f" font-family="sans-serif">%s</text>`,
		c.x(p.X), c.y(p.Y), size*c.scale, s))
}

// Polyline draws an open polyline through pts.
func (c *Canvas) Polyline(pts []geom.Point, stroke string, width float64) {
	if len(pts) < 2 {
		return
	}
	s := ""
	for _, p := range pts {
		s += fmt.Sprintf("%.2f,%.2f ", c.x(p.X), c.y(p.Y))
	}
	c.elems = append(c.elems, fmt.Sprintf(
		`<polyline points=%q fill="none" stroke=%q stroke-width="%.2f"/>`,
		s, stroke, width*c.scale))
}

// WriteTo emits the SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	wr := func(format string, args ...any) error {
		k, err := fmt.Fprintf(bw, format, args...)
		n += int64(k)
		return err
	}
	wpx := c.view.W() * c.scale
	hpx := c.view.H() * c.scale
	if err := wr("<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
		wpx, hpx, wpx, hpx); err != nil {
		return n, err
	}
	if err := wr("<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n"); err != nil {
		return n, err
	}
	for _, e := range c.elems {
		if err := wr("%s\n", e); err != nil {
			return n, err
		}
	}
	if err := wr("</svg>\n"); err != nil {
		return n, err
	}
	return n, bw.Flush()
}
