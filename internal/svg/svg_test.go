package svg

import (
	"bytes"
	"strings"
	"testing"

	"maskfrac/internal/geom"
)

func render(t *testing.T, c *Canvas) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestEmptyCanvas(t *testing.T) {
	c := NewCanvas(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, 4)
	out := render(t, c)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Errorf("malformed document: %q", out)
	}
	if !strings.Contains(out, `fill="white"`) {
		t.Error("missing background")
	}
}

func TestElements(t *testing.T) {
	c := NewCanvas(geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}, 2)
	c.Polygon(geom.Polygon{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8)}, "red", "black", 0.5)
	c.Rect(geom.Rect{X0: 20, Y0: 20, X1: 40, Y1: 30}, "blue", "none", 0.2)
	c.Circle(geom.Pt(50, 50), 2, "green")
	c.Line(geom.Pt(0, 0), geom.Pt(100, 100), "gray", 0.1)
	c.Text(geom.Pt(10, 90), 4, "label")
	c.Polyline([]geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: 10, Y: 0}}, "purple", 0.3)
	out := render(t, c)
	for _, tag := range []string{"<polygon", "<rect", "<circle", "<line", "<text", "<polyline", "label"} {
		if !strings.Contains(out, tag) {
			t.Errorf("missing %s element", tag)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	// world y=0 must render at the BOTTOM (larger SVG y) than world y=10
	c := NewCanvas(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, 1)
	if c.y(0) <= c.y(10) {
		t.Errorf("y axis not flipped: y(0)=%v y(10)=%v", c.y(0), c.y(10))
	}
}

func TestDegenerateInputs(t *testing.T) {
	c := NewCanvas(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, 0) // zero scale -> default
	c.Polygon(nil, "red", "black", 1)
	c.Polyline([]geom.Point{{X: 1, Y: 1}}, "red", 1)
	out := render(t, c)
	if strings.Contains(out, "<polygon") || strings.Contains(out, "<polyline") {
		t.Error("degenerate elements emitted")
	}
}
