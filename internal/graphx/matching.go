package graphx

// Bipartite maximum matching (Hopcroft–Karp) and König minimum vertex
// cover / maximum independent set. The optimal minimum rectangle
// partition of a rectilinear polygon cuts along a maximum independent
// set of the "chord intersection" bipartite graph (horizontal chords vs
// vertical chords between concave corners); see fracture/partition.

// Bipartite is a bipartite graph with nl left and nr right vertices.
type Bipartite struct {
	NL, NR int
	adj    [][]int // adj[l] = right neighbors of left vertex l
}

// NewBipartite returns an empty bipartite graph.
func NewBipartite(nl, nr int) *Bipartite {
	return &Bipartite{NL: nl, NR: nr, adj: make([][]int, nl)}
}

// AddEdge inserts an edge between left vertex l and right vertex r.
func (b *Bipartite) AddEdge(l, r int) {
	b.adj[l] = append(b.adj[l], r)
}

const unmatched = -1

// MaxMatching returns a maximum matching via Hopcroft–Karp:
// matchL[l] = matched right vertex or -1, matchR[r] symmetric, and the
// matching size.
func (b *Bipartite) MaxMatching() (matchL, matchR []int, size int) {
	matchL = make([]int, b.NL)
	matchR = make([]int, b.NR)
	for i := range matchL {
		matchL[i] = unmatched
	}
	for i := range matchR {
		matchR[i] = unmatched
	}
	dist := make([]int, b.NL)
	queue := make([]int, 0, b.NL)

	bfs := func() bool {
		queue = queue[:0]
		const inf = int(^uint(0) >> 1)
		found := false
		for l := 0; l < b.NL; l++ {
			if matchL[l] == unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range b.adj[l] {
				nl := matchR[r]
				if nl == unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}
	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range b.adj[l] {
			nl := matchR[r]
			if nl == unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		const inf = int(^uint(0) >> 1)
		dist[l] = inf
		return false
	}
	for bfs() {
		for l := 0; l < b.NL; l++ {
			if matchL[l] == unmatched && dfs(l) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// MaxIndependentSet returns a maximum independent set of the bipartite
// graph via König's theorem: complement of the minimum vertex cover
// derived from a maximum matching. Returns index sets for the left and
// right sides.
func (b *Bipartite) MaxIndependentSet() (left, right []int) {
	matchL, matchR, _ := b.MaxMatching()
	// König: alternate BFS from unmatched left vertices.
	visitL := make([]bool, b.NL)
	visitR := make([]bool, b.NR)
	var stack []int
	for l := 0; l < b.NL; l++ {
		if matchL[l] == unmatched {
			visitL[l] = true
			stack = append(stack, l)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range b.adj[l] {
			if visitR[r] {
				continue
			}
			visitR[r] = true
			if nl := matchR[r]; nl != unmatched && !visitL[nl] {
				visitL[nl] = true
				stack = append(stack, nl)
			}
		}
	}
	// Min vertex cover = unvisited left + visited right;
	// independent set = visited left + unvisited right.
	for l := 0; l < b.NL; l++ {
		if visitL[l] {
			left = append(left, l)
		}
	}
	for r := 0; r < b.NR; r++ {
		if !visitR[r] {
			right = append(right, r)
		}
	}
	return left, right
}
