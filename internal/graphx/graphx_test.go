package graphx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 1) // self loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees = %d %d", g.Degree(1), g.Degree(3))
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	if n := g.Neighbors(1); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Errorf("Neighbors = %v", n)
	}
}

func TestInverse(t *testing.T) {
	g := path(4) // edges 01 12 23
	inv := g.Inverse()
	// inverse edges: 02 03 13
	if inv.EdgeCount() != 3 {
		t.Errorf("inverse edges = %d", inv.EdgeCount())
	}
	for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !inv.HasEdge(e[0], e[1]) {
			t.Errorf("missing inverse edge %v", e)
		}
	}
	if inv.HasEdge(0, 1) {
		t.Error("original edge present in inverse")
	}
	// complement of complement is the original
	back := inv.Inverse()
	if back.EdgeCount() != g.EdgeCount() || !back.HasEdge(1, 2) {
		t.Error("double inverse differs")
	}
}

func TestGreedyColorPath(t *testing.T) {
	for _, order := range []Order{Sequential, WelshPowell, SmallestLast} {
		g := path(6)
		colors, n := g.GreedyColor(order)
		if !g.ValidColoring(colors) {
			t.Errorf("order %v: invalid coloring", order)
		}
		if n != 2 {
			t.Errorf("order %v: path colored with %d colors", order, n)
		}
	}
}

func TestGreedyColorComplete(t *testing.T) {
	g := complete(5)
	colors, n := g.GreedyColor(Sequential)
	if n != 5 || !g.ValidColoring(colors) {
		t.Errorf("K5: %d colors", n)
	}
}

func TestGreedyColorOddCycle(t *testing.T) {
	g := cycle(5)
	colors, n := g.GreedyColor(SmallestLast)
	if !g.ValidColoring(colors) {
		t.Error("invalid coloring")
	}
	if n != 3 {
		t.Errorf("C5 colored with %d colors, want 3", n)
	}
}

func TestGreedyColorEmpty(t *testing.T) {
	g := New(4)
	colors, n := g.GreedyColor(Sequential)
	if n != 1 {
		t.Errorf("edgeless graph used %d colors", n)
	}
	for _, c := range colors {
		if c != 0 {
			t.Error("non-zero color in edgeless graph")
		}
	}
	g0 := New(0)
	if _, n := g0.GreedyColor(WelshPowell); n != 0 {
		t.Errorf("empty graph used %d colors", n)
	}
}

func TestColorClasses(t *testing.T) {
	g := cycle(4)
	colors, n := g.GreedyColor(Sequential)
	classes := ColorClasses(colors, n)
	total := 0
	for c, vs := range classes {
		total += len(vs)
		for _, v := range vs {
			if colors[v] != c {
				t.Errorf("vertex %d in wrong class", v)
			}
		}
	}
	if total != 4 {
		t.Errorf("classes cover %d vertices", total)
	}
}

func TestColorClassesAreCliquesInInverse(t *testing.T) {
	// the paper's reduction: color classes of Ginv are cliques of G
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(12)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(i, j)
				}
			}
		}
		inv := g.Inverse()
		colors, nc := inv.GreedyColor(Sequential)
		if !inv.ValidColoring(colors) {
			t.Fatal("invalid coloring")
		}
		for _, class := range ColorClasses(colors, nc) {
			if !g.IsClique(class) {
				t.Fatalf("color class %v is not a clique of G", class)
			}
		}
	}
}

func TestIsClique(t *testing.T) {
	g := complete(4)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Error("K4 not a clique")
	}
	g2 := path(4)
	if g2.IsClique([]int{0, 1, 2}) {
		t.Error("path not a clique")
	}
	if !g2.IsClique([]int{2}) || !g2.IsClique(nil) {
		t.Error("trivial cliques rejected")
	}
}

func TestGreedyIndependentSet(t *testing.T) {
	g := path(5) // independent set {0,2,4}
	set := g.GreedyIndependentSet()
	if len(set) != 3 {
		t.Errorf("independent set size = %d, want 3", len(set))
	}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				t.Errorf("set not independent: %d-%d", set[i], set[j])
			}
		}
	}
	if got := complete(6).GreedyIndependentSet(); len(got) != 1 {
		t.Errorf("K6 independent set = %v", got)
	}
}

func TestIndependentSetQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(i, j)
				}
			}
		}
		set := g.GreedyIndependentSet()
		if len(set) == 0 {
			return false
		}
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if g.HasEdge(set[i], set[j]) {
					return false
				}
			}
		}
		// maximality: every vertex outside is adjacent to the set
		inSet := make(map[int]bool)
		for _, v := range set {
			inSet[v] = true
		}
		for v := 0; v < n; v++ {
			if inSet[v] {
				continue
			}
			adj := false
			for _, u := range set {
				if g.HasEdge(u, v) {
					adj = true
					break
				}
			}
			if !adj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestColoringUpperBoundQuick(t *testing.T) {
	// greedy coloring uses at most maxDegree+1 colors
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j)
				}
			}
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		for _, order := range []Order{Sequential, WelshPowell, SmallestLast} {
			colors, nc := g.GreedyColor(order)
			if !g.ValidColoring(colors) || nc > maxDeg+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMatchingSimple(t *testing.T) {
	// perfect matching on 3x3
	b := NewBipartite(3, 3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 2)
	_, _, size := b.MaxMatching()
	if size != 3 {
		t.Errorf("matching = %d, want 3", size)
	}
}

func TestMaxMatchingStar(t *testing.T) {
	// all left vertices share one right vertex
	b := NewBipartite(4, 1)
	for l := 0; l < 4; l++ {
		b.AddEdge(l, 0)
	}
	matchL, matchR, size := b.MaxMatching()
	if size != 1 {
		t.Errorf("matching = %d, want 1", size)
	}
	matched := 0
	for _, r := range matchL {
		if r != -1 {
			matched++
		}
	}
	if matched != 1 || matchR[0] == -1 {
		t.Error("match arrays inconsistent")
	}
}

func TestMaxMatchingEmpty(t *testing.T) {
	b := NewBipartite(3, 3)
	if _, _, size := b.MaxMatching(); size != 0 {
		t.Errorf("empty graph matching = %d", size)
	}
}

func TestMatchingQuickConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(8), 1+rng.Intn(8)
		b := NewBipartite(nl, nr)
		edges := make(map[[2]int]bool)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(l, r)
					edges[[2]int{l, r}] = true
				}
			}
		}
		matchL, matchR, size := b.MaxMatching()
		// consistency of the two arrays and edge validity
		cnt := 0
		for l, r := range matchL {
			if r == -1 {
				continue
			}
			cnt++
			if matchR[r] != l || !edges[[2]int{l, r}] {
				return false
			}
		}
		if cnt != size {
			return false
		}
		// compare against brute-force maximum via augmenting paths on a
		// simple Hungarian-style search
		want := bruteMatching(nl, nr, edges)
		return size == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// bruteMatching computes maximum bipartite matching with simple
// augmenting-path search (Kuhn's algorithm) as a test oracle.
func bruteMatching(nl, nr int, edges map[[2]int]bool) int {
	matchR := make([]int, nr)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for r := 0; r < nr; r++ {
			if !edges[[2]int{l, r}] || seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] == -1 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < nl; l++ {
		if try(l, make([]bool, nr)) {
			size++
		}
	}
	return size
}

func TestMaxIndependentSetKonig(t *testing.T) {
	// C4 as bipartite: left {0,1}, right {0,1}, edges (0,0),(0,1),(1,0),(1,1)? No:
	// use path l0-r0-l1-r1: edges (0,0),(1,0),(1,1)
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	b.AddEdge(1, 1)
	left, right := b.MaxIndependentSet()
	// max matching = 2, so MIS = 4-2 = 2
	if len(left)+len(right) != 2 {
		t.Errorf("MIS size = %d, want 2 (left %v right %v)", len(left)+len(right), left, right)
	}
	// independence check
	for _, l := range left {
		for _, r := range right {
			for _, rr := range b.adj[l] {
				if rr == r {
					t.Errorf("MIS contains edge (%d,%d)", l, r)
				}
			}
		}
	}
}

func TestMaxIndependentSetQuick(t *testing.T) {
	// |MIS| = NL + NR - |max matching| (König), and the set is independent
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(7), 1+rng.Intn(7)
		b := NewBipartite(nl, nr)
		adj := make(map[[2]int]bool)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(l, r)
					adj[[2]int{l, r}] = true
				}
			}
		}
		_, _, size := b.MaxMatching()
		left, right := b.MaxIndependentSet()
		if len(left)+len(right) != nl+nr-size {
			return false
		}
		for _, l := range left {
			for _, r := range right {
				if adj[[2]int{l, r}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
