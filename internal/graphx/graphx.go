// Package graphx provides the graph algorithms used by mask fracturing:
// greedy vertex coloring (the paper solves clique partition on the shot
// corner compatibility graph by coloring its inverse graph, §3), greedy
// independent sets (used for shot-count lower bounds), and bipartite
// maximum matching with König vertex covers (used by the optimal
// minimum rectangle partition of rectilinear polygons).
package graphx

import "sort"

// Graph is a simple undirected graph on vertices 0..N-1 stored as
// adjacency sets.
type Graph struct {
	N   int
	adj []map[int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Neighbors returns the sorted neighbor list of u.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Inverse returns the complement graph: an edge between every
// non-adjacent distinct pair of vertices (paper §3: clique partition of
// G equals coloring of G's inverse).
func (g *Graph) Inverse() *Graph {
	inv := New(g.N)
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			if !g.adj[u][v] {
				inv.AddEdge(u, v)
			}
		}
	}
	return inv
}

// Order selects the vertex ordering used by greedy coloring.
type Order int

const (
	// Sequential colors vertices in index order — the "simple
	// sequential coloring heuristic" the paper uses.
	Sequential Order = iota
	// WelshPowell colors vertices in order of decreasing degree.
	WelshPowell
	// SmallestLast uses the Matula–Beck smallest-last ordering.
	SmallestLast
)

// GreedyColor colors g greedily in the given vertex order, assigning
// each vertex the smallest color unused among its neighbors. Returns
// the color of every vertex and the number of colors used.
func (g *Graph) GreedyColor(order Order) (colors []int, n int) {
	idx := g.ordering(order)
	colors = make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	maxColor := -1
	taken := make([]int, g.N+1) // taken[c] == stamp when color c blocked
	stamp := 0
	for _, u := range idx {
		stamp++
		for v := range g.adj[u] {
			if c := colors[v]; c >= 0 {
				taken[c] = stamp
			}
		}
		c := 0
		for taken[c] == stamp {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor + 1
}

// ordering returns the vertex visit order for the given strategy.
func (g *Graph) ordering(order Order) []int {
	idx := make([]int, g.N)
	for i := range idx {
		idx[i] = i
	}
	switch order {
	case Sequential:
		return idx
	case WelshPowell:
		sort.SliceStable(idx, func(a, b int) bool {
			return g.Degree(idx[a]) > g.Degree(idx[b])
		})
		return idx
	case SmallestLast:
		return g.smallestLast()
	}
	return idx
}

// smallestLast computes the Matula–Beck ordering: repeatedly remove a
// minimum-degree vertex; color in reverse removal order.
func (g *Graph) smallestLast() []int {
	deg := make([]int, g.N)
	removed := make([]bool, g.N)
	for i := range deg {
		deg[i] = g.Degree(i)
	}
	order := make([]int, 0, g.N)
	for len(order) < g.N {
		best, bestDeg := -1, g.N+1
		for v := 0; v < g.N; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		removed[best] = true
		order = append(order, best)
		for u := range g.adj[best] {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	// reverse: smallest-degree vertices colored last
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ColorClasses groups vertex indices by color. colors must come from
// GreedyColor with n colors.
func ColorClasses(colors []int, n int) [][]int {
	classes := make([][]int, n)
	for v, c := range colors {
		classes[c] = append(classes[c], v)
	}
	return classes
}

// ValidColoring reports whether no edge of g joins two vertices of the
// same color.
func (g *Graph) ValidColoring(colors []int) bool {
	for u := 0; u < g.N; u++ {
		for v := range g.adj[u] {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether the given vertices are pairwise adjacent in g.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.adj[vs[i]][vs[j]] {
				return false
			}
		}
	}
	return true
}

// GreedyIndependentSet returns a maximal independent set built greedily
// by ascending degree. Its size is a lower bound on the clique partition
// number of g (each independent vertex needs its own clique), which the
// bounds package uses as a shot-count lower bound.
func (g *Graph) GreedyIndependentSet() []int {
	idx := make([]int, g.N)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return g.Degree(idx[a]) < g.Degree(idx[b])
	})
	blocked := make([]bool, g.N)
	var set []int
	for _, v := range idx {
		if blocked[v] {
			continue
		}
		set = append(set, v)
		for u := range g.adj[v] {
			blocked[u] = true
		}
	}
	sort.Ints(set)
	return set
}
