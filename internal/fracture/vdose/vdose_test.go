package vdose

import (
	"math"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/geom"
)

func problem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func squareP(side float64) geom.Polygon {
	return geom.Polygon{geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side)}
}

func TestOptimizeFixesUnderdose(t *testing.T) {
	// the exact-target shot underdoses corner pixels at unit dose;
	// raising the dose slightly fixes them without breaking Poff
	p := problem(t, squareP(60))
	res := Optimize(p, []geom.Rect{{X0: 0, Y0: 0, X1: 60, Y1: 60}}, Options{})
	if !res.Stats.Feasible() {
		t.Errorf("dose optimization left violations: %+v", res.Stats)
	}
	if res.Shots[0].Dose <= 1 {
		t.Errorf("dose not raised: %v", res.Shots[0].Dose)
	}
}

func TestOptimizeRespectsBounds(t *testing.T) {
	p := problem(t, squareP(60))
	opt := Options{MinDose: 0.9, MaxDose: 1.1, Step: 0.05}
	res := Optimize(p, []geom.Rect{{X0: 0, Y0: 0, X1: 60, Y1: 60}}, opt)
	for _, s := range res.Shots {
		if s.Dose < opt.MinDose-1e-9 || s.Dose > opt.MaxDose+1e-9 {
			t.Errorf("dose %v outside [%v, %v]", s.Dose, opt.MinDose, opt.MaxDose)
		}
	}
}

func TestEvalIncrementalConsistency(t *testing.T) {
	p := problem(t, squareP(60))
	e := newEval(p, []Shot{
		{Rect: geom.Rect{X0: 0, Y0: 0, X1: 35, Y1: 60}, Dose: 1.2},
		{Rect: geom.Rect{X0: 30, Y0: 0, X1: 60, Y1: 60}, Dose: 0.8},
	})
	e.setDose(0, 0.9)
	e.remove(1)
	// rebuild from scratch and compare cost
	fresh := newEval(p, append([]Shot(nil), e.shots...))
	a, b := e.stats(), fresh.stats()
	if math.Abs(a.Cost-b.Cost) > 1e-9 || a.Fail() != b.Fail() {
		t.Errorf("incremental %+v vs fresh %+v", a, b)
	}
}

func TestDoseDeltaMatchesRecompute(t *testing.T) {
	p := problem(t, squareP(60))
	e := newEval(p, []Shot{{Rect: geom.Rect{X0: 0, Y0: 0, X1: 60, Y1: 60}, Dose: 1}})
	before := e.stats().Cost
	delta := e.doseDelta(0, 1.1)
	e.setDose(0, 1.1)
	after := e.stats().Cost
	if math.Abs((after-before)-delta) > 1e-9 {
		t.Errorf("delta %v vs actual %v", delta, after-before)
	}
}

func TestReduceDeletesRedundantShot(t *testing.T) {
	p := problem(t, squareP(60))
	rects := []geom.Rect{
		{X0: -0.5, Y0: -0.5, X1: 60.5, Y1: 60.5},
		{X0: 15, Y0: 15, X1: 45, Y1: 45}, // redundant at any dose
	}
	res := Optimize(p, rects, Options{})
	red := Reduce(p, res, Options{})
	if red.ShotCount() != 1 {
		t.Errorf("redundant shot kept: %d shots", red.ShotCount())
	}
	if red.Stats.Fail() > res.Stats.Fail() {
		t.Errorf("reduce made things worse: %+v", red.Stats)
	}
}

func TestVariableDoseNeverWorseThanFixed(t *testing.T) {
	// on an ILT-ish L-shape, dose optimization of the paper-method
	// solution must not increase violations, and Reduce must not
	// increase the shot count
	p := problem(t, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	})
	fixed := mbf.Fracture(p, mbf.Options{})
	res := Optimize(p, fixed.Shots, Options{})
	if res.Stats.Fail() > fixed.Stats.Fail() {
		t.Errorf("optimization increased violations: %d -> %d", fixed.Stats.Fail(), res.Stats.Fail())
	}
	red := Reduce(p, res, Options{})
	if red.ShotCount() > res.ShotCount() {
		t.Errorf("reduce grew the shot count: %d -> %d", res.ShotCount(), red.ShotCount())
	}
	if red.Stats.Fail() > res.Stats.Fail() {
		t.Errorf("reduce increased violations: %+v", red.Stats)
	}
}

func TestShotHelpers(t *testing.T) {
	r := &Result{Shots: []Shot{{Rect: geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, Dose: 1.2}}}
	if r.ShotCount() != 1 {
		t.Errorf("ShotCount = %d", r.ShotCount())
	}
}
