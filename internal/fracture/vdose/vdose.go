// Package vdose implements the variable-dose extension of model-based
// mask fracturing (the paper's reference [18], Galler et al., "Modified
// dose correction strategy for better pattern contrast"): each shot
// carries an individual dose multiplier instead of the fixed unit dose.
// The paper's method deliberately sticks to fixed dose (no tool change,
// per Elayat et al. [21]); this package provides the extension as an
// optional post-pass: starting from any fixed-dose solution, it
// optimizes per-shot doses greedily and then tries to delete shots
// whose area the survivors can re-cover by raising their doses.
package vdose

import (
	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Shot is a rectangle exposed at Dose × the nominal dose.
type Shot struct {
	Rect geom.Rect
	Dose float64
}

// Options tune the dose optimizer.
type Options struct {
	MinDose float64 // lowest allowed multiplier (default 0.6)
	MaxDose float64 // highest allowed multiplier (default 1.6)
	Step    float64 // dose adjustment step (default 0.05)
	Sweeps  int     // optimization sweeps (default 40)
}

func (o Options) withDefaults() Options {
	if o.MinDose == 0 {
		o.MinDose = 0.6
	}
	if o.MaxDose == 0 {
		o.MaxDose = 1.6
	}
	if o.Step == 0 {
		o.Step = 0.05
	}
	if o.Sweeps == 0 {
		o.Sweeps = 40
	}
	return o
}

// Result is a variable-dose fracturing solution.
type Result struct {
	Shots []Shot
	Stats cover.Stats
}

// ShotCount returns the number of shots.
func (r *Result) ShotCount() int { return len(r.Shots) }

// eval tracks a weighted-dose configuration incrementally.
type eval struct {
	p     *cover.Problem
	shots []Shot
	dose  *raster.Field
}

func newEval(p *cover.Problem, shots []Shot) *eval {
	e := &eval{p: p, dose: raster.NewField(p.Grid)}
	for _, s := range shots {
		e.add(s)
	}
	return e
}

func (e *eval) add(s Shot) {
	e.shots = append(e.shots, s)
	e.p.Model.AccumulateShot(e.dose, s.Rect, s.Dose)
}

func (e *eval) remove(i int) {
	s := e.shots[i]
	e.p.Model.AccumulateShot(e.dose, s.Rect, -s.Dose)
	last := len(e.shots) - 1
	e.shots[i] = e.shots[last]
	e.shots = e.shots[:last]
}

func (e *eval) setDose(i int, d float64) {
	s := e.shots[i]
	e.p.Model.AccumulateShot(e.dose, s.Rect, d-s.Dose)
	e.shots[i].Dose = d
}

// stats scans the dose field against the problem's pixel classes.
func (e *eval) stats() cover.Stats {
	var st cover.Stats
	rho := e.p.Params.Rho
	for k, c := range e.p.Class {
		v := e.dose.V[k]
		switch c {
		case cover.On:
			if v < rho {
				st.FailOn++
				st.Cost += rho - v
			}
		case cover.Off:
			if v >= rho {
				st.FailOff++
				st.Cost += v - rho
			}
		}
	}
	return st
}

// doseDelta returns the cost change of setting shot i's dose to d,
// scanning only the shot's support box.
func (e *eval) doseDelta(i int, d float64) float64 {
	s := e.shots[i]
	dd := d - s.Dose
	if dd == 0 {
		return 0
	}
	p := e.p
	g := p.Grid
	i0, j0, i1, j1 := p.Model.SupportBox(g, s.Rect)
	rho := p.Params.Rho
	delta := 0.0
	for j := j0; j <= j1; j++ {
		y := g.Y0 + (float64(j)+0.5)*g.Pitch
		base := j * g.W
		for i2 := i0; i2 <= i1; i2++ {
			k := base + i2
			cls := p.Class[k]
			if cls == cover.Band {
				continue
			}
			x := g.X0 + (float64(i2)+0.5)*g.Pitch
			inc := dd * p.Model.ShotIntensity(s.Rect, geom.Pt(x, y))
			if inc == 0 {
				continue
			}
			v := e.dose.V[k]
			nv := v + inc
			switch cls {
			case cover.On:
				delta += costOn(nv, rho) - costOn(v, rho)
			case cover.Off:
				delta += costOff(nv, rho) - costOff(v, rho)
			}
		}
	}
	return delta
}

func costOn(v, rho float64) float64 {
	if v < rho {
		return rho - v
	}
	return 0
}

func costOff(v, rho float64) float64 {
	if v >= rho {
		return v - rho
	}
	return 0
}

// Optimize assigns per-shot doses to a fixed-dose shot list, greedily
// stepping each shot's dose by ±Step while the Eq. 5 cost decreases.
func Optimize(p *cover.Problem, rects []geom.Rect, opt Options) *Result {
	opt = opt.withDefaults()
	shots := make([]Shot, len(rects))
	for i, r := range rects {
		shots[i] = Shot{Rect: r, Dose: 1}
	}
	e := newEval(p, shots)
	optimizeDoses(e, opt)
	return &Result{Shots: append([]Shot(nil), e.shots...), Stats: e.stats()}
}

// optimizeDoses runs greedy per-shot dose sweeps on e.
func optimizeDoses(e *eval, opt Options) {
	for sweep := 0; sweep < opt.Sweeps; sweep++ {
		improved := false
		for i := range e.shots {
			cur := e.shots[i].Dose
			best, bestDelta := cur, -1e-12
			for _, d := range []float64{cur + opt.Step, cur - opt.Step} {
				if d < opt.MinDose || d > opt.MaxDose {
					continue
				}
				if delta := e.doseDelta(i, d); delta < bestDelta {
					best, bestDelta = d, delta
				}
			}
			if best != cur {
				e.setDose(i, best)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// Reduce tries to delete shots from a variable-dose solution: after
// each tentative deletion the remaining doses are re-optimized, and the
// deletion is kept when the violation count does not grow. This is
// where variable dose pays off — neighbors can raise their dose to
// cover a removed shot's area.
func Reduce(p *cover.Problem, res *Result, opt Options) *Result {
	opt = opt.withDefaults()
	base := res.Stats.Fail()
	cur := append([]Shot(nil), res.Shots...)
	for {
		improved := false
		for i := 0; i < len(cur); i++ {
			trial := make([]Shot, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			e := newEval(p, trial)
			optimizeDoses(e, opt)
			if e.stats().Fail() <= base {
				cur = append([]Shot(nil), e.shots...)
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	e := newEval(p, cur)
	return &Result{Shots: cur, Stats: e.stats()}
}
