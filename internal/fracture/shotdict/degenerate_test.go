package shotdict

import (
	"reflect"
	"testing"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// TestMaximalRectsEmptyBitmap: an all-false bitmap yields no
// rectangles, not a panic or a zero-area rect.
func TestMaximalRectsEmptyBitmap(t *testing.T) {
	b := raster.NewBitmap(raster.Grid{Pitch: 1, W: 12, H: 9})
	if rects := MaximalRects(b); len(rects) != 0 {
		t.Errorf("empty bitmap produced %v", rects)
	}
}

// TestMaximalRectsZeroSizeGrid: a 0×0 grid (no pixels at all) is the
// deepest degenerate case — the sweep must not index anything.
func TestMaximalRectsZeroSizeGrid(t *testing.T) {
	b := raster.NewBitmap(raster.Grid{Pitch: 1})
	if rects := MaximalRects(b); len(rects) != 0 {
		t.Errorf("0x0 grid produced %v", rects)
	}
	row := raster.NewBitmap(raster.Grid{Pitch: 1, W: 5}) // H = 0
	if rects := MaximalRects(row); len(rects) != 0 {
		t.Errorf("5x0 grid produced %v", rects)
	}
}

// TestMaximalRectsSinglePixel: one true pixel is one 1×1-pitch maximal
// rectangle anchored at the pixel's corner in world coordinates.
func TestMaximalRectsSinglePixel(t *testing.T) {
	g := raster.Grid{X0: 10, Y0: -4, Pitch: 2, W: 7, H: 5}
	b := raster.NewBitmap(g)
	b.Set(3, 2, true)
	rects := MaximalRects(b)
	want := []geom.Rect{{X0: 16, Y0: 0, X1: 18, Y1: 2}}
	if !reflect.DeepEqual(rects, want) {
		t.Errorf("single pixel rects = %v, want %v", rects, want)
	}
}

// TestMaximalRectsFullGrid: an all-true bitmap has exactly one maximal
// rectangle — the whole grid.
func TestMaximalRectsFullGrid(t *testing.T) {
	g := raster.Grid{Pitch: 1, W: 9, H: 6}
	b := raster.NewBitmap(g)
	for i := range b.Bits {
		b.Bits[i] = true
	}
	rects := MaximalRects(b)
	want := []geom.Rect{{X0: 0, Y0: 0, X1: 9, Y1: 6}}
	if !reflect.DeepEqual(rects, want) {
		t.Errorf("full grid rects = %v, want %v", rects, want)
	}
}

// TestMaximalRectsSinglePixelRowsAndColumns: a 1-pixel-high bar and a
// 1-pixel-wide bar each produce exactly one maximal rectangle.
func TestMaximalRectsThinBars(t *testing.T) {
	row := bitmapOf(10, 5, geom.Rect{X0: 2, Y0: 2, X1: 8, Y1: 3})
	if rects := MaximalRects(row); len(rects) != 1 ||
		rects[0] != (geom.Rect{X0: 2, Y0: 2, X1: 8, Y1: 3}) {
		t.Errorf("1-high bar rects = %v", rects)
	}
	col := bitmapOf(5, 10, geom.Rect{X0: 2, Y0: 1, X1: 3, Y1: 9})
	if rects := MaximalRects(col); len(rects) != 1 ||
		rects[0] != (geom.Rect{X0: 2, Y0: 1, X1: 3, Y1: 9}) {
		t.Errorf("1-wide bar rects = %v", rects)
	}
}

// TestMaximalRectsScatteredPixels: isolated pixels each become their own
// rectangle — no merging across gaps.
func TestMaximalRectsScatteredPixels(t *testing.T) {
	g := raster.Grid{Pitch: 1, W: 8, H: 8}
	b := raster.NewBitmap(g)
	b.Set(0, 0, true)
	b.Set(7, 0, true)
	b.Set(0, 7, true)
	b.Set(7, 7, true)
	rects := MaximalRects(b)
	if len(rects) != 4 {
		t.Fatalf("4 isolated pixels produced %d rects: %v", len(rects), rects)
	}
	for _, r := range rects {
		if r.W() != 1 || r.H() != 1 {
			t.Errorf("isolated pixel rect %v not 1x1", r)
		}
	}
}

// TestMaximalRectsDeterministicOrder: the candidate enumeration order —
// which downstream greedy solvers iterate in — must not vary between
// runs on the same bitmap. The histogram sweep is deterministic by
// construction; this pins it against a future map-ordered rewrite.
func TestMaximalRectsDeterministicOrder(t *testing.T) {
	build := func() *raster.Bitmap {
		return bitmapOf(24, 24,
			geom.Rect{X0: 1, Y0: 1, X1: 11, Y1: 14},
			geom.Rect{X0: 8, Y0: 6, X1: 22, Y1: 12},
			geom.Rect{X0: 4, Y0: 16, X1: 9, Y1: 23},
			geom.Rect{X0: 18, Y0: 2, X1: 23, Y1: 20})
	}
	base := MaximalRects(build())
	if len(base) < 4 {
		t.Fatalf("composite shape produced only %d rects", len(base))
	}
	for run := 0; run < 20; run++ {
		if got := MaximalRects(build()); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d order diverged:\n%v\nvs\n%v", run, got, base)
		}
	}
}

// TestCandidatesDeterministicOrder pins the full dictionary (maximal
// rects plus biased variants, Lmin-clamped) to a stable order across
// repeated enumerations of the same problem.
func TestCandidatesDeterministicOrder(t *testing.T) {
	p := mustProblem(t)
	base := Candidates(p)
	if len(base) == 0 {
		t.Fatal("no candidates")
	}
	for run := 0; run < 10; run++ {
		if got := Candidates(p); !reflect.DeepEqual(got, base) {
			t.Fatalf("run %d candidate order diverged", run)
		}
	}
}
