package shotdict

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

func bitmapOf(w, h int, rects ...geom.Rect) *raster.Bitmap {
	g := raster.Grid{Pitch: 1, W: w, H: h}
	b := raster.NewBitmap(g)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			c := g.Center(i, j)
			for _, r := range rects {
				if r.Contains(c) {
					b.Bits[g.Index(i, j)] = true
					break
				}
			}
		}
	}
	return b
}

func TestMaximalRectsSingle(t *testing.T) {
	b := bitmapOf(20, 20, geom.Rect{X0: 3, Y0: 4, X1: 13, Y1: 10})
	rects := MaximalRects(b)
	if len(rects) != 1 {
		t.Fatalf("rect count = %d: %v", len(rects), rects)
	}
	if rects[0] != (geom.Rect{X0: 3, Y0: 4, X1: 13, Y1: 10}) {
		t.Errorf("rect = %v", rects[0])
	}
}

func TestMaximalRectsLShape(t *testing.T) {
	// L-shape: exactly two maximal rects (full-width bottom, full-height left)
	b := bitmapOf(20, 20,
		geom.Rect{X0: 0, Y0: 0, X1: 16, Y1: 6},
		geom.Rect{X0: 0, Y0: 0, X1: 6, Y1: 16})
	rects := MaximalRects(b)
	if len(rects) != 2 {
		t.Fatalf("rect count = %d: %v", len(rects), rects)
	}
	want := map[geom.Rect]bool{
		{X0: 0, Y0: 0, X1: 16, Y1: 6}: true,
		{X0: 0, Y0: 0, X1: 6, Y1: 16}: true,
	}
	for _, r := range rects {
		if !want[r] {
			t.Errorf("unexpected maximal rect %v", r)
		}
	}
}

func TestMaximalRectsCross(t *testing.T) {
	// plus sign: three maximal rects (horizontal bar, vertical bar, center square is dominated)
	b := bitmapOf(20, 20,
		geom.Rect{X0: 0, Y0: 7, X1: 18, Y1: 12},
		geom.Rect{X0: 7, Y0: 0, X1: 12, Y1: 18})
	rects := MaximalRects(b)
	if len(rects) != 2 {
		t.Fatalf("rect count = %d: %v", len(rects), rects)
	}
}

func TestMaximalRectsAllMaximal(t *testing.T) {
	// every reported rect must be fully inside and not extensible
	b := bitmapOf(18, 18,
		geom.Rect{X0: 1, Y0: 1, X1: 9, Y1: 12},
		geom.Rect{X0: 6, Y0: 5, X1: 16, Y1: 10})
	g := b.Grid
	inside := func(r geom.Rect) bool {
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				c := g.Center(i, j)
				if r.Contains(c) && c.X > r.X0 && c.X < r.X1 && c.Y > r.Y0 && c.Y < r.Y1 {
					if !b.Bits[g.Index(i, j)] {
						return false
					}
				}
			}
		}
		return true
	}
	rects := MaximalRects(b)
	if len(rects) == 0 {
		t.Fatal("no rects")
	}
	for _, r := range rects {
		if !inside(r) {
			t.Errorf("rect %v not inside region", r)
		}
		for _, grown := range []geom.Rect{
			{X0: r.X0 - 1, Y0: r.Y0, X1: r.X1, Y1: r.Y1},
			{X0: r.X0, Y0: r.Y0 - 1, X1: r.X1, Y1: r.Y1},
			{X0: r.X0, Y0: r.Y0, X1: r.X1 + 1, Y1: r.Y1},
			{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1 + 1},
		} {
			if inside(grown) && grown.X0 >= 0 && grown.Y0 >= 0 &&
				grown.X1 <= float64(g.W) && grown.Y1 <= float64(g.H) {
				t.Errorf("rect %v extensible to %v", r, grown)
			}
		}
	}
}

func mustProblem(t *testing.T) *cover.Problem {
	t.Helper()
	pg := geom.Polygon{geom.Pt(0, 0), geom.Pt(60, 0), geom.Pt(60, 60), geom.Pt(0, 60)}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCandidatesLegalSize(t *testing.T) {
	p := mustProblem(t)
	cands := Candidates(p)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.W() < p.Params.Lmin-1e-9 || c.H() < p.Params.Lmin-1e-9 {
			t.Errorf("candidate %v below Lmin", c)
		}
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	p := mustProblem(t)
	cands := Candidates(p)
	seen := map[geom.Rect]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Errorf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
}

func TestRichDictionary(t *testing.T) {
	// an L-shape has several maximal rects, so the anchor grid expands
	pg := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(90, 40),
		geom.Pt(40, 40), geom.Pt(40, 90), geom.Pt(0, 90),
	}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rich := Rich(p, 24, 0.55)
	if len(rich) < len(Candidates(p)) {
		t.Errorf("rich dictionary (%d) smaller than base (%d)", len(rich), len(Candidates(p)))
	}
	// a 3-step staircase has more anchors and must expand strictly
	stair := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 35), geom.Pt(70, 35),
		geom.Pt(70, 70), geom.Pt(35, 70), geom.Pt(35, 100), geom.Pt(0, 100),
	}
	ps, err := cover.NewProblem(stair, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	richStair := Rich(ps, 24, 0.55)
	if len(richStair) <= len(Candidates(ps)) {
		t.Errorf("staircase rich dictionary (%d) not larger than base (%d)", len(richStair), len(Candidates(ps)))
	}
	for _, c := range rich {
		if c.W() < p.Params.Lmin || c.H() < p.Params.Lmin {
			t.Errorf("rich candidate %v below Lmin", c)
		}
		if f := p.InteriorFraction(c); f < 0.5 {
			t.Errorf("rich candidate %v only %.2f inside", c, f)
		}
	}
}

func TestThin(t *testing.T) {
	v := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := thin(v, 4)
	if len(out) != 4 || out[0] != 0 || out[3] != 9 {
		t.Errorf("thin = %v", out)
	}
	short := thin([]float64{1, 2}, 5)
	if len(short) != 2 {
		t.Errorf("thin short = %v", short)
	}
}
