// Package shotdict enumerates candidate shot dictionaries shared by the
// greedy set cover and matching pursuit baselines: the maximal
// axis-aligned rectangles inscribed in the rasterized target shape,
// plus biased variants.
package shotdict

import (
	"math"
	"sort"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Candidates enumerates the candidate shot dictionary for a problem:
// maximal inscribed rectangles of the target bitmap with the minimum
// shot size enforced, plus ±1 pixel biased variants of each (letting
// greedy methods compensate edge dose).
func Candidates(p *cover.Problem) []geom.Rect {
	base := MaximalRects(p.Inside)
	pitch := p.Params.Pitch
	lmin := p.Params.Lmin
	seen := make(map[geom.Rect]bool)
	var out []geom.Rect
	add := func(r geom.Rect) {
		if r.W() < lmin {
			c := (r.X0 + r.X1) / 2
			r.X0, r.X1 = c-lmin/2, c+lmin/2
		}
		if r.H() < lmin {
			c := (r.Y0 + r.Y1) / 2
			r.Y0, r.Y1 = c-lmin/2, c+lmin/2
		}
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, r := range base {
		add(r)
		add(r.Inset(-pitch))
		add(r.Inset(pitch))
	}
	return out
}

// pixelBox is an inclusive pixel-coordinate rectangle.
type pixelBox struct{ i0, i1, j0, j1 int }

// MaximalRects enumerates the maximal axis-aligned rectangles of the
// true region of b, in world coordinates, using the histogram-stack
// sweep: one histogram of column heights per row, widest rectangle per
// (height, anchor), kept only when it cannot grow downward.
func MaximalRects(b *raster.Bitmap) []geom.Rect {
	g := b.Grid
	heights := make([]int, g.W)
	seen := make(map[pixelBox]bool)
	var boxes []pixelBox
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			if b.Bits[g.Index(i, j)] {
				heights[i]++
			} else {
				heights[i] = 0
			}
		}
		type st struct{ start, h int }
		var stack []st
		for i := 0; i <= g.W; i++ {
			h := 0
			if i < g.W {
				h = heights[i]
			}
			start := i
			for len(stack) > 0 && stack[len(stack)-1].h > h {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				box := pixelBox{i0: top.start, i1: i - 1, j0: j - top.h + 1, j1: j}
				if !extendsDown(b, box) && !seen[box] {
					seen[box] = true
					boxes = append(boxes, box)
				}
				start = top.start
			}
			if h > 0 && (len(stack) == 0 || stack[len(stack)-1].h < h) {
				stack = append(stack, st{start: start, h: h})
			}
		}
	}
	out := make([]geom.Rect, 0, len(boxes))
	for _, box := range boxes {
		out = append(out, geom.Rect{
			X0: g.X0 + float64(box.i0)*g.Pitch,
			Y0: g.Y0 + float64(box.j0)*g.Pitch,
			X1: g.X0 + float64(box.i1+1)*g.Pitch,
			Y1: g.Y0 + float64(box.j1+1)*g.Pitch,
		})
	}
	return out
}

// extendsDown reports whether the pixel box could grow one row down,
// meaning a taller maximal rectangle will be emitted at a later row.
func extendsDown(b *raster.Bitmap, box pixelBox) bool {
	if box.j1+1 >= b.Grid.H {
		return false
	}
	for i := box.i0; i <= box.i1; i++ {
		if !b.Bits[b.Grid.Index(i, box.j1+1)] {
			return false
		}
	}
	return true
}

// Rich enumerates a denser dictionary than Candidates: all rectangles
// spanned by pairs of anchor coordinates (the edge coordinates of the
// maximal inscribed rectangles, thinned to at most maxPerAxis values
// per axis), filtered to legal size and at least minInterior of their
// area inside the target. Interior fractions are computed in O(1) per
// candidate with a summed-area table, so tens of thousands of
// candidates are cheap. Matching pursuit uses this dictionary.
func Rich(p *cover.Problem, maxPerAxis int, minInterior float64) []geom.Rect {
	if maxPerAxis <= 1 {
		maxPerAxis = 24
	}
	base := MaximalRects(p.Inside)
	xs := map[float64]bool{}
	ys := map[float64]bool{}
	for _, r := range base {
		xs[r.X0], xs[r.X1] = true, true
		ys[r.Y0], ys[r.Y1] = true, true
	}
	ax := thin(keys(xs), maxPerAxis)
	ay := thin(keys(ys), maxPerAxis)
	sat := insideSAT(p.Inside)
	g := p.Grid
	lmin := p.Params.Lmin
	var out []geom.Rect
	for i := 0; i < len(ax); i++ {
		for k := i + 1; k < len(ax); k++ {
			if ax[k]-ax[i] < lmin {
				continue
			}
			for j := 0; j < len(ay); j++ {
				for l := j + 1; l < len(ay); l++ {
					if ay[l]-ay[j] < lmin {
						continue
					}
					r := geom.Rect{X0: ax[i], Y0: ay[j], X1: ax[k], Y1: ay[l]}
					in := boxCount(g, sat, r)
					pixels := r.Area() / (g.Pitch * g.Pitch)
					if float64(in) >= minInterior*pixels {
						out = append(out, r)
					}
				}
			}
		}
	}
	return out
}

// keys returns the sorted keys of a float set.
func keys(m map[float64]bool) []float64 {
	out := make([]float64, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// thin uniformly subsamples v down to at most n values, keeping the
// first and last.
func thin(v []float64, n int) []float64 {
	if len(v) <= n {
		return v
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, v[i*(len(v)-1)/(n-1)])
	}
	return out
}

// insideSAT builds the summed-area table of the inside bitmap:
// sat[j*(W+1)+i] counts true pixels with coordinates < (i, j).
func insideSAT(b *raster.Bitmap) []int {
	g := b.Grid
	w := g.W + 1
	sat := make([]int, w*(g.H+1))
	for j := 0; j < g.H; j++ {
		row := 0
		for i := 0; i < g.W; i++ {
			if b.Bits[g.Index(i, j)] {
				row++
			}
			sat[(j+1)*w+i+1] = sat[j*w+i+1] + row
		}
	}
	return sat
}

// boxCount returns the number of true pixels whose centers lie in r.
func boxCount(g raster.Grid, sat []int, r geom.Rect) int {
	i0 := int(math.Ceil((r.X0-g.X0)/g.Pitch - 0.5))
	j0 := int(math.Ceil((r.Y0-g.Y0)/g.Pitch - 0.5))
	i1 := int(math.Ceil((r.X1-g.X0)/g.Pitch-0.5)) - 1
	j1 := int(math.Ceil((r.Y1-g.Y0)/g.Pitch-0.5)) - 1
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	if i1 < i0 || j1 < j0 {
		return 0
	}
	w := g.W + 1
	return sat[(j1+1)*w+i1+1] - sat[j0*w+i1+1] - sat[(j1+1)*w+i0] + sat[j0*w+i0]
}
