// Package mbf implements the paper's model-based mask fracturing method
// (Kagalwalla & Gupta, DAC 2015): graph-coloring-based approximate
// fracturing (§3) followed by iterative shot refinement (§4).
//
// Pipeline:
//
//  1. Approximate the target boundary with Ramer–Douglas–Peucker (tolerance γ).
//  2. Extract typed shot corner points from the approximate boundary,
//     exploiting e-beam corner rounding for diagonal segments (Lth).
//  3. Cluster nearby same-type corner points.
//  4. Build the corner compatibility graph; every clique is a candidate
//     shot. Solve minimum clique partition by greedy coloring of the
//     inverse graph.
//  5. Reconstruct one shot per color class, extending under-constrained
//     shots to the opposite target boundary (Fig 4).
//  6. Iteratively refine: greedy shot edge adjustment with 2σ blocking,
//     bias-all-shots, shot addition/removal and shot merging until all
//     CD violations are fixed or the iteration budget is exhausted.
package mbf

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/telemetry"
)

// Options tune the method. The zero value of each field selects the
// paper's setting (applied by Fracture); the Disable* switches exist for
// the ablation benchmarks.
type Options struct {
	Nmax        int          // max refinement iterations (default 3000)
	NH          int          // non-improving iterations before add/remove (default 5)
	Order       graphx.Order // coloring order (default Sequential, as in the paper)
	RDPTol      float64      // boundary approximation tolerance (default γ)
	OverlapFrac float64      // test-shot interior fraction for graph edges (default 0.8)
	MergeFrac   float64      // merged-shot interior fraction (default 0.9)

	// LShots enables the L-shot matching pass after refinement:
	// compatible rectangle pairs merge into single L-shaped exposures
	// via maximum matching (see lshots.go), reducing the flash count at
	// equal CD violations. Exposed as the "mbf-l" registry method.
	LShots bool

	DisableRDP        bool // ablation: skip boundary approximation
	DisableClustering bool // ablation: skip corner clustering
	DisableMerge      bool // ablation: skip shot merging
	DisableBias       bool // ablation: skip bias-all-shots
	DisableBlocking   bool // ablation: skip the 2σ edge blocking
	SkipRefinement    bool // stop after the coloring stage (initial solution)
	Trace             bool // debug: print refinement progress
}

// withDefaults fills unset options with the paper's settings.
func (o Options) withDefaults(p *cover.Problem) Options {
	if o.Nmax == 0 {
		o.Nmax = 3000
	}
	if o.NH == 0 {
		o.NH = 5
	}
	if o.RDPTol == 0 {
		o.RDPTol = p.Params.Gamma
	}
	if o.OverlapFrac == 0 {
		o.OverlapFrac = 0.8
	}
	if o.MergeFrac == 0 {
		o.MergeFrac = 0.9
	}
	return o
}

// StageInfo reports statistics of the approximate fracturing stage,
// used by the figure-reproduction benchmarks (Fig 1, Fig 3).
type StageInfo struct {
	VerticesIn       int     // target polygon vertices
	VerticesRDP      int     // vertices after boundary approximation
	CornersRaw       int     // corner points before clustering
	Corners          int     // corner points after clustering
	GraphEdges       int     // edges of the compatibility graph G
	Colors           int     // colors used on the inverse graph
	Lth              float64 // the 45° segment bound used
	InitialShots     int     // shots after the coloring stage
	RefineIterations int     // refinement iterations actually run

	// L-shot matching pass statistics (zero unless Options.LShots).
	LCandidates int // L-compatible shot pairs found
	LMatched    int // pairs selected by maximum matching
	LDroppedOdd int // candidate edges dropped by odd-cycle 2-coloring
	LPairs      int // pairs kept after repair (== flashes saved)
}

// Result is the outcome of model-based fracturing.
type Result struct {
	Shots []geom.Rect // final shot set
	// Pairs lists the L-shot pairs of Shots as {i, j} index pairs with
	// i < j: each pair is two rectangles written as one L-shaped flash
	// sharing one dose. Empty unless Options.LShots.
	Pairs   [][2]int
	Stats   cover.Stats // violations of Shots (with Pairs' shared dose)
	Initial []geom.Rect // solution after the coloring stage, before refinement
	Info    StageInfo
}

// ShotCount returns the number of shots in the final solution. Each
// L-shot pair counts as two entries here; see FlashCount for the
// e-beam flash count.
func (r *Result) ShotCount() int { return len(r.Shots) }

// FlashCount returns the number of e-beam flashes the solution writes
// in: every L-shot pair is one flash, every unpaired rectangle is one.
func (r *Result) FlashCount() int { return len(r.Shots) - len(r.Pairs) }

// Fracture runs the full method on a prepared problem.
func Fracture(p *cover.Problem, opt Options) *Result {
	return FractureCtx(context.Background(), p, opt)
}

// FractureCtx is Fracture with telemetry: when ctx carries a trace
// (telemetry.WithTrace), each stage of the method — corner extraction,
// clustering, graph construction, coloring, shot reconstruction, and
// every refinement iteration — records a span with its duration and
// key statistics. Without a trace the instrumentation is free.
func FractureCtx(ctx context.Context, p *cover.Problem, opt Options) *Result {
	opt = opt.withDefaults(p)
	res := &Result{}
	res.Info.VerticesIn = len(p.Target)

	actx, sp := telemetry.StartSpan(ctx, "mbf.approximate")
	shots, info := approximateFracture(actx, p, opt)
	sp.Set("shots", len(shots))
	sp.End()
	res.Initial = append([]geom.Rect(nil), shots...)
	res.Info = info
	res.Info.VerticesIn = len(p.Target)
	res.Info.InitialShots = len(shots)

	final := shots
	if !opt.SkipRefinement {
		var iters int
		final, iters = refine(ctx, p, shots, opt)
		res.Info.RefineIterations = iters
	}
	if opt.LShots {
		lshots, pairs, ls := lshotPass(ctx, p, final, opt)
		res.Shots = lshots
		res.Pairs = pairs
		res.Info.LCandidates = ls.candidates
		res.Info.LMatched = ls.matched
		res.Info.LDroppedOdd = ls.droppedOdd
		res.Info.LPairs = ls.pairs
		res.Stats = p.EvaluatePaired(lshots, pairs)
		return res
	}
	res.Shots = final
	res.Stats = p.Evaluate(final)
	return res
}
