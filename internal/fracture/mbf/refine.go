package mbf

import (
	"context"
	"math"
	"sort"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/fixup"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
	"maskfrac/internal/telemetry"
)

// refine runs the iterative shot refinement of paper §4 (Algorithm 1) on
// the approximate solution and returns the best configuration found
// (fewest failing pixels, ties broken by shot count) plus the number of
// iterations executed. When ctx carries a trace, the pass records a
// "mbf.refine" span with one "mbf.iter" child per iteration annotated
// with the shot count, remaining CD violations and evaluations used.
func refine(ctx context.Context, p *cover.Problem, shots []geom.Rect, opt Options) ([]geom.Rect, int) {
	span := telemetry.ActiveSpan(ctx).Child("mbf.refine")
	e := cover.NewEval(p, shots)
	defer e.Close()
	best := e.SnapshotShots()
	bestFail := e.Stats().Fail()
	if bestFail == 0 {
		span.Set("iterations", 0)
		span.End()
		return best, 0
	}
	var history []float64 // recent cost values for stall detection
	iters := 0
	st := e.Stats()
	for iter := 0; iter < opt.Nmax; iter++ {
		iters = iter + 1
		if st.Fail() < bestFail || (st.Fail() == bestFail && len(e.Shots) < len(best)) {
			best = e.SnapshotShots()
			bestFail = st.Fail()
		}
		if bestFail == 0 {
			break
		}
		if opt.Trace && iter%25 == 0 {
			println("iter", iter, "shots", len(e.Shots), "failOn", st.FailOn, "failOff", st.FailOff, "cost", int(st.Cost*1000))
		}
		iterSpan := span.Child("mbf.iter")
		evalsBefore := e.Evals
		pxBefore := e.PixelsScored + e.PixelsMutated
		if stalled(history, opt.NH) {
			if opt.Trace {
				println("  stall action at iter", iter, "failOn", st.FailOn, "failOff", st.FailOff)
			}
			// cost has not improved for NH iterations: change the shot
			// count (paper lines 5-11)
			if st.FailOn > st.FailOff {
				addShot(e)
			} else if len(e.Shots) > 0 {
				removeShot(e)
			}
			if !opt.DisableMerge {
				mergeShots(e, opt)
			}
			history = history[:0]
		} else {
			moved := greedyEdgeAdjust(e, opt)
			if !moved && !opt.DisableBias {
				biasAllShotsWith(e, st)
			}
		}
		st = e.Stats()
		history = append(history, st.Cost)
		if len(history) > opt.NH+1 {
			history = history[1:]
		}
		if iterSpan != nil {
			iterSpan.Set("shots", len(e.Shots))
			iterSpan.Set("fail_on", st.FailOn)
			iterSpan.Set("fail_off", st.FailOff)
			iterSpan.Set("evals", e.Evals-evalsBefore)
			iterSpan.Set("px", e.PixelsScored+e.PixelsMutated-pxBefore)
			iterSpan.End()
		}
	}
	span.Set("iterations", iters)
	span.Set("fail", bestFail)
	span.Set("evals", e.Evals)
	span.Set("mutations", e.Mutations)
	span.Set("px", e.PixelsScored+e.PixelsMutated)
	span.End()
	best = polish(ctx, p, best)
	best = postCleanup(ctx, p, best, opt)
	return best, iters
}

// polish clears residual violations the stall-driven loop left behind:
// alternate targeted shot addition (for underdosed blobs) with bounded
// edge adjustment (which also shrinks overdosing shots), keeping the
// best state. Uses the same operators as Algorithm 1, sequenced
// deterministically instead of stall-triggered.
func polish(ctx context.Context, p *cover.Problem, shots []geom.Rect) []geom.Rect {
	ctx, span := telemetry.StartSpan(ctx, "mbf.polish")
	defer span.End()
	e := cover.NewEval(p, shots)
	defer func() { e.Close() }()
	best := e.SnapshotShots()
	bestFail := e.Stats().Fail()
	for iter := 0; iter < 30 && bestFail > 0; iter++ {
		st := e.Stats()
		if st.FailOn > 0 {
			addShot(e)
		}
		fixup.EdgeAdjustCtx(ctx, p, e, 25)
		if f := e.Stats().Fail(); f < bestFail {
			bestFail = f
			best = e.SnapshotShots()
		} else if f > bestFail {
			// diverging: restart from the best state, recycling the
			// stale evaluator's buffers into the replacement
			e.Close()
			e = cover.NewEval(p, best)
		}
	}
	return best
}

// postCleanup reduces the shot count of the final solution without
// letting the number of failing pixels grow: shots whose removal keeps
// all constraints satisfied are deleted, then the Fig-5 merge pass runs
// once more and is kept only if it does not hurt. (Refinement exits as
// soon as |Pfail| reaches zero, so the in-loop merge never sees the
// final configuration.)
func postCleanup(ctx context.Context, p *cover.Problem, shots []geom.Rect, opt Options) []geom.Rect {
	ctx, span := telemetry.StartSpan(ctx, "mbf.cleanup")
	defer span.End()
	e := cover.NewEval(p, shots)
	defer func() { e.Close() }()
	baseStats := e.Stats()
	baseFail := baseStats.Fail()
	baseCost := baseStats.Cost
	// drop redundant shots: rescan after every removal until stable
	for {
		removed := false
		for i := 0; i < len(e.Shots); i++ {
			s := e.Shots[i]
			e.Remove(i)
			if st := e.Stats(); st.Fail() <= baseFail && st.Cost <= baseCost+1e-9 {
				removed = true
				break
			}
			// removal hurt: back out, restoring the original order
			e.UndoRemove(i, s)
		}
		if !removed {
			break
		}
	}
	if !opt.DisableMerge {
		candidate := cover.NewEval(p, e.SnapshotShots())
		mergeShots(candidate, opt)
		if st := candidate.Stats(); st.Fail() <= baseFail && st.Cost <= baseCost+1e-9 && len(candidate.Shots) < len(e.Shots) {
			e.Close()
			e = candidate
		} else {
			candidate.Close()
		}
	}
	return removeAndRepair(ctx, p, e.SnapshotShots(), baseFail)
}

// removeAndRepair tries to delete each shot and let a bounded
// edge-adjustment pass re-cover its area with the survivors' slack; a
// deletion is kept when the violation count does not grow. The greedy
// coloring stage over-segments wavy shapes (several near-parallel
// cliques produce shots that almost shadow each other), and this pass
// collapses them while the paper's in-loop removal cannot (refinement
// exits the moment the solution turns feasible).
func removeAndRepair(ctx context.Context, p *cover.Problem, shots []geom.Rect, baseFail int) []geom.Rect {
	if len(shots) > 48 {
		return shots // quadratic pass too costly; counts this high never win anyway
	}
	cur := shots
	for {
		improved := false
		for i := 0; i < len(cur); i++ {
			trial := make([]geom.Rect, 0, len(cur)-1)
			trial = append(trial, cur[:i]...)
			trial = append(trial, cur[i+1:]...)
			e := cover.NewEval(p, trial)
			fixup.EdgeAdjustCtx(ctx, p, e, 30)
			repaired := e.Stats().Fail() <= baseFail
			if repaired {
				cur = e.SnapshotShots()
				improved = true
			}
			e.Close()
			if repaired {
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// stalled reports whether the cost failed to improve by more than 1e-6
// over the last NH iterations.
func stalled(history []float64, nh int) bool {
	if len(history) <= nh {
		return false
	}
	first := history[0]
	bestLater := math.Inf(1)
	for _, c := range history[1:] {
		bestLater = math.Min(bestLater, c)
	}
	return first-bestLater < 1e-6
}

// side identifies one of the four edges of a shot.
type side uint8

const (
	left side = iota
	right
	bottom
	top
)

// movedRect returns r with the given edge shifted by d.
func movedRect(r geom.Rect, s side, d float64) geom.Rect {
	switch s {
	case left:
		r.X0 += d
	case right:
		r.X1 += d
	case bottom:
		r.Y0 += d
	case top:
		r.Y1 += d
	}
	return r
}

// edgeSegment returns the endpoints of the given edge of r.
func edgeSegment(r geom.Rect, s side) (geom.Point, geom.Point) {
	switch s {
	case left:
		return geom.Pt(r.X0, r.Y0), geom.Pt(r.X0, r.Y1)
	case right:
		return geom.Pt(r.X1, r.Y0), geom.Pt(r.X1, r.Y1)
	case bottom:
		return geom.Pt(r.X0, r.Y0), geom.Pt(r.X1, r.Y0)
	default:
		return geom.Pt(r.X0, r.Y1), geom.Pt(r.X1, r.Y1)
	}
}

// legalMove reports whether replacing shot i by nr keeps the
// configuration writable: the minimum shot size holds, and when shot i
// is one arm of an L-shot the moved arm still forms an L with its
// partner (a single L-aperture flash cannot write a T, staircase or
// disconnected pair). Unpaired shots only check the size constraint.
func legalMove(e *cover.Eval, i int, nr geom.Rect) bool {
	if !e.P.MinSizeOK(nr) {
		return false
	}
	if j := e.Partner(i); j >= 0 && !cover.UnionIsLShot(nr, e.Shots[j]) {
		return false
	}
	return true
}

// greedyEdgeAdjust implements the paper's main refinement move (§4.1):
// score moving every shot edge by ±Δp, sort by cost reduction, and
// accept reducing moves greedily while blocking any further edge within
// 2σ of an accepted one (to avoid canceling move cycles). Reports
// whether any edge moved. Paired L-shot arms participate like any
// other shot — DeltaCost and ApplyDelta carry the shared-dose overlap
// term — but only moves that keep the pair an L are considered.
func greedyEdgeAdjust(e *cover.Eval, opt Options) bool {
	p := e.P
	pitch := p.Params.Pitch
	type cand struct {
		shot  int
		s     side
		d     float64
		delta float64
	}
	var cands []cand
	for i, r := range e.Shots {
		for _, s := range []side{left, right, bottom, top} {
			best := cand{delta: math.Inf(1)}
			for _, d := range []float64{pitch, -pitch} {
				nr := movedRect(r, s, d)
				if !legalMove(e, i, nr) {
					continue
				}
				delta := e.DeltaCost(i, nr)
				if delta < best.delta {
					best = cand{shot: i, s: s, d: d, delta: delta}
				}
			}
			if best.delta < -1e-12 {
				cands = append(cands, best)
			}
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].delta < cands[b].delta })
	blockRadius := 2 * p.Params.Sigma
	type seg struct{ a, b geom.Point }
	var blocked []seg
	moved := false
	for _, c := range cands {
		cur := e.Shots[c.shot]
		nr := movedRect(cur, c.s, c.d)
		if !legalMove(e, c.shot, nr) {
			continue // opposite edge (or the L partner) may have moved already
		}
		a, b := edgeSegment(nr, c.s)
		if !opt.DisableBlocking {
			hit := false
			for _, bs := range blocked {
				if geom.SegSegDist(a, b, bs.a, bs.b) < blockRadius {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
		}
		// re-score against the current configuration; earlier accepted
		// moves may have changed the benefit
		delta := e.DeltaCost(c.shot, nr)
		if delta >= 0 {
			continue
		}
		e.ApplyDelta(c.shot, nr, delta)
		blocked = append(blocked, seg{a, b})
		moved = true
	}
	return moved
}

// biasAllShots shifts every shot edge by one pixel (paper §4.2): when
// failing Pon pixels outnumber failing Poff pixels all shots shrink,
// otherwise all shots expand. (This is the paper's stated direction; it
// acts as a perturbation to escape local minima, not a greedy step.)
// Edges are not moved when that would violate the minimum shot size.
func biasAllShots(e *cover.Eval) {
	biasAllShotsWith(e, e.Stats())
}

// biasAllShotsWith is biasAllShots with precomputed stats.
func biasAllShotsWith(e *cover.Eval, st cover.Stats) {
	p := e.P
	d := p.Params.Pitch
	shrink := st.FailOn > st.FailOff
	for i, r := range e.Shots {
		var nr geom.Rect
		if shrink {
			nr = geom.Rect{X0: r.X0 + d, Y0: r.Y0 + d, X1: r.X1 - d, Y1: r.Y1 - d}
			if nr.W() < p.Params.Lmin || nr.H() < p.Params.Lmin {
				continue
			}
		} else {
			nr = geom.Rect{X0: r.X0 - d, Y0: r.Y0 - d, X1: r.X1 + d, Y1: r.Y1 + d}
		}
		if j := e.Partner(i); j >= 0 && !cover.UnionIsLShot(nr, e.Shots[j]) {
			continue
		}
		e.SetShot(i, nr)
	}
}

// addShot adds one shot over the largest blob of failing Pon pixels
// (paper §4.3): failing interior pixels are merged into connected
// components, each component's bounding box is expanded to the minimum
// shot size, and the box covering the most failing pixels is added.
func addShot(e *cover.Eval) {
	p := e.P
	failOn, _ := e.FailingBitmaps()
	if failOn.Count() == 0 {
		return
	}
	labels := raster.ConnectedComponents(failOn)
	boxes := labels.Boxes()
	bestIdx, bestCount := -1, 0
	for i, b := range boxes {
		if b.Count > bestCount {
			bestIdx, bestCount = i, b.Count
		}
	}
	if bestIdx < 0 {
		return
	}
	b := boxes[bestIdx]
	g := p.Grid
	r := geom.Rect{
		X0: g.X0 + float64(b.I0)*g.Pitch,
		Y0: g.Y0 + float64(b.J0)*g.Pitch,
		X1: g.X0 + float64(b.I1+1)*g.Pitch,
		Y1: g.Y0 + float64(b.J1+1)*g.Pitch,
	}
	lmin := p.Params.Lmin
	if r.W() < lmin {
		c := (r.X0 + r.X1) / 2
		r.X0, r.X1 = c-lmin/2, c+lmin/2
	}
	if r.H() < lmin {
		c := (r.Y0 + r.Y1) / 2
		r.Y0, r.Y1 = c-lmin/2, c+lmin/2
	}
	e.Add(r)
}

// removeShot removes the shot with the most failing Poff pixels within
// distance σ (paper §4.4): the dose of a shot is below 0.5 beyond σ, so
// deleting that shot most likely clears those violations.
func removeShot(e *cover.Eval) {
	p := e.P
	_, failOff := e.FailingBitmaps()
	g := p.Grid
	sigma := p.Params.Sigma
	counts := make([]int, len(e.Shots))
	for k, v := range failOff.Bits {
		if !v {
			continue
		}
		i, j := g.Coords(k)
		pt := g.Center(i, j)
		for si, s := range e.Shots {
			if s.Dist(pt) < sigma {
				counts[si]++
			}
		}
	}
	bestIdx, bestCount := 0, -1
	for si, c := range counts {
		if c > bestCount {
			bestIdx, bestCount = si, c
		}
	}
	if len(e.Shots) > 0 {
		e.Remove(bestIdx)
	}
}

// mergeShots merges shot pairs (paper §4.5, Fig 5): aligned shots whose
// x (or y) extents agree within γ merge by vertical (horizontal)
// extension when at least opt.MergeFrac of the merged shot lies inside
// the target, and fully contained shots are deleted. Repeats until no
// merge applies.
func mergeShots(e *cover.Eval, opt Options) {
	p := e.P
	gamma := p.Params.Gamma
	for {
		merged := false
	scan:
		for i := 0; i < len(e.Shots); i++ {
			for j := i + 1; j < len(e.Shots); j++ {
				si, sj := e.Shots[i], e.Shots[j]
				// criterion 2: containment
				if si.ContainsRect(sj) {
					e.Remove(j)
					merged = true
					break scan
				}
				if sj.ContainsRect(si) {
					e.Remove(i)
					merged = true
					break scan
				}
				// criterion 1: aligned extension
				if math.Abs(si.X0-sj.X0) <= gamma && math.Abs(si.X1-sj.X1) <= gamma {
					m := geom.Rect{
						X0: (si.X0 + sj.X0) / 2,
						X1: (si.X1 + sj.X1) / 2,
						Y0: math.Min(si.Y0, sj.Y0),
						Y1: math.Max(si.Y1, sj.Y1),
					}
					if p.InteriorFraction(m) >= opt.MergeFrac {
						e.Remove(j)
						e.SetShot(i, m)
						merged = true
						break scan
					}
				}
				if math.Abs(si.Y0-sj.Y0) <= gamma && math.Abs(si.Y1-sj.Y1) <= gamma {
					m := geom.Rect{
						Y0: (si.Y0 + sj.Y0) / 2,
						Y1: (si.Y1 + sj.Y1) / 2,
						X0: math.Min(si.X0, sj.X0),
						X1: math.Max(si.X1, sj.X1),
					}
					if p.InteriorFraction(m) >= opt.MergeFrac {
						e.Remove(j)
						e.SetShot(i, m)
						merged = true
						break scan
					}
				}
			}
		}
		if !merged {
			return
		}
	}
}

// MergePass applies the Fig-5 shot merging rules to a shot list until
// stable and returns the result. Exported for the figure-reproduction
// benchmarks.
func MergePass(p *cover.Problem, shots []geom.Rect) []geom.Rect {
	e := cover.NewEval(p, shots)
	defer e.Close()
	mergeShots(e, Options{}.withDefaults(p))
	return e.SnapshotShots()
}
