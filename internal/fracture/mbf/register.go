package mbf

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
)

// init registers the paper's method with the engine's solver registry
// under the name the public facade exposes.
func init() {
	engine.Register("mbf", func(ctx context.Context, p *cover.Problem, opt engine.Options) (*engine.Solution, error) {
		r := FractureCtx(ctx, p, Options{
			Nmax:           opt.MaxIterations,
			Order:          opt.Order,
			SkipRefinement: opt.SkipRefinement,
		})
		info := r.Info
		return &engine.Solution{Shots: r.Shots, Stage: &info}, nil
	})
}
