package mbf

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
)

// init registers the paper's method with the engine's solver registry
// under the names the public facade exposes: "mbf" is the
// rectangle-only method, "mbf-l" appends the L-shot matching pass
// (lshots.go) so compatible rectangle pairs price as single flashes.
func init() {
	register := func(name string, lshots bool) {
		engine.Register(name, func(ctx context.Context, p *cover.Problem, opt engine.Options) (*engine.Solution, error) {
			r := FractureCtx(ctx, p, Options{
				Nmax:           opt.MaxIterations,
				Order:          opt.Order,
				SkipRefinement: opt.SkipRefinement,
				LShots:         lshots,
			})
			info := r.Info
			return &engine.Solution{Shots: r.Shots, Pairs: r.Pairs, Stage: &info}, nil
		})
	}
	register("mbf", false)
	register("mbf-l", true)
}
