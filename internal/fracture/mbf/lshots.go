// L-shot matching pass (paper follow-up; Yu/Gao/Pan, "L-Shape Based
// Layout Fracturing for E-Beam Lithography", arXiv:1402.2420): after
// refinement, compatible rectangle pairs merge into single L-shaped
// exposures, each pair pricing as one flash.
//
// The pass builds an L-compatibility graph over the refined shots
// (UnionIsLShot, with a small snap tolerance so near-misses left by
// pitch-quantized edge adjustment still qualify), two-colors each
// connected component to obtain a bipartition, and runs Hopcroft–Karp
// maximum matching — the matching's cardinality is exactly the number
// of flashes saved. Matched pairs are applied to a pairing-aware
// evaluator, a bounded edge-adjustment pass repairs any dose
// perturbation from snapping and overlap sharing, pairs that still
// hurt are greedily split, and a never-worse guard falls back to the
// rectangle-only solution if the CD-violation count cannot be held.
package mbf

import (
	"context"
	"math"
	"sort"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/telemetry"
)

// lRepairIters bounds the pairing-aware edge-adjustment repair loop.
const lRepairIters = 40

// lCand is one L-compatible shot pair: indices into the shot list plus
// the (possibly snapped) arm coordinates that make the union an L.
type lCand struct {
	i, j   int
	si, sj geom.Rect
}

// lStats summarizes the pass for StageInfo.
type lStats struct {
	candidates int // L-compatible pairs found
	droppedOdd int // candidate edges dropped by odd-cycle 2-coloring
	matched    int // pairs selected by maximum matching
	pairs      int // pairs surviving repair (== flashes saved)
}

// lshotPass merges compatible rectangle pairs of a refined solution
// into L-shots. It returns the (possibly edge-adjusted) shot list, the
// kept pairs as {i, j} index pairs, and the pass statistics. The
// returned configuration never has more CD violations than the input:
// if repair cannot hold the violation count, the input is returned
// unchanged with no pairs.
func lshotPass(ctx context.Context, p *cover.Problem, shots []geom.Rect, opt Options) ([]geom.Rect, [][2]int, lStats) {
	_, span := telemetry.StartSpan(ctx, "mbf.lshots")
	defer span.End()
	var ls lStats
	cands := lCandidates(p, shots)
	ls.candidates = len(cands)
	span.Set("candidates", len(cands))
	if len(cands) == 0 {
		return shots, nil, ls
	}
	matched, dropped := matchLPairs(cands, len(shots))
	ls.droppedOdd = dropped
	ls.matched = len(matched)
	span.Set("matched", len(matched))
	if len(matched) == 0 {
		return shots, nil, ls
	}

	e := cover.NewEval(p, shots)
	defer e.Close()
	baseFail := e.Stats().Fail()
	for _, c := range matched {
		e.SetShot(c.i, c.si)
		e.SetShot(c.j, c.sj)
		e.Pair(c.i, c.j)
	}
	// repair: the paired arms share one dose now (the overlap term is
	// gone) and snapping may have nudged edges; bounded greedy edge
	// adjustment — pairing-aware via DeltaCost/ApplyDelta and the
	// legalMove L-preservation filter — re-balances the dose budget.
	// When greedy stalls at a flush seam, loosenPairs advances the
	// dose-neutral inner edges to unlock the partner edge and greedy
	// retries.
	loosened := false
	for iter := 0; iter < lRepairIters; iter++ {
		if e.Stats().Fail() <= baseFail {
			break
		}
		if greedyEdgeAdjust(e, opt) {
			loosened = false
			continue
		}
		// one loosen attempt per greedy stall: if greedy stalls again
		// right after loosening, more slack cannot help
		if !loosened && loosenPairs(e) {
			loosened = true
			continue
		}
		// cost-greedy is stuck above the violation floor — typically one
		// marginal pixel at a pairing seam; hunt moves by fail count
		if failCountRepair(e, opt, baseFail) {
			loosened = false
			continue
		}
		break
	}
	// split the pairs that still hurt, most-harmful first: unpairing
	// restores the overlap dose, so the pair whose split reduces cost
	// the most is the one whose shared dose starves its neighborhood
	for e.Stats().Fail() > baseFail {
		bestI, bestDelta := -1, math.Inf(1)
		for _, pr := range e.Pairs() {
			if d := e.UnpairDelta(pr[0]); d < bestDelta {
				bestI, bestDelta = pr[0], d
			}
		}
		if bestI < 0 {
			break
		}
		e.Unpair(bestI)
		for iter := 0; iter < 4 && e.Stats().Fail() > baseFail; iter++ {
			if !greedyEdgeAdjust(e, opt) {
				break
			}
		}
	}
	if e.Stats().Fail() > baseFail {
		// never-worse guard: equal CD violations is the comparison rule
		span.Set("fallback", true)
		return shots, nil, ls
	}
	ls.pairs = e.PairCount()
	span.Set("pairs", ls.pairs)
	return e.SnapshotShots(), e.Pairs(), ls
}

// loosenPairs gives every flush L seam one pitch of slack: each arm
// edge whose one-pitch extension lies entirely inside the partner is
// advanced. The pair's union — and so its shared dose — is unchanged
// (the extension is covered by the partner already), but the partner's
// own flush edge gains room to retreat in the next greedy pass; a
// single-edge retreat from exact flush contact would disconnect the L
// and is rejected by legalMove, so greedy alone can never open a
// seam. Reports whether any edge advanced.
func loosenPairs(e *cover.Eval) bool {
	pitch := e.P.Params.Pitch
	moved := false
	for _, pr := range e.Pairs() {
		for _, idx := range [2]int{pr[0], pr[1]} {
			r := e.Shots[idx]
			partner := e.Shots[e.Partner(idx)]
			for _, m := range [4]struct {
				s side
				d float64
			}{{left, -pitch}, {right, pitch}, {bottom, -pitch}, {top, pitch}} {
				s := m.s
				nr := movedRect(r, s, m.d)
				var strip geom.Rect
				switch s {
				case left:
					strip = geom.Rect{X0: nr.X0, Y0: nr.Y0, X1: r.X0, Y1: nr.Y1}
				case right:
					strip = geom.Rect{X0: r.X1, Y0: nr.Y0, X1: nr.X1, Y1: nr.Y1}
				case bottom:
					strip = geom.Rect{X0: nr.X0, Y0: nr.Y0, X1: nr.X1, Y1: r.Y0}
				default:
					strip = geom.Rect{X0: nr.X0, Y0: r.Y1, X1: nr.X1, Y1: nr.Y1}
				}
				if !partner.ContainsRect(strip) || !cover.UnionIsLShot(nr, partner) {
					continue
				}
				e.SetShot(idx, nr)
				r = nr
				moved = true
			}
		}
	}
	return moved
}

// failCountRepair escapes the cost-greedy plateau by violation COUNT:
// it kicks one edge of a paired arm (then any other shot) by up to two
// pitches, accepts the kick when the fail count does not rise, lets a
// short greedy descent rebalance, and keeps the result only if the
// fail count actually dropped — otherwise the pre-kick configuration
// is restored exactly. Near a pairing seam the last failing pixel
// often sits in a whack-a-mole trade (fixing the underdosed interior
// pixel overdoses an exterior one), which no strict cost- or
// fail-descent single move resolves; the kick walks through the
// fail-neutral intermediate deterministically (fixed shot/edge/step
// order, first improvement wins).
func failCountRepair(e *cover.Eval, opt Options, baseFail int) bool {
	pitch := e.P.Params.Pitch
	entry := e.Stats().Fail()
	snapShots := e.SnapshotShots()
	snapPairs := e.Pairs()
	order := make([]int, 0, len(e.Shots))
	seen := make(map[int]bool, len(e.Shots))
	for _, pr := range snapPairs {
		order = append(order, pr[0], pr[1])
		seen[pr[0]], seen[pr[1]] = true, true
	}
	for i := range e.Shots {
		if !seen[i] {
			order = append(order, i)
		}
	}
	descendAndJudge := func() bool {
		if e.Stats().Fail() <= entry {
			for k := 0; k < 3 && e.Stats().Fail() > baseFail; k++ {
				if !greedyEdgeAdjust(e, opt) {
					break
				}
			}
			if e.Stats().Fail() < entry {
				return true
			}
		}
		e.ResetPaired(snapShots, snapPairs)
		return false
	}
	for _, idx := range order {
		for _, s := range [4]side{left, right, bottom, top} {
			for _, d := range [4]float64{pitch, -pitch, 2 * pitch, -2 * pitch} {
				nr := movedRect(e.Shots[idx], s, d)
				if !legalMove(e, idx, nr) {
					continue
				}
				e.SetShot(idx, nr)
				if descendAndJudge() {
					return true
				}
			}
		}
	}
	// coupled kicks: when both arms share an outer coordinate (the
	// union's own edge), moving either arm alone steps the contour and
	// always fails — the edge only moves as a unit
	for _, pr := range snapPairs {
		ri, rj := snapShots[pr[0]], snapShots[pr[1]]
		for _, s := range [4]side{left, right, bottom, top} {
			if coordOf(ri, s) != coordOf(rj, s) {
				continue
			}
			for _, d := range [4]float64{pitch, -pitch, 2 * pitch, -2 * pitch} {
				nri, nrj := movedRect(ri, s, d), movedRect(rj, s, d)
				// judge legality on the END state: the intermediate
				// single-arm move steps the union out of L shape, which
				// the evaluator handles fine and legalMove would reject
				if !e.P.MinSizeOK(nri) || !e.P.MinSizeOK(nrj) || !cover.UnionIsLShot(nri, nrj) {
					continue
				}
				e.SetShot(pr[0], nri)
				e.SetShot(pr[1], nrj)
				if descendAndJudge() {
					return true
				}
			}
		}
	}
	return false
}

// coordOf returns the coordinate of the given edge of r.
func coordOf(r geom.Rect, s side) float64 {
	switch s {
	case left:
		return r.X0
	case right:
		return r.X1
	case bottom:
		return r.Y0
	default:
		return r.Y1
	}
}

// lCandidates enumerates the L-compatible shot pairs, in ascending
// (i, j) order.
func lCandidates(p *cover.Problem, shots []geom.Rect) []lCand {
	tol := math.Max(p.Params.Sigma, math.Max(p.Params.Gamma, 2*p.Params.Pitch))
	var out []lCand
	for i := 0; i < len(shots); i++ {
		for j := i + 1; j < len(shots); j++ {
			if si, sj, ok := trySnapL(p, shots[i], shots[j], tol); ok {
				out = append(out, lCand{i: i, j: j, si: si, sj: sj})
			}
		}
	}
	return out
}

// trySnapL reports whether a and b (possibly after snapping one of
// them to the other's coordinates within tol) form an L, returning the
// L-forming coordinates. Refined arms rarely touch: the proximity blur
// bridges the seam, so refinement pulls facing inner edges apart by
// O(σ) and leaves outer edges misaligned by a pitch or two. A snap
// within max(σ, γ, 2·pitch) keeps those pairs eligible, and the repair
// pass absorbs the dose perturbation of the snap.
// Every subset of one rectangle's four coordinates is a snap variant;
// the valid variant whose union change does the least classification
// damage wins. Closing a seam gap means moving one arm's edges, and
// the same gap can close by growing into the target interior (nearly
// free) or by dragging an outer edge across the boundary (ruinous) —
// only a damage score over the union change tells them apart.
func trySnapL(p *cover.Problem, a, b geom.Rect, tol float64) (geom.Rect, geom.Rect, bool) {
	if cover.UnionIsLShot(a, b) {
		return a, b, true
	}
	bestA, bestB, best := a, b, -1
	consider := func(na, nb geom.Rect) {
		if !p.MinSizeOK(na) || !p.MinSizeOK(nb) || !cover.UnionIsLShot(na, nb) {
			return
		}
		if d := pairDamage(p, a, b, na, nb); best < 0 || d < best {
			bestA, bestB, best = na, nb, d
		}
	}
	for mask := 1; mask < 16; mask++ {
		consider(a, snapRect(b, a, tol, mask))
		consider(snapRect(a, b, tol, mask), b)
	}
	return bestA, bestB, best >= 0
}

// pairDamage scores a snap variant: exterior (Poff) pixels the snapped
// pair's union claims that the original union did not, plus interior
// (Pon) pixels the original union covered that the snapped union lost.
// The count approximates the CD-violation pressure the repair pass
// will have to absorb.
func pairDamage(p *cover.Problem, a, b, na, nb geom.Rect) int {
	g := p.Grid
	box := a.Union(b).Union(na.Union(nb))
	i0, j0 := g.PixelOf(geom.Pt(box.X0, box.Y0))
	i1, j1 := g.PixelOf(geom.Pt(box.X1, box.Y1))
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	n := 0
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			c := g.Center(i, j)
			inOld := a.Contains(c) || b.Contains(c)
			inNew := na.Contains(c) || nb.Contains(c)
			if inOld == inNew {
				continue
			}
			switch p.Class[g.Index(i, j)] {
			case cover.Off:
				if inNew {
					n++
				}
			case cover.On:
				if inOld {
					n++
				}
			}
		}
	}
	return n
}

// snapRect snaps the mask-selected coordinates of r (bit 0 → X0,
// bit 1 → X1, bit 2 → Y0, bit 3 → Y1) to the nearest same-axis
// coordinate of ref when within tol: outer edges align to form the
// bounding-box corners of an L, inner edges close sub-tolerance gaps
// to flush contact.
func snapRect(r, ref geom.Rect, tol float64, mask int) geom.Rect {
	if mask&1 != 0 {
		r.X0 = snapCoord(r.X0, ref.X0, ref.X1, tol)
	}
	if mask&2 != 0 {
		r.X1 = snapCoord(r.X1, ref.X0, ref.X1, tol)
	}
	if mask&4 != 0 {
		r.Y0 = snapCoord(r.Y0, ref.Y0, ref.Y1, tol)
	}
	if mask&8 != 0 {
		r.Y1 = snapCoord(r.Y1, ref.Y0, ref.Y1, tol)
	}
	return r
}

// snapCoord returns the nearer of a and b when within tol of v, else v.
func snapCoord(v, a, b, tol float64) float64 {
	da, db := math.Abs(v-a), math.Abs(v-b)
	if da <= db {
		if da > 0 && da <= tol {
			return a
		}
	} else if db <= tol {
		return b
	}
	return v
}

// matchLPairs selects a maximum set of disjoint candidate pairs: the
// compatibility graph's components are two-colored by BFS (edges
// inside a color class — odd cycles — are dropped and counted), and
// Hopcroft–Karp maximum matching runs on the resulting bipartition.
// Deterministic: adjacency, coloring and edge insertion all follow
// ascending shot-index order. Returned pairs are sorted by (i, j).
func matchLPairs(cands []lCand, n int) ([]lCand, int) {
	adj := make([][]int, n)
	for _, c := range cands {
		adj[c.i] = append(adj[c.i], c.j)
		adj[c.j] = append(adj[c.j], c.i)
	}
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	var queue []int
	for s := 0; s < n; s++ {
		if color[s] != -1 || len(adj[s]) == 0 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				}
			}
		}
	}
	left := make([]int, n)  // shot index -> left node id, -1 otherwise
	right := make([]int, n) // shot index -> right node id, -1 otherwise
	nl, nr := 0, 0
	for v := 0; v < n; v++ {
		left[v], right[v] = -1, -1
		switch color[v] {
		case 0:
			left[v] = nl
			nl++
		case 1:
			right[v] = nr
			nr++
		}
	}
	bg := graphx.NewBipartite(nl, nr)
	edgeCand := make(map[[2]int]int, len(cands))
	dropped := 0
	for ci, c := range cands {
		var l, r int
		switch {
		case color[c.i] == 0 && color[c.j] == 1:
			l, r = left[c.i], right[c.j]
		case color[c.i] == 1 && color[c.j] == 0:
			l, r = left[c.j], right[c.i]
		default: // same color: an odd-cycle chord
			dropped++
			continue
		}
		bg.AddEdge(l, r)
		edgeCand[[2]int{l, r}] = ci
	}
	matchL, _, _ := bg.MaxMatching()
	var pairs []lCand
	for l, r := range matchL {
		if r >= 0 {
			pairs = append(pairs, cands[edgeCand[[2]int{l, r}]])
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	return pairs, dropped
}
