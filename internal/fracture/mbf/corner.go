package mbf

import (
	"math"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

// CornerType identifies which corner of a rectangular shot a corner
// point represents (paper §3).
type CornerType uint8

const (
	// BL is the bottom-left shot corner.
	BL CornerType = iota
	// BR is the bottom-right shot corner.
	BR
	// TL is the top-left shot corner.
	TL
	// TR is the top-right shot corner.
	TR
)

// String returns a short name for the corner type.
func (c CornerType) String() string {
	switch c {
	case BL:
		return "BL"
	case BR:
		return "BR"
	case TL:
		return "TL"
	case TR:
		return "TR"
	}
	return "?"
}

// diagonal reports whether two corner types are diagonally opposite.
func diagonal(a, b CornerType) bool {
	return (a == BL && b == TR) || (a == TR && b == BL) ||
		(a == BR && b == TL) || (a == TL && b == BR)
}

// cornerTypeFacing returns the corner type whose outward diagonal points
// in the direction with the given component signs: a shot's bottom-left
// corner "faces" (−,−), its top-right corner faces (+,+), and so on.
func cornerTypeFacing(nx, ny float64) CornerType {
	switch {
	case nx < 0 && ny < 0:
		return BL
	case nx > 0 && ny < 0:
		return BR
	case nx < 0 && ny > 0:
		return TL
	default:
		return TR
	}
}

// CornerPoint is a typed shot corner point extracted from the target
// boundary.
type CornerPoint struct {
	P    geom.Point
	Type CornerType
}

// extractCorners simplifies the target boundary and traverses it,
// emitting typed shot corner points per the paper's three rules (§3):
// axis-parallel segments contribute their two endpoints (shifted along
// the segment by Lth/√2 to pre-compensate corner rounding), diagonal
// segments contribute points every Lth along the segment (shifted
// outward perpendicular by Lth/√2), and segments shorter than Lth are
// skipped.
func extractCorners(p *cover.Problem, opt Options) (pts []CornerPoint, simplified geom.Polygon, lth float64) {
	lth = p.Model.Lth(p.Params.Rho, p.Params.Gamma)
	for ti, target := range p.Targets {
		s := target.EnsureCCW()
		if !opt.DisableRDP {
			s = geom.SimplifyPolygon(s, opt.RDPTol).EnsureCCW()
		}
		if ti == 0 {
			simplified = s
		}
		pts = append(pts, boundaryCorners(s, lth)...)
	}
	return pts, simplified, lth
}

// boundaryCorners walks one simplified boundary and emits its typed
// shot corner points.
func boundaryCorners(simplified geom.Polygon, lth float64) []CornerPoint {
	var pts []CornerPoint
	shift := lth / math.Sqrt2
	for i := range simplified {
		a, b := simplified.Edge(i)
		d := b.Sub(a)
		length := d.Norm()
		dir := d.Scale(1 / length)
		// CCW boundary: interior on the left, outward normal on the right
		outward := geom.Pt(dir.Y, -dir.X)
		if length < lth {
			// The paper skips segments shorter than Lth, assuming the
			// neighbors' corner points cover them. On dense curvilinear
			// boundaries (ILT blobs) nearly every RDP segment is short;
			// skipping all of them leaves the boundary unsampled, so we
			// emit midpoint corner points instead and let clustering
			// collapse redundant ones.
			mid := a.Add(d.Scale(0.5))
			if d.X == 0 || d.Y == 0 {
				ta := cornerTypeFacing(signOr(outward.X, -dir.X), signOr(outward.Y, -dir.Y))
				tb := cornerTypeFacing(signOr(outward.X, dir.X), signOr(outward.Y, dir.Y))
				pts = append(pts, CornerPoint{P: mid, Type: ta}, CornerPoint{P: mid, Type: tb})
			} else {
				pts = append(pts, CornerPoint{
					P:    mid.Add(outward.Scale(shift)),
					Type: cornerTypeFacing(outward.X, outward.Y),
				})
			}
			continue
		}
		if d.X == 0 || d.Y == 0 {
			// axis-parallel: one shot edge writes the segment; shift the
			// endpoints apart along the segment axis to absorb rounding
			ta := cornerTypeFacing(signOr(outward.X, -dir.X), signOr(outward.Y, -dir.Y))
			tb := cornerTypeFacing(signOr(outward.X, dir.X), signOr(outward.Y, dir.Y))
			pts = append(pts,
				CornerPoint{P: a.Sub(dir.Scale(shift)), Type: ta},
				CornerPoint{P: b.Add(dir.Scale(shift)), Type: tb},
			)
			continue
		}
		// diagonal: written by corner rounding; place points spaced at
		// least Lth apart (so clustering keeps them distinct), pushed
		// outside the shape by Lth/√2
		typ := cornerTypeFacing(outward.X, outward.Y)
		n := int(math.Floor(length / lth))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			t := (float64(k) + 0.5) / float64(n)
			pos := a.Add(d.Scale(t)).Add(outward.Scale(shift))
			pts = append(pts, CornerPoint{P: pos, Type: typ})
		}
	}
	return pts
}

// signOr returns primary if non-zero, otherwise fallback. Used to type
// the endpoints of axis-parallel segments: one sign component comes
// from the outward normal (which side of the shot the segment is), the
// other from the traversal direction (which end of the edge the point
// is).
func signOr(primary, fallback float64) float64 {
	if primary != 0 {
		return primary
	}
	return fallback
}

// clusterCorners merges nearby corner points of the same type by
// agglomerative clustering: the closest same-type pair of clusters
// within Lth (weighted centroids) merges first, repeating until no pair
// is closer than Lth. Dense runs of points along a curved boundary
// collapse to centroids spaced roughly Lth apart — the density at which
// shot corner rounding can write the curve — while the two points a
// convex 90° corner produces (exactly Lth apart) merge into one.
func clusterCorners(pts []CornerPoint, lth float64) []CornerPoint {
	type cluster struct {
		sum   geom.Point
		count int
		typ   CornerType
	}
	clusters := make([]cluster, len(pts))
	for i, p := range pts {
		clusters[i] = cluster{sum: p.P, count: 1, typ: p.Type}
	}
	centroid := func(c cluster) geom.Point { return c.sum.Scale(1 / float64(c.count)) }
	for {
		bi, bj, bd := -1, -1, lth+1e-6
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if clusters[i].typ != clusters[j].typ {
					continue
				}
				if d := centroid(clusters[i]).Dist(centroid(clusters[j])); d <= bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi].sum = clusters[bi].sum.Add(clusters[bj].sum)
		clusters[bi].count += clusters[bj].count
		clusters[bj] = clusters[len(clusters)-1]
		clusters = clusters[:len(clusters)-1]
	}
	out := make([]CornerPoint, len(clusters))
	for i, c := range clusters {
		out[i] = CornerPoint{P: centroid(c), Type: c.typ}
	}
	return out
}

// ExtractCorners runs boundary approximation and corner point
// extraction with the given options, returning the clustered corner
// points, the simplified boundary, and Lth. Exported for visualization
// (paper Fig 1) and the bounds package.
func ExtractCorners(p *cover.Problem, opt Options) ([]CornerPoint, geom.Polygon, float64) {
	opt = opt.withDefaults(p)
	raw, simplified, lth := extractCorners(p, opt)
	pts := raw
	if !opt.DisableClustering {
		pts = clusterCorners(raw, lth)
	}
	return pts, simplified, lth
}
