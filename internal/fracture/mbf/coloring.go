package mbf

import (
	"context"
	"math"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
	"maskfrac/internal/telemetry"
)

// approximateFracture runs the graph-coloring-based approximate
// fracturing stage (paper §3) and returns the initial shot set. Each
// sub-stage records a telemetry span when ctx carries a trace.
func approximateFracture(ctx context.Context, p *cover.Problem, opt Options) ([]geom.Rect, StageInfo) {
	var info StageInfo
	parent := telemetry.ActiveSpan(ctx)

	sp := parent.Child("mbf.corners")
	raw, simplified, lth := extractCorners(p, opt)
	info.VerticesRDP = len(simplified)
	info.CornersRaw = len(raw)
	info.Lth = lth
	sp.Set("vertices_in", len(p.Target))
	sp.Set("vertices_rdp", len(simplified))
	sp.Set("corners_raw", len(raw))
	sp.End()

	sp = parent.Child("mbf.cluster")
	pts := raw
	if !opt.DisableClustering {
		pts = clusterCorners(raw, lth)
	}
	info.Corners = len(pts)
	sp.Set("corners", len(pts))
	sp.End()
	if len(pts) == 0 {
		return nil, info
	}

	sp = parent.Child("mbf.graph")
	g := buildCompatibilityGraph(p, pts, lth, opt)
	info.GraphEdges = g.EdgeCount()
	sp.Set("edges", g.EdgeCount())
	sp.End()

	sp = parent.Child("mbf.color")
	colors, n := g.Inverse().GreedyColor(opt.Order)
	info.Colors = n
	sp.Set("colors", n)
	sp.End()

	sp = parent.Child("mbf.reconstruct")
	classes := graphx.ColorClasses(colors, n)
	shots := make([]geom.Rect, 0, n)
	for _, class := range classes {
		if len(class) == 0 {
			continue
		}
		cps := make([]CornerPoint, len(class))
		for i, v := range class {
			cps[i] = pts[v]
		}
		shots = append(shots, shotFromClass(p, cps))
	}
	sp.Set("shots", len(shots))
	sp.End()
	return shots, info
}

// buildCompatibilityGraph constructs G(V,E): vertices are corner points,
// with an edge between ci and cj when a valid test shot uses both as its
// corners — different corner types, minimum size satisfied, and at
// least opt.OverlapFrac of the test shot inside the target (paper §3).
func buildCompatibilityGraph(p *cover.Problem, pts []CornerPoint, lth float64, opt Options) *graphx.Graph {
	g := graphx.New(len(pts))
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if s, ok := testShot(p, pts[i], pts[j], lth); ok {
				if p.InteriorFraction(s) >= opt.OverlapFrac {
					g.AddEdge(i, j)
				}
			}
		}
	}
	return g
}

// testShot builds the candidate shot implied by a pair of corner
// points. Diagonal pairs determine the shot uniquely; adjacent pairs
// (two corners of the same shot edge) are extended to the minimum shot
// size perpendicular to that edge. Returns ok=false when the pair
// cannot be corners of a legal shot.
func testShot(p *cover.Problem, a, b CornerPoint, lth float64) (geom.Rect, bool) {
	if a.Type == b.Type {
		return geom.Rect{}, false
	}
	lmin := p.Params.Lmin
	// normalize order so a has the "smaller" type for fewer cases
	if a.Type > b.Type {
		a, b = b, a
	}
	switch {
	case a.Type == BL && b.Type == TR:
		r := geom.Rect{X0: a.P.X, Y0: a.P.Y, X1: b.P.X, Y1: b.P.Y}
		return r, r.W() >= lmin && r.H() >= lmin
	case a.Type == BR && b.Type == TL:
		r := geom.Rect{X0: b.P.X, Y0: a.P.Y, X1: a.P.X, Y1: b.P.Y}
		return r, r.W() >= lmin && r.H() >= lmin
	case a.Type == BL && b.Type == BR: // bottom edge
		if math.Abs(a.P.Y-b.P.Y) > lth || b.P.X-a.P.X < lmin {
			return geom.Rect{}, false
		}
		y := (a.P.Y + b.P.Y) / 2
		return geom.Rect{X0: a.P.X, Y0: y, X1: b.P.X, Y1: y + lmin}, true
	case a.Type == TL && b.Type == TR: // top edge
		if math.Abs(a.P.Y-b.P.Y) > lth || b.P.X-a.P.X < lmin {
			return geom.Rect{}, false
		}
		y := (a.P.Y + b.P.Y) / 2
		return geom.Rect{X0: a.P.X, Y0: y - lmin, X1: b.P.X, Y1: y}, true
	case a.Type == BL && b.Type == TL: // left edge
		if math.Abs(a.P.X-b.P.X) > lth || b.P.Y-a.P.Y < lmin {
			return geom.Rect{}, false
		}
		x := (a.P.X + b.P.X) / 2
		return geom.Rect{X0: x, Y0: a.P.Y, X1: x + lmin, Y1: b.P.Y}, true
	case a.Type == BR && b.Type == TR: // right edge
		if math.Abs(a.P.X-b.P.X) > lth || b.P.Y-a.P.Y < lmin {
			return geom.Rect{}, false
		}
		x := (a.P.X + b.P.X) / 2
		return geom.Rect{X0: x - lmin, Y0: a.P.Y, X1: x, Y1: b.P.Y}, true
	}
	return geom.Rect{}, false
}

// shotFromClass reconstructs the shot of one color class (a clique of
// the compatibility graph, at most one corner point per type). Sides
// without a corner point start at the minimum shot size and are
// extended until they touch the opposite boundary of the target shape
// (paper Fig 4).
func shotFromClass(p *cover.Problem, cps []CornerPoint) geom.Rect {
	var xl, xr, yb, yt []float64
	for _, c := range cps {
		switch c.Type {
		case BL:
			xl = append(xl, c.P.X)
			yb = append(yb, c.P.Y)
		case BR:
			xr = append(xr, c.P.X)
			yb = append(yb, c.P.Y)
		case TL:
			xl = append(xl, c.P.X)
			yt = append(yt, c.P.Y)
		case TR:
			xr = append(xr, c.P.X)
			yt = append(yt, c.P.Y)
		}
	}
	lmin := p.Params.Lmin
	var r geom.Rect
	hasL, hasR := len(xl) > 0, len(xr) > 0
	hasB, hasT := len(yb) > 0, len(yt) > 0
	if hasL {
		r.X0 = mean(xl)
	}
	if hasR {
		r.X1 = mean(xr)
	}
	if hasB {
		r.Y0 = mean(yb)
	}
	if hasT {
		r.Y1 = mean(yt)
	}
	// resolve missing sides by extension toward the opposite boundary
	switch {
	case hasL && !hasR:
		r.X1 = extend(p, r.X0+lmin, probeY(r, hasB, hasT, lmin), +1, true)
	case hasR && !hasL:
		r.X0 = extend(p, r.X1-lmin, probeY(r, hasB, hasT, lmin), -1, true)
	case !hasL && !hasR:
		// no horizontal constraint at all (cannot happen for non-empty
		// classes, every type constrains one x side) — leave zero
	}
	switch {
	case hasB && !hasT:
		r.Y1 = extend(p, r.Y0+lmin, (r.X0+r.X1)/2, +1, false)
	case hasT && !hasB:
		r.Y0 = extend(p, r.Y1-lmin, (r.X0+r.X1)/2, -1, false)
	}
	// final legality clamp: grow to the minimum size symmetrically
	if r.W() < lmin {
		c := (r.X0 + r.X1) / 2
		r.X0, r.X1 = c-lmin/2, c+lmin/2
	}
	if r.H() < lmin {
		c := (r.Y0 + r.Y1) / 2
		r.Y0, r.Y1 = c-lmin/2, c+lmin/2
	}
	return trimToInterior(p, r, 0.8)
}

// trimToInterior pulls the sides of an over-extended shot back until at
// least minFrac of its area lies inside the target (the same criterion
// the compatibility graph applies to test shots). On wavy curvilinear
// shapes the Fig-4 extension can overhang concave regions badly; an
// initial solution mostly inside the target keeps refinement from
// drowning in Poff violations. Each step trims the side that improves
// the interior fraction most.
func trimToInterior(p *cover.Problem, r geom.Rect, minFrac float64) geom.Rect {
	lmin := p.Params.Lmin
	step := 2 * p.Params.Pitch
	for iter := 0; iter < 200; iter++ {
		if p.InteriorFraction(r) >= minFrac {
			return r
		}
		best := r
		bestFrac := -1.0
		for s := 0; s < 4; s++ {
			nr := r
			switch s {
			case 0:
				nr.X0 += step
			case 1:
				nr.X1 -= step
			case 2:
				nr.Y0 += step
			case 3:
				nr.Y1 -= step
			}
			if nr.W() < lmin || nr.H() < lmin {
				continue
			}
			if f := p.InteriorFraction(nr); f > bestFrac {
				best, bestFrac = nr, f
			}
		}
		if bestFrac < 0 || best == r {
			return r // cannot trim further
		}
		r = best
	}
	return r
}

// probeY picks the y coordinate used to probe the target interior while
// extending horizontally.
func probeY(r geom.Rect, hasB, hasT bool, lmin float64) float64 {
	switch {
	case hasB && hasT:
		return (r.Y0 + r.Y1) / 2
	case hasB:
		return r.Y0 + lmin/2
	case hasT:
		return r.Y1 - lmin/2
	}
	return (r.Y0 + r.Y1) / 2
}

// extend marches a shot edge from start in direction dir (+1/−1) while
// the probe point stays inside the target, in pixel-size steps, and
// returns the final coordinate. horizontal selects whether the edge
// moves along x (probe fixed y) or along y (probe fixed x).
func extend(p *cover.Problem, start, probe float64, dir float64, horizontal bool) float64 {
	step := p.Params.Pitch * dir
	bounds := p.TargetBounds()
	pos := start
	for iter := 0; iter < 100000; iter++ {
		next := pos + step
		var pt geom.Point
		if horizontal {
			if next < bounds.X0-1 || next > bounds.X1+1 {
				break
			}
			pt = geom.Pt(next, probe)
		} else {
			if next < bounds.Y0-1 || next > bounds.Y1+1 {
				break
			}
			pt = geom.Pt(probe, next)
		}
		if !p.ContainsPoint(pt) {
			break
		}
		pos = next
	}
	return pos
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// CompatibilityGraph builds the corner compatibility graph of the
// target with the paper's default options. Exported for the bounds
// package, whose shot-count lower bound is a greedy independent set of
// this graph.
func CompatibilityGraph(p *cover.Problem) *graphx.Graph {
	opt := Options{}.withDefaults(p)
	raw, _, lth := extractCorners(p, opt)
	pts := clusterCorners(raw, lth)
	if len(pts) == 0 {
		return graphx.New(0)
	}
	return buildCompatibilityGraph(p, pts, lth, opt)
}
