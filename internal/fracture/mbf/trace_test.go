package mbf

import (
	"context"
	"strings"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/telemetry"
)

// TestFractureCtxSpanTree runs the full method on a small L-shape with
// tracing enabled and checks the recorded phase tree: the coloring
// stage's sub-phases, the refinement span and its per-iteration
// children with solver statistics.
func TestFractureCtxSpanTree(t *testing.T) {
	target := poly(0, 0, 90, 0, 90, 30, 30, 30, 30, 120, 0, 120)
	p, err := cover.NewProblem(target, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, root := telemetry.WithTrace(context.Background(), "mbf-test")
	res := FractureCtx(ctx, p, Options{})
	root.End()

	if res.ShotCount() == 0 {
		t.Fatal("no shots")
	}
	for _, phase := range []string{
		"mbf.approximate", "mbf.corners", "mbf.cluster", "mbf.graph",
		"mbf.color", "mbf.reconstruct", "mbf.refine",
	} {
		if root.Find(phase) == nil {
			t.Errorf("trace has no %q span", phase)
		}
	}
	refine := root.Find("mbf.refine")
	iters := 0
	for _, c := range refine.Children() {
		if c.Name != "mbf.iter" {
			continue
		}
		iters++
		keys := map[string]bool{}
		for _, a := range c.Attrs() {
			keys[a.Key] = true
		}
		for _, k := range []string{"shots", "fail_on", "fail_off", "evals"} {
			if !keys[k] {
				t.Fatalf("mbf.iter span missing attr %q", k)
			}
		}
	}
	// the loop's final pass is the exit check (no work, no span), so a
	// converged solve reports one more iteration than it has iter spans
	if iters != res.Info.RefineIterations && iters != res.Info.RefineIterations-1 {
		t.Errorf("trace has %d iter spans, result reports %d iterations",
			iters, res.Info.RefineIterations)
	}
	// corners span carries the stage statistics
	var cornersRaw any
	for _, a := range root.Find("mbf.corners").Attrs() {
		if a.Key == "corners_raw" {
			cornersRaw = a.Value
		}
	}
	if cornersRaw != res.Info.CornersRaw {
		t.Errorf("corners_raw attr = %v, StageInfo says %d", cornersRaw, res.Info.CornersRaw)
	}

	var sb strings.Builder
	root.WriteTree(&sb)
	if !strings.Contains(sb.String(), "mbf.refine") {
		t.Errorf("tree rendering missing refine phase:\n%s", sb.String())
	}
}

// TestFractureWithoutTraceRecordsNothing pins the zero-cost path: no
// trace on the context means no spans anywhere.
func TestFractureWithoutTraceRecordsNothing(t *testing.T) {
	target := poly(0, 0, 60, 0, 60, 60, 0, 60)
	p, err := cover.NewProblem(target, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res := FractureCtx(context.Background(), p, Options{})
	if res.ShotCount() == 0 {
		t.Fatal("no shots")
	}
	if sp := telemetry.ActiveSpan(context.Background()); sp != nil {
		t.Error("background context has an active span")
	}
}
