package mbf

import (
	"context"
	"math"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

func poly(xy ...float64) geom.Polygon {
	pg := make(geom.Polygon, len(xy)/2)
	for i := range pg {
		pg[i] = geom.Pt(xy[2*i], xy[2*i+1])
	}
	return pg
}

func mustProblem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFractureSquare(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 100, 0, 100, 100, 0, 100))
	res := Fracture(p, Options{})
	if !res.Stats.Feasible() {
		t.Errorf("square not feasible: %+v (shots %v)", res.Stats, res.Shots)
	}
	if res.ShotCount() > 3 {
		t.Errorf("square used %d shots, want <= 3", res.ShotCount())
	}
	for _, s := range res.Shots {
		if !p.MinSizeOK(s) {
			t.Errorf("shot %v violates min size", s)
		}
	}
}

func TestFractureLShape(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 150, 0, 150, 60, 60, 60, 60, 150, 0, 150))
	res := Fracture(p, Options{})
	if !res.Stats.Feasible() {
		t.Errorf("L not feasible: %+v", res.Stats)
	}
	if res.ShotCount() > 5 {
		t.Errorf("L used %d shots", res.ShotCount())
	}
}

func TestFractureDiagonal(t *testing.T) {
	// a square with one 45° chamfered corner exercises the corner
	// rounding path
	p := mustProblem(t, poly(0, 0, 100, 0, 100, 65, 65, 100, 0, 100))
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 3 {
		t.Errorf("chamfered square: %d failing pixels", res.Stats.Fail())
	}
	if res.ShotCount() > 8 {
		t.Errorf("chamfered square used %d shots", res.ShotCount())
	}
}

func TestCornerTypeString(t *testing.T) {
	for ct, want := range map[CornerType]string{BL: "BL", BR: "BR", TL: "TL", TR: "TR", CornerType(9): "?"} {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q", ct, got)
		}
	}
}

func TestDiagonalPairs(t *testing.T) {
	if !diagonal(BL, TR) || !diagonal(TR, BL) || !diagonal(BR, TL) || !diagonal(TL, BR) {
		t.Error("diagonal pairs not recognized")
	}
	if diagonal(BL, BR) || diagonal(BL, TL) || diagonal(BL, BL) {
		t.Error("non-diagonal pair accepted")
	}
}

func TestCornerTypeFacing(t *testing.T) {
	cases := []struct {
		nx, ny float64
		want   CornerType
	}{
		{-1, -1, BL}, {1, -1, BR}, {-1, 1, TL}, {1, 1, TR},
	}
	for _, c := range cases {
		if got := cornerTypeFacing(c.nx, c.ny); got != c.want {
			t.Errorf("facing(%v,%v) = %v, want %v", c.nx, c.ny, got, c.want)
		}
	}
}

func TestExtractCornersSquare(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	pts, simplified, lth := extractCorners(p, Options{}.withDefaults(p))
	if len(simplified) != 4 {
		t.Errorf("square simplified to %d vertices", len(simplified))
	}
	if lth <= 0 {
		t.Errorf("Lth = %v", lth)
	}
	// 4 segments × 2 endpoints
	if len(pts) != 8 {
		t.Fatalf("corner points = %d, want 8", len(pts))
	}
	// each type appears exactly twice (one per adjacent edge pair)
	count := map[CornerType]int{}
	for _, c := range pts {
		count[c.Type]++
	}
	for _, ct := range []CornerType{BL, BR, TL, TR} {
		if count[ct] != 2 {
			t.Errorf("type %v count = %d, want 2", ct, count[ct])
		}
	}
}

func TestExtractCornersTypesOnSquare(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	pts, _, _ := extractCorners(p, Options{}.withDefaults(p))
	// every BL-typed point must be near the square's bottom-left corner
	// region etc.
	for _, c := range pts {
		var corner geom.Point
		switch c.Type {
		case BL:
			corner = geom.Pt(0, 0)
		case BR:
			corner = geom.Pt(40, 0)
		case TL:
			corner = geom.Pt(0, 40)
		case TR:
			corner = geom.Pt(40, 40)
		}
		if c.P.Dist(corner) > 15 {
			t.Errorf("%v point %v too far from square corner %v", c.Type, c.P, corner)
		}
	}
}

func TestClusterCorners(t *testing.T) {
	lth := 10.0
	pts := []CornerPoint{
		{P: geom.Pt(0, 0), Type: BL},
		{P: geom.Pt(3, 0), Type: BL},  // clusters with the first
		{P: geom.Pt(50, 0), Type: BL}, // far away
		{P: geom.Pt(3, 0), Type: TR},  // same spot, different type
	}
	out := clusterCorners(pts, lth)
	if len(out) != 3 {
		t.Fatalf("clustered to %d points, want 3: %v", len(out), out)
	}
	// the merged BL pair sits at the centroid
	found := false
	for _, c := range out {
		if c.Type == BL && math.Abs(c.P.X-1.5) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("centroid of clustered pair missing")
	}
}

func TestClusterCornersChain(t *testing.T) {
	// chain 0-8-16 with Lth=10: the closest pair (any adjacent, 8 apart)
	// merges to a centroid at 4 (or 12); the remaining pair is 12 apart
	// and stays separate — arcs collapse to ~Lth spacing, not to a point
	pts := []CornerPoint{
		{P: geom.Pt(0, 0), Type: TR},
		{P: geom.Pt(8, 0), Type: TR},
		{P: geom.Pt(16, 0), Type: TR},
	}
	out := clusterCorners(pts, 10)
	if len(out) != 2 {
		t.Fatalf("chain clustered to %d, want 2: %v", len(out), out)
	}
	// a dense run collapses to one point
	dense := []CornerPoint{
		{P: geom.Pt(0, 0), Type: TR},
		{P: geom.Pt(2, 0), Type: TR},
		{P: geom.Pt(4, 0), Type: TR},
	}
	if out := clusterCorners(dense, 10); len(out) != 1 {
		t.Fatalf("dense run clustered to %d, want 1", len(out))
	}
}

func TestTestShotDiagonal(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	lth := 10.0
	// valid BL-TR pair
	s, ok := testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(30, 30), Type: TR}, lth)
	if !ok || s != (geom.Rect{X0: 0, Y0: 0, X1: 30, Y1: 30}) {
		t.Errorf("BL-TR shot = %v ok=%v", s, ok)
	}
	// argument order must not matter
	s2, ok2 := testShot(p, CornerPoint{P: geom.Pt(30, 30), Type: TR}, CornerPoint{P: geom.Pt(0, 0), Type: BL}, lth)
	if !ok2 || s2 != s {
		t.Error("testShot not symmetric")
	}
	// inverted diagonal fails (TR below/left of BL)
	if _, ok := testShot(p, CornerPoint{P: geom.Pt(30, 30), Type: BL}, CornerPoint{P: geom.Pt(0, 0), Type: TR}, lth); ok {
		t.Error("inverted diagonal accepted")
	}
	// same type fails
	if _, ok := testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(30, 30), Type: BL}, lth); ok {
		t.Error("same type accepted")
	}
	// sub-Lmin shot fails
	if _, ok := testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(5, 30), Type: TR}, lth); ok {
		t.Error("narrow diagonal accepted")
	}
}

func TestTestShotAdjacent(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	lth := 10.0
	// bottom edge pair: min-height shot sitting on the pair
	s, ok := testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(30, 0), Type: BR}, lth)
	if !ok {
		t.Fatal("bottom pair rejected")
	}
	if s.H() != p.Params.Lmin || s.W() != 30 {
		t.Errorf("bottom pair shot = %v", s)
	}
	// left edge pair: min-width
	s, ok = testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(0, 30), Type: TL}, lth)
	if !ok || s.W() != p.Params.Lmin {
		t.Errorf("left pair shot = %v ok=%v", s, ok)
	}
	// misaligned beyond lth fails
	if _, ok := testShot(p, CornerPoint{P: geom.Pt(0, 0), Type: BL}, CornerPoint{P: geom.Pt(30, 20), Type: BR}, lth); ok {
		t.Error("misaligned bottom pair accepted")
	}
}

func TestShotFromClassExtension(t *testing.T) {
	// top-edge-only class must extend down to the bottom boundary
	// (paper Fig 4)
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	s := shotFromClass(p, []CornerPoint{
		{P: geom.Pt(0, 40), Type: TL},
		{P: geom.Pt(40, 40), Type: TR},
	})
	if s.Y1 != 40 {
		t.Errorf("top edge moved: %v", s)
	}
	if s.Y0 > 2 {
		t.Errorf("bottom edge not extended to boundary: %v", s)
	}
	// single-corner class extends both ways
	s = shotFromClass(p, []CornerPoint{{P: geom.Pt(0, 0), Type: BL}})
	if s.X1 < 38 || s.Y1 < 38 {
		t.Errorf("single corner not extended: %v", s)
	}
	// full diagonal class is direct
	s = shotFromClass(p, []CornerPoint{
		{P: geom.Pt(0, 0), Type: BL},
		{P: geom.Pt(40, 40), Type: TR},
	})
	if s != (geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}) {
		t.Errorf("diagonal class shot = %v", s)
	}
}

func TestShotFromClassMinSize(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	// conflicting means that would produce a degenerate shot get
	// clamped to the minimum size
	s := shotFromClass(p, []CornerPoint{
		{P: geom.Pt(20, 20), Type: BL},
		{P: geom.Pt(20, 20), Type: TR},
	})
	if s.W() < p.Params.Lmin-1e-9 || s.H() < p.Params.Lmin-1e-9 {
		t.Errorf("degenerate class shot = %v", s)
	}
}

func TestApproximateFractureSquare(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	shots, info := approximateFracture(context.Background(), p, Options{}.withDefaults(p))
	if len(shots) == 0 || len(shots) > 4 {
		t.Errorf("initial shots = %d", len(shots))
	}
	if info.Corners == 0 || info.Colors != len(shots) {
		t.Errorf("info = %+v", info)
	}
	if info.Corners > info.CornersRaw {
		t.Error("clustering increased point count")
	}
}

func TestRefineFixesViolations(t *testing.T) {
	// start refinement from a deliberately bad initial solution
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	bad := []geom.Rect{{X0: 5, Y0: 5, X1: 20, Y1: 20}}
	opt := Options{}.withDefaults(p)
	final, iters := refine(context.Background(), p, bad, opt)
	st := p.Evaluate(final)
	if iters == 0 {
		t.Error("refine did nothing")
	}
	if st.Fail() > 2 {
		t.Errorf("refinement left %d violations (%d iters, %d shots)", st.Fail(), iters, len(final))
	}
}

func TestRefineKeepsFeasible(t *testing.T) {
	// already-feasible input returns immediately
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	good := []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 40.5, Y1: 40.5}}
	final, iters := refine(context.Background(), p, good, Options{}.withDefaults(p))
	if iters != 0 || len(final) != 1 {
		t.Errorf("refine touched a feasible solution: %d iters, %d shots", iters, len(final))
	}
}

func TestSkipRefinementOption(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	res := Fracture(p, Options{SkipRefinement: true})
	if res.Info.RefineIterations != 0 {
		t.Error("refinement ran despite SkipRefinement")
	}
	if len(res.Shots) != len(res.Initial) {
		t.Error("SkipRefinement result differs from initial")
	}
}

func TestMergeShots(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	opt := Options{}.withDefaults(p)
	// two x-aligned stacked shots inside the target merge into one
	e := cover.NewEval(p, []geom.Rect{
		{X0: 0, Y0: 0, X1: 40, Y1: 22},
		{X0: 0.5, Y0: 20, X1: 39.5, Y1: 40},
	})
	mergeShots(e, opt)
	if len(e.Shots) != 1 {
		t.Fatalf("aligned shots not merged: %v", e.Shots)
	}
	if got := e.Shots[0]; math.Abs(got.Y0-0) > 1e-9 || math.Abs(got.Y1-40) > 1e-9 {
		t.Errorf("merged shot = %v", got)
	}
}

func TestMergeShotsContainment(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	opt := Options{}.withDefaults(p)
	e := cover.NewEval(p, []geom.Rect{
		{X0: 0, Y0: 0, X1: 40, Y1: 40},
		{X0: 10, Y0: 10, X1: 30, Y1: 30}, // redundant inner shot
	})
	mergeShots(e, opt)
	if len(e.Shots) != 1 {
		t.Fatalf("contained shot not removed: %v", e.Shots)
	}
	if e.Shots[0] != (geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}) {
		t.Errorf("wrong survivor: %v", e.Shots[0])
	}
}

func TestMergeShotsRespectsInteriorFraction(t *testing.T) {
	// U-shape: merging the two arm shots horizontally would cover the
	// notch between the arms — must not merge (Fig 5, right case)
	u := poly(0, 0, 60, 0, 60, 60, 40, 60, 40, 20, 20, 20, 20, 60, 0, 60)
	p := mustProblem(t, u)
	opt := Options{}.withDefaults(p)
	e := cover.NewEval(p, []geom.Rect{
		{X0: 0, Y0: 30, X1: 20, Y1: 55},  // left arm
		{X0: 40, Y0: 30, X1: 60, Y1: 55}, // right arm, y-aligned
	})
	before := len(e.Shots)
	mergeShots(e, opt)
	if len(e.Shots) != before {
		t.Errorf("merge across notch happened: %v", e.Shots)
	}
}

func TestAddShotTargetsLargestBlob(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	// cover only the left strip: the uncovered right region is one blob
	e := cover.NewEval(p, []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 12, Y1: 40.5}})
	n := len(e.Shots)
	addShot(e)
	if len(e.Shots) != n+1 {
		t.Fatal("no shot added")
	}
	added := e.Shots[len(e.Shots)-1]
	if added.X0 < 8 {
		t.Errorf("added shot %v not over the uncovered right region", added)
	}
	if !p.MinSizeOK(added) {
		t.Errorf("added shot %v violates min size", added)
	}
	// adding must reduce the failing-on count
	stBefore := p.Evaluate(e.Shots[:n])
	stAfter := e.Stats()
	if stAfter.FailOn >= stBefore.FailOn {
		t.Errorf("addShot did not reduce FailOn: %d -> %d", stBefore.FailOn, stAfter.FailOn)
	}
}

func TestRemoveShotPicksWorstOffender(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	// one good shot and one far outside the target
	good := geom.Rect{X0: -0.5, Y0: -0.5, X1: 40.5, Y1: 40.5}
	stray := geom.Rect{X0: 60, Y0: 60, X1: 80, Y1: 80}
	e := cover.NewEval(p, []geom.Rect{good, stray})
	removeShot(e)
	if len(e.Shots) != 1 {
		t.Fatal("no shot removed")
	}
	if e.Shots[0] != good {
		t.Errorf("removed the wrong shot, left %v", e.Shots[0])
	}
}

func TestGreedyEdgeAdjustImproves(t *testing.T) {
	p := mustProblem(t, poly(0, 0, 40, 0, 40, 40, 0, 40))
	// slightly undersized shot: edges should move outward
	e := cover.NewEval(p, []geom.Rect{{X0: 3, Y0: 3, X1: 37, Y1: 37}})
	before := e.Stats().Cost
	opt := Options{}.withDefaults(p)
	if !greedyEdgeAdjust(e, opt) {
		t.Fatal("no edge moved")
	}
	after := e.Stats().Cost
	if after >= before {
		t.Errorf("cost did not decrease: %v -> %v", before, after)
	}
}

func TestStalled(t *testing.T) {
	if stalled([]float64{5, 4, 3}, 5) {
		t.Error("short history reported stalled")
	}
	if !stalled([]float64{3, 3, 3, 3, 3, 3}, 5) {
		t.Error("flat history not stalled")
	}
	if stalled([]float64{5, 4, 3, 2, 1, 0.5}, 5) {
		t.Error("improving history reported stalled")
	}
}

func TestMovedRectAndEdgeSegment(t *testing.T) {
	r := geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 20}
	if got := movedRect(r, left, 2); got.X0 != 2 {
		t.Errorf("left move = %v", got)
	}
	if got := movedRect(r, top, -3); got.Y1 != 17 {
		t.Errorf("top move = %v", got)
	}
	a, b := edgeSegment(r, right)
	if a != geom.Pt(10, 0) || b != geom.Pt(10, 20) {
		t.Errorf("right segment = %v %v", a, b)
	}
	a, b = edgeSegment(r, bottom)
	if a != geom.Pt(0, 0) || b != geom.Pt(10, 0) {
		t.Errorf("bottom segment = %v %v", a, b)
	}
}

func TestFractureAblationsStillWork(t *testing.T) {
	target := poly(0, 0, 60, 0, 60, 25, 25, 25, 25, 60, 0, 60)
	for _, opt := range []Options{
		{DisableRDP: true},
		{DisableClustering: true},
		{DisableMerge: true},
		{DisableBias: true},
		{DisableBlocking: true},
	} {
		p := mustProblem(t, target)
		res := Fracture(p, opt)
		if res.Stats.Fail() > 10 {
			t.Errorf("ablation %+v left %d failures", opt, res.Stats.Fail())
		}
	}
}
