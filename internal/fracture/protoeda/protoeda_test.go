package protoeda

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/shapegen"
)

func problem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFractureSquare(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	res := Fracture(p, Options{})
	if res.Stats.Fail() != 0 {
		t.Errorf("square: %+v", res.Stats)
	}
	if len(res.Shots) > 3 {
		t.Errorf("square used %d shots", len(res.Shots))
	}
}

func TestFractureLShape(t *testing.T) {
	p := problem(t, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	})
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 2 {
		t.Errorf("L: %+v", res.Stats)
	}
	if len(res.Shots) > 4 {
		t.Errorf("L used %d shots", len(res.Shots))
	}
}

func TestFractureRGBShape(t *testing.T) {
	sh := shapegen.RGB(5, 4, cover.DefaultParams())
	if sh.Target == nil {
		t.Fatal("generation failed")
	}
	p := problem(t, sh.Target)
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 10 {
		t.Errorf("RGB: %+v", res.Stats)
	}
	if len(res.Shots) < sh.Known {
		t.Errorf("PROTO-EDA beat the certified optimum: %d < %d", len(res.Shots), sh.Known)
	}
}

func TestMergePassContainment(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 80, Y1: 80},
		{X0: 10, Y0: 10, X1: 40, Y1: 40},
	}
	out := mergePass(p, shots)
	if len(out) != 1 {
		t.Errorf("containment not merged: %v", out)
	}
}

func TestMergePassAligned(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 80, Y1: 42},
		{X0: 0.5, Y0: 40, X1: 79.5, Y1: 80},
	}
	out := mergePass(p, shots)
	if len(out) != 1 {
		t.Fatalf("aligned shots not merged: %v", out)
	}
	if out[0].H() < 79 {
		t.Errorf("merged extent wrong: %v", out[0])
	}
}

func TestDropRedundant(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	shots := []geom.Rect{
		{X0: -0.5, Y0: -0.5, X1: 80.5, Y1: 80.5}, // covers everything
		{X0: 20, Y0: 20, X1: 60, Y1: 60},         // redundant
	}
	out := dropRedundant(p, shots)
	if len(out) != 1 {
		t.Errorf("redundant shot kept: %v", out)
	}
}

func TestInitialShotsProduceLegalSizes(t *testing.T) {
	p := problem(t, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	})
	shots := initialShots(p, Options{FractureGrid: 6, Bias: 1})
	if len(shots) == 0 {
		t.Fatal("no initial shots")
	}
	for _, s := range shots {
		if !p.MinSizeOK(s) {
			t.Errorf("initial shot %v below Lmin", s)
		}
	}
}
