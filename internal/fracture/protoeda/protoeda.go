// Package protoeda is the stand-in for PROTO-EDA, the prototype
// commercial EDA mask shot decomposition capability the paper
// benchmarks against (Tables 2/3). The real tool is proprietary; this
// substitute mirrors the production mask-data-prep recipe of the era:
//
//  1. rectilinearize the target on a coarse grid (the tool's fracture
//     grid), absorbing curvilinear detail into staircase steps,
//  2. run an optimal geometric rectangle partition (chords + matching),
//  3. bias every partition rectangle outward so isolated edges print at
//     the dose threshold, allowing shot overlap,
//  4. merge aligned/contained shots, and
//  5. run a short model-based cleanup (the same edge-adjustment loop as
//     the paper's method, with a much smaller budget and without the
//     full add/remove escape machinery).
//
// Like the real PROTO-EDA in the paper's Table 3, the substitute may
// leave a small number of failing pixels on hard wavy-boundary shapes.
package protoeda

import (
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/fixup"
	"maskfrac/internal/fracture/partition"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Options tune the substitute.
type Options struct {
	FractureGrid float64 // coarse rectilinearization pitch (default 4 nm)
	Bias         float64 // outward shot bias (default 1 pixel)
	CleanupIters int     // model-based cleanup budget (default 60)
}

// Result is the outcome of the PROTO-EDA substitute.
type Result struct {
	Shots []geom.Rect
	Stats cover.Stats
}

// Fracture runs the PROTO-EDA substitute on the problem.
func Fracture(p *cover.Problem, opt Options) *Result {
	if opt.FractureGrid == 0 {
		opt.FractureGrid = 6
	}
	if opt.Bias == 0 {
		opt.Bias = p.Params.Pitch
	}
	if opt.CleanupIters == 0 {
		opt.CleanupIters = 60
	}
	shots := initialShots(p, opt)
	e := cover.NewEval(p, shots)
	fixup.EdgeAdjust(p, e, opt.CleanupIters)
	shots = mergePass(p, e.SnapshotShots())
	e.Close()
	shots = dropRedundant(p, shots)
	return &Result{Shots: shots, Stats: p.Evaluate(shots)}
}

// initialShots rectilinearizes the target on the coarse fracture grid,
// partitions it into rectangles and biases them outward.
func initialShots(p *cover.Problem, opt Options) []geom.Rect {
	coarse := raster.GridCovering(p.TargetBounds(), opt.FractureGrid, opt.FractureGrid)
	bm := raster.NewBitmap(coarse)
	for _, t := range p.Targets {
		one, err := raster.Rasterize(t, coarse)
		if err != nil {
			return nil
		}
		for k, v := range one.Bits {
			if v {
				bm.Bits[k] = true
			}
		}
	}
	var rects []geom.Rect
	for _, pg := range raster.Contours(bm) {
		if !pg.IsCCW() {
			continue // coarse grid holes are below the writable scale
		}
		rs, err := partition.Minimum(pg)
		if err != nil {
			if rs, err = partition.Sweep(pg); err != nil {
				continue
			}
		}
		rects = append(rects, rs...)
	}
	lmin := p.Params.Lmin
	out := make([]geom.Rect, 0, len(rects))
	for _, r := range rects {
		r = r.Inset(-opt.Bias)
		if r.W() < lmin {
			c := (r.X0 + r.X1) / 2
			r.X0, r.X1 = c-lmin/2, c+lmin/2
		}
		if r.H() < lmin {
			c := (r.Y0 + r.Y1) / 2
			r.Y0, r.Y1 = c-lmin/2, c+lmin/2
		}
		out = append(out, r)
	}
	return mergePass(p, out)
}

// mergePass collapses contained shots and merges aligned shots whose
// union stays mostly inside the target.
func mergePass(p *cover.Problem, shots []geom.Rect) []geom.Rect {
	gamma := p.Params.Gamma
	for {
		merged := false
	scan:
		for i := 0; i < len(shots); i++ {
			for j := i + 1; j < len(shots); j++ {
				si, sj := shots[i], shots[j]
				var m geom.Rect
				switch {
				case si.ContainsRect(sj):
					m = si
				case sj.ContainsRect(si):
					m = sj
				case abs(si.X0-sj.X0) <= gamma && abs(si.X1-sj.X1) <= gamma:
					m = geom.Rect{X0: (si.X0 + sj.X0) / 2, X1: (si.X1 + sj.X1) / 2,
						Y0: min(si.Y0, sj.Y0), Y1: max(si.Y1, sj.Y1)}
					if p.InteriorFraction(m) < 0.9 {
						continue
					}
				case abs(si.Y0-sj.Y0) <= gamma && abs(si.Y1-sj.Y1) <= gamma:
					m = geom.Rect{Y0: (si.Y0 + sj.Y0) / 2, Y1: (si.Y1 + sj.Y1) / 2,
						X0: min(si.X0, sj.X0), X1: max(si.X1, sj.X1)}
					if p.InteriorFraction(m) < 0.9 {
						continue
					}
				default:
					continue
				}
				shots[i] = m
				shots = append(shots[:j], shots[j+1:]...)
				merged = true
				break scan
			}
		}
		if !merged {
			return shots
		}
	}
}

// dropRedundant removes shots whose removal leaves the violation count
// and cost no worse — overlap from the bias step often makes interior
// partition rectangles redundant.
func dropRedundant(p *cover.Problem, shots []geom.Rect) []geom.Rect {
	e := cover.NewEval(p, shots)
	defer e.Close()
	base := e.Stats()
	for {
		removed := false
		for i := 0; i < len(e.Shots); i++ {
			s := e.Shots[i]
			e.Remove(i)
			if st := e.Stats(); st.Fail() <= base.Fail() && st.Cost <= base.Cost+1e-9 {
				removed = true
				break
			}
			e.UndoRemove(i, s)
		}
		if !removed {
			return e.SnapshotShots()
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
