package protoeda

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
)

// init registers the PROTO-EDA substitute with the engine's solver
// registry.
func init() {
	engine.Register("proto-eda", func(_ context.Context, p *cover.Problem, opt engine.Options) (*engine.Solution, error) {
		r := Fracture(p, Options{CleanupIters: opt.MaxIterations})
		return &engine.Solution{Shots: r.Shots}, nil
	})
}
