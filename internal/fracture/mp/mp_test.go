package mp

import (
	"math"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
	"maskfrac/internal/shapegen"
)

func problem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFractureSquare(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 2 {
		t.Errorf("square: %+v", res.Stats)
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
}

func TestFractureAGBShape(t *testing.T) {
	sh := shapegen.AGB(9, 4, cover.DefaultParams())
	if sh.Target == nil {
		t.Fatal("generation failed")
	}
	p := problem(t, sh.Target)
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 10 {
		t.Errorf("AGB: %+v", res.Stats)
	}
	if len(res.Shots) < sh.Known {
		t.Errorf("MP beat the certified optimum: %d < %d", len(res.Shots), sh.Known)
	}
}

func TestMaxShotsCap(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	res := Fracture(p, Options{MaxShots: 1})
	if len(res.Shots) > 1 {
		t.Errorf("cap ignored: %d shots", len(res.Shots))
	}
}

func TestBuildSATAndBoxSum(t *testing.T) {
	g := raster.Grid{Pitch: 1, W: 4, H: 3}
	f := raster.NewField(g)
	// values 1..12 row-major
	for k := range f.V {
		f.V[k] = float64(k + 1)
	}
	sat := make([]float64, (g.W+1)*(g.H+1))
	buildSAT(f, sat)
	// full sum = 78
	if got := boxSum(g, sat, geom.Rect{X0: 0, Y0: 0, X1: 4, Y1: 3}); got != 78 {
		t.Errorf("full sum = %v", got)
	}
	// single pixel (1,1): value 6
	if got := boxSum(g, sat, geom.Rect{X0: 1, Y0: 1, X1: 2, Y1: 2}); got != 6 {
		t.Errorf("single pixel = %v", got)
	}
	// 2x2 block at origin: 1+2+5+6
	if got := boxSum(g, sat, geom.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}); got != 14 {
		t.Errorf("2x2 = %v", got)
	}
	// out of range clamps
	if got := boxSum(g, sat, geom.Rect{X0: -10, Y0: -10, X1: 100, Y1: 100}); got != 78 {
		t.Errorf("clamped = %v", got)
	}
}

func TestBoxSumMatchesBrute(t *testing.T) {
	g := raster.Grid{Pitch: 1, W: 9, H: 7}
	f := raster.NewField(g)
	for k := range f.V {
		f.V[k] = math.Sin(float64(k))
	}
	sat := make([]float64, (g.W+1)*(g.H+1))
	buildSAT(f, sat)
	for _, r := range []geom.Rect{
		{X0: 1, Y0: 2, X1: 5, Y1: 6},
		{X0: 0, Y0: 0, X1: 9, Y1: 1},
		{X0: 8, Y0: 6, X1: 9, Y1: 7},
	} {
		want := 0.0
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				if r.Contains(g.Center(i, j)) {
					want += f.V[g.Index(i, j)]
				}
			}
		}
		if got := boxSum(g, sat, r); math.Abs(got-want) > 1e-9 {
			t.Errorf("box %v: %v vs %v", r, got, want)
		}
	}
}
