package mp

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
)

// init registers the matching pursuit baseline with the engine's solver
// registry.
func init() {
	engine.Register("mp", func(_ context.Context, p *cover.Problem, opt engine.Options) (*engine.Solution, error) {
		r := Fracture(p, Options{MaxShots: opt.MaxIterations})
		return &engine.Solution{Shots: r.Shots}, nil
	})
}
