// Package mp implements the matching pursuit baseline for model-based
// mask fracturing (Jiang & Zakhor, "Application of signal reconstruction
// techniques to shot count reduction in simulation driven fracturing"),
// the heuristic "MP" of the paper's Tables 2/3.
//
// The target dose image (1 inside the shape, 0 outside) is approximated
// as a sum of shot atoms. Each iteration picks the dictionary shot with
// the highest normalized correlation against the current residual
// (computed with a summed-area table over the candidate rectangle) and
// subtracts the shot's exact blurred intensity from the residual.
package mp

import (
	"math"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/fixup"
	"maskfrac/internal/fracture/shotdict"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Options tune the baseline.
type Options struct {
	MaxShots int     // iteration cap (default 150)
	MinCorr  float64 // stop when best normalized correlation falls below this (default 0.5)
}

// Result is the outcome of the MP baseline.
type Result struct {
	Shots []geom.Rect
	Stats cover.Stats
}

// Fracture runs matching pursuit on the problem.
func Fracture(p *cover.Problem, opt Options) *Result {
	if opt.MaxShots == 0 {
		opt.MaxShots = 150
	}
	if opt.MinCorr == 0 {
		opt.MinCorr = 0.5
	}
	cands := shotdict.Rich(p, 24, 0.55)
	g := p.Grid
	// residual = desired dose − current dose; desired is the full-dose
	// indicator of the target
	res := raster.NewField(g)
	for k, in := range p.Inside.Bits {
		if in {
			res.V[k] = 1
		}
	}
	e := cover.NewEval(p, nil)
	defer e.Close()
	sat := make([]float64, (g.W+1)*(g.H+1))
	for len(e.Shots) < opt.MaxShots {
		buildSAT(res, sat)
		best, bestScore := geom.Rect{}, opt.MinCorr
		for _, c := range cands {
			s := boxSum(g, sat, c)
			if s <= 0 {
				continue
			}
			// normalized correlation against the (approximately
			// indicator-shaped) atom: <R, atom>/||atom||
			score := s / math.Sqrt(c.Area()/(g.Pitch*g.Pitch))
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best.Empty() {
			break
		}
		e.Add(best)
		p.Model.AccumulateShot(res, best, -1)
		if st := e.Stats(); st.Fail() == 0 {
			break
		}
	}
	// matching pursuit leaves residues its dictionary cannot express
	// (typically corner patches and crescents); complete the cover with
	// the dose-aware greedy pass, then box patching
	fixup.GreedyCover(p, e, cands, 1, opt.MaxShots)
	fixup.Patch(p, e, opt.MaxShots)
	// unit-dose atoms overdose the exterior near boundary overlaps;
	// repair with bounded edge-adjustment passes (matching pursuit is
	// the slowest heuristic in the paper's tables, so a generous repair
	// budget is in character)
	fixup.EdgeAdjust(p, e, 150)
	fixup.Patch(p, e, opt.MaxShots)
	fixup.EdgeAdjust(p, e, 150)
	return &Result{Shots: e.SnapshotShots(), Stats: e.Stats()}
}

// buildSAT fills sat with the summed-area table of f: sat[(j)*(W+1)+i]
// is the sum over pixels with coordinates < (i, j).
func buildSAT(f *raster.Field, sat []float64) {
	g := f.Grid
	w := g.W + 1
	for i := 0; i < w; i++ {
		sat[i] = 0
	}
	for j := 0; j < g.H; j++ {
		rowSum := 0.0
		for i := 0; i < g.W; i++ {
			rowSum += f.V[j*g.W+i]
			sat[(j+1)*w+i+1] = sat[j*w+i+1] + rowSum
		}
		sat[(j+1)*w] = 0
	}
}

// boxSum returns the residual sum over the pixels whose centers lie in
// rectangle r.
func boxSum(g raster.Grid, sat []float64, r geom.Rect) float64 {
	i0 := int(math.Ceil((r.X0-g.X0)/g.Pitch - 0.5))
	j0 := int(math.Ceil((r.Y0-g.Y0)/g.Pitch - 0.5))
	i1 := int(math.Ceil((r.X1-g.X0)/g.Pitch-0.5)) - 1
	j1 := int(math.Ceil((r.Y1-g.Y0)/g.Pitch-0.5)) - 1
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	if i1 < i0 || j1 < j0 {
		return 0
	}
	w := g.W + 1
	return sat[(j1+1)*w+i1+1] - sat[j0*w+i1+1] - sat[(j1+1)*w+i0] + sat[j0*w+i0]
}
