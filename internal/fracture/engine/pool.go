package engine

import "context"

// Pool bounds the number of extra solver goroutines a process may run
// beyond the goroutines that already carry work. Batch-level solving
// (one goroutine per shape) and region-level solving (one goroutine per
// independent region) draw tokens from the same pool, so nesting the
// two never oversubscribes the configured worker budget.
//
// Acquisition is strictly non-blocking: a caller that gets no token
// runs the work inline on its own goroutine. A token holder therefore
// never waits on another token, which makes the pool deadlock-free
// under arbitrary nesting. A nil *Pool hands out nothing.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool of extra goroutine tokens; extra <= 0 yields a
// pool that always refuses, serializing all work onto its callers.
func NewPool(extra int) *Pool {
	if extra < 0 {
		extra = 0
	}
	return &Pool{sem: make(chan struct{}, extra)}
}

// TryAcquire takes a token without blocking and reports whether it got
// one. Every successful TryAcquire must be paired with Release.
func (p *Pool) TryAcquire() bool {
	if p == nil || cap(p.sem) == 0 {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token taken with TryAcquire.
func (p *Pool) Release() {
	if p == nil || cap(p.sem) == 0 {
		return
	}
	<-p.sem
}

// Extra returns the pool's token capacity.
func (p *Pool) Extra() int {
	if p == nil {
		return 0
	}
	return cap(p.sem)
}

type poolKey struct{}

// WithPool attaches a pool to the context. Engine solves under this
// context claim their extra parallelism from it instead of creating
// their own, so an enclosing batch and its nested region solves share
// one bounded budget.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom returns the pool attached to ctx, or nil.
func PoolFrom(ctx context.Context) *Pool {
	p, _ := ctx.Value(poolKey{}).(*Pool)
	return p
}
