package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/telemetry"
)

// Region is one independent cluster of an instance's targets: no shot
// placed for its targets can change the dose at any constrained pixel
// of another region, and vice versa.
type Region struct {
	Targets []int     // indices into Problem.Targets, ascending
	Bounds  geom.Rect // union of the member targets' bounding boxes
}

// Plan clusters the problem's targets into provably independent regions
// with a union-find over bounding boxes inflated by the interaction
// radius 3σ+γ. The truncated Gaussian kernel delivers exactly zero dose
// beyond 3σ of a shot edge and the solvers keep shots within the
// γ-neighborhood of their targets, so two clusters whose inflated boxes
// are disjoint — farther apart than 2·(3σ+γ) — cannot affect each
// other's constrained pixels: splitting them is exact, with zero
// quality loss. Regions are ordered by their smallest target index and
// list their targets ascending, which fixes the stitch order.
func Plan(p *cover.Problem) []Region {
	n := len(p.Targets)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	r := p.InteractionRadius()
	boxes := make([]geom.Rect, n)
	for i, t := range p.Targets {
		boxes[i] = t.Bounds().Inset(-r)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if boxes[i].Overlaps(boxes[j]) {
				ri, rj := find(i), find(j)
				if ri != rj {
					if rj < ri {
						ri, rj = rj, ri
					}
					parent[rj] = ri
				}
			}
		}
	}
	byRoot := make(map[int]*Region, n)
	var regions []Region
	for i, t := range p.Targets {
		root := find(i)
		reg, ok := byRoot[root]
		if !ok {
			regions = append(regions, Region{})
			reg = &regions[len(regions)-1]
			byRoot[root] = reg
		}
		reg.Targets = append(reg.Targets, i)
		if len(reg.Targets) == 1 {
			reg.Bounds = t.Bounds()
		} else {
			reg.Bounds = reg.Bounds.Union(t.Bounds())
		}
	}
	// targets are visited in ascending order, so each region's Targets
	// slice is ascending and regions are already ordered by their
	// smallest member
	return regions
}

// Config tunes one engine run.
type Config struct {
	// Method names the registered solver to run on every region.
	Method string
	// Options are the method-generic solver knobs.
	Options Options
	// Workers caps the number of regions solved concurrently; <= 0
	// selects GOMAXPROCS. Ignored when the context already carries a
	// Pool (the enclosing batch then owns the budget). Workers never
	// changes the result — parallel and sequential runs stitch
	// byte-identical shot lists.
	Workers int
}

// RegionResult describes one region's solve within a Result.
type RegionResult struct {
	Targets []int     // indices into Problem.Targets
	Bounds  geom.Rect // union of the region's target bounds
	Shots   int       // shots the region contributed
	Runtime time.Duration
	// Stage holds the region solver's stage statistics (nil when the
	// solver reports none).
	Stage any
}

// Result is the stitched outcome of an engine run.
type Result struct {
	// Shots is the merged shot list, ordered by (region index, shot
	// order within the region) — deterministic regardless of Workers.
	Shots []geom.Rect
	// Pairs lists L-shot pairs of Shots as {i, j} index pairs with
	// i < j, in region order with each region's pair indices offset by
	// the shots the preceding regions contributed. Nil for
	// rectangle-only methods.
	Pairs   [][2]int
	Regions []RegionResult // in region order
}

// Solve runs the decompose–solve–stitch pipeline: plan the independent
// regions, solve each as its own subproblem — the caller plus bounded
// pool-token helpers work-steal regions off a size-sorted queue,
// largest first — and merge the shot lists in region order. A
// single-region instance
// (the common case: one shape, or a main feature whose SRAFs all sit
// within interaction range) is solved directly on the original problem
// with no subproblem construction. When ctx carries a telemetry trace,
// the run records "plan", per-region "region" and "stitch" spans.
func Solve(ctx context.Context, p *cover.Problem, cfg Config) (*Result, error) {
	fn, ok := Lookup(cfg.Method)
	if !ok {
		return nil, fmt.Errorf("engine: unknown method %q (registered: %s)",
			cfg.Method, strings.Join(Names(), ", "))
	}
	_, planSpan := telemetry.StartSpan(ctx, "plan")
	regions := Plan(p)
	planSpan.Set("targets", len(p.Targets))
	planSpan.Set("regions", len(regions))
	planSpan.End()

	if len(regions) == 1 {
		start := time.Now()
		sol, err := fn(ctx, p, cfg.Options)
		if err != nil {
			return nil, err
		}
		return &Result{
			Shots: sol.Shots,
			Pairs: sol.Pairs,
			Regions: []RegionResult{{
				Targets: regions[0].Targets,
				Bounds:  regions[0].Bounds,
				Shots:   len(sol.Shots),
				Runtime: time.Since(start),
				Stage:   sol.Stage,
			}},
		}, nil
	}

	pool := PoolFrom(ctx)
	if pool == nil {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		// the calling goroutine solves too, so it needs workers-1 extras
		pool = NewPool(workers - 1)
	}
	results := make([]RegionResult, len(regions))
	shots := make([][]geom.Rect, len(regions))
	pairs := make([][][2]int, len(regions))
	errs := make([]error, len(regions))
	solveRegion := func(i int) {
		rctx, span := telemetry.StartSpan(ctx, "region")
		span.Set("index", i)
		span.Set("targets", len(regions[i].Targets))
		defer span.End()
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		start := time.Now()
		sub, err := p.Subproblem(regions[i].Targets)
		if err != nil {
			errs[i] = fmt.Errorf("engine: region %d: %w", i, err)
			return
		}
		// return the subproblem's evaluator buffers to the process-wide
		// arena pool once the region is solved
		defer sub.Recycle()
		sol, err := fn(rctx, sub, cfg.Options)
		if err != nil {
			errs[i] = fmt.Errorf("engine: region %d: %w", i, err)
			return
		}
		shots[i] = sol.Shots
		pairs[i] = sol.Pairs
		results[i] = RegionResult{
			Targets: regions[i].Targets,
			Bounds:  regions[i].Bounds,
			Shots:   len(sol.Shots),
			Runtime: time.Since(start),
			Stage:   sol.Stage,
		}
		span.Set("shots", len(sol.Shots))
	}
	// Work-stealing over the size-sorted region queue: the caller and
	// every pool-token helper loop popping the largest remaining region
	// (LPT order), so workers that finish small regions immediately
	// steal the next one instead of being assigned a fixed share. With
	// no token free the caller drains the whole queue inline — the
	// engine always makes progress with zero extra concurrency.
	queue := newRegionQueue(p, regions)
	drain := func(stealing bool) {
		for {
			i, ok := queue.pop()
			if !ok {
				return
			}
			if stealing {
				engineStealsTotal.Add(1)
			}
			solveRegion(i)
		}
	}
	var wg sync.WaitGroup
	for extra := 0; extra < len(regions)-1 && pool.TryAcquire(); extra++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.Release()
			drain(true)
		}()
	}
	drain(false)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	_, stitchSpan := telemetry.StartSpan(ctx, "stitch")
	total := 0
	for _, s := range shots {
		total += len(s)
	}
	merged := make([]geom.Rect, 0, total)
	var mergedPairs [][2]int
	for ri, s := range shots {
		// re-base the region's L-shot pair indices onto the merged list:
		// the region's shot k sits at position base+k after the stitch
		base := len(merged)
		for _, pr := range pairs[ri] {
			mergedPairs = append(mergedPairs, [2]int{base + pr[0], base + pr[1]})
		}
		merged = append(merged, s...)
	}
	stitchSpan.Set("regions", len(regions))
	stitchSpan.Set("shots", total)
	stitchSpan.Set("pairs", len(mergedPairs))
	stitchSpan.End()
	return &Result{Shots: merged, Pairs: mergedPairs, Regions: results}, nil
}
