package engine

import (
	"sync"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

func schedProblem(t *testing.T, targets ...geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewMultiProblem(targets, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func sq(x, y, side float64) geom.Polygon {
	return geom.Polygon{
		{X: x, Y: y}, {X: x + side, Y: y},
		{X: x + side, Y: y + side}, {X: x, Y: y + side},
	}
}

// TestRegionQueueLPTOrder checks the queue hands out regions largest
// estimated cost first, breaking ties on the smaller region index.
func TestRegionQueueLPTOrder(t *testing.T) {
	// well-separated targets: region i == target i
	p := schedProblem(t,
		sq(0, 0, 20),    // small
		sq(500, 0, 80),  // largest
		sq(1000, 0, 40), // middle
		sq(1500, 0, 20), // small, ties with region 0
		sq(2000, 0, 60), // second largest
	)
	regions := Plan(p)
	if len(regions) != 5 {
		t.Fatalf("expected 5 regions, got %d", len(regions))
	}
	q := newRegionQueue(p, regions)
	want := []int{1, 4, 2, 0, 3}
	for n, w := range want {
		i, ok := q.pop()
		if !ok {
			t.Fatalf("queue drained after %d pops, want %d", n, len(want))
		}
		if i != w {
			t.Fatalf("pop %d: got region %d, want %d (order %v)", n, i, w, q.order)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue did not report drained")
	}
}

// TestRegionQueueConcurrentPop checks every region is handed out
// exactly once under concurrent popping.
func TestRegionQueueConcurrentPop(t *testing.T) {
	targets := make([]geom.Polygon, 32)
	for i := range targets {
		targets[i] = sq(float64(i)*400, 0, 20+float64(i%7)*10)
	}
	p := schedProblem(t, targets...)
	regions := Plan(p)
	q := newRegionQueue(p, regions)
	var mu sync.Mutex
	seen := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := q.pop()
				if !ok {
					return
				}
				mu.Lock()
				seen[i]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != len(regions) {
		t.Fatalf("popped %d distinct regions, want %d", len(seen), len(regions))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("region %d popped %d times", i, n)
		}
	}
}
