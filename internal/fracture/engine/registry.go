// Package engine runs the decompose–solve–stitch fracturing pipeline:
// Plan clusters an instance's targets into provably independent regions
// (the truncated proximity kernel makes the model strictly local),
// Solve runs each region as its own cover.Problem through a registered
// solver on a bounded worker pool, and the stitch step merges the
// per-region shot lists in deterministic region order.
//
// The package also owns the solver registry: each fracturing heuristic
// registers itself in its package init under the method name the public
// facade exposes, so new heuristics plug in without touching the
// facade's dispatch.
package engine

import (
	"context"
	"sort"
	"sync"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
)

// Options carries the method-generic solver knobs the facade exposes.
// Each solver maps the fields it understands onto its own option set
// and ignores the rest; zero values select every method's defaults.
type Options struct {
	// MaxIterations bounds the refinement loop of "mbf" and the shot
	// caps of the dictionary baselines.
	MaxIterations int
	// Order selects the greedy coloring order of "mbf".
	Order graphx.Order
	// SkipRefinement stops "mbf" after the coloring stage.
	SkipRefinement bool
}

// Solution is one solver run's output for one prepared problem.
type Solution struct {
	Shots []geom.Rect
	// Pairs lists L-shot pairs of Shots as {i, j} index pairs with
	// i < j: each pair is two rectangles written as one L-shaped flash
	// sharing one dose. Nil for rectangle-only solvers.
	Pairs [][2]int
	// Stage holds solver-specific stage statistics (*mbf.StageInfo for
	// "mbf"); nil when the solver reports none. The facade type-asserts
	// it back, keeping the registry free of solver imports.
	Stage any
}

// SolveFunc runs a registered solver on a prepared problem. The shot
// order of the returned solution must be deterministic: the engine
// relies on it for byte-identical parallel and sequential runs.
type SolveFunc func(ctx context.Context, p *cover.Problem, opt Options) (*Solution, error)

var (
	regMu   sync.RWMutex
	solvers = map[string]SolveFunc{}
)

// Register adds a solver under the given method name. Registration
// happens in package init, where an empty name, a nil func or a name
// collision is a programming error — Register panics on all three.
func Register(name string, fn SolveFunc) {
	if name == "" {
		panic("engine: Register with empty method name")
	}
	if fn == nil {
		panic("engine: Register " + name + " with nil solver")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := solvers[name]; dup {
		panic("engine: Register called twice for method " + name)
	}
	solvers[name] = fn
}

// Lookup returns the solver registered under name.
func Lookup(name string) (SolveFunc, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	fn, ok := solvers[name]
	return fn, ok
}

// Names returns the registered method names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(solvers))
	for name := range solvers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
