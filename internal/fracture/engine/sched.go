package engine

import (
	"sort"
	"sync/atomic"

	"maskfrac/internal/cover"
)

// engineStealsTotal counts regions executed by pool-token helper
// goroutines rather than the calling goroutine, process-wide; exported
// to /metrics by the fracturing service as fracd_engine_steals_total.
var engineStealsTotal atomic.Int64

// StealCount returns the process-wide total of stolen region solves.
func StealCount() int64 { return engineStealsTotal.Load() }

// regionCost estimates a region's solve cost as the pixel area of its
// bounding box inflated by the interaction radius — the size of the
// dose grid its subproblem scans, which dominates solve time.
func regionCost(p *cover.Problem, r Region) float64 {
	b := r.Bounds.Inset(-p.InteractionRadius())
	return (b.W() / p.Params.Pitch) * (b.H() / p.Params.Pitch)
}

// regionQueue is the shared work queue of one engine run: region
// indices sorted by descending estimated cost, consumed through an
// atomic cursor. Popping hands out the largest remaining region
// (longest-processing-time-first), so a giant region starts
// immediately while helpers drain the rest — one big region no longer
// serializes the tail of the batch. The queue only orders execution;
// results are stored by region index, so the stitch order (and the
// stitched shot list) is identical for every worker count.
type regionQueue struct {
	order []int
	next  atomic.Int64
}

// newRegionQueue builds the size-sorted queue for the run. Ties break
// on the smaller region index, keeping the schedule deterministic.
func newRegionQueue(p *cover.Problem, regions []Region) *regionQueue {
	costs := make([]float64, len(regions))
	for i, r := range regions {
		costs[i] = regionCost(p, r)
	}
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := costs[order[a]], costs[order[b]]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	return &regionQueue{order: order}
}

// pop claims the largest remaining region, reporting false when the
// queue is drained. Safe for concurrent use.
func (q *regionQueue) pop() (int, bool) {
	n := q.next.Add(1) - 1
	if int(n) >= len(q.order) {
		return 0, false
	}
	return q.order[n], true
}
