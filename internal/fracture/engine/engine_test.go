package engine_test

import (
	"context"
	"reflect"
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
	"maskfrac/internal/geom"

	// register the solvers the tests run through the engine
	_ "maskfrac/internal/fracture/gsc"
	_ "maskfrac/internal/fracture/mbf"
)

// square returns a side×side square with its lower-left corner at (x, y).
func square(x, y, side float64) geom.Polygon {
	return geom.Polygon{
		{X: x, Y: y}, {X: x + side, Y: y},
		{X: x + side, Y: y + side}, {X: x, Y: y + side},
	}
}

func multiProblem(t *testing.T, targets ...geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewMultiProblem(targets, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanSingleTarget(t *testing.T) {
	p := multiProblem(t, square(0, 0, 60))
	regions := engine.Plan(p)
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(regions))
	}
	if !reflect.DeepEqual(regions[0].Targets, []int{0}) {
		t.Errorf("region targets = %v", regions[0].Targets)
	}
}

// TestPlanInteractionRange checks the clustering criterion: targets
// within the interaction range 2·(3σ+γ) share a region, targets beyond
// it split. Default params give 3σ+γ = 3·6.25+2 = 20.75 nm.
func TestPlanInteractionRange(t *testing.T) {
	p := multiProblem(t, square(0, 0, 60))
	r := p.InteractionRadius()
	if r != 3*6.25+2 {
		t.Fatalf("InteractionRadius = %v, want %v", r, 3*6.25+2)
	}

	// 30 nm apart: inside the 41.5 nm interaction range — one region
	near := multiProblem(t, square(0, 0, 60), square(90, 0, 60))
	if regions := engine.Plan(near); len(regions) != 1 {
		t.Errorf("near targets: %d regions, want 1", len(regions))
	}

	// 200 nm apart: far outside the range — two regions
	far := multiProblem(t, square(0, 0, 60), square(260, 0, 60))
	regions := engine.Plan(far)
	if len(regions) != 2 {
		t.Fatalf("far targets: %d regions, want 2", len(regions))
	}
	if !reflect.DeepEqual(regions[0].Targets, []int{0}) || !reflect.DeepEqual(regions[1].Targets, []int{1}) {
		t.Errorf("regions = %+v", regions)
	}

	// transitivity: A near B, B near C, A far from C — still one region
	chain := multiProblem(t, square(0, 0, 60), square(90, 0, 60), square(180, 0, 60))
	if regions := engine.Plan(chain); len(regions) != 1 {
		t.Errorf("chained targets: %d regions, want 1", len(regions))
	}
}

func TestSolveUnknownMethod(t *testing.T) {
	p := multiProblem(t, square(0, 0, 60))
	if _, err := engine.Solve(context.Background(), p, engine.Config{Method: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

// TestSolveUnionOfIndependentSolves is the decomposition-correctness
// property: two targets outside each other's interaction range solved
// through the engine yield the exact concatenation of their
// independently solved shot lists, in region order.
func TestSolveUnionOfIndependentSolves(t *testing.T) {
	a := square(0, 0, 60)
	b := square(260, 280, 70)
	joint := multiProblem(t, a, b)
	run, err := engine.Solve(context.Background(), joint, engine.Config{Method: "gsc", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(run.Regions))
	}

	fn, ok := engine.Lookup("gsc")
	if !ok {
		t.Fatal("gsc not registered")
	}
	var want []geom.Rect
	for _, target := range []geom.Polygon{a, b} {
		solo := multiProblem(t, target)
		sol, err := fn(context.Background(), solo, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, sol.Shots...)
	}
	if !reflect.DeepEqual(run.Shots, want) {
		t.Errorf("engine shots differ from the union of independent solves:\n got %v\nwant %v", run.Shots, want)
	}

	// the merged solution is as clean on the joint grid as the
	// independent solves were on theirs
	if st := joint.Evaluate(run.Shots); st.Fail() != 0 {
		soloFail := 0
		for _, target := range []geom.Polygon{a, b} {
			solo := multiProblem(t, target)
			sol, _ := fn(context.Background(), solo, engine.Options{})
			soloFail += solo.Evaluate(sol.Shots).Fail()
		}
		if st.Fail() != soloFail {
			t.Errorf("joint failing pixels = %d, independent sum = %d", st.Fail(), soloFail)
		}
	}
}

// TestSolveParallelDeterminism is the determinism guard: parallel and
// sequential runs of the same multi-region instance stitch
// byte-identical shot lists.
func TestSolveParallelDeterminism(t *testing.T) {
	p := multiProblem(t,
		square(0, 0, 50), square(300, 0, 60),
		square(0, 300, 70), square(300, 300, 55),
	)
	seq, err := engine.Solve(context.Background(), p, engine.Config{Method: "mbf", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := engine.Solve(context.Background(), p, engine.Config{Method: "mbf", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Regions) != 4 || len(par.Regions) != 4 {
		t.Fatalf("regions = %d/%d, want 4", len(seq.Regions), len(par.Regions))
	}
	if !reflect.DeepEqual(seq.Shots, par.Shots) {
		t.Fatalf("parallel shots differ from sequential:\n seq %v\n par %v", seq.Shots, par.Shots)
	}
	st1, st4 := p.Evaluate(seq.Shots), p.Evaluate(par.Shots)
	if st1 != st4 {
		t.Errorf("stats differ: %+v vs %+v", st1, st4)
	}
}

func TestSolveCancelled(t *testing.T) {
	p := multiProblem(t, square(0, 0, 60), square(260, 0, 60))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.Solve(ctx, p, engine.Config{Method: "gsc"}); err == nil {
		t.Fatal("cancelled context produced no error")
	}
}

func TestPool(t *testing.T) {
	pool := engine.NewPool(2)
	if !pool.TryAcquire() || !pool.TryAcquire() {
		t.Fatal("pool refused within capacity")
	}
	if pool.TryAcquire() {
		t.Fatal("pool exceeded capacity")
	}
	pool.Release()
	if !pool.TryAcquire() {
		t.Fatal("released token not reusable")
	}

	var nilPool *engine.Pool
	if nilPool.TryAcquire() {
		t.Error("nil pool handed out a token")
	}
	nilPool.Release() // must not panic

	if engine.NewPool(-3).TryAcquire() {
		t.Error("negative pool handed out a token")
	}

	ctx := engine.WithPool(context.Background(), pool)
	if engine.PoolFrom(ctx) != pool {
		t.Error("PoolFrom lost the pool")
	}
	if engine.PoolFrom(context.Background()) != nil {
		t.Error("PoolFrom invented a pool")
	}
}
