// Package fixup provides the greedy completion pass shared by the GSC
// and MP baselines: covering residual failing interior pixels with
// component bounding-box shots. Dictionary-driven methods cannot always
// fix convex-corner residues exactly; this pass finishes the cover the
// way a set-cover heuristic would, trying a few box variants per
// component and picking the one with the best net effect.
package fixup

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
	"maskfrac/internal/telemetry"
)

// GreedyCover repeatedly adds the candidate shot with the best net
// benefit — failing interior pixels fixed minus offPenalty × exterior
// pixels newly pushed over the threshold — until the interior holds, no
// candidate scores positive, or the shot cap is reached. This is the
// core greedy set-cover loop; GSC uses it as its main phase and MP as a
// completion phase.
func GreedyCover(p *cover.Problem, e *cover.Eval, cands []geom.Rect, offPenalty float64, maxShots int) {
	for len(e.Shots) < maxShots {
		st := e.Stats()
		if st.FailOn == 0 {
			return
		}
		failOn, _ := e.FailingBitmaps()
		best, bestScore := geom.Rect{}, 0.0
		for _, c := range cands {
			if score := ScoreCandidate(p, e, failOn, c, offPenalty); score > bestScore {
				best, bestScore = c, score
			}
		}
		if bestScore <= 0 {
			return
		}
		e.Add(best)
	}
}

// ScoreCandidate estimates the net benefit of adding candidate c:
// failing interior pixels the shot would fix, minus a penalty for
// exterior pixels it would push over the threshold.
func ScoreCandidate(p *cover.Problem, e *cover.Eval, failOn *raster.Bitmap, c geom.Rect, offPenalty float64) float64 {
	g := p.Grid
	i0, j0, i1, j1 := p.Model.SupportBox(g, c)
	fixed, broken := 0, 0
	rho := p.Params.Rho
	for j := j0; j <= j1; j++ {
		y := g.Y0 + (float64(j)+0.5)*g.Pitch
		base := j * g.W
		for i := i0; i <= i1; i++ {
			k := base + i
			cls := p.Class[k]
			if cls == cover.Band {
				continue
			}
			x := g.X0 + (float64(i)+0.5)*g.Pitch
			inc := p.Model.ShotIntensity(c, geom.Pt(x, y))
			if inc < 1e-4 {
				continue
			}
			v := e.Dose.V[k]
			switch cls {
			case cover.On:
				if failOn.Bits[k] && v+inc >= rho {
					fixed++
				}
			case cover.Off:
				if v < rho && v+inc >= rho {
					broken++
				}
			}
		}
	}
	return float64(fixed) - offPenalty*float64(broken)
}

// PatchCtx is Patch with telemetry: when ctx carries a trace it
// records a "fixup.patch" span annotated with shots added and the
// remaining interior violations.
func PatchCtx(ctx context.Context, p *cover.Problem, e *cover.Eval, maxShots int) {
	span := telemetry.ActiveSpan(ctx).Child("fixup.patch")
	before := len(e.Shots)
	Patch(p, e, maxShots)
	if span != nil {
		span.Set("shots_added", len(e.Shots)-before)
		span.Set("fail_on", e.Stats().FailOn)
		span.End()
	}
}

// Patch adds shots over failing interior pixel components until the
// interior constraints hold, the shot cap is reached, or no variant
// makes progress.
func Patch(p *cover.Problem, e *cover.Eval, maxShots int) {
	for len(e.Shots) < maxShots {
		st := e.Stats()
		if st.FailOn == 0 {
			return
		}
		failOn, _ := e.FailingBitmaps()
		labels := raster.ConnectedComponents(failOn)
		boxes := labels.Boxes()
		bestIdx, bestCount := -1, 0
		for i, b := range boxes {
			if b.Count > bestCount {
				bestIdx, bestCount = i, b.Count
			}
		}
		if bestIdx < 0 {
			return
		}
		base := boxRect(p, boxes[bestIdx])
		// try the box and slightly grown/shrunk variants, keep the one
		// with the best net fail reduction
		bestRect, bestFail := geom.Rect{}, st.Fail()
		for _, r := range []geom.Rect{base, base.Inset(-p.Params.Pitch), base.Inset(p.Params.Pitch)} {
			r = legalize(p, r)
			e.Add(r)
			if f := e.Stats().Fail(); f < bestFail {
				bestRect, bestFail = r, f
			}
			e.Remove(len(e.Shots) - 1)
		}
		if bestRect.Empty() {
			return // nothing helps
		}
		e.Add(bestRect)
	}
}

// boxRect converts a pixel component box to a world rectangle.
func boxRect(p *cover.Problem, b raster.ComponentBox) geom.Rect {
	g := p.Grid
	return geom.Rect{
		X0: g.X0 + float64(b.I0)*g.Pitch,
		Y0: g.Y0 + float64(b.J0)*g.Pitch,
		X1: g.X0 + float64(b.I1+1)*g.Pitch,
		Y1: g.Y0 + float64(b.J1+1)*g.Pitch,
	}
}

// legalize grows r symmetrically to the minimum shot size if needed.
func legalize(p *cover.Problem, r geom.Rect) geom.Rect {
	lmin := p.Params.Lmin
	if r.W() < lmin {
		c := (r.X0 + r.X1) / 2
		r.X0, r.X1 = c-lmin/2, c+lmin/2
	}
	if r.H() < lmin {
		c := (r.Y0 + r.Y1) / 2
		r.Y0, r.Y1 = c-lmin/2, c+lmin/2
	}
	return r
}

// EdgeAdjustCtx is EdgeAdjust with telemetry: when ctx carries a trace
// it records a "fixup.edgeadjust" span annotated with the sweep budget
// and the remaining violations.
func EdgeAdjustCtx(ctx context.Context, p *cover.Problem, e *cover.Eval, sweeps int) {
	span := telemetry.ActiveSpan(ctx).Child("fixup.edgeadjust")
	EdgeAdjust(p, e, sweeps)
	if span != nil {
		span.Set("sweeps", sweeps)
		span.Set("fail", e.Stats().Fail())
		span.End()
	}
}

// EdgeAdjust runs a bounded greedy edge-adjustment loop: each sweep
// tries moving every edge of every shot by ±Δp and applies the best
// cost-reducing move per shot. Used by baselines to repair dose
// violations (typically boundary overdose) without the full refinement
// machinery of the paper's method. Returns the best configuration seen.
func EdgeAdjust(p *cover.Problem, e *cover.Eval, sweeps int) {
	best := e.SnapshotShots()
	bestFail := e.Stats().Fail()
	pitch := p.Params.Pitch
	for iter := 0; iter < sweeps && bestFail > 0; iter++ {
		improved := false
		for i := range e.Shots {
			r := e.Shots[i]
			bestDelta, bestRect := -1e-12, geom.Rect{}
			for s := 0; s < 4; s++ {
				for _, d := range []float64{pitch, -pitch} {
					nr := r
					switch s {
					case 0:
						nr.X0 += d
					case 1:
						nr.X1 += d
					case 2:
						nr.Y0 += d
					case 3:
						nr.Y1 += d
					}
					if !p.MinSizeOK(nr) {
						continue
					}
					if delta := e.DeltaCost(i, nr); delta < bestDelta {
						bestDelta, bestRect = delta, nr
					}
				}
			}
			if bestDelta < -1e-12 {
				e.ApplyDelta(i, bestRect, bestDelta)
				improved = true
			}
		}
		if f := e.Stats().Fail(); f < bestFail {
			best = e.SnapshotShots()
			bestFail = f
		}
		if !improved {
			break
		}
	}
	// restore the best configuration seen (skip the rebuild when the
	// final sweep already holds it)
	if !rectsEqual(e.Shots, best) {
		e.Reset(best)
	}
}

// rectsEqual reports whether two shot lists are identical.
func rectsEqual(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
