package fixup

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
)

func square(t *testing.T, side float64) *cover.Problem {
	t.Helper()
	pg := geom.Polygon{geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side)}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGreedyCoverCoversSquare(t *testing.T) {
	p := square(t, 60)
	e := cover.NewEval(p, nil)
	cands := []geom.Rect{
		{X0: -0.5, Y0: -0.5, X1: 60.5, Y1: 60.5}, // the right answer
		{X0: 0, Y0: 0, X1: 20, Y1: 20},           // partial
	}
	GreedyCover(p, e, cands, 4, 10)
	if st := e.Stats(); st.FailOn != 0 {
		t.Errorf("square not covered: %+v", st)
	}
	if len(e.Shots) != 1 {
		t.Errorf("greedy picked %d shots, want 1", len(e.Shots))
	}
}

func TestGreedyCoverRespectsCap(t *testing.T) {
	p := square(t, 60)
	e := cover.NewEval(p, nil)
	cands := []geom.Rect{{X0: 0, Y0: 0, X1: 12, Y1: 12}}
	GreedyCover(p, e, cands, 4, 1)
	if len(e.Shots) > 1 {
		t.Errorf("cap ignored: %d shots", len(e.Shots))
	}
}

func TestGreedyCoverStopsWhenNothingHelps(t *testing.T) {
	p := square(t, 60)
	e := cover.NewEval(p, nil)
	// only a far-outside candidate: fixes nothing
	GreedyCover(p, e, []geom.Rect{{X0: 200, Y0: 200, X1: 260, Y1: 260}}, 4, 10)
	if len(e.Shots) != 0 {
		t.Errorf("useless candidate added: %v", e.Shots)
	}
}

func TestScoreCandidate(t *testing.T) {
	p := square(t, 60)
	e := cover.NewEval(p, nil)
	failOn, _ := e.FailingBitmaps()
	good := ScoreCandidate(p, e, failOn, geom.Rect{X0: -0.5, Y0: -0.5, X1: 60.5, Y1: 60.5}, 4)
	if good <= 0 {
		t.Errorf("covering candidate scored %v", good)
	}
	// grossly oversized shot breaks many off pixels
	bad := ScoreCandidate(p, e, failOn, geom.Rect{X0: -40, Y0: -40, X1: 100, Y1: 100}, 4)
	if bad >= good {
		t.Errorf("oversized shot (%v) scored no worse than exact (%v)", bad, good)
	}
}

func TestPatchCompletesCover(t *testing.T) {
	p := square(t, 60)
	// left half covered; Patch must finish the right half
	e := cover.NewEval(p, []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 30, Y1: 60.5}})
	Patch(p, e, 20)
	if st := e.Stats(); st.FailOn != 0 {
		t.Errorf("patch left FailOn=%d", st.FailOn)
	}
}

func TestPatchRespectsMinSize(t *testing.T) {
	p := square(t, 60)
	e := cover.NewEval(p, []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 57, Y1: 60.5}})
	Patch(p, e, 20)
	for _, s := range e.Shots {
		if !p.MinSizeOK(s) {
			t.Errorf("patch shot %v below Lmin", s)
		}
	}
}

func TestEdgeAdjustImprovesOverdose(t *testing.T) {
	p := square(t, 60)
	// a shot sticking out on the right: overdose outside
	e := cover.NewEval(p, []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 70, Y1: 60.5}})
	before := e.Stats()
	EdgeAdjust(p, e, 60)
	after := e.Stats()
	if after.Fail() >= before.Fail() {
		t.Errorf("EdgeAdjust did not help: %d -> %d", before.Fail(), after.Fail())
	}
	if after.Fail() != 0 {
		t.Errorf("simple overhang not fully repaired: %+v", after)
	}
}

func TestEdgeAdjustKeepsBest(t *testing.T) {
	// already optimal: EdgeAdjust must not make it worse
	p := square(t, 60)
	e := cover.NewEval(p, []geom.Rect{{X0: -0.5, Y0: -0.5, X1: 60.5, Y1: 60.5}})
	EdgeAdjust(p, e, 30)
	if st := e.Stats(); !st.Feasible() {
		t.Errorf("EdgeAdjust broke a feasible solution: %+v", st)
	}
}
