package gsc

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
)

// init registers the greedy set cover baseline with the engine's solver
// registry.
func init() {
	engine.Register("gsc", func(_ context.Context, p *cover.Problem, opt engine.Options) (*engine.Solution, error) {
		r := Fracture(p, Options{MaxShots: opt.MaxIterations})
		return &engine.Solution{Shots: r.Shots}, nil
	})
}
