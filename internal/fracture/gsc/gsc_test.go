package gsc

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/shapegen"
)

func problem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFractureSquare(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	res := Fracture(p, Options{})
	if res.Stats.Fail() != 0 {
		t.Errorf("square: %+v", res.Stats)
	}
	if len(res.Shots) == 0 || len(res.Shots) > 6 {
		t.Errorf("square used %d shots", len(res.Shots))
	}
	for _, s := range res.Shots {
		if !p.MinSizeOK(s) {
			t.Errorf("shot %v below Lmin", s)
		}
	}
}

func TestFractureLShape(t *testing.T) {
	p := problem(t, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	})
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 2 {
		t.Errorf("L: %+v", res.Stats)
	}
}

func TestFractureRGBShape(t *testing.T) {
	sh := shapegen.RGB(5, 4, cover.DefaultParams())
	if sh.Target == nil {
		t.Fatal("generation failed")
	}
	p := problem(t, sh.Target)
	res := Fracture(p, Options{})
	if res.Stats.Fail() > 5 {
		t.Errorf("RGB: %+v", res.Stats)
	}
	// greedy set cover uses at least the certified optimum
	if len(res.Shots) < sh.Known {
		t.Errorf("GSC beat the certified optimum: %d < %d", len(res.Shots), sh.Known)
	}
}

func TestMaxShotsCap(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	res := Fracture(p, Options{MaxShots: 1})
	if len(res.Shots) > 1 {
		t.Errorf("cap ignored: %d shots", len(res.Shots))
	}
}
