// Package gsc implements the greedy set cover baseline for model-based
// mask fracturing (Jiang & Zakhor, "Shot overlap model-based fracturing
// for edge-based OPC layouts"), one of the heuristics the paper
// benchmarks against (Tables 2/3, heuristic "GSC").
//
// A dictionary of candidate shots is enumerated from the maximal
// inscribed rectangles of the rasterized target (plus biased variants).
// Shots are picked greedily by net dose benefit; a looser second pass
// and a component-box patch pass finish residues the dictionary cannot
// express exactly.
package gsc

import (
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/fixup"
	"maskfrac/internal/fracture/shotdict"
	"maskfrac/internal/geom"
)

// Options tune the baseline.
type Options struct {
	MaxShots   int     // shot cap (default 200)
	OffPenalty float64 // weight of new exterior violations (default 4)
}

// Result is the outcome of the GSC baseline.
type Result struct {
	Shots []geom.Rect
	Stats cover.Stats
}

// Fracture runs greedy set cover on the problem.
func Fracture(p *cover.Problem, opt Options) *Result {
	if opt.MaxShots == 0 {
		opt.MaxShots = 200
	}
	if opt.OffPenalty == 0 {
		opt.OffPenalty = 4
	}
	cands := shotdict.Candidates(p)
	e := cover.NewEval(p, nil)
	defer e.Close()
	fixup.GreedyCover(p, e, cands, opt.OffPenalty, opt.MaxShots)
	// second chance with a looser penalty, then box patching
	fixup.GreedyCover(p, e, cands, 1, opt.MaxShots)
	fixup.Patch(p, e, opt.MaxShots)
	fixup.EdgeAdjust(p, e, 40)
	return &Result{Shots: e.SnapshotShots(), Stats: e.Stats()}
}
