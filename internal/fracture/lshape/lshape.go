// Package lshape implements L-shape based layout fracturing (Yu, Gao &
// Pan, ASP-DAC 2013 — the paper's reference [20]): e-beam tools with an
// L-shaped aperture can expose an L-shaped region in a single shot, so
// a rectangle partition whose pieces pair up into L-shapes halves the
// shot count in the best case.
//
// The pipeline: minimum rectangle partition → build the L-compatibility
// graph (two rectangles merge into an L exactly when they share a
// boundary edge and align at exactly one end, giving a 6-vertex union)
// → maximum pairing via greedy maximal matching → one shot per pair,
// one per leftover rectangle.
//
// This is the "non-rectangular shots" extension the paper cites and
// deliberately leaves out (fixed-dose rectangles need no tool change);
// it is provided here as an optional fracturing mode.
package lshape

import (
	"fmt"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/partition"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Shot is a single e-beam exposure: either one rectangle (B empty) or
// an L-shape written as one shot (A and B share an edge and align at
// exactly one end).
type Shot struct {
	A geom.Rect
	B geom.Rect // zero Rect when the shot is a plain rectangle
}

// IsL reports whether the shot is an L-shape.
func (s Shot) IsL() bool { return !s.B.Empty() }

// Rects returns the rectangle decomposition of the shot.
func (s Shot) Rects() []geom.Rect {
	if s.IsL() {
		return []geom.Rect{s.A, s.B}
	}
	return []geom.Rect{s.A}
}

// Result is the outcome of L-shape fracturing.
type Result struct {
	Shots     []Shot
	RectCount int // rectangles before pairing
	Stats     cover.Stats
}

// ShotCount returns the number of e-beam shots (pairs count once).
func (r *Result) ShotCount() int { return len(r.Shots) }

// Fracture partitions the target and pairs rectangles into L-shots.
// Curvilinear targets are rectilinearized on the sampling grid first.
func Fracture(p *cover.Problem) (*Result, error) {
	var pieces []geom.Polygon
	rectilinear := true
	for _, t := range p.Targets {
		if !t.IsRectilinear() {
			rectilinear = false
			break
		}
	}
	if rectilinear {
		pieces = p.Targets
	} else {
		// rectilinearize on a coarse fracture grid, as a conventional
		// tool would (pixel-level staircasing would explode the count)
		coarse := raster.GridCovering(p.TargetBounds(), 4, 4)
		bm := raster.NewBitmap(coarse)
		for _, t := range p.Targets {
			one, err := raster.Rasterize(t, coarse)
			if err != nil {
				return nil, fmt.Errorf("lshape: %w", err)
			}
			for k, v := range one.Bits {
				if v {
					bm.Bits[k] = true
				}
			}
		}
		for _, pg := range raster.Contours(bm) {
			if pg.IsCCW() {
				pieces = append(pieces, pg)
			}
		}
		if len(pieces) == 0 {
			return nil, fmt.Errorf("lshape: target rasterizes to nothing")
		}
	}
	var rects []geom.Rect
	for _, piece := range pieces {
		rs, err := partition.Minimum(piece)
		if err != nil {
			return nil, fmt.Errorf("lshape: %w", err)
		}
		rects = append(rects, rs...)
	}
	shots := Pair(rects)
	flat := make([]geom.Rect, 0, len(rects))
	for _, s := range shots {
		flat = append(flat, s.Rects()...)
	}
	return &Result{Shots: shots, RectCount: len(rects), Stats: p.Evaluate(flat)}, nil
}

// Pair greedily matches rectangles whose union is an L-shape and
// returns the resulting shot list. Pairing order prefers the largest
// combined area first, a simple heuristic that tends to pair long
// slivers with their neighbors.
func Pair(rects []geom.Rect) []Shot {
	type cand struct {
		i, j int
		area float64
	}
	var cands []cand
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if UnionIsL(rects[i], rects[j]) {
				cands = append(cands, cand{i, j, rects[i].Area() + rects[j].Area()})
			}
		}
	}
	// sort by descending combined area (insertion sort; candidate lists
	// are small)
	for a := 1; a < len(cands); a++ {
		for b := a; b > 0 && cands[b].area > cands[b-1].area; b-- {
			cands[b], cands[b-1] = cands[b-1], cands[b]
		}
	}
	used := make([]bool, len(rects))
	var shots []Shot
	for _, c := range cands {
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		shots = append(shots, Shot{A: rects[c.i], B: rects[c.j]})
	}
	for i, r := range rects {
		if !used[i] {
			shots = append(shots, Shot{A: r})
		}
	}
	return shots
}

// UnionIsL reports whether the union of two interior-disjoint
// rectangles is an L-shape: they share a boundary segment and align at
// exactly one end, so the union polygon has six vertices.
func UnionIsL(a, b geom.Rect) bool {
	if a.Overlaps(b) {
		return false
	}
	switch {
	case a.X1 == b.X0 || b.X1 == a.X0: // vertically running shared edge
		lo := max(a.Y0, b.Y0)
		hi := min(a.Y1, b.Y1)
		if hi <= lo {
			return false // touch at a corner or not at all
		}
		// shared segment must span the full side of at least one rect,
		// with exactly one aligned end
		aligned := 0
		if a.Y0 == b.Y0 {
			aligned++
		}
		if a.Y1 == b.Y1 {
			aligned++
		}
		if aligned != 1 {
			return false
		}
		// the shorter rect's side must be fully shared (otherwise the
		// union has 8 vertices)
		return hi-lo == min(a.H(), b.H())
	case a.Y1 == b.Y0 || b.Y1 == a.Y0: // horizontally running shared edge
		lo := max(a.X0, b.X0)
		hi := min(a.X1, b.X1)
		if hi <= lo {
			return false
		}
		aligned := 0
		if a.X0 == b.X0 {
			aligned++
		}
		if a.X1 == b.X1 {
			aligned++
		}
		if aligned != 1 {
			return false
		}
		return hi-lo == min(a.W(), b.W())
	}
	return false
}
