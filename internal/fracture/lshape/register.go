package lshape

import (
	"context"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
	"maskfrac/internal/geom"
)

// init registers L-shape fracturing with the engine's solver registry.
// The registered solution is the rectangle decomposition of the L-shots
// (an L counts as two rectangles on the wire); callers that need the
// true L-shot count and pairing call this package's Fracture directly.
func init() {
	engine.Register("lshape", func(_ context.Context, p *cover.Problem, _ engine.Options) (*engine.Solution, error) {
		r, err := Fracture(p)
		if err != nil {
			return nil, err
		}
		flat := make([]geom.Rect, 0, len(r.Shots)*2)
		for _, s := range r.Shots {
			flat = append(flat, s.Rects()...)
		}
		return &engine.Solution{Shots: flat}, nil
	})
}
