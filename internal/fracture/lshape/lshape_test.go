package lshape

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/shapegen"
)

func TestUnionIsL(t *testing.T) {
	base := geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 4}
	cases := []struct {
		name string
		b    geom.Rect
		want bool
	}{
		{"L: right of base, bottom aligned, shorter", geom.Rect{X0: 10, Y0: 0, X1: 14, Y1: 2}, true},
		{"L: above base, left aligned", geom.Rect{X0: 0, Y0: 4, X1: 4, Y1: 10}, true},
		{"rect: full side both ends aligned", geom.Rect{X0: 10, Y0: 0, X1: 14, Y1: 4}, false},
		{"T: centered, no end aligned", geom.Rect{X0: 10, Y0: 1, X1: 14, Y1: 3}, false},
		{"Z: partial overlap", geom.Rect{X0: 10, Y0: 2, X1: 14, Y1: 6}, false},
		{"corner touch only", geom.Rect{X0: 10, Y0: 4, X1: 14, Y1: 8}, false},
		{"disjoint", geom.Rect{X0: 20, Y0: 0, X1: 24, Y1: 4}, false},
		{"overlapping", geom.Rect{X0: 5, Y0: 0, X1: 14, Y1: 4}, false},
		{"sticking beyond, one end aligned", geom.Rect{X0: 10, Y0: 0, X1: 14, Y1: 8}, true},
	}
	for _, tc := range cases {
		if got := UnionIsL(base, tc.b); got != tc.want {
			t.Errorf("%s: UnionIsL = %v, want %v", tc.name, got, tc.want)
		}
		// symmetric
		if got := UnionIsL(tc.b, base); got != tc.want {
			t.Errorf("%s (swapped): UnionIsL = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPairSimpleL(t *testing.T) {
	rects := []geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 4},
		{X0: 0, Y0: 4, X1: 4, Y1: 10},
	}
	shots := Pair(rects)
	if len(shots) != 1 || !shots[0].IsL() {
		t.Fatalf("L pair not formed: %+v", shots)
	}
	if got := shots[0].Rects(); len(got) != 2 {
		t.Errorf("Rects = %v", got)
	}
}

func TestPairLeftover(t *testing.T) {
	rects := []geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 4},
		{X0: 0, Y0: 4, X1: 4, Y1: 10},
		{X0: 50, Y0: 50, X1: 60, Y1: 60}, // isolated
	}
	shots := Pair(rects)
	if len(shots) != 2 {
		t.Fatalf("shots = %d, want 2", len(shots))
	}
	lCount, rectCount := 0, 0
	for _, s := range shots {
		if s.IsL() {
			lCount++
		} else {
			rectCount++
		}
	}
	if lCount != 1 || rectCount != 1 {
		t.Errorf("composition = %dL %dR", lCount, rectCount)
	}
}

func TestPairNeverReusesRect(t *testing.T) {
	// a plus-sign partition: center bar pairs with at most one arm
	rects := []geom.Rect{
		{X0: 0, Y0: 4, X1: 12, Y1: 8}, // horizontal bar
		{X0: 4, Y0: 0, X1: 8, Y1: 4},  // bottom arm
		{X0: 4, Y0: 8, X1: 8, Y1: 12}, // top arm
	}
	shots := Pair(rects)
	total := 0
	for _, s := range shots {
		total += len(s.Rects())
	}
	if total != 3 {
		t.Errorf("rects used %d times, want 3", total)
	}
}

func TestFractureLShapeTarget(t *testing.T) {
	// an L target: 2 rectangles, 1 L-shot
	pg := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fracture(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RectCount != 2 {
		t.Errorf("RectCount = %d", res.RectCount)
	}
	if res.ShotCount() != 1 {
		t.Errorf("ShotCount = %d, want 1 (one L-shot)", res.ShotCount())
	}
	// non-model-based fracture: corner rounding violations only
	if res.Stats.FailOff != 0 {
		t.Errorf("overdose from a partition-based fracture: %+v", res.Stats)
	}
}

func TestFractureReducesShotsVsPartition(t *testing.T) {
	// staircase: every adjacent pair is L-compatible, so pairing should
	// save shots
	pg := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 20), geom.Pt(60, 20),
		geom.Pt(60, 40), geom.Pt(40, 40), geom.Pt(40, 60), geom.Pt(20, 60),
		geom.Pt(20, 80), geom.Pt(0, 80),
	}
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fracture(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShotCount() >= res.RectCount {
		t.Errorf("no pairing benefit: %d shots for %d rects", res.ShotCount(), res.RectCount)
	}
}

func TestFractureCurvilinear(t *testing.T) {
	sh := shapegen.ILTShape(101, 2)
	p, err := cover.NewProblem(sh.Target, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fracture(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShotCount() == 0 || res.ShotCount() > res.RectCount {
		t.Errorf("shots=%d rects=%d", res.ShotCount(), res.RectCount)
	}
}
