package partition

import (
	"context"
	"fmt"

	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// init registers conventional partition fracturing with the engine's
// solver registry: a minimum rectangle partition of every target with
// no overlap and no proximity compensation.
func init() {
	engine.Register("partition", func(_ context.Context, p *cover.Problem, _ engine.Options) (*engine.Solution, error) {
		shots, err := solveProblem(p)
		if err != nil {
			return nil, err
		}
		return &engine.Solution{Shots: shots}, nil
	})
}

// solveProblem partitions every target of the instance. Rectilinear
// targets partition directly; otherwise the rasterized instance is
// rectilinearized at the pixel pitch and its outer contours partition.
func solveProblem(p *cover.Problem) ([]geom.Rect, error) {
	allRectilinear := true
	for _, t := range p.Targets {
		if !t.IsRectilinear() {
			allRectilinear = false
			break
		}
	}
	var shots []geom.Rect
	if allRectilinear {
		for _, t := range p.Targets {
			rs, err := Minimum(t)
			if err != nil {
				return nil, err
			}
			shots = append(shots, rs...)
		}
		return shots, nil
	}
	for _, pg := range raster.Contours(p.Inside) {
		if !pg.IsCCW() {
			continue // holes
		}
		rs, err := Minimum(pg)
		if err != nil {
			return nil, err
		}
		shots = append(shots, rs...)
	}
	if len(shots) == 0 {
		return nil, fmt.Errorf("partition: target rasterizes to nothing")
	}
	return shots, nil
}
