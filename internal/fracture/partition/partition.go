// Package partition implements conventional (non-model-based) mask
// fracturing: decomposing a rectilinear polygon into non-overlapping
// axis-parallel rectangles. This is the classical geometric partitioning
// formulation of mask data prep (paper §1, Imai–Asano / Kahng et al.).
//
// Two algorithms are provided:
//
//   - Sweep: a horizontal slab sweep with vertical merging — fast and
//     simple, used as a baseline and shot-count upper bound.
//   - Minimum: the chord-based minimum rectangle partition — draw a
//     maximum independent set of axis-parallel chords between co-linear
//     concave (reflex) vertices (found via bipartite matching and
//     König's theorem), split recursively, and sweep the chord-free
//     pieces. For hole-free rectilinear polygons this attains the
//     optimal count #reflex − L + 1.
//
// The PROTO-EDA substitute builds on Minimum, and the bounds package
// uses Sweep for upper bounds.
package partition

import (
	"fmt"
	"math"
	"sort"

	"maskfrac/internal/geom"
	"maskfrac/internal/graphx"
)

// Sweep partitions a rectilinear polygon into rectangles with a
// horizontal slab decomposition, merging vertically adjacent rectangles
// that share the same x-interval. Returns an error for non-rectilinear
// or degenerate input.
func Sweep(pg geom.Polygon) ([]geom.Rect, error) {
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if !pg.IsRectilinear() {
		return nil, fmt.Errorf("partition: polygon is not rectilinear")
	}
	ys := uniqueSorted(ycoords(pg))
	var rects []geom.Rect
	type span struct{ x0, x1 float64 }
	open := map[span]int{} // x-interval -> index of rect open in previous slab
	for si := 0; si+1 < len(ys); si++ {
		y0, y1 := ys[si], ys[si+1]
		xs := crossings(pg, (y0+y1)/2)
		next := map[span]int{}
		for k := 0; k+1 < len(xs); k += 2 {
			sp := span{xs[k], xs[k+1]}
			if idx, ok := open[sp]; ok && rects[idx].Y1 == y0 {
				rects[idx].Y1 = y1 // extend from the previous slab
				next[sp] = idx
				continue
			}
			rects = append(rects, geom.Rect{X0: sp.x0, Y0: y0, X1: sp.x1, Y1: y1})
			next[sp] = len(rects) - 1
		}
		open = next
	}
	return rects, nil
}

// Minimum partitions a rectilinear polygon into a minimum number of
// rectangles using reflex-vertex chords; see the package comment.
func Minimum(pg geom.Polygon) ([]geom.Rect, error) {
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if !pg.IsRectilinear() {
		return nil, fmt.Errorf("partition: polygon is not rectilinear")
	}
	ccw := pg.EnsureCCW()
	var rects []geom.Rect
	var recurse func(p geom.Polygon, depth int) error
	recurse = func(p geom.Polygon, depth int) error {
		if depth > 10000 {
			return fmt.Errorf("partition: chord recursion too deep")
		}
		chords := findChords(p)
		if len(chords) == 0 {
			rs, err := Sweep(p)
			if err != nil {
				return err
			}
			rects = append(rects, rs...)
			return nil
		}
		best := independentChords(chords)
		a, b := splitAlong(p, best[0])
		if err := recurse(a, depth+1); err != nil {
			return err
		}
		return recurse(b, depth+1)
	}
	if err := recurse(ccw, 0); err != nil {
		return nil, err
	}
	return rects, nil
}

// chord is an axis-parallel segment between two reflex vertices of the
// current ring whose open interior lies strictly inside the polygon.
type chord struct {
	vi, vj     int // ring indexes, vi < vj
	a, b       geom.Point
	horizontal bool
}

// ReflexVertices returns the indexes of the reflex (concave, 270°
// interior angle) vertices of a CCW rectilinear polygon.
func ReflexVertices(pg geom.Polygon) []int {
	n := len(pg)
	var out []int
	for i := 0; i < n; i++ {
		in := pg[i].Sub(pg[(i+n-1)%n])
		outv := pg[(i+1)%n].Sub(pg[i])
		if in.Cross(outv) < 0 {
			out = append(out, i)
		}
	}
	return out
}

// findChords enumerates interior chords between co-linear reflex
// vertices of a CCW rectilinear polygon.
func findChords(pg geom.Polygon) []chord {
	reflex := ReflexVertices(pg)
	var out []chord
	for ai := 0; ai < len(reflex); ai++ {
		for bi := ai + 1; bi < len(reflex); bi++ {
			i, j := reflex[ai], reflex[bi]
			a, b := pg[i], pg[j]
			var horizontal bool
			switch {
			case a.Y == b.Y && a.X != b.X:
				horizontal = true
			case a.X == b.X && a.Y != b.Y:
				horizontal = false
			default:
				continue
			}
			if adjacentInRing(i, j, len(pg)) {
				continue
			}
			if segmentHitsVertex(pg, a, b, i, j) {
				continue
			}
			if !chordInterior(pg, a, b) {
				continue
			}
			out = append(out, chord{vi: i, vj: j, a: a, b: b, horizontal: horizontal})
		}
	}
	return out
}

func adjacentInRing(i, j, n int) bool {
	d := i - j
	if d < 0 {
		d = -d
	}
	return d == 1 || d == n-1
}

// chordInterior reports whether the open segment ab lies strictly inside
// pg, tested by sampling points offset to both sides of the segment.
func chordInterior(pg geom.Polygon, a, b geom.Point) bool {
	const off = 0.25
	dir := b.Sub(a)
	steps := int(math.Ceil(dir.Norm() / 0.5))
	if steps < 1 {
		steps = 1
	}
	var perp geom.Point
	if dir.X == 0 {
		perp = geom.Pt(off, 0)
	} else {
		perp = geom.Pt(0, off)
	}
	for k := 0; k <= steps; k++ {
		t := (float64(k) + 0.5) / (float64(steps) + 1)
		p := a.Add(dir.Scale(t))
		if !pg.Contains(p.Add(perp)) || !pg.Contains(p.Sub(perp)) {
			return false
		}
	}
	return true
}

// segmentHitsVertex reports whether any polygon vertex other than the
// endpoints lies on the open segment between vertices i and j.
func segmentHitsVertex(pg geom.Polygon, a, b geom.Point, i, j int) bool {
	for k, v := range pg {
		if k == i || k == j {
			continue
		}
		if geom.PointSegDist(v, a, b) < 1e-9 {
			return true
		}
	}
	return false
}

// chordsConflict reports whether two chords intersect, including at a
// shared endpoint.
func chordsConflict(c, d chord) bool {
	return geom.SegSegDist(c.a, c.b, d.a, d.b) == 0
}

// independentChords returns a maximum independent set of the chord
// conflict graph. Cross-orientation conflicts form a bipartite graph
// solved exactly via König's theorem; residual same-orientation
// endpoint conflicts are resolved greedily. Non-empty for non-empty
// input.
func independentChords(chords []chord) []chord {
	var hs, vs []int
	for k, c := range chords {
		if c.horizontal {
			hs = append(hs, k)
		} else {
			vs = append(vs, k)
		}
	}
	var picked []chord
	switch {
	case len(hs) == 0 || len(vs) == 0:
		picked = append(picked, chords...)
	default:
		bp := graphx.NewBipartite(len(hs), len(vs))
		for li, hk := range hs {
			for ri, vk := range vs {
				if chordsConflict(chords[hk], chords[vk]) {
					bp.AddEdge(li, ri)
				}
			}
		}
		left, right := bp.MaxIndependentSet()
		for _, li := range left {
			picked = append(picked, chords[hs[li]])
		}
		for _, ri := range right {
			picked = append(picked, chords[vs[ri]])
		}
	}
	// drop residual conflicts (same-orientation endpoint sharing)
	var out []chord
	for _, c := range picked {
		ok := true
		for _, kept := range out {
			if chordsConflict(c, kept) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	if len(out) == 0 && len(chords) > 0 {
		out = append(out, chords[0])
	}
	return out
}

// splitAlong splits a ring along a chord between two of its vertices,
// returning the two sub-polygons. Both pieces inherit the chord as a
// new edge and stay CCW.
func splitAlong(pg geom.Polygon, c chord) (geom.Polygon, geom.Polygon) {
	n := len(pg)
	var a geom.Polygon
	for k := c.vi; ; k = (k + 1) % n {
		a = append(a, pg[k])
		if k == c.vj {
			break
		}
	}
	var b geom.Polygon
	for k := c.vj; ; k = (k + 1) % n {
		b = append(b, pg[k])
		if k == c.vi {
			break
		}
	}
	return a, b
}

func uniqueSorted(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func ycoords(pg geom.Polygon) []float64 {
	ys := make([]float64, len(pg))
	for i, p := range pg {
		ys[i] = p.Y
	}
	return ys
}

// crossings returns the sorted x coordinates where the horizontal line
// at height y crosses the polygon boundary.
func crossings(pg geom.Polygon, y float64) []float64 {
	var xs []float64
	n := len(pg)
	for i := 0; i < n; i++ {
		a, b := pg[i], pg[(i+1)%n]
		if (a.Y > y) != (b.Y > y) {
			xs = append(xs, (b.X-a.X)*(y-a.Y)/(b.Y-a.Y)+a.X)
		}
	}
	sort.Float64s(xs)
	return xs
}

// MinSliver partitions the polygon while avoiding slivers — shots
// narrower than threshold print unreliably on VSB tools, which is why
// yield-driven fracturing (Kahng, Xu & Zelikovsky; the paper's refs
// [6,7]) trades a slightly higher rectangle count for fewer slivers.
// It evaluates the chord-based minimum partition plus the horizontal
// and vertical sweeps and returns the candidate with the fewest
// rectangles below the threshold, ties broken by rectangle count.
func MinSliver(pg geom.Polygon, threshold float64) ([]geom.Rect, error) {
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	if !pg.IsRectilinear() {
		return nil, fmt.Errorf("partition: polygon is not rectilinear")
	}
	var best []geom.Rect
	bestSlivers, bestCount := -1, 0
	consider := func(rects []geom.Rect, err error) {
		if err != nil {
			return
		}
		s := countSlivers(rects, threshold)
		if bestSlivers < 0 || s < bestSlivers || (s == bestSlivers && len(rects) < bestCount) {
			best, bestSlivers, bestCount = rects, s, len(rects)
		}
	}
	consider(Minimum(pg))
	consider(Sweep(pg))
	consider(sweepVertical(pg))
	if best == nil {
		return nil, fmt.Errorf("partition: no candidate partition")
	}
	return best, nil
}

// countSlivers counts rectangles whose short side is below threshold.
func countSlivers(rects []geom.Rect, threshold float64) int {
	n := 0
	for _, r := range rects {
		if r.W() < threshold || r.H() < threshold {
			n++
		}
	}
	return n
}

// sweepVertical runs the slab sweep with vertical slabs by transposing
// the polygon, sweeping, and transposing the result back.
func sweepVertical(pg geom.Polygon) ([]geom.Rect, error) {
	t := make(geom.Polygon, len(pg))
	for i, p := range pg {
		t[i] = geom.Pt(p.Y, p.X)
	}
	rects, err := Sweep(t)
	if err != nil {
		return nil, err
	}
	out := make([]geom.Rect, len(rects))
	for i, r := range rects {
		out[i] = geom.Rect{X0: r.Y0, Y0: r.X0, X1: r.Y1, Y1: r.X1}
	}
	return out, nil
}
