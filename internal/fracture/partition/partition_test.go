package partition

import (
	"math"
	"math/rand"
	"testing"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

func poly(xy ...float64) geom.Polygon {
	pg := make(geom.Polygon, len(xy)/2)
	for i := range pg {
		pg[i] = geom.Pt(xy[2*i], xy[2*i+1])
	}
	return pg
}

// checkPartition verifies that rects exactly tile pg: equal area,
// pairwise disjoint interiors, and every rect inside the polygon.
func checkPartition(t *testing.T, pg geom.Polygon, rects []geom.Rect) {
	t.Helper()
	total := 0.0
	for _, r := range rects {
		if r.Empty() {
			t.Fatalf("empty rect %v in partition", r)
		}
		total += r.Area()
	}
	if math.Abs(total-pg.Area()) > 1e-6 {
		t.Fatalf("partition area %v != polygon area %v", total, pg.Area())
	}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if ov := rects[i].Intersect(rects[j]); !ov.Empty() {
				t.Fatalf("rects %v and %v overlap", rects[i], rects[j])
			}
		}
		if !pg.Contains(rects[i].Center()) {
			t.Fatalf("rect %v center outside polygon", rects[i])
		}
	}
}

var (
	square   = poly(0, 0, 10, 0, 10, 10, 0, 10)
	lShape   = poly(0, 0, 8, 0, 8, 4, 4, 4, 4, 10, 0, 10)
	uShape   = poly(0, 0, 12, 0, 12, 8, 8, 8, 8, 4, 4, 4, 4, 8, 0, 8)
	plusSign = poly(4, 0, 8, 0, 8, 4, 12, 4, 12, 8, 8, 8, 8, 12, 4, 12, 4, 8, 0, 8, 0, 4, 4, 4)
	// vertical bar [0,2]x[0,8] with a right bump [2,4]x[1,3] and a left
	// bump [-2,0]x[5,7]: vertical chords give 3, horizontal sweep needs 5
	barBumps = poly(0, 0, 2, 0, 2, 1, 4, 1, 4, 3, 2, 3, 2, 8, 0, 8, 0, 7, -2, 7, -2, 5, 0, 5)
)

func TestSweepSquare(t *testing.T) {
	rects, err := Sweep(square)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 1 {
		t.Errorf("square sweep = %d rects", len(rects))
	}
	checkPartition(t, square, rects)
}

func TestSweepL(t *testing.T) {
	rects, err := Sweep(lShape)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Errorf("L sweep = %d rects, want 2", len(rects))
	}
	checkPartition(t, lShape, rects)
}

func TestSweepU(t *testing.T) {
	rects, err := Sweep(uShape)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 3 {
		t.Errorf("U sweep = %d rects, want 3", len(rects))
	}
	checkPartition(t, uShape, rects)
}

func TestSweepMergesSlabs(t *testing.T) {
	// bumps on left at different heights force slab cuts; the right
	// column must still merge vertically
	rects, err := Sweep(barBumps)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, barBumps, rects)
	if len(rects) > 5 {
		t.Errorf("sweep = %d rects, want <= 5", len(rects))
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := Sweep(poly(0, 0, 4, 0, 2, 3)); err == nil {
		t.Error("non-rectilinear accepted")
	}
	if _, err := Sweep(poly(0, 0, 1, 0)); err == nil {
		t.Error("degenerate accepted")
	}
}

func TestReflexVertices(t *testing.T) {
	if got := ReflexVertices(square.EnsureCCW()); len(got) != 0 {
		t.Errorf("square reflex = %v", got)
	}
	l := lShape.EnsureCCW()
	got := ReflexVertices(l)
	if len(got) != 1 {
		t.Fatalf("L reflex = %v", got)
	}
	if l[got[0]] != geom.Pt(4, 4) {
		t.Errorf("L reflex at %v, want (4,4)", l[got[0]])
	}
	if got := ReflexVertices(plusSign.EnsureCCW()); len(got) != 4 {
		t.Errorf("plus reflex count = %d, want 4", len(got))
	}
}

func TestMinimumSquareAndL(t *testing.T) {
	rects, err := Minimum(square)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 1 {
		t.Errorf("square minimum = %d", len(rects))
	}
	rects, err = Minimum(lShape)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Errorf("L minimum = %d, want 2", len(rects))
	}
	checkPartition(t, lShape, rects)
}

func TestMinimumPlus(t *testing.T) {
	// plus sign: 4 reflex, 2 independent chords -> 3 rects
	rects, err := Minimum(plusSign)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 3 {
		t.Errorf("plus minimum = %d, want 3", len(rects))
	}
	checkPartition(t, plusSign, rects)
}

func TestMinimumBeatsSweepOnSideBumps(t *testing.T) {
	sweep, err := Sweep(barBumps)
	if err != nil {
		t.Fatal(err)
	}
	min, err := Minimum(barBumps)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, barBumps, min)
	if len(min) != 3 {
		t.Errorf("minimum = %d rects, want 3 (bar + 2 bumps)", len(min))
	}
	if len(min) >= len(sweep) {
		t.Errorf("minimum (%d) not better than sweep (%d)", len(min), len(sweep))
	}
}

func TestMinimumU(t *testing.T) {
	rects, err := Minimum(uShape)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 3 {
		t.Errorf("U minimum = %d, want 3", len(rects))
	}
	checkPartition(t, uShape, rects)
}

func TestMinimumClockwiseInput(t *testing.T) {
	cw := lShape.EnsureCCW()
	// reverse to clockwise
	rev := make(geom.Polygon, len(cw))
	for i, p := range cw {
		rev[len(cw)-1-i] = p
	}
	rects, err := Minimum(rev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Errorf("cw L minimum = %d", len(rects))
	}
}

func TestMinimumRandomStaircases(t *testing.T) {
	// random rectilinear shapes from unions of rects, traced from a
	// bitmap: Minimum must tile them exactly and use no more rects
	// than Sweep
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := raster.Grid{Pitch: 1, W: 30, H: 30}
		b := raster.NewBitmap(g)
		n := 2 + rng.Intn(4)
		for k := 0; k < n; k++ {
			x0 := rng.Intn(20)
			y0 := rng.Intn(20)
			w := 4 + rng.Intn(10)
			h := 4 + rng.Intn(10)
			for j := y0; j < y0+h && j < 30; j++ {
				for i := x0; i < x0+w && i < 30; i++ {
					b.Set(i, j, true)
				}
			}
		}
		pg := raster.LargestContour(b)
		if pg == nil || len(pg) < 4 {
			continue
		}
		sweep, err := Sweep(pg)
		if err != nil {
			t.Fatalf("trial %d sweep: %v", trial, err)
		}
		min, err := Minimum(pg)
		if err != nil {
			t.Fatalf("trial %d minimum: %v", trial, err)
		}
		checkPartition(t, pg, min)
		if len(min) > len(sweep) {
			t.Errorf("trial %d: minimum %d > sweep %d", trial, len(min), len(sweep))
		}
		// theoretical optimum for hole-free: reflex - L + 1 <= reflex + 1
		reflex := len(ReflexVertices(pg.EnsureCCW()))
		if len(min) > reflex+1 {
			t.Errorf("trial %d: minimum %d > reflex+1 = %d", trial, len(min), reflex+1)
		}
	}
}

func TestSweepVerticalMatchesTransposed(t *testing.T) {
	rects, err := sweepVertical(barBumps)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, barBumps, rects)
	// vertical sweep on the side-bump shape is the efficient direction
	if len(rects) > 3 {
		t.Errorf("vertical sweep = %d rects, want <= 3", len(rects))
	}
}

func TestMinSliverPrefersFewerSlivers(t *testing.T) {
	// a tall thin notch: horizontal sweeping creates a thin slab,
	// vertical cutting keeps pieces wide
	pg := poly(0, 0, 40, 0, 40, 40, 24, 40, 24, 38, 16, 38, 16, 40, 0, 40)
	min, err := Minimum(pg)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MinSliver(pg, 6)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, pg, ms)
	if countSlivers(ms, 6) > countSlivers(min, 6) {
		t.Errorf("MinSliver has %d slivers vs Minimum's %d",
			countSlivers(ms, 6), countSlivers(min, 6))
	}
}

func TestMinSliverErrors(t *testing.T) {
	if _, err := MinSliver(poly(0, 0, 4, 0, 2, 3), 5); err == nil {
		t.Error("non-rectilinear accepted")
	}
}

func TestCountSlivers(t *testing.T) {
	rects := []geom.Rect{
		{X0: 0, Y0: 0, X1: 100, Y1: 2},
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
	}
	if got := countSlivers(rects, 5); got != 1 {
		t.Errorf("countSlivers = %d", got)
	}
}
