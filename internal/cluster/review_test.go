package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"maskfrac/internal/fracserve"
	"maskfrac/internal/geom"
	"maskfrac/internal/shapecache"
)

// TestPipelineAbortReturns: an OnResult error must abort the run — the
// pipeline returns that error instead of deadlocking on a future the
// producer enqueued but never handed to a worker, and OnResult is not
// invoked again after the abort.
func TestPipelineAbortReturns(t *testing.T) {
	c, _ := startCluster(t, 2, Config{Method: "partition"})
	lib := e2eLib()

	sentinel := errors.New("observer bailed")
	var after atomic.Int64
	failed := false
	type outcome struct {
		mr  *MaskResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		mr, err := RunPipeline(context.Background(), c, lib, PipelineConfig{
			Workers: 2,
			Window:  2, // keep the producer blocked mid-walk when the abort lands
			OnResult: func(pr *PlacementResult) error {
				if failed {
					after.Add(1)
					return nil
				}
				failed = true
				return sentinel
			},
		})
		done <- outcome{mr, err}
	}()

	select {
	case out := <-done:
		if !errors.Is(out.err, sentinel) {
			t.Fatalf("err = %v, want the OnResult sentinel", out.err)
		}
		if out.mr != nil {
			t.Errorf("aborted run returned a result: %+v", out.mr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline deadlocked after OnResult error")
	}
	if n := after.Load(); n != 0 {
		t.Errorf("OnResult invoked %d times after returning an error", n)
	}
}

// TestPipelineWorkerFailureReturns: a terminal routing failure (empty
// ring) cancels the run; the producer must not strand futures in the
// reorder window.
func TestPipelineWorkerFailureReturns(t *testing.T) {
	c := NewClient(Config{Method: "partition"}) // no nodes
	lib := e2eLib()

	type outcome struct {
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := RunPipeline(context.Background(), c, lib, PipelineConfig{Workers: 2, Window: 2})
		done <- outcome{err}
	}()
	select {
	case out := <-done:
		if !errors.Is(out.err, ErrNoNodes) {
			t.Fatalf("err = %v, want ErrNoNodes", out.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline deadlocked after worker failure")
	}
}

// TestSingleflightLeaderCancelNotInherited: a joiner whose context is
// still live must not adopt the leader's context cancellation — it
// re-runs the solve and succeeds.
func TestSingleflightLeaderCancelNotInherited(t *testing.T) {
	c, nodes := startCluster(t, 1, Config{})
	nodes[0].delay.Store(int64(150 * time.Millisecond))

	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(75, 0), geom.Pt(75, 42), geom.Pt(0, 42)}
	can := shapecache.Canonicalize(poly)
	key := can.KeyWith([]byte("proto-eda"))

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.SolveClass(leaderCtx, key, can.Poly)
		leaderErr <- err
	}()
	time.Sleep(30 * time.Millisecond) // leader is in flight

	joinerDone := make(chan error, 1)
	go func() {
		_, err := c.SolveClass(context.Background(), key, can.Poly)
		joinerDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // joiner has joined the flight
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case err := <-joinerDone:
		if err != nil {
			t.Fatalf("joiner inherited the leader's failure: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("joiner never completed")
	}
}

// TestShotDecodeErrorPropagates: with WantShots set, a node replying
// with an undecodable shot payload is a failure, not a silent success
// with nil Shots.
func TestShotDecodeErrorPropagates(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/fracture" {
			// X1 < X0: an invalid rectangle ShotsFromWire rejects
			json.NewEncoder(w).Encode(fracserve.Response{Results: []fracserve.ItemResult{
				{Shots: [][4]float64{{10, 10, 0, 0}}, ShotCount: 1, Feasible: true},
			}})
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	c := NewClient(Config{Method: "proto-eda", WantShots: true})
	c.AddNode("bad", ts.URL)

	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(66, 0), geom.Pt(66, 33), geom.Pt(0, 33)}
	can := shapecache.Canonicalize(poly)
	res, err := c.SolveClass(context.Background(), can.KeyWith([]byte("proto-eda")), can.Poly)
	if err == nil {
		t.Fatalf("malformed shot payload accepted: %+v", res)
	}
	if !strings.Contains(err.Error(), "decode shots") {
		t.Errorf("err = %v, want a decode-shots failure", err)
	}
}

// TestRetryableClassification pins the typed-error contract: 429/504
// and transport failures retry; other status replies and protocol
// errors are terminal.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"queue full", &fracserve.QueueFullError{Msg: "full"}, true},
		{"deadline", fmt.Errorf("%w: slow", fracserve.ErrDeadline), true},
		{"request timeout", context.DeadlineExceeded, true},
		{"transport", errors.New("connection refused"), true},
		{"bad request", &fracserve.StatusError{Code: 400, Msg: "bad polygon"}, false},
		{"server error status", &fracserve.StatusError{Code: 500, Msg: "boom"}, false},
		{"wrapped status", fmt.Errorf("attempt 1: %w", &fracserve.StatusError{Code: 404, Msg: "gone"}), false},
		{"protocol", fmt.Errorf("%w: decode response: bad json", fracserve.ErrProtocol), false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("%s: retryable(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
