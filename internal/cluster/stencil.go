package cluster

import (
	"context"
	"fmt"

	"maskfrac/internal/stencil"
	"maskfrac/internal/telemetry"
)

// TopClasses mines the cluster's congruence-class statistics: it polls
// every member's /stats?classes=k table concurrently and merges them
// into one mask-wide view (placement counts sum across nodes — failover
// and hedging scatter a class's lookups), sorted by placements
// descending and truncated to k (k <= 0 keeps everything). An
// unreachable node fails the mine: a partial class table would silently
// underprice the stencil plan.
func (c *Client) TopClasses(ctx context.Context, k int) ([]stencil.Class, error) {
	ctx, span := telemetry.StartSpan(ctx, "cluster.topclasses")
	defer span.End()
	ids := c.Nodes()
	lists := make([][]stencil.Class, len(ids))
	errs := make([]error, len(ids))
	done := make(chan int, len(ids))
	for i, id := range ids {
		go func(i int, id string) {
			c.mu.Lock()
			n := c.nodes[id]
			c.mu.Unlock()
			if n == nil {
				errs[i] = fmt.Errorf("cluster: unknown node %q", id)
			} else if st, err := n.fc.StatsTop(ctx, k); err != nil {
				errs[i] = fmt.Errorf("cluster: mine %s: %w", id, err)
			} else {
				lists[i] = st.TopClasses
			}
			done <- i
		}(i, id)
	}
	for range ids {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := stencil.Merge(lists...)
	if k > 0 && len(merged) > k {
		merged = merged[:k]
	}
	span.Set("nodes", len(ids))
	span.Set("classes", len(merged))
	return merged, nil
}
