package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"maskfrac/internal/telemetry"
)

// NodeStatus is one member's row in the /clusterz control-plane view,
// aggregated from its /stats and /metrics endpoints.
type NodeStatus struct {
	ID string `json:"id"`
	// Err is the poll failure, "" when the node answered. A failed node
	// still gets a row — an operator looking at /clusterz during an
	// outage needs to see who is missing, not a shorter table.
	Err string `json:"err,omitempty"`
	// OwnershipShare is the node's fraction of the hash-ring key space.
	OwnershipShare float64 `json:"ownership_share"`

	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	Requests      uint64  `json:"requests"`
	Rejected      uint64  `json:"rejected"`
	Timeouts      uint64  `json:"timeouts"`
	ShapesDone    uint64  `json:"shapes_done"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Workers       int     `json:"workers"`
	Inflight      int     `json:"inflight"`
	// CacheHitRate is hits/(hits+misses) of the node's shape-cache
	// shard; 0 when the node has seen no lookups.
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	// P50MS/P99MS are request-latency quantiles estimated from the
	// node's fracd_request_duration_seconds histogram, all endpoints
	// aggregated.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// TracesRetained is the node's /debug/traces retention count.
	TracesRetained float64 `json:"traces_retained,omitempty"`
}

// ClusterStatus is the aggregated control-plane view of the cluster.
type ClusterStatus struct {
	Nodes []NodeStatus `json:"nodes"`
	// Client-side routing totals (this client's perspective).
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	Failovers uint64 `json:"failovers"`
	Dedups    uint64 `json:"singleflight_dedups"`
	// PolledMS is how long the fan-out poll took.
	PolledMS float64 `json:"polled_ms"`
}

// ClusterStatus polls every ring member's /stats and /metrics
// concurrently and aggregates the control-plane view. Per-node
// failures are reported in the node rows, never as a call error.
func (c *Client) ClusterStatus(ctx context.Context) *ClusterStatus {
	start := time.Now()
	ids := c.Nodes()
	share := c.ring.OwnershipShare()
	rows := make([]NodeStatus, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			rows[i] = c.pollNode(ctx, id, share[id])
		}(i, id)
	}
	wg.Wait()
	retries, hedges, failovers, dedups := c.CounterValues()
	return &ClusterStatus{
		Nodes:     rows,
		Retries:   uint64(retries),
		Hedges:    uint64(hedges),
		Failovers: uint64(failovers),
		Dedups:    uint64(dedups),
		PolledMS:  float64(time.Since(start)) / float64(time.Millisecond),
	}
}

// pollNode builds one node's status row.
func (c *Client) pollNode(ctx context.Context, id string, share float64) NodeStatus {
	row := NodeStatus{ID: id, OwnershipShare: share}
	st, err := c.NodeStats(ctx, id)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.UptimeSeconds = st.UptimeSeconds
	row.Requests = st.Requests
	row.Rejected = st.Rejected
	row.Timeouts = st.Timeouts
	row.ShapesDone = st.ShapesDone
	row.QueueDepth = st.QueueDepth
	row.QueueCapacity = st.QueueCapacity
	row.Workers = st.Workers
	row.CacheEntries = st.Cache.Entries
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		row.CacheHitRate = float64(st.Cache.Hits) / float64(total)
	}
	samples, err := c.NodeMetrics(ctx, id)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	if v, ok := telemetry.SampleValue(samples, "fracd_inflight_requests"); ok {
		row.Inflight = int(v)
	}
	if v, ok := telemetry.SampleValue(samples, "fracd_traces_retained"); ok {
		row.TracesRetained = v
	}
	row.P50MS = telemetry.HistogramQuantile(samples, "fracd_request_duration_seconds", 0.5) * 1e3
	row.P99MS = telemetry.HistogramQuantile(samples, "fracd_request_duration_seconds", 0.99) * 1e3
	return row
}

// StatusHandler serves the /clusterz view of a cluster client: JSON by
// default, a fixed-width table with ?format=text.
func StatusHandler(c *Client) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		cs := c.ClusterStatus(r.Context())
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteStatusText(w, cs)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cs)
	})
}

// WriteStatusText renders the cluster view as a fixed-width table.
func WriteStatusText(w io.Writer, cs *ClusterStatus) {
	rows := append([]NodeStatus(nil), cs.Nodes...)
	sort.Slice(rows, func(a, b int) bool { return rows[a].ID < rows[b].ID })
	fmt.Fprintf(w, "%-12s %7s %9s %8s %6s %9s %8s %8s %8s  %s\n",
		"node", "share", "requests", "shapes", "queue", "inflight", "hitrate", "p50", "p99", "err")
	for _, n := range rows {
		fmt.Fprintf(w, "%-12s %6.1f%% %9d %8d %3d/%-3d %9d %7.1f%% %7.2fms %7.2fms  %s\n",
			n.ID, n.OwnershipShare*100, n.Requests, n.ShapesDone,
			n.QueueDepth, n.QueueCapacity, n.Inflight,
			n.CacheHitRate*100, n.P50MS, n.P99MS, n.Err)
	}
	fmt.Fprintf(w, "routing: retries=%d hedges=%d failovers=%d dedups=%d (polled in %.1fms)\n",
		cs.Retries, cs.Hedges, cs.Failovers, cs.Dedups, cs.PolledMS)
}
