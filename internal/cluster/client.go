package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"maskfrac/internal/fracserve"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/telemetry"
)

// ErrNoNodes is returned when the ring has no members.
var ErrNoNodes = errors.New("cluster: no nodes")

// Config tunes a cluster client. Zero values select the defaults noted
// on each field.
type Config struct {
	// MaxInflight bounds concurrent requests per node (default 4). This
	// is the client-side back-pressure valve: it keeps a slow node's
	// queue from absorbing the whole mask while fast nodes sit idle, and
	// it means a 429 burst from one node throttles only that shard.
	MaxInflight int
	// Retries is the number of re-attempts per node after a retryable
	// failure (default 2).
	Retries int
	// RetryBackoff is the initial backoff before a retry, doubling per
	// attempt (default 100ms). A server Retry-After hint overrides it.
	RetryBackoff time.Duration
	// HedgeDelay launches a duplicate request on the next ring node when
	// the owner has not answered within this delay — tail-latency
	// insurance against a node stuck on a deep queue (default 0 =
	// disabled).
	HedgeDelay time.Duration
	// Fallbacks is the number of distinct backup nodes tried after the
	// owner fails terminally (default 1; capped at cluster size - 1).
	Fallbacks int
	// RequestTimeout caps one HTTP attempt (default 2m).
	RequestTimeout time.Duration
	// Vnodes is the virtual point count per ring node (default 128).
	Vnodes int
	// Method selects the fracturing method sent to nodes (default
	// "mbf").
	Method string
	// Params optionally overrides node solver parameters on the wire.
	Params *fracserve.ParamsWire
	// WantShots requests shot lists in responses; when false the cluster
	// only carries counts and evaluations (default false — loadgen and
	// statistics runs don't pay for shot payloads).
	WantShots bool
	// Metrics receives the fracd_cluster_* instrument families; nil
	// creates a private registry.
	Metrics *telemetry.Registry
	// Logger receives routing and failure logs (default: discard).
	Logger *telemetry.Logger
	// HTTPClient overrides the shared transport used for node clients.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.Fallbacks <= 0 {
		c.Fallbacks = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	if c.Method == "" {
		c.Method = "mbf"
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = telemetry.NopLogger()
	}
	return c
}

// ClassResult is the cluster's answer for one congruence class, in the
// canonical frame of the class (shots map to any placement through
// shapecache.Canonical.FromCanonical).
type ClassResult struct {
	Key   shapecache.Key
	Shots []geom.Rect // nil unless Config.WantShots
	// LPairs lists L-shot pairs as {i, j} indices into the class's shot
	// list (present only for L-capable methods). The indices survive the
	// canonical→placement frame mapping, which preserves shot order.
	LPairs [][2]int
	// ShotCount is the number of rectangle entries in the solution
	// (each L-shot pair contributes two).
	ShotCount int
	// FlashCount is the beam flash count: ShotCount minus len(LPairs).
	FlashCount int
	FailOn     int
	FailOff    int
	Cost       float64
	Feasible   bool
	// CacheHit reports whether the owning node answered from its cache
	// shard.
	CacheHit bool
	// Node is the node that produced the accepted answer.
	Node string
	// SolveMS is the node-reported solver wall time.
	SolveMS float64
	// Latency is the client-observed time to the accepted answer,
	// including queueing, retries and hedges.
	Latency time.Duration
}

// node is one cluster member: its HTTP client plus the back-pressure
// semaphore.
type node struct {
	id  string
	fc  *fracserve.Client
	sem chan struct{}
}

// flight is an in-progress class solve that concurrent callers join.
type flight struct {
	done chan struct{}
	res  *ClassResult
	err  error
}

// Client routes congruence classes across fracd nodes. It is safe for
// concurrent use.
type Client struct {
	cfg  Config
	ring *Ring
	log  *telemetry.Logger

	mu      sync.Mutex
	nodes   map[string]*node
	flights map[shapecache.Key]*flight

	// instruments
	reqs      *telemetry.CounterVec // requests attempted, by node
	nodeErrs  *telemetry.CounterVec // terminal per-node failures, by node
	retries   *telemetry.Counter
	hedges    *telemetry.Counter
	failovers *telemetry.Counter
	dedups    *telemetry.Counter // singleflight joins
	inflight  *telemetry.GaugeVec
	latency   *telemetry.Histogram
}

// NewClient returns a cluster client with no members; call AddNode to
// populate the ring.
func NewClient(cfg Config) *Client {
	cfg = cfg.withDefaults()
	c := &Client{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		log:     cfg.Logger,
		nodes:   make(map[string]*node),
		flights: make(map[shapecache.Key]*flight),
	}
	r := cfg.Metrics
	c.reqs = r.CounterVec("fracd_cluster_requests_total",
		"class solve requests attempted by node", "node")
	c.nodeErrs = r.CounterVec("fracd_cluster_node_errors_total",
		"terminal per-node request failures by node", "node")
	c.retries = r.Counter("fracd_cluster_retries_total",
		"request retries after retryable failures (429/504/transport)")
	c.hedges = r.Counter("fracd_cluster_hedges_total",
		"duplicate requests launched by the hedge timer")
	c.failovers = r.Counter("fracd_cluster_failovers_total",
		"requests rerouted to a fallback node after terminal failure")
	c.dedups = r.Counter("fracd_cluster_singleflight_dedup_total",
		"concurrent identical-key solves coalesced client-side")
	c.inflight = r.GaugeVec("fracd_cluster_node_inflight",
		"in-flight requests by node (bounded by max_inflight)", "node")
	c.latency = r.Histogram("fracd_cluster_class_solve_seconds",
		"client-observed latency per congruence class solve", nil)
	r.GaugeFunc("fracd_cluster_nodes", "ring member count",
		func() float64 { return float64(c.ring.Len()) })
	r.CounterFunc("fracd_cluster_ring_rebalance_total",
		"ring membership changes applied",
		func() float64 { return float64(c.ring.Rebalances()) })
	return c
}

// AddNode joins a node to the ring. id must be unique; baseURL is its
// fracd root (e.g. "http://10.0.0.3:8337").
func (c *Client) AddNode(id, baseURL string) {
	fc := fracserve.NewClient(baseURL)
	fc.HTTPClient = c.cfg.HTTPClient
	c.mu.Lock()
	c.nodes[id] = &node{id: id, fc: fc, sem: make(chan struct{}, c.cfg.MaxInflight)}
	c.mu.Unlock()
	c.ring.Add(id)
}

// RemoveNode leaves a node from the ring. In-flight requests to it are
// unaffected; new classes route around it.
func (c *Client) RemoveNode(id string) {
	c.ring.Remove(id)
	c.mu.Lock()
	delete(c.nodes, id)
	c.mu.Unlock()
}

// Nodes returns the ring members, sorted.
func (c *Client) Nodes() []string { return c.ring.Members() }

// CounterValues returns the routing counters: retries, hedges,
// failovers and singleflight dedups. The same values are exported as
// fracd_cluster_* metrics; this accessor serves embedders (loadgen)
// that report without scraping.
func (c *Client) CounterValues() (retries, hedges, failovers, dedups float64) {
	return c.retries.Value(), c.hedges.Value(), c.failovers.Value(), c.dedups.Value()
}

// RingRebalances returns the ring membership-change count.
func (c *Client) RingRebalances() uint64 { return c.ring.Rebalances() }

// NodeRequestCounts returns the per-node attempted-request counters —
// the balance view loadgen's soak mode tracks per window.
func (c *Client) NodeRequestCounts() map[string]uint64 {
	out := make(map[string]uint64)
	c.reqs.Each(func(values []string, ct *telemetry.Counter) {
		out[values[0]] = uint64(ct.Value())
	})
	return out
}

// NodeMetrics fetches and parses /metrics from one member.
func (c *Client) NodeMetrics(ctx context.Context, id string) ([]telemetry.Sample, error) {
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	return n.fc.Metrics(ctx)
}

// NodeStats fetches /stats from one member.
func (c *Client) NodeStats(ctx context.Context, id string) (*fracserve.StatsReply, error) {
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	return n.fc.Stats(ctx)
}

// SolveClass solves one congruence class: poly must be the canonical
// polygon of the class and key its canonical cache key. Concurrent
// calls with the same key are coalesced into one cluster request
// (singleflight); the key also picks the owning node, so across every
// client and node the class runs the solver once.
func (c *Client) SolveClass(ctx context.Context, key shapecache.Key, poly geom.Polygon) (*ClassResult, error) {
	for {
		c.mu.Lock()
		if fl, ok := c.flights[key]; ok {
			c.mu.Unlock()
			c.dedups.Inc()
			select {
			case <-fl.done:
				// A leader that was cancelled reports its own context
				// error; a joiner whose context is still live must not
				// inherit it — re-run the solve instead (the flight has
				// already been removed from the map, so the next lap
				// either becomes the new leader or joins one).
				if fl.err != nil && ctx.Err() == nil &&
					(errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded)) {
					continue
				}
				return fl.res, fl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		c.flights[key] = fl
		c.mu.Unlock()

		res, err := c.solveRouted(ctx, key, poly)
		fl.res, fl.err = res, err
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// solveRouted runs the routing state machine for one class: primary
// node first, hedge to the next ring node on the hedge timer, fail over
// on terminal errors, first success wins.
func (c *Client) solveRouted(ctx context.Context, key shapecache.Key, poly geom.Polygon) (*ClassResult, error) {
	start := time.Now()
	cands := c.ring.LookupN(key, 1+c.cfg.Fallbacks)
	if len(cands) == 0 {
		return nil, ErrNoNodes
	}
	ctx, span := telemetry.StartSpan(ctx, "cluster.class")
	defer span.End()
	span.Set("node", cands[0])

	// Request-ID base: derived from the trace ID when tracing so node
	// logs and /debug/traces join on one identifier, fresh otherwise.
	// Every routed attempt carries a variant of it — hedges, failovers
	// and retries get distinguishing suffixes so each server-side log
	// line attributes to one specific attempt.
	ridBase := telemetry.NewRequestID()
	if tid := span.TraceID(); tid != "" {
		ridBase = "t" + tid[:16]
	}

	type outcome struct {
		item *fracserve.ItemResult
		node string
		err  error
	}
	// cancel stragglers (the losing half of a hedge) when we return
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan outcome, len(cands))
	launched := 0
	next := 0
	launch := func(kind string) {
		id := cands[next]
		rid := ridBase
		switch kind {
		case "hedge":
			rid += "-h"
		case "failover":
			rid += "-f" + strconv.Itoa(next)
		}
		next++
		launched++
		// one sibling span per attempt: the primary, each hedge and each
		// failover show up side by side in the stitched waterfall
		att := span.Child("cluster.attempt")
		att.Set("node", id)
		att.Set("kind", kind)
		att.Set("request_id", rid)
		actx := fracserve.WithRequestID(telemetry.ContextWithSpan(ctx, att), rid)
		go func() {
			item, err := c.tryNode(actx, id, poly)
			if err != nil {
				att.Set("err", err.Error())
			}
			att.End()
			results <- outcome{item: item, node: id, err: err}
		}()
	}
	launch("primary")

	var hedgeC <-chan time.Time
	if c.cfg.HedgeDelay > 0 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for launched > 0 {
		select {
		case out := <-results:
			launched--
			if out.err == nil {
				res, cerr := classResult(key, out.item, out.node)
				if cerr == nil {
					res.Latency = time.Since(start)
					c.latency.Observe(res.Latency.Seconds())
					span.Set("cache_hit", res.CacheHit)
					return res, nil
				}
				// a reply we cannot decode is a node failure: fall
				// through to the failover path below
				out.err = fmt.Errorf("cluster: node %s: %w", out.node, cerr)
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = out.err
			c.nodeErrs.With(out.node).Inc()
			c.log.Warn("node failed", "node", out.node, "err", out.err.Error())
			if next < len(cands) {
				c.failovers.Inc()
				launch("failover")
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				c.hedges.Inc()
				span.Set("hedged", true)
				launch("hedge")
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("cluster: class solve failed on %v: %w", cands, lastErr)
}

// classResult converts an accepted node reply. A shot payload that
// fails to decode is an error, not a silent nil — with Config.WantShots
// set, callers rely on Shots being present.
func classResult(key shapecache.Key, item *fracserve.ItemResult, nodeID string) (*ClassResult, error) {
	res := &ClassResult{
		Key:        key,
		LPairs:     item.LPairs,
		ShotCount:  item.ShotCount,
		FlashCount: item.ShotCount - len(item.LPairs),
		FailOn:     item.FailOn,
		FailOff:    item.FailOff,
		Cost:       item.Cost,
		Feasible:   item.Feasible,
		CacheHit:   item.CacheHit,
		Node:       nodeID,
		SolveMS:    item.SolveMS,
	}
	if item.Shots != nil {
		shots, err := item.ShotRects()
		if err != nil {
			return nil, fmt.Errorf("decode shots: %w", err)
		}
		res.Shots = shots
	}
	return res, nil
}

// ClassUse is one class's collapsed placement multiplicity for
// ReportClassUses: a representative polygon of the class (the server
// re-derives the class key from it) and the placements to credit.
type ClassUse struct {
	Poly geom.Polygon
	Uses uint64
}

// ReportClassUses credits each class with extra placements on the node
// that owns it on the ring, so per-node class statistics (mined by the
// stencil planner through /stats?classes=K) count mask placements
// rather than wire requests. Batch callers that memoize class results
// locally — RunPipeline — call this once per run with the collapsed
// multiplicities. Reporting is best-effort: per-node failures are
// logged and skipped, and the number of classes actually credited is
// returned.
func (c *Client) ReportClassUses(ctx context.Context, uses map[shapecache.Key]ClassUse) int {
	if len(uses) == 0 {
		return 0
	}
	// group classes by ring owner, in deterministic (routing-key) order
	type keyed struct {
		key shapecache.Key
		cu  ClassUse
	}
	byNode := make(map[string][]keyed)
	for key, cu := range uses {
		if cu.Uses == 0 || cu.Poly == nil {
			continue
		}
		id := c.ring.Lookup(key)
		if id == "" {
			continue
		}
		byNode[id] = append(byNode[id], keyed{key: key, cu: cu})
	}
	credited := 0
	for id, classes := range byNode {
		c.mu.Lock()
		n := c.nodes[id]
		c.mu.Unlock()
		if n == nil {
			continue
		}
		sort.Slice(classes, func(i, j int) bool {
			return bytes.Compare(classes[i].key[:], classes[j].key[:]) < 0
		})
		req := &fracserve.ClassUsesRequest{Method: c.cfg.Method, Params: c.cfg.Params}
		for _, k := range classes {
			req.Classes = append(req.Classes, fracserve.ClassUse{
				Shape: maskio.PolygonWire(k.cu.Poly), Uses: k.cu.Uses,
			})
		}
		reply, err := n.fc.ReportClassUses(ctx, req)
		if err != nil {
			c.log.Warn("class-use report failed", "node", id, "classes", len(classes), "err", err.Error())
			continue
		}
		credited += reply.Credited
	}
	return credited
}

// tryNode attempts one node with bounded in-flight work and
// retry-with-backoff. 429 replies wait out the server's Retry-After
// hint; 504 and transport errors back off exponentially; other HTTP
// errors (bad request, unknown method) are terminal.
func (c *Client) tryNode(ctx context.Context, id string, poly geom.Polygon) (*fracserve.ItemResult, error) {
	c.mu.Lock()
	n := c.nodes[id]
	c.mu.Unlock()
	if n == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", id)
	}
	backoff := c.cfg.RetryBackoff
	rid := fracserve.RequestIDFrom(ctx)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		actx := ctx
		if attempt > 0 {
			c.retries.Inc()
			wait := backoff
			if after, ok := fracserve.RetryAfter(lastErr); ok {
				wait = after
			}
			backoff *= 2
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if rid != "" {
				actx = fracserve.WithRequestID(ctx, rid+"-r"+strconv.Itoa(attempt))
			}
		}
		// back-pressure: cap concurrent requests to this node
		select {
		case n.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		g := c.inflight.With(id)
		g.Inc()
		c.reqs.With(id).Inc()
		tctx, cancel := context.WithTimeout(actx, c.cfg.RequestTimeout)
		item, err := c.fracture(tctx, n, poly)
		cancel()
		g.Dec()
		<-n.sem
		if err == nil {
			return item, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// fracture sends one single-shape request. When the context carries an
// active span, the node's returned span tree is stitched under it —
// the fracserve client sends the span's traceparent, the node adopts
// it and returns its tree, and AdoptWire grafts that tree back in, so
// a local trace renders one cross-node waterfall.
func (c *Client) fracture(ctx context.Context, n *node, poly geom.Polygon) (*fracserve.ItemResult, error) {
	req := &fracserve.Request{
		Shape:     maskio.PolygonWire(poly),
		Method:    c.cfg.Method,
		Params:    c.cfg.Params,
		OmitShots: !c.cfg.WantShots,
	}
	resp, err := n.fc.Do(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Trace != nil {
		telemetry.ActiveSpan(ctx).AdoptWire(resp.Trace)
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("cluster: node %s returned %d results for one shape", n.id, len(resp.Results))
	}
	item := resp.Results[0]
	if item.Error != "" {
		return nil, fmt.Errorf("cluster: node %s: %s", n.id, item.Error)
	}
	return &item, nil
}

// retryable classifies node failures. Queue overflow (429), server
// deadline (504), timeouts and transport errors can succeed on retry or
// another node; other status replies (4xx validation errors, unknown
// methods) and undecodable bodies will fail identically everywhere and
// are terminal.
func retryable(err error) bool {
	if errors.Is(err, fracserve.ErrQueueFull) || errors.Is(err, fracserve.ErrDeadline) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var se *fracserve.StatusError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, fracserve.ErrProtocol) {
		return false
	}
	// everything else is a transport-level failure (connection
	// refused/reset, EOF) and worth retrying
	return true
}
