package cluster

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maskfrac/internal/fracserve"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
)

// testNode is one in-process fracd member with request accounting and
// an injectable per-request delay, so tests can observe routing,
// back-pressure and hedging from the outside.
type testNode struct {
	id          string
	srv         *fracserve.Server
	ts          *httptest.Server
	fractures   atomic.Int64
	inflight    atomic.Int64
	maxInflight atomic.Int64
	delay       atomic.Int64 // ns, applied to /fracture before delegating
}

func startTestNode(t *testing.T, id string) *testNode {
	t.Helper()
	n := &testNode{id: id, srv: fracserve.New(fracserve.Config{Workers: 4, QueueDepth: 64})}
	inner := n.srv.Handler()
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/fracture" {
			n.fractures.Add(1)
			cur := n.inflight.Add(1)
			for {
				max := n.maxInflight.Load()
				if cur <= max || n.maxInflight.CompareAndSwap(max, cur) {
					break
				}
			}
			defer n.inflight.Add(-1)
			if d := n.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(n.ts.Close)
	return n
}

func startCluster(t *testing.T, size int, cfg Config) (*Client, []*testNode) {
	t.Helper()
	if cfg.Method == "" {
		cfg.Method = "proto-eda"
	}
	c := NewClient(cfg)
	nodes := make([]*testNode, size)
	for i := range nodes {
		id := string(rune('a' + i))
		nodes[i] = startTestNode(t, "node-"+id)
		c.AddNode(nodes[i].id, nodes[i].ts.URL)
	}
	return c, nodes
}

// e2eLib is a 3-level hierarchy with repeated congruence classes:
// leaf (L + rect) instantiated under rotation and arrays, plus a
// variety cell contributing ~30 distinct classes so routing spreads
// across all nodes.
func e2eLib() *maskio.Library {
	lshape := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(90, 30),
		geom.Pt(30, 30), geom.Pt(30, 120), geom.Pt(0, 120),
	}
	rect := geom.Polygon{geom.Pt(0, 0), geom.Pt(70, 0), geom.Pt(70, 30), geom.Pt(0, 30)}
	leaf := &maskio.Cell{Name: "leaf", Boundaries: []geom.Polygon{lshape, rect}}

	variety := &maskio.Cell{Name: "variety"}
	for i := 0; i < 30; i++ {
		w := float64(44 + 4*i)
		variety.Boundaries = append(variety.Boundaries, geom.Polygon{
			geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, 24), geom.Pt(0, 24),
		}.Translate(geom.Pt(0, float64(40*i))))
	}

	pair := &maskio.Cell{Name: "pair", Refs: []maskio.Ref{
		{Cell: "leaf", Cols: 1, Rows: 1, Origin: geom.Pt(0, 0)},
		{Cell: "leaf", Cols: 1, Rows: 1, Orient: maskio.OrientRot90, Origin: geom.Pt(300, 0)},
	}}
	top := &maskio.Cell{Name: "top", Refs: []maskio.Ref{
		{Cell: "pair", Cols: 3, Rows: 2, ColStep: geom.Pt(600, 0), RowStep: geom.Pt(0, 400)},
		{Cell: "variety", Cols: 1, Rows: 1, Orient: maskio.OrientMirrorY, Origin: geom.Pt(2500, 0)},
		{Cell: "leaf", Cols: 1, Rows: 1, Orient: maskio.OrientTranspose, Origin: geom.Pt(0, 1500)},
	}}
	return &maskio.Library{Name: "e2e", Cells: []*maskio.Cell{leaf, variety, pair, top}}
}

// distinctClasses walks lib and counts congruence classes the same way
// the pipeline will, keyed with the cluster method.
func distinctClasses(t *testing.T, lib *maskio.Library, method string) int {
	t.Helper()
	seen := map[shapecache.Key]struct{}{}
	if err := lib.Walk(func(pl maskio.Placement) error {
		seen[shapecache.Canonicalize(pl.Polygon).KeyWith([]byte(method))] = struct{}{}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return len(seen)
}

// TestClusterE2ESingleSolvePerClass is the headline invariant: across a
// 3-node cluster, the sum of per-node cache misses equals the number of
// distinct congruence classes — every class was solved exactly once
// cluster-wide, everything else was routing and cache.
func TestClusterE2ESingleSolvePerClass(t *testing.T) {
	// partition fracturing tiles the polygon exactly (no proximity
	// bias), so the shot geometry checks below can assert equality
	c, nodes := startCluster(t, 3, Config{WantShots: true, Method: "partition"})
	lib := e2eLib()
	ctx := context.Background()

	wantPlacements, err := lib.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}
	wantClasses := distinctClasses(t, lib, "partition")

	lastSeq := int64(-1)
	mr, err := RunPipeline(ctx, c, lib, PipelineConfig{Workers: 8, OnResult: func(pr *PlacementResult) error {
		if pr.Seq <= lastSeq {
			t.Errorf("out-of-order emission: seq %d after %d", pr.Seq, lastSeq)
		}
		lastSeq = pr.Seq
		// shots mapped into the placement frame must exactly tile the
		// placement polygon: total area matches and every shot stays
		// inside the bounding box
		poly := placementPolygon(t, lib, pr)
		var area float64
		bb := poly.Bounds()
		for _, s := range pr.Shots {
			area += s.Area()
			if !bb.ContainsRect(s) {
				t.Errorf("seq %d: shot %+v outside bounds %+v", pr.Seq, s, bb)
			}
		}
		if math.Abs(area-poly.Area()) > 1e-6 {
			t.Errorf("seq %d: shot area %.3f != polygon area %.3f", pr.Seq, area, poly.Area())
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Placements != wantPlacements {
		t.Errorf("placements = %d, want %d", mr.Placements, wantPlacements)
	}
	if mr.Classes != wantClasses {
		t.Errorf("classes = %d, want %d", mr.Classes, wantClasses)
	}
	if mr.Shots <= 0 || mr.WriteTime <= 0 {
		t.Errorf("aggregates: shots=%d writetime=%v", mr.Shots, mr.WriteTime)
	}
	// partition applies no proximity compensation, so every placement
	// evaluates as CD-infeasible — which exercises the aggregation path
	if mr.Infeasible != mr.Placements {
		t.Errorf("infeasible = %d, want every placement (%d) under partition", mr.Infeasible, mr.Placements)
	}

	var misses, hits uint64
	for _, n := range nodes {
		st, err := c.NodeStats(ctx, n.id)
		if err != nil {
			t.Fatalf("stats %s: %v", n.id, err)
		}
		misses += st.Cache.Misses
		hits += st.Cache.Hits
	}
	if int(misses) != wantClasses {
		t.Errorf("cluster-wide cache misses = %d, want %d (one solve per class)", misses, wantClasses)
	}
	// the pipeline memo means repeated classes never reach the wire, so
	// warm-node hits stay zero on a cold cluster
	if hits != 0 {
		t.Errorf("unexpected node cache hits on a cold cluster: %d", hits)
	}
	// with ~30+ classes and 128 vnodes, all 3 nodes should own work
	for _, n := range nodes {
		if n.fractures.Load() == 0 {
			t.Errorf("node %s received no requests: routing is not spreading", n.id)
		}
	}
}

// placementPolygon recomputes the world-frame polygon of a placement
// from the library, independently of the pipeline's internals.
func placementPolygon(t *testing.T, lib *maskio.Library, pr *PlacementResult) geom.Polygon {
	t.Helper()
	var got geom.Polygon
	if err := lib.Walk(func(pl maskio.Placement) error {
		if pl.Seq == pr.Seq {
			got = pl.Polygon
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatalf("seq %d not found in library walk", pr.Seq)
	}
	return got
}

// TestClusterE2EClassUseCredit: after a pipeline run the cluster-wide
// class statistics count mask placements, not wire requests — the
// memo collapses repeated classes into one request, and the pipeline
// reports the collapsed multiplicities back to the owning nodes via
// POST /stats/classes.
func TestClusterE2EClassUseCredit(t *testing.T) {
	c, nodes := startCluster(t, 3, Config{})
	lib := e2eLib()
	ctx := context.Background()
	wantPlacements, err := lib.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}
	wantClasses := distinctClasses(t, lib, "proto-eda")

	mr, err := RunPipeline(ctx, c, lib, PipelineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if mr.ClassUsesCredited == 0 {
		t.Error("no class multiplicities credited despite repeated classes")
	}
	var placements int64
	classes := 0
	for _, n := range nodes {
		st, err := fracserve.NewClient(n.ts.URL).StatsTop(ctx, 0)
		if err != nil {
			t.Fatalf("stats %s: %v", n.id, err)
		}
		classes += len(st.TopClasses)
		for _, cl := range st.TopClasses {
			placements += cl.Placements
		}
	}
	if classes != wantClasses {
		t.Errorf("cluster-wide tracked classes = %d, want %d", classes, wantClasses)
	}
	if placements != wantPlacements {
		t.Errorf("cluster-wide class placements = %d, want %d (wire requests were %d)",
			placements, wantPlacements, mr.ClusterRequests)
	}
	if mr.Flashes != mr.Shots {
		t.Errorf("rectangle-only method reported flashes %d != shots %d", mr.Flashes, mr.Shots)
	}
}

// TestClusterE2ENodeFailure kills one node mid-run: retries and
// failover must complete the mask with zero lost placements.
func TestClusterE2ENodeFailure(t *testing.T) {
	c, nodes := startCluster(t, 3, Config{
		Retries:      1,
		RetryBackoff: 10 * time.Millisecond,
		Fallbacks:    2,
	})
	lib := e2eLib()
	wantPlacements, err := lib.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}

	var once sync.Once
	mr, err := RunPipeline(context.Background(), c, lib, PipelineConfig{
		Workers: 4,
		// small window so the walk is still in progress when the node
		// dies
		Window: 4,
		OnResult: func(pr *PlacementResult) error {
			if pr.Seq >= 5 {
				once.Do(func() {
					nodes[2].ts.CloseClientConnections()
					nodes[2].ts.Close()
				})
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("pipeline failed despite failover: %v", err)
	}
	if mr.Placements != wantPlacements {
		t.Errorf("lost placements: got %d, want %d", mr.Placements, wantPlacements)
	}
	// the dead node owned some classes (3-way split of 30+), so the
	// router must have recorded reroutes unless the run finished before
	// the kill — the seq>=5 trigger with a 4-slot window prevents that
	failovers := c.failovers.Value() + c.retries.Value()
	if failovers == 0 {
		t.Error("node died mid-run but no retries/failovers were recorded")
	}
}

// TestClusterSingleflight: concurrent solves of one key collapse into
// one wire request.
func TestClusterSingleflight(t *testing.T) {
	c, nodes := startCluster(t, 2, Config{})
	for _, n := range nodes {
		n.delay.Store(int64(100 * time.Millisecond))
	}
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 50), geom.Pt(0, 50)}
	can := shapecache.Canonicalize(poly)
	key := can.KeyWith([]byte("proto-eda"))

	const callers = 8
	var wg sync.WaitGroup
	results := make([]*ClassResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.SolveClass(context.Background(), key, can.Poly)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	var wire int64
	for _, n := range nodes {
		wire += n.fractures.Load()
	}
	if wire != 1 {
		t.Errorf("8 concurrent solves produced %d wire requests, want 1", wire)
	}
	if c.dedups.Value() != callers-1 {
		t.Errorf("singleflight dedups = %v, want %d", c.dedups.Value(), callers-1)
	}
	for i, r := range results {
		if r == nil || r.ShotCount != results[0].ShotCount {
			t.Errorf("caller %d result diverged: %+v", i, r)
		}
	}
}

// TestClusterBackpressure: per-node in-flight stays within MaxInflight
// even when far more classes target one node.
func TestClusterBackpressure(t *testing.T) {
	c, nodes := startCluster(t, 1, Config{MaxInflight: 2})
	nodes[0].delay.Store(int64(30 * time.Millisecond))

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		w := float64(50 + 2*i)
		poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, 31), geom.Pt(0, 31)}
		can := shapecache.Canonicalize(poly)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.SolveClass(context.Background(), can.KeyWith([]byte("proto-eda")), can.Poly); err != nil {
				t.Errorf("solve: %v", err)
			}
		}()
	}
	wg.Wait()
	if max := nodes[0].maxInflight.Load(); max > 2 {
		t.Errorf("observed %d concurrent requests, back-pressure cap is 2", max)
	}
	if nodes[0].fractures.Load() != 12 {
		t.Errorf("wire requests = %d, want 12 distinct classes", nodes[0].fractures.Load())
	}
}

// TestClusterHedging: a slow owner is raced by a hedge to the next ring
// node; the fast fallback's answer wins.
func TestClusterHedging(t *testing.T) {
	c, nodes := startCluster(t, 2, Config{
		HedgeDelay: 30 * time.Millisecond,
		Fallbacks:  1,
	})
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(64, 0), geom.Pt(64, 48), geom.Pt(0, 48)}
	can := shapecache.Canonicalize(poly)
	key := can.KeyWith([]byte("proto-eda"))

	cands := c.ring.LookupN(key, 2)
	byID := map[string]*testNode{}
	for _, n := range nodes {
		byID[n.id] = n
	}
	byID[cands[0]].delay.Store(int64(2 * time.Second))

	start := time.Now()
	res, err := c.SolveClass(context.Background(), key, can.Poly)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("hedge did not rescue the tail: took %v", el)
	}
	if res.Node != cands[1] {
		t.Errorf("winning node = %s, want hedge target %s", res.Node, cands[1])
	}
	if c.hedges.Value() != 1 {
		t.Errorf("hedge counter = %v, want 1", c.hedges.Value())
	}
}

// TestClusterNoNodes: an empty ring fails fast, not with a hang.
func TestClusterNoNodes(t *testing.T) {
	c := NewClient(Config{Method: "proto-eda"})
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(60, 0), geom.Pt(60, 60), geom.Pt(0, 60)}
	can := shapecache.Canonicalize(poly)
	_, err := c.SolveClass(context.Background(), can.KeyWith(nil), can.Poly)
	if err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}
