package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"maskfrac/internal/shapecache"
)

// synthetic keys: sha256 of a counter, matching the uniformity of real
// canonical keys.
func testKey(i int) shapecache.Key {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	return shapecache.Key(sha256.Sum256(buf[:]))
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup(testKey(1)); got != "" {
		t.Errorf("Lookup on empty ring = %q", got)
	}
	if got := r.LookupN(testKey(1), 3); got != nil {
		t.Errorf("LookupN on empty ring = %v", got)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRingLookupDeterministic(t *testing.T) {
	mk := func() *Ring {
		r := NewRing(64)
		for _, n := range []string{"nodeC", "nodeA", "nodeB"} {
			r.Add(n)
		}
		return r
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		k := testKey(i)
		na, nb := a.LookupN(k, 3), b.LookupN(k, 3)
		if !reflect.DeepEqual(na, nb) {
			t.Fatalf("key %d: rings disagree: %v vs %v", i, na, nb)
		}
		if len(na) != 3 {
			t.Fatalf("key %d: LookupN(3) = %v", i, na)
		}
		seen := map[string]bool{}
		for _, n := range na {
			if seen[n] {
				t.Fatalf("key %d: duplicate node in %v", i, na)
			}
			seen[n] = true
		}
		if a.Lookup(k) != na[0] {
			t.Fatalf("key %d: Lookup != LookupN[0]", i)
		}
	}
	// insertion order must not matter
	c := NewRing(64)
	for _, n := range []string{"nodeB", "nodeC", "nodeA"} {
		c.Add(n)
	}
	for i := 0; i < 200; i++ {
		if a.Lookup(testKey(i)) != c.Lookup(testKey(i)) {
			t.Fatal("ring depends on insertion order")
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0) // default vnodes
	nodes := []string{"n0", "n1", "n2"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 12000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Lookup(testKey(i))]++
	}
	// perfect balance is keys/3; 128 vnodes should keep every shard
	// within ±50% of fair
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 1.0/6 || share > 1.0/2 {
			t.Errorf("node %s owns %.1f%% of keys (counts %v)", n, 100*share, counts)
		}
	}
}

// TestRingRemovalStability is the consistent-hashing contract: removing
// a node reroutes only the keys it owned, and each displaced key lands
// on what was its second candidate — so failover targets and
// post-removal owners agree, and surviving cache shards stay warm.
func TestRingRemovalStability(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"n0", "n1", "n2"} {
		r.Add(n)
	}
	const keys = 2000
	before := make([][]string, keys)
	for i := 0; i < keys; i++ {
		before[i] = r.LookupN(testKey(i), 2)
	}
	if r.Rebalances() != 3 {
		t.Errorf("rebalances = %d after 3 adds", r.Rebalances())
	}
	r.Remove("n1")
	if r.Rebalances() != 4 {
		t.Errorf("rebalances = %d after removal", r.Rebalances())
	}
	moved := 0
	for i := 0; i < keys; i++ {
		after := r.Lookup(testKey(i))
		if before[i][0] != "n1" {
			if after != before[i][0] {
				t.Fatalf("key %d moved from surviving owner %s to %s", i, before[i][0], after)
			}
			continue
		}
		moved++
		if after != before[i][1] {
			t.Fatalf("displaced key %d went to %s, not its second candidate %s", i, after, before[i][1])
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; test is vacuous")
	}
	// idempotence
	r.Remove("n1")
	r.Add("n0")
	if r.Rebalances() != 4 || r.Len() != 2 {
		t.Errorf("no-op membership ops changed the ring: rebalances=%d len=%d", r.Rebalances(), r.Len())
	}
}

func TestRingVnodeScaling(t *testing.T) {
	// more vnodes must tighten balance, never loosen correctness
	for _, v := range []int{1, 16, 256} {
		r := NewRing(v)
		r.Add("a")
		r.Add("b")
		k := testKey(7)
		n := r.LookupN(k, 2)
		if len(n) != 2 || n[0] == n[1] {
			t.Errorf("vnodes=%d: LookupN = %v", v, n)
		}
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(0)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	keys := make([]shapecache.Key, 1024)
	for i := range keys {
		keys[i] = testKey(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i%len(keys)])
	}
}
