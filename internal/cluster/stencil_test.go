package cluster

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/shapegen"
	"maskfrac/internal/stencil"
	"maskfrac/internal/writecost"
)

// planTestModel prices the small demo mask: zero stencil load overhead
// (the mask writes in milliseconds) and a 4-slot stencil.
func planTestModel() writecost.Model {
	m := writecost.Default()
	m.Overhead = 0
	m.CPLoadOverhead = 0
	m.CPSlots = 4
	return m
}

// TestStencilPlanE2E exercises the whole mining-to-plan path across a
// sharded cluster: every placement of the demo full-mask library is
// solved through the hash ring (one request per placement, so each
// shard's cache counts real placement frequencies), the client merges
// the per-node class tables, and the planner produces a stencil that
// beats the no-CP baseline within its slot budget.
func TestStencilPlanE2E(t *testing.T) {
	c, nodes := startCluster(t, 3, Config{})
	ctx := context.Background()

	lib := shapegen.DemoLibrary(2, 2)
	placements := 0
	if err := lib.Walk(func(pl maskio.Placement) error {
		can := shapecache.Canonicalize(pl.Polygon)
		_, err := c.SolveClass(ctx, can.KeyWith([]byte("proto-eda")), can.Poly)
		placements++
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if placements != 40 {
		t.Fatalf("walked %d placements, want 40", placements)
	}

	classes, err := c.TopClasses(ctx, 0)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if len(classes) != 10 {
		t.Fatalf("mined %d classes, want 10", len(classes))
	}
	var total int64
	for _, cl := range classes {
		total += cl.Placements
		if cl.Shots <= 0 || cl.W <= 0 || cl.H <= 0 {
			t.Errorf("class %s missing solution stats: %+v", cl.Key[:8], cl)
		}
	}
	if total != 40 {
		t.Errorf("Σ placements across shards = %d, want 40", total)
	}
	// the shards split the classes: more than one node served traffic
	served := 0
	for _, n := range nodes {
		if n.fractures.Load() > 0 {
			served++
		}
	}
	if served < 2 {
		t.Errorf("only %d nodes served traffic", served)
	}

	m := planTestModel()
	plan := stencil.PlanCP(ctx, classes, m)
	if n := len(plan.Characters); n == 0 || n > m.CPSlots {
		t.Fatalf("characters = %d, want 1..%d", n, m.CPSlots)
	}
	r := plan.Report
	if r.WithCPWriteMS >= r.BaselineWriteMS {
		t.Errorf("CP write %v ms not below baseline %v ms", r.WithCPWriteMS, r.BaselineWriteMS)
	}
	sum := 0.0
	for _, ch := range plan.Characters {
		sum += ch.SavedMS
	}
	if sum != r.ClassSavedMS {
		t.Errorf("Σ per-class saved %v != reported total %v", sum, r.ClassSavedMS)
	}

	// determinism: re-mining and re-planning the same cluster state must
	// reproduce the plan byte for byte
	classes2, err := c.TopClasses(ctx, 0)
	if err != nil {
		t.Fatalf("re-mine: %v", err)
	}
	b1, _ := json.Marshal(plan)
	b2, _ := json.Marshal(stencil.PlanCP(ctx, classes2, m))
	if string(b1) != string(b2) {
		t.Errorf("replan diverged:\n%s\nvs\n%s", b1, b2)
	}
}

// TestStencilMineNodeDown: mining must fail loudly when a member is
// unreachable — a partial class table would underprice the plan.
func TestStencilMineNodeDown(t *testing.T) {
	c, nodes := startCluster(t, 2, Config{
		Retries:        0,
		RequestTimeout: 2 * time.Second,
	})
	nodes[1].ts.Close()
	if _, err := c.TopClasses(context.Background(), 0); err == nil {
		t.Fatal("mining with a dead node succeeded")
	}
}
