// Package cluster turns N independent fracd nodes into one sharded
// fracturing cluster. Work is routed by consistent-hashing the
// shapecache canonical key of each congruence class, so a class is
// solved on exactly one node cluster-wide and every node's LRU becomes
// one shard of a distributed cache: adding capacity adds cache, not
// duplicate solves. The package has three layers — a hash ring
// (ring.go), a routed client with back-pressure, retries, hedging and
// singleflight (client.go), and a streaming pipeline driver that walks
// a GDSII hierarchy through the router and reassembles per-placement
// results in deterministic order (pipeline.go).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"maskfrac/internal/shapecache"
)

// defaultVnodes is the number of virtual points each node contributes
// to the ring. 128 points keep the largest/smallest shard ratio within
// a few percent for small clusters while Add/Remove stay cheap.
const defaultVnodes = 128

// Ring is a consistent-hash ring over node IDs. Keys (shapecache
// canonical keys) map to the first virtual point clockwise; removing a
// node reassigns only that node's arcs, so cache shards on surviving
// nodes stay warm through membership changes — the property a modulo
// hash lacks.
type Ring struct {
	mu         sync.RWMutex
	vnodes     int
	points     []ringPoint // sorted by hash
	members    map[string]struct{}
	rebalances uint64 // membership changes applied
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with vnodes virtual points per node
// (<= 0 selects the default of 128).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// pointHash derives the ring position of one virtual point.
func pointHash(node string, replica int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(replica))
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write(buf[:])
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash maps a canonical key onto the ring. The key is already a
// sha256 digest, so its first eight bytes are uniformly distributed.
func keyHash(k shapecache.Key) uint64 {
	return binary.BigEndian.Uint64(k[:8])
}

// Add inserts a node. Adding an existing member is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; ok {
		return
	}
	r.members[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	r.rebalances++
}

// Remove deletes a node. Removing a non-member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.rebalances++
}

// Members returns the node IDs, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Rebalances returns the number of membership changes applied.
func (r *Ring) Rebalances() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rebalances
}

// OwnershipShare returns each member's fraction of the key space —
// the arcs its virtual points own, summed. With uniform keys this is
// the expected share of classes routed to the node, so /clusterz can
// tell imbalance caused by the ring from imbalance caused by the
// workload.
func (r *Ring) OwnershipShare() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.members))
	for i, p := range r.points {
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		// uint64 wraparound yields the correct arc length for the point
		// that crosses zero; accumulate in float64 so a single-member
		// ring's full circle does not overflow back to zero
		out[p.node] += float64(p.hash-prev) / math.Exp2(64)
	}
	return out
}

// Lookup returns the node owning key: the first virtual point at or
// clockwise of the key's hash. Returns "" on an empty ring.
func (r *Ring) Lookup(key shapecache.Key) string {
	nodes := r.LookupN(key, 1)
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

// LookupN returns up to n distinct nodes in clockwise preference order
// starting at the key's owner. The tail entries are the natural
// failover/hedging targets: every client computes the same order, so a
// class displaced by a node failure lands on the same fallback
// everywhere and is still solved only once.
func (r *Ring) LookupN(key shapecache.Key, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
