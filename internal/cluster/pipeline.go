package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/telemetry"
	"maskfrac/internal/writecost"
)

// PipelineConfig tunes one full-mask run.
type PipelineConfig struct {
	// Workers is the number of placements canonicalized/resolved
	// concurrently (default 8). Distinct congruence classes solve in
	// parallel up to this bound; repeated classes resolve from the run's
	// memo without touching the cluster.
	Workers int
	// Window bounds the reorder buffer that restores walk order on
	// output (default 4*Workers). It is the only pipeline state that
	// grows with placement skew, so memory stays O(Window + classes)
	// regardless of mask size.
	Window int
	// WriteModel prices the aggregate shot count (default
	// writecost.Default()).
	WriteModel *writecost.Model
	// OnResult, when non-nil, observes every placement in walk order
	// (Seq strictly increasing). Returning an error aborts the run.
	OnResult func(*PlacementResult) error
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Window <= 0 {
		c.Window = 4 * c.Workers
	}
	if c.WriteModel == nil {
		m := writecost.Default()
		c.WriteModel = &m
	}
	return c
}

// PlacementResult is one placement's outcome, in placement (world)
// coordinates.
type PlacementResult struct {
	Seq    int64
	Cell   string
	Shape  int
	Orient maskio.Orient
	Origin geom.Point
	Key    shapecache.Key
	// Class is the cluster's canonical-frame answer, shared by every
	// placement of the congruence class.
	Class *ClassResult
	// Shots is the shot list mapped into this placement's frame; nil
	// unless the client requested shots.
	Shots []geom.Rect
}

// MaskResult aggregates a full-mask run.
type MaskResult struct {
	// Placements is the number of shape placements streamed.
	Placements int64
	// Classes is the number of distinct congruence classes solved.
	Classes int
	// ClusterRequests counts SolveClass calls issued (== Classes: the
	// memo stops repeats, singleflight stops concurrent duplicates).
	ClusterRequests int64
	// NodeCacheHits counts classes answered from a node's cache shard —
	// nonzero only when nodes were warm before the run.
	NodeCacheHits int
	// Shots is the mask total: each class's shot count times its
	// placement multiplicity.
	Shots int64
	// Flashes is the mask's beam flash total: Shots minus the classes'
	// L-shot pairs times their multiplicities. Equal to Shots for
	// rectangle-only methods; this is what the write time is priced on.
	Flashes int64
	// FailOn/FailOff total CD violations across all placements.
	FailOn, FailOff int64
	// Infeasible counts placements whose class solution violates CD
	// constraints.
	Infeasible int64
	// ClassUsesCredited is the number of classes whose memoized
	// placement multiplicity was reported back to the owning nodes'
	// statistics after the run (see Client.ReportClassUses).
	ClassUsesCredited int
	// WriteTime is the modeled mask write time for Flashes.
	WriteTime time.Duration
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// classMemo caches completed class solves for the lifetime of one run,
// so a class appearing in a million placements crosses the network
// once.
type classMemo struct {
	mu sync.Mutex
	m  map[shapecache.Key]*memoEntry
}

type memoEntry struct {
	done chan struct{}
	res  *ClassResult
	err  error
}

// resolve returns the class result, computing it via fn exactly once
// per key; concurrent and later callers wait on / reuse the first call.
func (mc *classMemo) resolve(ctx context.Context, key shapecache.Key, fn func() (*ClassResult, error)) (*ClassResult, bool, error) {
	mc.mu.Lock()
	if e, ok := mc.m[key]; ok {
		mc.mu.Unlock()
		select {
		case <-e.done:
			return e.res, false, e.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &memoEntry{done: make(chan struct{})}
	mc.m[key] = e
	mc.mu.Unlock()
	e.res, e.err = fn()
	close(e.done)
	return e.res, true, e.err
}

// RunPipeline streams lib's placements through the cluster and
// reassembles results in deterministic walk order. The walker runs
// incrementally — back-pressure from the reorder window pauses it, so
// the pipeline never materializes the flattened mask.
func RunPipeline(ctx context.Context, c *Client, lib *maskio.Library, cfg PipelineConfig) (*MaskResult, error) {
	cfg = cfg.withDefaults()
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: invalid library: %w", err)
	}
	start := time.Now()
	ctx, span := telemetry.StartSpan(ctx, "cluster.pipeline")
	defer span.End()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		pl  maskio.Placement
		can shapecache.Canonical
		key shapecache.Key
		fut chan *PlacementResult // buffered(1); closed without a value on failure
	}
	jobs := make(chan job, cfg.Workers)
	order := make(chan chan *PlacementResult, cfg.Window)

	var (
		memo     = classMemo{m: make(map[shapecache.Key]*memoEntry)}
		firstErr error
		errOnce  sync.Once
		// classPoly keeps one representative canonical polygon per class
		// so the post-run multiplicity report can address the owning
		// node's record (the server re-derives its key from the shape).
		polyMu    sync.Mutex
		classPoly = make(map[shapecache.Key]geom.Polygon)
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err; cancel() })
	}

	// producer: walk the hierarchy, canonicalize, hand each placement a
	// future. The order channel's capacity is the reorder window; when
	// the consumer falls behind, send blocks and the walk pauses.
	go func() {
		defer close(jobs)
		defer close(order)
		err := lib.Walk(func(pl maskio.Placement) error {
			can := shapecache.Canonicalize(pl.Polygon)
			j := job{pl: pl, can: can, key: can.KeyWith([]byte(c.cfg.Method)), fut: make(chan *PlacementResult, 1)}
			select {
			case order <- j.fut:
			case <-ctx.Done():
				return ctx.Err()
			}
			select {
			case jobs <- j:
			case <-ctx.Done():
				// the future is already queued in order but no worker
				// will ever see the job; close it so the consumer's
				// drain does not block forever
				close(j.fut)
				return ctx.Err()
			}
			return nil
		})
		if err != nil && ctx.Err() == nil {
			fail(err)
		}
	}()

	// workers: resolve each placement's class (memo → singleflight →
	// router) and fulfill its future out of order. Workers exit when the
	// producer closes jobs; the consumer below outlives them because
	// every future is fulfilled before its worker moves on.
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for j := range jobs {
				res, leader, err := memo.resolve(ctx, j.key, func() (*ClassResult, error) {
					return c.SolveClass(ctx, j.key, j.can.Poly)
				})
				if leader {
					polyMu.Lock()
					classPoly[j.key] = j.can.Poly
					polyMu.Unlock()
				}
				if err != nil {
					fail(fmt.Errorf("cluster: placement %d (%s): %w", j.pl.Seq, j.pl.Cell, err))
					close(j.fut)
					continue
				}
				pr := &PlacementResult{
					Seq:    j.pl.Seq,
					Cell:   j.pl.Cell,
					Shape:  j.pl.Shape,
					Orient: j.pl.Orient,
					Origin: j.pl.Origin,
					Key:    j.key,
					Class:  res,
				}
				if res.Shots != nil {
					pr.Shots = j.can.FromCanonical(res.Shots)
				}
				j.fut <- pr
			}
		}()
	}

	// consumer: drain futures in walk order and aggregate. uses counts
	// each class's placement multiplicity — the memo collapses repeats
	// into one wire request, so the owning node's statistics see one
	// lookup where the mask has uses[key] placements; the surplus is
	// reported back after the run.
	mr := &MaskResult{}
	uses := make(map[shapecache.Key]uint64)
	aborted := false
	for fut := range order {
		pr, ok := <-fut
		if !ok {
			aborted = true
			continue // failure recorded via fail(); keep draining
		}
		mr.Placements++
		mr.Shots += int64(pr.Class.ShotCount)
		mr.Flashes += int64(pr.Class.ShotCount - len(pr.Class.LPairs))
		mr.FailOn += int64(pr.Class.FailOn)
		mr.FailOff += int64(pr.Class.FailOff)
		if !pr.Class.Feasible {
			mr.Infeasible++
		}
		if uses[pr.Key] == 0 {
			if pr.Class.CacheHit {
				mr.NodeCacheHits++
			}
		}
		uses[pr.Key]++
		// honor the documented abort contract: once a failure is
		// recorded, later placements still drain (to release workers)
		// but are no longer observed.
		if cfg.OnResult != nil && !aborted {
			if err := cfg.OnResult(pr); err != nil {
				fail(err)
				aborted = true
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	mr.Classes = len(uses)
	mr.ClusterRequests = int64(len(uses))
	mr.WriteTime = cfg.WriteModel.WriteTime(mr.Flashes)
	// report memoized multiplicities: each class's wire request already
	// credited one placement on the owning node, so only the collapsed
	// surplus (count − 1) is reported. Without this the stencil planner
	// would mine request counts and undervalue heavily repeated classes.
	extras := make(map[shapecache.Key]ClassUse)
	for key, n := range uses {
		if n > 1 {
			extras[key] = ClassUse{Poly: classPoly[key], Uses: n - 1}
		}
	}
	mr.ClassUsesCredited = c.ReportClassUses(ctx, extras)
	mr.Elapsed = time.Since(start)
	span.Set("placements", mr.Placements)
	span.Set("classes", mr.Classes)
	span.Set("class_uses_credited", mr.ClassUsesCredited)
	return mr, nil
}
