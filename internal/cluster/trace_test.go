package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maskfrac/internal/geom"
	"maskfrac/internal/shapecache"
	"maskfrac/internal/telemetry"
)

func attrValue(s *telemetry.Span, key string) (any, bool) {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// TestClusterTraceStitching is the cross-node waterfall: a traced
// SolveClass must yield one tree — cluster.class → cluster.attempt →
// the node's fracd.fracture (adopted from the wire) → fracd.shape →
// solver phases — every span sharing the caller's trace ID, with the
// remote root's parent pointing at the attempt span.
func TestClusterTraceStitching(t *testing.T) {
	c, _ := startCluster(t, 2, Config{})
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(75, 0), geom.Pt(75, 45), geom.Pt(0, 45)}
	can := shapecache.Canonicalize(poly)
	key := can.KeyWith([]byte("proto-eda"))

	ctx, root := telemetry.WithTrace(context.Background(), "test-solve")
	res, err := c.SolveClass(ctx, key, can.Poly)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	class := root.Find("cluster.class")
	if class == nil {
		t.Fatal("no cluster.class span")
	}
	att := class.Find("cluster.attempt")
	if att == nil {
		t.Fatal("no cluster.attempt span")
	}
	if kind, _ := attrValue(att, "kind"); kind != "primary" {
		t.Errorf("attempt kind = %v, want primary", kind)
	}
	node, _ := attrValue(att, "node")
	if node != res.Node {
		t.Errorf("attempt node = %v, winner = %s", node, res.Node)
	}
	// the request ID is derived from the trace so both sides grep alike
	rid, ok := attrValue(att, "request_id")
	if !ok {
		t.Fatal("attempt has no request_id attr")
	}
	wantPrefix := "t" + root.TraceID()[:16]
	if rid.(string) != wantPrefix {
		t.Errorf("request_id = %v, want %s", rid, wantPrefix)
	}

	remote := att.Find("fracd.fracture")
	if remote == nil {
		t.Fatal("remote fracd.fracture span not stitched in")
	}
	if remote.TraceID() != root.TraceID() {
		t.Errorf("remote span trace %q, want %q", remote.TraceID(), root.TraceID())
	}
	if remote.RemoteParentID() != att.ID() {
		t.Errorf("remote root parent %q, want attempt span %q", remote.RemoteParentID(), att.ID())
	}
	if remote.Find("fracd.shape") == nil {
		t.Error("remote tree has no fracd.shape span")
	}
	if remote.Find("solve") == nil {
		t.Error("remote tree has no solver phase span")
	}

	// the whole thing renders as one waterfall
	var sb strings.Builder
	root.WriteTree(&sb)
	for _, want := range []string{"cluster.class", "cluster.attempt", "fracd.fracture", "fracd.shape"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("waterfall missing %s:\n%s", want, sb.String())
		}
	}
}

// TestClusterTraceHedgeSiblings: a hedged solve shows both attempts as
// sibling spans, the hedge carrying its "-h" request-ID suffix.
func TestClusterTraceHedgeSiblings(t *testing.T) {
	c, nodes := startCluster(t, 2, Config{
		HedgeDelay: 30 * time.Millisecond,
		Fallbacks:  1,
	})
	poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(64, 0), geom.Pt(64, 48), geom.Pt(0, 48)}
	can := shapecache.Canonicalize(poly)
	key := can.KeyWith([]byte("proto-eda"))

	cands := c.ring.LookupN(key, 2)
	byID := map[string]*testNode{}
	for _, n := range nodes {
		byID[n.id] = n
	}
	byID[cands[0]].delay.Store(int64(2 * time.Second))

	ctx, root := telemetry.WithTrace(context.Background(), "test-hedge")
	if _, err := c.SolveClass(ctx, key, can.Poly); err != nil {
		t.Fatal(err)
	}
	root.End()

	class := root.Find("cluster.class")
	if class == nil {
		t.Fatal("no cluster.class span")
	}
	kinds := map[string]string{} // kind -> request_id
	for _, ch := range class.Children() {
		if ch.Name != "cluster.attempt" {
			continue
		}
		kind, _ := attrValue(ch, "kind")
		rid, _ := attrValue(ch, "request_id")
		kinds[fmt.Sprint(kind)] = fmt.Sprint(rid)
	}
	if len(kinds) != 2 {
		t.Fatalf("attempt kinds = %v, want primary + hedge siblings", kinds)
	}
	base := "t" + root.TraceID()[:16]
	if kinds["primary"] != base {
		t.Errorf("primary request_id = %q, want %q", kinds["primary"], base)
	}
	if kinds["hedge"] != base+"-h" {
		t.Errorf("hedge request_id = %q, want %q", kinds["hedge"], base+"-h")
	}
}

// TestClusterStatusView exercises the /clusterz aggregation: every node
// answers with stats, metrics-derived quantiles and its ring ownership
// share, and the HTTP handler serves both JSON and text.
func TestClusterStatusView(t *testing.T) {
	c, _ := startCluster(t, 3, Config{})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		w := float64(50 + 3*i)
		poly := geom.Polygon{geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, 33), geom.Pt(0, 33)}
		can := shapecache.Canonicalize(poly)
		if _, err := c.SolveClass(ctx, can.KeyWith([]byte("proto-eda")), can.Poly); err != nil {
			t.Fatal(err)
		}
	}

	cs := c.ClusterStatus(ctx)
	if len(cs.Nodes) != 3 {
		t.Fatalf("rows = %d, want 3", len(cs.Nodes))
	}
	var share float64
	var reqs uint64
	for _, n := range cs.Nodes {
		if n.Err != "" {
			t.Errorf("node %s poll failed: %s", n.ID, n.Err)
		}
		if n.OwnershipShare <= 0 || n.OwnershipShare >= 1 {
			t.Errorf("node %s ownership share %v", n.ID, n.OwnershipShare)
		}
		share += n.OwnershipShare
		reqs += n.Requests
		if n.Workers <= 0 || n.QueueCapacity <= 0 {
			t.Errorf("node %s config row: %+v", n.ID, n)
		}
		if n.Requests > 0 && (n.P99MS <= 0 || n.P99MS < n.P50MS) {
			t.Errorf("node %s quantiles p50=%v p99=%v", n.ID, n.P50MS, n.P99MS)
		}
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("ownership shares sum to %v, want 1", share)
	}
	if reqs < 6 {
		t.Errorf("cluster-wide requests = %d, want >= 6", reqs)
	}

	// HTTP handler: JSON
	h := StatusHandler(c)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /clusterz: %d", rec.Code)
	}
	var decoded ClusterStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("decode /clusterz: %v", err)
	}
	if len(decoded.Nodes) != 3 {
		t.Errorf("JSON rows = %d", len(decoded.Nodes))
	}
	// text
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/clusterz?format=text", nil))
	if !strings.Contains(rec.Body.String(), "node") || !strings.Contains(rec.Body.String(), "routing:") {
		t.Errorf("text view:\n%s", rec.Body.String())
	}
}
