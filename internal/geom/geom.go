// Package geom provides the planar geometry primitives used throughout the
// mask fracturing library: points, axis-parallel rectangles, polygons,
// polyline simplification and distance queries.
//
// All coordinates are in nanometers, stored as float64. Mask shapes are
// simple polygons (possibly non-rectilinear: ILT contours are curvilinear
// and approximated by many short segments). Shots are axis-parallel
// rectangles.
package geom

import "math"

// Point is a point in the plane, in nanometers.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Rect is an axis-parallel rectangle given by its bottom-left (X0, Y0)
// and top-right (X1, Y1) corners. A Rect is valid when X0 <= X1 and
// Y0 <= Y1. E-beam shots are Rects.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// RectFromCorners returns the Rect spanned by two arbitrary opposite
// corners (in any order).
func RectFromCorners(a, b Point) Rect {
	return Rect{
		X0: math.Min(a.X, b.X),
		Y0: math.Min(a.Y, b.Y),
		X1: math.Max(a.X, b.X),
		Y1: math.Max(a.Y, b.Y),
	}
}

// W returns the width of r.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the area of r, zero for invalid rectangles.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r has non-positive width or height.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Valid reports whether r has non-negative width and height (degenerate
// zero-size rectangles are valid but empty).
func (r Rect) Valid() bool { return r.X1 >= r.X0 && r.Y1 >= r.Y0 }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Intersect returns the intersection of r and s; the result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X0: math.Max(r.X0, s.X0),
		Y0: math.Max(r.Y0, s.Y0),
		X1: math.Min(r.X1, s.X1),
		Y1: math.Min(r.Y1, s.Y1),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: math.Min(r.X0, s.X0),
		Y0: math.Min(r.Y0, s.Y0),
		X1: math.Max(r.X1, s.X1),
		Y1: math.Max(r.Y1, s.Y1),
	}
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Inset returns r shrunk by d on every side (negative d grows the rect).
func (r Rect) Inset(d float64) Rect {
	return Rect{r.X0 + d, r.Y0 + d, r.X1 - d, r.Y1 - d}
}

// Dist returns the Euclidean distance from p to the closest point of r
// (zero when p is inside r).
func (r Rect) Dist(p Point) float64 {
	dx := math.Max(0, math.Max(r.X0-p.X, p.X-r.X1))
	dy := math.Max(0, math.Max(r.Y0-p.Y, p.Y-r.Y1))
	return math.Hypot(dx, dy)
}

// Corners returns the four corners of r in order bottom-left,
// bottom-right, top-right, top-left.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}
}

// RectDist returns the Euclidean distance between the closest points of
// rectangles r and s (zero when they touch or overlap).
func RectDist(r, s Rect) float64 {
	dx := math.Max(0, math.Max(s.X0-r.X1, r.X0-s.X1))
	dy := math.Max(0, math.Max(s.Y0-r.Y1, r.Y0-s.Y1))
	return math.Hypot(dx, dy)
}
