package geom

// SimplifyChain applies the Ramer–Douglas–Peucker algorithm to an open
// polyline, returning the subset of pts whose removal keeps every
// original vertex within tol of the simplified chain. The first and last
// points are always retained.
func SimplifyChain(pts []Point, tol float64) []Point {
	if len(pts) <= 2 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	rdpMark(pts, 0, len(pts)-1, tol, keep)
	out := make([]Point, 0, len(pts))
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// rdpMark marks, in keep, the vertices of pts[lo..hi] retained by RDP.
func rdpMark(pts []Point, lo, hi int, tol float64, keep []bool) {
	if hi <= lo+1 {
		return
	}
	maxD, maxI := -1.0, -1
	for i := lo + 1; i < hi; i++ {
		if d := PointSegDist(pts[i], pts[lo], pts[hi]); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD > tol {
		keep[maxI] = true
		rdpMark(pts, lo, maxI, tol, keep)
		rdpMark(pts, maxI, hi, tol, keep)
	}
}

// SimplifyPolygon applies Ramer–Douglas–Peucker to a closed polygon,
// as the paper does for mask target shape boundaries (§3, Fig 1). The
// polygon is split at its two mutually farthest "anchor" vertices (the
// bounding-box extremes), each chain is simplified independently, and
// the chains are rejoined. The result has at least 3 vertices.
func SimplifyPolygon(pg Polygon, tol float64) Polygon {
	n := len(pg)
	if n <= 4 {
		return pg.Clone()
	}
	// Anchor on the leftmost and rightmost vertices so the split
	// chains are well separated.
	iMin, iMax := 0, 0
	for i, p := range pg {
		if p.X < pg[iMin].X || (p.X == pg[iMin].X && p.Y < pg[iMin].Y) {
			iMin = i
		}
		if p.X > pg[iMax].X || (p.X == pg[iMax].X && p.Y > pg[iMax].Y) {
			iMax = i
		}
	}
	if iMin == iMax {
		return pg.Clone()
	}
	chainA := sliceCyclic(pg, iMin, iMax)
	chainB := sliceCyclic(pg, iMax, iMin)
	sa := SimplifyChain(chainA, tol)
	sb := SimplifyChain(chainB, tol)
	out := make(Polygon, 0, len(sa)+len(sb)-2)
	out = append(out, sa...)
	out = append(out, sb[1:len(sb)-1]...)
	if len(out) < 3 {
		return pg.Clone()
	}
	return out
}

// sliceCyclic returns vertices pg[i..j] walking forward cyclically,
// inclusive of both endpoints.
func sliceCyclic(pg Polygon, i, j int) []Point {
	n := len(pg)
	out := make([]Point, 0, n)
	for k := i; ; k = (k + 1) % n {
		out = append(out, pg[k])
		if k == j {
			break
		}
	}
	return out
}
