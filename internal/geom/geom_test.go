package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Errorf("W/H/Area = %v %v %v", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if !(Rect{1, 1, 1, 3}).Empty() {
		t.Error("zero-width rect not empty")
	}
	if (Rect{0, 0, -1, 1}).Valid() {
		t.Error("inverted rect reported valid")
	}
	if r.Center() != Pt(2, 1) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectFromCorners(t *testing.T) {
	r := RectFromCorners(Pt(4, 1), Pt(1, 3))
	want := Rect{1, 1, 4, 3}
	if r != want {
		t.Errorf("RectFromCorners = %v, want %v", r, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Pt(2, 1), true},
		{Pt(0, 0), true}, // boundary inclusive
		{Pt(4, 2), true}, // boundary inclusive
		{Pt(5, 1), false},
		{Pt(2, -0.1), false},
	} {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !r.ContainsRect(Rect{1, 0.5, 3, 1.5}) {
		t.Error("inner rect not contained")
	}
	if r.ContainsRect(Rect{1, 0.5, 5, 1.5}) {
		t.Error("overhanging rect contained")
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	got := a.Intersect(b)
	if got != (Rect{2, 2, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false")
	}
	if a.Overlaps(Rect{4, 0, 6, 4}) {
		t.Error("touching rects should not overlap (no interior area)")
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Errorf("Union = %v", u)
	}
	if e := (Rect{}).Union(a); e != a {
		t.Errorf("Union with empty = %v", e)
	}
}

func TestRectInsetDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.Inset(2); got != (Rect{2, 2, 8, 8}) {
		t.Errorf("Inset = %v", got)
	}
	if got := r.Dist(Pt(5, 5)); got != 0 {
		t.Errorf("Dist inside = %v", got)
	}
	if got := r.Dist(Pt(13, 14)); got != 5 {
		t.Errorf("Dist corner = %v", got)
	}
	if got := r.Dist(Pt(-3, 5)); got != 3 {
		t.Errorf("Dist side = %v", got)
	}
}

func TestRectDist(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	if d := RectDist(a, Rect{5, 0, 6, 2}); d != 3 {
		t.Errorf("RectDist horizontal = %v", d)
	}
	if d := RectDist(a, Rect{5, 6, 7, 8}); d != 5 {
		t.Errorf("RectDist diagonal = %v", d)
	}
	if d := RectDist(a, Rect{1, 1, 3, 3}); d != 0 {
		t.Errorf("RectDist overlap = %v", d)
	}
}

func TestRectCorners(t *testing.T) {
	c := (Rect{1, 2, 3, 4}).Corners()
	want := [4]Point{{1, 2}, {3, 2}, {3, 4}, {1, 4}}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
}

// unit square, counterclockwise
var ccwSquare = Polygon{{0, 0}, {4, 0}, {4, 4}, {0, 4}}

func TestPolygonArea(t *testing.T) {
	if a := ccwSquare.SignedArea(); a != 16 {
		t.Errorf("SignedArea ccw = %v", a)
	}
	cw := ccwSquare.EnsureCCW() // already ccw, clone
	if !cw.IsCCW() {
		t.Error("EnsureCCW broke orientation")
	}
	rev := Polygon{{0, 4}, {4, 4}, {4, 0}, {0, 0}}
	if rev.IsCCW() {
		t.Error("cw square reported ccw")
	}
	if a := rev.SignedArea(); a != -16 {
		t.Errorf("SignedArea cw = %v", a)
	}
	fixed := rev.EnsureCCW()
	if !fixed.IsCCW() || fixed.Area() != 16 {
		t.Error("EnsureCCW failed to flip")
	}
}

func TestPolygonPerimeter(t *testing.T) {
	if p := ccwSquare.Perimeter(); p != 16 {
		t.Errorf("Perimeter = %v", p)
	}
	// L-shape
	l := Polygon{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}
	if p := l.Perimeter(); p != 16 {
		t.Errorf("L perimeter = %v", p)
	}
	if a := l.Area(); a != 12 {
		t.Errorf("L area = %v", a)
	}
}

func TestPolygonContains(t *testing.T) {
	l := Polygon{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(3, 1), true},
		{Pt(1, 3), true},
		{Pt(3, 3), false}, // in the notch
		{Pt(5, 5), false},
		{Pt(-1, 1), false},
	} {
		if got := l.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPolygonBounds(t *testing.T) {
	l := Polygon{{1, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 5}, {1, 5}}
	if b := l.Bounds(); b != (Rect{1, 0, 4, 5}) {
		t.Errorf("Bounds = %v", b)
	}
	if b := (Polygon{}).Bounds(); !b.Empty() {
		t.Errorf("empty polygon bounds = %v", b)
	}
}

func TestPolygonRectilinear(t *testing.T) {
	if !ccwSquare.IsRectilinear() {
		t.Error("square not rectilinear")
	}
	tri := Polygon{{0, 0}, {4, 0}, {2, 3}}
	if tri.IsRectilinear() {
		t.Error("triangle rectilinear")
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := ccwSquare.Validate(); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
	if err := (Polygon{{0, 0}, {1, 1}}).Validate(); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	if err := (Polygon{{0, 0}, {0, 0}, {1, 1}}).Validate(); err == nil {
		t.Error("duplicate vertex accepted")
	}
	if err := (Polygon{{0, 0}, {1, 1}, {2, 2}}).Validate(); err == nil {
		t.Error("zero-area polygon accepted")
	}
}

func TestRemoveCollinear(t *testing.T) {
	pg := Polygon{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}}
	out := pg.RemoveCollinear(1e-9)
	if len(out) != 4 {
		t.Fatalf("RemoveCollinear kept %d vertices, want 4: %v", len(out), out)
	}
	if out.Area() != pg.Area() {
		t.Errorf("area changed: %v -> %v", pg.Area(), out.Area())
	}
}

func TestPolygonTranslateEdge(t *testing.T) {
	sq := ccwSquare.Translate(Pt(1, 2))
	if sq[0] != Pt(1, 2) || sq[2] != Pt(5, 6) {
		t.Errorf("Translate = %v", sq)
	}
	a, b := ccwSquare.Edge(3)
	if a != Pt(0, 4) || b != Pt(0, 0) {
		t.Errorf("Edge(3) = %v %v", a, b)
	}
}

func TestBoundaryDist(t *testing.T) {
	if d := ccwSquare.BoundaryDist(Pt(2, 2)); d != 2 {
		t.Errorf("BoundaryDist center = %v", d)
	}
	if d := ccwSquare.BoundaryDist(Pt(6, 2)); d != 2 {
		t.Errorf("BoundaryDist outside = %v", d)
	}
}

func TestPointSegDist(t *testing.T) {
	if d := PointSegDist(Pt(0, 1), Pt(-1, 0), Pt(1, 0)); d != 1 {
		t.Errorf("perpendicular = %v", d)
	}
	if d := PointSegDist(Pt(3, 4), Pt(0, 0), Pt(0, 0)); d != 5 {
		t.Errorf("degenerate segment = %v", d)
	}
	if d := PointSegDist(Pt(5, 0), Pt(-1, 0), Pt(1, 0)); d != 4 {
		t.Errorf("beyond endpoint = %v", d)
	}
}

func TestSegSegDist(t *testing.T) {
	// crossing segments
	if d := SegSegDist(Pt(0, 0), Pt(2, 2), Pt(0, 2), Pt(2, 0)); d != 0 {
		t.Errorf("crossing = %v", d)
	}
	// parallel
	if d := SegSegDist(Pt(0, 0), Pt(2, 0), Pt(0, 3), Pt(2, 3)); d != 3 {
		t.Errorf("parallel = %v", d)
	}
	// endpoint touching
	if d := SegSegDist(Pt(0, 0), Pt(1, 0), Pt(1, 0), Pt(2, 5)); d != 0 {
		t.Errorf("touching = %v", d)
	}
	// collinear overlap
	if d := SegSegDist(Pt(0, 0), Pt(3, 0), Pt(1, 0), Pt(5, 0)); d != 0 {
		t.Errorf("collinear overlap = %v", d)
	}
	// disjoint diagonal
	if d := SegSegDist(Pt(0, 0), Pt(1, 0), Pt(4, 4), Pt(5, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("diagonal = %v", d)
	}
}

func TestSimplifyChain(t *testing.T) {
	// nearly straight line with a 0.1 bump simplifies to endpoints
	pts := []Point{{0, 0}, {1, 0.1}, {2, 0}, {3, -0.05}, {4, 0}}
	out := SimplifyChain(pts, 0.5)
	if len(out) != 2 || out[0] != pts[0] || out[1] != pts[4] {
		t.Errorf("flat chain = %v", out)
	}
	// a real corner survives
	pts = []Point{{0, 0}, {2, 0}, {2, 2}}
	out = SimplifyChain(pts, 0.5)
	if len(out) != 3 {
		t.Errorf("corner dropped: %v", out)
	}
	// short inputs pass through
	out = SimplifyChain(pts[:2], 0.5)
	if len(out) != 2 {
		t.Errorf("2-point chain = %v", out)
	}
}

func TestSimplifyChainTolerance(t *testing.T) {
	// every original point must be within tol of the simplified chain
	pts := make([]Point, 0, 50)
	for i := 0; i < 50; i++ {
		x := float64(i)
		pts = append(pts, Pt(x, 3*math.Sin(x/5)))
	}
	tol := 0.75
	out := SimplifyChain(pts, tol)
	if len(out) >= len(pts) {
		t.Fatalf("no simplification: %d -> %d", len(pts), len(out))
	}
	for _, p := range pts {
		best := math.Inf(1)
		for i := 0; i+1 < len(out); i++ {
			if d := PointSegDist(p, out[i], out[i+1]); d < best {
				best = d
			}
		}
		if best > tol+1e-9 {
			t.Errorf("point %v is %v from simplified chain (tol %v)", p, best, tol)
		}
	}
}

func TestSimplifyPolygon(t *testing.T) {
	// octagon-ish shape with redundant near-collinear vertices
	pg := Polygon{
		{0, 0}, {2, 0.01}, {4, 0}, {6, 0.02}, {8, 0},
		{8, 4}, {6, 4.01}, {4, 4}, {2, 3.99}, {0, 4},
	}
	out := SimplifyPolygon(pg, 0.5)
	if len(out) >= len(pg) {
		t.Errorf("no simplification: %d -> %d", len(pg), len(out))
	}
	if len(out) < 3 {
		t.Fatalf("degenerate output: %v", out)
	}
	// area approximately preserved
	if math.Abs(out.Area()-pg.Area()) > 1.0 {
		t.Errorf("area changed too much: %v -> %v", pg.Area(), out.Area())
	}
	// small polygons pass through
	tri := Polygon{{0, 0}, {4, 0}, {2, 3}}
	if got := SimplifyPolygon(tri, 10); len(got) != 3 {
		t.Errorf("triangle simplified away: %v", got)
	}
}

func TestRectPropertyQuick(t *testing.T) {
	// Intersection is commutative and contained in both operands.
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		// widths/heights at least 1: Union deliberately ignores empty
		// rectangles, so the containment property only holds for
		// non-empty operands
		a := Rect{float64(ax), float64(ay), float64(ax) + float64(aw) + 1, float64(ay) + float64(ah) + 1}
		b := Rect{float64(bx), float64(by), float64(bx) + float64(bw) + 1, float64(by) + float64(bh) + 1}
		i1 := a.Intersect(b)
		i2 := b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if !i1.Empty() {
			if !a.ContainsRect(i1) || !b.ContainsRect(i1) {
				return false
			}
		}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonAreaQuick(t *testing.T) {
	// A rectangle polygon's area equals the Rect area, any orientation.
	f := func(x, y uint8, w, h uint8) bool {
		if w == 0 || h == 0 {
			return true
		}
		x0, y0 := float64(x), float64(y)
		x1, y1 := x0+float64(w), y0+float64(h)
		pg := Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
		rev := pg.EnsureCCW()
		return pg.Area() == float64(w)*float64(h) && rev.Area() == pg.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimplifyPreservesEndpointsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, v := range raw {
			pts[i] = Pt(float64(i), float64(v))
		}
		out := SimplifyChain(pts, 3)
		return len(out) >= 2 && out[0] == pts[0] && out[len(out)-1] == pts[len(pts)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
