package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple polygon given by its vertices in order, without a
// repeated closing vertex. Mask target shapes are Polygons; ILT shapes
// have many short, possibly diagonal edges, while rectilinear shapes have
// only axis-parallel edges.
type Polygon []Point

// Clone returns a deep copy of pg.
func (pg Polygon) Clone() Polygon {
	out := make(Polygon, len(pg))
	copy(out, pg)
	return out
}

// SignedArea returns the signed area of pg: positive for counterclockwise
// orientation, negative for clockwise.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		sum += p.Cross(q)
	}
	return sum / 2
}

// Area returns the absolute area of pg.
func (pg Polygon) Area() float64 { return math.Abs(pg.SignedArea()) }

// Perimeter returns the total boundary length of pg.
func (pg Polygon) Perimeter() float64 {
	if len(pg) < 2 {
		return 0
	}
	sum := 0.0
	for i, p := range pg {
		sum += p.Dist(pg[(i+1)%len(pg)])
	}
	return sum
}

// IsCCW reports whether pg is counterclockwise oriented.
func (pg Polygon) IsCCW() bool { return pg.SignedArea() > 0 }

// EnsureCCW returns pg oriented counterclockwise, reversing if needed.
// The receiver is not modified.
func (pg Polygon) EnsureCCW() Polygon {
	if pg.IsCCW() {
		return pg.Clone()
	}
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[len(pg)-1-i] = p
	}
	return out
}

// Bounds returns the bounding box of pg. It returns an empty Rect for a
// polygon with no vertices.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	r := Rect{pg[0].X, pg[0].Y, pg[0].X, pg[0].Y}
	for _, p := range pg[1:] {
		r.X0 = math.Min(r.X0, p.X)
		r.Y0 = math.Min(r.Y0, p.Y)
		r.X1 = math.Max(r.X1, p.X)
		r.Y1 = math.Max(r.Y1, p.Y)
	}
	return r
}

// Contains reports whether p is strictly inside pg using the even-odd
// (ray crossing) rule. Points exactly on the boundary may be classified
// either way; mask pixels never land exactly on shape boundaries after
// the half-pixel sampling offset, so this is adequate for rasterization.
func (pg Polygon) Contains(p Point) bool {
	in := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg[i], pg[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xint := (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y) + a.X
			if p.X < xint {
				in = !in
			}
		}
	}
	return in
}

// IsRectilinear reports whether every edge of pg is axis-parallel.
func (pg Polygon) IsRectilinear() bool {
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		if p.X != q.X && p.Y != q.Y {
			return false
		}
	}
	return true
}

// Validate checks pg for basic structural soundness: at least three
// vertices, no consecutive duplicate vertices and non-zero area.
func (pg Polygon) Validate() error {
	if len(pg) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need at least 3", len(pg))
	}
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		if p == q {
			return fmt.Errorf("geom: duplicate consecutive vertex %d at (%g, %g)", i, p.X, p.Y)
		}
	}
	if pg.Area() == 0 {
		return fmt.Errorf("geom: polygon has zero area")
	}
	return nil
}

// RemoveCollinear returns pg with vertices dropped when they are
// collinear (within tol of the line through their neighbours). The
// receiver is unmodified. Useful after contour extraction, which emits a
// vertex per pixel step.
func (pg Polygon) RemoveCollinear(tol float64) Polygon {
	if len(pg) < 4 {
		return pg.Clone()
	}
	out := make(Polygon, 0, len(pg))
	n := len(pg)
	for i := 0; i < n; i++ {
		prev := pg[(i+n-1)%n]
		cur := pg[i]
		next := pg[(i+1)%n]
		if PointSegDist(cur, prev, next) > tol {
			out = append(out, cur)
		}
	}
	if len(out) < 3 {
		return pg.Clone()
	}
	return out
}

// Translate returns pg shifted by d.
func (pg Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(pg))
	for i, p := range pg {
		out[i] = p.Add(d)
	}
	return out
}

// Edge returns the i-th edge of pg as its endpoint pair (pg[i],
// pg[(i+1) mod n]).
func (pg Polygon) Edge(i int) (Point, Point) {
	return pg[i], pg[(i+1)%len(pg)]
}

// BoundaryDist returns the distance from p to the closest point on the
// boundary of pg.
func (pg Polygon) BoundaryDist(p Point) float64 {
	best := math.Inf(1)
	for i := range pg {
		a, b := pg.Edge(i)
		if d := PointSegDist(p, a, b); d < best {
			best = d
		}
	}
	return best
}
