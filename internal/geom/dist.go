package geom

import "math"

// PointSegDist returns the distance from point p to the segment ab.
func PointSegDist(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	t = math.Max(0, math.Min(1, t))
	proj := a.Add(ab.Scale(t))
	return p.Dist(proj)
}

// SegSegDist returns the minimum distance between segments ab and cd
// (zero if they intersect).
func SegSegDist(a, b, c, d Point) float64 {
	if segIntersect(a, b, c, d) {
		return 0
	}
	return math.Min(
		math.Min(PointSegDist(a, c, d), PointSegDist(b, c, d)),
		math.Min(PointSegDist(c, a, b), PointSegDist(d, a, b)),
	)
}

// segIntersect reports whether segments ab and cd intersect, including
// endpoint touching and collinear overlap.
func segIntersect(a, b, c, d Point) bool {
	d1 := orient(c, d, a)
	d2 := orient(c, d, b)
	d3 := orient(a, b, c)
	d4 := orient(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSeg(c, d, a):
		return true
	case d2 == 0 && onSeg(c, d, b):
		return true
	case d3 == 0 && onSeg(a, b, c):
		return true
	case d4 == 0 && onSeg(a, b, d):
		return true
	}
	return false
}

// orient returns the signed double area of triangle abc: positive when c
// lies left of the directed line ab.
func orient(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSeg reports whether point p, known to be collinear with segment ab,
// lies within the segment's bounding box.
func onSeg(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}
