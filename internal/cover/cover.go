// Package cover defines the model-based mask fracturing problem (paper
// §2): the sampled target shape, the pixel classification into Pon /
// Poff / don't-care band Px, the dose constraints, and an incremental
// evaluator used by all fracturing heuristics to score candidate shot
// configurations.
package cover

import (
	"fmt"
	"math"

	"maskfrac/internal/ebeam"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Params are the fracturing parameters. The paper's experiments use
// Gamma = 2 nm, Sigma = 6.25 nm, Pitch Δp = 1 nm, Rho = 0.5 and a tool
// minimum shot size Lmin.
type Params struct {
	Sigma float64 // forward-scattering blur σ (α) in nm
	Gamma float64 // CD tolerance γ in nm
	Rho   float64 // dose threshold ρ (fraction of full dose)
	Pitch float64 // pixel size Δp in nm
	Lmin  float64 // minimum shot width/height in nm

	// Optional two-Gaussian proximity model: backscatter range β and
	// backscatter ratio η. Eta = 0 (the default and the paper's model)
	// selects the single forward Gaussian.
	Beta float64
	Eta  float64
}

// DefaultParams returns the parameter set used in the paper's
// experimental section (§5) with Lmin = 8 nm.
func DefaultParams() Params {
	return Params{Sigma: 6.25, Gamma: 2, Rho: 0.5, Pitch: 1, Lmin: 8}
}

// Validate checks that the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.Sigma <= 0:
		return fmt.Errorf("cover: sigma %g must be positive", p.Sigma)
	case p.Gamma < 0:
		return fmt.Errorf("cover: gamma %g must be non-negative", p.Gamma)
	case p.Rho <= 0 || p.Rho >= 1:
		return fmt.Errorf("cover: rho %g must be in (0,1)", p.Rho)
	case p.Pitch <= 0:
		return fmt.Errorf("cover: pitch %g must be positive", p.Pitch)
	case p.Lmin <= 0:
		return fmt.Errorf("cover: lmin %g must be positive", p.Lmin)
	case p.Eta < 0:
		return fmt.Errorf("cover: eta %g must be non-negative", p.Eta)
	case p.Eta > 0 && p.Beta <= 0:
		return fmt.Errorf("cover: beta %g must be positive when eta is set", p.Beta)
	}
	return nil
}

// model builds the proximity model the parameters describe.
func (p Params) model() *ebeam.Model {
	if p.Eta > 0 {
		return ebeam.NewDoubleGaussian(p.Sigma, p.Beta, p.Eta)
	}
	return ebeam.NewModel(p.Sigma)
}

// Class is the constraint class of a pixel.
type Class uint8

const (
	// Off pixels (Poff) lie outside the target, more than γ from its
	// boundary; they require Itot < ρ.
	Off Class = iota
	// On pixels (Pon) lie inside the target, more than γ from its
	// boundary; they require Itot ≥ ρ.
	On
	// Band pixels (Px) lie within γ of the boundary and carry no
	// constraint.
	Band
)

// Problem is a sampled fracturing instance for a target: one mask
// shape, or a group of shapes written together (a main feature plus its
// sub-resolution assist features).
type Problem struct {
	Target  geom.Polygon   // the primary mask shape (Targets[0])
	Targets []geom.Polygon // all shapes of the instance
	Params  Params
	Grid    raster.Grid  // sampling grid covering the targets plus 3σ margin
	Model   *ebeam.Model // proximity model
	Inside  *raster.Bitmap
	Class   []Class // per-pixel class, row-major over Grid

	nOn, nOff int
}

// NewProblem samples the target shape onto a grid with pitch
// params.Pitch, covering the shape's bounding box plus a 3σ+γ margin,
// and classifies every pixel into Pon, Poff or the band Px.
func NewProblem(target geom.Polygon, params Params) (*Problem, error) {
	return NewMultiProblem([]geom.Polygon{target}, params)
}

// NewMultiProblem samples a group of disjoint target shapes into one
// fracturing instance. The shapes share the dose budget: every interior
// pixel of any shape must reach ρ and every exterior pixel must stay
// below it, so assist features and their main feature are fractured
// together (as on a real mask, where SRAF satellites sit within the
// proximity range of the feature they assist).
func NewMultiProblem(targets []geom.Polygon, params Params) (*Problem, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("cover: no target shapes")
	}
	cloned := make([]geom.Polygon, len(targets))
	box := geom.Rect{}
	for i, t := range targets {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("cover: invalid target %d: %w", i, err)
		}
		cloned[i] = t.Clone()
		box = box.Union(t.Bounds())
	}
	model := params.model()
	margin := model.Support() + params.Gamma + 2*params.Pitch
	grid := raster.GridCovering(box, margin, params.Pitch)
	inside := raster.NewBitmap(grid)
	for _, t := range cloned {
		bm, err := raster.Rasterize(t, grid)
		if err != nil {
			return nil, err
		}
		for k, v := range bm.Bits {
			if v {
				inside.Bits[k] = true
			}
		}
	}
	p := &Problem{
		Target:  cloned[0],
		Targets: cloned,
		Params:  params,
		Grid:    grid,
		Model:   model,
		Inside:  inside,
		Class:   make([]Class, grid.Len()),
	}
	p.classify()
	return p, nil
}

// InteractionRadius returns the one-sided independence margin of the
// instance: the proximity kernel's truncation radius (3σ of the widest
// component) plus the CD tolerance γ. Two targets whose bounding boxes,
// each inflated by this radius, do not overlap are farther apart than
// the interaction range 2·(3σ+γ) and cannot affect each other's
// constrained pixels — the engine's region decomposition builds on
// this.
func (p *Problem) InteractionRadius() float64 {
	return p.Model.Support() + p.Params.Gamma
}

// Subproblem builds the fracturing instance of a subset of the
// problem's targets, exactly as NewMultiProblem would for those shapes
// alone — same grid placement, same pixel classes. Region solves on a
// subproblem therefore produce byte-identical shots to solving the
// subset on its own.
func (p *Problem) Subproblem(targets []int) (*Problem, error) {
	subset := make([]geom.Polygon, len(targets))
	for i, t := range targets {
		if t < 0 || t >= len(p.Targets) {
			return nil, fmt.Errorf("cover: subproblem target %d out of range", t)
		}
		subset[i] = p.Targets[t]
	}
	return NewMultiProblem(subset, p.Params)
}

// ContainsPoint reports whether pt lies inside any target shape.
func (p *Problem) ContainsPoint(pt geom.Point) bool {
	for _, t := range p.Targets {
		if t.Contains(pt) {
			return true
		}
	}
	return false
}

// TargetBounds returns the bounding box of all target shapes.
func (p *Problem) TargetBounds() geom.Rect {
	box := geom.Rect{}
	for _, t := range p.Targets {
		box = box.Union(t.Bounds())
	}
	return box
}

// classify assigns Pon/Poff/Px classes: pixels within Gamma of the
// target boundary form the don't-care band, the rest split by
// inside/outside.
func (p *Problem) classify() {
	g := p.Grid
	band := make([]bool, g.Len())
	gamma := p.Params.Gamma
	// mark pixels within gamma of any boundary edge (local boxes only)
	for _, target := range p.Targets {
		p.markBand(band, target, gamma)
	}
	for k := range p.Class {
		switch {
		case band[k]:
			p.Class[k] = Band
		case p.Inside.Bits[k]:
			p.Class[k] = On
			p.nOn++
		default:
			p.Class[k] = Off
			p.nOff++
		}
	}
}

// markBand flags pixels within gamma of the polygon's boundary.
func (p *Problem) markBand(band []bool, target geom.Polygon, gamma float64) {
	g := p.Grid
	for ei := range target {
		a, b := target.Edge(ei)
		box := geom.RectFromCorners(a, b).Inset(-(gamma + g.Pitch))
		i0, j0 := g.PixelOf(geom.Pt(box.X0, box.Y0))
		i1, j1 := g.PixelOf(geom.Pt(box.X1, box.Y1))
		i0, j0 = g.ClampX(i0), g.ClampY(j0)
		i1, j1 = g.ClampX(i1), g.ClampY(j1)
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				k := g.Index(i, j)
				if band[k] {
					continue
				}
				if geom.PointSegDist(g.Center(i, j), a, b) <= gamma {
					band[k] = true
				}
			}
		}
	}
}

// OnCount returns |Pon|.
func (p *Problem) OnCount() int { return p.nOn }

// OffCount returns |Poff| (within the sampled window).
func (p *Problem) OffCount() int { return p.nOff }

// MinSizeOK reports whether shot s satisfies the minimum shot size
// constraint (paper §2, condition 2), with a small numeric slack.
func (p *Problem) MinSizeOK(s geom.Rect) bool {
	const eps = 1e-9
	return s.W() >= p.Params.Lmin-eps && s.H() >= p.Params.Lmin-eps
}

// InteriorFraction returns the fraction of shot s's area that lies
// inside the target shape, estimated on the sampling grid. Used by the
// paper's 80% test-shot and 90% merge criteria.
func (p *Problem) InteriorFraction(s geom.Rect) float64 {
	g := p.Grid
	i0, j0 := g.PixelOf(geom.Pt(s.X0, s.Y0))
	i1, j1 := g.PixelOf(geom.Pt(s.X1-1e-9, s.Y1-1e-9))
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	total, in := 0, 0
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			c := g.Center(i, j)
			if !s.Contains(c) {
				continue
			}
			total++
			if p.Inside.Bits[g.Index(i, j)] {
				in++
			}
		}
	}
	if total == 0 {
		// shot smaller than a pixel: fall back to center point test
		if p.ContainsPoint(s.Center()) {
			return 1
		}
		return 0
	}
	return float64(in) / float64(total)
}

// Stats summarizes the constraint violations of a shot configuration.
type Stats struct {
	Cost    float64 // Σ |Itot − ρ| over failing pixels (paper Eq. 5)
	FailOn  int     // failing pixels in Pon (dose too low)
	FailOff int     // failing pixels in Poff (dose too high)
}

// Fail returns the total number of failing pixels.
func (s Stats) Fail() int { return s.FailOn + s.FailOff }

// Feasible reports whether no pixel fails.
func (s Stats) Feasible() bool { return s.Fail() == 0 }

// Evaluate computes the violation statistics of an arbitrary shot set
// from scratch.
func (p *Problem) Evaluate(shots []geom.Rect) Stats {
	dose := p.Model.DoseMap(p.Grid, shots)
	return p.statsOf(dose)
}

// statsOf scans a dose field against the pixel classes.
func (p *Problem) statsOf(dose *raster.Field) Stats {
	var st Stats
	rho := p.Params.Rho
	for k, c := range p.Class {
		v := dose.V[k]
		switch c {
		case On:
			if v < rho {
				st.FailOn++
				st.Cost += rho - v
			}
		case Off:
			if v >= rho {
				st.FailOff++
				st.Cost += v - rho
			}
		}
	}
	return st
}

// pixelCost returns the Eq. 5 contribution of pixel k at dose v.
func (p *Problem) pixelCost(k int, v float64) float64 {
	switch p.Class[k] {
	case On:
		if v < p.Params.Rho {
			return p.Params.Rho - v
		}
	case Off:
		if v >= p.Params.Rho {
			return v - p.Params.Rho
		}
	}
	return 0
}

// Eval tracks a shot configuration and its dose field incrementally, so
// heuristics can score local modifications without full re-simulation.
type Eval struct {
	P     *Problem
	Shots []geom.Rect
	Dose  *raster.Field
	// Evals counts constraint evaluations (Stats scans and DeltaCost
	// scorings) since construction — the solver effort measure reported
	// by refinement telemetry.
	Evals int
}

// NewEval returns an evaluator seeded with the given shots.
func NewEval(p *Problem, shots []geom.Rect) *Eval {
	e := &Eval{P: p, Dose: raster.NewField(p.Grid)}
	for _, s := range shots {
		e.Add(s)
	}
	return e
}

// Add appends shot s and accumulates its dose.
func (e *Eval) Add(s geom.Rect) {
	e.Shots = append(e.Shots, s)
	e.P.Model.AccumulateShot(e.Dose, s, 1)
}

// Remove deletes shot i (order not preserved) and subtracts its dose.
func (e *Eval) Remove(i int) {
	s := e.Shots[i]
	e.P.Model.AccumulateShot(e.Dose, s, -1)
	last := len(e.Shots) - 1
	e.Shots[i] = e.Shots[last]
	e.Shots = e.Shots[:last]
}

// SetShot replaces shot i with s, updating the dose field.
func (e *Eval) SetShot(i int, s geom.Rect) {
	e.P.Model.AccumulateShot(e.Dose, e.Shots[i], -1)
	e.Shots[i] = s
	e.P.Model.AccumulateShot(e.Dose, s, 1)
}

// Stats scans the current dose field and returns violation statistics.
func (e *Eval) Stats() Stats {
	e.Evals++
	return e.P.statsOf(e.Dose)
}

// SnapshotShots returns a copy of the current shot list.
func (e *Eval) SnapshotShots() []geom.Rect {
	out := make([]geom.Rect, len(e.Shots))
	copy(out, e.Shots)
	return out
}

// DeltaCost returns the change in Eq. 5 cost if shot i were replaced by
// repl, without modifying the evaluator. The computation is local: only
// pixels whose dose changes (the union of the strips around moved edges)
// are visited, which makes candidate scoring during shot refinement
// cheap (paper §4.1).
func (e *Eval) DeltaCost(i int, repl geom.Rect) float64 {
	old := e.Shots[i]
	if old == repl {
		return 0
	}
	e.Evals++
	p := e.P
	g := p.Grid
	sup := p.Model.Support()

	// x-interval and y-interval where the separable profiles differ
	xLo, xHi, xChanged := changedInterval(old.X0, old.X1, repl.X0, repl.X1, sup)
	yLo, yHi, yChanged := changedInterval(old.Y0, old.Y1, repl.Y0, repl.Y1, sup)

	// overall support box (union of both shots' support)
	ubox := old.Union(repl).Inset(-sup)
	ui0, uj0 := g.PixelOf(geom.Pt(ubox.X0, ubox.Y0))
	ui1, uj1 := g.PixelOf(geom.Pt(ubox.X1, ubox.Y1))
	ui0, uj0 = g.ClampX(ui0), g.ClampY(uj0)
	ui1, uj1 = g.ClampX(ui1), g.ClampY(uj1)

	delta := 0.0
	model := p.Model
	nc := model.Components()
	eyOld := make([]float64, nc)
	eyNew := make([]float64, nc)
	scan := func(i0, j0, i1, j1 int) {
		if i1 < i0 || j1 < j0 {
			return
		}
		for j := j0; j <= j1; j++ {
			y := g.Y0 + (float64(j)+0.5)*g.Pitch
			for c := 0; c < nc; c++ {
				eyOld[c] = model.EdgeComponent(c, y, old.Y0, old.Y1)
				eyNew[c] = model.EdgeComponent(c, y, repl.Y0, repl.Y1)
			}
			base := j * g.W
			for i := i0; i <= i1; i++ {
				k := base + i
				if p.Class[k] == Band {
					continue
				}
				x := g.X0 + (float64(i)+0.5)*g.Pitch
				dI := 0.0
				for c := 0; c < nc; c++ {
					dI += model.Weight(c) * (model.EdgeComponent(c, x, repl.X0, repl.X1)*eyNew[c] -
						model.EdgeComponent(c, x, old.X0, old.X1)*eyOld[c])
				}
				if dI == 0 {
					continue
				}
				v := e.Dose.V[k]
				delta += p.pixelCost(k, v+dI) - p.pixelCost(k, v)
			}
		}
	}
	if xChanged && yChanged {
		// general move: scan the whole union support box
		scan(ui0, uj0, ui1, uj1)
		return delta
	}
	if xChanged {
		// vertical strip only
		i0, _ := g.PixelOf(geom.Pt(xLo, 0))
		i1, _ := g.PixelOf(geom.Pt(xHi, 0))
		scan(max(g.ClampX(i0), ui0), uj0, min(g.ClampX(i1), ui1), uj1)
		return delta
	}
	if yChanged {
		_, j0 := g.PixelOf(geom.Pt(0, yLo))
		_, j1 := g.PixelOf(geom.Pt(0, yHi))
		scan(ui0, max(g.ClampY(j0), uj0), ui1, min(g.ClampY(j1), uj1))
		return delta
	}
	return 0
}

// changedInterval returns the coordinate interval over which the 1D
// edge profile of [a0,a1] differs from that of [b0,b1], padded by the
// kernel support.
func changedInterval(a0, a1, b0, b1, sup float64) (lo, hi float64, changed bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	if a0 != b0 {
		lo = math.Min(a0, b0) - sup
		hi = math.Max(a0, b0) + sup
	}
	if a1 != b1 {
		lo = math.Min(lo, math.Min(a1, b1)-sup)
		hi = math.Max(hi, math.Max(a1, b1)+sup)
	}
	return lo, hi, hi >= lo
}

// FailingBitmaps returns bitmaps of the failing Pon and Poff pixels of
// the current configuration, used by the shot addition/removal steps
// (paper §4.3–4.4).
func (e *Eval) FailingBitmaps() (failOn, failOff *raster.Bitmap) {
	p := e.P
	failOn = raster.NewBitmap(p.Grid)
	failOff = raster.NewBitmap(p.Grid)
	rho := p.Params.Rho
	for k, c := range p.Class {
		v := e.Dose.V[k]
		switch c {
		case On:
			if v < rho {
				failOn.Bits[k] = true
			}
		case Off:
			if v >= rho {
				failOff.Bits[k] = true
			}
		}
	}
	return failOn, failOff
}
