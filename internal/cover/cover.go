// Package cover defines the model-based mask fracturing problem (paper
// §2): the sampled target shape, the pixel classification into Pon /
// Poff / don't-care band Px, the dose constraints, and an incremental
// evaluator used by all fracturing heuristics to score candidate shot
// configurations.
package cover

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"maskfrac/internal/ebeam"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Params are the fracturing parameters. The paper's experiments use
// Gamma = 2 nm, Sigma = 6.25 nm, Pitch Δp = 1 nm, Rho = 0.5 and a tool
// minimum shot size Lmin.
type Params struct {
	Sigma float64 // forward-scattering blur σ (α) in nm
	Gamma float64 // CD tolerance γ in nm
	Rho   float64 // dose threshold ρ (fraction of full dose)
	Pitch float64 // pixel size Δp in nm
	Lmin  float64 // minimum shot width/height in nm

	// Optional two-Gaussian proximity model: backscatter range β and
	// backscatter ratio η. Eta = 0 (the default and the paper's model)
	// selects the single forward Gaussian.
	Beta float64
	Eta  float64
}

// DefaultParams returns the parameter set used in the paper's
// experimental section (§5) with Lmin = 8 nm.
func DefaultParams() Params {
	return Params{Sigma: 6.25, Gamma: 2, Rho: 0.5, Pitch: 1, Lmin: 8}
}

// Validate checks that the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case p.Sigma <= 0:
		return fmt.Errorf("cover: sigma %g must be positive", p.Sigma)
	case p.Gamma < 0:
		return fmt.Errorf("cover: gamma %g must be non-negative", p.Gamma)
	case p.Rho <= 0 || p.Rho >= 1:
		return fmt.Errorf("cover: rho %g must be in (0,1)", p.Rho)
	case p.Pitch <= 0:
		return fmt.Errorf("cover: pitch %g must be positive", p.Pitch)
	case p.Lmin <= 0:
		return fmt.Errorf("cover: lmin %g must be positive", p.Lmin)
	case p.Eta < 0:
		return fmt.Errorf("cover: eta %g must be non-negative", p.Eta)
	case p.Eta > 0 && p.Beta <= 0:
		return fmt.Errorf("cover: beta %g must be positive when eta is set", p.Beta)
	}
	return nil
}

// model builds the proximity model the parameters describe.
func (p Params) model() *ebeam.Model {
	if p.Eta > 0 {
		return ebeam.NewDoubleGaussian(p.Sigma, p.Beta, p.Eta)
	}
	return ebeam.NewModel(p.Sigma)
}

// Class is the constraint class of a pixel.
type Class uint8

const (
	// Off pixels (Poff) lie outside the target, more than γ from its
	// boundary; they require Itot < ρ.
	Off Class = iota
	// On pixels (Pon) lie inside the target, more than γ from its
	// boundary; they require Itot ≥ ρ.
	On
	// Band pixels (Px) lie within γ of the boundary and carry no
	// constraint.
	Band
)

// Problem is a sampled fracturing instance for a target: one mask
// shape, or a group of shapes written together (a main feature plus its
// sub-resolution assist features).
type Problem struct {
	Target  geom.Polygon   // the primary mask shape (Targets[0])
	Targets []geom.Polygon // all shapes of the instance
	Params  Params
	Grid    raster.Grid  // sampling grid covering the targets plus 3σ margin
	Model   *ebeam.Model // proximity model
	Inside  *raster.Bitmap
	Class   []Class // per-pixel class, row-major over Grid

	nOn, nOff int

	// arena recycles evaluator buffers across the NewEval/Close churn
	// of this problem's solve; acquired lazily, returned by Recycle.
	arena atomic.Pointer[Arena]
}

// Arena returns the problem's buffer arena, drawing one from the
// process-wide pool on first use (or after Recycle).
func (p *Problem) Arena() *Arena {
	if a := p.arena.Load(); a != nil {
		return a
	}
	a := NewArena()
	if !p.arena.CompareAndSwap(nil, a) {
		a.recycle()
		return p.arena.Load()
	}
	return a
}

// Recycle detaches the problem's arena and returns it (with its pooled
// buffers) to the process-wide pool, so the next solve's evaluators
// reuse the memory. Call it when no evaluator of this problem is live;
// the engine recycles each region subproblem after its region solve.
// The problem itself stays usable — a later NewEval simply draws a
// fresh arena.
func (p *Problem) Recycle() {
	if a := p.arena.Swap(nil); a != nil {
		a.recycle()
	}
}

// NewProblem samples the target shape onto a grid with pitch
// params.Pitch, covering the shape's bounding box plus a 3σ+γ margin,
// and classifies every pixel into Pon, Poff or the band Px.
func NewProblem(target geom.Polygon, params Params) (*Problem, error) {
	return NewMultiProblem([]geom.Polygon{target}, params)
}

// NewMultiProblem samples a group of disjoint target shapes into one
// fracturing instance. The shapes share the dose budget: every interior
// pixel of any shape must reach ρ and every exterior pixel must stay
// below it, so assist features and their main feature are fractured
// together (as on a real mask, where SRAF satellites sit within the
// proximity range of the feature they assist).
func NewMultiProblem(targets []geom.Polygon, params Params) (*Problem, error) {
	return buildProblem(targets, params, nil)
}

// buildProblem is the shared constructor; model, when non-nil, is an
// already-built proximity model for the same params (Subproblem passes
// the parent's so region instances share the read-only LUT tables
// instead of rebuilding them per region).
func buildProblem(targets []geom.Polygon, params Params, model *ebeam.Model) (*Problem, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("cover: no target shapes")
	}
	cloned := make([]geom.Polygon, len(targets))
	box := geom.Rect{}
	for i, t := range targets {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("cover: invalid target %d: %w", i, err)
		}
		cloned[i] = t.Clone()
		box = box.Union(t.Bounds())
	}
	if model == nil {
		model = params.model()
	}
	margin := model.Support() + params.Gamma + 2*params.Pitch
	grid := raster.GridCovering(box, margin, params.Pitch)
	inside := raster.NewBitmap(grid)
	for _, t := range cloned {
		bm, err := raster.Rasterize(t, grid)
		if err != nil {
			return nil, err
		}
		for k, v := range bm.Bits {
			if v {
				inside.Bits[k] = true
			}
		}
	}
	p := &Problem{
		Target:  cloned[0],
		Targets: cloned,
		Params:  params,
		Grid:    grid,
		Model:   model,
		Inside:  inside,
		Class:   make([]Class, grid.Len()),
	}
	p.classify()
	return p, nil
}

// InteractionRadius returns the one-sided independence margin of the
// instance: the proximity kernel's truncation radius (3σ of the widest
// component) plus the CD tolerance γ. Two targets whose bounding boxes,
// each inflated by this radius, do not overlap are farther apart than
// the interaction range 2·(3σ+γ) and cannot affect each other's
// constrained pixels — the engine's region decomposition builds on
// this.
func (p *Problem) InteractionRadius() float64 {
	return p.Model.Support() + p.Params.Gamma
}

// Subproblem builds the fracturing instance of a subset of the
// problem's targets, exactly as NewMultiProblem would for those shapes
// alone — same grid placement, same pixel classes. Region solves on a
// subproblem therefore produce byte-identical shots to solving the
// subset on its own.
//
// The subproblem shares the parent's read-only proximity model (the
// LUT tables are immutable after construction) but nothing mutable:
// each subproblem draws its own buffer arena, so concurrent region
// solves never contend.
func (p *Problem) Subproblem(targets []int) (*Problem, error) {
	subset := make([]geom.Polygon, len(targets))
	for i, t := range targets {
		if t < 0 || t >= len(p.Targets) {
			return nil, fmt.Errorf("cover: subproblem target %d out of range", t)
		}
		subset[i] = p.Targets[t]
	}
	return buildProblem(subset, p.Params, p.Model)
}

// ContainsPoint reports whether pt lies inside any target shape.
func (p *Problem) ContainsPoint(pt geom.Point) bool {
	for _, t := range p.Targets {
		if t.Contains(pt) {
			return true
		}
	}
	return false
}

// TargetBounds returns the bounding box of all target shapes.
func (p *Problem) TargetBounds() geom.Rect {
	box := geom.Rect{}
	for _, t := range p.Targets {
		box = box.Union(t.Bounds())
	}
	return box
}

// classify assigns Pon/Poff/Px classes: pixels within Gamma of the
// target boundary form the don't-care band, the rest split by
// inside/outside.
func (p *Problem) classify() {
	g := p.Grid
	band := make([]bool, g.Len())
	gamma := p.Params.Gamma
	// mark pixels within gamma of any boundary edge (local boxes only)
	for _, target := range p.Targets {
		p.markBand(band, target, gamma)
	}
	for k := range p.Class {
		switch {
		case band[k]:
			p.Class[k] = Band
		case p.Inside.Bits[k]:
			p.Class[k] = On
			p.nOn++
		default:
			p.Class[k] = Off
			p.nOff++
		}
	}
}

// markBand flags pixels within gamma of the polygon's boundary.
func (p *Problem) markBand(band []bool, target geom.Polygon, gamma float64) {
	g := p.Grid
	for ei := range target {
		a, b := target.Edge(ei)
		box := geom.RectFromCorners(a, b).Inset(-(gamma + g.Pitch))
		i0, j0 := g.PixelOf(geom.Pt(box.X0, box.Y0))
		i1, j1 := g.PixelOf(geom.Pt(box.X1, box.Y1))
		i0, j0 = g.ClampX(i0), g.ClampY(j0)
		i1, j1 = g.ClampX(i1), g.ClampY(j1)
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				k := g.Index(i, j)
				if band[k] {
					continue
				}
				if geom.PointSegDist(g.Center(i, j), a, b) <= gamma {
					band[k] = true
				}
			}
		}
	}
}

// OnCount returns |Pon|.
func (p *Problem) OnCount() int { return p.nOn }

// OffCount returns |Poff| (within the sampled window).
func (p *Problem) OffCount() int { return p.nOff }

// MinSizeOK reports whether shot s satisfies the minimum shot size
// constraint (paper §2, condition 2), with a small numeric slack.
func (p *Problem) MinSizeOK(s geom.Rect) bool {
	const eps = 1e-9
	return s.W() >= p.Params.Lmin-eps && s.H() >= p.Params.Lmin-eps
}

// InteriorFraction returns the fraction of shot s's area that lies
// inside the target shape, estimated on the sampling grid. Used by the
// paper's 80% test-shot and 90% merge criteria.
func (p *Problem) InteriorFraction(s geom.Rect) float64 {
	g := p.Grid
	i0, j0 := g.PixelOf(geom.Pt(s.X0, s.Y0))
	i1, j1 := g.PixelOf(geom.Pt(s.X1-1e-9, s.Y1-1e-9))
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	total, in := 0, 0
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			c := g.Center(i, j)
			if !s.Contains(c) {
				continue
			}
			total++
			if p.Inside.Bits[g.Index(i, j)] {
				in++
			}
		}
	}
	if total == 0 {
		// shot smaller than a pixel: fall back to center point test
		if p.ContainsPoint(s.Center()) {
			return 1
		}
		return 0
	}
	return float64(in) / float64(total)
}

// Stats summarizes the constraint violations of a shot configuration.
type Stats struct {
	Cost    float64 // Σ |Itot − ρ| over failing pixels (paper Eq. 5)
	FailOn  int     // failing pixels in Pon (dose too low)
	FailOff int     // failing pixels in Poff (dose too high)
}

// Fail returns the total number of failing pixels.
func (s Stats) Fail() int { return s.FailOn + s.FailOff }

// Feasible reports whether no pixel fails.
func (s Stats) Feasible() bool { return s.Fail() == 0 }

// Evaluate computes the violation statistics of an arbitrary shot set
// from scratch. The dose field and accumulation scratch come from the
// problem's arena, so repeated from-scratch evaluations (quality
// reports, cross-checks) allocate nothing at steady state.
func (p *Problem) Evaluate(shots []geom.Rect) Stats {
	a := p.Arena()
	dose := raster.Field{Grid: p.Grid, V: a.getF64(p.Grid.Len())}
	scratch := a.getF32(0)
	for _, s := range shots {
		scratch = p.Model.AccumulateShotBuf(&dose, s, 1, scratch)
	}
	st := p.statsOf(&dose)
	a.putF32(scratch)
	a.putF64(dose.V)
	return st
}

// statsOf scans a dose field against the pixel classes.
func (p *Problem) statsOf(dose *raster.Field) Stats {
	var st Stats
	rho := p.Params.Rho
	for k, c := range p.Class {
		v := dose.V[k]
		switch c {
		case On:
			if v < rho {
				st.FailOn++
				st.Cost += rho - v
			}
		case Off:
			if v >= rho {
				st.FailOff++
				st.Cost += v - rho
			}
		}
	}
	return st
}

// pixelCost returns the Eq. 5 contribution of pixel k at dose v.
func (p *Problem) pixelCost(k int, v float64) float64 {
	switch p.Class[k] {
	case On:
		if v < p.Params.Rho {
			return p.Params.Rho - v
		}
	case Off:
		if v >= p.Params.Rho {
			return v - p.Params.Rho
		}
	}
	return 0
}

// Process-wide evaluator effort counters, aggregated across every Eval
// in the process; exported to /metrics by the fracturing service.
var (
	evalMutationsTotal     atomic.Int64
	evalPixelsMutatedTotal atomic.Int64
	evalPixelsScoredTotal  atomic.Int64
	mutationObserver       atomic.Value // holds a mutObs
)

// mutObs wraps the observer callback so atomic.Value can store a nil fn.
type mutObs struct{ fn func(pixels int) }

// EvalEffort is a snapshot of the process-wide evaluator effort
// counters: how many mutations all evaluators have committed and how
// many pixels their incremental scans visited while committing
// (PixelsMutated) or scoring candidates via DeltaCost (PixelsScored).
type EvalEffort struct {
	Mutations     int64
	PixelsMutated int64
	PixelsScored  int64
}

// EvalCounters returns the current process-wide evaluator effort totals.
func EvalCounters() EvalEffort {
	return EvalEffort{
		Mutations:     evalMutationsTotal.Load(),
		PixelsMutated: evalPixelsMutatedTotal.Load(),
		PixelsScored:  evalPixelsScoredTotal.Load(),
	}
}

// SetMutationObserver installs fn to be called after every committed
// evaluator mutation, process-wide, with the number of pixels the
// commit scanned. The service layer uses it to feed a pixels-per-
// mutation histogram; fn must be safe for concurrent use (region
// solvers mutate evaluators from many goroutines) and cheap — it runs
// on the mutation hot path. A nil fn removes the observer.
func SetMutationObserver(fn func(pixels int)) {
	mutationObserver.Store(mutObs{fn})
}

// evalCheckEnv is the process default for the evaluator's cross-check
// mode: setting MASKFRAC_EVAL_CHECK to a non-empty value makes every
// new evaluator assert, after each mutation, that its maintained state
// matches both a scan of its own dose field and Problem.Evaluate from
// scratch. Meant for debugging — it turns every O(support) mutation
// back into O(grid + shots).
var evalCheckEnv = os.Getenv("MASKFRAC_EVAL_CHECK") != ""

// Eval tracks a shot configuration, its dose field and its violation
// state incrementally, so heuristics can score and commit local
// modifications without full re-simulation. The maintained invariant
// after every mutation is
//
//	stats, failOn, failOff  ==  statsOf(Dose) and its failing-pixel sets
//
// with Cost equal up to float rounding (the running sum accumulates
// retire/restore pairs in mutation order; it is re-anchored to exactly
// zero whenever no pixel fails, and RecomputeStats re-anchors it on
// demand). FailOn/FailOff counts and the bitmaps are exact.
//
// Shots may be merged pairwise into L-shots (Pair/Unpair, see
// lshot.go): a paired shot keeps its slot in Shots but the pair shares
// one dose — the overlap term is subtracted so the pair delivers the
// dose of a single L-aperture flash over the union, and it prices as
// one flash. Every mutator below stays incremental on paired shots.
//
// An Eval is not safe for concurrent use.
type Eval struct {
	P     *Problem
	Shots []geom.Rect
	Dose  *raster.Field

	stats   Stats
	failOn  *raster.Bitmap
	failOff *raster.Bitmap

	// partner[i] is the index of the shot L-paired with shot i, −1 when
	// shot i is an unpaired rectangle. Symmetric: partner[partner[i]]
	// == i for every paired i. Maintained by every structural mutator.
	partner []int

	// Evals counts constraint evaluations (Stats queries and DeltaCost
	// scorings) since construction — the solver effort measure reported
	// by refinement telemetry. Since Stats became O(1), the pixel
	// counters below are the truthful cost measure.
	Evals int
	// Mutations counts committed configuration changes (Add, Remove,
	// SetShot, ApplyDelta) since construction.
	Mutations int
	// PixelsMutated counts pixels visited committing mutations;
	// PixelsScored counts pixels visited scoring DeltaCost candidates.
	PixelsMutated int64
	PixelsScored  int64

	check  bool      // cross-check mode, see SetCrossCheck
	tab    edgeTabs  // moveScan scratch: per-component 1D edge tables
	buf    []float32 // backing storage for tab
	accBuf []float32 // AccumulateShotBuf scratch, reused across mutations
	arena  *Arena    // owner of the buffers above; receives them on Close
}

// edgeTabs holds the per-component 1D edge-profile tables of one
// moveScan, sampled over the union support box via the float32 strip
// kernels. The model has at most two Gaussian components.
type edgeTabs struct {
	exOld, exNew [2][]float32
	eyOld, eyNew [2][]float32
}

// NewEval returns an evaluator seeded with the given shots. The shot
// list is copied; building the initial dose field and violation state
// costs O(grid + Σ shot support boxes). The evaluator's buffers come
// from the problem's arena — call Close when done with the evaluator
// to return them for reuse.
func NewEval(p *Problem, shots []geom.Rect) *Eval {
	a := p.Arena()
	n := p.Grid.Len()
	e := &Eval{
		P:       p,
		Dose:    &raster.Field{Grid: p.Grid, V: a.getF64(n)},
		failOn:  &raster.Bitmap{Grid: p.Grid, Bits: a.getBits(n)},
		failOff: &raster.Bitmap{Grid: p.Grid, Bits: a.getBits(n)},
		check:   evalCheckEnv,
		arena:   a,
	}
	e.Reset(shots)
	return e
}

// Close returns the evaluator's buffers (dose field, failing bitmaps,
// edge tables, accumulation scratch) to the problem's arena and nils
// the fields, so a use-after-close panics instead of corrupting a
// successor evaluator's state. Close is idempotent; the shot list
// stays readable. Callers that keep the dose field (via e.Dose) must
// not Close until they are done with it.
func (e *Eval) Close() {
	if e.Dose == nil {
		return
	}
	if a := e.arena; a != nil {
		a.putF64(e.Dose.V)
		a.putBits(e.failOn.Bits)
		a.putBits(e.failOff.Bits)
		a.putF32(e.buf)
		a.putF32(e.accBuf)
	}
	e.Dose, e.failOn, e.failOff = nil, nil, nil
	e.buf, e.accBuf = nil, nil
	e.tab = edgeTabs{}
	e.arena = nil
}

// SetCrossCheck toggles the debug cross-check mode for this evaluator:
// when on, every mutation re-derives the violation state from the dose
// field and from Problem.Evaluate from scratch and panics on any
// mismatch with the maintained state. The MASKFRAC_EVAL_CHECK
// environment variable sets the process-wide default.
func (e *Eval) SetCrossCheck(on bool) { e.check = on }

// Reset replaces the entire configuration with the given shots and
// rebuilds dose and violation state from scratch: O(grid + Σ support
// boxes). Use it to restore a snapshot; single-shot changes should go
// through the incremental mutators instead. Reset clears all L-shot
// pairing — use ResetPaired to restore a paired snapshot.
func (e *Eval) Reset(shots []geom.Rect) {
	clear(e.Dose.V)
	e.Shots = append(e.Shots[:0], shots...)
	e.resetPartners(len(e.Shots))
	for _, s := range e.Shots {
		e.accBuf = e.P.Model.AccumulateShotBuf(e.Dose, s, 1, e.accBuf)
	}
	e.rebuildState()
	if e.check {
		e.crossCheck("Reset")
	}
}

// rebuildState derives stats and the failing bitmaps from the current
// dose field with one full-grid scan, re-anchoring the running cost.
func (e *Eval) rebuildState() {
	p := e.P
	rho := p.Params.Rho
	var st Stats
	for k, c := range p.Class {
		v := e.Dose.V[k]
		fOn, fOff := false, false
		switch c {
		case On:
			if v < rho {
				fOn = true
				st.FailOn++
				st.Cost += rho - v
			}
		case Off:
			if v >= rho {
				fOff = true
				st.FailOff++
				st.Cost += v - rho
			}
		}
		e.failOn.Bits[k] = fOn
		e.failOff.Bits[k] = fOff
	}
	e.stats = st
}

// RecomputeStats rebuilds the maintained violation state with a full
// O(grid) scan of the current dose field and returns it — the fallback
// the incremental bookkeeping replaces. It re-anchors the running cost
// (clearing accumulated float rounding); it exists for debugging,
// cross-checks and benchmark baselines. Solvers should call Stats.
func (e *Eval) RecomputeStats() Stats {
	e.rebuildState()
	return e.stats
}

// Add appends shot s, accumulates its dose and folds the pixels of its
// support box into the maintained violation state: O(support box).
func (e *Eval) Add(s geom.Rect) {
	e.Shots = append(e.Shots, s)
	e.partner = append(e.partner, -1)
	e.applyShot(s, 1)
	if e.check {
		e.crossCheck("Add")
	}
}

// Remove deletes shot i and subtracts its dose: O(support box).
//
// Index-stability contract: Remove swap-deletes. The last shot moves
// into slot i (shot order is NOT preserved), every other index is
// unchanged, and the list shrinks by one. Callers that hold shot
// indices across a removal must account for the swap: indices other
// than i and len-1 remain valid, the index len-1 becomes invalid, and
// the shot previously at len-1 is now at i. Removing in descending
// index order, or re-deriving indices after each removal, sidesteps the
// issue. UndoRemove is the exact inverse of the swap-delete, restoring
// the original order — but not L-shot pairing: removing a paired shot
// first splits its pair (restoring the overlap dose), and UndoRemove
// brings both shots back as independent rectangles.
func (e *Eval) Remove(i int) {
	if e.partner[i] >= 0 {
		e.Unpair(i)
	}
	s := e.Shots[i]
	last := len(e.Shots) - 1
	e.Shots[i] = e.Shots[last]
	e.Shots = e.Shots[:last]
	// swap-delete the partner slot too, redirecting the moved shot's
	// partner (never i itself: i was just unpaired)
	e.partner[i] = e.partner[last]
	e.partner = e.partner[:last]
	if i < last {
		if p := e.partner[i]; p >= 0 {
			e.partner[p] = i
		}
	}
	e.applyShot(s, -1)
	if e.check {
		e.crossCheck("Remove")
	}
}

// UndoRemove reverts an immediately preceding Remove(i) that removed
// shot s, restoring the exact shot order the swap-delete disturbed:
// the displaced last shot returns to the tail and s returns to slot i.
// Cleanup loops use it to speculatively remove a shot, inspect the
// damage, and back out.
func (e *Eval) UndoRemove(i int, s geom.Rect) {
	if i < len(e.Shots) {
		displaced := e.Shots[i]
		e.SetShot(i, s)
		e.Add(displaced)
	} else {
		// the removed shot was the last one; no swap happened
		e.Add(s)
	}
}

// applyShot commits adding (sign=+1) or removing (sign=−1) shot s:
// the constrained pixels of the shot's support box are retired from
// the maintained stats, the dose update runs through the model's
// separable accumulation, and the pixels are restored against the new
// dose.
func (e *Eval) applyShot(s geom.Rect, sign float64) {
	i0, j0, i1, j1 := e.P.Model.SupportBox(e.P.Grid, s)
	if i1 < i0 || j1 < j0 {
		e.finishMutation(0)
		return
	}
	e.retireSpan(i0, j0, i1, j1)
	e.accBuf = e.P.Model.AccumulateShotBuf(e.Dose, s, sign, e.accBuf)
	e.restoreSpan(i0, j0, i1, j1)
	e.finishMutation(2 * (i1 - i0 + 1) * (j1 - j0 + 1))
}

// retireSpan subtracts the cost terms and clears the fail bits of every
// failing pixel in the box, in preparation for a dose change there. The
// bitmaps are the authority on which pixels currently contribute, which
// keeps counts, bits and the running cost in lockstep.
func (e *Eval) retireSpan(i0, j0, i1, j1 int) {
	g := e.P.Grid
	rho := e.P.Params.Rho
	for j := j0; j <= j1; j++ {
		base := j * g.W
		for i := i0; i <= i1; i++ {
			k := base + i
			if e.failOn.Bits[k] {
				e.failOn.Bits[k] = false
				e.stats.FailOn--
				e.stats.Cost -= rho - e.Dose.V[k]
			} else if e.failOff.Bits[k] {
				e.failOff.Bits[k] = false
				e.stats.FailOff--
				e.stats.Cost -= e.Dose.V[k] - rho
			}
		}
	}
}

// restoreSpan re-classifies every constrained pixel in the box against
// the updated dose field, adding back cost terms and fail bits.
func (e *Eval) restoreSpan(i0, j0, i1, j1 int) {
	p := e.P
	g := p.Grid
	rho := p.Params.Rho
	for j := j0; j <= j1; j++ {
		base := j * g.W
		for i := i0; i <= i1; i++ {
			k := base + i
			v := e.Dose.V[k]
			switch p.Class[k] {
			case On:
				if v < rho {
					e.failOn.Bits[k] = true
					e.stats.FailOn++
					e.stats.Cost += rho - v
				}
			case Off:
				if v >= rho {
					e.failOff.Bits[k] = true
					e.stats.FailOff++
					e.stats.Cost += v - rho
				}
			}
		}
	}
}

// finishMutation updates the effort counters after a committed mutation
// that scanned px pixels and re-anchors the running cost when the
// configuration is feasible (the only state in which the exact cost is
// known without a scan: zero).
func (e *Eval) finishMutation(px int) {
	e.Mutations++
	e.PixelsMutated += int64(px)
	if e.stats.FailOn == 0 && e.stats.FailOff == 0 {
		e.stats.Cost = 0
	}
	evalMutationsTotal.Add(1)
	evalPixelsMutatedTotal.Add(int64(px))
	if obs, ok := mutationObserver.Load().(mutObs); ok && obs.fn != nil {
		obs.fn(px)
	}
}

// SetShot replaces shot i with s, updating dose and violation state by
// scanning only the strips around the moved edges: O(changed strips),
// the same region DeltaCost scores. When shot i is one arm of an
// L-shot and the move changes the pair's overlap rectangle, the
// overlap correction commits as a second strip scan, so moving an arm
// stays O(changed strips + overlap support).
func (e *Eval) SetShot(i int, s geom.Rect) {
	old := e.Shots[i]
	if old == s {
		return
	}
	e.Shots[i] = s
	e.moveScan(old, s, true)
	if j := e.partner[i]; j >= 0 {
		oOld := pairOverlap(old, e.Shots[j])
		oNew := pairOverlap(s, e.Shots[j])
		if oOld != oNew {
			// the pair's dose carries −I_overlap: re-point the negative
			// term from the old overlap to the new one
			switch {
			case oOld == (geom.Rect{}):
				e.applyShot(oNew, -1)
			case oNew == (geom.Rect{}):
				e.applyShot(oOld, 1)
			default:
				e.moveScan(oNew, oOld, true) // dose += I_oOld − I_oNew
			}
		}
	}
	if e.check {
		e.crossCheck("SetShot")
	}
}

// ApplyDelta commits the replacement of shot i by repl whose cost
// change was already scored as delta via DeltaCost(i, repl). It is the
// score-then-commit fast path for refinement loops: the commit scans
// the same strips the scoring pass did and nothing else. In cross-check
// mode the realized cost change is asserted against delta.
func (e *Eval) ApplyDelta(i int, repl geom.Rect, delta float64) {
	if !e.check {
		e.SetShot(i, repl)
		return
	}
	before := e.stats.Cost
	e.SetShot(i, repl)
	// the feasible case re-anchors cost to 0, legitimately breaking
	// before+delta == after; only assert while violations remain
	if e.stats.Fail() > 0 {
		got := e.stats.Cost - before
		if math.Abs(got-delta) > 1e-6+1e-9*math.Abs(before) {
			panic(fmt.Sprintf("cover: ApplyDelta mismatch: scored %g, realized %g", delta, got))
		}
	}
}

// Stats returns the maintained violation statistics in O(1).
func (e *Eval) Stats() Stats {
	e.Evals++
	return e.stats
}

// SnapshotShots returns a copy of the current shot list.
func (e *Eval) SnapshotShots() []geom.Rect {
	out := make([]geom.Rect, len(e.Shots))
	copy(out, e.Shots)
	return out
}

// crossCheck asserts the maintained state against two references: an
// exact scan of the evaluator's own dose field (counts and bitmaps must
// match exactly, cost up to accumulated rounding) and a from-scratch
// Problem.Evaluate, whose dose accumulates in shot order and therefore
// also matches cost only up to rounding.
func (e *Eval) crossCheck(op string) {
	p := e.P
	rho := p.Params.Rho
	var own Stats
	for k, c := range p.Class {
		v := e.Dose.V[k]
		fOn, fOff := false, false
		switch c {
		case On:
			if v < rho {
				fOn = true
				own.FailOn++
				own.Cost += rho - v
			}
		case Off:
			if v >= rho {
				fOff = true
				own.FailOff++
				own.Cost += v - rho
			}
		}
		if fOn != e.failOn.Bits[k] || fOff != e.failOff.Bits[k] {
			panic(fmt.Sprintf("cover: %s cross-check: bitmap mismatch at pixel %d", op, k))
		}
	}
	const tol = 1e-6
	if own.FailOn != e.stats.FailOn || own.FailOff != e.stats.FailOff ||
		math.Abs(own.Cost-e.stats.Cost) > tol {
		panic(fmt.Sprintf("cover: %s cross-check: maintained %+v != dose scan %+v", op, e.stats, own))
	}
	scratch := p.EvaluatePaired(e.Shots, e.Pairs())
	if scratch.FailOn != e.stats.FailOn || scratch.FailOff != e.stats.FailOff ||
		math.Abs(scratch.Cost-e.stats.Cost) > tol {
		panic(fmt.Sprintf("cover: %s cross-check: maintained %+v != from-scratch %+v", op, e.stats, scratch))
	}
}

// DeltaCost returns the change in Eq. 5 cost if shot i were replaced by
// repl, without modifying the evaluator. The computation is local: only
// pixels whose dose changes (the union of the strips around moved edges)
// are visited, which makes candidate scoring during shot refinement
// cheap (paper §4.1). Commit the move afterwards with ApplyDelta.
//
// For a paired shot whose replacement changes the L-shot's overlap
// rectangle, the shot term and the overlap correction are scored in a
// single multi-term pass (termScan): the Eq. 5 pixel cost is piecewise
// linear with a breakpoint at ρ, so scoring the two dose terms
// separately and summing would be wrong wherever their strips overlap.
func (e *Eval) DeltaCost(i int, repl geom.Rect) float64 {
	old := e.Shots[i]
	if old == repl {
		return 0
	}
	e.Evals++
	if j := e.partner[i]; j >= 0 {
		oOld := pairOverlap(old, e.Shots[j])
		oNew := pairOverlap(repl, e.Shots[j])
		if oOld != oNew {
			return e.pairedMoveDelta(old, repl, oOld, oNew)
		}
	}
	return e.moveScan(old, repl, false)
}

// edgeTables sizes the scratch tables for nc components over an
// nx × ny union box, reusing the evaluator's backing buffer (grown
// through the arena so a closed evaluator donates it back).
func (e *Eval) edgeTables(nc, nx, ny int) *edgeTabs {
	need := 2 * nc * (nx + ny)
	if cap(e.buf) < need {
		if a := e.arena; a != nil {
			a.putF32(e.buf)
			e.buf = a.getF32(need)
		} else {
			e.buf = make([]float32, need)
		}
	}
	buf := e.buf[:need]
	carve := func(n int) []float32 {
		s := buf[:n:n]
		buf = buf[n:]
		return s
	}
	for c := 0; c < nc; c++ {
		e.tab.exOld[c] = carve(nx)
		e.tab.exNew[c] = carve(nx)
		e.tab.eyOld[c] = carve(ny)
		e.tab.eyNew[c] = carve(ny)
	}
	return &e.tab
}

// moveScan is the shared strip scanner behind DeltaCost and SetShot: it
// visits the pixels whose dose the replacement old → repl changes — the
// changed-interval strips intersected with the union support box — and
// either scores the Eq. 5 cost change (commit=false, don't-care band
// skipped) or commits it (commit=true, dose written and the maintained
// stats/bitmaps retired-and-restored per pixel; band pixels still get
// their dose update). Pixels outside the strips keep their dose
// bit-for-bit: beyond the padded interval both edge profiles clamp to
// identical values, so dI is exactly zero there.
func (e *Eval) moveScan(old, repl geom.Rect, commit bool) float64 {
	p := e.P
	g := p.Grid
	model := p.Model
	sup := model.Support()

	// x-interval and y-interval where the separable profiles differ
	xLo, xHi, xChanged := changedInterval(old.X0, old.X1, repl.X0, repl.X1, sup)
	yLo, yHi, yChanged := changedInterval(old.Y0, old.Y1, repl.Y0, repl.Y1, sup)
	if !xChanged && !yChanged {
		if commit {
			e.finishMutation(0)
		}
		return 0
	}

	// overall support box (union of both shots' support)
	ubox := old.Union(repl).Inset(-sup)
	ui0, uj0 := g.PixelOf(geom.Pt(ubox.X0, ubox.Y0))
	ui1, uj1 := g.PixelOf(geom.Pt(ubox.X1, ubox.Y1))
	ui0, uj0 = g.ClampX(ui0), g.ClampY(uj0)
	ui1, uj1 = g.ClampX(ui1), g.ClampY(uj1)

	// per-component 1D edge tables over the union box: O(W+H) float32
	// strip-kernel fills up front make the area scans pure widening
	// multiply-adds (float32 loads, float64 accumulation)
	nc := model.Components()
	tab := e.edgeTables(nc, ui1-ui0+1, uj1-uj0+1)
	for c := 0; c < nc; c++ {
		model.EdgeProfiles32(tab.exOld[c], c, g.X0, g.Pitch, ui0, old.X0, old.X1)
		model.EdgeProfiles32(tab.exNew[c], c, g.X0, g.Pitch, ui0, repl.X0, repl.X1)
		model.EdgeProfiles32(tab.eyOld[c], c, g.Y0, g.Pitch, uj0, old.Y0, old.Y1)
		model.EdgeProfiles32(tab.eyNew[c], c, g.Y0, g.Pitch, uj0, repl.Y0, repl.Y1)
	}
	exO0, exN0 := tab.exOld[0], tab.exNew[0]
	exO1, exN1 := tab.exOld[1], tab.exNew[1]
	w0, w1 := model.Weight(0), 0.0
	if nc == 2 {
		w1 = model.Weight(1)
	}

	rho := p.Params.Rho
	delta, px := 0.0, 0
	scan := func(i0, j0, i1, j1 int) {
		if i1 < i0 || j1 < j0 {
			return
		}
		px += (i1 - i0 + 1) * (j1 - j0 + 1)
		for j := j0; j <= j1; j++ {
			jo := j - uj0
			base := j * g.W
			// hoist the weighted row factors; outside the changed strips
			// eyOld == eyNew and exOld == exNew bit-for-bit (the strip
			// kernel's exactness contract), so dI is exactly zero there
			eyO0 := w0 * float64(tab.eyOld[0][jo])
			eyN0 := w0 * float64(tab.eyNew[0][jo])
			var eyO1, eyN1 float64
			if nc == 2 {
				eyO1 = w1 * float64(tab.eyOld[1][jo])
				eyN1 = w1 * float64(tab.eyNew[1][jo])
			}
			for i := i0; i <= i1; i++ {
				k := base + i
				cls := p.Class[k]
				if !commit && cls == Band {
					continue
				}
				io := i - ui0
				dI := float64(exN0[io])*eyN0 - float64(exO0[io])*eyO0
				if nc == 2 {
					dI += float64(exN1[io])*eyN1 - float64(exO1[io])*eyO1
				}
				if dI == 0 {
					continue
				}
				v := e.Dose.V[k]
				if !commit {
					delta += p.pixelCost(k, v+dI) - p.pixelCost(k, v)
					continue
				}
				nv := v + dI
				e.Dose.V[k] = nv
				switch cls {
				case On:
					if e.failOn.Bits[k] {
						e.failOn.Bits[k] = false
						e.stats.FailOn--
						e.stats.Cost -= rho - v
					}
					if nv < rho {
						e.failOn.Bits[k] = true
						e.stats.FailOn++
						e.stats.Cost += rho - nv
					}
				case Off:
					if e.failOff.Bits[k] {
						e.failOff.Bits[k] = false
						e.stats.FailOff--
						e.stats.Cost -= v - rho
					}
					if nv >= rho {
						e.failOff.Bits[k] = true
						e.stats.FailOff++
						e.stats.Cost += nv - rho
					}
				}
			}
		}
	}
	switch {
	case xChanged && yChanged:
		// general move: scan the whole union support box
		scan(ui0, uj0, ui1, uj1)
	case xChanged:
		// vertical strip only
		i0, _ := g.PixelOf(geom.Pt(xLo, 0))
		i1, _ := g.PixelOf(geom.Pt(xHi, 0))
		scan(max(g.ClampX(i0), ui0), uj0, min(g.ClampX(i1), ui1), uj1)
	default:
		// horizontal strip only
		_, j0 := g.PixelOf(geom.Pt(0, yLo))
		_, j1 := g.PixelOf(geom.Pt(0, yHi))
		scan(ui0, max(g.ClampY(j0), uj0), ui1, min(g.ClampY(j1), uj1))
	}
	if commit {
		e.finishMutation(px)
	} else {
		e.PixelsScored += int64(px)
		evalPixelsScoredTotal.Add(int64(px))
	}
	return delta
}

// changedInterval returns the coordinate interval over which the 1D
// edge profile of [a0,a1] differs from that of [b0,b1], padded by the
// kernel support.
func changedInterval(a0, a1, b0, b1, sup float64) (lo, hi float64, changed bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	if a0 != b0 {
		lo = math.Min(a0, b0) - sup
		hi = math.Max(a0, b0) + sup
	}
	if a1 != b1 {
		lo = math.Min(lo, math.Min(a1, b1)-sup)
		hi = math.Max(hi, math.Max(a1, b1)+sup)
	}
	return lo, hi, hi >= lo
}

// FailingBitmaps returns bitmaps of the failing Pon and Poff pixels of
// the current configuration, used by the shot addition/removal steps
// (paper §4.3–4.4). The bitmaps are the evaluator's live maintained
// state, returned in O(1): they are shared views that the next mutation
// updates in place, so callers must treat them as read-only and must
// not hold them across mutations (re-fetch instead — the call is free).
func (e *Eval) FailingBitmaps() (failOn, failOff *raster.Bitmap) {
	return e.failOn, e.failOff
}
