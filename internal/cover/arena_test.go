package cover

import (
	"testing"

	"maskfrac/internal/geom"
)

// TestEvalCloseArenaReuse checks the arena lifecycle: buffers returned
// by Eval.Close are handed to the next evaluator of the same problem,
// visible both as pointer identity and in the process-wide counters.
func TestEvalCloseArenaReuse(t *testing.T) {
	p := mustProblem(t, square(40))
	shots := []geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}}

	e1 := NewEval(p, shots)
	dose1 := &e1.Dose.V[0]
	e1.Close()

	before := ArenaCounters()
	e2 := NewEval(p, shots)
	after := ArenaCounters()
	if &e2.Dose.V[0] != dose1 {
		t.Error("second evaluator did not reuse the closed dose buffer")
	}
	if after.Hits <= before.Hits {
		t.Errorf("arena hits did not increase: %d -> %d", before.Hits, after.Hits)
	}
	if after.BytesReused <= before.BytesReused {
		t.Errorf("arena bytes reused did not increase: %d -> %d", before.BytesReused, after.BytesReused)
	}
	e2.Close()
	e2.Close() // idempotent
}

// TestEvalUseAfterClosePanics pins the fail-loud contract: mutating a
// closed evaluator panics instead of corrupting a successor's buffers.
func TestEvalUseAfterClosePanics(t *testing.T) {
	p := mustProblem(t, square(40))
	e := NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}})
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a closed evaluator did not panic")
		}
	}()
	e.Add(geom.Rect{X0: 10, Y0: 10, X1: 30, Y1: 30})
}

// TestProblemRecycle checks that recycling detaches the arena (a later
// evaluator draws a fresh one) and leaves the problem usable.
func TestProblemRecycle(t *testing.T) {
	p := mustProblem(t, square(40))
	a1 := p.Arena()
	p.Recycle()
	if p.arena.Load() != nil {
		t.Fatal("Recycle left the arena attached")
	}
	e := NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}})
	if got := e.Stats(); got.Fail() < 0 {
		t.Fatal("unreachable")
	}
	e.Close()
	_ = a1
	p.Recycle()
}

// TestSubproblemSharesModel checks that region subproblems reuse the
// parent's read-only proximity model instead of rebuilding the LUTs.
func TestSubproblemSharesModel(t *testing.T) {
	shapes := []geom.Polygon{square(30), squareAt(100, 0, 20)}
	p, err := NewMultiProblem(shapes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subproblem([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Model != p.Model {
		t.Error("subproblem rebuilt the proximity model")
	}
	if p.arena.Load() != nil && sub.arena.Load() == p.arena.Load() {
		t.Error("subproblem shares the parent's arena")
	}
}

// squareAt returns an axis-aligned square with lower-left (x, y).
func squareAt(x, y, side float64) geom.Polygon {
	return geom.Polygon{
		geom.Pt(x, y), geom.Pt(x+side, y),
		geom.Pt(x+side, y+side), geom.Pt(x, y+side),
	}
}
