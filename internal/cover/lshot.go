// L-shot primitive: two rectangles sharing one dose. An L-shaped
// aperture writes the union of two overlapping (or flush-adjacent)
// rectangles in a single flash. By linearity of the proximity
// convolution over indicator functions,
//
//	1_A + 1_B − 1_{A∩B} = 1_{A∪B},
//
// so the dose field of the single L flash equals the sum of the two
// rectangle doses minus the dose of their intersection. The evaluator
// represents an L-shot as a *pair* of entries in the shot list bound
// together by a partner index; the pair contributes the corrected dose
// and prices as one flash. Pairing keeps every existing mutator
// incremental: moving one arm of an L re-scans only the changed-edge
// strips of the arm plus the changed overlap term.
//
// When the two rectangles are flush (their closed intersection has
// zero area) there is no overlap term at all — the pair's dose is
// exactly the sum of the arms, which is why the matching pass upstream
// prefers flush candidates.
package cover

import (
	"fmt"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// pairOverlap returns the positive-area intersection of two paired
// rectangles, or the zero Rect when they only touch or are disjoint.
// The zero Rect is the package-wide "no overlap term" sentinel: a zero
// overlap contributes no dose (its edge profiles cancel exactly), so
// paired bookkeeping skips it everywhere.
func pairOverlap(a, b geom.Rect) geom.Rect {
	o := a.Intersect(b)
	if o.X1 <= o.X0 || o.Y1 <= o.Y0 {
		return geom.Rect{}
	}
	return o
}

// UnionIsLShot reports whether the union of a and b is exactly an
// L-shape — the compatibility predicate of the matching pass. The
// union is an L iff it is connected with positive-length contact,
// neither rectangle contains the other, and exactly one corner of the
// joint bounding box is uncovered (zero uncovered corners is a plain
// rectangle; two is a T, Z or staircase; four is disjoint). Closed
// containment is used throughout so flush-adjacent pairs qualify.
func UnionIsLShot(a, b geom.Rect) bool {
	if a.Empty() || b.Empty() {
		return false
	}
	// connected: the closed intersection must be nonempty on both axes
	// (a shared edge segment or area overlap; a corner-point touch is
	// rejected below by the corner count)
	if a.X0 > b.X1 || b.X0 > a.X1 || a.Y0 > b.Y1 || b.Y0 > a.Y1 {
		return false
	}
	if a.ContainsRect(b) || b.ContainsRect(a) {
		return false
	}
	bb := a.Union(b)
	uncovered := 0
	for _, c := range [4]geom.Point{
		geom.Pt(bb.X0, bb.Y0), geom.Pt(bb.X1, bb.Y0),
		geom.Pt(bb.X0, bb.Y1), geom.Pt(bb.X1, bb.Y1),
	} {
		if !a.Contains(c) && !b.Contains(c) {
			uncovered++
		}
	}
	return uncovered == 1
}

// Partner returns the index of the shot paired with shot i, or −1 when
// shot i is an unpaired rectangle.
func (e *Eval) Partner(i int) int { return e.partner[i] }

// PairCount returns the number of L-shot pairs in the configuration.
func (e *Eval) PairCount() int {
	n := 0
	for i, p := range e.partner {
		if p > i {
			n++
		}
	}
	return n
}

// FlashCount returns the number of e-beam flashes the configuration
// writes in: each L-shot pair is one flash, every unpaired rectangle
// is one flash.
func (e *Eval) FlashCount() int { return len(e.Shots) - e.PairCount() }

// Pairs returns the L-shot pairs as {i, j} index pairs with i < j,
// sorted ascending by i. The slice is freshly allocated.
func (e *Eval) Pairs() [][2]int {
	var out [][2]int
	for i, p := range e.partner {
		if p > i {
			out = append(out, [2]int{i, p})
		}
	}
	return out
}

// Pair merges shots i and j into one L-shot: both keep their slots in
// the shot list, but their doses are corrected by subtracting the
// overlap term so the pair delivers exactly the dose of the single
// L-aperture flash over their union. Pair panics if i == j or either
// shot is already paired. The caller is responsible for geometric
// L-compatibility (see UnionIsLShot); the dose bookkeeping itself is
// valid for any two rectangles. O(overlap support box).
func (e *Eval) Pair(i, j int) {
	if i == j {
		panic("cover: Pair(i, i)")
	}
	if e.partner[i] >= 0 || e.partner[j] >= 0 {
		panic(fmt.Sprintf("cover: Pair(%d, %d): shot already paired", i, j))
	}
	e.partner[i], e.partner[j] = j, i
	if o := pairOverlap(e.Shots[i], e.Shots[j]); o != (geom.Rect{}) {
		e.applyShot(o, -1)
	} else {
		e.finishMutation(0)
	}
	if e.check {
		e.crossCheck("Pair")
	}
}

// Unpair splits the L-shot containing shot i back into two independent
// rectangles, restoring the overlap dose. It is the exact inverse of
// Pair. Panics if shot i is not paired. O(overlap support box).
func (e *Eval) Unpair(i int) {
	j := e.partner[i]
	if j < 0 {
		panic(fmt.Sprintf("cover: Unpair(%d): shot not paired", i))
	}
	e.partner[i], e.partner[j] = -1, -1
	if o := pairOverlap(e.Shots[i], e.Shots[j]); o != (geom.Rect{}) {
		e.applyShot(o, 1)
	} else {
		e.finishMutation(0)
	}
	if e.check {
		e.crossCheck("Unpair")
	}
}

// PairDelta returns the change in Eq. 5 cost if shots i and j were
// paired, without modifying the evaluator — the scoring counterpart of
// Pair. Panics under the same conditions as Pair.
func (e *Eval) PairDelta(i, j int) float64 {
	if i == j {
		panic("cover: PairDelta(i, i)")
	}
	if e.partner[i] >= 0 || e.partner[j] >= 0 {
		panic(fmt.Sprintf("cover: PairDelta(%d, %d): shot already paired", i, j))
	}
	e.Evals++
	o := pairOverlap(e.Shots[i], e.Shots[j])
	if o == (geom.Rect{}) {
		return 0
	}
	return e.termScan([]doseTerm{{o, -1}})
}

// UnpairDelta returns the change in Eq. 5 cost if the L-shot containing
// shot i were split back into rectangles — the scoring counterpart of
// Unpair. Panics if shot i is not paired.
func (e *Eval) UnpairDelta(i int) float64 {
	j := e.partner[i]
	if j < 0 {
		panic(fmt.Sprintf("cover: UnpairDelta(%d): shot not paired", i))
	}
	e.Evals++
	o := pairOverlap(e.Shots[i], e.Shots[j])
	if o == (geom.Rect{}) {
		return 0
	}
	return e.termScan([]doseTerm{{o, 1}})
}

// ResetPaired replaces the entire configuration with the given shots
// and L-shot pairs and rebuilds dose and violation state from scratch,
// the paired counterpart of Reset. Each pairs element is an {i, j}
// index pair into shots; indices must be distinct across pairs.
func (e *Eval) ResetPaired(shots []geom.Rect, pairs [][2]int) {
	clear(e.Dose.V)
	e.Shots = append(e.Shots[:0], shots...)
	e.resetPartners(len(shots))
	for _, s := range e.Shots {
		e.accBuf = e.P.Model.AccumulateShotBuf(e.Dose, s, 1, e.accBuf)
	}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		if i == j || e.partner[i] >= 0 || e.partner[j] >= 0 {
			panic(fmt.Sprintf("cover: ResetPaired: invalid pair {%d, %d}", i, j))
		}
		e.partner[i], e.partner[j] = j, i
		if o := pairOverlap(e.Shots[i], e.Shots[j]); o != (geom.Rect{}) {
			e.accBuf = e.P.Model.AccumulateShotBuf(e.Dose, o, -1, e.accBuf)
		}
	}
	e.rebuildState()
	if e.check {
		e.crossCheck("ResetPaired")
	}
}

// resetPartners sizes the partner table for n shots, all unpaired.
func (e *Eval) resetPartners(n int) {
	if cap(e.partner) < n {
		e.partner = make([]int, n)
	} else {
		e.partner = e.partner[:n]
	}
	for i := range e.partner {
		e.partner[i] = -1
	}
}

// EvaluatePaired computes the violation statistics of a shot set with
// L-shot pairs from scratch: every shot accumulates positively, every
// pair's positive-area overlap accumulates negatively. It is the
// from-scratch reference the paired evaluator's cross-check mode
// asserts against. With no pairs it is exactly Evaluate.
func (p *Problem) EvaluatePaired(shots []geom.Rect, pairs [][2]int) Stats {
	if len(pairs) == 0 {
		return p.Evaluate(shots)
	}
	a := p.Arena()
	dose := raster.Field{Grid: p.Grid, V: a.getF64(p.Grid.Len())}
	scratch := a.getF32(0)
	for _, s := range shots {
		scratch = p.Model.AccumulateShotBuf(&dose, s, 1, scratch)
	}
	for _, pr := range pairs {
		if o := pairOverlap(shots[pr[0]], shots[pr[1]]); o != (geom.Rect{}) {
			scratch = p.Model.AccumulateShotBuf(&dose, o, -1, scratch)
		}
	}
	st := p.statsOf(&dose)
	a.putF32(scratch)
	a.putF64(dose.V)
	return st
}

// doseTerm is one signed rectangle term of a multi-term dose change.
type doseTerm struct {
	r    geom.Rect
	sign float64
}

// termScanMaxTerms bounds a termScan: a paired shot move contributes at
// most four terms (new shot, old shot, old overlap, new overlap).
const termScanMaxTerms = 4

// termScan scores the Eq. 5 cost change of applying a set of signed
// rectangle dose terms simultaneously, without modifying the evaluator.
// It is the multi-term counterpart of moveScan's scoring path: the cost
// at each pixel is evaluated once against the summed dose change, which
// is required for correctness — pixelCost is piecewise linear with a
// breakpoint at ρ, so the deltas of the individual terms do not sum.
// Every term must be a nonzero rectangle. O(union support box).
func (e *Eval) termScan(terms []doseTerm) float64 {
	if len(terms) > termScanMaxTerms {
		panic("cover: termScan: too many terms")
	}
	p := e.P
	g := p.Grid
	model := p.Model
	sup := model.Support()

	ubox := geom.Rect{}
	for _, t := range terms {
		ubox = ubox.Union(t.r)
	}
	ubox = ubox.Inset(-sup)
	ui0, uj0 := g.PixelOf(geom.Pt(ubox.X0, ubox.Y0))
	ui1, uj1 := g.PixelOf(geom.Pt(ubox.X1, ubox.Y1))
	ui0, uj0 = g.ClampX(ui0), g.ClampY(uj0)
	ui1, uj1 = g.ClampX(ui1), g.ClampY(uj1)
	if ui1 < ui0 || uj1 < uj0 {
		return 0
	}
	nx, ny := ui1-ui0+1, uj1-uj0+1
	nc := model.Components()
	nt := len(terms)

	need := nt * nc * (nx + ny)
	buf := e.buf
	if cap(buf) < need {
		if a := e.arena; a != nil {
			a.putF32(buf)
			buf = a.getF32(need)
		} else {
			buf = make([]float32, need)
		}
		e.buf = buf
	}
	buf = buf[:need]
	carve := func(n int) []float32 {
		s := buf[:n:n]
		buf = buf[n:]
		return s
	}
	var ex, ey [termScanMaxTerms][2][]float32
	for t := 0; t < nt; t++ {
		for c := 0; c < nc; c++ {
			ex[t][c] = carve(nx)
			ey[t][c] = carve(ny)
			model.EdgeProfiles32(ex[t][c], c, g.X0, g.Pitch, ui0, terms[t].r.X0, terms[t].r.X1)
			model.EdgeProfiles32(ey[t][c], c, g.Y0, g.Pitch, uj0, terms[t].r.Y0, terms[t].r.Y1)
		}
	}

	delta := 0.0
	var eyv [termScanMaxTerms][2]float64
	for j := uj0; j <= uj1; j++ {
		jo := j - uj0
		base := j * g.W
		// hoist the signed, weighted row factors once per row
		for t := 0; t < nt; t++ {
			for c := 0; c < nc; c++ {
				eyv[t][c] = terms[t].sign * model.Weight(c) * float64(ey[t][c][jo])
			}
		}
		for i := ui0; i <= ui1; i++ {
			k := base + i
			if p.Class[k] == Band {
				continue
			}
			io := i - ui0
			dI := 0.0
			for t := 0; t < nt; t++ {
				for c := 0; c < nc; c++ {
					dI += float64(ex[t][c][io]) * eyv[t][c]
				}
			}
			if dI == 0 {
				continue
			}
			v := e.Dose.V[k]
			delta += p.pixelCost(k, v+dI) - p.pixelCost(k, v)
		}
	}
	px := nx * ny
	e.PixelsScored += int64(px)
	evalPixelsScoredTotal.Add(int64(px))
	return delta
}

// pairedMoveDelta scores the replacement of a paired shot when the
// replacement also changes the pair's overlap term: the dose change is
// I_repl − I_old + I_oldOverlap − I_newOverlap, scored in one pass.
func (e *Eval) pairedMoveDelta(old, repl, oOld, oNew geom.Rect) float64 {
	terms := make([]doseTerm, 0, termScanMaxTerms)
	terms = append(terms, doseTerm{repl, 1}, doseTerm{old, -1})
	if oOld != (geom.Rect{}) {
		terms = append(terms, doseTerm{oOld, 1})
	}
	if oNew != (geom.Rect{}) {
		terms = append(terms, doseTerm{oNew, -1})
	}
	return e.termScan(terms)
}
