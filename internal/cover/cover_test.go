package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"maskfrac/internal/geom"
)

func square(side float64) geom.Polygon {
	return geom.Polygon{geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side)}
}

func mustProblem(t *testing.T, pg geom.Polygon) *Problem {
	t.Helper()
	p, err := NewProblem(pg, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{Sigma: 0, Gamma: 2, Rho: 0.5, Pitch: 1, Lmin: 8},
		{Sigma: 6, Gamma: -1, Rho: 0.5, Pitch: 1, Lmin: 8},
		{Sigma: 6, Gamma: 2, Rho: 0, Pitch: 1, Lmin: 8},
		{Sigma: 6, Gamma: 2, Rho: 1.5, Pitch: 1, Lmin: 8},
		{Sigma: 6, Gamma: 2, Rho: 0.5, Pitch: 0, Lmin: 8},
		{Sigma: 6, Gamma: 2, Rho: 0.5, Pitch: 1, Lmin: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewProblemErrors(t *testing.T) {
	if _, err := NewProblem(geom.Polygon{geom.Pt(0, 0)}, DefaultParams()); err == nil {
		t.Error("degenerate target accepted")
	}
	p := DefaultParams()
	p.Rho = 2
	if _, err := NewProblem(square(40), p); err == nil {
		t.Error("bad params accepted")
	}
}

func TestClassification(t *testing.T) {
	p := mustProblem(t, square(40))
	g := p.Grid
	// deep inside → On
	i, j := g.PixelOf(geom.Pt(20, 20))
	if p.Class[g.Index(i, j)] != On {
		t.Error("center not On")
	}
	// far outside → Off
	i, j = g.PixelOf(geom.Pt(-10, 20))
	if p.Class[g.Index(i, j)] != Off {
		t.Error("outside not Off")
	}
	// within gamma of the boundary → Band
	i, j = g.PixelOf(geom.Pt(0.5, 20))
	if p.Class[g.Index(i, j)] != Band {
		t.Error("near-boundary pixel not Band")
	}
	i, j = g.PixelOf(geom.Pt(-1.2, 20))
	if p.Class[g.Index(i, j)] != Band {
		t.Error("near-boundary outside pixel not Band")
	}
	if p.OnCount() == 0 || p.OffCount() == 0 {
		t.Error("empty Pon or Poff")
	}
	// counts add up
	band := 0
	for _, c := range p.Class {
		if c == Band {
			band++
		}
	}
	if p.OnCount()+p.OffCount()+band != g.Len() {
		t.Error("class counts do not partition the grid")
	}
}

func TestClassificationBandWidth(t *testing.T) {
	p := mustProblem(t, square(40))
	g := p.Grid
	// every On pixel is inside and at distance > gamma from boundary;
	// every Off pixel outside at distance > gamma
	for k, c := range p.Class {
		i, j := g.Coords(k)
		pt := g.Center(i, j)
		d := p.Target.BoundaryDist(pt)
		inside := p.Target.Contains(pt)
		switch c {
		case On:
			if !inside || d <= p.Params.Gamma-1e-9 {
				t.Fatalf("On pixel %v inside=%v d=%v", pt, inside, d)
			}
		case Off:
			if inside || d <= p.Params.Gamma-1e-9 {
				t.Fatalf("Off pixel %v inside=%v d=%v", pt, inside, d)
			}
		case Band:
			if d > p.Params.Gamma+1e-9 {
				t.Fatalf("Band pixel %v has d=%v > gamma", pt, d)
			}
		}
	}
}

func TestMinSizeOK(t *testing.T) {
	p := mustProblem(t, square(40))
	if !p.MinSizeOK(geom.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8}) {
		t.Error("exact Lmin rejected")
	}
	if p.MinSizeOK(geom.Rect{X0: 0, Y0: 0, X1: 7.9, Y1: 8}) {
		t.Error("sub-Lmin accepted")
	}
}

func TestInteriorFraction(t *testing.T) {
	p := mustProblem(t, square(40))
	if f := p.InteriorFraction(geom.Rect{X0: 10, Y0: 10, X1: 30, Y1: 30}); f != 1 {
		t.Errorf("inner shot fraction = %v", f)
	}
	if f := p.InteriorFraction(geom.Rect{X0: -30, Y0: -30, X1: -10, Y1: -10}); f != 0 {
		t.Errorf("outer shot fraction = %v", f)
	}
	// half-overlapping shot
	f := p.InteriorFraction(geom.Rect{X0: -10, Y0: 10, X1: 10, Y1: 30})
	if math.Abs(f-0.5) > 0.1 {
		t.Errorf("half shot fraction = %v", f)
	}
	// sub-pixel shot falls back to center test
	if f := p.InteriorFraction(geom.Rect{X0: 20, Y0: 20, X1: 20.3, Y1: 20.3}); f != 1 {
		t.Errorf("tiny inner shot fraction = %v", f)
	}
}

func TestEvaluatePerfectCover(t *testing.T) {
	// A shot slightly overhanging the 40nm square target compensates
	// corner rounding: edges stay within the band, inner corner pixels
	// get enough dose, outer pixels stay below rho.
	p := mustProblem(t, square(40))
	st := p.Evaluate([]geom.Rect{{X0: -0.5, Y0: -0.5, X1: 40.5, Y1: 40.5}})
	if !st.Feasible() {
		t.Errorf("overhanging shot infeasible: %+v", st)
	}
}

func TestEvaluateCornerRounding(t *testing.T) {
	// The exact-target shot is NOT feasible: e-beam corner rounding
	// under-doses On pixels within the rounding depth of a sharp 90°
	// corner (the effect the paper's fracturing must compensate).
	p := mustProblem(t, square(40))
	st := p.Evaluate([]geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}})
	if st.FailOn == 0 {
		t.Error("expected corner-rounding On violations for the exact shot")
	}
	if st.FailOn > 8 {
		t.Errorf("too many corner violations: %d", st.FailOn)
	}
	if st.FailOff != 0 {
		t.Errorf("exact shot should not overdose Off pixels: %+v", st)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	p := mustProblem(t, square(40))
	st := p.Evaluate(nil)
	if st.FailOn != p.OnCount() {
		t.Errorf("no shots: FailOn = %d, want %d", st.FailOn, p.OnCount())
	}
	if st.FailOff != 0 {
		t.Errorf("no shots: FailOff = %d", st.FailOff)
	}
	wantCost := 0.5 * float64(p.OnCount())
	if math.Abs(st.Cost-wantCost) > 1e-9 {
		t.Errorf("no shots: cost = %v, want %v", st.Cost, wantCost)
	}
}

func TestEvaluateOversizedShot(t *testing.T) {
	// a shot grossly larger than the target must fail Poff pixels
	p := mustProblem(t, square(40))
	st := p.Evaluate([]geom.Rect{{X0: -15, Y0: -15, X1: 55, Y1: 55}})
	if st.FailOff == 0 {
		t.Error("oversized shot has no off violations")
	}
	if st.FailOn != 0 {
		t.Error("oversized shot fails on pixels")
	}
}

func TestEvalIncrementalConsistency(t *testing.T) {
	p := mustProblem(t, square(40))
	e := NewEval(p, nil)
	s1 := geom.Rect{X0: 0, Y0: 0, X1: 25, Y1: 40}
	s2 := geom.Rect{X0: 20, Y0: 0, X1: 40, Y1: 40}
	e.Add(s1)
	e.Add(s2)
	want := p.Evaluate([]geom.Rect{s1, s2})
	got := e.Stats()
	if math.Abs(got.Cost-want.Cost) > 1e-9 || got.FailOn != want.FailOn || got.FailOff != want.FailOff {
		t.Errorf("incremental %+v vs scratch %+v", got, want)
	}
	// mutate: move s2, remove s1
	e.SetShot(1, geom.Rect{X0: 18, Y0: 0, X1: 40, Y1: 40})
	e.Remove(0)
	want = p.Evaluate(e.Shots)
	got = e.Stats()
	if math.Abs(got.Cost-want.Cost) > 1e-9 || got.Fail() != want.Fail() {
		t.Errorf("after mutation: %+v vs %+v", got, want)
	}
}

func TestDeltaCostMatchesFullRecompute(t *testing.T) {
	p := mustProblem(t, square(40))
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 22, Y1: 40},
		{X0: 20, Y0: 0, X1: 40, Y1: 38},
	}
	e := NewEval(p, shots)
	base := e.Stats().Cost
	moves := []geom.Rect{
		{X0: 0, Y0: 0, X1: 23, Y1: 40},  // right edge +1
		{X0: 1, Y0: 0, X1: 22, Y1: 40},  // left edge +1
		{X0: 0, Y0: -1, X1: 22, Y1: 40}, // bottom edge -1
		{X0: 0, Y0: 0, X1: 22, Y1: 39},  // top edge -1
		{X0: 2, Y0: 3, X1: 30, Y1: 35},  // general move
		{X0: 0, Y0: 0, X1: 22, Y1: 40},  // no-op
	}
	for _, mv := range moves {
		delta := e.DeltaCost(0, mv)
		after := p.Evaluate([]geom.Rect{mv, shots[1]})
		want := after.Cost - base
		if math.Abs(delta-want) > 1e-6 {
			t.Errorf("move %v: delta = %v, want %v", mv, delta, want)
		}
	}
}

func TestDeltaCostQuick(t *testing.T) {
	p := mustProblem(t, square(30))
	base := geom.Rect{X0: 0, Y0: 0, X1: 30, Y1: 30}
	e := NewEval(p, []geom.Rect{base})
	baseCost := e.Stats().Cost
	f := func(dx0, dy0, dx1, dy1 int8) bool {
		repl := geom.Rect{
			X0: base.X0 + float64(dx0%6),
			Y0: base.Y0 + float64(dy0%6),
			X1: base.X1 + float64(dx1%6),
			Y1: base.Y1 + float64(dy1%6),
		}
		if repl.Empty() {
			return true
		}
		delta := e.DeltaCost(0, repl)
		want := p.Evaluate([]geom.Rect{repl}).Cost - baseCost
		return math.Abs(delta-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFailingBitmaps(t *testing.T) {
	p := mustProblem(t, square(40))
	// cover only the left half: right-half On pixels fail
	e := NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 20, Y1: 40}})
	failOn, failOff := e.FailingBitmaps()
	st := e.Stats()
	if failOn.Count() != st.FailOn || failOff.Count() != st.FailOff {
		t.Errorf("bitmap counts %d/%d vs stats %d/%d",
			failOn.Count(), failOff.Count(), st.FailOn, st.FailOff)
	}
	if failOn.Count() == 0 {
		t.Error("expected failing on pixels")
	}
	g := p.Grid
	i, j := g.PixelOf(geom.Pt(35, 20))
	if !failOn.Get(i, j) {
		t.Error("uncovered interior pixel not failing")
	}
	i, j = g.PixelOf(geom.Pt(10, 20))
	if failOn.Get(i, j) {
		t.Error("covered interior pixel failing")
	}
}

func TestSnapshotShots(t *testing.T) {
	p := mustProblem(t, square(40))
	e := NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}})
	snap := e.SnapshotShots()
	e.SetShot(0, geom.Rect{X0: 5, Y0: 5, X1: 35, Y1: 35})
	if snap[0] != (geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}) {
		t.Error("snapshot aliases live shots")
	}
}

func TestCostNonNegativeQuick(t *testing.T) {
	p := mustProblem(t, square(30))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(4)
		shots := make([]geom.Rect, 0, n)
		for i := 0; i < n; i++ {
			x0 := rng.Float64()*40 - 5
			y0 := rng.Float64()*40 - 5
			shots = append(shots, geom.Rect{X0: x0, Y0: y0, X1: x0 + 8 + rng.Float64()*20, Y1: y0 + 8 + rng.Float64()*20})
		}
		st := p.Evaluate(shots)
		if st.Cost < 0 || st.FailOn < 0 || st.FailOff < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		if st.Fail() == 0 && st.Cost != 0 {
			t.Fatalf("zero failures but non-zero cost: %+v", st)
		}
	}
}

func TestNewMultiProblem(t *testing.T) {
	shapes := []geom.Polygon{
		square(40),
		square(30).Translate(geom.Pt(80, 0)),
	}
	p, err := NewMultiProblem(shapes, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Targets) != 2 {
		t.Fatalf("targets = %d", len(p.Targets))
	}
	g := p.Grid
	// interiors of both shapes are On
	for _, pt := range []geom.Point{geom.Pt(20, 20), geom.Pt(95, 15)} {
		i, j := g.PixelOf(pt)
		if p.Class[g.Index(i, j)] != On {
			t.Errorf("pixel at %v not On", pt)
		}
	}
	// the gap between them is Off
	i, j := g.PixelOf(geom.Pt(60, 15))
	if p.Class[g.Index(i, j)] != Off {
		t.Error("gap pixel not Off")
	}
	if !p.ContainsPoint(geom.Pt(95, 15)) || p.ContainsPoint(geom.Pt(60, 15)) {
		t.Error("ContainsPoint wrong")
	}
	b := p.TargetBounds()
	if b.X0 != 0 || b.X1 != 110 {
		t.Errorf("TargetBounds = %v", b)
	}
	// both shapes must be covered for feasibility
	st := p.Evaluate([]geom.Rect{{X0: -0.5, Y0: -0.5, X1: 40.5, Y1: 40.5}})
	if st.FailOn == 0 {
		t.Error("uncovered second shape not failing")
	}
	st = p.Evaluate([]geom.Rect{
		{X0: -0.5, Y0: -0.5, X1: 40.5, Y1: 40.5},
		{X0: 79.5, Y0: -0.5, X1: 110.5, Y1: 30.5},
	})
	if !st.Feasible() {
		t.Errorf("both shapes covered but infeasible: %+v", st)
	}
}

func TestNewMultiProblemErrors(t *testing.T) {
	if _, err := NewMultiProblem(nil, DefaultParams()); err == nil {
		t.Error("empty target list accepted")
	}
	if _, err := NewMultiProblem([]geom.Polygon{square(40), {geom.Pt(0, 0)}}, DefaultParams()); err == nil {
		t.Error("degenerate second shape accepted")
	}
}

func TestBackscatterParams(t *testing.T) {
	params := DefaultParams()
	params.Beta = 30
	params.Eta = 0.5
	p, err := NewProblem(square(40), params)
	if err != nil {
		t.Fatal(err)
	}
	if p.Model.Components() != 2 {
		t.Errorf("components = %d", p.Model.Components())
	}
	// the larger support widens the sampling margin
	if p.Grid.W <= 90 {
		t.Errorf("grid width %d does not reflect the backscatter support", p.Grid.W)
	}
	bad := params
	bad.Beta = 0
	if err := bad.Validate(); err == nil {
		t.Error("eta without beta accepted")
	}
	bad = params
	bad.Eta = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative eta accepted")
	}
}
