// Per-Eval buffer arenas: the dose grid, failing-pixel bitmaps, edge
// tables and accumulation scratch of an evaluator are the dominant
// allocations of a cache-miss solve, and the refinement loops of every
// heuristic construct evaluators repeatedly (polish candidates,
// removal trials, merge passes). An Arena recycles those buffers
// within a Problem, and a process-wide sync.Pool recycles whole arenas
// across solves, so the steady state allocates nothing.
package cover

import (
	"sync"
	"sync/atomic"
)

// Process-wide arena reuse counters, exported to /metrics by the
// fracturing service (fracd_eval_arena_*).
var (
	arenaHitsTotal        atomic.Int64
	arenaMissesTotal      atomic.Int64
	arenaBytesReusedTotal atomic.Int64
)

// ArenaStats is a snapshot of the process-wide arena reuse counters:
// how many buffer acquisitions were served from a free list (Hits) vs
// freshly allocated (Misses), and how many bytes the hits reused.
type ArenaStats struct {
	Hits        int64
	Misses      int64
	BytesReused int64
}

// ArenaCounters returns the current process-wide arena reuse totals.
func ArenaCounters() ArenaStats {
	return ArenaStats{
		Hits:        arenaHitsTotal.Load(),
		Misses:      arenaMissesTotal.Load(),
		BytesReused: arenaBytesReusedTotal.Load(),
	}
}

// arenaListCap bounds each free list; an evaluator holds one dose
// field, two bitmaps and two scratch slices, so a handful of retained
// buffers covers the construct-close-construct churn of the
// refinement loops without hoarding.
const arenaListCap = 8

// An Arena recycles the large buffers behind cover evaluators. Buffers
// flow out through the get methods (NewEval, Problem.Evaluate) and
// back in through Eval.Close; the free lists are mutex-guarded so a
// Problem's arena tolerates concurrent evaluators, though region
// solves are expected to use one arena per subproblem (they share
// nothing but the read-only model tables).
//
// The zero value is ready to use. Arenas themselves are pooled
// process-wide: NewArena draws from a sync.Pool and Problem.Recycle
// returns to it, which is what carries buffer reuse across cache-miss
// solves.
type Arena struct {
	mu   sync.Mutex
	f64  [][]float64
	f32  [][]float32
	bits [][]bool
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// NewArena returns an arena from the process-wide pool.
func NewArena() *Arena {
	return arenaPool.Get().(*Arena)
}

// recycle returns the arena (with whatever buffers it holds) to the
// process-wide pool. The caller must not use it afterwards.
func (a *Arena) recycle() {
	arenaPool.Put(a)
}

// getF64 returns a zeroed []float64 of length n, reusing a free-listed
// buffer when one is large enough.
func (a *Arena) getF64(n int) []float64 {
	a.mu.Lock()
	for i := len(a.f64) - 1; i >= 0; i-- {
		if s := a.f64[i]; cap(s) >= n {
			a.f64[i] = a.f64[len(a.f64)-1]
			a.f64 = a.f64[:len(a.f64)-1]
			a.mu.Unlock()
			arenaHitsTotal.Add(1)
			arenaBytesReusedTotal.Add(8 * int64(n))
			s = s[:n]
			clear(s)
			return s
		}
	}
	a.mu.Unlock()
	arenaMissesTotal.Add(1)
	return make([]float64, n)
}

// getF32 returns a zeroed []float32 of length n.
func (a *Arena) getF32(n int) []float32 {
	a.mu.Lock()
	for i := len(a.f32) - 1; i >= 0; i-- {
		if s := a.f32[i]; cap(s) >= n {
			a.f32[i] = a.f32[len(a.f32)-1]
			a.f32 = a.f32[:len(a.f32)-1]
			a.mu.Unlock()
			arenaHitsTotal.Add(1)
			arenaBytesReusedTotal.Add(4 * int64(n))
			s = s[:n]
			clear(s)
			return s
		}
	}
	a.mu.Unlock()
	arenaMissesTotal.Add(1)
	return make([]float32, n)
}

// getBits returns a zeroed []bool of length n.
func (a *Arena) getBits(n int) []bool {
	a.mu.Lock()
	for i := len(a.bits) - 1; i >= 0; i-- {
		if s := a.bits[i]; cap(s) >= n {
			a.bits[i] = a.bits[len(a.bits)-1]
			a.bits = a.bits[:len(a.bits)-1]
			a.mu.Unlock()
			arenaHitsTotal.Add(1)
			arenaBytesReusedTotal.Add(int64(n))
			s = s[:n]
			clear(s)
			return s
		}
	}
	a.mu.Unlock()
	arenaMissesTotal.Add(1)
	return make([]bool, n)
}

// putF64 returns a buffer to the free list (nil and zero-capacity
// slices are dropped, as are buffers beyond the list cap).
func (a *Arena) putF64(s []float64) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.f64) < arenaListCap {
		a.f64 = append(a.f64, s[:0])
	}
	a.mu.Unlock()
}

// putF32 returns a buffer to the free list.
func (a *Arena) putF32(s []float32) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.f32) < arenaListCap {
		a.f32 = append(a.f32, s[:0])
	}
	a.mu.Unlock()
}

// putBits returns a buffer to the free list.
func (a *Arena) putBits(s []bool) {
	if cap(s) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.bits) < arenaListCap {
		a.bits = append(a.bits, s[:0])
	}
	a.mu.Unlock()
}
