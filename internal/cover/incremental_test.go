package cover

import (
	"math"
	"math/rand"
	"testing"

	"maskfrac/internal/ebeam"
	"maskfrac/internal/geom"
)

// costTol is the tolerance for comparing the maintained running cost
// against a freshly summed one: the running sum accumulates
// retire/restore pairs in mutation order and a from-scratch dose field
// accumulates shots in shot order, so both differ from the maintained
// value by float rounding only.
const costTol = 1e-6

// propParams returns the parameter sets the property tests cover: the
// paper's single-Gaussian model and a two-Gaussian backscatter model.
func propParams() map[string]Params {
	double := DefaultParams()
	double.Beta, double.Eta = 30, 0.3
	return map[string]Params{"single": DefaultParams(), "double": double}
}

// randShot draws a legal shot near the target square of side `side`.
func randShot(rng *rand.Rand, p *Problem, side float64) geom.Rect {
	lmin := p.Params.Lmin
	w := lmin + rng.Float64()*(side-lmin)
	h := lmin + rng.Float64()*(side-lmin)
	x := -5 + rng.Float64()*(side+10-w)
	y := -5 + rng.Float64()*(side+10-h)
	return geom.Rect{X0: x, Y0: y, X1: x + w, Y1: y + h}
}

// checkAgainstScratch asserts the maintained violation state of e
// equals a from-scratch evaluation of its shot list: fail counts and
// bitmaps exactly, cost within rounding tolerance.
func checkAgainstScratch(t *testing.T, e *Eval, context string) {
	t.Helper()
	p := e.P
	st := e.stats
	scratch := p.Evaluate(e.SnapshotShots())
	if st.FailOn != scratch.FailOn || st.FailOff != scratch.FailOff {
		t.Fatalf("%s: maintained fail counts %d/%d != from-scratch %d/%d",
			context, st.FailOn, st.FailOff, scratch.FailOn, scratch.FailOff)
	}
	if math.Abs(st.Cost-scratch.Cost) > costTol {
		t.Fatalf("%s: maintained cost %g != from-scratch %g", context, st.Cost, scratch.Cost)
	}
	// bitmaps and counts must match an exact scan of the evaluator's
	// own dose field pixel for pixel
	failOn, failOff := e.FailingBitmaps()
	rho := p.Params.Rho
	for k, c := range p.Class {
		v := e.Dose.V[k]
		wantOn := c == On && v < rho
		wantOff := c == Off && v >= rho
		if failOn.Bits[k] != wantOn || failOff.Bits[k] != wantOff {
			t.Fatalf("%s: bitmap mismatch at pixel %d (class %d dose %g)", context, k, c, v)
		}
	}
}

// TestEvalPropertyIncrementalMatchesScratch drives random
// Add/Remove/SetShot/ApplyDelta sequences and asserts after every
// sequence that the incrementally maintained Stats and FailingBitmaps
// equal Problem.Evaluate from scratch, on both proximity models. With
// 60 sequences per model this covers 120 random mutation sequences.
func TestEvalPropertyIncrementalMatchesScratch(t *testing.T) {
	const side = 60.0
	// also verify every float32 strip-kernel fill the sequences trigger
	// against the float64 reference (panics with the first diverging
	// strip coordinate if EdgeProfiles32 drifts past ProfileTol32)
	defer ebeam.SetProfileCheck(ebeam.SetProfileCheck(true))
	for name, params := range propParams() {
		t.Run(name, func(t *testing.T) {
			p, err := NewProblem(square(side), params)
			if err != nil {
				t.Fatal(err)
			}
			for seq := 0; seq < 60; seq++ {
				rng := rand.New(rand.NewSource(int64(1000 + seq)))
				e := NewEval(p, []geom.Rect{randShot(rng, p, side)})
				for op := 0; op < 40; op++ {
					switch choice := rng.Intn(10); {
					case choice < 4 || len(e.Shots) == 0: // Add
						e.Add(randShot(rng, p, side))
					case choice < 6: // Remove
						e.Remove(rng.Intn(len(e.Shots)))
					case choice < 8: // SetShot
						e.SetShot(rng.Intn(len(e.Shots)), randShot(rng, p, side))
					default: // score-then-commit via ApplyDelta
						i := rng.Intn(len(e.Shots))
						nr := e.Shots[i]
						nr.X1 += p.Params.Pitch * float64(1+rng.Intn(3))
						delta := e.DeltaCost(i, nr)
						e.ApplyDelta(i, nr, delta)
					}
				}
				checkAgainstScratch(t, e, name)
			}
		})
	}
}

// TestEvalCrossCheckMode exercises the debug cross-check path: with
// SetCrossCheck(true) every mutation self-verifies against the dose
// field and a from-scratch evaluation, panicking on divergence.
func TestEvalCrossCheckMode(t *testing.T) {
	for name, params := range propParams() {
		p, err := NewProblem(square(40), params)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		e := NewEval(p, nil)
		e.SetCrossCheck(true)
		e.Add(geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40})
		e.Add(randShot(rng, p, 40))
		e.SetShot(1, randShot(rng, p, 40))
		delta := e.DeltaCost(0, geom.Rect{X0: 1, Y0: 0, X1: 40, Y1: 40})
		e.ApplyDelta(0, geom.Rect{X0: 1, Y0: 0, X1: 40, Y1: 40}, delta)
		e.Remove(1)
		e.Reset([]geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}})
		_ = name
	}
}

// TestEvalUndoRemove checks that UndoRemove restores both the exact
// shot order and the violation state after a speculative Remove, for
// the middle-of-list (swap happened) and last-shot (no swap) cases.
func TestEvalUndoRemove(t *testing.T) {
	p := mustProblem(t, square(60))
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 20, Y1: 60},
		{X0: 18, Y0: 0, X1: 40, Y1: 60},
		{X0: 38, Y0: 0, X1: 60, Y1: 60},
	}
	for i := range shots {
		e := NewEval(p, shots)
		before := e.Stats()
		s := e.Shots[i]
		e.Remove(i)
		e.UndoRemove(i, s)
		for j, want := range shots {
			if e.Shots[j] != want {
				t.Fatalf("remove/undo %d: shot %d = %v, want %v", i, j, e.Shots[j], want)
			}
		}
		after := e.Stats()
		if after.FailOn != before.FailOn || after.FailOff != before.FailOff ||
			math.Abs(after.Cost-before.Cost) > costTol {
			t.Fatalf("remove/undo %d: stats %+v, want %+v", i, after, before)
		}
		checkAgainstScratch(t, e, "undo")
	}
}

// TestEvalReset checks that Reset swaps in a new configuration and
// rebuilds state equal to constructing a fresh evaluator.
func TestEvalReset(t *testing.T) {
	p := mustProblem(t, square(40))
	e := NewEval(p, []geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}})
	target := []geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 40}, {X0: 5, Y0: 5, X1: 20, Y1: 20}}
	e.Reset(target)
	fresh := NewEval(p, target)
	if e.Stats() != fresh.Stats() {
		t.Fatalf("reset stats %+v != fresh %+v", e.stats, fresh.stats)
	}
	checkAgainstScratch(t, e, "reset")
}

// TestEvalStatsIsMaintained locks in the O(1) Stats contract: the
// value returned without any scan equals a forced full recompute.
func TestEvalStatsIsMaintained(t *testing.T) {
	p := mustProblem(t, square(50))
	rng := rand.New(rand.NewSource(11))
	e := NewEval(p, nil)
	for i := 0; i < 25; i++ {
		e.Add(randShot(rng, p, 50))
		if i%3 == 0 && len(e.Shots) > 1 {
			e.Remove(rng.Intn(len(e.Shots)))
		}
	}
	st := e.Stats()
	re := e.RecomputeStats()
	if st.FailOn != re.FailOn || st.FailOff != re.FailOff || math.Abs(st.Cost-re.Cost) > costTol {
		t.Fatalf("maintained %+v != recomputed %+v", st, re)
	}
	if e.Stats().Cost != re.Cost {
		t.Error("RecomputeStats did not re-anchor the maintained cost")
	}
}

// TestEvalEffortCounters checks the per-evaluator effort bookkeeping:
// mutations and pixel counts move with each operation and strip commits
// visit far fewer pixels than the grid.
func TestEvalEffortCounters(t *testing.T) {
	p := mustProblem(t, square(60))
	e := NewEval(p, nil)
	if e.Mutations != 0 || e.PixelsMutated != 0 || e.PixelsScored != 0 {
		t.Fatalf("fresh evaluator has effort %d/%d/%d", e.Mutations, e.PixelsMutated, e.PixelsScored)
	}
	e.Add(geom.Rect{X0: 0, Y0: 0, X1: 60, Y1: 60})
	if e.Mutations != 1 || e.PixelsMutated == 0 {
		t.Fatalf("after Add: mutations %d pixels %d", e.Mutations, e.PixelsMutated)
	}
	nr := geom.Rect{X0: 0, Y0: 0, X1: 61, Y1: 60}
	if e.DeltaCost(0, nr); e.PixelsScored == 0 {
		t.Fatal("DeltaCost scored no pixels")
	}
	before := e.PixelsMutated
	e.SetShot(0, nr)
	stripPx := e.PixelsMutated - before
	if stripPx == 0 {
		t.Fatal("SetShot commit scanned no pixels")
	}
	if grid := int64(p.Grid.Len()); stripPx*2 > grid {
		t.Fatalf("single-edge commit scanned %d of %d grid pixels; strips should be far smaller", stripPx, grid)
	}
	if got := EvalCounters(); got.Mutations == 0 || got.PixelsMutated == 0 {
		t.Errorf("process-wide counters did not move: %+v", got)
	}
}

// TestFailingBitmapsLive documents the shared-view contract: the
// returned bitmaps are the maintained state and reflect mutations made
// after the call.
func TestFailingBitmapsLive(t *testing.T) {
	p := mustProblem(t, square(40))
	e := NewEval(p, nil)
	failOn, _ := e.FailingBitmaps()
	if failOn.Count() != p.OnCount() {
		t.Fatalf("empty config: %d failing interior pixels, want %d", failOn.Count(), p.OnCount())
	}
	e.Add(geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40})
	if failOn.Count() == p.OnCount() {
		t.Error("bitmap did not update in place after Add")
	}
	again, _ := e.FailingBitmaps()
	if again != failOn {
		t.Error("FailingBitmaps returned a new bitmap; want the maintained view")
	}
}

// TestEvalMutationObserver checks the process-wide observer hook fires
// per committed mutation with a positive pixel count.
func TestEvalMutationObserver(t *testing.T) {
	var calls int
	var pixels int64
	SetMutationObserver(func(px int) { calls++; pixels += int64(px) })
	defer SetMutationObserver(nil)
	p := mustProblem(t, square(40))
	e := NewEval(p, nil)
	e.Add(geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40})
	e.SetShot(0, geom.Rect{X0: 0, Y0: 0, X1: 41, Y1: 40})
	e.Remove(0)
	if calls != 3 {
		t.Fatalf("observer fired %d times, want 3", calls)
	}
	if pixels == 0 {
		t.Error("observer saw zero pixels")
	}
}
