package cover

import (
	"math"
	"math/rand"
	"testing"

	"maskfrac/internal/ebeam"
	"maskfrac/internal/geom"
)

// TestUnionIsLShot pins the compatibility predicate on the shape
// taxonomy: L (one uncovered bounding-box corner), plain rectangle
// coverage, T, staircase, plus, corner-point touch and disjoint pairs.
func TestUnionIsLShot(t *testing.T) {
	r := func(x0, y0, x1, y1 float64) geom.Rect {
		return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
	}
	cases := []struct {
		name string
		a, b geom.Rect
		want bool
	}{
		{"flush L", r(0, 0, 30, 10), r(0, 10, 10, 30), true},
		{"overlapping L", r(0, 0, 30, 10), r(0, 0, 10, 30), true},
		{"small overlap L", r(0, 0, 30, 10), r(0, 8, 10, 30), true},
		{"mirrored L", r(0, 0, 30, 10), r(20, 10, 30, 30), true},
		{"T shape", r(0, 0, 30, 10), r(10, 10, 20, 30), false},
		{"staircase", r(0, 0, 20, 20), r(10, 10, 30, 30), false},
		{"plus", r(10, 0, 20, 30), r(0, 10, 30, 20), false},
		{"corner touch", r(0, 0, 10, 10), r(10, 10, 20, 20), false},
		{"disjoint", r(0, 0, 10, 10), r(20, 0, 30, 10), false},
		{"contained", r(0, 0, 30, 30), r(5, 5, 10, 10), false},
		{"identical", r(0, 0, 10, 10), r(0, 0, 10, 10), false},
		{"exact stack (rect union)", r(0, 0, 30, 10), r(0, 10, 30, 30), false},
		{"empty arm", geom.Rect{}, r(0, 0, 10, 10), false},
	}
	for _, tc := range cases {
		if got := UnionIsLShot(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: UnionIsLShot(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		if got := UnionIsLShot(tc.b, tc.a); got != tc.want {
			t.Errorf("%s (swapped): UnionIsLShot(%v, %v) = %v, want %v", tc.name, tc.b, tc.a, got, tc.want)
		}
	}
}

// checkAgainstScratchPaired asserts the maintained violation state of a
// (possibly L-paired) evaluator equals a from-scratch EvaluatePaired of
// its configuration, and that the partner table is symmetric.
func checkAgainstScratchPaired(t *testing.T, e *Eval, context string) {
	t.Helper()
	for i, p := range e.partner {
		if p >= 0 && e.partner[p] != i {
			t.Fatalf("%s: partner table asymmetric: partner[%d]=%d but partner[%d]=%d",
				context, i, p, p, e.partner[p])
		}
	}
	p := e.P
	st := e.stats
	scratch := p.EvaluatePaired(e.SnapshotShots(), e.Pairs())
	if st.FailOn != scratch.FailOn || st.FailOff != scratch.FailOff {
		t.Fatalf("%s: maintained fail counts %d/%d != from-scratch %d/%d",
			context, st.FailOn, st.FailOff, scratch.FailOn, scratch.FailOff)
	}
	if math.Abs(st.Cost-scratch.Cost) > costTol {
		t.Fatalf("%s: maintained cost %g != from-scratch %g", context, st.Cost, scratch.Cost)
	}
	failOn, failOff := e.FailingBitmaps()
	rho := p.Params.Rho
	for k, c := range p.Class {
		v := e.Dose.V[k]
		wantOn := c == On && v < rho
		wantOff := c == Off && v >= rho
		if failOn.Bits[k] != wantOn || failOff.Bits[k] != wantOff {
			t.Fatalf("%s: bitmap mismatch at pixel %d (class %d dose %g)", context, k, c, v)
		}
	}
}

// unpairedPair picks two distinct unpaired shot indices, or (-1, -1).
func unpairedPair(rng *rand.Rand, e *Eval) (int, int) {
	var free []int
	for i, p := range e.partner {
		if p < 0 {
			free = append(free, i)
		}
	}
	if len(free) < 2 {
		return -1, -1
	}
	i := rng.Intn(len(free))
	j := rng.Intn(len(free) - 1)
	if j >= i {
		j++
	}
	return free[i], free[j]
}

// pairedIndex picks a random paired shot index, or -1.
func pairedIndex(rng *rand.Rand, e *Eval) int {
	var paired []int
	for i, p := range e.partner {
		if p >= 0 {
			paired = append(paired, i)
		}
	}
	if len(paired) == 0 {
		return -1
	}
	return paired[rng.Intn(len(paired))]
}

// TestEvalPropertyIncrementalPairedMatchesScratch extends the PR 4
// property harness to the L-shot primitive: random mutation sequences
// mixing Add, Remove (including of paired shots, exercising the
// auto-unpair path), SetShot on paired arms (exercising the overlap
// re-point), score-then-commit ApplyDelta on paired arms (exercising
// the multi-term termScan), Pair and Unpair. After every sequence the
// incrementally maintained state must equal EvaluatePaired from
// scratch. 60 sequences on each of the two proximity models = 120
// random mutation sequences.
func TestEvalPropertyIncrementalPairedMatchesScratch(t *testing.T) {
	const side = 60.0
	defer ebeam.SetProfileCheck(ebeam.SetProfileCheck(true))
	for name, params := range propParams() {
		t.Run(name, func(t *testing.T) {
			p, err := NewProblem(square(side), params)
			if err != nil {
				t.Fatal(err)
			}
			for seq := 0; seq < 60; seq++ {
				rng := rand.New(rand.NewSource(int64(5000 + seq)))
				e := NewEval(p, []geom.Rect{randShot(rng, p, side), randShot(rng, p, side)})
				for op := 0; op < 40; op++ {
					switch choice := rng.Intn(12); {
					case choice < 3 || len(e.Shots) < 2: // Add
						e.Add(randShot(rng, p, side))
					case choice < 5: // Remove (paired shots auto-unpair)
						e.Remove(rng.Intn(len(e.Shots)))
					case choice < 7: // SetShot, possibly on a paired arm
						e.SetShot(rng.Intn(len(e.Shots)), randShot(rng, p, side))
					case choice < 9: // score-then-commit via ApplyDelta
						i := rng.Intn(len(e.Shots))
						nr := e.Shots[i]
						nr.X1 += p.Params.Pitch * float64(1+rng.Intn(3))
						nr.Y0 -= p.Params.Pitch * float64(rng.Intn(2))
						before := e.Stats().Cost
						delta := e.DeltaCost(i, nr)
						e.ApplyDelta(i, nr, delta)
						// a scored delta must match the realized change
						// (unless the feasible re-anchor fired)
						if after := e.Stats(); after.Fail() > 0 {
							got := after.Cost - before
							if math.Abs(got-delta) > costTol+1e-9*math.Abs(before) {
								t.Fatalf("seq %d op %d: scored delta %g, realized %g (paired=%v)",
									seq, op, delta, got, e.Partner(i) >= 0)
							}
						}
					case choice < 11: // Pair two unpaired shots
						if i, j := unpairedPair(rng, e); i >= 0 {
							before := e.Stats().Cost
							delta := e.PairDelta(i, j)
							e.Pair(i, j)
							if after := e.Stats(); after.Fail() > 0 {
								got := after.Cost - before
								if math.Abs(got-delta) > costTol+1e-9*math.Abs(before) {
									t.Fatalf("seq %d op %d: PairDelta scored %g, realized %g", seq, op, delta, got)
								}
							}
						}
					default: // Unpair
						if i := pairedIndex(rng, e); i >= 0 {
							before := e.Stats().Cost
							delta := e.UnpairDelta(i)
							e.Unpair(i)
							if after := e.Stats(); after.Fail() > 0 {
								got := after.Cost - before
								if math.Abs(got-delta) > costTol+1e-9*math.Abs(before) {
									t.Fatalf("seq %d op %d: UnpairDelta scored %g, realized %g", seq, op, delta, got)
								}
							}
						}
					}
				}
				checkAgainstScratchPaired(t, e, name)
				e.Close()
			}
		})
	}
}

// TestEvalPairedCrossCheckMode drives the paired mutators with the
// debug cross-check enabled, so every mutation self-verifies against
// both the evaluator's own dose field and EvaluatePaired from scratch.
func TestEvalPairedCrossCheckMode(t *testing.T) {
	for name, params := range propParams() {
		p, err := NewProblem(square(40), params)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEval(p, nil)
		e.SetCrossCheck(true)
		e.Add(geom.Rect{X0: 0, Y0: 0, X1: 40, Y1: 12})
		e.Add(geom.Rect{X0: 0, Y0: 10, X1: 14, Y1: 40})
		e.Add(geom.Rect{X0: 12, Y0: 10, X1: 40, Y1: 40})
		e.Pair(0, 1)
		// move the paired arm: overlap shrinks to flush and regrows
		e.SetShot(1, geom.Rect{X0: 0, Y0: 12, X1: 14, Y1: 40})
		e.SetShot(1, geom.Rect{X0: 0, Y0: 9, X1: 14, Y1: 40})
		nr := geom.Rect{X0: 0, Y0: 8, X1: 15, Y1: 40}
		delta := e.DeltaCost(1, nr)
		e.ApplyDelta(1, nr, delta)
		e.Unpair(0)
		e.Pair(1, 2)
		e.Remove(1) // removing a paired shot splits the pair first
		e.ResetPaired(
			[]geom.Rect{{X0: 0, Y0: 0, X1: 40, Y1: 12}, {X0: 0, Y0: 10, X1: 14, Y1: 40}},
			[][2]int{{0, 1}},
		)
		if e.FlashCount() != 1 || e.PairCount() != 1 {
			t.Fatalf("%s: after ResetPaired: flashes %d pairs %d, want 1/1", name, e.FlashCount(), e.PairCount())
		}
		e.Close()
	}
}

// TestEvalPairBookkeeping pins the structural pairing contract: flash
// counts, Pairs ordering, Remove's swap-delete partner redirection and
// Reset clearing all pairs.
func TestEvalPairBookkeeping(t *testing.T) {
	p := mustProblem(t, square(60))
	shots := []geom.Rect{
		{X0: 0, Y0: 0, X1: 60, Y1: 20},
		{X0: 0, Y0: 20, X1: 20, Y1: 60},
		{X0: 20, Y0: 20, X1: 60, Y1: 40},
		{X0: 40, Y0: 40, X1: 60, Y1: 60},
	}
	e := NewEval(p, shots)
	if e.FlashCount() != 4 {
		t.Fatalf("unpaired flash count %d, want 4", e.FlashCount())
	}
	e.Pair(0, 1)
	e.Pair(3, 2)
	if e.FlashCount() != 2 || e.PairCount() != 2 {
		t.Fatalf("flashes %d pairs %d, want 2/2", e.FlashCount(), e.PairCount())
	}
	pairs := e.Pairs()
	if len(pairs) != 2 || pairs[0] != [2]int{0, 1} || pairs[1] != [2]int{2, 3} {
		t.Fatalf("Pairs() = %v, want [[0 1] [2 3]]", pairs)
	}
	// removing shot 1 splits pair {0,1} and swap-moves shot 3 (paired
	// with 2) into slot 1; the partner table must follow the move
	e.Remove(1)
	if e.Partner(0) != -1 {
		t.Fatalf("partner(0) = %d after removing its pair, want -1", e.Partner(0))
	}
	if e.Partner(1) != 2 || e.Partner(2) != 1 {
		t.Fatalf("swap-delete partners: partner(1)=%d partner(2)=%d, want 2/1", e.Partner(1), e.Partner(2))
	}
	checkAgainstScratchPaired(t, e, "after remove")
	e.Reset(shots)
	if e.PairCount() != 0 {
		t.Fatalf("Reset kept %d pairs, want 0", e.PairCount())
	}
	e.Close()
}
