package maskio

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"maskfrac/internal/geom"
)

func unitRect(w, h float64) geom.Polygon {
	return geom.Polygon{geom.Pt(0, 0), geom.Pt(w, 0), geom.Pt(w, h), geom.Pt(0, h)}
}

func lShape() geom.Polygon {
	return geom.Polygon{
		geom.Pt(0, 0), geom.Pt(60, 0), geom.Pt(60, 20),
		geom.Pt(20, 20), geom.Pt(20, 80), geom.Pt(0, 80),
	}
}

// deepLib builds a 4-level hierarchy: leaf boundaries, a cell placing
// the leaf with rotation and mirror, an AREF array of that cell, and a
// top cell placing two arrays (one rotated).
func deepLib() *Library {
	return &Library{
		Name: "deep",
		Cells: []*Cell{
			{Name: "leaf", Boundaries: []geom.Polygon{unitRect(30, 10), lShape()}},
			{Name: "pair", Refs: []Ref{
				{Cell: "leaf", Orient: OrientIdentity, Origin: geom.Pt(0, 0), Cols: 1, Rows: 1},
				{Cell: "leaf", Orient: OrientRot90, Origin: geom.Pt(200, 0), Cols: 1, Rows: 1},
				{Cell: "leaf", Orient: OrientMirrorY, Origin: geom.Pt(0, 200), Cols: 1, Rows: 1},
			}},
			{Name: "block", Refs: []Ref{
				{Cell: "pair", Orient: OrientIdentity, Origin: geom.Pt(0, 0),
					Cols: 3, Rows: 2, ColStep: geom.Pt(400, 0), RowStep: geom.Pt(0, 400)},
			}},
			{Name: "top", Refs: []Ref{
				{Cell: "block", Orient: OrientIdentity, Origin: geom.Pt(0, 0), Cols: 1, Rows: 1},
				{Cell: "block", Orient: OrientRot180, Origin: geom.Pt(5000, 5000), Cols: 1, Rows: 1},
				{Cell: "leaf", Orient: OrientTranspose, Origin: geom.Pt(-300, -300), Cols: 1, Rows: 1},
			}},
		},
	}
}

func TestOrientGroupLaws(t *testing.T) {
	pts := []geom.Point{geom.Pt(3, 7), geom.Pt(-2, 5), geom.Pt(0, -4)}
	for a := Orient(0); a < numOrients; a++ {
		// identity composition
		if a.Compose(OrientIdentity) != a || OrientIdentity.Compose(a) != a {
			t.Errorf("identity law fails for %d", a)
		}
		// compose agrees with pointwise application
		for b := Orient(0); b < numOrients; b++ {
			c := a.Compose(b)
			for _, p := range pts {
				if got, want := c.Apply(p), a.Apply(b.Apply(p)); got != want {
					t.Fatalf("compose(%d,%d): %v != %v at %v", a, b, got, want, p)
				}
			}
		}
		// every element has an inverse in the group
		inv := false
		for b := Orient(0); b < numOrients; b++ {
			if a.Compose(b) == OrientIdentity {
				inv = true
			}
		}
		if !inv {
			t.Errorf("no inverse for %d", a)
		}
	}
}

func TestOrientGDSRoundTrip(t *testing.T) {
	for o := Orient(0); o < numOrients; o++ {
		refl, angle := o.gdsSpec()
		back, err := orientFromGDS(refl, angle)
		if err != nil {
			t.Fatalf("orient %d: %v", o, err)
		}
		if back != o {
			t.Errorf("orient %d: gds spec (%v, %g) decodes to %d", o, refl, angle, back)
		}
	}
	if _, err := orientFromGDS(false, 45); err == nil {
		t.Error("45 degree angle accepted")
	}
}

func TestPlacementCountDeepHierarchy(t *testing.T) {
	lib := deepLib()
	n, err := lib.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}
	// leaf = 2 shapes; pair = 3 leaves = 6; block = 3*2 pairs = 36;
	// top = 2 blocks + 1 leaf = 74
	if n != 74 {
		t.Fatalf("PlacementCount = %d, want 74", n)
	}
	// Walk agrees and numbers placements 0..n-1 in order
	var seqs []int64
	if err := lib.Walk(func(p Placement) error {
		seqs = append(seqs, p.Seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(seqs)) != n {
		t.Fatalf("walked %d placements, count says %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("placement %d has seq %d", i, s)
		}
	}
}

// TestPlacementCountNoFlatten proves counting never expands arrays: a
// three-level nest of 1000x1000 AREFs (10^12 leaf placements) counts in
// microseconds.
func TestPlacementCountNoFlatten(t *testing.T) {
	lib := &Library{Name: "huge", Cells: []*Cell{
		{Name: "leaf", Boundaries: []geom.Polygon{unitRect(10, 10)}},
		{Name: "mid", Refs: []Ref{{Cell: "leaf", Cols: 1000, Rows: 1000,
			ColStep: geom.Pt(20, 0), RowStep: geom.Pt(0, 20)}}},
		{Name: "top", Refs: []Ref{{Cell: "mid", Cols: 1000, Rows: 1000,
			ColStep: geom.Pt(20000, 0), RowStep: geom.Pt(0, 20000)}}},
	}}
	n, err := lib.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1_000_000_000_000 {
		t.Fatalf("PlacementCount = %d, want 10^12", n)
	}
}

// TestWalkStreamsWithoutFlattening walks a library whose flattened size
// is a trillion placements but stops after the first 1000 via the
// callback error, proving emission is streaming rather than
// collect-then-iterate.
func TestWalkStreamsWithoutFlattening(t *testing.T) {
	lib := &Library{Name: "huge", Cells: []*Cell{
		{Name: "leaf", Boundaries: []geom.Polygon{unitRect(10, 10)}},
		{Name: "mid", Refs: []Ref{{Cell: "leaf", Cols: 1000, Rows: 1000,
			ColStep: geom.Pt(20, 0), RowStep: geom.Pt(0, 20)}}},
		{Name: "top", Refs: []Ref{{Cell: "mid", Cols: 1000, Rows: 1000,
			ColStep: geom.Pt(20000, 0), RowStep: geom.Pt(0, 20000)}}},
	}}
	stop := errors.New("enough")
	seen := 0
	err := lib.Walk(func(p Placement) error {
		seen++
		if seen == 1000 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("walk err = %v, want sentinel", err)
	}
	if seen != 1000 {
		t.Fatalf("saw %d placements", seen)
	}
}

func TestWalkTransforms(t *testing.T) {
	// a single rect placed rotated 90° at (100, 0) inside a cell that is
	// itself mirrored across the horizontal axis at (0, 50): composed
	// world transform is MirrorY ∘ Rot90 applied to the rect.
	lib := &Library{Name: "xf", Cells: []*Cell{
		{Name: "leaf", Boundaries: []geom.Polygon{unitRect(30, 10)}},
		{Name: "mid", Refs: []Ref{{Cell: "leaf", Orient: OrientRot90,
			Origin: geom.Pt(100, 0), Cols: 1, Rows: 1}}},
		{Name: "top", Refs: []Ref{{Cell: "mid", Orient: OrientMirrorY,
			Origin: geom.Pt(0, 50), Cols: 1, Rows: 1}}},
	}}
	var got []Placement
	if err := lib.Walk(func(p Placement) error { got = append(got, p); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("placements = %d", len(got))
	}
	co := OrientMirrorY.Compose(OrientRot90)
	if got[0].Orient != co {
		t.Errorf("orient = %d, want %d", got[0].Orient, co)
	}
	// world vertex = MirrorY(Rot90(v) + (100,0)) + (0,50)
	want := make(geom.Polygon, 4)
	for i, v := range unitRect(30, 10) {
		q := OrientRot90.Apply(v).Add(geom.Pt(100, 0))
		want[i] = OrientMirrorY.Apply(q).Add(geom.Pt(0, 50))
	}
	if !reflect.DeepEqual(got[0].Polygon, want) {
		t.Errorf("world polygon = %v, want %v", got[0].Polygon, want)
	}
}

func TestWalkARefLattice(t *testing.T) {
	lib := &Library{Name: "aref", Cells: []*Cell{
		{Name: "leaf", Boundaries: []geom.Polygon{unitRect(5, 5)}},
		{Name: "top", Refs: []Ref{{Cell: "leaf", Origin: geom.Pt(10, 20),
			Cols: 3, Rows: 2, ColStep: geom.Pt(40, 0), RowStep: geom.Pt(0, 50)}}},
	}}
	var origins []geom.Point
	if err := lib.Walk(func(p Placement) error {
		origins = append(origins, p.Origin)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{
		geom.Pt(10, 20), geom.Pt(50, 20), geom.Pt(90, 20),
		geom.Pt(10, 70), geom.Pt(50, 70), geom.Pt(90, 70),
	}
	if !reflect.DeepEqual(origins, want) {
		t.Fatalf("origins = %v, want %v", origins, want)
	}
}

func TestLibraryValidateErrors(t *testing.T) {
	cyclic := &Library{Name: "cyc", Cells: []*Cell{
		{Name: "a", Refs: []Ref{{Cell: "b", Cols: 1, Rows: 1}}},
		{Name: "b", Refs: []Ref{{Cell: "a", Cols: 1, Rows: 1}}},
	}}
	if err := cyclic.Validate(); err == nil {
		t.Error("cyclic library validated")
	}
	dangling := &Library{Name: "dang", Cells: []*Cell{
		{Name: "a", Refs: []Ref{{Cell: "nope", Cols: 1, Rows: 1}}},
	}}
	if err := dangling.Validate(); err == nil {
		t.Error("dangling reference validated")
	}
	selfref := &Library{Name: "self", Cells: []*Cell{
		{Name: "a", Refs: []Ref{{Cell: "a", Cols: 1, Rows: 1}}},
	}}
	if err := selfref.Validate(); err == nil {
		t.Error("self reference validated")
	}
}

func TestGDSLibRoundTrip(t *testing.T) {
	lib := deepLib()
	var buf bytes.Buffer
	if err := WriteGDSLib(&buf, lib); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGDSLib(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != lib.Name {
		t.Errorf("name = %q", back.Name)
	}
	if len(back.Cells) != len(lib.Cells) {
		t.Fatalf("cells = %d, want %d", len(back.Cells), len(lib.Cells))
	}
	// placement streams must be identical: same order, same cells, same
	// orients, same world polygons
	var orig, rt []Placement
	if err := lib.Walk(func(p Placement) error { orig = append(orig, p); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := back.Walk(func(p Placement) error { rt = append(rt, p); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(rt) {
		t.Fatalf("placements %d != %d", len(orig), len(rt))
	}
	for i := range orig {
		a, b := orig[i], rt[i]
		if a.Cell != b.Cell || a.Shape != b.Shape || a.Orient != b.Orient {
			t.Fatalf("placement %d: (%s,%d,%d) != (%s,%d,%d)",
				i, a.Cell, a.Shape, a.Orient, b.Cell, b.Shape, b.Orient)
		}
		if !reflect.DeepEqual(a.Polygon, b.Polygon) {
			t.Fatalf("placement %d polygon drifted:\n%v\n%v", i, a.Polygon, b.Polygon)
		}
	}
	n, err := back.PlacementCount()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(orig)) {
		t.Fatalf("round-tripped count %d != %d", n, len(orig))
	}
}

// TestGDSLibFlatReaderCompat checks the flat ReadGDS reader still parses
// a hierarchical stream without choking on reference records (it sees
// only the dictionary boundaries).
func TestGDSLibFlatReaderCompat(t *testing.T) {
	lib := deepLib()
	var buf bytes.Buffer
	if err := WriteGDSLib(&buf, lib); err != nil {
		t.Fatal(err)
	}
	shapes, err := ReadGDS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 2 { // the two leaf boundaries
		t.Fatalf("flat reader saw %d shapes, want 2", len(shapes))
	}
}
