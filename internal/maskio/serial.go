package maskio

import (
	"encoding/binary"
	"fmt"
	"math"

	"maskfrac/internal/geom"
)

// This file holds the canonical polygon/shot serializations shared by
// the fracturing wire format (internal/fracserve) and the shape-cache
// key hash (internal/shapecache). Keeping both encodings next to the
// text formats makes maskio the single authority on how shapes leave
// process memory.

// AppendPolygon appends a canonical binary encoding of pg to buf: a
// little-endian uint32 vertex count followed by the IEEE-754 bits of
// each vertex's X and Y. The encoding is byte-stable for identical
// vertex slices, which is what content-addressed hashing needs.
func AppendPolygon(buf []byte, pg geom.Polygon) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pg)))
	for _, p := range pg {
		buf = AppendFloat64(buf, p.X)
		buf = AppendFloat64(buf, p.Y)
	}
	return buf
}

// AppendRect appends the canonical binary encoding of r to buf: the
// IEEE-754 bits of X0, Y0, X1, Y1 in little-endian order.
func AppendRect(buf []byte, r geom.Rect) []byte {
	buf = AppendFloat64(buf, r.X0)
	buf = AppendFloat64(buf, r.Y0)
	buf = AppendFloat64(buf, r.X1)
	buf = AppendFloat64(buf, r.Y1)
	return buf
}

// AppendFloat64 appends the little-endian IEEE-754 bits of v to buf.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// PolygonWire converts a polygon to its JSON wire form, a [[x,y], ...]
// vertex list.
func PolygonWire(pg geom.Polygon) [][2]float64 {
	out := make([][2]float64, len(pg))
	for i, p := range pg {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

// PolygonFromWire converts a JSON wire vertex list back to a polygon
// and validates it.
func PolygonFromWire(w [][2]float64) (geom.Polygon, error) {
	pg := make(geom.Polygon, len(w))
	for i, v := range w {
		if math.IsNaN(v[0]) || math.IsNaN(v[1]) || math.IsInf(v[0], 0) || math.IsInf(v[1], 0) {
			return nil, fmt.Errorf("maskio: vertex %d is not finite", i)
		}
		pg[i] = geom.Pt(v[0], v[1])
	}
	if err := pg.Validate(); err != nil {
		return nil, err
	}
	return pg, nil
}

// ShotsWire converts a shot list to its JSON wire form, a
// [[x0,y0,x1,y1], ...] rectangle list.
func ShotsWire(shots []geom.Rect) [][4]float64 {
	out := make([][4]float64, len(shots))
	for i, s := range shots {
		out[i] = [4]float64{s.X0, s.Y0, s.X1, s.Y1}
	}
	return out
}

// ShotsFromWire converts a JSON wire rectangle list back to shots,
// rejecting invalid or empty rectangles.
func ShotsFromWire(w [][4]float64) ([]geom.Rect, error) {
	shots := make([]geom.Rect, len(w))
	for i, v := range w {
		r := geom.Rect{X0: v[0], Y0: v[1], X1: v[2], Y1: v[3]}
		if !r.Valid() || r.Empty() {
			return nil, fmt.Errorf("maskio: shot %d is invalid: %v", i, r)
		}
		shots[i] = r
	}
	return shots, nil
}
