// GDSII hierarchy support: cell definitions, SREF/AREF cell references
// and a streaming walker. A full mask is not a flat polygon list — it is
// a small dictionary of cells placed millions of times through nested
// references, and the whole point of content-addressed fracturing is
// that the dictionary is tiny while the placement count is astronomical.
// The types here keep that asymmetry: a Library stores only the
// dictionary (cells, boundaries, references); placements are never
// materialized as a slice but streamed one at a time through Walk, and
// counted in closed form by PlacementCount.
package maskio

import (
	"fmt"
	"sort"

	"maskfrac/internal/geom"
)

// Orient is one of the eight axis-aligned placement orientations (the
// dihedral group D4): rotations by multiples of 90° with an optional
// reflection. GDSII expresses these as STRANS reflection bit (mirror
// across the x-axis, applied first) plus an ANGLE rotation; only this
// axis-aligned subgroup is supported because it is exactly the symmetry
// group the shape cache canonicalizes over — every placement of a cell
// lands in the same congruence class regardless of its Orient.
//
// The value encoding matches shapecache.Transform so the two can be
// converted by value, but maskio cannot import shapecache (the
// dependency runs the other way).
type Orient uint8

const (
	OrientIdentity      Orient = iota // (x, y)
	OrientRot90                       // (-y, x)
	OrientRot180                      // (-x, -y)
	OrientRot270                      // (y, -x)
	OrientMirrorX                     // (-x, y): reflect across the vertical axis
	OrientMirrorY                     // (x, -y): reflect across the horizontal axis
	OrientTranspose                   // (y, x)
	OrientAntiTranspose               // (-y, -x)
	numOrients
)

// Apply maps a point through the orientation.
func (o Orient) Apply(p geom.Point) geom.Point {
	switch o {
	case OrientRot90:
		return geom.Pt(-p.Y, p.X)
	case OrientRot180:
		return geom.Pt(-p.X, -p.Y)
	case OrientRot270:
		return geom.Pt(p.Y, -p.X)
	case OrientMirrorX:
		return geom.Pt(-p.X, p.Y)
	case OrientMirrorY:
		return geom.Pt(p.X, -p.Y)
	case OrientTranspose:
		return geom.Pt(p.Y, p.X)
	case OrientAntiTranspose:
		return geom.Pt(-p.Y, -p.X)
	default:
		return p
	}
}

// Mirrors reports whether the orientation reverses handedness
// (determinant -1).
func (o Orient) Mirrors() bool { return o >= OrientMirrorX }

// orientCompose[a][b] is the orientation equal to applying b first, then
// a (function composition a∘b), built once by probing the action on two
// independent points.
var orientCompose = func() (tbl [numOrients][numOrients]Orient) {
	e1, e2 := geom.Pt(1, 0), geom.Pt(0, 2)
	for a := Orient(0); a < numOrients; a++ {
		for b := Orient(0); b < numOrients; b++ {
			p, q := a.Apply(b.Apply(e1)), a.Apply(b.Apply(e2))
			for c := Orient(0); c < numOrients; c++ {
				if c.Apply(e1) == p && c.Apply(e2) == q {
					tbl[a][b] = c
					break
				}
			}
		}
	}
	return tbl
}()

// Compose returns the orientation applying q first, then o.
func (o Orient) Compose(q Orient) Orient { return orientCompose[o][q] }

// gdsSpec returns the STRANS reflection flag and ANGLE degrees encoding
// o in a GDSII reference: reflection across the x-axis first (MirrorY),
// then a counterclockwise rotation.
func (o Orient) gdsSpec() (reflect bool, angle float64) {
	switch o {
	case OrientRot90:
		return false, 90
	case OrientRot180:
		return false, 180
	case OrientRot270:
		return false, 270
	case OrientMirrorY:
		return true, 0
	case OrientTranspose:
		return true, 90 // rot90 ∘ mirrorY
	case OrientMirrorX:
		return true, 180 // rot180 ∘ mirrorY
	case OrientAntiTranspose:
		return true, 270 // rot270 ∘ mirrorY
	default:
		return false, 0
	}
}

// orientFromGDS maps a STRANS reflection flag and ANGLE rotation back to
// an Orient. Only multiples of 90° are representable.
func orientFromGDS(reflect bool, angle float64) (Orient, error) {
	quarter := int(angle / 90)
	if float64(quarter)*90 != angle || quarter < 0 || quarter > 3 {
		return 0, fmt.Errorf("maskio: unsupported reference angle %g (need a multiple of 90 in [0, 270])", angle)
	}
	rot := [4]Orient{OrientIdentity, OrientRot90, OrientRot180, OrientRot270}[quarter]
	if !reflect {
		return rot, nil
	}
	return rot.Compose(OrientMirrorY), nil
}

// Ref is one cell reference: an SREF (Cols = Rows = 1) or an AREF
// lattice of Cols × Rows placements. Origin and the step vectors are in
// the containing cell's coordinate frame; the referenced cell's contents
// are mapped through Orient and then translated, so placement (i, j)
// puts the cell origin at Origin + i·ColStep + j·RowStep.
type Ref struct {
	Cell    string
	Orient  Orient
	Origin  geom.Point
	Cols    int
	Rows    int
	ColStep geom.Point // parent-frame offset between adjacent columns
	RowStep geom.Point // parent-frame offset between adjacent rows
}

// placements returns the number of lattice points the reference expands
// to (1 for an SREF).
func (r Ref) placements() int64 { return int64(r.Cols) * int64(r.Rows) }

// Cell is one structure of the layout hierarchy: its own boundary
// polygons plus references to other cells.
type Cell struct {
	Name       string
	Boundaries []geom.Polygon
	Refs       []Ref
}

// Library is a GDSII layout hierarchy: the cell dictionary, in file
// order. Memory is proportional to the dictionary, never to the
// (possibly astronomically larger) flattened placement count.
type Library struct {
	Name  string
	Cells []*Cell
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell {
	for _, c := range l.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TopCells returns the cells not referenced by any other cell, in file
// order: the roots the walker starts from.
func (l *Library) TopCells() []*Cell {
	referenced := make(map[string]bool)
	for _, c := range l.Cells {
		for _, r := range c.Refs {
			referenced[r.Cell] = true
		}
	}
	var tops []*Cell
	for _, c := range l.Cells {
		if !referenced[c.Name] {
			tops = append(tops, c)
		}
	}
	return tops
}

// Validate checks the hierarchy: every reference resolves, array refs
// have positive extents, and the reference graph is acyclic.
func (l *Library) Validate() error {
	byName := make(map[string]*Cell, len(l.Cells))
	for _, c := range l.Cells {
		if _, dup := byName[c.Name]; dup {
			return fmt.Errorf("maskio: duplicate cell %q", c.Name)
		}
		byName[c.Name] = c
	}
	for _, c := range l.Cells {
		for i, r := range c.Refs {
			if _, ok := byName[r.Cell]; !ok {
				return fmt.Errorf("maskio: cell %q ref %d: unknown cell %q", c.Name, i, r.Cell)
			}
			if r.Cols < 1 || r.Rows < 1 {
				return fmt.Errorf("maskio: cell %q ref %d: %dx%d array", c.Name, i, r.Cols, r.Rows)
			}
		}
	}
	// DFS cycle check over the reference DAG
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(l.Cells))
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("maskio: cyclic cell reference through %q", name)
		case black:
			return nil
		}
		color[name] = gray
		for _, r := range byName[name].Refs {
			if err := visit(r.Cell); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	names := make([]string, 0, len(l.Cells))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Placement is one streamed shape instance: boundary Shape of cell Cell,
// placed into the world frame by Orient followed by a translation.
// Polygon is the world-frame polygon, freshly allocated per placement —
// callers may retain it.
type Placement struct {
	// Seq is the placement's position in the deterministic walk order,
	// starting at 0.
	Seq int64
	// Cell and Shape identify the dictionary entry: boundary index Shape
	// of the named cell. All placements sharing (Cell, Shape) are
	// congruent.
	Cell  string
	Shape int
	// Orient is the composed world orientation of the placement.
	Orient Orient
	// Origin is the world-frame image of the cell origin.
	Origin geom.Point
	// Polygon is the boundary mapped to the world frame.
	Polygon geom.Polygon
}

// PlacementCount returns the number of placements Walk would emit,
// computed in closed form over the hierarchy DAG — O(cells + refs) time
// regardless of array extents, which is what makes it usable on
// full-mask layouts whose flattened size does not fit in memory.
func (l *Library) PlacementCount() (int64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	memo := make(map[string]int64, len(l.Cells))
	var count func(c *Cell) int64
	count = func(c *Cell) int64 {
		if n, ok := memo[c.Name]; ok {
			return n
		}
		n := int64(len(c.Boundaries))
		for _, r := range c.Refs {
			n += r.placements() * count(l.Cell(r.Cell))
		}
		memo[c.Name] = n
		return n
	}
	var total int64
	for _, top := range l.TopCells() {
		total += count(top)
	}
	return total, nil
}

// Walk streams every shape placement of the hierarchy, in a
// deterministic order (top cells in file order; within a cell,
// boundaries first, then references in file order; array elements
// row-major), calling fn once per placement. Memory is O(hierarchy
// depth): placements are emitted as they are derived, never collected.
// If fn returns an error the walk stops and returns it, so callers can
// terminate early.
func (l *Library) Walk(fn func(Placement) error) error {
	if err := l.Validate(); err != nil {
		return err
	}
	seq := int64(0)
	var walk func(c *Cell, o Orient, off geom.Point) error
	walk = func(c *Cell, o Orient, off geom.Point) error {
		for si, b := range c.Boundaries {
			world := make(geom.Polygon, len(b))
			for i, p := range b {
				world[i] = o.Apply(p).Add(off)
			}
			pl := Placement{Seq: seq, Cell: c.Name, Shape: si, Orient: o, Origin: off, Polygon: world}
			seq++
			if err := fn(pl); err != nil {
				return err
			}
		}
		for _, r := range c.Refs {
			child := l.Cell(r.Cell)
			co := o.Compose(r.Orient)
			for j := 0; j < r.Rows; j++ {
				for i := 0; i < r.Cols; i++ {
					elem := geom.Pt(
						r.Origin.X+float64(i)*r.ColStep.X+float64(j)*r.RowStep.X,
						r.Origin.Y+float64(i)*r.ColStep.Y+float64(j)*r.RowStep.Y,
					)
					if err := walk(child, co, o.Apply(elem).Add(off)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, top := range l.TopCells() {
		if err := walk(top, OrientIdentity, geom.Pt(0, 0)); err != nil {
			return err
		}
	}
	return nil
}
