// Package maskio reads and writes mask shapes and shot lists in small
// text formats, replacing the OpenAccess API the paper's implementation
// uses for layout I/O.
//
// Shape format (.msk): one shape per block.
//
//	shape <name>
//	v <x> <y>        # one vertex per line, in order
//	end
//
// Lines starting with '#' and blank lines are ignored. Shot list format
// (.shots): one shot per line, "x0 y0 x1 y1".
package maskio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maskfrac/internal/geom"
)

// NamedShape couples a polygon with its benchmark name.
type NamedShape struct {
	Name    string
	Polygon geom.Polygon
}

// WriteShapes writes shapes in .msk format.
func WriteShapes(w io.Writer, shapes []NamedShape) error {
	bw := bufio.NewWriter(w)
	for _, s := range shapes {
		if _, err := fmt.Fprintf(bw, "shape %s\n", s.Name); err != nil {
			return err
		}
		for _, p := range s.Polygon {
			if _, err := fmt.Fprintf(bw, "v %g %g\n", p.X, p.Y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "end"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShapes parses .msk-format shapes.
func ReadShapes(r io.Reader) ([]NamedShape, error) {
	sc := bufio.NewScanner(r)
	var shapes []NamedShape
	var cur *NamedShape
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "shape":
			if cur != nil {
				return nil, fmt.Errorf("maskio: line %d: nested shape", line)
			}
			name := "unnamed"
			if len(fields) > 1 {
				name = fields[1]
			}
			cur = &NamedShape{Name: name}
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("maskio: line %d: vertex outside shape", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("maskio: line %d: want 'v x y'", line)
			}
			x, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("maskio: line %d: %v", line, err)
			}
			y, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("maskio: line %d: %v", line, err)
			}
			cur.Polygon = append(cur.Polygon, geom.Pt(x, y))
		case "end":
			if cur == nil {
				return nil, fmt.Errorf("maskio: line %d: end outside shape", line)
			}
			if err := cur.Polygon.Validate(); err != nil {
				return nil, fmt.Errorf("maskio: shape %q: %w", cur.Name, err)
			}
			shapes = append(shapes, *cur)
			cur = nil
		default:
			return nil, fmt.Errorf("maskio: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("maskio: unterminated shape %q", cur.Name)
	}
	return shapes, nil
}

// WriteShots writes a shot list, one "x0 y0 x1 y1" per line.
func WriteShots(w io.Writer, shots []geom.Rect) error {
	bw := bufio.NewWriter(w)
	for _, s := range shots {
		if _, err := fmt.Fprintf(bw, "%g %g %g %g\n", s.X0, s.Y0, s.X1, s.Y1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadShots parses a shot list written by WriteShots.
func ReadShots(r io.Reader) ([]geom.Rect, error) {
	sc := bufio.NewScanner(r)
	var shots []geom.Rect
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("maskio: line %d: want 'x0 y0 x1 y1'", line)
		}
		var v [4]float64
		for i, f := range fields {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("maskio: line %d: %v", line, err)
			}
			v[i] = x
		}
		r := geom.Rect{X0: v[0], Y0: v[1], X1: v[2], Y1: v[3]}
		if !r.Valid() || r.Empty() {
			return nil, fmt.Errorf("maskio: line %d: invalid shot %v", line, r)
		}
		shots = append(shots, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return shots, nil
}
