// GDSII stream format support: the industry-standard binary layout
// interchange format mask shapes actually arrive in. Each shape is
// stored as one structure containing one BOUNDARY element; coordinates
// are written in database units of 1 picometer (1000 dbu per nm) so the
// sub-nanometer vertices produced by contour extraction survive the
// round trip.
package maskio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"maskfrac/internal/geom"
)

// GDSII record types used here.
const (
	recHeader   = 0x00
	recBgnLib   = 0x01
	recLibName  = 0x02
	recUnits    = 0x03
	recEndLib   = 0x04
	recBgnStr   = 0x05
	recStrName  = 0x06
	recEndStr   = 0x07
	recBoundary = 0x08
	recLayer    = 0x0D
	recDatatype = 0x0E
	recXY       = 0x10
	recEndEl    = 0x11
)

// GDSII data types.
const (
	dtNone   = 0x00
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal8  = 0x05
	dtString = 0x06
)

// dbuPerNm is the database resolution: 1000 database units per
// nanometer (1 dbu = 1 pm).
const dbuPerNm = 1000

// WriteGDS writes shapes as a GDSII stream library. Every shape becomes
// a structure of its own name holding a single BOUNDARY on layer 0.
func WriteGDS(w io.Writer, libname string, shapes []NamedShape) error {
	bw := bufio.NewWriter(w)
	enc := gdsEncoder{w: bw}
	enc.record(recHeader, dtInt16, i16bytes(600)) // stream version 6
	enc.record(recBgnLib, dtInt16, make([]byte, 24))
	enc.record(recLibName, dtString, strbytes(libname))
	// UNITS: dbu per user unit (0.001 user units = 1 dbu when the user
	// unit is 1 nm... we store user unit = 1 µm convention: 1e-3 µm/dbu
	// would be 1 nm; with dbuPerNm = 1000 the dbu is 1e-6 µm = 1 pm),
	// then the dbu in meters (1e-12).
	units := append(real8bytes(1.0/(1000*dbuPerNm)), real8bytes(1e-12)...)
	enc.record(recUnits, dtReal8, units)
	for _, s := range shapes {
		enc.record(recBgnStr, dtInt16, make([]byte, 24))
		enc.record(recStrName, dtString, strbytes(s.Name))
		enc.record(recBoundary, dtNone, nil)
		enc.record(recLayer, dtInt16, i16bytes(0))
		enc.record(recDatatype, dtInt16, i16bytes(0))
		enc.record(recXY, dtInt32, xybytes(s.Polygon))
		enc.record(recEndEl, dtNone, nil)
		enc.record(recEndStr, dtNone, nil)
	}
	enc.record(recEndLib, dtNone, nil)
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// ReadGDS parses a GDSII stream written by WriteGDS (and any stream
// whose polygons are BOUNDARY elements). Returns one NamedShape per
// boundary, named after its enclosing structure (with an index suffix
// for structures holding several boundaries).
func ReadGDS(r io.Reader) ([]NamedShape, error) {
	br := bufio.NewReader(r)
	var shapes []NamedShape
	curName := ""
	boundaryIdx := 0
	inBoundary := false
	for {
		rec, data, err := readRecord(br)
		if err == io.EOF {
			return nil, fmt.Errorf("maskio: gds: missing ENDLIB")
		}
		if err != nil {
			return nil, err
		}
		switch rec {
		case recEndLib:
			return shapes, nil
		case recStrName:
			curName = cstring(data)
			boundaryIdx = 0
		case recBoundary:
			inBoundary = true
		case recEndEl:
			inBoundary = false
		case recXY:
			if !inBoundary {
				continue // paths/labels are ignored
			}
			pg, err := xyparse(data)
			if err != nil {
				return nil, err
			}
			name := curName
			if boundaryIdx > 0 {
				name = fmt.Sprintf("%s_%d", curName, boundaryIdx)
			}
			boundaryIdx++
			shapes = append(shapes, NamedShape{Name: name, Polygon: pg})
		}
	}
}

// gdsEncoder emits length-prefixed records, capturing the first error.
type gdsEncoder struct {
	w   io.Writer
	err error
}

// record writes one GDSII record.
func (e *gdsEncoder) record(rec, dt byte, data []byte) {
	if e.err != nil {
		return
	}
	length := 4 + len(data)
	if length > math.MaxUint16 {
		e.err = fmt.Errorf("maskio: gds record too long (%d bytes)", length)
		return
	}
	hdr := []byte{byte(length >> 8), byte(length), rec, dt}
	if _, err := e.w.Write(hdr); err != nil {
		e.err = err
		return
	}
	if _, err := e.w.Write(data); err != nil {
		e.err = err
	}
}

// readRecord reads one record header + payload.
func readRecord(r io.Reader) (rec byte, data []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := int(hdr[0])<<8 | int(hdr[1])
	if length < 4 {
		return 0, nil, fmt.Errorf("maskio: gds record length %d", length)
	}
	data = make([]byte, length-4)
	if _, err = io.ReadFull(r, data); err != nil {
		return 0, nil, fmt.Errorf("maskio: gds truncated record: %w", err)
	}
	return hdr[2], data, nil
}

// i16bytes encodes one big-endian int16.
func i16bytes(v int16) []byte {
	return []byte{byte(uint16(v) >> 8), byte(v)}
}

// strbytes encodes an even-padded ASCII string.
func strbytes(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	return b
}

// cstring strips the padding NUL.
func cstring(b []byte) string {
	if len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}

// xybytes encodes a polygon as closed int32 dbu coordinate pairs.
func xybytes(pg geom.Polygon) []byte {
	out := make([]byte, 0, 8*(len(pg)+1))
	put := func(p geom.Point) {
		x := int32(math.Round(p.X * dbuPerNm))
		y := int32(math.Round(p.Y * dbuPerNm))
		var buf [8]byte
		binary.BigEndian.PutUint32(buf[0:4], uint32(x))
		binary.BigEndian.PutUint32(buf[4:8], uint32(y))
		out = append(out, buf[:]...)
	}
	for _, p := range pg {
		put(p)
	}
	if len(pg) > 0 {
		put(pg[0]) // GDSII boundaries repeat the first vertex
	}
	return out
}

// xyparse decodes closed coordinate pairs back into a polygon.
func xyparse(data []byte) (geom.Polygon, error) {
	if len(data)%8 != 0 || len(data) < 32 {
		return nil, fmt.Errorf("maskio: gds XY payload of %d bytes", len(data))
	}
	n := len(data) / 8
	pg := make(geom.Polygon, 0, n-1)
	for i := 0; i < n; i++ {
		x := int32(binary.BigEndian.Uint32(data[8*i : 8*i+4]))
		y := int32(binary.BigEndian.Uint32(data[8*i+4 : 8*i+8]))
		pg = append(pg, geom.Pt(float64(x)/dbuPerNm, float64(y)/dbuPerNm))
	}
	// drop the repeated closing vertex
	if pg[0] == pg[len(pg)-1] {
		pg = pg[:len(pg)-1]
	}
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("maskio: gds boundary: %w", err)
	}
	return pg, nil
}

// real8bytes encodes an IEEE float64 as a GDSII 8-byte real
// (excess-64 base-16 exponent, 56-bit mantissa).
func real8bytes(v float64) []byte {
	var out [8]byte
	if v == 0 {
		return out[:]
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	// normalize: v = mantissa * 16^exp with mantissa in [1/16, 1)
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	out[0] = sign | byte(exp+64)
	mant := v
	for i := 1; i < 8; i++ {
		mant *= 256
		d := math.Floor(mant)
		out[i] = byte(d)
		mant -= d
	}
	return out[:]
}

// real8parse decodes a GDSII 8-byte real.
func real8parse(b []byte) float64 {
	if len(b) != 8 {
		return 0
	}
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7f) - 64
	mant := 0.0
	scale := 1.0
	for i := 1; i < 8; i++ {
		scale /= 256
		mant += float64(b[i]) * scale
	}
	return sign * mant * math.Pow(16, float64(exp))
}
