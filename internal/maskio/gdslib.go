// GDSII stream encoding of layout hierarchies: structures containing
// BOUNDARY elements plus SREF/AREF cell references with STRANS/ANGLE
// placement transforms. Shares the record-level encoder/decoder with
// gdsii.go; ReadGDS remains the flat single-boundary reader, while
// ReadGDSLib parses the full hierarchy into a Library.
package maskio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"maskfrac/internal/geom"
)

// Hierarchy record types (in addition to the flat-stream set in
// gdsii.go).
const (
	recSRef   = 0x0A
	recARef   = 0x0B
	recSName  = 0x12
	recColRow = 0x13
	recSTrans = 0x1A
	recMag    = 0x1B
	recAngle  = 0x1C
)

// stransReflect is the STRANS bit requesting reflection across the
// x-axis before rotation (bit 15 of the flag word).
const stransReflect = 0x8000

// WriteGDSLib writes a layout hierarchy as a GDSII stream library: one
// structure per cell, each holding its BOUNDARY elements followed by its
// SREF/AREF references. The library must validate.
func WriteGDSLib(w io.Writer, lib *Library) error {
	if err := lib.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gdsEncoder{w: bw}
	enc.record(recHeader, dtInt16, i16bytes(600))
	enc.record(recBgnLib, dtInt16, make([]byte, 24))
	enc.record(recLibName, dtString, strbytes(lib.Name))
	units := append(real8bytes(1.0/(1000*dbuPerNm)), real8bytes(1e-12)...)
	enc.record(recUnits, dtReal8, units)
	for _, c := range lib.Cells {
		enc.record(recBgnStr, dtInt16, make([]byte, 24))
		enc.record(recStrName, dtString, strbytes(c.Name))
		for _, b := range c.Boundaries {
			enc.record(recBoundary, dtNone, nil)
			enc.record(recLayer, dtInt16, i16bytes(0))
			enc.record(recDatatype, dtInt16, i16bytes(0))
			enc.record(recXY, dtInt32, xybytes(b))
			enc.record(recEndEl, dtNone, nil)
		}
		for _, r := range c.Refs {
			writeRef(&enc, r)
		}
		enc.record(recEndStr, dtNone, nil)
	}
	enc.record(recEndLib, dtNone, nil)
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// writeRef emits one SREF or AREF element.
func writeRef(enc *gdsEncoder, r Ref) {
	aref := r.Cols > 1 || r.Rows > 1
	if aref {
		enc.record(recARef, dtNone, nil)
	} else {
		enc.record(recSRef, dtNone, nil)
	}
	enc.record(recSName, dtString, strbytes(r.Cell))
	reflect, angle := r.Orient.gdsSpec()
	if reflect || angle != 0 {
		flags := uint16(0)
		if reflect {
			flags |= stransReflect
		}
		enc.record(recSTrans, dtInt16, i16bytes(int16(flags)))
		if angle != 0 {
			enc.record(recAngle, dtReal8, real8bytes(angle))
		}
	}
	if aref {
		enc.record(recColRow, dtInt16, append(i16bytes(int16(r.Cols)), i16bytes(int16(r.Rows))...))
		// AREF XY: origin, origin + Cols·ColStep, origin + Rows·RowStep
		pts := []geom.Point{
			r.Origin,
			r.Origin.Add(r.ColStep.Scale(float64(r.Cols))),
			r.Origin.Add(r.RowStep.Scale(float64(r.Rows))),
		}
		enc.record(recXY, dtInt32, ptbytes(pts))
	} else {
		enc.record(recXY, dtInt32, ptbytes([]geom.Point{r.Origin}))
	}
	enc.record(recEndEl, dtNone, nil)
}

// ptbytes encodes points as int32 dbu coordinate pairs (no implicit
// closing vertex, unlike xybytes).
func ptbytes(pts []geom.Point) []byte {
	out := make([]byte, 0, 8*len(pts))
	for _, p := range pts {
		var buf [8]byte
		binary.BigEndian.PutUint32(buf[0:4], uint32(int32(roundDBU(p.X))))
		binary.BigEndian.PutUint32(buf[4:8], uint32(int32(roundDBU(p.Y))))
		out = append(out, buf[:]...)
	}
	return out
}

func roundDBU(v float64) int64 {
	if v >= 0 {
		return int64(v*dbuPerNm + 0.5)
	}
	return -int64(-v*dbuPerNm + 0.5)
}

// ptparse decodes int32 dbu coordinate pairs.
func ptparse(data []byte) ([]geom.Point, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("maskio: gds XY payload of %d bytes", len(data))
	}
	pts := make([]geom.Point, len(data)/8)
	for i := range pts {
		x := int32(binary.BigEndian.Uint32(data[8*i : 8*i+4]))
		y := int32(binary.BigEndian.Uint32(data[8*i+4 : 8*i+8]))
		pts[i] = geom.Pt(float64(x)/dbuPerNm, float64(y)/dbuPerNm)
	}
	return pts, nil
}

// refState accumulates one SREF/AREF element while its records stream
// by.
type refState struct {
	aref    bool
	cell    string
	reflect bool
	angle   float64
	mag     float64
	cols    int
	rows    int
	pts     []geom.Point
}

// ReadGDSLib parses a GDSII stream into a layout hierarchy, including
// SREF/AREF references with axis-aligned transforms. Magnification must
// be 1 and angles multiples of 90°; PATH and TEXT elements are skipped.
// The returned library is validated.
func ReadGDSLib(r io.Reader) (*Library, error) {
	br := bufio.NewReader(r)
	lib := &Library{}
	var cur *Cell
	var ref *refState
	inBoundary := false
	for {
		rec, data, err := readRecord(br)
		if err == io.EOF {
			return nil, fmt.Errorf("maskio: gds: missing ENDLIB")
		}
		if err != nil {
			return nil, err
		}
		switch rec {
		case recEndLib:
			if err := lib.Validate(); err != nil {
				return nil, err
			}
			return lib, nil
		case recLibName:
			lib.Name = cstring(data)
		case recBgnStr:
			cur = &Cell{}
		case recStrName:
			if cur != nil {
				cur.Name = cstring(data)
			}
		case recEndStr:
			if cur != nil {
				lib.Cells = append(lib.Cells, cur)
				cur = nil
			}
		case recBoundary:
			inBoundary = true
		case recSRef:
			ref = &refState{mag: 1}
		case recARef:
			ref = &refState{aref: true, mag: 1}
		case recSName:
			if ref != nil {
				ref.cell = cstring(data)
			}
		case recSTrans:
			if ref != nil && len(data) >= 2 {
				flags := uint16(data[0])<<8 | uint16(data[1])
				ref.reflect = flags&stransReflect != 0
			}
		case recAngle:
			if ref != nil {
				ref.angle = real8parse(data)
			}
		case recMag:
			if ref != nil {
				ref.mag = real8parse(data)
			}
		case recColRow:
			if ref != nil && len(data) >= 4 {
				ref.cols = int(int16(uint16(data[0])<<8 | uint16(data[1])))
				ref.rows = int(int16(uint16(data[2])<<8 | uint16(data[3])))
			}
		case recXY:
			switch {
			case inBoundary:
				if cur == nil {
					return nil, fmt.Errorf("maskio: gds boundary outside structure")
				}
				pg, err := xyparse(data)
				if err != nil {
					return nil, err
				}
				cur.Boundaries = append(cur.Boundaries, pg)
			case ref != nil:
				pts, err := ptparse(data)
				if err != nil {
					return nil, err
				}
				ref.pts = pts
			}
		case recEndEl:
			if ref != nil {
				out, err := ref.finish()
				if err != nil {
					return nil, err
				}
				if cur == nil {
					return nil, fmt.Errorf("maskio: gds reference outside structure")
				}
				cur.Refs = append(cur.Refs, out)
				ref = nil
			}
			inBoundary = false
		}
	}
}

// finish converts the accumulated records into a Ref.
func (rs *refState) finish() (Ref, error) {
	if rs.cell == "" {
		return Ref{}, fmt.Errorf("maskio: gds reference without SNAME")
	}
	if rs.mag != 1 {
		return Ref{}, fmt.Errorf("maskio: gds ref to %q: unsupported magnification %g", rs.cell, rs.mag)
	}
	o, err := orientFromGDS(rs.reflect, rs.angle)
	if err != nil {
		return Ref{}, fmt.Errorf("maskio: gds ref to %q: %w", rs.cell, err)
	}
	out := Ref{Cell: rs.cell, Orient: o, Cols: 1, Rows: 1}
	if !rs.aref {
		if len(rs.pts) != 1 {
			return Ref{}, fmt.Errorf("maskio: gds SREF to %q: %d XY points", rs.cell, len(rs.pts))
		}
		out.Origin = rs.pts[0]
		return out, nil
	}
	if rs.cols < 1 || rs.rows < 1 {
		return Ref{}, fmt.Errorf("maskio: gds AREF to %q: %dx%d array", rs.cell, rs.cols, rs.rows)
	}
	if len(rs.pts) != 3 {
		return Ref{}, fmt.Errorf("maskio: gds AREF to %q: %d XY points", rs.cell, len(rs.pts))
	}
	out.Cols, out.Rows = rs.cols, rs.rows
	out.Origin = rs.pts[0]
	out.ColStep = rs.pts[1].Sub(out.Origin).Scale(1 / float64(rs.cols))
	out.RowStep = rs.pts[2].Sub(out.Origin).Scale(1 / float64(rs.rows))
	return out, nil
}
