package maskio

import (
	"bytes"
	"testing"

	"maskfrac/internal/geom"
)

func TestAppendPolygonStable(t *testing.T) {
	pg := geom.Polygon{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 7.5}, {X: 0, Y: 7.5}}
	a := AppendPolygon(nil, pg)
	b := AppendPolygon(nil, pg.Clone())
	if !bytes.Equal(a, b) {
		t.Error("identical polygons encode differently")
	}
	// 4-byte count + 4 vertices * 16 bytes
	if len(a) != 4+4*16 {
		t.Errorf("encoding length = %d", len(a))
	}
	c := AppendPolygon(nil, pg.Translate(geom.Pt(1, 0)))
	if bytes.Equal(a, c) {
		t.Error("distinct polygons encode identically")
	}
}

func TestAppendRect(t *testing.T) {
	r := geom.Rect{X0: 1, Y0: 2, X1: 3, Y1: 4}
	if got := len(AppendRect(nil, r)); got != 32 {
		t.Errorf("rect encoding length = %d", got)
	}
}

func TestPolygonWireRoundTrip(t *testing.T) {
	pg := geom.Polygon{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 60}, {X: 0, Y: 60}}
	back, err := PolygonFromWire(PolygonWire(pg))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pg) {
		t.Fatalf("round trip lost vertices: %d vs %d", len(back), len(pg))
	}
	for i := range pg {
		if back[i] != pg[i] {
			t.Errorf("vertex %d = %v, want %v", i, back[i], pg[i])
		}
	}
}

func TestPolygonFromWireRejectsDegenerate(t *testing.T) {
	if _, err := PolygonFromWire([][2]float64{{0, 0}, {1, 1}}); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	nan := [][2]float64{{0, 0}, {1, 0}, {0, badFloat()}}
	if _, err := PolygonFromWire(nan); err == nil {
		t.Error("NaN vertex accepted")
	}
}

func badFloat() float64 {
	z := 0.0
	return z / z
}

func TestShotsWireRoundTrip(t *testing.T) {
	shots := []geom.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 5}, {X0: -3, Y0: 2, X1: 4, Y1: 9}}
	back, err := ShotsFromWire(ShotsWire(shots))
	if err != nil {
		t.Fatal(err)
	}
	for i := range shots {
		if back[i] != shots[i] {
			t.Errorf("shot %d = %v, want %v", i, back[i], shots[i])
		}
	}
	if _, err := ShotsFromWire([][4]float64{{5, 0, 1, 1}}); err == nil {
		t.Error("inverted shot accepted")
	}
	if _, err := ShotsFromWire([][4]float64{{0, 0, 0, 5}}); err == nil {
		t.Error("empty shot accepted")
	}
}
