package maskio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"maskfrac/internal/geom"
)

func TestGDSRoundTrip(t *testing.T) {
	in := []NamedShape{
		{Name: "clip1", Polygon: geom.Polygon{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 50), geom.Pt(0, 50)}},
		{Name: "clip2", Polygon: geom.Polygon{geom.Pt(-5, -5), geom.Pt(20.25, -5), geom.Pt(10.5, 30.125)}},
	}
	var buf bytes.Buffer
	if err := WriteGDS(&buf, "testlib", in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadGDS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("shapes = %d", len(out))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("name %q != %q", out[i].Name, in[i].Name)
		}
		if len(out[i].Polygon) != len(in[i].Polygon) {
			t.Fatalf("shape %d: %d vertices, want %d", i, len(out[i].Polygon), len(in[i].Polygon))
		}
		for j, p := range in[i].Polygon {
			got := out[i].Polygon[j]
			// 1 pm database resolution
			if math.Abs(got.X-p.X) > 1e-3 || math.Abs(got.Y-p.Y) > 1e-3 {
				t.Errorf("shape %d vertex %d: %v != %v", i, j, got, p)
			}
		}
	}
}

func TestGDSHeaderStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGDS(&buf, "lib", nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// first record: HEADER, int16 data, version 600
	if b[2] != recHeader || b[3] != dtInt16 {
		t.Errorf("first record = %x %x", b[2], b[3])
	}
	if v := int(b[4])<<8 | int(b[5]); v != 600 {
		t.Errorf("version = %d", v)
	}
	// stream must end with ENDLIB
	if b[len(b)-2] != recEndLib {
		t.Errorf("last record = %x", b[len(b)-2])
	}
}

func TestGDSErrors(t *testing.T) {
	// truncated stream
	var buf bytes.Buffer
	if err := WriteGDS(&buf, "lib", []NamedShape{
		{Name: "s", Polygon: geom.Polygon{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4)}},
	}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-6]
	if _, err := ReadGDS(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
	// garbage header
	if _, err := ReadGDS(bytes.NewReader([]byte{0, 1, 2})); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReal8RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.001, 1e-12, 6.25e-9, 123456.789, -3.25e-5} {
		b := real8bytes(v)
		got := real8parse(b)
		if v == 0 {
			if got != 0 {
				t.Errorf("zero decodes to %v", got)
			}
			continue
		}
		if math.Abs(got-v)/math.Abs(v) > 1e-12 {
			t.Errorf("real8(%v) = %v", v, got)
		}
	}
}

func TestReal8Quick(t *testing.T) {
	f := func(mant int32, scale uint8) bool {
		v := float64(mant) * math.Pow(10, float64(int(scale%24)-12))
		got := real8parse(real8bytes(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGDSQuickPolygonRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 6 {
			return true
		}
		pg := make(geom.Polygon, 0, len(raw)/2)
		for i := 0; i+1 < len(raw) && len(pg) < 64; i += 2 {
			pg = append(pg, geom.Pt(float64(raw[i])/4, float64(raw[i+1])/4))
		}
		if pg.Validate() != nil {
			return true // skip degenerate random polygons
		}
		var buf bytes.Buffer
		if err := WriteGDS(&buf, "q", []NamedShape{{Name: "s", Polygon: pg}}); err != nil {
			return false
		}
		out, err := ReadGDS(&buf)
		if err != nil || len(out) != 1 || len(out[0].Polygon) != len(pg) {
			return false
		}
		for i, p := range pg {
			got := out[0].Polygon[i]
			if math.Abs(got.X-p.X) > 1e-3 || math.Abs(got.Y-p.Y) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
