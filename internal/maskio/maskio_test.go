package maskio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"maskfrac/internal/geom"
)

func TestShapesRoundTrip(t *testing.T) {
	in := []NamedShape{
		{Name: "square", Polygon: geom.Polygon{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10)}},
		{Name: "tri", Polygon: geom.Polygon{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(2.5, 4.5)}},
	}
	var buf bytes.Buffer
	if err := WriteShapes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadShapes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "square" || out[1].Name != "tri" {
		t.Fatalf("round trip = %+v", out)
	}
	for i := range in {
		if len(out[i].Polygon) != len(in[i].Polygon) {
			t.Fatalf("shape %d vertex count changed", i)
		}
		for j := range in[i].Polygon {
			if out[i].Polygon[j] != in[i].Polygon[j] {
				t.Errorf("shape %d vertex %d: %v != %v", i, j, out[i].Polygon[j], in[i].Polygon[j])
			}
		}
	}
}

func TestReadShapesComments(t *testing.T) {
	src := `
# a comment
shape s1
v 0 0
v 4 0

v 4 4
end
`
	shapes, err := ReadShapes(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 1 || len(shapes[0].Polygon) != 3 {
		t.Fatalf("parsed %+v", shapes)
	}
}

func TestReadShapesErrors(t *testing.T) {
	cases := []string{
		"v 0 0\n",                      // vertex outside shape
		"shape a\nshape b\n",           // nested
		"end\n",                        // stray end
		"shape a\nv 0\nend\n",          // bad vertex arity
		"shape a\nv x y\nend\n",        // bad numbers
		"shape a\nv 0 0\nv 1 1\nend\n", // too few vertices
		"shape a\nv 0 0\n",             // unterminated
		"bogus directive\n",            // unknown directive
	}
	for _, src := range cases {
		if _, err := ReadShapes(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad input %q", src)
		}
	}
}

func TestShotsRoundTrip(t *testing.T) {
	in := []geom.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 20},
		{X0: -5.5, Y0: 2.25, X1: 4.5, Y1: 12.75},
	}
	var buf bytes.Buffer
	if err := WriteShots(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadShots(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("shot %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestReadShotsErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",   // arity
		"1 2 3 x\n", // bad number
		"5 5 1 1\n", // inverted
		"1 1 1 5\n", // empty width
	}
	for _, src := range cases {
		if _, err := ReadShots(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad shot %q", src)
		}
	}
	// comments and blanks are fine
	shots, err := ReadShots(strings.NewReader("# c\n\n1 2 3 4\n"))
	if err != nil || len(shots) != 1 {
		t.Errorf("comment handling: %v %v", shots, err)
	}
}

func TestShotsQuickRoundTrip(t *testing.T) {
	f := func(x0, y0 int16, w, h uint8) bool {
		if w == 0 || h == 0 {
			return true
		}
		r := geom.Rect{X0: float64(x0), Y0: float64(y0), X1: float64(x0) + float64(w), Y1: float64(y0) + float64(h)}
		var buf bytes.Buffer
		if err := WriteShots(&buf, []geom.Rect{r}); err != nil {
			return false
		}
		out, err := ReadShots(&buf)
		return err == nil && len(out) == 1 && out[0] == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
