// Package writecost models variable-shaped-beam mask write time and
// mask cost as a function of shot count, reproducing the economic
// argument of the paper's introduction: shot count is proportional to
// write time, mask write is roughly 20% of mask manufacturing cost
// (dominated by e-beam tool depreciation), so a 10% shot-count
// reduction translates to about a 2% mask cost reduction — significant
// when a modern mask set exceeds a million dollars.
package writecost

import (
	"fmt"
	"time"
)

// Model holds the write-time and cost parameters.
type Model struct {
	// ShotTime is the average time per shot (exposure + settling).
	// Industry VSB tools of the era averaged a few hundred nanoseconds
	// to a microsecond per shot.
	ShotTime time.Duration
	// Overhead is the fixed per-mask write overhead (stage moves,
	// calibration, resist handling).
	Overhead time.Duration
	// WriteFraction is the share of total mask cost attributable to
	// mask write (the paper uses ≈0.20).
	WriteFraction float64
	// MaskSetCost is the cost of a full mask set in dollars (the paper
	// cites > $1M for a modern design).
	MaskSetCost float64
}

// Default returns the parameterization used by the paper's
// introduction.
func Default() Model {
	return Model{
		ShotTime:      500 * time.Nanosecond,
		Overhead:      4 * time.Hour,
		WriteFraction: 0.20,
		MaskSetCost:   1_500_000,
	}
}

// WriteTime returns the estimated write time for a mask with the given
// total shot count.
func (m Model) WriteTime(shots int64) time.Duration {
	return m.Overhead + time.Duration(shots)*m.ShotTime
}

// CostReduction returns the fractional mask cost reduction achieved by
// lowering the shot count from base to reduced, under the assumption
// that write cost scales with write time (beam time dominates) and
// write is WriteFraction of the mask cost.
func (m Model) CostReduction(base, reduced int64) float64 {
	if base <= 0 {
		return 0
	}
	shotReduction := 1 - float64(reduced)/float64(base)
	return m.WriteFraction * shotReduction
}

// DollarSavings returns the estimated savings on a full mask set from
// reducing per-mask shot counts by the same ratio.
func (m Model) DollarSavings(base, reduced int64) float64 {
	return m.MaskSetCost * m.CostReduction(base, reduced)
}

// Summary formats the headline numbers for a shot-count comparison.
func (m Model) Summary(name string, base, reduced int64) string {
	return fmt.Sprintf(
		"%s: shots %d -> %d (%.1f%% fewer), write time %v -> %v, mask cost -%.2f%%, mask set savings $%.0f",
		name, base, reduced, 100*(1-float64(reduced)/float64(base)),
		m.WriteTime(base).Round(time.Minute), m.WriteTime(reduced).Round(time.Minute),
		100*m.CostReduction(base, reduced), m.DollarSavings(base, reduced))
}
