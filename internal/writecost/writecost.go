// Package writecost models variable-shaped-beam mask write time and
// mask cost as a function of shot count, reproducing the economic
// argument of the paper's introduction: shot count is proportional to
// write time, mask write is roughly 20% of mask manufacturing cost
// (dominated by e-beam tool depreciation), so a 10% shot-count
// reduction translates to about a 2% mask cost reduction — significant
// when a modern mask set exceeds a million dollars.
//
// What the beam actually pays for is flashes, not rectangles: an
// L-shot — two overlapping rectangles sharing one dose, exposed
// through an L-shaped aperture — is one flash, so a solution with
// L-shot pairs writes in Flashes(shots, pairs) beam cycles. Every
// flash-count input below (WriteTime, WriteTimeCP, CostReduction)
// should be fed flash counts when the solver reports pairs;
// rectangle-only solutions have flashes == shots.
package writecost

import (
	"fmt"
	"time"
)

// Model holds the write-time and cost parameters.
type Model struct {
	// ShotTime is the average time per shot (exposure + settling).
	// Industry VSB tools of the era averaged a few hundred nanoseconds
	// to a microsecond per shot.
	ShotTime time.Duration
	// Overhead is the fixed per-mask write overhead (stage moves,
	// calibration, resist handling).
	Overhead time.Duration
	// WriteFraction is the share of total mask cost attributable to
	// mask write (the paper uses ≈0.20).
	WriteFraction float64
	// MaskSetCost is the cost of a full mask set in dollars (the paper
	// cites > $1M for a modern design).
	MaskSetCost float64

	// Character-projection (CP) parameters, E-BLOW-style: a CP tool
	// carries a stencil of pre-etched characters; a placement whose
	// shape is on the stencil writes in one flash instead of its
	// variable-shaped-beam shot list.

	// CPFlashTime is the time for one character-projection flash
	// (exposure + settling). A complex character needs more dose
	// settling than a plain VSB rectangle, so it is modeled slower than
	// ShotTime.
	CPFlashTime time.Duration
	// CPSlots is the number of character slots the stencil offers.
	CPSlots int
	// CPStencilW and CPStencilH bound the stencil's usable area, in
	// mask nm: selected characters must pack into this rectangle
	// without overlap.
	CPStencilW, CPStencilH float64
	// CPLoadOverhead is the fixed per-mask cost of mounting and
	// registering the stencil; a plan only pays off when its flash
	// savings beat it.
	CPLoadOverhead time.Duration
}

// Default returns the parameterization used by the paper's
// introduction.
func Default() Model {
	return Model{
		ShotTime:       500 * time.Nanosecond,
		Overhead:       4 * time.Hour,
		WriteFraction:  0.20,
		MaskSetCost:    1_500_000,
		CPFlashTime:    time.Microsecond,
		CPSlots:        40,
		CPStencilW:     2000,
		CPStencilH:     2000,
		CPLoadOverhead: time.Minute,
	}
}

// Flashes converts a shot count plus an L-shot pair count to the beam
// flash count that prices the write: each pair merges two rectangle
// shots into one L-shaped flash, so flashes = shots − pairs. Negative
// inputs and pair counts exceeding shots/2 are the caller's bug; the
// result is clamped to zero so pricing never goes negative.
func Flashes(shots, lPairs int) int64 {
	f := int64(shots) - int64(lPairs)
	if f < 0 {
		return 0
	}
	return f
}

// WriteTime returns the estimated write time for a mask with the given
// total shot count.
func (m Model) WriteTime(shots int64) time.Duration {
	return m.Overhead + time.Duration(shots)*m.ShotTime
}

// WriteTimeCP returns the estimated write time for a mask written with
// a mixed VSB + character-projection strategy: vsbShots rectangles at
// ShotTime each plus cpFlashes character flashes at CPFlashTime each.
// The stencil load overhead is paid once, and only when the stencil is
// actually used (cpFlashes > 0).
func (m Model) WriteTimeCP(vsbShots, cpFlashes int64) time.Duration {
	t := m.Overhead + time.Duration(vsbShots)*m.ShotTime + time.Duration(cpFlashes)*m.CPFlashTime
	if cpFlashes > 0 {
		t += m.CPLoadOverhead
	}
	return t
}

// CostReductionTime returns the fractional mask cost reduction achieved
// by lowering the write time from base to reduced, under the same
// write-cost-scales-with-beam-time assumption as CostReduction. With
// zero Overhead, CostReductionTime(WriteTime(a), WriteTime(b)) equals
// CostReduction(a, b).
func (m Model) CostReductionTime(base, reduced time.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return m.WriteFraction * (1 - float64(reduced)/float64(base))
}

// DollarSavingsTime returns the estimated mask-set savings from a
// write-time reduction.
func (m Model) DollarSavingsTime(base, reduced time.Duration) float64 {
	return m.MaskSetCost * m.CostReductionTime(base, reduced)
}

// CostReduction returns the fractional mask cost reduction achieved by
// lowering the shot count from base to reduced, under the assumption
// that write cost scales with write time (beam time dominates) and
// write is WriteFraction of the mask cost.
func (m Model) CostReduction(base, reduced int64) float64 {
	if base <= 0 {
		return 0
	}
	shotReduction := 1 - float64(reduced)/float64(base)
	return m.WriteFraction * shotReduction
}

// DollarSavings returns the estimated savings on a full mask set from
// reducing per-mask shot counts by the same ratio.
func (m Model) DollarSavings(base, reduced int64) float64 {
	return m.MaskSetCost * m.CostReduction(base, reduced)
}

// Summary formats the headline numbers for a shot-count comparison.
func (m Model) Summary(name string, base, reduced int64) string {
	return fmt.Sprintf(
		"%s: shots %d -> %d (%.1f%% fewer), write time %v -> %v, mask cost -%.2f%%, mask set savings $%.0f",
		name, base, reduced, 100*(1-float64(reduced)/float64(base)),
		m.WriteTime(base).Round(time.Minute), m.WriteTime(reduced).Round(time.Minute),
		100*m.CostReduction(base, reduced), m.DollarSavings(base, reduced))
}
