package writecost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteTime(t *testing.T) {
	m := Model{ShotTime: time.Microsecond, Overhead: time.Hour}
	if got := m.WriteTime(0); got != time.Hour {
		t.Errorf("zero shots = %v", got)
	}
	if got := m.WriteTime(3_600_000_000); got != 2*time.Hour {
		t.Errorf("3.6e9 shots = %v", got)
	}
}

func TestPaperHeadlineNumber(t *testing.T) {
	// "a reduction of even 10% in shot count would roughly translate to
	// 2% improvement in mask cost" (paper §1, with write ≈ 20% of cost)
	m := Default()
	got := m.CostReduction(100, 90)
	if math.Abs(got-0.02) > 1e-9 {
		t.Errorf("10%% shot reduction -> %.4f cost reduction, want 0.02", got)
	}
}

func TestCostReductionEdge(t *testing.T) {
	m := Default()
	if m.CostReduction(0, 10) != 0 {
		t.Error("zero base should give zero reduction")
	}
	if m.CostReduction(100, 100) != 0 {
		t.Error("no reduction should give zero")
	}
	// a 23% reduction (the paper's improvement over PROTO-EDA)
	got := m.CostReduction(100, 77)
	if math.Abs(got-0.046) > 1e-9 {
		t.Errorf("23%% shots -> %v cost", got)
	}
}

func TestDollarSavings(t *testing.T) {
	m := Default()
	got := m.DollarSavings(100, 90)
	want := m.MaskSetCost * 0.02
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("savings = %v, want %v", got, want)
	}
}

func TestSummaryContainsFields(t *testing.T) {
	s := Default().Summary("test", 1000, 800)
	for _, frag := range []string{"test", "1000", "800", "20.0% fewer"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
}

func TestCostReductionQuick(t *testing.T) {
	m := Default()
	f := func(base, reduced uint16) bool {
		b, r := int64(base)+1, int64(reduced)
		got := m.CostReduction(b, r)
		// bounded by the write fraction, monotone in the reduction
		if r <= b && (got < 0 || got > m.WriteFraction) {
			return false
		}
		if r > b && got > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
