package writecost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteTime(t *testing.T) {
	m := Model{ShotTime: time.Microsecond, Overhead: time.Hour}
	if got := m.WriteTime(0); got != time.Hour {
		t.Errorf("zero shots = %v", got)
	}
	if got := m.WriteTime(3_600_000_000); got != 2*time.Hour {
		t.Errorf("3.6e9 shots = %v", got)
	}
}

func TestPaperHeadlineNumber(t *testing.T) {
	// "a reduction of even 10% in shot count would roughly translate to
	// 2% improvement in mask cost" (paper §1, with write ≈ 20% of cost)
	m := Default()
	got := m.CostReduction(100, 90)
	if math.Abs(got-0.02) > 1e-9 {
		t.Errorf("10%% shot reduction -> %.4f cost reduction, want 0.02", got)
	}
}

func TestCostReductionEdge(t *testing.T) {
	m := Default()
	if m.CostReduction(0, 10) != 0 {
		t.Error("zero base should give zero reduction")
	}
	if m.CostReduction(100, 100) != 0 {
		t.Error("no reduction should give zero")
	}
	// a 23% reduction (the paper's improvement over PROTO-EDA)
	got := m.CostReduction(100, 77)
	if math.Abs(got-0.046) > 1e-9 {
		t.Errorf("23%% shots -> %v cost", got)
	}
}

func TestDollarSavings(t *testing.T) {
	m := Default()
	got := m.DollarSavings(100, 90)
	want := m.MaskSetCost * 0.02
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("savings = %v, want %v", got, want)
	}
}

func TestSummaryContainsFields(t *testing.T) {
	s := Default().Summary("test", 1000, 800)
	for _, frag := range []string{"test", "1000", "800", "20.0% fewer"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary %q missing %q", s, frag)
		}
	}
}

func TestCPDefaults(t *testing.T) {
	m := Default()
	if m.CPFlashTime <= 0 || m.CPSlots <= 0 || m.CPStencilW <= 0 || m.CPStencilH <= 0 {
		t.Fatalf("Default() missing CP parameters: %+v", m)
	}
	if m.CPFlashTime < m.ShotTime {
		t.Errorf("CP flash (%v) modeled faster than a VSB shot (%v)", m.CPFlashTime, m.ShotTime)
	}
}

func TestWriteTimeCP(t *testing.T) {
	m := Model{
		ShotTime:       time.Microsecond,
		Overhead:       time.Hour,
		CPFlashTime:    2 * time.Microsecond,
		CPLoadOverhead: time.Minute,
	}
	// no CP use: identical to WriteTime, no load overhead
	if got, want := m.WriteTimeCP(1000, 0), m.WriteTime(1000); got != want {
		t.Errorf("no-CP WriteTimeCP = %v, want %v", got, want)
	}
	// CP use pays the load overhead once plus per-flash time
	got := m.WriteTimeCP(1000, 10)
	want := time.Hour + time.Minute + 1000*time.Microsecond + 20*time.Microsecond
	if got != want {
		t.Errorf("WriteTimeCP(1000,10) = %v, want %v", got, want)
	}
}

// TestCPCostReductionInteraction ties the CP write-time model to the
// paper's cost argument: replacing shot lists with flashes must price
// out identically whether the reduction is expressed in shots (when
// the comparison is purely shot-count) or in write time.
func TestCPCostReductionInteraction(t *testing.T) {
	m := Default()
	m.Overhead = 0 // isolate beam time

	// pure shot-count reduction: the two formulations agree
	base, reduced := int64(1_000_000_000), int64(770_000_000)
	viaShots := m.CostReduction(base, reduced)
	viaTime := m.CostReductionTime(m.WriteTime(base), m.WriteTime(reduced))
	if math.Abs(viaShots-viaTime) > 1e-12 {
		t.Errorf("shot-count (%v) and write-time (%v) cost reductions diverge", viaShots, viaTime)
	}

	// a CP plan that replaces 300M of 1G shots (30 shots/placement,
	// 10M placements) with 10M flashes: the saved beam time must show
	// up as a positive cost reduction, smaller than the raw shot-count
	// reduction because flashes and the stencil load are not free
	m.CPLoadOverhead = time.Second
	withCP := m.WriteTimeCP(base-300_000_000, 10_000_000)
	cr := m.CostReductionTime(m.WriteTime(base), withCP)
	if cr <= 0 {
		t.Fatalf("profitable CP plan priced at %v cost reduction", cr)
	}
	if upper := m.CostReduction(base, base-300_000_000); cr >= upper {
		t.Errorf("CP cost reduction %v not below free-flash bound %v", cr, upper)
	}
	if ds := m.DollarSavingsTime(m.WriteTime(base), withCP); math.Abs(ds-m.MaskSetCost*cr) > 1e-6 {
		t.Errorf("DollarSavingsTime = %v, want %v", ds, m.MaskSetCost*cr)
	}
}

func TestCostReductionTimeEdge(t *testing.T) {
	m := Default()
	if m.CostReductionTime(0, time.Hour) != 0 {
		t.Error("zero base should give zero reduction")
	}
	if m.CostReductionTime(time.Hour, time.Hour) != 0 {
		t.Error("no reduction should give zero")
	}
	if got := m.CostReductionTime(time.Hour, 2*time.Hour); got >= 0 {
		t.Errorf("regression should price negative, got %v", got)
	}
}

func TestCostReductionQuick(t *testing.T) {
	m := Default()
	f := func(base, reduced uint16) bool {
		b, r := int64(base)+1, int64(reduced)
		got := m.CostReduction(b, r)
		// bounded by the write fraction, monotone in the reduction
		if r <= b && (got < 0 || got > m.WriteFraction) {
			return false
		}
		if r > b && got > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
