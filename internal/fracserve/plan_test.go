package fracserve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"maskfrac/internal/maskio"
	"maskfrac/internal/shapegen"
)

// TestE2EPlanDemoLibrary drives the full stencil-planning path over the
// demo full-mask library: fracture every placement through /fracture
// (one request per placement so the cache counts real placement
// frequencies), then POST /plan and check the plan's acceptance
// properties — within the slot budget, modeled write time strictly
// below the no-CP baseline, per-class savings summing to the reported
// total, and deterministic across runs.
func TestE2EPlanDemoLibrary(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()

	lib := shapegen.DemoLibrary(2, 2)
	var wires [][][2]float64
	if err := lib.Walk(func(pl maskio.Placement) error {
		wires = append(wires, maskio.PolygonWire(pl.Polygon))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(wires) != 40 {
		t.Fatalf("demo library placements = %d, want 40", len(wires))
	}
	for _, w := range wires {
		if _, err := c.Do(ctx, &Request{Shape: w, Method: "proto-eda", OmitShots: true}); err != nil {
			t.Fatalf("fracture: %v", err)
		}
	}

	st, err := c.StatsTop(ctx, 0)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(st.TopClasses) != 10 {
		t.Fatalf("mined classes = %d, want 10", len(st.TopClasses))
	}
	var placements int64
	for _, cl := range st.TopClasses {
		placements += cl.Placements
		if cl.Shots <= 0 || cl.W <= 0 || cl.H <= 0 {
			t.Errorf("class %s missing solution stats: %+v", cl.Key[:8], cl)
		}
	}
	if placements != 40 {
		t.Errorf("Σ class placements = %d, want 40", placements)
	}

	// the demo mask writes in milliseconds, so the stencil must plan
	// with no load overhead to be profitable
	zero := 0.0
	req := &PlanRequest{CP: &CPWire{Slots: 4, LoadOverheadMS: &zero}}
	resp, err := c.Plan(ctx, req)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	plan := resp.Plan
	if plan == nil {
		t.Fatal("nil plan")
	}
	if n := len(plan.Characters); n == 0 || n > 4 {
		t.Fatalf("characters = %d, want 1..4", n)
	}
	r := plan.Report
	if r.WithCPWriteMS >= r.BaselineWriteMS {
		t.Errorf("CP write %v ms not below baseline %v ms", r.WithCPWriteMS, r.BaselineWriteMS)
	}
	sum := 0.0
	for _, ch := range plan.Characters {
		sum += ch.SavedMS
	}
	if sum != r.ClassSavedMS {
		t.Errorf("Σ per-class saved %v != reported total %v", sum, r.ClassSavedMS)
	}
	if r.TotalPlacements != 40 {
		t.Errorf("report placements = %d, want 40", r.TotalPlacements)
	}
	if resp.TraceID == "" {
		t.Error("plan response missing trace ID")
	}

	// determinism: the same mined state must replan identically
	again, err := c.Plan(ctx, req)
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	b1, _ := json.Marshal(plan)
	b2, _ := json.Marshal(again.Plan)
	if string(b1) != string(b2) {
		t.Errorf("replan diverged:\n%s\nvs\n%s", b1, b2)
	}
}

// TestE2EPlanNoCache: a server running with caching disabled has no
// class statistics to mine and must reject /plan.
func TestE2EPlanNoCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	_, err := c.Plan(context.Background(), &PlanRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("plan on cacheless server = %v, want HTTP 400", err)
	}
}

// TestE2EPlanEmptyCache: planning before any traffic yields the empty
// plan, priced at a zero baseline.
func TestE2EPlanEmptyCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	resp, err := c.Plan(context.Background(), &PlanRequest{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if n := len(resp.Plan.Characters); n != 0 {
		t.Errorf("empty cache planned %d characters", n)
	}
}
