package fracserve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/shapegen"
)

// TestE2EPlanDemoLibrary drives the full stencil-planning path over the
// demo full-mask library: fracture every placement through /fracture
// (one request per placement so the cache counts real placement
// frequencies), then POST /plan and check the plan's acceptance
// properties — within the slot budget, modeled write time strictly
// below the no-CP baseline, per-class savings summing to the reported
// total, and deterministic across runs.
func TestE2EPlanDemoLibrary(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	ctx := context.Background()

	lib := shapegen.DemoLibrary(2, 2)
	var wires [][][2]float64
	if err := lib.Walk(func(pl maskio.Placement) error {
		wires = append(wires, maskio.PolygonWire(pl.Polygon))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(wires) != 40 {
		t.Fatalf("demo library placements = %d, want 40", len(wires))
	}
	for _, w := range wires {
		if _, err := c.Do(ctx, &Request{Shape: w, Method: "proto-eda", OmitShots: true}); err != nil {
			t.Fatalf("fracture: %v", err)
		}
	}

	st, err := c.StatsTop(ctx, 0)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if len(st.TopClasses) != 10 {
		t.Fatalf("mined classes = %d, want 10", len(st.TopClasses))
	}
	var placements int64
	for _, cl := range st.TopClasses {
		placements += cl.Placements
		if cl.Shots <= 0 || cl.W <= 0 || cl.H <= 0 {
			t.Errorf("class %s missing solution stats: %+v", cl.Key[:8], cl)
		}
	}
	if placements != 40 {
		t.Errorf("Σ class placements = %d, want 40", placements)
	}

	// the demo mask writes in milliseconds, so the stencil must plan
	// with no load overhead to be profitable
	zero := 0.0
	req := &PlanRequest{CP: &CPWire{Slots: 4, LoadOverheadMS: &zero}}
	resp, err := c.Plan(ctx, req)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	plan := resp.Plan
	if plan == nil {
		t.Fatal("nil plan")
	}
	if n := len(plan.Characters); n == 0 || n > 4 {
		t.Fatalf("characters = %d, want 1..4", n)
	}
	r := plan.Report
	if r.WithCPWriteMS >= r.BaselineWriteMS {
		t.Errorf("CP write %v ms not below baseline %v ms", r.WithCPWriteMS, r.BaselineWriteMS)
	}
	sum := 0.0
	for _, ch := range plan.Characters {
		sum += ch.SavedMS
	}
	if sum != r.ClassSavedMS {
		t.Errorf("Σ per-class saved %v != reported total %v", sum, r.ClassSavedMS)
	}
	if r.TotalPlacements != 40 {
		t.Errorf("report placements = %d, want 40", r.TotalPlacements)
	}
	if resp.TraceID == "" {
		t.Error("plan response missing trace ID")
	}

	// determinism: the same mined state must replan identically
	again, err := c.Plan(ctx, req)
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	b1, _ := json.Marshal(plan)
	b2, _ := json.Marshal(again.Plan)
	if string(b1) != string(b2) {
		t.Errorf("replan diverged:\n%s\nvs\n%s", b1, b2)
	}
}

// TestE2EClassUses: POST /stats/classes credits memoized placement
// multiplicities into the class statistics the planner mines.
func TestE2EClassUses(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	// one real solve establishes the class record with its solution
	item, err := c.Fracture(ctx, testL(), "proto-eda")
	if err != nil {
		t.Fatalf("fracture: %v", err)
	}
	st, err := c.StatsTop(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TopClasses) != 1 || st.TopClasses[0].Placements != 1 {
		t.Fatalf("classes after one solve = %+v", st.TopClasses)
	}

	// the report carries the shape; the server re-derives the class key
	// with its own params so the credit lands on the solve's record
	reply, err := c.ReportClassUses(ctx, &ClassUsesRequest{
		Method:  "proto-eda",
		Classes: []ClassUse{{Shape: maskio.PolygonWire(testL()), Uses: 41}},
	})
	if err != nil {
		t.Fatalf("report class uses: %v", err)
	}
	if reply.Credited != 1 {
		t.Fatalf("credited = %d, want 1", reply.Credited)
	}
	st, err = c.StatsTop(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TopClasses) != 1 {
		t.Fatalf("credit by shape created a second class record: %+v", st.TopClasses)
	}
	cl := st.TopClasses[0]
	if cl.Placements != 42 {
		t.Errorf("placements after credit = %d, want 42", cl.Placements)
	}
	if cl.Shots != item.ShotCount {
		t.Errorf("credit clobbered the solution stats: %+v", cl)
	}

	// malformed shapes are rejected wholesale
	_, err = c.ReportClassUses(ctx, &ClassUsesRequest{Classes: []ClassUse{{Shape: [][2]float64{{0, 0}, {1, 0}}, Uses: 1}}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("bad shape = %v, want HTTP 400", err)
	}
}

// TestE2ELShotsOnWire: an mbf-l request returns L-shot pairs and flash
// counts on both /fracture and /solve, and the batch summary prices
// flashes.
func TestE2ELShotsOnWire(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	resp, err := c.Do(ctx, &Request{Shape: maskio.PolygonWire(testL()), Method: "mbf-l"})
	if err != nil {
		t.Fatalf("fracture: %v", err)
	}
	it := resp.Results[0]
	if it.Error != "" {
		t.Fatalf("item error: %s", it.Error)
	}
	if len(it.LPairs) == 0 {
		t.Fatal("mbf-l returned no L-pairs for an L-shaped target")
	}
	if it.FlashCount != it.ShotCount-len(it.LPairs) {
		t.Errorf("flash count %d, want %d", it.FlashCount, it.ShotCount-len(it.LPairs))
	}
	for _, pr := range it.LPairs {
		if pr[0] >= pr[1] || pr[0] < 0 || pr[1] >= it.ShotCount {
			t.Errorf("malformed pair %v over %d shots", pr, it.ShotCount)
		}
	}
	if resp.Summary.Flashes != resp.Summary.Shots-len(it.LPairs) {
		t.Errorf("summary flashes = %d, want %d", resp.Summary.Flashes, resp.Summary.Shots-len(it.LPairs))
	}

	sresp, err := c.SolveShapes(ctx, []geom.Polygon{testL()}, "mbf-l")
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if len(sresp.LPairs) == 0 {
		t.Fatal("/solve returned no L-pairs")
	}
	if sresp.FlashCount != sresp.ShotCount-len(sresp.LPairs) {
		t.Errorf("solve flash count %d, want %d", sresp.FlashCount, sresp.ShotCount-len(sresp.LPairs))
	}
}

// TestE2EPlanNoCache: a server running with caching disabled has no
// class statistics to mine and must reject /plan.
func TestE2EPlanNoCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	_, err := c.Plan(context.Background(), &PlanRequest{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("plan on cacheless server = %v, want HTTP 400", err)
	}
}

// TestE2EPlanEmptyCache: planning before any traffic yields the empty
// plan, priced at a zero baseline.
func TestE2EPlanEmptyCache(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	resp, err := c.Plan(context.Background(), &PlanRequest{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if n := len(resp.Plan.Characters); n != 0 {
		t.Errorf("empty cache planned %d characters", n)
	}
}
