package fracserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
)

// clientReqIDKey carries a caller-chosen X-Request-ID on the context.
type clientReqIDKey struct{}

// WithRequestID returns a context that makes the client send the given
// X-Request-ID on every request it issues.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, clientReqIDKey{}, id)
}

// RequestIDFrom returns the request ID installed by WithRequestID, or
// "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(clientReqIDKey{}).(string)
	return id
}

// decorate stamps outbound observability headers: the W3C traceparent
// of the context's active span (so the server's phase spans join the
// caller's trace) and the caller's request ID.
func decorate(ctx context.Context, hr *http.Request) {
	if sc := telemetry.SpanContextOf(ctx); sc.Valid() {
		hr.Header.Set("traceparent", sc.Traceparent())
	}
	if id := RequestIDFrom(ctx); id != "" {
		hr.Header.Set("X-Request-ID", id)
	}
}

// ErrQueueFull is returned by the client when the server rejects a
// request because its work queue is at capacity (HTTP 429). The
// concrete error is a *QueueFullError carrying the server's Retry-After
// hint; errors.Is(err, ErrQueueFull) matches it.
var ErrQueueFull = errors.New("fracserve: server queue full")

// QueueFullError is the concrete 429 error: it matches ErrQueueFull
// under errors.Is and carries the server's Retry-After hint so callers
// can pace their retries to the server's request instead of guessing.
type QueueFullError struct {
	// After is the parsed Retry-After delay; 0 when the server sent no
	// usable hint.
	After time.Duration
	// Msg is the server's error message.
	Msg string
}

func (e *QueueFullError) Error() string {
	return ErrQueueFull.Error() + ": " + e.Msg
}

// Is makes errors.Is(err, ErrQueueFull) match.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// RetryAfter extracts the server's Retry-After hint from a client
// error. It returns 0, false when err carries no hint.
func RetryAfter(err error) (time.Duration, bool) {
	var qf *QueueFullError
	if errors.As(err, &qf) && qf.After > 0 {
		return qf.After, true
	}
	return 0, false
}

// ErrDeadline is returned when the server abandons a request at its
// deadline (HTTP 504).
var ErrDeadline = errors.New("fracserve: server deadline exceeded")

// ErrProtocol wraps replies the client could not interpret — a 2xx body
// that fails to decode. Such failures are deterministic for a given
// server build, so callers should not retry or fail them over.
var ErrProtocol = errors.New("fracserve: protocol error")

// StatusError is a non-2xx reply with no dedicated sentinel (anything
// other than 429 and 504): validation failures, unknown methods, and
// the like. errors.As lets callers classify it without string matching.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Msg is the server's error message.
	Msg string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("fracserve: HTTP %d: %s", e.Code, e.Msg)
}

// Client talks to a fracturing daemon.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8337".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Do sends a raw fracture request.
func (c *Client) Do(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fracserve: encode request: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/fracture", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	decorate(ctx, hr)
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decode response: %v", ErrProtocol, err)
	}
	return &out, nil
}

// Fracture fractures one shape with the given method ("" selects the
// server default) and returns its result.
func (c *Client) Fracture(ctx context.Context, shape geom.Polygon, method string) (*ItemResult, error) {
	resp, err := c.Do(ctx, &Request{Shape: maskio.PolygonWire(shape), Method: method})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("fracserve: server returned %d results for one shape", len(resp.Results))
	}
	item := resp.Results[0]
	if item.Error != "" {
		return nil, fmt.Errorf("fracserve: %s", item.Error)
	}
	return &item, nil
}

// FractureBatch fractures a batch of shapes with the given method.
// Per-shape failures are reported inside the response items, not as an
// error.
func (c *Client) FractureBatch(ctx context.Context, shapes []geom.Polygon, method string) (*Response, error) {
	wires := make([][][2]float64, len(shapes))
	for i, s := range shapes {
		wires[i] = maskio.PolygonWire(s)
	}
	return c.Do(ctx, &Request{Shapes: wires, Method: method})
}

// ShotRects decodes the shot list of a result item.
func (ir *ItemResult) ShotRects() ([]geom.Rect, error) {
	return maskio.ShotsFromWire(ir.Shots)
}

// Solve fractures one multi-shape instance through the server's
// decompose–solve–stitch engine (POST /solve).
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fracserve: encode request: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	decorate(ctx, hr)
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decode response: %v", ErrProtocol, err)
	}
	return &out, nil
}

// SolveShapes is Solve for the common case: the given shapes as one
// instance with the given method ("" selects the server default).
func (c *Client) SolveShapes(ctx context.Context, shapes []geom.Polygon, method string) (*SolveResponse, error) {
	wires := make([][][2]float64, len(shapes))
	for i, s := range shapes {
		wires[i] = maskio.PolygonWire(s)
	}
	return c.Solve(ctx, &SolveRequest{Shapes: wires, Method: method})
}

// ShotRects decodes the shot list of a solve response.
func (sr *SolveResponse) ShotRects() ([]geom.Rect, error) {
	return maskio.ShotsFromWire(sr.Shots)
}

// Plan asks the server to plan a character-projection stencil from its
// cache's class statistics (POST /plan).
func (c *Client) Plan(ctx context.Context, req *PlanRequest) (*PlanResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fracserve: encode request: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/plan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	decorate(ctx, hr)
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decode response: %v", ErrProtocol, err)
	}
	return &out, nil
}

// ReportClassUses credits congruence classes with placements the
// caller resolved locally (POST /stats/classes), keeping the server's
// class statistics counting placements instead of wire requests.
func (c *Client) ReportClassUses(ctx context.Context, req *ClassUsesRequest) (*ClassUsesReply, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("fracserve: encode request: %w", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/stats/classes", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	decorate(ctx, hr)
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out ClassUsesReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decode response: %v", ErrProtocol, err)
	}
	return &out, nil
}

// Stats fetches the server statistics.
func (c *Client) Stats(ctx context.Context) (*StatsReply, error) {
	return c.stats(ctx, c.BaseURL+"/stats")
}

// StatsTop fetches the server statistics including the cache's top-k
// congruence classes (GET /stats?classes=k).
func (c *Client) StatsTop(ctx context.Context, k int) (*StatsReply, error) {
	return c.stats(ctx, c.BaseURL+"/stats?classes="+strconv.Itoa(k))
}

func (c *Client) stats(ctx context.Context, url string) (*StatsReply, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%w: decode stats: %v", ErrProtocol, err)
	}
	return &out, nil
}

// Metrics fetches and parses the server's /metrics endpoint.
func (c *Client) Metrics(ctx context.Context) ([]telemetry.Sample, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	samples, err := telemetry.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: parse metrics: %v", ErrProtocol, err)
	}
	return samples, nil
}

// Healthz probes the server's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hr)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// statusError maps a non-2xx reply to a Go error, preserving the
// server's message and using sentinel errors for backpressure codes.
func statusError(resp *http.Response) error {
	msg := ""
	var er ErrorReply
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	} else {
		msg = strings.TrimSpace(string(body))
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return &QueueFullError{After: parseRetryAfter(resp.Header.Get("Retry-After")), Msg: msg}
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", ErrDeadline, msg)
	}
	return &StatusError{Code: resp.StatusCode, Msg: msg}
}

// parseRetryAfter parses a Retry-After header: delay-seconds or an HTTP
// date. Returns 0 on anything unusable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// drainClose consumes what is left of a response body before closing
// it. An HTTP/1.1 connection only returns to the keep-alive pool when
// its body has been read to EOF; closing early forces a fresh TCP (and
// possibly TLS) handshake per request, which under load turns into
// ephemeral-port exhaustion. The drain is capped so a misbehaving
// server cannot pin the client.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}
