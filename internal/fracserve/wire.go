// Package fracserve is the long-running fracturing service: an HTTP
// JSON daemon exposing the maskfrac solvers behind a bounded worker
// pool and a content-addressed shape cache, plus the Go client for it.
//
// Endpoints:
//
//	POST /fracture — fracture one shape or a batch (Request/Response)
//	POST /solve    — fracture one multi-shape instance through the
//	                 decompose–solve–stitch engine (SolveRequest/SolveResponse)
//	POST /plan     — plan a character-projection stencil from the cache's
//	                 class statistics (PlanRequest/PlanResponse)
//	GET  /healthz  — liveness probe
//	GET  /stats    — cache counters, queue depth, per-method aggregates;
//	                 ?classes=K adds the top-K congruence classes
//	POST /stats/classes — credit congruence classes with placements a
//	                 batch client memoized locally (ClassUsesRequest)
//	GET  /debug/traces — retained request traces (see tracestore)
package fracserve

import (
	"maskfrac/internal/stencil"
	"maskfrac/internal/telemetry"
)

// Request is the POST /fracture body. Exactly one of Shape or Shapes
// must be set. Zero-valued fields select the server's defaults.
type Request struct {
	// Shape is a single polygon as a [[x,y], ...] vertex list.
	Shape [][2]float64 `json:"shape,omitempty"`
	// Shapes is a batch of polygons, fractured concurrently.
	Shapes [][][2]float64 `json:"shapes,omitempty"`
	// Method is the fracturing method (default "mbf").
	Method string `json:"method,omitempty"`
	// Params overrides the server's fracturing parameters.
	Params *ParamsWire `json:"params,omitempty"`
	// Options tunes the selected method.
	Options *OptionsWire `json:"options,omitempty"`
	// TimeoutMS caps this request's wall time in milliseconds; 0
	// selects the server default. The server clamps it to its maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// OmitShots drops the shot lists from the response, returning only
	// counts and evaluation results (useful for large batches).
	OmitShots bool `json:"omit_shots,omitempty"`
	// ReturnTrace asks for the request's span tree in Response.Trace.
	// Requests carrying a traceparent header get it implicitly.
	ReturnTrace bool `json:"return_trace,omitempty"`
}

// ParamsWire mirrors maskfrac.Params on the wire. Zero-valued fields
// inherit the server's defaults.
type ParamsWire struct {
	Sigma float64 `json:"sigma,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	Rho   float64 `json:"rho,omitempty"`
	Pitch float64 `json:"pitch,omitempty"`
	Lmin  float64 `json:"lmin,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	Eta   float64 `json:"eta,omitempty"`
}

// OptionsWire mirrors maskfrac.Options on the wire.
type OptionsWire struct {
	MaxIterations  int    `json:"max_iterations,omitempty"`
	ColoringOrder  string `json:"coloring_order,omitempty"`
	SkipRefinement bool   `json:"skip_refinement,omitempty"`
}

// ItemResult is the outcome for one shape of a request, in input order.
type ItemResult struct {
	Index int          `json:"index"`
	Error string       `json:"error,omitempty"`
	Shots [][4]float64 `json:"shots,omitempty"`
	// LPairs lists L-shot pairs as {i, j} indices into Shots: each pair
	// is two rectangles exposed as one L-shaped flash sharing a dose.
	// Present only for L-capable methods ("mbf-l").
	LPairs    [][2]int `json:"l_pairs,omitempty"`
	ShotCount int      `json:"shot_count"`
	// FlashCount is the VSB flash count, ShotCount minus len(LPairs);
	// omitted when it equals ShotCount.
	FlashCount int     `json:"flash_count,omitempty"`
	FailOn     int     `json:"fail_on"`
	FailOff    int     `json:"fail_off"`
	Cost       float64 `json:"cost"`
	Feasible   bool    `json:"feasible"`
	CacheHit   bool    `json:"cache_hit"`
	SolveMS    float64 `json:"solve_ms"`
	EvalMS     float64 `json:"eval_ms"`
}

// Summary aggregates a response.
type Summary struct {
	Shapes int `json:"shapes"`
	Errors int `json:"errors"`
	Shots  int `json:"shots"`
	// Flashes is the batch's VSB flash total: Shots minus the L-shot
	// pairs of L-capable methods. Omitted when it equals Shots.
	Flashes   int `json:"flashes,omitempty"`
	Feasible  int `json:"feasible"`
	CacheHits int `json:"cache_hits"`
}

// Response is the POST /fracture reply.
type Response struct {
	Results []ItemResult `json:"results"`
	Summary Summary      `json:"summary"`
	// TraceID identifies the request's trace (retained on the server,
	// see GET /debug/traces/{id}); it matches the caller's trace ID when
	// the request carried a traceparent header.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the request's serialized span tree, present when the
	// request asked for it (ReturnTrace) or carried a traceparent.
	Trace *telemetry.SpanWire `json:"trace,omitempty"`
}

// SolveRequest is the POST /solve body: one multi-shape fracturing
// instance — typically a main feature plus its assist features — solved
// through the decompose–solve–stitch engine. Unlike /fracture, which
// treats each shape as an independent problem, /solve samples all
// shapes onto one grid sharing the dose budget, clusters them into
// proximity-independent regions and solves the regions concurrently.
type SolveRequest struct {
	// Shapes are the instance's polygons as [[x,y], ...] vertex lists.
	Shapes [][][2]float64 `json:"shapes"`
	// Method is the fracturing method (default "mbf").
	Method string `json:"method,omitempty"`
	// Params overrides the server's fracturing parameters.
	Params *ParamsWire `json:"params,omitempty"`
	// Options tunes the selected method.
	Options *OptionsWire `json:"options,omitempty"`
	// Workers caps the number of regions solved concurrently; 0 selects
	// the server's worker count. Workers never changes the solution.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps this request's wall time in milliseconds; 0
	// selects the server default. The server clamps it to its maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// OmitShots drops the shot list from the response.
	OmitShots bool `json:"omit_shots,omitempty"`
	// IncludeQuality adds edge-placement-error and sliver statistics of
	// the merged shot list to the response.
	IncludeQuality bool `json:"include_quality,omitempty"`
	// ReturnTrace asks for the request's span tree in
	// SolveResponse.Trace. Requests carrying a traceparent header get it
	// implicitly.
	ReturnTrace bool `json:"return_trace,omitempty"`
}

// QualityWire carries optional solution-quality statistics: the edge
// placement error distribution sampled along the target boundaries and
// the shot sliver analysis.
type QualityWire struct {
	EPESamples int     `json:"epe_samples"`
	EPEMeanNM  float64 `json:"epe_mean_nm"`
	EPERMSNM   float64 `json:"epe_rms_nm"`
	EPEMaxNM   float64 `json:"epe_max_nm"` // worst absolute EPE
	EPEP95NM   float64 `json:"epe_p95_nm"` // 95th percentile of |EPE|
	Slivers    int     `json:"slivers"`    // shots thinner than Lmin
	MinShotDim float64 `json:"min_shot_dim_nm"`
	MeanAspect float64 `json:"mean_aspect"`
}

// SolveResponse is the POST /solve reply.
type SolveResponse struct {
	Shots [][4]float64 `json:"shots,omitempty"`
	// LPairs lists L-shot pairs of the merged shot list as {i, j}
	// index pairs (see ItemResult.LPairs). Present only for L-capable
	// methods ("mbf-l"). Pair indices refer to the full merged list
	// even when OmitShots drops the coordinates.
	LPairs    [][2]int `json:"l_pairs,omitempty"`
	ShotCount int      `json:"shot_count"`
	// FlashCount is the VSB flash count, ShotCount minus len(LPairs);
	// omitted when it equals ShotCount.
	FlashCount int `json:"flash_count,omitempty"`
	// Regions is the number of proximity-independent regions the
	// instance decomposed into.
	Regions  int          `json:"regions"`
	FailOn   int          `json:"fail_on"`
	FailOff  int          `json:"fail_off"`
	Cost     float64      `json:"cost"`
	Feasible bool         `json:"feasible"`
	SolveMS  float64      `json:"solve_ms"`
	EvalMS   float64      `json:"eval_ms"`
	Quality  *QualityWire `json:"quality,omitempty"`
	// TraceID and Trace mirror the /fracture response fields.
	TraceID string              `json:"trace_id,omitempty"`
	Trace   *telemetry.SpanWire `json:"trace,omitempty"`
}

// ErrorReply is the body of every non-2xx reply.
type ErrorReply struct {
	Error string `json:"error"`
}

// CacheStatsWire mirrors the shape-cache counters on the wire.
type CacheStatsWire struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Coalesced  uint64 `json:"coalesced"` // hits served by a concurrent in-flight solve
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	MaxEntries int    `json:"max_entries"`
}

// MethodStats aggregates completed work for one fracturing method.
type MethodStats struct {
	Count        uint64  `json:"count"`
	Errors       uint64  `json:"errors"`
	CacheHits    uint64  `json:"cache_hits"`
	Shots        uint64  `json:"shots"`
	TotalSolveMS float64 `json:"total_solve_ms"`
	AvgSolveMS   float64 `json:"avg_solve_ms"`
}

// StatsReply is the GET /stats body.
type StatsReply struct {
	UptimeSeconds float64                `json:"uptime_seconds"`
	Requests      uint64                 `json:"requests"`
	Rejected      uint64                 `json:"rejected"` // 429s from queue overflow
	Timeouts      uint64                 `json:"timeouts"` // per-request deadline expiries
	ShapesDone    uint64                 `json:"shapes_done"`
	QueueDepth    int                    `json:"queue_depth"`
	QueueCapacity int                    `json:"queue_capacity"`
	Workers       int                    `json:"workers"`
	Cache         CacheStatsWire         `json:"cache"`
	Methods       map[string]MethodStats `json:"methods"`
	// TopClasses is the cache's highest-placement congruence classes,
	// present when the request asked for them with ?classes=K. The
	// stencil planner mines these across the cluster.
	TopClasses []stencil.Class `json:"top_classes,omitempty"`
}

// ClassUse credits one congruence class with placements the caller
// resolved without contacting the server: a batch client that memoizes
// congruent shapes locally reports the collapsed multiplicity here so
// the server's class statistics count placements, not wire requests.
type ClassUse struct {
	// Shape is a representative polygon of the class as a [[x,y], ...]
	// vertex list (any placement's polygon works — the server
	// canonicalizes it). The server derives the class key from it with
	// its own parameters, so the credit lands on the same record the
	// original solves created.
	Shape [][2]float64 `json:"shape"`
	// Uses is how many extra placements to credit.
	Uses uint64 `json:"uses"`
}

// ClassUsesRequest is the POST /stats/classes body. Method, Params and
// Options must match the fracture requests whose placements are being
// credited — they are part of the class key.
type ClassUsesRequest struct {
	Method  string       `json:"method,omitempty"`
	Params  *ParamsWire  `json:"params,omitempty"`
	Options *OptionsWire `json:"options,omitempty"`
	Classes []ClassUse   `json:"classes"`
}

// ClassUsesReply is the POST /stats/classes reply.
type ClassUsesReply struct {
	// Credited is the number of class records updated.
	Credited int `json:"credited"`
}

// CPWire overrides the server's default character-projection cost
// parameters for one /plan request. Zero-valued fields inherit
// writecost.Default(); LoadOverheadMS is a pointer so an explicit 0
// (no stencil mount cost — useful for small test masks) is
// distinguishable from unset.
type CPWire struct {
	ShotNS         float64  `json:"shot_ns,omitempty"`
	FlashNS        float64  `json:"flash_ns,omitempty"`
	Slots          int      `json:"slots,omitempty"`
	StencilW       float64  `json:"stencil_w,omitempty"`
	StencilH       float64  `json:"stencil_h,omitempty"`
	LoadOverheadMS *float64 `json:"load_overhead_ms,omitempty"`
}

// PlanRequest is the POST /plan body: plan a CP stencil from this
// node's class statistics.
type PlanRequest struct {
	// TopK bounds how many classes are mined as candidates (default
	// 256).
	TopK int `json:"top_k,omitempty"`
	// CP overrides the default cost-model CP parameters.
	CP *CPWire `json:"cp,omitempty"`
	// ReturnTrace asks for the planning span tree in the response.
	ReturnTrace bool `json:"return_trace,omitempty"`
}

// PlanResponse is the POST /plan reply.
type PlanResponse struct {
	Plan    *stencil.Plan       `json:"plan"`
	TraceID string              `json:"trace_id,omitempty"`
	Trace   *telemetry.SpanWire `json:"trace,omitempty"`
}
