package fracserve

import (
	"context"
	"net/http"
	"strings"

	"maskfrac/internal/telemetry"
	"maskfrac/internal/telemetry/tracestore"
)

// traceStart begins the root span for one request. When the request
// carries a W3C traceparent header the caller's trace context is
// adopted, so the solver's phase spans become children of the remote
// caller's span. remote reports whether a caller context was adopted —
// those traces are pinned in the store and returned in the response
// body when asked for.
func (s *Server) traceStart(r *http.Request, name string) (ctx context.Context, root *telemetry.Span, remote bool) {
	if sc, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ctx, root = telemetry.WithRemoteTrace(r.Context(), name, sc)
		return ctx, root, true
	}
	ctx, root = telemetry.WithTrace(r.Context(), name)
	return ctx, root, false
}

// finishTrace ends the root span, retains the trace in the store, and
// returns its wire form for embedding in the response.
func (s *Server) finishTrace(root *telemetry.Span, remote bool, reqID, errMsg string) *telemetry.SpanWire {
	if root == nil {
		return nil
	}
	root.End()
	wire := root.Wire()
	s.traces.Add(tracestore.Trace{
		TraceID:   root.TraceID(),
		Name:      root.Name,
		RequestID: reqID,
		Start:     root.Start,
		Duration:  root.Duration(),
		Err:       errMsg,
		Pinned:    remote,
		Root:      wire,
	})
	return wire
}

// Traces returns the server's bounded trace store.
func (s *Server) Traces() *tracestore.Store { return s.traces }

// TraceListReply is the GET /debug/traces body.
type TraceListReply struct {
	Added    uint64               `json:"added"`
	Retained uint64               `json:"retained"`
	Dropped  uint64               `json:"dropped"`
	Traces   []tracestore.Summary `json:"traces"`
}

// TraceReply is the GET /debug/traces/{traceID} body: the full span
// tree plus a pre-rendered waterfall, one line per element.
type TraceReply struct {
	Trace tracestore.Trace `json:"trace"`
	Text  []string         `json:"text"`
}

// handleTraces serves GET /debug/traces (the retained-trace listing)
// and GET /debug/traces/{traceID} (one full trace).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/traces"), "/")
	if id == "" {
		added, retained, dropped := s.traces.Stats()
		writeJSON(w, http.StatusOK, TraceListReply{
			Added:    added,
			Retained: retained,
			Dropped:  dropped,
			Traces:   s.traces.List(),
		})
		return
	}
	tr, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace "+id)
		return
	}
	var sb strings.Builder
	tr.Root.Span().WriteTree(&sb)
	writeJSON(w, http.StatusOK, TraceReply{Trace: tr, Text: strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")})
}
