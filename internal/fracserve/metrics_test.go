package fracserve

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"maskfrac/internal/geom"
	"maskfrac/internal/telemetry"
)

// scrape fetches url and returns the body as a string.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the value of the first sample line whose name
// (and label set, if the prefix carries one) matches prefix.
func metricValue(t *testing.T, exposition, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, prefix+" ") || strings.HasPrefix(line, prefix+"{") {
			fields := strings.Fields(line)
			return fields[len(fields)-1]
		}
	}
	t.Fatalf("no %q sample in exposition:\n%s", prefix, exposition)
	return ""
}

// TestE2EMetricsMoveAfterFracture scrapes /metrics before and after a
// /fracture request and checks that the request counter, the per-method
// shape counters, the latency histogram and the shape-cache counters
// all move, and that the queue gauges are exported.
func TestE2EMetricsMoveAfterFracture(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	before := scrape(t, ts.URL+"/metrics")
	if got := metricValue(t, before, "fracd_requests_total"); got != "0" {
		t.Errorf("fracd_requests_total before any request = %s", got)
	}

	shapes := []geom.Polygon{
		testL(),
		testL().Translate(geom.Pt(400, 50)), // congruent: cache hit
	}
	if _, err := c.FractureBatch(context.Background(), shapes, "proto-eda"); err != nil {
		t.Fatalf("fracture batch: %v", err)
	}

	after := scrape(t, ts.URL+"/metrics")
	ct := http.Header{}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct = resp.Header
	resp.Body.Close()
	if got := ct.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("Content-Type = %q", got)
	}

	if got := metricValue(t, after, "fracd_requests_total"); got != "1" {
		t.Errorf("fracd_requests_total after one request = %s", got)
	}
	if got := metricValue(t, after, `fracd_shapes_total{method="proto-eda"}`); got != "2" {
		t.Errorf(`fracd_shapes_total{method="proto-eda"} = %s`, got)
	}
	if got := metricValue(t, after, `fracd_shape_cache_hits_total{method="proto-eda"}`); got != "1" {
		t.Errorf("per-method cache hits = %s", got)
	}
	if got := metricValue(t, after, "fracd_shapecache_hits_total"); got != "1" {
		t.Errorf("shapecache hits = %s", got)
	}
	if got := metricValue(t, after, "fracd_shapecache_misses_total"); got != "1" {
		t.Errorf("shapecache misses = %s", got)
	}
	// request latency histogram: count for /fracture must be 1
	if got := metricValue(t, after,
		`fracd_request_duration_seconds_count{path="/fracture"}`); got != "1" {
		t.Errorf("request duration count = %s", got)
	}
	if !strings.Contains(after, `fracd_request_duration_seconds_bucket{path="/fracture",le="+Inf"}`) {
		t.Error("no +Inf latency bucket for /fracture")
	}
	// queue instrumentation
	if got := metricValue(t, after, "fracd_queue_capacity"); got != "16" {
		t.Errorf("fracd_queue_capacity = %s", got)
	}
	if got := metricValue(t, after, "fracd_workers"); got != "2" {
		t.Errorf("fracd_workers = %s", got)
	}
	for _, name := range []string{
		"fracd_queue_depth", "fracd_inflight_requests",
		"fracd_queue_wait_seconds_count", "fracd_shots_per_shape_count",
		`fracd_solve_duration_seconds_count{method="proto-eda"}`,
		"fracd_eval_mutations_total", "fracd_eval_pixels_mutated_total",
		"fracd_eval_pixels_scored_total", "fracd_eval_pixels_per_mutation_count",
		"fracd_eval_arena_hits_total", "fracd_eval_arena_misses_total",
		"fracd_eval_arena_bytes_reused_total", "fracd_engine_steals_total",
	} {
		metricValue(t, after, name) // fatals if absent
	}
	// the solve above committed evaluator mutations; the process-wide
	// counter (and the observer-fed histogram) must have moved
	if got := metricValue(t, after, "fracd_eval_mutations_total"); got == "0" {
		t.Error("fracd_eval_mutations_total did not move during a solve")
	}
	// the solve churned evaluators through the problem's arena, so
	// buffer acquisitions (hits or misses) must be visible
	if got := metricValue(t, after, "fracd_eval_arena_misses_total"); got == "0" {
		if got := metricValue(t, after, "fracd_eval_arena_hits_total"); got == "0" {
			t.Error("arena counters did not move during a solve")
		}
	}
}

// TestE2ERequestIDAndAccessLog checks that every response carries an
// X-Request-ID (honoring the client's, if sent) and that the access log
// records it as one JSON line per request.
func TestE2ERequestIDAndAccessLog(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := New(Config{Workers: 1, Logger: telemetry.NewLogger(logw, telemetry.LevelInfo)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response has no X-Request-ID")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-id")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-id" {
		t.Errorf("X-Request-ID = %q, want the caller's", got)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	if !strings.Contains(logs, `"msg":"request"`) {
		t.Errorf("no access log line:\n%s", logs)
	}
	if !strings.Contains(logs, `"id":"caller-chosen-id"`) {
		t.Errorf("access log does not carry the caller's request ID:\n%s", logs)
	}
	if !strings.Contains(logs, `"path":"/healthz"`) {
		t.Errorf("access log missing path:\n%s", logs)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestE2EPprofGated checks that /debug/pprof/ serves only when enabled.
func TestE2EPprofGated(t *testing.T) {
	on := New(Config{Workers: 1, EnablePprof: true})
	ts := httptest.NewServer(on.Handler())
	defer ts.Close()
	if body := scrape(t, ts.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index does not list profiles")
	}

	off := New(Config{Workers: 1})
	ts2 := httptest.NewServer(off.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without EnablePprof")
	}
}

// TestE2EStatsCoalescedField checks the additive cache stats field and
// that /stats values agree with the registry-backed counters.
func TestE2EStatsCoalescedField(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	shapes := []geom.Polygon{testL(), testShape(60)}
	if _, err := c.FractureBatch(ctx, shapes, "proto-eda"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.ShapesDone != 2 {
		t.Errorf("stats requests=%d shapes_done=%d, want 1/2", st.Requests, st.ShapesDone)
	}
	m, ok := st.Methods["proto-eda"]
	if !ok {
		t.Fatalf("no proto-eda method stats: %+v", st.Methods)
	}
	if m.Count != 2 || m.Errors != 0 || m.Shots == 0 {
		t.Errorf("method stats = %+v", m)
	}
	if m.AvgSolveMS <= 0 || m.TotalSolveMS < m.AvgSolveMS {
		t.Errorf("solve timing stats = %+v", m)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Error("cache counters did not move")
	}
	if st.Cache.Coalesced > st.Cache.Hits {
		t.Errorf("coalesced=%d > hits=%d", st.Cache.Coalesced, st.Cache.Hits)
	}
	_ = s
}

// TestE2EDrainLogging checks the graceful-drain log line reports the
// drained shape count.
func TestE2EDrainLogging(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logw := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	// serve a real listener: Shutdown must wait for the in-flight
	// request (httptest wrapping only the handler would not)
	s := New(Config{
		Workers: 1, QueueDepth: 8,
		Logger: telemetry.NewLogger(logw, telemetry.LevelInfo),
	})
	s.workDelay = 100 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	c := NewClient("http://" + l.Addr().String())

	done := make(chan error, 1)
	go func() {
		_, err := c.FractureBatch(context.Background(),
			[]geom.Polygon{testShape(40), testShape(50)}, "partition")
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the queue
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	if !strings.Contains(logs, `"msg":"draining"`) {
		t.Errorf("no draining line:\n%s", logs)
	}
	if !strings.Contains(logs, `"msg":"drained"`) {
		t.Errorf("no drained line:\n%s", logs)
	}
	if !strings.Contains(logs, `"drained_shapes":2`) {
		t.Errorf("drained line does not report 2 drained shapes:\n%s", logs)
	}
}

// TestClientReusesConnections proves the client drains and closes
// response bodies on every path: success, JSON error replies and
// plain-status replies. If any path leaves a body undrained, the
// connection cannot return to the keep-alive pool and the transport
// dials again — observable as more than one accepted connection.
func TestClientReusesConnections(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewUnstartedServer(s.Handler())
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	// a private transport so other tests' pooled connections can't mask
	// a regression
	tr := &http.Transport{MaxIdleConnsPerHost: 1}
	t.Cleanup(tr.CloseIdleConnections)
	c := NewClient(ts.URL)
	c.HTTPClient = &http.Client{Transport: tr}

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := c.Healthz(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Fracture(ctx, geom.Polygon{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 60, Y: 60}, {X: 0, Y: 60}}, "proto-eda"); err != nil {
			t.Fatal(err)
		}
		// error path: unknown method → 400 with a JSON body
		if _, err := c.Fracture(ctx, geom.Polygon{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 60, Y: 60}, {X: 0, Y: 60}}, "no-such-method"); err == nil {
			t.Fatal("unknown method succeeded")
		}
		if _, err := c.Stats(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("server accepted %d connections across 12 requests, want 1 (bodies not drained?)", got)
	}
}
