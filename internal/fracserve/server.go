package fracserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"maskfrac"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
)

// Config tunes a fracturing server. Zero values select the defaults
// noted on each field.
type Config struct {
	// Workers is the solver pool size (default GOMAXPROCS via
	// maskfrac's convention; here default 4).
	Workers int
	// QueueDepth bounds the number of shapes waiting for a worker;
	// requests that would overflow it are rejected with 429 (default
	// 64).
	QueueDepth int
	// Params are the server's default fracturing parameters
	// (default maskfrac.DefaultParams()).
	Params maskfrac.Params
	// CacheEntries bounds the shape cache; 0 selects 4096 and a
	// negative value disables caching.
	CacheEntries int
	// DefaultTimeout caps requests that carry no timeout_ms
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// MaxShapes bounds the batch size of one request (default 4096).
	MaxShapes int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Params == (maskfrac.Params{}) {
		c.Params = maskfrac.DefaultParams()
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 4096
	}
	return c
}

// job is one shape waiting for a solver worker.
type job struct {
	ctx     context.Context
	target  geom.Polygon
	params  maskfrac.Params
	method  maskfrac.Method
	opt     *maskfrac.Options
	idx     int
	results []ItemResult
	omit    bool
	wg      *sync.WaitGroup
}

// methodAgg accumulates per-method serving statistics.
type methodAgg struct {
	count     uint64
	errors    uint64
	cacheHits uint64
	shots     uint64
	solve     time.Duration
}

// Server is the fracturing daemon: an HTTP handler backed by a bounded
// worker pool, a request queue and a content-addressed shape cache.
type Server struct {
	cfg   Config
	cache *maskfrac.ShapeCache
	jobs  chan *job
	mux   *http.ServeMux

	workerWg sync.WaitGroup
	httpSrv  *http.Server
	stopOnce sync.Once

	start time.Time

	mu         sync.Mutex
	requests   uint64
	rejected   uint64
	timeouts   uint64
	shapesDone uint64
	methods    map[string]*methodAgg

	// workDelay stalls each job before solving; tests use it to hold
	// the queue full or exceed request deadlines deterministically.
	workDelay time.Duration
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueDepth),
		methods: make(map[string]*methodAgg),
		start:   time.Now(),
	}
	if cfg.CacheEntries >= 0 {
		s.cache = maskfrac.NewShapeCache(cfg.CacheEntries)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/fracture", s.handleFracture)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	s.mux = mux
	s.httpSrv = &http.Server{Handler: mux}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: it stops accepting
// connections, waits for in-flight requests (and therefore their queued
// shapes) to finish within ctx, then stops the worker pool.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		err = s.httpSrv.Shutdown(ctx)
		close(s.jobs)
		done := make(chan struct{})
		go func() {
			s.workerWg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
	})
	return err
}

// worker pulls shapes off the queue and solves them.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for j := range s.jobs {
		s.run(j)
	}
}

// run solves one queued shape and records its result and statistics.
func (s *Server) run(j *job) {
	defer j.wg.Done()
	if s.workDelay > 0 {
		select {
		case <-time.After(s.workDelay):
		case <-j.ctx.Done():
		}
	}
	item := ItemResult{Index: j.idx}
	if err := j.ctx.Err(); err != nil {
		item.Error = err.Error()
		j.results[j.idx] = item
		s.record(j.method, &item)
		return
	}
	res, hit, err := maskfrac.FractureCached(j.ctx, j.target, j.params, j.method, j.opt, s.cache)
	if err != nil {
		item.Error = err.Error()
	} else {
		item.ShotCount = res.ShotCount()
		item.FailOn = res.FailOn
		item.FailOff = res.FailOff
		item.Cost = res.Cost
		item.Feasible = res.Feasible()
		item.CacheHit = hit
		item.SolveMS = float64(res.Runtime) / float64(time.Millisecond)
		item.EvalMS = float64(res.EvalTime) / float64(time.Millisecond)
		if !j.omit {
			item.Shots = maskio.ShotsWire(res.Shots)
		}
	}
	j.results[j.idx] = item
	s.record(j.method, &item)
}

// record folds a finished item into the per-method aggregates.
func (s *Server) record(m maskfrac.Method, item *ItemResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shapesDone++
	agg := s.methods[string(m)]
	if agg == nil {
		agg = &methodAgg{}
		s.methods[string(m)] = agg
	}
	agg.count++
	if item.Error != "" {
		agg.errors++
		return
	}
	if item.CacheHit {
		agg.cacheHits++
	}
	agg.shots += uint64(item.ShotCount)
	agg.solve += time.Duration(item.SolveMS * float64(time.Millisecond))
}

// handleFracture serves POST /fracture.
func (s *Server) handleFracture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()

	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wires := req.Shapes
	if req.Shape != nil {
		if wires != nil {
			writeError(w, http.StatusBadRequest, "set shape or shapes, not both")
			return
		}
		wires = [][][2]float64{req.Shape}
	}
	if len(wires) == 0 {
		writeError(w, http.StatusBadRequest, "no shapes")
		return
	}
	if len(wires) > s.cfg.MaxShapes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d shapes exceeds the per-request limit of %d", len(wires), s.cfg.MaxShapes))
		return
	}
	method := maskfrac.MethodMBF
	if req.Method != "" {
		method = maskfrac.Method(req.Method)
		if !knownMethod(method) {
			writeError(w, http.StatusBadRequest, "unknown method "+req.Method)
			return
		}
	}
	params := s.cfg.Params
	if req.Params != nil {
		params = mergeParams(params, *req.Params)
	}
	var opt *maskfrac.Options
	if req.Options != nil {
		opt = &maskfrac.Options{
			MaxIterations:  req.Options.MaxIterations,
			ColoringOrder:  req.Options.ColoringOrder,
			SkipRefinement: req.Options.SkipRefinement,
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	results := make([]ItemResult, len(wires))
	var wg sync.WaitGroup
	for i, wire := range wires {
		target, err := maskio.PolygonFromWire(wire)
		if err != nil {
			results[i] = ItemResult{Index: i, Error: err.Error()}
			continue
		}
		j := &job{
			ctx: ctx, target: target, params: params, method: method,
			opt: opt, idx: i, results: results, omit: req.OmitShots, wg: &wg,
		}
		wg.Add(1)
		select {
		case s.jobs <- j:
		default:
			// queue full: reject the whole request; jobs already queued
			// see the cancelled context and drain as no-ops
			wg.Done()
			cancel()
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			writeError(w, http.StatusTooManyRequests, "queue full, retry later")
			return
		}
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		s.timeouts++
		s.mu.Unlock()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+ctx.Err().Error())
		return
	}

	resp := Response{Results: results}
	for _, it := range results {
		resp.Summary.Shapes++
		if it.Error != "" {
			resp.Summary.Errors++
			continue
		}
		resp.Summary.Shots += it.ShotCount
		if it.Feasible {
			resp.Summary.Feasible++
		}
		if it.CacheHit {
			resp.Summary.CacheHits++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	reply := StatsReply{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests,
		Rejected:      s.rejected,
		Timeouts:      s.timeouts,
		ShapesDone:    s.shapesDone,
		QueueDepth:    len(s.jobs),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Methods:       make(map[string]MethodStats, len(s.methods)),
	}
	for name, agg := range s.methods {
		ms := MethodStats{
			Count:        agg.count,
			Errors:       agg.errors,
			CacheHits:    agg.cacheHits,
			Shots:        agg.shots,
			TotalSolveMS: float64(agg.solve) / float64(time.Millisecond),
		}
		if n := agg.count - agg.errors; n > 0 {
			ms.AvgSolveMS = ms.TotalSolveMS / float64(n)
		}
		reply.Methods[name] = ms
	}
	s.mu.Unlock()
	if s.cache != nil {
		cs := s.cache.Stats()
		reply.Cache = CacheStatsWire{
			Hits:       cs.Hits,
			Misses:     cs.Misses,
			Evictions:  cs.Evictions,
			Entries:    cs.Entries,
			Bytes:      cs.Bytes,
			MaxEntries: cs.MaxEntries,
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// knownMethod reports whether m is a supported fracturing method.
func knownMethod(m maskfrac.Method) bool {
	for _, k := range maskfrac.Methods() {
		if m == k {
			return true
		}
	}
	return false
}

// mergeParams overlays non-zero wire fields on the base parameters.
func mergeParams(base maskfrac.Params, w ParamsWire) maskfrac.Params {
	if w.Sigma != 0 {
		base.Sigma = w.Sigma
	}
	if w.Gamma != 0 {
		base.Gamma = w.Gamma
	}
	if w.Rho != 0 {
		base.Rho = w.Rho
	}
	if w.Pitch != 0 {
		base.Pitch = w.Pitch
	}
	if w.Lmin != 0 {
		base.Lmin = w.Lmin
	}
	if w.Beta != 0 {
		base.Beta = w.Beta
	}
	if w.Eta != 0 {
		base.Eta = w.Eta
	}
	return base
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorReply{Error: msg})
}
