package fracserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"maskfrac"
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/engine"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
	"maskfrac/internal/telemetry/tracestore"
)

// Config tunes a fracturing server. Zero values select the defaults
// noted on each field.
type Config struct {
	// Workers is the solver pool size (default GOMAXPROCS via
	// maskfrac's convention; here default 4).
	Workers int
	// QueueDepth bounds the number of shapes waiting for a worker;
	// requests that would overflow it are rejected with 429 (default
	// 64).
	QueueDepth int
	// Params are the server's default fracturing parameters
	// (default maskfrac.DefaultParams()).
	Params maskfrac.Params
	// CacheEntries bounds the shape cache; 0 selects 4096 and a
	// negative value disables caching.
	CacheEntries int
	// DefaultTimeout caps requests that carry no timeout_ms
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// MaxShapes bounds the batch size of one request (default 4096).
	MaxShapes int
	// Metrics is the registry behind /metrics and /stats; nil creates
	// a registry owned by this server. Two servers must not share one
	// registry (metric names would collide).
	Metrics *telemetry.Registry
	// Logger receives structured access and lifecycle logs (default:
	// discard everything).
	Logger *telemetry.Logger
	// TraceStore tunes retention of completed request traces served on
	// /debug/traces; zero values select the tracestore defaults.
	TraceStore tracestore.Config
	// EnablePprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Params == (maskfrac.Params{}) {
		c.Params = maskfrac.DefaultParams()
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxShapes <= 0 {
		c.MaxShapes = 4096
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = telemetry.NopLogger()
	}
	return c
}

// job is one shape waiting for a solver worker.
type job struct {
	ctx      context.Context
	reqID    string
	target   geom.Polygon
	params   maskfrac.Params
	method   maskfrac.Method
	opt      *maskfrac.Options
	idx      int
	results  []ItemResult
	omit     bool
	wg       *sync.WaitGroup
	enqueued time.Time
}

// Server is the fracturing daemon: an HTTP handler backed by a bounded
// worker pool, a request queue and a content-addressed shape cache,
// instrumented with a telemetry registry (served on /metrics) and a
// structured access log.
type Server struct {
	cfg    Config
	cache  *maskfrac.ShapeCache
	jobs   chan *job
	mux    *http.ServeMux
	log    *telemetry.Logger
	reg    *telemetry.Registry
	traces *tracestore.Store

	workerWg sync.WaitGroup
	httpSrv  *http.Server
	stopOnce sync.Once

	start time.Time

	// registry instruments; /stats is derived from these
	requests     *telemetry.Counter
	solveReqs    *telemetry.Counter
	planReqs     *telemetry.Counter
	planSelected *telemetry.Gauge
	planSavedSec *telemetry.Gauge
	rejected     *telemetry.Counter
	timeouts     *telemetry.Counter
	regionsHist  *telemetry.Histogram
	inflight     *telemetry.Gauge
	reqDur       *telemetry.HistogramVec // by endpoint path
	queueWait    *telemetry.Histogram
	shotsHist    *telemetry.Histogram
	mShapes      *telemetry.CounterVec   // shapes attempted, by method
	mErrors      *telemetry.CounterVec   // per-item errors, by method
	mHits        *telemetry.CounterVec   // cache hits, by method
	mShots       *telemetry.CounterVec   // shots produced, by method
	solveDur     *telemetry.HistogramVec // successful solve seconds, by method

	// graceful-drain accounting
	draining      atomic.Bool
	drained       atomic.Uint64 // shapes completed while draining
	drainRejected atomic.Uint64 // requests 429'd while draining

	// workDelay stalls each job before solving; tests use it to hold
	// the queue full or exceed request deadlines deterministically.
	workDelay time.Duration
}

// New builds a server, registers its metrics and starts its worker
// pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		jobs:   make(chan *job, cfg.QueueDepth),
		log:    cfg.Logger,
		reg:    cfg.Metrics,
		traces: tracestore.New(cfg.TraceStore),
		start:  time.Now(),
	}
	if cfg.CacheEntries >= 0 {
		s.cache = maskfrac.NewShapeCache(cfg.CacheEntries)
	}
	s.registerMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("/fracture", s.handleFracture)
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/plan", s.handlePlan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/stats/classes", s.handleClassUses)
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/traces/", s.handleTraces)
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	s.httpSrv = &http.Server{Handler: s.observe(mux)}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	return s
}

// registerMetrics creates every instrument on the server's registry.
func (s *Server) registerMetrics() {
	r := s.reg
	s.requests = r.Counter("fracd_requests_total",
		"POST /fracture requests received")
	s.solveReqs = r.Counter("fracd_solve_requests_total",
		"POST /solve requests received")
	s.planReqs = r.Counter("fracd_stencil_plans_total",
		"POST /plan stencil planning requests received")
	s.planSelected = r.Gauge("fracd_stencil_selected_classes",
		"characters selected by the most recent stencil plan")
	s.planSavedSec = r.Gauge("fracd_stencil_saved_seconds",
		"net modeled write-time saving of the most recent stencil plan")
	s.regionsHist = r.Histogram("fracd_regions_per_request",
		"independent regions per /solve instance",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.rejected = r.Counter("fracd_requests_rejected_total",
		"requests rejected with 429 because the work queue was full")
	s.timeouts = r.Counter("fracd_requests_timeout_total",
		"requests that exceeded their deadline (504)")
	s.inflight = r.Gauge("fracd_inflight_requests",
		"HTTP requests currently being served")
	s.reqDur = r.HistogramVec("fracd_request_duration_seconds",
		"HTTP request latency by endpoint", nil, "path")
	s.queueWait = r.Histogram("fracd_queue_wait_seconds",
		"time shapes spend queued before a worker picks them up", nil)
	s.shotsHist = r.Histogram("fracd_shots_per_shape",
		"shot count distribution of successful solves", telemetry.ShotCountBuckets)
	s.mShapes = r.CounterVec("fracd_shapes_total",
		"shapes attempted by method", "method")
	s.mErrors = r.CounterVec("fracd_shape_errors_total",
		"per-shape errors by method", "method")
	s.mHits = r.CounterVec("fracd_shape_cache_hits_total",
		"shapes served from the shape cache by method", "method")
	s.mShots = r.CounterVec("fracd_shots_total",
		"shots produced by method", "method")
	s.solveDur = r.HistogramVec("fracd_solve_duration_seconds",
		"solver wall time of successful shapes by method",
		telemetry.SolveDurationBuckets, "method")
	buildVersion, buildGo := buildInfo()
	r.GaugeVec("fracd_build_info",
		"build metadata; the gauge is always 1", "version", "go").
		With(buildVersion, buildGo).Set(1)
	r.GaugeFunc("fracd_queue_depth", "shapes waiting for a worker",
		func() float64 { return float64(len(s.jobs)) })
	r.GaugeFunc("fracd_queue_capacity", "configured work queue bound",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("fracd_workers", "solver worker pool size",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("fracd_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("fracd_traces_retained", "request traces retained in the trace store",
		func() float64 { _, retained, _ := s.traces.Stats(); return float64(retained) })
	r.CounterFunc("fracd_traces_dropped_total", "request traces dropped by the sampling policy",
		func() float64 { _, _, dropped := s.traces.Stats(); return float64(dropped) })
	r.CounterFunc("fracd_eval_mutations_total",
		"incremental evaluator mutations committed (process-wide)",
		func() float64 { return float64(cover.EvalCounters().Mutations) })
	r.CounterFunc("fracd_eval_pixels_mutated_total",
		"pixels scanned committing evaluator mutations (process-wide)",
		func() float64 { return float64(cover.EvalCounters().PixelsMutated) })
	r.CounterFunc("fracd_eval_pixels_scored_total",
		"pixels scanned scoring DeltaCost candidates (process-wide)",
		func() float64 { return float64(cover.EvalCounters().PixelsScored) })
	r.CounterFunc("fracd_eval_arena_hits_total",
		"evaluator buffer acquisitions served from an arena free list (process-wide)",
		func() float64 { return float64(cover.ArenaCounters().Hits) })
	r.CounterFunc("fracd_eval_arena_misses_total",
		"evaluator buffer acquisitions that allocated fresh memory (process-wide)",
		func() float64 { return float64(cover.ArenaCounters().Misses) })
	r.CounterFunc("fracd_eval_arena_bytes_reused_total",
		"bytes of evaluator buffers reused from arena free lists (process-wide)",
		func() float64 { return float64(cover.ArenaCounters().BytesReused) })
	r.CounterFunc("fracd_engine_steals_total",
		"engine region solves executed by work-stealing helper goroutines (process-wide)",
		func() float64 { return float64(engine.StealCount()) })
	evalPx := r.Histogram("fracd_eval_pixels_per_mutation",
		"pixels scanned committing one evaluator mutation",
		[]float64{64, 256, 1024, 4096, 16384, 65536, 262144})
	// the observer hook is process-wide (last registered server wins),
	// which matches the one-server deployment of fracd; the totals above
	// stay exact regardless
	cover.SetMutationObserver(func(px int) { evalPx.Observe(float64(px)) })
	if s.cache != nil {
		r.CounterFunc("fracd_shapecache_hits_total",
			"shape cache lookups answered from a stored entry or in-flight solve",
			func() float64 { return float64(s.cache.Stats().Hits) })
		r.CounterFunc("fracd_shapecache_misses_total",
			"shape cache lookups that ran the solver",
			func() float64 { return float64(s.cache.Stats().Misses) })
		r.CounterFunc("fracd_shapecache_evictions_total",
			"shape cache entries dropped by the LRU bound",
			func() float64 { return float64(s.cache.Stats().Evictions) })
		r.CounterFunc("fracd_shapecache_coalesced_total",
			"shape cache hits served by waiting on a concurrent in-flight solve",
			func() float64 { return float64(s.cache.Stats().Coalesced) })
		r.GaugeFunc("fracd_shapecache_entries", "stored shape cache entries",
			func() float64 { return float64(s.cache.Stats().Entries) })
		r.GaugeFunc("fracd_shapecache_bytes", "estimated shape cache footprint",
			func() float64 { return float64(s.cache.Stats().Bytes) })
	}
}

type reqIDKey struct{}

// requestID returns the request ID the observe middleware attached.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// statusWriter captures the response status and size for access logs.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// observe wraps the mux with per-request observability: a request ID
// (propagated from X-Request-ID or generated), the inflight gauge, the
// latency histogram and one structured access log line per request.
func (s *Server) observe(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = telemetry.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		s.inflight.Inc()
		defer s.inflight.Dec()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
		dur := time.Since(start)
		s.reqDur.With(pathLabel(r.URL.Path)).Observe(dur.Seconds())
		s.log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.code, "bytes", sw.bytes,
			"dur_ms", float64(dur)/float64(time.Millisecond))
	})
}

// pathLabel maps a request path to a bounded label set so an attacker
// cannot blow up metric cardinality with random paths.
func pathLabel(path string) string {
	switch path {
	case "/fracture", "/solve", "/plan", "/healthz", "/stats", "/stats/classes", "/metrics", "/clusterz":
		return path
	}
	if len(path) >= len("/debug/pprof") && path[:len("/debug/pprof")] == "/debug/pprof" {
		return "/debug/pprof"
	}
	if len(path) >= len("/debug/traces") && path[:len("/debug/traces")] == "/debug/traces" {
		return "/debug/traces"
	}
	return "other"
}

// buildInfo extracts the module version and Go toolchain baked into the
// binary for the fracd_build_info gauge.
func buildInfo() (version, goVersion string) {
	version, goVersion = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		} else {
			version = "devel"
			for _, kv := range bi.Settings {
				if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
					version = kv.Value[:12]
				}
			}
		}
	}
	return version, goVersion
}

// Handler returns the HTTP handler serving the endpoints, wrapped with
// the observability middleware.
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Handle mounts an extra handler (e.g. the cluster /clusterz view) on
// the server's mux; it runs under the same observability middleware.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Metrics returns the server's telemetry registry.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: it stops accepting
// connections, waits for in-flight requests (and therefore their queued
// shapes) to finish within ctx, then stops the worker pool. It logs the
// number of shapes drained and requests rejected during the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		s.log.Info("draining", "queued_shapes", len(s.jobs),
			"inflight_requests", int(s.inflight.Value()))
		err = s.httpSrv.Shutdown(ctx)
		close(s.jobs)
		done := make(chan struct{})
		go func() {
			s.workerWg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
		s.log.Info("drained",
			"drained_shapes", s.drained.Load(),
			"rejected_requests", s.drainRejected.Load(),
			"err", errString(err))
	})
	return err
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// worker pulls shapes off the queue and solves them.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for j := range s.jobs {
		s.run(j)
	}
}

// run solves one queued shape and records its result and statistics.
func (s *Server) run(j *job) {
	defer j.wg.Done()
	wait := time.Since(j.enqueued)
	s.queueWait.Observe(wait.Seconds())
	if s.workDelay > 0 {
		select {
		case <-time.After(s.workDelay):
		case <-j.ctx.Done():
		}
	}
	item := ItemResult{Index: j.idx}
	if err := j.ctx.Err(); err != nil {
		item.Error = err.Error()
		j.results[j.idx] = item
		s.record(j.method, &item)
		return
	}
	// one span per shape so the solver's phase spans (via StartSpan in
	// the engine and mbf packages) nest under the request's trace
	sctx, shapeSpan := telemetry.StartSpan(j.ctx, "fracd.shape")
	shapeSpan.Set("index", j.idx)
	res, hit, err := maskfrac.FractureCached(sctx, j.target, j.params, j.method, j.opt, s.cache)
	if err != nil {
		item.Error = err.Error()
	} else {
		item.ShotCount = res.ShotCount()
		if len(res.LPairs) > 0 {
			item.LPairs = res.LPairs
			item.FlashCount = res.FlashCount()
		}
		item.FailOn = res.FailOn
		item.FailOff = res.FailOff
		item.Cost = res.Cost
		item.Feasible = res.Feasible()
		item.CacheHit = hit
		item.SolveMS = float64(res.Runtime) / float64(time.Millisecond)
		item.EvalMS = float64(res.EvalTime) / float64(time.Millisecond)
		if !j.omit {
			item.Shots = maskio.ShotsWire(res.Shots)
		}
	}
	shapeSpan.Set("method", string(j.method))
	shapeSpan.Set("cache_hit", item.CacheHit)
	shapeSpan.Set("shots", item.ShotCount)
	if item.Error != "" {
		shapeSpan.Set("err", item.Error)
	}
	shapeSpan.End()
	j.results[j.idx] = item
	s.record(j.method, &item)
	if s.log.Enabled(telemetry.LevelDebug) {
		s.log.Debug("shape done",
			"id", j.reqID, "index", j.idx, "method", string(j.method),
			"shots", item.ShotCount, "cache_hit", item.CacheHit,
			"queue_wait_ms", float64(wait)/float64(time.Millisecond),
			"solve_ms", item.SolveMS, "err", item.Error)
	}
}

// record folds a finished item into the per-method metrics.
func (s *Server) record(m maskfrac.Method, item *ItemResult) {
	name := string(m)
	s.mShapes.With(name).Inc()
	if s.draining.Load() {
		s.drained.Add(1)
	}
	if item.Error != "" {
		s.mErrors.With(name).Inc()
		return
	}
	if item.CacheHit {
		s.mHits.With(name).Inc()
	}
	s.mShots.With(name).Add(float64(item.ShotCount))
	s.shotsHist.Observe(float64(item.ShotCount))
	s.solveDur.With(name).Observe(item.SolveMS / 1000)
}

// handleFracture serves POST /fracture.
func (s *Server) handleFracture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.requests.Inc()
	reqID := requestID(r.Context())
	tctx, root, remote := s.traceStart(r, "fracd.fracture")
	fail := func(code int, msg string) {
		s.finishTrace(root, remote, reqID, msg)
		writeError(w, code, msg)
	}

	var req Request
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	wires := req.Shapes
	if req.Shape != nil {
		if wires != nil {
			fail(http.StatusBadRequest, "set shape or shapes, not both")
			return
		}
		wires = [][][2]float64{req.Shape}
	}
	if len(wires) == 0 {
		fail(http.StatusBadRequest, "no shapes")
		return
	}
	if len(wires) > s.cfg.MaxShapes {
		fail(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d shapes exceeds the per-request limit of %d", len(wires), s.cfg.MaxShapes))
		return
	}
	method := maskfrac.MethodMBF
	if req.Method != "" {
		method = maskfrac.Method(req.Method)
		if !knownMethod(method) {
			fail(http.StatusBadRequest, "unknown method "+req.Method)
			return
		}
	}
	root.Set("shapes", len(wires))
	root.Set("method", string(method))
	params := s.cfg.Params
	if req.Params != nil {
		params = mergeParams(params, *req.Params)
	}
	var opt *maskfrac.Options
	if req.Options != nil {
		opt = &maskfrac.Options{
			MaxIterations:  req.Options.MaxIterations,
			ColoringOrder:  req.Options.ColoringOrder,
			SkipRefinement: req.Options.SkipRefinement,
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(tctx, timeout)
	defer cancel()

	results := make([]ItemResult, len(wires))
	var wg sync.WaitGroup
	for i, wire := range wires {
		target, err := maskio.PolygonFromWire(wire)
		if err != nil {
			results[i] = ItemResult{Index: i, Error: err.Error()}
			continue
		}
		j := &job{
			ctx: ctx, reqID: reqID, target: target, params: params,
			method: method, opt: opt, idx: i, results: results,
			omit: req.OmitShots, wg: &wg, enqueued: time.Now(),
		}
		wg.Add(1)
		select {
		case s.jobs <- j:
		default:
			// queue full: reject the whole request; jobs already queued
			// see the cancelled context and drain as no-ops
			wg.Done()
			cancel()
			s.rejected.Inc()
			if s.draining.Load() {
				s.drainRejected.Add(1)
			}
			s.log.Warn("queue full", "id", reqID, "shapes", len(wires), "queued_at", i)
			// Retry-After paces well-behaved clients off the thundering
			// herd: roughly one queue-drain's worth of head start.
			w.Header().Set("Retry-After", "1")
			fail(http.StatusTooManyRequests, "queue full, retry later")
			return
		}
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.timeouts.Inc()
		s.log.Warn("deadline exceeded", "id", reqID, "shapes", len(wires),
			"timeout_ms", float64(timeout)/float64(time.Millisecond))
		fail(http.StatusGatewayTimeout, "deadline exceeded: "+ctx.Err().Error())
		return
	}

	resp := Response{Results: results}
	pairs := 0
	for _, it := range results {
		resp.Summary.Shapes++
		if it.Error != "" {
			resp.Summary.Errors++
			continue
		}
		resp.Summary.Shots += it.ShotCount
		pairs += len(it.LPairs)
		if it.Feasible {
			resp.Summary.Feasible++
		}
		if it.CacheHit {
			resp.Summary.CacheHits++
		}
	}
	if pairs > 0 {
		resp.Summary.Flashes = resp.Summary.Shots - pairs
	}
	resp.TraceID = root.TraceID()
	wire := s.finishTrace(root, remote, reqID, "")
	if req.ReturnTrace || remote {
		resp.Trace = wire
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleStats serves GET /stats. The wire format predates /metrics and
// is kept for compatibility; every value is derived from the registry
// instruments.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      uint64(s.requests.Value()),
		Rejected:      uint64(s.rejected.Value()),
		Timeouts:      uint64(s.timeouts.Value()),
		QueueDepth:    len(s.jobs),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Methods:       make(map[string]MethodStats),
	}
	s.mShapes.Each(func(values []string, c *telemetry.Counter) {
		name := values[0]
		count := uint64(c.Value())
		reply.ShapesDone += count
		solve := s.solveDur.With(name)
		ms := MethodStats{
			Count:        count,
			Errors:       uint64(s.mErrors.With(name).Value()),
			CacheHits:    uint64(s.mHits.With(name).Value()),
			Shots:        uint64(s.mShots.With(name).Value()),
			TotalSolveMS: solve.Sum() * 1e3,
		}
		if n := solve.Count(); n > 0 {
			ms.AvgSolveMS = ms.TotalSolveMS / float64(n)
		}
		reply.Methods[name] = ms
	})
	if s.cache != nil {
		cs := s.cache.Stats()
		reply.Cache = CacheStatsWire{
			Hits:       cs.Hits,
			Misses:     cs.Misses,
			Evictions:  cs.Evictions,
			Coalesced:  cs.Coalesced,
			Entries:    cs.Entries,
			Bytes:      cs.Bytes,
			MaxEntries: cs.MaxEntries,
		}
		if v := r.URL.Query().Get("classes"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil || k < 0 {
				writeError(w, http.StatusBadRequest, "classes must be a non-negative integer")
				return
			}
			reply.TopClasses = topClassesWire(s.cache.TopClasses(k))
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

// knownMethod reports whether m is a supported fracturing method.
func knownMethod(m maskfrac.Method) bool {
	for _, k := range maskfrac.Methods() {
		if m == k {
			return true
		}
	}
	return false
}

// mergeParams overlays non-zero wire fields on the base parameters.
func mergeParams(base maskfrac.Params, w ParamsWire) maskfrac.Params {
	if w.Sigma != 0 {
		base.Sigma = w.Sigma
	}
	if w.Gamma != 0 {
		base.Gamma = w.Gamma
	}
	if w.Rho != 0 {
		base.Rho = w.Rho
	}
	if w.Pitch != 0 {
		base.Pitch = w.Pitch
	}
	if w.Lmin != 0 {
		base.Lmin = w.Lmin
	}
	if w.Beta != 0 {
		base.Beta = w.Beta
	}
	if w.Eta != 0 {
		base.Eta = w.Eta
	}
	return base
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorReply{Error: msg})
}
