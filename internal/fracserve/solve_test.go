package fracserve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
)

// solveShapes builds a two-region instance: two squares far outside
// the ~41.5 nm proximity interaction range.
func solveShapes() []geom.Polygon {
	return []geom.Polygon{
		testShape(60),
		testShape(70).Translate(geom.Pt(300, 300)),
	}
}

func TestE2ESolveMultiRegion(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	ctx := context.Background()

	resp, err := c.SolveShapes(ctx, solveShapes(), "gsc")
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if resp.Regions != 2 {
		t.Errorf("regions = %d, want 2", resp.Regions)
	}
	if resp.ShotCount == 0 || len(resp.Shots) != resp.ShotCount {
		t.Errorf("shot_count = %d with %d shots on the wire", resp.ShotCount, len(resp.Shots))
	}
	if resp.Quality != nil {
		t.Error("quality present without include_quality")
	}
	if _, err := resp.ShotRects(); err != nil {
		t.Errorf("shot decode: %v", err)
	}

	// the regions histogram observed the decomposition
	text := string(s.Metrics().WritePrometheus(nil))
	if !strings.Contains(text, "fracd_regions_per_request") {
		t.Error("metrics missing fracd_regions_per_request")
	}
	if !strings.Contains(text, "fracd_solve_requests_total 1") {
		t.Error("metrics missing fracd_solve_requests_total 1")
	}
}

func TestE2ESolveQualityAndOmitShots(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 32})
	ctx := context.Background()

	wires := make([][][2]float64, 0, 2)
	for _, p := range solveShapes() {
		wires = append(wires, maskio.PolygonWire(p))
	}
	resp, err := c.Solve(ctx, &SolveRequest{
		Shapes:         wires,
		Method:         "gsc",
		OmitShots:      true,
		IncludeQuality: true,
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if resp.Shots != nil {
		t.Error("omit_shots returned shots")
	}
	if resp.ShotCount == 0 {
		t.Error("shot_count = 0")
	}
	q := resp.Quality
	if q == nil {
		t.Fatal("include_quality returned no quality block")
	}
	if q.EPESamples == 0 {
		t.Error("quality has no EPE samples")
	}
	if q.MinShotDim <= 0 {
		t.Errorf("min shot dim = %v", q.MinShotDim)
	}
	if q.MeanAspect < 1 {
		t.Errorf("mean aspect = %v, want >= 1", q.MeanAspect)
	}
}

// TestE2ESolveDeterministicAcrossWorkers is the service-level
// determinism guard: the same instance solved with 1 and 4 workers
// returns identical shot lists and evaluation results.
func TestE2ESolveDeterministicAcrossWorkers(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	ctx := context.Background()

	wires := make([][][2]float64, 0, 2)
	for _, p := range solveShapes() {
		wires = append(wires, maskio.PolygonWire(p))
	}
	seq, err := c.Solve(ctx, &SolveRequest{Shapes: wires, Method: "mbf", Workers: 1})
	if err != nil {
		t.Fatalf("solve workers=1: %v", err)
	}
	par, err := c.Solve(ctx, &SolveRequest{Shapes: wires, Method: "mbf", Workers: 4})
	if err != nil {
		t.Fatalf("solve workers=4: %v", err)
	}
	if !reflect.DeepEqual(seq.Shots, par.Shots) {
		t.Error("workers=1 and workers=4 shot lists differ")
	}
	if seq.FailOn != par.FailOn || seq.FailOff != par.FailOff {
		t.Errorf("fail counts differ: %d/%d vs %d/%d",
			seq.FailOn, seq.FailOff, par.FailOn, par.FailOff)
	}
}

func TestE2ESolveRejections(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxShapes: 2})
	ctx := context.Background()

	cases := []struct {
		name string
		req  *SolveRequest
		want string
	}{
		{"no shapes", &SolveRequest{}, "no shapes"},
		{"unknown method", &SolveRequest{
			Shapes: [][][2]float64{maskio.PolygonWire(testShape(60))},
			Method: "bogus",
		}, "unknown method"},
		{"too many shapes", &SolveRequest{
			Shapes: [][][2]float64{
				maskio.PolygonWire(testShape(60)),
				maskio.PolygonWire(testShape(60)),
				maskio.PolygonWire(testShape(60)),
			},
		}, "per-request limit"},
		{"degenerate shape", &SolveRequest{
			Shapes: [][][2]float64{{{0, 0}, {1, 1}}},
		}, "shape 0"},
	}
	for _, tc := range cases {
		if _, err := c.Solve(ctx, tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestE2ESolveDeadline(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	wires := make([][][2]float64, 0, 2)
	for _, p := range solveShapes() {
		wires = append(wires, maskio.PolygonWire(p))
	}
	// Workers: 1 makes expiry deterministic: the deadline passes while
	// the first region solves (an MBF solve takes far more than 1 ms),
	// so the second region's pre-solve context check always fires. With
	// more workers both regions could be dispatched before expiry and
	// the request would legitimately succeed.
	_, err := c.Solve(ctx, &SolveRequest{Shapes: wires, Method: "mbf", Workers: 1, TimeoutMS: 1})
	if err == nil {
		t.Fatal("1 ms deadline succeeded")
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("err = %v, want ErrDeadline", err)
	}
}
