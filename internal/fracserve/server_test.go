package fracserve

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"maskfrac"
	"maskfrac/internal/geom"
)

func testShape(side float64) geom.Polygon {
	return geom.Polygon{{X: 0, Y: 0}, {X: side, Y: 0}, {X: side, Y: side}, {X: 0, Y: side}}
}

func testL() geom.Polygon {
	return geom.Polygon{
		{X: 0, Y: 0}, {X: 90, Y: 0}, {X: 90, Y: 30},
		{X: 30, Y: 30}, {X: 30, Y: 120}, {X: 0, Y: 120},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

func TestE2ESuccessfulBatch(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	shapes := []geom.Polygon{
		testL(),
		testL().Translate(geom.Pt(500, 100)), // congruent: cache hit
		testShape(70),
		{{X: 0, Y: 0}, {X: 1, Y: 1}}, // degenerate: per-item error
	}
	resp, err := c.FractureBatch(ctx, shapes, "proto-eda")
	if err != nil {
		t.Fatalf("fracture batch: %v", err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for i, it := range resp.Results {
		if it.Index != i {
			t.Errorf("result %d has index %d", i, it.Index)
		}
	}
	if resp.Results[3].Error == "" {
		t.Error("degenerate shape produced no error")
	}
	for _, i := range []int{0, 1, 2} {
		it := resp.Results[i]
		if it.Error != "" {
			t.Errorf("shape %d failed: %s", i, it.Error)
		}
		if it.ShotCount == 0 || len(it.Shots) != it.ShotCount {
			t.Errorf("shape %d: %d shots, %d on wire", i, it.ShotCount, len(it.Shots))
		}
		if _, err := it.ShotRects(); err != nil {
			t.Errorf("shape %d: bad wire shots: %v", i, err)
		}
	}
	// shapes 0 and 1 are congruent: exactly one computes, the other is
	// served from the cache. Which one waits depends on worker
	// scheduling (singleflight), so assert the pair, not an index.
	if resp.Results[0].CacheHit == resp.Results[1].CacheHit {
		t.Errorf("congruent pair cache hits = %v/%v, want exactly one",
			resp.Results[0].CacheHit, resp.Results[1].CacheHit)
	}
	if resp.Results[0].ShotCount != resp.Results[1].ShotCount {
		t.Error("congruent shapes differ in shot count")
	}
	if resp.Summary.Shapes != 4 || resp.Summary.Errors != 1 || resp.Summary.CacheHits == 0 {
		t.Errorf("summary = %+v", resp.Summary)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Requests == 0 || st.ShapesDone < 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
	if st.Methods["proto-eda"].Count == 0 {
		t.Errorf("method stats missing: %+v", st.Methods)
	}
	_ = s
}

func TestE2EQueueOverflow429(t *testing.T) {
	// one worker stalled long enough to hold jobs in a depth-1 queue
	s := New(Config{Workers: 1, QueueDepth: 1})
	s.workDelay = 300 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	ctx := context.Background()

	// the first batch occupies the worker and fills the queue; a
	// concurrent one must overflow
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.FractureBatch(ctx, []geom.Polygon{testShape(60), testShape(62)}, "proto-eda")
	}()
	time.Sleep(50 * time.Millisecond) // let the first batch enqueue

	sawOverflow := false
	for i := 0; i < 10 && !sawOverflow; i++ {
		_, err := c.FractureBatch(ctx, []geom.Polygon{testShape(64), testShape(66)}, "proto-eda")
		if errors.Is(err, ErrQueueFull) {
			sawOverflow = true
			// the 429 carries the server's Retry-After pacing hint
			if after, ok := RetryAfter(err); !ok || after <= 0 {
				t.Errorf("RetryAfter(%v) = %v, %v; want a positive hint", err, after, ok)
			}
			var qf *QueueFullError
			if !errors.As(err, &qf) {
				t.Errorf("429 error is %T, want *QueueFullError", err)
			}
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	wg.Wait()
	if !sawOverflow {
		t.Fatal("no 429 despite a full queue")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Errorf("rejected counter = 0, stats %+v", st)
	}
}

func TestE2EPerRequestDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	s.workDelay = 500 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	_, err := c.Do(context.Background(), &Request{
		Shape:     [][2]float64{{0, 0}, {60, 0}, {60, 60}, {0, 60}},
		Method:    "proto-eda",
		TimeoutMS: 50,
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Timeouts == 0 {
		t.Errorf("timeout counter = 0, stats %+v", st)
	}
}

func TestE2EGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	s.workDelay = 200 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	c := NewClient("http://" + l.Addr().String())

	type reply struct {
		resp *Response
		err  error
	}
	inFlight := make(chan reply, 1)
	go func() {
		resp, err := c.FractureBatch(context.Background(), []geom.Polygon{testShape(70)}, "proto-eda")
		inFlight <- reply{resp, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the queue

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-inFlight
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if len(r.resp.Results) != 1 || r.resp.Results[0].Error != "" || r.resp.Results[0].ShotCount == 0 {
		t.Errorf("in-flight result = %+v", r.resp.Results)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}
	// new connections are refused after shutdown
	if err := c.Healthz(context.Background()); err == nil {
		t.Error("healthz succeeded after shutdown")
	}
}

func TestE2EBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()
	if _, err := c.Do(ctx, &Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := c.Do(ctx, &Request{Shape: [][2]float64{{0, 0}, {60, 0}, {60, 60}, {0, 60}}, Method: "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := c.Do(ctx, &Request{
		Shape:  [][2]float64{{0, 0}, {60, 0}, {60, 60}, {0, 60}},
		Shapes: [][][2]float64{{{0, 0}, {60, 0}, {60, 60}, {0, 60}}},
	}); err == nil {
		t.Error("shape+shapes accepted")
	}
}

func TestE2EOmitShotsAndParamsOverride(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, err := c.Do(context.Background(), &Request{
		Shape:     [][2]float64{{0, 0}, {80, 0}, {80, 80}, {0, 80}},
		Method:    "proto-eda",
		Params:    &ParamsWire{Gamma: 3},
		OmitShots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	it := resp.Results[0]
	if it.Error != "" {
		t.Fatalf("item error: %s", it.Error)
	}
	if it.Shots != nil {
		t.Error("shots present despite omit_shots")
	}
	if it.ShotCount == 0 {
		t.Error("shot count missing")
	}
}

func TestServerCacheDisabled(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8, CacheEntries: -1})
	shapes := []geom.Polygon{testL(), testL().Translate(geom.Pt(10, 10))}
	resp, err := c.FractureBatch(context.Background(), shapes, "proto-eda")
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range resp.Results {
		if it.CacheHit {
			t.Errorf("item %d hit a disabled cache", i)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.MaxEntries != 0 {
		t.Errorf("cache stats reported despite disabled cache: %+v", st.Cache)
	}
}

// compile-time check that the maskfrac default method list stays in
// sync with the server's validation.
var _ = maskfrac.Methods
