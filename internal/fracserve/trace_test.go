package fracserve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
)

// TestTracePropagationE2E drives a traced client request through a real
// HTTP round trip and asserts the tentpole behaviors: the caller's
// traceparent is adopted by the server (phase spans under the caller's
// trace ID), the trace is pinned in /debug/traces/{id}, and the
// response trace stitches into the client's local tree as one
// waterfall.
func TestTracePropagationE2E(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 16})

	ctx, root := telemetry.WithTrace(context.Background(), "client")
	_, call := telemetry.StartSpan(ctx, "fracserve.request")
	resp, err := c.Do(telemetry.ContextWithSpan(ctx, call), &Request{
		Shape:  maskio.PolygonWire(testL()),
		Method: "proto-eda",
	})
	call.End()
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Summary.Errors != 0 {
		t.Fatalf("errors: %+v", resp.Summary)
	}

	// the server must have joined the caller's trace
	if resp.TraceID != root.TraceID() {
		t.Fatalf("server trace ID %q, want caller's %q", resp.TraceID, root.TraceID())
	}
	// a traceparent-carrying request gets its trace back implicitly
	if resp.Trace == nil {
		t.Fatal("no trace in response despite traceparent")
	}
	if resp.Trace.ParentID != call.ID() {
		t.Fatalf("remote root parent %q, want caller span %q", resp.Trace.ParentID, call.ID())
	}
	if resp.Trace.Find("fracd.shape") == nil {
		t.Fatalf("remote trace has no fracd.shape span:\n%+v", resp.Trace)
	}
	// solver phase spans made it across the wire
	if resp.Trace.Find("solve") == nil {
		t.Fatal("remote trace has no solver phase span")
	}

	// the server retained the trace, pinned, under the caller's trace ID
	tr, ok := s.Traces().Get(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not retained on server", root.TraceID())
	}
	if !tr.Pinned {
		t.Error("remote-requested trace not pinned")
	}
	if tr.Root.Find("fracd.shape") == nil {
		t.Error("retained trace has no fracd.shape span")
	}
	if tr.RequestID == "" {
		t.Error("retained trace has no request ID")
	}

	// stitching: grafting the remote tree under the call span yields one
	// tree whose every span shares the caller's trace ID
	call.AdoptWire(resp.Trace)
	root.End()
	stitched := root.Find("fracd.fracture")
	if stitched == nil {
		t.Fatal("stitched tree has no fracd.fracture span")
	}
	if stitched.TraceID() != root.TraceID() {
		t.Fatalf("stitched span trace %q, want %q", stitched.TraceID(), root.TraceID())
	}
	if root.Find("solve") == nil {
		t.Fatal("stitched tree has no solver phase span")
	}

	// /debug/traces lists it; /debug/traces/{id} serves the full tree
	httpGet := func(path string, out any) {
		t.Helper()
		hr, _ := http.NewRequest(http.MethodGet, c.BaseURL+path, nil)
		resp, err := c.http().Do(hr)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	var list TraceListReply
	httpGet("/debug/traces", &list)
	found := false
	for _, sum := range list.Traces {
		if sum.TraceID == root.TraceID() {
			found = true
			if sum.Kept != "pinned" && sum.Kept != "slow" && sum.Kept != "sampled" {
				t.Errorf("kept = %q", sum.Kept)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in /debug/traces listing", root.TraceID())
	}
	var one TraceReply
	httpGet("/debug/traces/"+root.TraceID(), &one)
	if one.Trace.Root.Find("fracd.shape") == nil {
		t.Error("served trace has no fracd.shape span")
	}
	if len(one.Text) == 0 {
		t.Error("served trace has no rendered waterfall")
	}
}

// TestTraceWithoutCaller asserts untraced requests still produce a
// server-local trace with a fresh trace ID and no response trace.
func TestTraceWithoutCaller(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	resp, err := c.Do(context.Background(), &Request{
		Shape:  maskio.PolygonWire(testShape(60)),
		Method: "proto-eda",
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.TraceID == "" {
		t.Fatal("no trace ID on untraced request")
	}
	if resp.Trace != nil {
		t.Fatal("trace returned without return_trace or traceparent")
	}
	if _, ok := s.Traces().Get(resp.TraceID); !ok {
		t.Fatal("untraced request's trace not retained (SampleRate defaults to 1)")
	}

	// return_trace opts in explicitly
	resp, err = c.Do(context.Background(), &Request{
		Shape:       maskio.PolygonWire(testShape(60)),
		Method:      "proto-eda",
		ReturnTrace: true,
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Trace == nil {
		t.Fatal("return_trace ignored")
	}
}
