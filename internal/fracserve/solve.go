package fracserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"maskfrac"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
)

// handleSolve serves POST /solve: one multi-shape instance through the
// decompose–solve–stitch engine. The solve runs on the request
// goroutine — region-level concurrency is bounded by the engine's own
// worker pool, not the /fracture shape queue.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.solveReqs.Inc()
	reqID := requestID(r.Context())
	tctx, root, remote := s.traceStart(r, "fracd.solve")
	fail := func(code int, msg string) {
		s.finishTrace(root, remote, reqID, msg)
		writeError(w, code, msg)
	}

	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Shapes) == 0 {
		fail(http.StatusBadRequest, "no shapes")
		return
	}
	if len(req.Shapes) > s.cfg.MaxShapes {
		fail(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d shapes exceeds the per-request limit of %d", len(req.Shapes), s.cfg.MaxShapes))
		return
	}
	method := maskfrac.MethodMBF
	if req.Method != "" {
		method = maskfrac.Method(req.Method)
		if !knownMethod(method) {
			fail(http.StatusBadRequest, "unknown method "+req.Method)
			return
		}
	}
	root.Set("shapes", len(req.Shapes))
	root.Set("method", string(method))
	params := s.cfg.Params
	if req.Params != nil {
		params = mergeParams(params, *req.Params)
	}
	opt := &maskfrac.Options{Workers: req.Workers}
	if opt.Workers <= 0 {
		opt.Workers = s.cfg.Workers
	}
	if req.Options != nil {
		opt.MaxIterations = req.Options.MaxIterations
		opt.ColoringOrder = req.Options.ColoringOrder
		opt.SkipRefinement = req.Options.SkipRefinement
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(tctx, timeout)
	defer cancel()

	targets := make([]geom.Polygon, len(req.Shapes))
	for i, wire := range req.Shapes {
		target, err := maskio.PolygonFromWire(wire)
		if err != nil {
			fail(http.StatusBadRequest, fmt.Sprintf("shape %d: %s", i, err))
			return
		}
		targets[i] = target
	}
	prob, err := maskfrac.NewMultiProblem(targets, params)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}

	res, err := prob.FractureCtx(ctx, method, opt)
	item := ItemResult{}
	if err != nil {
		item.Error = err.Error()
		s.record(method, &item)
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			s.timeouts.Inc()
			s.log.Warn("solve deadline exceeded", "id", reqID,
				"shapes", len(targets),
				"timeout_ms", float64(timeout)/float64(time.Millisecond))
			fail(http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
			return
		}
		fail(http.StatusUnprocessableEntity, err.Error())
		return
	}

	resp := SolveResponse{
		ShotCount: res.ShotCount(),
		LPairs:    res.LPairs,
		Regions:   res.Regions,
		FailOn:    res.FailOn,
		FailOff:   res.FailOff,
		Cost:      res.Cost,
		Feasible:  res.Feasible(),
		SolveMS:   float64(res.Runtime) / float64(time.Millisecond),
		EvalMS:    float64(res.EvalTime) / float64(time.Millisecond),
	}
	if len(res.LPairs) > 0 {
		resp.FlashCount = res.FlashCount()
	}
	if !req.OmitShots {
		resp.Shots = maskio.ShotsWire(res.Shots)
	}
	if req.IncludeQuality {
		epe := prob.EPE(res.Shots, 0)
		sl := prob.Slivers(res.Shots, 0)
		resp.Quality = &QualityWire{
			EPESamples: epe.Samples,
			EPEMeanNM:  epe.Mean,
			EPERMSNM:   epe.RMS,
			EPEMaxNM:   epe.Max,
			EPEP95NM:   epe.P95,
			Slivers:    sl.Slivers,
			MinShotDim: sl.MinDim,
			MeanAspect: sl.MeanAspect,
		}
	}

	s.regionsHist.Observe(float64(res.Regions))
	item.ShotCount = resp.ShotCount
	item.FailOn = resp.FailOn
	item.FailOff = resp.FailOff
	item.Cost = resp.Cost
	item.Feasible = resp.Feasible
	item.SolveMS = resp.SolveMS
	item.EvalMS = resp.EvalMS
	s.record(method, &item)
	if s.log.Enabled(telemetry.LevelDebug) {
		s.log.Debug("solve done",
			"id", reqID, "method", string(method), "shapes", len(targets),
			"regions", resp.Regions, "shots", resp.ShotCount,
			"solve_ms", resp.SolveMS)
	}
	resp.TraceID = root.TraceID()
	wire := s.finishTrace(root, remote, reqID, "")
	if req.ReturnTrace || remote {
		resp.Trace = wire
	}
	writeJSON(w, http.StatusOK, resp)
}
