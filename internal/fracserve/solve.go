package fracserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"maskfrac"
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
	"maskfrac/internal/telemetry"
)

// handleSolve serves POST /solve: one multi-shape instance through the
// decompose–solve–stitch engine. The solve runs on the request
// goroutine — region-level concurrency is bounded by the engine's own
// worker pool, not the /fracture shape queue.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.solveReqs.Inc()

	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Shapes) == 0 {
		writeError(w, http.StatusBadRequest, "no shapes")
		return
	}
	if len(req.Shapes) > s.cfg.MaxShapes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d shapes exceeds the per-request limit of %d", len(req.Shapes), s.cfg.MaxShapes))
		return
	}
	method := maskfrac.MethodMBF
	if req.Method != "" {
		method = maskfrac.Method(req.Method)
		if !knownMethod(method) {
			writeError(w, http.StatusBadRequest, "unknown method "+req.Method)
			return
		}
	}
	params := s.cfg.Params
	if req.Params != nil {
		params = mergeParams(params, *req.Params)
	}
	opt := &maskfrac.Options{Workers: req.Workers}
	if opt.Workers <= 0 {
		opt.Workers = s.cfg.Workers
	}
	if req.Options != nil {
		opt.MaxIterations = req.Options.MaxIterations
		opt.ColoringOrder = req.Options.ColoringOrder
		opt.SkipRefinement = req.Options.SkipRefinement
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	reqID := requestID(r.Context())

	targets := make([]geom.Polygon, len(req.Shapes))
	for i, wire := range req.Shapes {
		target, err := maskio.PolygonFromWire(wire)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("shape %d: %s", i, err))
			return
		}
		targets[i] = target
	}
	prob, err := maskfrac.NewMultiProblem(targets, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res, err := prob.FractureCtx(ctx, method, opt)
	item := ItemResult{}
	if err != nil {
		item.Error = err.Error()
		s.record(method, &item)
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			s.timeouts.Inc()
			s.log.Warn("solve deadline exceeded", "id", reqID,
				"shapes", len(targets),
				"timeout_ms", float64(timeout)/float64(time.Millisecond))
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	resp := SolveResponse{
		ShotCount: res.ShotCount(),
		Regions:   res.Regions,
		FailOn:    res.FailOn,
		FailOff:   res.FailOff,
		Cost:      res.Cost,
		Feasible:  res.Feasible(),
		SolveMS:   float64(res.Runtime) / float64(time.Millisecond),
		EvalMS:    float64(res.EvalTime) / float64(time.Millisecond),
	}
	if !req.OmitShots {
		resp.Shots = maskio.ShotsWire(res.Shots)
	}
	if req.IncludeQuality {
		epe := prob.EPE(res.Shots, 0)
		sl := prob.Slivers(res.Shots, 0)
		resp.Quality = &QualityWire{
			EPESamples: epe.Samples,
			EPEMeanNM:  epe.Mean,
			EPERMSNM:   epe.RMS,
			EPEMaxNM:   epe.Max,
			EPEP95NM:   epe.P95,
			Slivers:    sl.Slivers,
			MinShotDim: sl.MinDim,
			MeanAspect: sl.MeanAspect,
		}
	}

	s.regionsHist.Observe(float64(res.Regions))
	item.ShotCount = resp.ShotCount
	item.FailOn = resp.FailOn
	item.FailOff = resp.FailOff
	item.Cost = resp.Cost
	item.Feasible = resp.Feasible
	item.SolveMS = resp.SolveMS
	item.EvalMS = resp.EvalMS
	s.record(method, &item)
	if s.log.Enabled(telemetry.LevelDebug) {
		s.log.Debug("solve done",
			"id", reqID, "method", string(method), "shapes", len(targets),
			"regions", resp.Regions, "shots", resp.ShotCount,
			"solve_ms", resp.SolveMS)
	}
	writeJSON(w, http.StatusOK, resp)
}
