package fracserve

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"maskfrac"
	"maskfrac/internal/maskio"
	"maskfrac/internal/stencil"
	"maskfrac/internal/writecost"
)

// defaultPlanTopK bounds the mined candidate set when a /plan request
// does not choose one.
const defaultPlanTopK = 256

// topClassesWire converts the cache's class records to the wire form
// the planner consumes, hex-encoding the canonical keys.
func topClassesWire(stats []maskfrac.ClassStat) []stencil.Class {
	out := make([]stencil.Class, len(stats))
	for i, st := range stats {
		out[i] = stencil.Class{
			Key:        hex.EncodeToString(st.Key[:]),
			Placements: int64(st.Placements),
			Shots:      st.Shots,
			Flashes:    st.Flashes,
			W:          st.W,
			H:          st.H,
		}
	}
	return out
}

// handleClassUses serves POST /stats/classes: credit congruence
// classes with placements a batch client resolved from its own memo.
// Without this, the stencil planner's placement counts measure wire
// requests instead of mask placements and undervalue heavily memoized
// classes.
func (s *Server) handleClassUses(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cache == nil {
		writeError(w, http.StatusBadRequest, "class statistics need the shape cache; the server runs with caching disabled")
		return
	}
	var req ClassUsesRequest
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// the key derivation must mirror handleFracture exactly — method,
	// params and options are baked into the class key
	method := maskfrac.MethodMBF
	if req.Method != "" {
		method = maskfrac.Method(req.Method)
		if !knownMethod(method) {
			writeError(w, http.StatusBadRequest, "unknown method "+req.Method)
			return
		}
	}
	params := s.cfg.Params
	if req.Params != nil {
		params = mergeParams(params, *req.Params)
	}
	var opt *maskfrac.Options
	if req.Options != nil {
		opt = &maskfrac.Options{
			MaxIterations:  req.Options.MaxIterations,
			ColoringOrder:  req.Options.ColoringOrder,
			SkipRefinement: req.Options.SkipRefinement,
		}
	}
	reply := ClassUsesReply{}
	for i, cu := range req.Classes {
		target, err := maskio.PolygonFromWire(cu.Shape)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("class %d: %s", i, err))
			return
		}
		key, err := maskfrac.CacheKeyFor(target, params, method, opt)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("class %d: %s", i, err))
			return
		}
		if cu.Uses == 0 {
			continue
		}
		s.cache.AddClassUses(key, cu.Uses)
		reply.Credited++
	}
	writeJSON(w, http.StatusOK, reply)
}

// modelWith overlays a request's CP overrides on the default cost
// model.
func modelWith(cp *CPWire) writecost.Model {
	m := writecost.Default()
	if cp == nil {
		return m
	}
	if cp.ShotNS > 0 {
		m.ShotTime = time.Duration(cp.ShotNS * float64(time.Nanosecond))
	}
	if cp.FlashNS > 0 {
		m.CPFlashTime = time.Duration(cp.FlashNS * float64(time.Nanosecond))
	}
	if cp.Slots > 0 {
		m.CPSlots = cp.Slots
	}
	if cp.StencilW > 0 {
		m.CPStencilW = cp.StencilW
	}
	if cp.StencilH > 0 {
		m.CPStencilH = cp.StencilH
	}
	if cp.LoadOverheadMS != nil {
		m.CPLoadOverhead = time.Duration(*cp.LoadOverheadMS * float64(time.Millisecond))
	}
	return m
}

// handlePlan serves POST /plan: mine this node's cache class statistics
// and plan a character-projection stencil for them.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.planReqs.Inc()
	reqID := requestID(r.Context())
	tctx, root, remote := s.traceStart(r, "fracd.plan")
	fail := func(code int, msg string) {
		s.finishTrace(root, remote, reqID, msg)
		writeError(w, code, msg)
	}
	if s.cache == nil {
		fail(http.StatusBadRequest, "planning needs the shape cache; the server runs with caching disabled")
		return
	}
	var req PlanRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	topK := req.TopK
	if topK <= 0 {
		topK = defaultPlanTopK
	}
	classes := topClassesWire(s.cache.TopClasses(topK))
	m := modelWith(req.CP)
	root.Set("candidates", len(classes))
	plan := stencil.PlanCP(tctx, classes, m)

	s.planSelected.Set(float64(len(plan.Characters)))
	s.planSavedSec.Set(plan.Report.NetSavedMS / 1e3)
	s.log.Info("stencil plan",
		"id", reqID, "candidates", len(classes),
		"characters", len(plan.Characters),
		"net_saved_ms", plan.Report.NetSavedMS)

	resp := PlanResponse{Plan: plan, TraceID: root.TraceID()}
	wire := s.finishTrace(root, remote, reqID, "")
	if req.ReturnTrace || remote {
		resp.Trace = wire
	}
	writeJSON(w, http.StatusOK, resp)
}
