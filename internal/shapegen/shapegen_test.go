package shapegen

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

func TestILTShapeDeterministic(t *testing.T) {
	a := ILTShape(42, 3)
	b := ILTShape(42, 3)
	if len(a.Target) != len(b.Target) {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Target {
		if a.Target[i] != b.Target[i] {
			t.Fatal("same seed produced different vertices")
		}
	}
	c := ILTShape(43, 3)
	if len(a.Target) == len(c.Target) && a.Target[0] == c.Target[0] {
		t.Error("different seeds produced identical shapes")
	}
}

func TestILTShapeValid(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := ILTShape(seed, 3)
		if err := s.Target.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if s.Target.Area() < 1000 {
			t.Errorf("seed %d: area %v too small", seed, s.Target.Area())
		}
		if s.Known != 0 || s.GenSet != nil {
			t.Errorf("seed %d: ILT shape has generation metadata", seed)
		}
	}
}

func TestILTSuite(t *testing.T) {
	suite := ILTSuite()
	if len(suite) != 10 {
		t.Fatalf("suite size = %d", len(suite))
	}
	names := map[string]bool{}
	for _, s := range suite {
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
		if err := s.Target.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if !names["ILT-1"] || !names["ILT-10"] {
		t.Error("missing expected names")
	}
}

func TestAGBFeasibleByConstruction(t *testing.T) {
	params := cover.DefaultParams()
	s := AGB(7, 4, params)
	if s.Target == nil {
		t.Fatal("generation failed")
	}
	if s.Known != 4 || len(s.GenSet) != 4 {
		t.Fatalf("metadata: known=%d genset=%d", s.Known, len(s.GenSet))
	}
	p, err := cover.NewProblem(s.Target, params)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Evaluate(s.GenSet)
	if !st.Feasible() {
		t.Errorf("generating shots infeasible for their own contour: %+v", st)
	}
}

func TestRGBUnionMatchesTarget(t *testing.T) {
	params := cover.DefaultParams()
	s := RGB(7, 5, params)
	if s.Target == nil {
		t.Fatal("generation failed")
	}
	if !s.Target.IsRectilinear() {
		t.Error("RGB target not rectilinear")
	}
	// the target polygon area equals the union area of the shots
	extent := chainExtent(5)
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: int(extent), H: int(extent)}
	bm := raster.NewBitmap(g)
	for _, r := range s.GenSet {
		fillRect(bm, r)
	}
	if got, want := s.Target.Area(), float64(bm.Count()); got != want {
		t.Errorf("target area %v != union pixel count %v", got, want)
	}
}

func TestSuitesMatchPaperOptimals(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation in -short mode")
	}
	params := cover.DefaultParams()
	agb := AGBSuite(params)
	wantA := []int{3, 16, 17, 7, 3}
	for i, s := range agb {
		if s.Target == nil {
			t.Fatalf("%s failed to generate", s.Name)
		}
		if s.Known != wantA[i] {
			t.Errorf("%s known=%d want %d", s.Name, s.Known, wantA[i])
		}
	}
	rgb := RGBSuite(params)
	wantR := []int{5, 7, 5, 9, 6}
	for i, s := range rgb {
		if s.Target == nil {
			t.Fatalf("%s failed to generate", s.Name)
		}
		if s.Known != wantR[i] {
			t.Errorf("%s known=%d want %d", s.Name, s.Known, wantR[i])
		}
	}
}

func TestCertificateHoldsAgainstHeuristics(t *testing.T) {
	// the certified optimal must be a true lower bound: no method may
	// find a feasible solution with fewer shots. Spot-check with the
	// generating set reduced by one (must be infeasible).
	params := cover.DefaultParams()
	for _, s := range []Shape{AGB(7, 4, params), RGB(7, 5, params)} {
		if s.Target == nil {
			t.Fatal("generation failed")
		}
		p, err := cover.NewProblem(s.Target, params)
		if err != nil {
			t.Fatal(err)
		}
		for drop := range s.GenSet {
			sub := make([]geom.Rect, 0, len(s.GenSet)-1)
			sub = append(sub, s.GenSet[:drop]...)
			sub = append(sub, s.GenSet[drop+1:]...)
			if st := p.Evaluate(sub); st.Feasible() {
				t.Errorf("%s: dropping generating shot %d stays feasible — not irreducible", s.Name, drop)
			}
		}
	}
}

func TestChainShotsRespectBounds(t *testing.T) {
	// chains must stay within the margin or return nil
	extent := chainExtent(6)
	found := 0
	for seed := int64(0); seed < 20; seed++ {
		shots := chainShots(randSource(seed), 6, extent, 0.5, 0.3)
		if shots == nil {
			continue
		}
		found++
		for _, r := range shots {
			if r.X0 < 15 || r.Y0 < 15 || r.X1 > extent-15 || r.Y1 > extent-15 {
				t.Errorf("seed %d: shot %v outside margin", seed, r)
			}
			if r.W() < 20 || r.H() < 20 {
				t.Errorf("seed %d: degenerate shot %v", seed, r)
			}
		}
	}
	if found == 0 {
		t.Error("no chain generated in 20 seeds")
	}
}

func TestGeneratedSuiteDeterminism(t *testing.T) {
	params := cover.DefaultParams()
	a := RGB(11, 5, params)
	b := RGB(11, 5, params)
	if len(a.GenSet) != len(b.GenSet) {
		t.Fatal("nondeterministic generation")
	}
	for i := range a.GenSet {
		if a.GenSet[i] != b.GenSet[i] {
			t.Fatal("nondeterministic shots")
		}
	}
}

func TestSRAFCluster(t *testing.T) {
	cluster := SRAFCluster(3, 4)
	if len(cluster) != 5 {
		t.Fatalf("cluster size = %d", len(cluster))
	}
	main := cluster[0]
	if main.Area() < 45*45 {
		t.Errorf("main feature too small: %v", main.Area())
	}
	mainBox := main.Bounds()
	for i, bar := range cluster[1:] {
		if err := bar.Validate(); err != nil {
			t.Errorf("bar %d: %v", i, err)
		}
		// bars must not touch the main feature
		if bar.Bounds().Overlaps(mainBox) {
			t.Errorf("bar %d overlaps the main feature", i)
		}
		// bars are sub-resolution thin: min dimension clearly below main's
		b := bar.Bounds()
		minDim := b.W()
		if b.H() < minDim {
			minDim = b.H()
		}
		if minDim > 20 {
			t.Errorf("bar %d min dimension %v too wide for an SRAF", i, minDim)
		}
	}
	// deterministic
	again := SRAFCluster(3, 4)
	for i := range cluster {
		if len(cluster[i]) != len(again[i]) || cluster[i][0] != again[i][0] {
			t.Fatal("SRAFCluster not deterministic")
		}
	}
}

func TestSRAFClusterBarSides(t *testing.T) {
	// with 4 bars, one lands on each side of the main feature
	cluster := SRAFCluster(11, 4)
	main := cluster[0].Bounds()
	sides := map[string]bool{}
	for _, bar := range cluster[1:] {
		b := bar.Bounds()
		switch {
		case b.Y1 <= main.Y0:
			sides["below"] = true
		case b.Y0 >= main.Y1:
			sides["above"] = true
		case b.X1 <= main.X0:
			sides["left"] = true
		case b.X0 >= main.X1:
			sides["right"] = true
		}
	}
	if len(sides) != 4 {
		t.Errorf("bars cover %d sides, want 4: %v", len(sides), sides)
	}
}
