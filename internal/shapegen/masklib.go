package shapegen

import (
	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
)

// DemoLibrary builds a synthetic full-mask GDSII hierarchy from the ILT
// clip suite: every clip becomes a cell, a tile cell instantiates each
// clip under a rotating D4 orientation, and the top cell arrays the
// tile cols × rows. The layout has cols·rows·10 placements but only ten
// congruence classes — the repetition profile the shapecache and the
// cluster router are built to exploit.
func DemoLibrary(cols, rows int) *maskio.Library {
	clips := ILTSuite()
	lib := &maskio.Library{Name: "fullmask-demo"}

	// each clip translated to the origin so cell frames are tight
	pitch := 0.0
	for _, c := range clips {
		bb := c.Target.Bounds()
		if w := bb.W(); w > pitch {
			pitch = w
		}
		if h := bb.H(); h > pitch {
			pitch = h
		}
	}
	pitch += 80 // clip-to-clip margin, nm

	orients := []maskio.Orient{
		maskio.OrientIdentity, maskio.OrientRot90, maskio.OrientRot180,
		maskio.OrientRot270, maskio.OrientMirrorX, maskio.OrientMirrorY,
		maskio.OrientTranspose, maskio.OrientAntiTranspose,
	}
	tile := &maskio.Cell{Name: "tile"}
	for i, c := range clips {
		bb := c.Target.Bounds()
		cell := &maskio.Cell{
			Name:       c.Name,
			Boundaries: []geom.Polygon{c.Target.Translate(geom.Pt(-bb.X0, -bb.Y0))},
		}
		lib.Cells = append(lib.Cells, cell)
		tile.Refs = append(tile.Refs, maskio.Ref{
			Cell: c.Name, Cols: 1, Rows: 1,
			Orient: orients[i%len(orients)],
			Origin: geom.Pt(float64(i%5)*pitch, float64(i/5)*pitch),
		})
	}
	lib.Cells = append(lib.Cells, tile)

	tileW, tileH := 5*pitch, 2*pitch
	lib.Cells = append(lib.Cells, &maskio.Cell{Name: "top", Refs: []maskio.Ref{{
		Cell: "tile", Cols: cols, Rows: rows,
		ColStep: geom.Pt(tileW, 0), RowStep: geom.Pt(0, tileH),
	}}})
	return lib
}
