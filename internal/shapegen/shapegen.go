// Package shapegen generates the benchmark mask shapes used by the
// experiment harness.
//
// The paper evaluates on (a) ten real ILT mask shapes and (b) ten
// generated benchmark shapes with known optimal shot count from the
// ICCAD'14 benchmarking suite (UCLA/UCSD). Neither artifact is
// distributable here, so this package synthesizes equivalents:
//
//   - ILT-like shapes: iso-contours of random anisotropic Gaussian
//     fields — smooth curvilinear blobs with flares, the morphology
//     inverse lithography produces.
//   - AGB shapes ("aggressive generated benchmarks"): the ρ iso-contour
//     of the dose of K known overlapping shots. The generating shots are
//     a feasible solution, so K upper-bounds the optimum; generation
//     retries until no single shot is redundant.
//   - RGB shapes ("rectilinear generated benchmarks"): the geometric
//     union of K rectangles, yielding rectilinear targets with known
//     construction count K.
//
// All generators are deterministic in their seed.
package shapegen

import (
	"math"
	"math/rand"

	"maskfrac/internal/cover"
	"maskfrac/internal/ebeam"
	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// Shape is a generated benchmark shape.
type Shape struct {
	Name   string
	Target geom.Polygon
	Known  int         // construction shot count (0 when unknown)
	GenSet []geom.Rect // the generating shots (nil for ILT shapes)
}

// ILTShape generates one curvilinear ILT-like mask shape. blobs controls
// complexity (more blobs → more corner features → more shots needed).
// The result is the largest iso-contour of a random Gaussian mixture,
// lightly simplified to sub-CD tolerance.
func ILTShape(seed int64, blobs int) Shape {
	rng := rand.New(rand.NewSource(seed))
	const extent = 260.0 // nm field of view
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: int(extent), H: int(extent)}
	type blob struct {
		cx, cy, sx, sy, amp, theta float64
	}
	for attempt := 0; attempt < 50; attempt++ {
		bl := make([]blob, blobs)
		for i := range bl {
			bl[i] = blob{
				cx:    extent*0.25 + rng.Float64()*extent*0.5,
				cy:    extent*0.25 + rng.Float64()*extent*0.5,
				sx:    18 + rng.Float64()*34,
				sy:    12 + rng.Float64()*26,
				amp:   0.7 + rng.Float64()*0.6,
				theta: rng.Float64() * math.Pi,
			}
		}
		f := raster.NewField(g)
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				p := g.Center(i, j)
				v := 0.0
				for _, b := range bl {
					dx, dy := p.X-b.cx, p.Y-b.cy
					u := dx*math.Cos(b.theta) + dy*math.Sin(b.theta)
					w := -dx*math.Sin(b.theta) + dy*math.Cos(b.theta)
					v += b.amp * math.Exp(-u*u/(2*b.sx*b.sx)-w*w/(2*b.sy*b.sy))
				}
				f.V[g.Index(i, j)] = v
			}
		}
		bm := f.Threshold(0.55)
		pg := raster.LargestContour(bm)
		if pg == nil {
			continue
		}
		pg = geom.SimplifyPolygon(pg, 0.75)
		if pg.Area() < 1500 || len(pg) < 8 {
			continue // too small or too simple; reroll
		}
		return Shape{Name: "ILT", Target: pg}
	}
	// fallback: a plain rectangle (never reached in practice)
	return Shape{Name: "ILT", Target: geom.Polygon{
		geom.Pt(50, 50), geom.Pt(150, 50), geom.Pt(150, 120), geom.Pt(50, 120)}}
}

// ILTSuite returns the ten ILT-like clips used for the Table 2
// reproduction, with complexity growing roughly like the paper's
// lower/upper bound scale (3 … 20 optimal shots).
func ILTSuite() []Shape {
	specs := []struct {
		seed  int64
		blobs int
	}{
		{101, 2}, {102, 3}, {103, 2}, {104, 5}, {105, 4},
		{106, 2}, {107, 3}, {108, 5}, {109, 6}, {110, 4},
	}
	out := make([]Shape, len(specs))
	for i, sp := range specs {
		out[i] = ILTShape(sp.seed, sp.blobs)
		out[i].Name = iltName(i + 1)
	}
	return out
}

func iltName(i int) string { return "ILT-" + itoa(i) }

// AGB generates a dose-contour benchmark shape from k random
// overlapping shots blurred by the given proximity model parameters.
// The generating shot set is feasible for the returned target by
// construction, and generation retries until no single generating shot
// is redundant.
func AGB(seed int64, k int, params cover.Params) Shape {
	rng := rand.New(rand.NewSource(seed))
	model := ebeam.NewModel(params.Sigma)
	extent := chainExtent(k)
	g := raster.Grid{X0: 0, Y0: 0, Pitch: params.Pitch, W: int(extent), H: int(extent)}
	for attempt := 0; attempt < 400; attempt++ {
		shots := chainShots(rng, k, extent, 0.62, 0.30)
		if shots == nil {
			continue
		}
		dose := model.DoseMap(g, shots)
		bm := dose.Threshold(params.Rho)
		if !singleComponent(bm) {
			continue
		}
		pg := raster.LargestContour(bm)
		if pg == nil || pg.Area() < 900 {
			continue
		}
		if hasRedundantShot(model, g, shots, params.Rho, bm) {
			continue
		}
		if !certifyOptimal(model, g, shots, bm, params) {
			continue
		}
		return Shape{Name: "AGB", Target: geom.SimplifyPolygon(pg, 0.5), Known: k, GenSet: shots}
	}
	return Shape{}
}

// RGB generates a rectilinear benchmark: the geometric union of k
// random rectangles. Generation retries until the union is a single
// component in which every rectangle contributes uncovered area.
func RGB(seed int64, k int, params cover.Params) Shape {
	rng := rand.New(rand.NewSource(seed))
	extent := chainExtent(k)
	g := raster.Grid{X0: 0, Y0: 0, Pitch: params.Pitch, W: int(extent), H: int(extent)}
	for attempt := 0; attempt < 400; attempt++ {
		shots := chainShots(rng, k, extent, 0.45, 0.35)
		if shots == nil {
			continue
		}
		bm := raster.NewBitmap(g)
		for _, s := range shots {
			fillRect(bm, s)
		}
		if !singleComponent(bm) {
			continue
		}
		if hasGeomRedundantShot(g, shots) {
			continue
		}
		model := ebeam.NewModel(params.Sigma)
		if !certifyOptimal(model, g, shots, bm, params) {
			continue
		}
		pg := raster.LargestContour(bm)
		if pg == nil {
			continue
		}
		return Shape{Name: "RGB", Target: pg, Known: k, GenSet: shots}
	}
	return Shape{}
}

// AGBSuite mirrors the optimal shot counts of the paper's Table 3
// AGB-1..AGB-5 rows: 3, 16, 17, 7, 3.
func AGBSuite(params cover.Params) []Shape {
	ks := []int{3, 16, 17, 7, 3}
	out := make([]Shape, len(ks))
	for i, k := range ks {
		out[i] = AGB(int64(201+i), k, params)
		out[i].Name = "AGB-" + itoa(i+1)
	}
	return out
}

// RGBSuite mirrors the optimal shot counts of the paper's Table 3
// RGB-1..RGB-5 rows: 5, 7, 5, 9, 6.
func RGBSuite(params cover.Params) []Shape {
	ks := []int{5, 7, 5, 9, 6}
	out := make([]Shape, len(ks))
	for i, k := range ks {
		out[i] = RGB(int64(301+i), k, params)
		out[i].Name = "RGB-" + itoa(i+1)
	}
	return out
}

// chainExtent sizes the field of view for a k-shot chain.
func chainExtent(k int) float64 {
	e := 120 + 30*float64(k)
	if e < 200 {
		e = 200
	}
	return e
}

// chainShots places k rectangles along a folded diagonal staircase:
// each shot overlaps the previous one near a corner, advancing
// diagonally and folding at the field border. The staggered corners
// leave off-target notches between non-adjacent shots, which is what
// lets certifyOptimal prove the construction count optimal.
func chainShots(rng *rand.Rand, k int, extent float64, stepBase, stepSpread float64) []geom.Rect {
	shots := make([]geom.Rect, 0, k)
	margin := 20.0
	x := margin + rng.Float64()*30
	y := margin + rng.Float64()*30
	dx := 1.0
	for i := 0; i < k; i++ {
		w := 22 + rng.Float64()*34
		h := 22 + rng.Float64()*34
		r := geom.Rect{X0: math.Round(x), Y0: math.Round(y), X1: math.Round(x + w), Y1: math.Round(y + h)}
		if r.Y1 > extent-margin {
			return nil
		}
		if r.X0 < margin || r.X1 > extent-margin {
			return nil
		}
		shots = append(shots, r)
		// advance diagonally with a strong stagger; fold when the next
		// step would leave the field
		stepX := (stepBase + rng.Float64()*stepSpread) * w * dx
		stepY := (stepBase + rng.Float64()*stepSpread) * h
		if x+stepX < margin+5 || x+stepX+60 > extent-margin {
			dx = -dx
			stepX = (stepBase + rng.Float64()*stepSpread) * w * dx
		}
		x += stepX
		y += stepY
	}
	return shots
}

// fillRect sets the pixels whose centers fall inside r.
func fillRect(bm *raster.Bitmap, r geom.Rect) {
	g := bm.Grid
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			if r.Contains(g.Center(i, j)) {
				bm.Bits[g.Index(i, j)] = true
			}
		}
	}
}

// singleComponent reports whether the true region of bm is one
// 4-connected component.
func singleComponent(bm *raster.Bitmap) bool {
	if bm.Count() == 0 {
		return false
	}
	return raster.ConnectedComponents(bm).N == 1
}

// hasRedundantShot reports whether removing any one generating shot
// still yields dose >= rho everywhere inside the target bitmap.
func hasRedundantShot(model *ebeam.Model, g raster.Grid, shots []geom.Rect, rho float64, target *raster.Bitmap) bool {
	for drop := range shots {
		sub := make([]geom.Rect, 0, len(shots)-1)
		sub = append(sub, shots[:drop]...)
		sub = append(sub, shots[drop+1:]...)
		dose := model.DoseMap(g, sub)
		ok := true
		for k, in := range target.Bits {
			if in && dose.V[k] < rho {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// hasGeomRedundantShot reports whether any rectangle is fully covered by
// the union of the others.
func hasGeomRedundantShot(g raster.Grid, shots []geom.Rect) bool {
	for drop := range shots {
		bm := raster.NewBitmap(g)
		for i, s := range shots {
			if i != drop {
				fillRect(bm, s)
			}
		}
		covered := true
		target := shots[drop]
		for j := 0; j < g.H && covered; j++ {
			for i := 0; i < g.W; i++ {
				if target.Contains(g.Center(i, j)) && !bm.Bits[g.Index(i, j)] {
					covered = false
					break
				}
			}
		}
		if covered {
			return true
		}
	}
	return false
}

// certifyOptimal proves that no feasible solution uses fewer than
// len(shots) shots, making the construction count a true optimum
// (the generating set is feasible, so it is also an upper bound).
//
// Certificate: pick for every generating shot a witness pixel — an
// interior pixel that the remaining shots leave underdosed, so every
// feasible solution must cover it with some shot. Two witnesses are
// incompatible when every rectangle containing both must contain an
// exterior (Poff-class margin) pixel at depth ≥ 3 nm from each of its
// sides: such a pixel receives dose ≥ P(3)² > ρ from that shot alone,
// an unfixable violation. Any rectangle covering both witnesses
// contains their bounding box, so an exterior pixel inside the bounding
// box inset by 3 nm certifies the pair. If all pairs are certified,
// witnesses are pairwise incompatible and any feasible solution needs
// one distinct shot per witness.
func certifyOptimal(model *ebeam.Model, g raster.Grid, shots []geom.Rect, target *raster.Bitmap, params cover.Params) bool {
	witnesses := make([]geom.Point, len(shots))
	for i := range shots {
		w, ok := exclusiveWitness(model, g, shots, i, target, params.Rho)
		if !ok {
			return false
		}
		witnesses[i] = w
	}
	const depth = 3.0 // P(3/6.25)² ≈ 0.51 > ρ at a worst-case corner
	for i := 0; i < len(shots); i++ {
		for j := i + 1; j < len(shots); j++ {
			box := geom.RectFromCorners(witnesses[i], witnesses[j]).Inset(depth)
			if box.Empty() || !hasDeepOutsidePixel(g, target, box, params.Gamma) {
				return false
			}
		}
	}
	return true
}

// exclusiveWitness returns the interior pixel most underdosed when shot
// i is withheld: a pixel every feasible solution must cover anew.
func exclusiveWitness(model *ebeam.Model, g raster.Grid, shots []geom.Rect, drop int, target *raster.Bitmap, rho float64) (geom.Point, bool) {
	sub := make([]geom.Rect, 0, len(shots)-1)
	sub = append(sub, shots[:drop]...)
	sub = append(sub, shots[drop+1:]...)
	dose := model.DoseMap(g, sub)
	best, bestDose := geom.Point{}, rho
	for k, in := range target.Bits {
		if !in {
			continue
		}
		if dose.V[k] < bestDose {
			i, j := g.Coords(k)
			best, bestDose = g.Center(i, j), dose.V[k]
		}
	}
	// demand a clear margin so the witness genuinely needs re-covering
	return best, bestDose < rho-0.05
}

// hasDeepOutsidePixel reports whether box contains a pixel that lies
// outside the target and more than gamma away from it (a true Poff
// pixel under any sampling), checked against the target bitmap with a
// conservative pixel-distance dilation.
func hasDeepOutsidePixel(g raster.Grid, target *raster.Bitmap, box geom.Rect, gamma float64) bool {
	margin := int(gamma/g.Pitch) + 1
	i0, j0 := g.PixelOf(geom.Pt(box.X0, box.Y0))
	i1, j1 := g.PixelOf(geom.Pt(box.X1, box.Y1))
	i0, j0 = g.ClampX(i0), g.ClampY(j0)
	i1, j1 = g.ClampX(i1), g.ClampY(j1)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			if !box.Contains(g.Center(i, j)) {
				continue
			}
			if clearOfTarget(g, target, i, j, margin) {
				return true
			}
		}
	}
	return false
}

// clearOfTarget reports whether no target pixel lies within margin
// pixels (Chebyshev) of (i, j).
func clearOfTarget(g raster.Grid, target *raster.Bitmap, i, j, margin int) bool {
	for dj := -margin; dj <= margin; dj++ {
		for di := -margin; di <= margin; di++ {
			ni, nj := i+di, j+dj
			if g.In(ni, nj) && target.Bits[g.Index(ni, nj)] {
				return false
			}
		}
	}
	return true
}

// itoa converts a small non-negative int to decimal without fmt.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// randSource returns a deterministic RNG for tests.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SRAFCluster generates a main contact-like feature surrounded by
// sub-resolution assist features: thin bars placed a ring away from the
// main shape, the geometry inverse lithography inserts to sharpen the
// process window. SRAFs are below the printing threshold individually
// but must still be written on the mask — they are the "complex SRAF
// shapes" matching-pursuit fracturing was originally proposed for.
// Returns the main polygon first, then the assist bars.
func SRAFCluster(seed int64, bars int) []geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	const cx, cy = 120.0, 120.0
	mainW := 45 + rng.Float64()*25
	mainH := 45 + rng.Float64()*25
	main := geom.Polygon{
		geom.Pt(cx-mainW/2, cy-mainH/2), geom.Pt(cx+mainW/2, cy-mainH/2),
		geom.Pt(cx+mainW/2, cy+mainH/2), geom.Pt(cx-mainW/2, cy+mainH/2),
	}
	out := []geom.Polygon{main}
	gap := 22 + rng.Float64()*10 // SRAF standoff from the main feature
	for i := 0; i < bars; i++ {
		side := i % 4
		length := 30 + rng.Float64()*20
		width := 10 + rng.Float64()*4
		off := (rng.Float64() - 0.5) * 16
		var bar geom.Polygon
		switch side {
		case 0: // below
			x0 := cx - length/2 + off
			y1 := cy - mainH/2 - gap
			bar = rectPoly(x0, y1-width, x0+length, y1)
		case 1: // above
			x0 := cx - length/2 + off
			y0 := cy + mainH/2 + gap
			bar = rectPoly(x0, y0, x0+length, y0+width)
		case 2: // left
			y0 := cy - length/2 + off
			x1 := cx - mainW/2 - gap
			bar = rectPoly(x1-width, y0, x1, y0+length)
		default: // right
			y0 := cy - length/2 + off
			x0 := cx + mainW/2 + gap
			bar = rectPoly(x0, y0, x0+width, y0+length)
		}
		out = append(out, bar)
	}
	return out
}

// rectPoly builds the CCW rectangle polygon with the given corners.
func rectPoly(x0, y0, x1, y1 float64) geom.Polygon {
	return geom.Polygon{geom.Pt(x0, y0), geom.Pt(x1, y0), geom.Pt(x1, y1), geom.Pt(x0, y1)}
}
