package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter")
	c.Add(3)
	g := r.GaugeVec("x_inflight", "a gauge vec", "node")
	g.With("a\"b").Set(2)
	h := r.Histogram("x_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	samples, err := ParsePrometheus(bytes.NewReader(r.WritePrometheus(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := SampleValue(samples, "x_total"); !ok || v != 3 {
		t.Errorf("x_total = %v, %v", v, ok)
	}
	if v, ok := SampleValue(samples, "x_inflight"); !ok || v != 2 {
		t.Errorf("x_inflight = %v, %v", v, ok)
	}
	found := false
	for _, s := range samples {
		if s.Name == "x_inflight" && s.Label("node") == `a"b` {
			found = true
		}
	}
	if !found {
		t.Error("escaped label value not recovered")
	}
	if v, ok := SampleValue(samples, "x_seconds_count"); !ok || v != 3 {
		t.Errorf("x_seconds_count = %v, %v", v, ok)
	}
	// +Inf bucket parses
	inf := 0.0
	for _, s := range samples {
		if s.Name == "x_seconds_bucket" && s.Label("le") == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 3 {
		t.Errorf("+Inf bucket = %v", inf)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 90 observations <= 0.1, 10 in (0.1, 1]: p50 interpolates inside
	// the first bucket, p99 inside the second.
	samples := []Sample{
		{Name: "h_bucket", Labels: map[string]string{"le": "0.1"}, Value: 90},
		{Name: "h_bucket", Labels: map[string]string{"le": "1"}, Value: 100},
		{Name: "h_bucket", Labels: map[string]string{"le": "+Inf"}, Value: 100},
	}
	p50 := HistogramQuantile(samples, "h", 0.5)
	if p50 <= 0 || p50 > 0.1 {
		t.Errorf("p50 = %v, want in (0, 0.1]", p50)
	}
	p99 := HistogramQuantile(samples, "h", 0.99)
	if p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want in (0.1, 1]", p99)
	}
	// aggregation across label sets: two shards of the same family
	sharded := []Sample{
		{Name: "h_bucket", Labels: map[string]string{"le": "0.1", "m": "a"}, Value: 45},
		{Name: "h_bucket", Labels: map[string]string{"le": "1", "m": "a"}, Value: 50},
		{Name: "h_bucket", Labels: map[string]string{"le": "+Inf", "m": "a"}, Value: 50},
		{Name: "h_bucket", Labels: map[string]string{"le": "0.1", "m": "b"}, Value: 45},
		{Name: "h_bucket", Labels: map[string]string{"le": "1", "m": "b"}, Value: 50},
		{Name: "h_bucket", Labels: map[string]string{"le": "+Inf", "m": "b"}, Value: 50},
	}
	if got := HistogramQuantile(sharded, "h", 0.5); math.Abs(got-p50) > 1e-9 {
		t.Errorf("sharded p50 = %v, want %v", got, p50)
	}
	// +Inf-only mass clamps to the highest finite bound
	tail := []Sample{
		{Name: "h_bucket", Labels: map[string]string{"le": "0.1"}, Value: 0},
		{Name: "h_bucket", Labels: map[string]string{"le": "+Inf"}, Value: 10},
	}
	if got := HistogramQuantile(tail, "h", 0.5); got != 0.1 {
		t.Errorf("tail p50 = %v, want clamp to 0.1", got)
	}
	if got := HistogramQuantile(nil, "h", 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus(strings.NewReader("metric_name_only\n")); err == nil {
		t.Error("value-less line accepted")
	}
	if _, err := ParsePrometheus(strings.NewReader(`m{x="unterminated 1` + "\n")); err == nil {
		t.Error("unterminated label accepted")
	}
}
