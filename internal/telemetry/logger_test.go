package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedTime() time.Time {
	return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
}

func TestLoggerJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.timeFn = fixedTime
	l.Info("request done", "id", "abc123", "status", 200, "dur_ms", 1.5,
		"ok", true, "err", errors.New("boom"), "d", 250*time.Millisecond)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"ts": "2026-08-06T12:00:00Z", "level": "info", "msg": "request done",
		"id": "abc123", "status": 200.0, "dur_ms": 1.5, "ok": true,
		"err": "boom", "d": "250ms",
	} {
		if rec[k] != want {
			t.Errorf("record[%q] = %v (%T), want %v", k, rec[k], rec[k], want)
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Errorf("wrote %d records at warn level, want 2:\n%s", lines, buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with the configured level")
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With("req", "r1", "worker", 3)
	l.Info("solved", "shots", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["req"] != "r1" || rec["worker"] != 3.0 || rec["shots"] != 7.0 {
		t.Errorf("bound fields missing: %v", rec)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	l := NopLogger()
	l.Error("nothing happens")
	if l.Enabled(LevelError) {
		t.Error("nop logger claims to be enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	} {
		if got := ParseLevel(s); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) == 0 {
			t.Fatal("empty request id")
		}
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
	}
}
