// Package telemetry is the repo's dependency-free observability layer:
// a metrics registry with Prometheus text-format exposition (counters,
// gauges, fixed-bucket histograms, labeled vectors and callback
// metrics), a leveled structured JSON logger with per-request IDs, and
// a lightweight span/trace API threaded through context.Context so
// instrumented code pays one context lookup when tracing is disabled.
//
// Metric name conventions follow Prometheus: `<subsystem>_<what>_<unit>`
// with `_total` suffixes on counters (e.g. fracd_requests_total,
// fracd_solve_duration_seconds). Labels are fixed per metric family and
// low-cardinality (method names, endpoint paths).
package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered metric family.
type metric interface {
	desc() desc
	// samples appends exposition lines (without HELP/TYPE headers).
	samples(buf []byte) []byte
}

type desc struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register installs m under its name, panicking on a duplicate: metric
// names are a flat global namespace per registry and a collision is a
// programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.desc().name
	if _, dup := r.metrics[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	r.metrics[name] = m
}

// Counter registers and returns a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{d: desc{name, help, "counter"}}
	r.register(c)
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for mirroring counters a subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{d: desc{name, help, "counter"}, fn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{d: desc{name, help, "gauge"}}
	r.register(g)
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&funcMetric{d: desc{name, help, "gauge"}, fn: fn})
}

// Histogram registers and returns a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit). Nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(desc{name, help, "histogram"}, nil, buckets)
	r.register(h)
	return h
}

// CounterVec registers a counter family partitioned by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{d: desc{name, help, "counter"}, labels: labels,
		children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// GaugeVec registers a gauge family partitioned by labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{d: desc{name, help, "gauge"}, labels: labels,
		children: make(map[string]*Gauge)}
	r.register(v)
	return v
}

// HistogramVec registers a histogram family partitioned by labels.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{d: desc{name, help, "histogram"}, labels: labels,
		buckets: normBuckets(buckets), children: make(map[string]*Histogram)}
	r.register(v)
	return v
}

// WritePrometheus renders every registered family, sorted by name, in
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(buf []byte) []byte {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.metrics[n]
	}
	r.mu.Unlock()
	for _, m := range ms {
		d := m.desc()
		buf = append(buf, "# HELP "...)
		buf = append(buf, d.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(d.help)...)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, d.name...)
		buf = append(buf, ' ')
		buf = append(buf, d.typ...)
		buf = append(buf, '\n')
		buf = m.samples(buf)
	}
	return buf
}

// Handler returns an HTTP handler serving the exposition (a /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(r.WritePrometheus(nil))
	})
}

// Counter is a monotonically increasing counter. Value updates are
// atomic; counts are whole events scaled by Add's argument.
type Counter struct {
	d    desc
	lbl  string // rendered {k="v",...} suffix, "" when unlabeled
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) desc() desc { return c.d }

func (c *Counter) samples(buf []byte) []byte {
	return sampleLine(buf, c.d.name, c.lbl, c.Value())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	d    desc
	lbl  string // rendered {k="v",...} suffix, "" when unlabeled
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) desc() desc { return g.d }

func (g *Gauge) samples(buf []byte) []byte {
	return sampleLine(buf, g.d.name, g.lbl, g.Value())
}

// funcMetric samples a callback at scrape time.
type funcMetric struct {
	d  desc
	fn func() float64
}

func (f *funcMetric) desc() desc { return f.d }

func (f *funcMetric) samples(buf []byte) []byte {
	return sampleLine(buf, f.d.name, "", f.fn())
}

// DefBuckets are latency buckets in seconds spanning sub-millisecond
// cache hits to multi-minute MBF solves.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// ShotCountBuckets are power-of-two buckets for shots-per-shape
// distributions (the paper's clips land between 5 and ~60 shots).
var ShotCountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// SolveDurationBuckets are per-shape solve-time buckets in seconds. The
// service's latency distribution is sharply bimodal — ~0.1 ms for a
// shape-cache hit versus seconds for an MBF solve — so the low end
// extends to 50 µs with roughly 1-2-5 steps; DefBuckets' 0.5 ms floor
// collapsed every cache hit into the first bucket.
var SolveDurationBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

func normBuckets(b []float64) []float64 {
	if b == nil {
		b = DefBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	// drop a trailing +Inf; it is implicit
	for len(out) > 0 && math.IsInf(out[len(out)-1], 1) {
		out = out[:len(out)-1]
	}
	return out
}

// Histogram counts observations into fixed cumulative buckets
// (Prometheus convention: bucket le=U counts observations v <= U).
type Histogram struct {
	d       desc
	lbl     string
	buckets []float64 // upper bounds, ascending, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(d desc, lbl []byte, buckets []float64) *Histogram {
	b := normBuckets(buckets)
	return &Histogram{d: d, lbl: string(lbl), buckets: b,
		counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// BucketCounts returns the cumulative count per bucket (last entry is
// the +Inf bucket and equals Count).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) desc() desc { return h.d }

func (h *Histogram) samples(buf []byte) []byte {
	cum := h.BucketCounts()
	for i, ub := range h.buckets {
		lbl := joinLabel(h.lbl, `le="`+formatFloat(ub)+`"`)
		buf = sampleLine(buf, h.d.name+"_bucket", lbl, float64(cum[i]))
	}
	lbl := joinLabel(h.lbl, `le="+Inf"`)
	buf = sampleLine(buf, h.d.name+"_bucket", lbl, float64(cum[len(cum)-1]))
	buf = sampleLine(buf, h.d.name+"_sum", h.lbl, h.Sum())
	buf = sampleLine(buf, h.d.name+"_count", h.lbl, float64(h.Count()))
	return buf
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	d        desc
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
	order    []string // insertion order of keys, for Each
}

// With returns the child counter for the given label values (one per
// label name, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := joinValues(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := &Counter{d: v.d, lbl: renderLabels(v.labels, values)}
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// Each calls fn for every child with its label values.
func (v *CounterVec) Each(fn func(values []string, c *Counter)) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Counter, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(splitValues(k), children[i])
	}
}

func (v *CounterVec) desc() desc { return v.d }

func (v *CounterVec) samples(buf []byte) []byte {
	v.mu.Lock()
	children := make([]*Counter, 0, len(v.order))
	for _, k := range v.order {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	sort.Slice(children, func(a, b int) bool { return children[a].lbl < children[b].lbl })
	for _, c := range children {
		buf = c.samples(buf)
	}
	return buf
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	d        desc
	labels   []string
	mu       sync.Mutex
	children map[string]*Gauge
	order    []string
}

// With returns the child gauge for the given label values (one per
// label name, in declaration order), creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := joinValues(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g
	}
	g := &Gauge{d: v.d, lbl: renderLabels(v.labels, values)}
	v.children[key] = g
	v.order = append(v.order, key)
	return g
}

// Each calls fn for every child with its label values.
func (v *GaugeVec) Each(fn func(values []string, g *Gauge)) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Gauge, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(splitValues(k), children[i])
	}
}

func (v *GaugeVec) desc() desc { return v.d }

func (v *GaugeVec) samples(buf []byte) []byte {
	v.mu.Lock()
	children := make([]*Gauge, 0, len(v.order))
	for _, k := range v.order {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	sort.Slice(children, func(a, b int) bool { return children[a].lbl < children[b].lbl })
	for _, g := range children {
		buf = g.samples(buf)
	}
	return buf
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	d        desc
	labels   []string
	buckets  []float64
	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := joinValues(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h := newHistogram(v.d, []byte(renderLabels(v.labels, values)), v.buckets)
	v.children[key] = h
	v.order = append(v.order, key)
	return h
}

// Each calls fn for every child with its label values.
func (v *HistogramVec) Each(fn func(values []string, h *Histogram)) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		fn(splitValues(k), children[i])
	}
}

func (v *HistogramVec) desc() desc { return v.d }

func (v *HistogramVec) samples(buf []byte) []byte {
	v.mu.Lock()
	children := make([]*Histogram, 0, len(v.order))
	for _, k := range v.order {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	sort.Slice(children, func(a, b int) bool { return children[a].lbl < children[b].lbl })
	for _, h := range children {
		buf = h.samples(buf)
	}
	return buf
}

// sampleLine appends `name{labels} value\n`.
func sampleLine(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = append(buf, formatFloat(v)...)
	return append(buf, '\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders `k1="v1",k2="v2"` with escaped values.
func renderLabels(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("telemetry: %d label values for %d labels", len(values), len(names)))
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func joinLabel(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

const valueSep = "\x1f"

func joinValues(v []string) string  { return strings.Join(v, valueSep) }
func splitValues(k string) []string { return strings.Split(k, valueSep) }
