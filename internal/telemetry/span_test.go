package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanDisabledIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "phase")
	if sp != nil {
		t.Fatal("span created without WithTrace")
	}
	if ctx2 != ctx {
		t.Error("context changed without tracing")
	}
	// all methods are nil-safe no-ops
	sp.Set("k", 1)
	sp.End()
	sp.Child("c").End()
	if sp.Duration() != 0 || sp.Find("x") != nil || sp.Attrs() != nil {
		t.Error("nil span not inert")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "solve")
	ctx1, a := StartSpan(ctx, "corners")
	a.Set("count", 12)
	a.End()
	_, b := StartSpan(ctx1, "nested-under-corners")
	b.End()
	_, c := StartSpan(ctx, "refine")
	for i := 0; i < 3; i++ {
		it := c.Child("iter")
		it.Set("i", i)
		it.End()
	}
	c.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name != "corners" || kids[1].Name != "refine" {
		t.Fatalf("root children = %v", names(kids))
	}
	// b started from ctx1 (inside "corners"), so it nests under a
	if ak := kids[0].Children(); len(ak) != 1 || ak[0].Name != "nested-under-corners" {
		t.Errorf("corners children = %v", names(ak))
	}
	if rk := kids[1].Children(); len(rk) != 3 {
		t.Errorf("refine children = %v", names(rk))
	}
	if root.Find("iter") == nil || root.Find("missing") != nil {
		t.Error("Find failed")
	}
	if root.Duration() <= 0 {
		t.Error("root duration not recorded")
	}
}

func TestPhaseSummaryAggregates(t *testing.T) {
	_, root := WithTrace(context.Background(), "solve")
	r := root.Child("refine")
	for i := 0; i < 5; i++ {
		it := r.Child("iter")
		time.Sleep(time.Millisecond)
		it.End()
	}
	r.End()
	root.End()
	stats := root.PhaseSummary()
	byName := map[string]PhaseStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	it := byName["iter"]
	if it.Count != 5 {
		t.Fatalf("iter count = %d, want 5", it.Count)
	}
	if it.Total < it.Max || it.Max < it.Min || it.Min <= 0 {
		t.Errorf("iter stats inconsistent: %+v", it)
	}
	if byName["solve"].Count != 1 || byName["refine"].Count != 1 {
		t.Errorf("summary = %v", stats)
	}
}

func TestWriteTreeElidesLongRuns(t *testing.T) {
	_, root := WithTrace(context.Background(), "solve")
	r := root.Child("refine")
	for i := 0; i < maxSiblingsShown+30; i++ {
		r.Child("iter").End()
	}
	r.End()
	root.End()
	var sb strings.Builder
	root.WriteTree(&sb)
	out := sb.String()
	if got := strings.Count(out, "\n"); got > maxSiblingsShown+5 {
		t.Errorf("tree not elided: %d lines\n%s", got, out)
	}
	if !strings.Contains(out, "30 more iter spans") {
		t.Errorf("no elision summary:\n%s", out)
	}
}

func TestWritePhaseTable(t *testing.T) {
	_, root := WithTrace(context.Background(), "solve")
	root.Child("corners").End()
	root.End()
	var sb strings.Builder
	WritePhaseTable(&sb, root)
	out := sb.String()
	for _, want := range []string{"phase", "count", "solve", "corners", "share"} {
		if !strings.Contains(out, want) {
			t.Errorf("phase table missing %q:\n%s", want, out)
		}
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
