package telemetry

import (
	"fmt"
	"time"
)

// SpanWire is the compact serialized form of a span tree, carried in
// fracd responses so a remote caller can stitch the server's solver
// phase spans into its own trace. Field names are shortened because a
// deep solve trace serializes hundreds of spans.
type SpanWire struct {
	Name string `json:"n"`
	// ID is the span's 8-byte hex ID; ParentID is set only on roots
	// adopted from a remote traceparent (the caller's span ID).
	ID       string      `json:"id,omitempty"`
	ParentID string      `json:"p,omitempty"`
	StartNS  int64       `json:"st"` // Unix nanoseconds
	DurNS    int64       `json:"d"`  // duration in nanoseconds
	Attrs    []AttrWire  `json:"a,omitempty"`
	Children []*SpanWire `json:"c,omitempty"`
	// Elided, when > 0, marks a synthetic summary node standing in for
	// that many same-named siblings dropped by the wire size cap; DurNS
	// is then their total duration.
	Elided int `json:"e,omitempty"`
}

// AttrWire is one stringified span attribute.
type AttrWire struct {
	K string `json:"k"`
	V string `json:"v"`
}

// maxWireSiblings bounds how many consecutive same-named siblings Wire
// serializes before collapsing the rest into one Elided summary node —
// the wire-format analogue of WriteTree's elision, keeping a
// 1000-iteration refine trace from bloating every response.
const maxWireSiblings = 16

// Wire serializes the span tree. Call it only after the tree has
// ended; live descendants serialize with their elapsed-so-far duration.
func (s *Span) Wire() *SpanWire {
	if s == nil {
		return nil
	}
	w := &SpanWire{
		Name:     s.Name,
		ID:       s.id,
		ParentID: s.parent,
		StartNS:  s.Start.UnixNano(),
		DurNS:    int64(s.Duration()),
	}
	for _, a := range s.Attrs() {
		w.Attrs = append(w.Attrs, AttrWire{K: a.Key, V: fmt.Sprint(a.Value)})
	}
	children := s.Children()
	for i := 0; i < len(children); {
		run := 1
		for i+run < len(children) && children[i+run].Name == children[i].Name {
			run++
		}
		shown := run
		if run > maxWireSiblings {
			shown = maxWireSiblings
		}
		for j := 0; j < shown; j++ {
			cw := children[i+j].Wire()
			cw.ParentID = "" // only roots carry the remote parent
			w.Children = append(w.Children, cw)
		}
		if run > shown {
			var total time.Duration
			for j := shown; j < run; j++ {
				total += children[i+j].Duration()
			}
			w.Children = append(w.Children, &SpanWire{
				Name:    children[i].Name,
				StartNS: children[i+shown].Start.UnixNano(),
				DurNS:   int64(total),
				Elided:  run - shown,
			})
		}
		i += run
	}
	return w
}

// Span reconstructs an (ended) span tree from its wire form, preserving
// IDs so a stitched tree stays addressable. Elided summary nodes become
// spans with an "elided" attribute.
func (w *SpanWire) Span() *Span {
	if w == nil {
		return nil
	}
	s := &Span{
		Name:   w.Name,
		Start:  time.Unix(0, w.StartNS),
		id:     w.ID,
		parent: w.ParentID,
		dur:    time.Duration(w.DurNS),
		ended:  true,
	}
	for _, a := range w.Attrs {
		s.attrs = append(s.attrs, Attr{Key: a.K, Value: a.V})
	}
	if w.Elided > 0 {
		s.attrs = append(s.attrs, Attr{Key: "elided", Value: w.Elided})
	}
	for _, c := range w.Children {
		cs := c.Span()
		cs.trace = s.trace
		s.children = append(s.children, cs)
	}
	return s
}

// AdoptWire reconstructs a remote span tree and grafts it under s,
// inheriting s's trace ID — the stitching step that turns a local
// client span plus a fracd response trace into one cross-node
// waterfall.
func (s *Span) AdoptWire(w *SpanWire) {
	if s == nil || w == nil {
		return
	}
	remote := w.Span()
	remote.setTrace(s.trace)
	s.Adopt(remote)
}

// setTrace stamps a trace ID over a whole (reconstructed, ended) tree.
func (s *Span) setTrace(trace string) {
	s.trace = trace
	for _, c := range s.children {
		c.setTrace(trace)
	}
}

// SpanCount returns the number of nodes in the wire tree.
func (w *SpanWire) SpanCount() int {
	if w == nil {
		return 0
	}
	n := 1
	for _, c := range w.Children {
		n += c.SpanCount()
	}
	return n
}

// Find returns the first node (depth-first, including w) with the
// given name, or nil.
func (w *SpanWire) Find(name string) *SpanWire {
	if w == nil {
		return nil
	}
	if w.Name == name {
		return w
	}
	for _, c := range w.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}
