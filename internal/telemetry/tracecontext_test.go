package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "root")
	sc := SpanContextOf(ctx)
	if !sc.Valid() {
		t.Fatalf("span context %+v not valid", sc)
	}
	if sc.TraceID != root.TraceID() || sc.SpanID != root.ID() {
		t.Fatalf("context %+v does not match root trace=%s id=%s", sc, root.TraceID(), root.ID())
	}
	h := sc.Traceparent()
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q not W3C shaped", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", h, got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-xyz-abc-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + strings.Repeat("a", 31) + "-" + strings.Repeat("b", 16) + "-01", // short trace
		"0-abc",
	}
	for _, h := range bad {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v", h, sc)
		}
	}
	// uppercase hex is normalized, not rejected
	h := "00-" + strings.Repeat("AB", 16) + "-" + strings.Repeat("CD", 8) + "-01"
	sc, ok := ParseTraceparent(h)
	if !ok || sc.TraceID != strings.Repeat("ab", 16) {
		t.Errorf("uppercase traceparent: got %+v, %v", sc, ok)
	}
}

func TestChildInheritsTraceID(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.ID() == root.ID() || child.ID() == "" {
		t.Fatalf("child id %q must be fresh (root %q)", child.ID(), root.ID())
	}
}

func TestWithRemoteTraceAdoptsCallerContext(t *testing.T) {
	_, caller := WithTrace(context.Background(), "caller")
	sc := caller.SpanContext()
	ctx, root := WithRemoteTrace(context.Background(), "server", sc)
	if root.TraceID() != caller.TraceID() {
		t.Fatalf("server root trace %s, want caller's %s", root.TraceID(), caller.TraceID())
	}
	if root.RemoteParentID() != caller.ID() {
		t.Fatalf("server root parent %s, want caller span %s", root.RemoteParentID(), caller.ID())
	}
	_, phase := StartSpan(ctx, "phase")
	if phase.TraceID() != caller.TraceID() {
		t.Fatalf("phase span trace %s, want caller's %s", phase.TraceID(), caller.TraceID())
	}
}

func TestContextWithSpan(t *testing.T) {
	_, root := WithTrace(context.Background(), "root")
	attempt := root.Child("attempt")
	ctx := ContextWithSpan(context.Background(), attempt)
	if ActiveSpan(ctx) != attempt {
		t.Fatal("ContextWithSpan did not install the span")
	}
	_, sub := StartSpan(ctx, "sub")
	if sub.TraceID() != root.TraceID() {
		t.Fatalf("sub trace %s, want %s", sub.TraceID(), root.TraceID())
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]struct{})
	for i := 0; i < 10000; i++ {
		id := newSpanID()
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate span id %s after %d draws", id, i)
		}
		seen[id] = struct{}{}
	}
}
