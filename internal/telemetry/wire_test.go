package telemetry

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWireRoundTrip(t *testing.T) {
	ctx, root := WithTrace(context.Background(), "root")
	root.Set("k", 7)
	cctx, child := StartSpan(ctx, "solve")
	_, grand := StartSpan(cctx, "refine")
	grand.Set("shots", 42)
	grand.End()
	child.End()
	root.End()

	w := root.Wire()
	buf, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanWire
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "root" || back.ID != root.ID() {
		t.Fatalf("root wire = %+v", back)
	}
	if back.Find("refine") == nil {
		t.Fatal("refine span lost on the wire")
	}
	if got := back.Find("refine").Attrs; len(got) != 1 || got[0].K != "shots" || got[0].V != "42" {
		t.Fatalf("refine attrs = %+v", got)
	}

	re := back.Span()
	if re.Find("refine") == nil || re.Find("solve") == nil {
		t.Fatal("reconstructed tree missing spans")
	}
	if re.Find("solve").Duration() != child.Duration() {
		t.Fatalf("reconstructed duration %v != %v", re.Find("solve").Duration(), child.Duration())
	}
	if re.Find("solve").ID() != child.ID() {
		t.Fatalf("reconstructed id %s != %s", re.Find("solve").ID(), child.ID())
	}
}

func TestWireElidesLongSiblingRuns(t *testing.T) {
	_, root := WithTrace(context.Background(), "root")
	for i := 0; i < 100; i++ {
		it := root.Child("iter")
		time.Sleep(time.Microsecond)
		it.End()
	}
	root.End()
	w := root.Wire()
	if len(w.Children) != maxWireSiblings+1 {
		t.Fatalf("wire children = %d, want %d shown + 1 summary", len(w.Children), maxWireSiblings)
	}
	last := w.Children[len(w.Children)-1]
	if last.Elided != 100-maxWireSiblings || last.Name != "iter" {
		t.Fatalf("summary node = %+v", last)
	}
	if w.SpanCount() != maxWireSiblings+2 {
		t.Fatalf("span count = %d", w.SpanCount())
	}
}

func TestAdoptWireStitches(t *testing.T) {
	// remote process: adopted trace, phase spans
	_, caller := WithTrace(context.Background(), "caller")
	attempt := caller.Child("cluster.attempt")
	rctx, remoteRoot := WithRemoteTrace(context.Background(), "fracd.fracture", attempt.SpanContext())
	_, phase := StartSpan(rctx, "mbf.approximate")
	phase.End()
	remoteRoot.End()

	attempt.AdoptWire(remoteRoot.Wire())
	attempt.End()
	caller.End()

	got := caller.Find("mbf.approximate")
	if got == nil {
		t.Fatal("stitched tree missing remote phase span")
	}
	if got.TraceID() != caller.TraceID() {
		t.Fatalf("stitched span trace %s, want %s", got.TraceID(), caller.TraceID())
	}
	var sb strings.Builder
	caller.WriteTree(&sb)
	for _, name := range []string{"caller", "cluster.attempt", "fracd.fracture", "mbf.approximate"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("rendered waterfall missing %q:\n%s", name, sb.String())
		}
	}
}
