package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Records below a logger's level are dropped.
type Level int8

const (
	LevelDebug Level = iota - 1
	LevelInfo
	LevelWarn
	LevelError
	// levelOff is above every level; the Nop logger uses it.
	levelOff
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// ParseLevel maps a level name to its Level; unknown names select Info.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Logger emits one JSON object per record: {"ts":...,"level":...,
// "msg":...,<bound fields>,<call fields>}. Loggers are safe for
// concurrent use; With derives child loggers sharing the writer and
// its lock.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	bound  []byte // pre-rendered `,"k":v` pairs
	timeFn func() time.Time
}

// NewLogger returns a logger writing JSON lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, timeFn: time.Now}
}

// NopLogger returns a logger that discards everything.
func NopLogger() *Logger {
	return &Logger{mu: &sync.Mutex{}, w: io.Discard, level: levelOff, timeFn: time.Now}
}

// Enabled reports whether records at level would be written.
func (l *Logger) Enabled(level Level) bool { return level >= l.level }

// With returns a logger with key-value pairs bound to every record.
// kv alternates string keys and arbitrary JSON-encodable values.
func (l *Logger) With(kv ...any) *Logger {
	child := *l
	child.bound = appendFields(append([]byte(nil), l.bound...), kv)
	return &child
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if level < l.level {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":"`...)
	buf = l.timeFn().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	buf = append(buf, l.bound...)
	buf = appendFields(buf, kv)
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// appendFields renders alternating key-value pairs as `,"k":v`. A
// trailing key without a value is paired with null; non-string keys are
// stringified.
func appendFields(buf []byte, kv []any) []byte {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		buf = append(buf, ',')
		buf = appendJSON(buf, key)
		buf = append(buf, ':')
		if i+1 < len(kv) {
			buf = appendJSON(buf, kv[i+1])
		} else {
			buf = append(buf, "null"...)
		}
	}
	return buf
}

// appendJSON appends the JSON encoding of v, with fast paths for the
// common field types.
func appendJSON(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		b, _ := json.Marshal(x)
		return append(buf, b...)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	case time.Duration:
		b, _ := json.Marshal(x.String())
		return append(buf, b...)
	case error:
		b, _ := json.Marshal(x.Error())
		return append(buf, b...)
	case nil:
		return append(buf, "null"...)
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

var reqCounter atomic.Uint64

// NewRequestID returns a short unique request identifier: 8 random
// bytes hex-encoded, falling back to a process-local counter if the
// system randomness source fails.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + strconv.FormatUint(reqCounter.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}
