// Package tracestore retains completed request traces in bounded
// memory so a fracd node can answer "what did request X actually do"
// after the fact (GET /debug/traces). Retention composes three
// policies, checked in order per finished trace:
//
//  1. errors are always kept (their own ring, so a burst of failures
//     cannot be washed out by healthy traffic),
//  2. the slowest N traces seen so far are kept (the tail is what
//     latency debugging needs, and uniform sampling would miss it),
//  3. everything else is sampled into a ring buffer with probability
//     SampleRate; the ring evicts oldest-first.
//
// Explicitly requested traces (a caller-supplied traceparent) are
// "pinned": they bypass the sampling coin flip but still live in the
// bounded ring, so a misbehaving caller cannot grow the store.
package tracestore

import (
	"sort"
	"sync"
	"time"

	"maskfrac/internal/telemetry"
)

// Trace is one completed request trace.
type Trace struct {
	// TraceID is the 16-byte hex trace ID (shared with the caller when
	// the request carried a traceparent).
	TraceID string `json:"trace_id"`
	// Name is the root span name (e.g. "fracd.fracture").
	Name string `json:"name"`
	// RequestID is the X-Request-ID the request was served under.
	RequestID string `json:"request_id,omitempty"`
	// Start and Duration mirror the root span.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Err is the request's error message ("" on success). Error traces
	// are always retained.
	Err string `json:"err,omitempty"`
	// Pinned marks traces the caller explicitly asked for (remote
	// traceparent); they skip the sampling coin flip.
	Pinned bool `json:"pinned,omitempty"`
	// Root is the serialized span tree.
	Root *telemetry.SpanWire `json:"root"`
}

// Config tunes a Store. Zero values select the defaults noted on each
// field.
type Config struct {
	// Capacity bounds the sampled/pinned ring (default 256).
	Capacity int
	// ErrCapacity bounds the always-keep-errors ring (default
	// max(16, Capacity/4)).
	ErrCapacity int
	// KeepSlowest pins the N slowest successful traces seen so far
	// (default 16).
	KeepSlowest int
	// SampleRate is the admission probability for ordinary successful
	// traces (default 1: keep everything, let the ring evict). Set
	// below 1 on high-QPS nodes so the ring spans a longer horizon.
	// Negative disables ordinary admission entirely.
	SampleRate float64
	// Rand overrides the sampling source (tests); must return values
	// in [0,1). Nil selects a seeded process-local generator.
	Rand func() float64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.ErrCapacity <= 0 {
		c.ErrCapacity = c.Capacity / 4
		if c.ErrCapacity < 16 {
			c.ErrCapacity = 16
		}
	}
	if c.KeepSlowest <= 0 {
		c.KeepSlowest = 16
	}
	if c.SampleRate == 0 {
		c.SampleRate = 1
	} else if c.SampleRate < 0 {
		c.SampleRate = 0
	} else if c.SampleRate > 1 {
		c.SampleRate = 1
	}
	return c
}

// entry wraps a retained trace with its admission order.
type entry struct {
	seq  uint64
	t    *Trace
	kept string // "error" | "slow" | "sampled" | "pinned"
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf  []*entry
	next int
}

func newRing(capacity int) *ring { return &ring{buf: make([]*entry, 0, capacity)} }

func (r *ring) add(e *entry) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Store retains completed traces under the configured policy. It is
// safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	seq     uint64
	sampled *ring
	errors  *ring
	slow    []*entry // min-heap ordered slice by duration, len <= KeepSlowest
	rnd     func() float64

	added   uint64
	dropped uint64
}

// New returns a store with the given configuration.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		sampled: newRing(cfg.Capacity),
		errors:  newRing(cfg.ErrCapacity),
		rnd:     cfg.Rand,
	}
	if s.rnd == nil {
		var mu sync.Mutex
		state := uint64(time.Now().UnixNano())
		s.rnd = func() float64 {
			mu.Lock()
			state = state*6364136223846793005 + 1442695040888963407
			x := state >> 11
			mu.Unlock()
			return float64(x) / float64(1<<53)
		}
	}
	return s
}

// Add offers one completed trace to the store.
func (s *Store) Add(t Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.added++
	s.seq++
	e := &entry{seq: s.seq, t: &t}
	switch {
	case t.Err != "":
		e.kept = "error"
		s.errors.add(e)
	case s.admitSlow(e):
		// admitSlow stores the entry itself
	case t.Pinned:
		e.kept = "pinned"
		s.sampled.add(e)
	case s.rnd() < s.cfg.SampleRate:
		e.kept = "sampled"
		s.sampled.add(e)
	default:
		s.dropped++
	}
}

// admitSlow keeps the slowest-N successful traces: admit while below
// capacity, otherwise displace the current minimum if this trace is
// slower. The displaced trace is dropped (it had its chance).
func (s *Store) admitSlow(e *entry) bool {
	if len(s.slow) < s.cfg.KeepSlowest {
		e.kept = "slow"
		s.slow = append(s.slow, e)
		s.sortSlow()
		return true
	}
	if len(s.slow) == 0 || e.t.Duration <= s.slow[0].t.Duration {
		return false
	}
	e.kept = "slow"
	s.slow[0] = e
	s.sortSlow()
	return true
}

func (s *Store) sortSlow() {
	sort.Slice(s.slow, func(a, b int) bool { return s.slow[a].t.Duration < s.slow[b].t.Duration })
}

// Get returns the most recently added retained trace with the given
// trace ID.
func (s *Store) Get(traceID string) (Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *entry
	for _, e := range s.all() {
		if e.t.TraceID == traceID && (best == nil || e.seq > best.seq) {
			best = e
		}
	}
	if best == nil {
		return Trace{}, false
	}
	return *best.t, true
}

// Summary is one trace's listing line.
type Summary struct {
	TraceID   string    `json:"trace_id"`
	Name      string    `json:"name"`
	RequestID string    `json:"request_id,omitempty"`
	Start     time.Time `json:"start"`
	DurMS     float64   `json:"dur_ms"`
	Spans     int       `json:"spans"`
	Err       string    `json:"err,omitempty"`
	Kept      string    `json:"kept"` // retention reason
}

// List returns summaries of every retained trace, newest first.
func (s *Store) List() []Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.all()
	sort.Slice(entries, func(a, b int) bool { return entries[a].seq > entries[b].seq })
	out := make([]Summary, len(entries))
	for i, e := range entries {
		out[i] = Summary{
			TraceID:   e.t.TraceID,
			Name:      e.t.Name,
			RequestID: e.t.RequestID,
			Start:     e.t.Start,
			DurMS:     float64(e.t.Duration) / float64(time.Millisecond),
			Spans:     e.t.Root.SpanCount(),
			Err:       e.t.Err,
			Kept:      e.kept,
		}
	}
	return out
}

// all collects every live entry (caller holds the lock).
func (s *Store) all() []*entry {
	out := make([]*entry, 0, len(s.sampled.buf)+len(s.errors.buf)+len(s.slow))
	out = append(out, s.sampled.buf...)
	out = append(out, s.errors.buf...)
	out = append(out, s.slow...)
	return out
}

// Stats reports store counters: traces offered, retained now, and
// dropped by the sampling coin flip.
func (s *Store) Stats() (added, retained, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.added, uint64(len(s.sampled.buf) + len(s.errors.buf) + len(s.slow)), s.dropped
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sampled.buf) + len(s.errors.buf) + len(s.slow)
}
