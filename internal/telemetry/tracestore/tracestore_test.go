package tracestore

import (
	"fmt"
	"testing"
	"time"

	"maskfrac/internal/telemetry"
)

func mkTrace(id string, dur time.Duration, errMsg string) Trace {
	return Trace{
		TraceID:  id,
		Name:     "fracd.fracture",
		Start:    time.Unix(1700000000, 0),
		Duration: dur,
		Err:      errMsg,
		Root:     &telemetry.SpanWire{Name: "fracd.fracture", DurNS: int64(dur)},
	}
}

func TestErrorsAlwaysKept(t *testing.T) {
	// sampling fully off: only the error path admits
	st := New(Config{Capacity: 8, KeepSlowest: 1, SampleRate: -1, Rand: func() float64 { return 0.999 }})
	st.Add(mkTrace("aaaa", time.Second, "")) // slowest slot
	for i := 0; i < 20; i++ {
		st.Add(mkTrace(fmt.Sprintf("ok%02d", i), time.Millisecond, ""))
		st.Add(mkTrace(fmt.Sprintf("er%02d", i), time.Millisecond, "boom"))
	}
	for i := 20 - 16; i < 20; i++ { // ErrCapacity defaults to 16
		id := fmt.Sprintf("er%02d", i)
		tr, ok := st.Get(id)
		if !ok {
			t.Fatalf("error trace %s evicted by non-errors", id)
		}
		if tr.Err != "boom" {
			t.Fatalf("trace %s err = %q", id, tr.Err)
		}
	}
	if _, ok := st.Get("ok05"); ok {
		t.Fatal("sampled-out success trace retained despite SampleRate<0")
	}
}

func TestRingBounded(t *testing.T) {
	st := New(Config{Capacity: 8, ErrCapacity: 4, KeepSlowest: 2, SampleRate: 1})
	for i := 0; i < 100; i++ {
		st.Add(mkTrace(fmt.Sprintf("t%03d", i), time.Duration(i)*time.Millisecond, ""))
		st.Add(mkTrace(fmt.Sprintf("e%03d", i), time.Millisecond, "x"))
	}
	if n := st.Len(); n > 8+4+2 {
		t.Fatalf("store grew to %d entries, bound is 14", n)
	}
	added, retained, _ := st.Stats()
	if added != 200 {
		t.Fatalf("added = %d", added)
	}
	if retained != uint64(st.Len()) {
		t.Fatalf("retained = %d, len = %d", retained, st.Len())
	}
	// newest sampled survive; oldest evicted
	if _, ok := st.Get("t099"); !ok {
		t.Fatal("newest trace evicted")
	}
	if _, ok := st.Get("t000"); ok {
		// t000 (0ms) is neither slow nor recent; must be gone
		t.Fatal("oldest trace still retained past ring capacity")
	}
}

func TestSlowestKept(t *testing.T) {
	st := New(Config{Capacity: 4, KeepSlowest: 3, SampleRate: -1, Rand: func() float64 { return 1 }})
	durs := []time.Duration{5, 50, 10, 500, 1, 100, 2}
	for i, d := range durs {
		st.Add(mkTrace(fmt.Sprintf("s%d", i), d*time.Millisecond, ""))
	}
	// slowest three are 500 (s3), 100 (s5), 50 (s1)
	for _, id := range []string{"s3", "s5", "s1"} {
		if _, ok := st.Get(id); !ok {
			t.Errorf("slow trace %s not retained", id)
		}
	}
	if _, ok := st.Get("s4"); ok {
		t.Error("fast trace s4 retained with sampling disabled")
	}
}

func TestPinnedBypassesSampling(t *testing.T) {
	st := New(Config{Capacity: 8, KeepSlowest: 1, SampleRate: 0.0001, Rand: func() float64 { return 0.99 }})
	st.Add(mkTrace("slowest", time.Second, ""))
	pinned := mkTrace("pinned1", time.Millisecond, "")
	pinned.Pinned = true
	st.Add(pinned)
	st.Add(mkTrace("plain1", time.Millisecond, ""))
	if _, ok := st.Get("pinned1"); !ok {
		t.Fatal("pinned trace not retained")
	}
	if _, ok := st.Get("plain1"); ok {
		t.Fatal("plain trace beat a 0.0001 sample rate with rand=0.99")
	}
	_, _, dropped := st.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestSamplingProbabilistic(t *testing.T) {
	i := 0
	seq := []float64{0.1, 0.9, 0.3, 0.7} // alternate keep/drop at rate 0.5
	st := New(Config{Capacity: 64, KeepSlowest: 1, SampleRate: 0.5,
		Rand: func() float64 { v := seq[i%len(seq)]; i++; return v }})
	st.Add(mkTrace("slowest", time.Second, ""))
	for j := 0; j < 4; j++ {
		st.Add(mkTrace(fmt.Sprintf("p%d", j), time.Millisecond, ""))
	}
	for j, want := range []bool{true, false, true, false} {
		_, ok := st.Get(fmt.Sprintf("p%d", j))
		if ok != want {
			t.Errorf("trace p%d retained=%v, want %v", j, ok, want)
		}
	}
}

func TestListNewestFirstAndGetLatestDup(t *testing.T) {
	st := New(Config{Capacity: 8})
	st.Add(mkTrace("dup", time.Millisecond, ""))
	later := mkTrace("dup", 2*time.Millisecond, "")
	st.Add(later)
	st.Add(mkTrace("other", time.Millisecond, ""))
	l := st.List()
	if len(l) != 3 {
		t.Fatalf("list len = %d", len(l))
	}
	if l[0].TraceID != "other" {
		t.Fatalf("list[0] = %+v, want newest", l[0])
	}
	got, ok := st.Get("dup")
	if !ok || got.Duration != 2*time.Millisecond {
		t.Fatalf("Get(dup) = %+v, %v; want the later trace", got, ok)
	}
	if l[0].Kept == "" || l[0].Spans != 1 {
		t.Fatalf("summary = %+v", l[0])
	}
}
