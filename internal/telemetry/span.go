package telemetry

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span records one named phase of a computation: its wall time, ordered
// key-value attributes, and child phases. Spans form a tree rooted at
// the span installed by WithTrace. A nil *Span is a valid no-op span,
// which is what instrumented code receives when tracing is disabled —
// the instrumentation then costs one context lookup and nil checks.
type Span struct {
	Name  string
	Start time.Time

	// trace/id/parent identify the span for cross-process propagation:
	// trace is the 16-byte trace ID shared by the whole tree, id the
	// span's own 8-byte ID, parent the remote caller's span ID (set only
	// on roots adopted via WithRemoteTrace). All lower-case hex.
	trace  string
	id     string
	parent string

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value any
}

type spanKey struct{}

// WithTrace enables tracing on the context: it installs and returns a
// root span under which StartSpan calls nest. The caller must End the
// root before reading the tree.
func WithTrace(ctx context.Context, name string) (context.Context, *Span) {
	root := &Span{Name: name, Start: time.Now(), trace: NewTraceID(), id: newSpanID()}
	return context.WithValue(ctx, spanKey{}, root), root
}

// ActiveSpan returns the span installed on ctx, or nil when tracing is
// disabled.
func ActiveSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan begins a child of the context's active span and returns a
// context carrying it. When tracing is disabled it returns ctx
// unchanged and a nil span; every Span method is nil-safe.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := ActiveSpan(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Child appends and returns a new child span without touching the
// context — the cheap form for instrumenting loops.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now(), trace: s.trace, id: newSpanID()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ID returns the span's 8-byte hex ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the 16-byte hex trace ID the span belongs to.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SpanContext returns the span's propagation context.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.id}
}

// RemoteParentID returns the remote caller's span ID on roots created
// by WithRemoteTrace, "" otherwise.
func (s *Span) RemoteParentID() string {
	if s == nil {
		return ""
	}
	return s.parent
}

// Adopt grafts an already-built span (typically reconstructed from a
// remote process's wire form) under s as a child.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End fixes the span's duration. Subsequent Ends are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.Start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Duration returns the span's duration (elapsed time so far when the
// span has not Ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.Start)
}

// Set records a key-value attribute on the span.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, v})
	s.mu.Unlock()
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a copy of the child span list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first descendant span (depth-first, including s)
// with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// maxSiblingsShown bounds how many same-named consecutive siblings
// WriteTree prints before eliding the rest — refinement emits one span
// per iteration and a trace of a hard solve would otherwise print
// thousands of lines.
const maxSiblingsShown = 12

// WriteTree prints the span tree with durations and attributes,
// indented two spaces per level. Long runs of same-named siblings are
// elided after maxSiblingsShown with a summary line.
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s%s %s%s\n", indent, s.Name, fmtDur(s.Duration()), fmtAttrs(s.Attrs()))
	children := s.Children()
	for i := 0; i < len(children); {
		run := 1
		for i+run < len(children) && children[i+run].Name == children[i].Name {
			run++
		}
		shown := run
		if run > maxSiblingsShown {
			shown = maxSiblingsShown
		}
		for j := 0; j < shown; j++ {
			children[i+j].writeTree(w, depth+1)
		}
		if run > shown {
			var total time.Duration
			for j := shown; j < run; j++ {
				total += children[i+j].Duration()
			}
			fmt.Fprintf(w, "%s  ... %d more %s spans (%s)\n",
				indent, run-shown, children[i].Name, fmtDur(total))
		}
		i += run
	}
}

// PhaseStat aggregates every span of one name across a tree.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// PhaseSummary flattens the tree into per-name aggregates, ordered by
// first appearance (depth-first).
func (s *Span) PhaseSummary() []PhaseStat {
	if s == nil {
		return nil
	}
	idx := make(map[string]int)
	var out []PhaseStat
	var walk func(sp *Span)
	walk = func(sp *Span) {
		d := sp.Duration()
		i, ok := idx[sp.Name]
		if !ok {
			i = len(out)
			idx[sp.Name] = i
			out = append(out, PhaseStat{Name: sp.Name, Min: d, Max: d})
		}
		st := &out[i]
		st.Count++
		st.Total += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		for _, c := range sp.Children() {
			walk(c)
		}
	}
	walk(s)
	return out
}

// WritePhaseTable prints the per-phase timing table of a trace: one row
// per span name with count, total, share of the root's wall time, and
// min/mean/max durations.
func WritePhaseTable(w io.Writer, root *Span) {
	if root == nil {
		return
	}
	stats := root.PhaseSummary()
	rootDur := root.Duration()
	nameW := len("phase")
	for _, st := range stats {
		if len(st.Name) > nameW {
			nameW = len(st.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %6s  %10s  %6s  %10s  %10s  %10s\n",
		nameW, "phase", "count", "total", "share", "min", "mean", "max")
	for _, st := range stats {
		share := 0.0
		if rootDur > 0 {
			share = float64(st.Total) / float64(rootDur) * 100
		}
		mean := st.Total / time.Duration(st.Count)
		fmt.Fprintf(w, "%-*s  %6d  %10s  %5.1f%%  %10s  %10s  %10s\n",
			nameW, st.Name, st.Count, fmtDur(st.Total), share,
			fmtDur(st.Min), fmtDur(mean), fmtDur(st.Max))
	}
}

// fmtDur renders a duration rounded to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.Round(10 * time.Nanosecond).String()
}

// fmtAttrs renders attributes as ` [k=v k=v]`, or "" when empty.
func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" [")
	for i, a := range attrs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", a.Key, a.Value)
	}
	sb.WriteByte(']')
	return sb.String()
}

// SortPhasesByTotal reorders phase stats heaviest-first.
func SortPhasesByTotal(stats []PhaseStat) {
	sort.SliceStable(stats, func(a, b int) bool { return stats[a].Total > stats[b].Total })
}
