package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span inside one distributed trace: the
// 16-byte trace ID shared by every span of the trace and the 8-byte ID
// of the span itself, both lower-case hex. It is the unit of
// cross-process propagation — a client encodes its active span's
// context as a W3C-style traceparent header, the server adopts it, and
// the server's spans become children of the caller's span even though
// the two trees live in different processes.
type SpanContext struct {
	TraceID string // 32 hex chars
	SpanID  string // 16 hex chars
}

// Valid reports whether both IDs have the right shape and are not
// all-zero (the W3C invalid sentinel).
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// Traceparent renders the context as a W3C traceparent header value:
// version 00, sampled flag set (this tracer has no head-sampling bit —
// a propagated trace is always recorded).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags). It accepts any version byte and
// ignores the flags, returning ok=false on anything malformed.
func ParseTraceparent(h string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// idState seeds the process-local span ID generator: an 8-byte random
// base from the system source, mixed with an atomic counter through
// splitmix64. One atomic add per span keeps tracing cheap enough for
// the refiner's per-iteration spans; uniqueness within the process is
// what stitching needs, and the random base makes cross-process
// collisions vanishingly unlikely.
var (
	idBase    = seedBase()
	idCounter atomic.Uint64
)

func seedBase() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint64(b[:])
}

// splitmix64 is the finalizer of the splitmix64 generator: a cheap
// bijective mixer with good avalanche behavior.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], splitmix64(idBase+idCounter.Add(1)))
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a fresh 16-byte trace ID in hex.
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], splitmix64(idBase+idCounter.Add(1)))
	binary.BigEndian.PutUint64(b[8:], splitmix64(idBase+idCounter.Add(1)))
	return hex.EncodeToString(b[:])
}

// WithRemoteTrace installs a root span that continues a remote caller's
// trace: the root adopts sc.TraceID and records sc.SpanID as its remote
// parent, so when the caller stitches this tree under its own span the
// IDs line up.
func WithRemoteTrace(ctx context.Context, name string, sc SpanContext) (context.Context, *Span) {
	root := &Span{Name: name, Start: time.Now(),
		trace: sc.TraceID, id: newSpanID(), parent: sc.SpanID}
	return context.WithValue(ctx, spanKey{}, root), root
}

// ContextWithSpan installs an existing span as the active span on ctx,
// so spans created elsewhere (per-attempt spans in a routing loop) can
// parent the instrumentation below them.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanContextOf returns the propagation context of ctx's active span.
// The zero SpanContext (Valid() == false) means tracing is disabled.
func SpanContextOf(ctx context.Context) SpanContext {
	s := ActiveSpan(ctx)
	if s == nil {
		return SpanContext{}
	}
	return s.SpanContext()
}
