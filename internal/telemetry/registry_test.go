package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the Prometheus cumulative-bucket
// convention: bucket le=U counts observations v <= U (inclusive), and
// the +Inf bucket equals the total count.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", []float64{1, 2.5, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2.5, 5, 7, 100} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	// v <= 1: {0.5, 1} → 2; v <= 2.5 adds {1.0000001, 2.5} → 4;
	// v <= 5 adds {5} → 5; +Inf adds {7, 100} → 7
	want := []uint64{2, 4, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if want := 0.5 + 1 + 1.0000001 + 2.5 + 5 + 7 + 100; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestHistogramUnsortedAndInfBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "test", []float64{5, 1, math.Inf(1), 2})
	if got, want := len(h.buckets), 3; got != want {
		t.Fatalf("normalized buckets = %v", h.buckets)
	}
	for i, want := range []float64{1, 2, 5} {
		if h.buckets[i] != want {
			t.Errorf("buckets[%d] = %g, want %g", i, h.buckets[i], want)
		}
	}
}

// TestExpositionGolden pins the full text exposition format: HELP/TYPE
// headers, sorted families, escaped labels, histogram bucket/sum/count
// lines.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frac_requests_total", "requests received")
	c.Add(3)
	g := r.Gauge("frac_queue_depth", "queued shapes")
	g.Set(2)
	v := r.CounterVec("frac_shapes_total", "shapes by method", "method")
	v.With("mbf").Add(2)
	v.With("gsc").Inc()
	h := r.Histogram("frac_wait_seconds", "queue wait", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	r.GaugeFunc("frac_uptime_seconds", "uptime", func() float64 { return 12.5 })

	got := string(r.WritePrometheus(nil))
	want := `# HELP frac_queue_depth queued shapes
# TYPE frac_queue_depth gauge
frac_queue_depth 2
# HELP frac_requests_total requests received
# TYPE frac_requests_total counter
frac_requests_total 3
# HELP frac_shapes_total shapes by method
# TYPE frac_shapes_total counter
frac_shapes_total{method="gsc"} 1
frac_shapes_total{method="mbf"} 2
# HELP frac_uptime_seconds uptime
# TYPE frac_uptime_seconds gauge
frac_uptime_seconds 12.5
# HELP frac_wait_seconds queue wait
# TYPE frac_wait_seconds histogram
frac_wait_seconds_bucket{le="0.1"} 1
frac_wait_seconds_bucket{le="1"} 2
frac_wait_seconds_bucket{le="+Inf"} 3
frac_wait_seconds_sum 2.55
frac_wait_seconds_count 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "test", "path")
	v.With(`a"b\c`).Inc()
	out := string(r.WritePrometheus(nil))
	if !strings.Contains(out, `c_total{path="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate registration")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestCounterGaugeConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "test")
	g := r.Gauge("conc_gauge", "test")
	h := r.Histogram("conc_hist", "test", []float64{50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Dec()
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %g, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %g, want 0", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestCounterVecEach(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("each_total", "test", "m")
	v.With("a").Add(2)
	v.With("b").Add(5)
	seen := map[string]float64{}
	v.Each(func(values []string, c *Counter) { seen[values[0]] = c.Value() })
	if seen["a"] != 2 || seen["b"] != 5 {
		t.Errorf("Each saw %v", seen)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("node_inflight", "in-flight by node", "node")
	v.With("n0").Set(3)
	v.With("n1").Inc()
	v.With("n1").Inc()
	v.With("n1").Dec()
	if got := v.With("n0").Value(); got != 3 {
		t.Errorf("n0 = %g", got)
	}
	seen := map[string]float64{}
	v.Each(func(values []string, g *Gauge) { seen[values[0]] = g.Value() })
	if seen["n0"] != 3 || seen["n1"] != 1 {
		t.Errorf("Each saw %v", seen)
	}
	out := string(r.WritePrometheus(nil))
	want := `# HELP node_inflight in-flight by node
# TYPE node_inflight gauge
node_inflight{node="n0"} 3
node_inflight{node="n1"} 1
`
	if out != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}
