package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set
// and its value. ParsePrometheus produces these from the text format
// this package's Registry writes, closing the loop for components (the
// /clusterz aggregator) that consume a peer's /metrics endpoint.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of one label ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParsePrometheus parses Prometheus text exposition format (version
// 0.0.4): `name{k="v",...} value` lines, skipping comments and blanks.
// It supports the escapes this package's writer emits (\\, \", \n) and
// tolerates timestamps after the value.
func ParsePrometheus(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: exposition line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseExpoFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at rest[0] == '{'
// and returns the index just past the closing brace.
func parseLabels(rest string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(rest) && (rest[i] == ',' || rest[i] == ' ') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block in %q", rest)
		}
		key := rest[i : i+eq]
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", rest)
		}
		i++
		var sb strings.Builder
		for i < len(rest) && rest[i] != '"' {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					c = '\n'
				default:
					c = rest[i]
				}
			}
			sb.WriteByte(c)
			i++
		}
		if i >= len(rest) {
			return 0, nil, fmt.Errorf("unterminated label value in %q", rest)
		}
		i++ // past closing quote
		labels[key] = sb.String()
	}
}

func parseExpoFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// SampleValue sums every sample of one family across its label sets
// (the natural read for counters and gauges aggregated over labels).
// ok is false when the family is absent.
func SampleValue(samples []Sample, name string) (v float64, ok bool) {
	for _, s := range samples {
		if s.Name == name {
			v += s.Value
			ok = true
		}
	}
	return v, ok
}

// HistogramQuantile estimates quantile q (in [0,1]) of a histogram
// family from its exposition samples, aggregating `<family>_bucket`
// cumulative counts across label sets and interpolating linearly
// within the bucket containing the target rank. Observations in the
// +Inf bucket clamp to the highest finite bound. Returns 0 when the
// family is empty or absent.
func HistogramQuantile(samples []Sample, family string, q float64) float64 {
	type bkt struct {
		le  float64
		cum float64
	}
	byLE := make(map[float64]float64)
	for _, s := range samples {
		if s.Name != family+"_bucket" {
			continue
		}
		le, err := parseExpoFloat(s.Label("le"))
		if err != nil {
			continue
		}
		byLE[le] += s.Value
	}
	if len(byLE) == 0 {
		return 0
	}
	buckets := make([]bkt, 0, len(byLE))
	for le, c := range byLE {
		buckets = append(buckets, bkt{le, c})
	}
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].le < buckets[b].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * total
	lowerBound, lowerCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				return lowerBound // clamp: highest finite bound
			}
			if b.cum == lowerCum {
				return b.le
			}
			return lowerBound + (b.le-lowerBound)*(rank-lowerCum)/(b.cum-lowerCum)
		}
		if !math.IsInf(b.le, 1) {
			lowerBound, lowerCum = b.le, b.cum
		}
	}
	return lowerBound
}
