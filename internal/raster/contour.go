package raster

import "maskfrac/internal/geom"

// corner identifies a pixel-corner lattice point (i, j) in pixel units.
type corner struct{ i, j int }

// dirEdge is a directed boundary edge between two adjacent lattice
// corners, oriented with the shape interior on its left.
type dirEdge struct {
	from, to corner
}

func (e dirEdge) dir() (int, int) { return e.to.i - e.from.i, e.to.j - e.from.j }

// Contours extracts the closed boundary loops of the true region of b
// as polygons in world coordinates. Interiors are 4-connected. Outer
// boundaries come out counterclockwise, hole boundaries clockwise.
// Vertices lie on pixel corners; collinear runs are collapsed.
func Contours(b *Bitmap) []geom.Polygon {
	g := b.Grid
	// Collect directed boundary edges (interior on the left).
	out := make(map[corner][]dirEdge)
	addEdge := func(f, t corner) {
		out[f] = append(out[f], dirEdge{f, t})
	}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			if !b.Bits[g.Index(i, j)] {
				continue
			}
			if !b.Get(i, j-1) { // bottom: +x
				addEdge(corner{i, j}, corner{i + 1, j})
			}
			if !b.Get(i+1, j) { // right: +y
				addEdge(corner{i + 1, j}, corner{i + 1, j + 1})
			}
			if !b.Get(i, j+1) { // top: -x
				addEdge(corner{i + 1, j + 1}, corner{i, j + 1})
			}
			if !b.Get(i-1, j) { // left: -y
				addEdge(corner{i, j + 1}, corner{i, j})
			}
		}
	}
	used := make(map[dirEdge]bool)
	var loops []geom.Polygon
	for _, edges := range out {
		for _, start := range edges {
			if used[start] {
				continue
			}
			loop := traceLoop(start, out, used)
			if len(loop) >= 4 {
				loops = append(loops, cornersToPolygon(loop, g))
			}
		}
	}
	return loops
}

// traceLoop follows directed edges from start until the loop closes,
// marking edges used. At ambiguous corners (two outgoing edges, the
// checkerboard case) it turns left, which keeps 4-connected interiors
// of diagonal pixel pairs on separate loops.
func traceLoop(start dirEdge, out map[corner][]dirEdge, used map[dirEdge]bool) []corner {
	var loop []corner
	cur := start
	for {
		used[cur] = true
		loop = append(loop, cur.from)
		if cur.to == start.from {
			return loop
		}
		cands := out[cur.to]
		next, ok := pickNext(cur, cands, used)
		if !ok {
			// Should not happen for a well-formed boundary; bail out to
			// avoid an infinite loop.
			return loop
		}
		cur = next
	}
}

// pickNext chooses the next unused outgoing edge, preferring a left
// turn, then straight, then right.
func pickNext(in dirEdge, cands []dirEdge, used map[dirEdge]bool) (dirEdge, bool) {
	dx, dy := in.dir()
	best := dirEdge{}
	bestRank := 4
	found := false
	for _, e := range cands {
		if used[e] {
			continue
		}
		ex, ey := e.dir()
		cross := dx*ey - dy*ex
		var rank int
		switch {
		case cross > 0:
			rank = 0 // left
		case cross == 0 && ex == dx && ey == dy:
			rank = 1 // straight
		default:
			rank = 2 // right (or U-turn, which cannot occur)
		}
		if rank < bestRank {
			bestRank, best, found = rank, e, true
		}
	}
	return best, found
}

// cornersToPolygon converts a lattice-corner loop to a world-coordinate
// polygon with collinear vertices removed.
func cornersToPolygon(loop []corner, g Grid) geom.Polygon {
	pg := make(geom.Polygon, 0, len(loop))
	n := len(loop)
	for k, c := range loop {
		prev := loop[(k+n-1)%n]
		next := loop[(k+1)%n]
		// drop vertices in the middle of straight runs
		if (prev.i == c.i && c.i == next.i) || (prev.j == c.j && c.j == next.j) {
			continue
		}
		pg = append(pg, geom.Pt(g.X0+float64(c.i)*g.Pitch, g.Y0+float64(c.j)*g.Pitch))
	}
	return pg
}

// LargestContour returns the outer contour with the largest area, or nil
// if b has no true pixels. Convenient for single-shape benchmarks.
func LargestContour(b *Bitmap) geom.Polygon {
	var best geom.Polygon
	bestArea := 0.0
	for _, pg := range Contours(b) {
		if a := pg.SignedArea(); a > bestArea { // CCW outer loops only
			bestArea = a
			best = pg
		}
	}
	return best
}
