package raster

import "math"

// DistanceTransform returns, for every pixel, the Euclidean distance (in
// world units) to the nearest true pixel of b, using the exact
// two-pass separable algorithm of Felzenszwalb & Huttenlocher. Pixels of
// b that are true have distance 0. If b has no true pixel, every
// distance is +Inf.
func DistanceTransform(b *Bitmap) *Field {
	g := b.Grid
	f := NewField(g)
	inf := math.Inf(1)
	// initialize: 0 at seeds, Inf elsewhere (in squared pixel units)
	for k, v := range b.Bits {
		if v {
			f.V[k] = 0
		} else {
			f.V[k] = inf
		}
	}
	// transform along columns then rows
	buf := make([]float64, max(g.W, g.H))
	vtx := make([]int, max(g.W, g.H)+1)
	z := make([]float64, max(g.W, g.H)+1)
	for i := 0; i < g.W; i++ {
		for j := 0; j < g.H; j++ {
			buf[j] = f.V[g.Index(i, j)]
		}
		dt1d(buf[:g.H], vtx, z)
		for j := 0; j < g.H; j++ {
			f.V[g.Index(i, j)] = buf[j]
		}
	}
	for j := 0; j < g.H; j++ {
		row := f.V[j*g.W : (j+1)*g.W]
		dt1d(row, vtx, z)
	}
	// convert squared pixel distances to world distances
	for k, v := range f.V {
		if math.IsInf(v, 1) {
			continue
		}
		f.V[k] = math.Sqrt(v) * g.Pitch
	}
	return f
}

// dt1d performs the 1D squared distance transform of Felzenszwalb &
// Huttenlocher in place on f. v and z are scratch slices of length
// >= len(f) and len(f)+1.
func dt1d(f []float64, v []int, z []float64) {
	n := len(f)
	if n == 0 {
		return
	}
	k := 0
	v[0] = 0
	z[0] = math.Inf(-1)
	z[1] = math.Inf(1)
	for q := 1; q < n; q++ {
		if math.IsInf(f[q], 1) {
			continue
		}
		for {
			p := v[k]
			var s float64
			if math.IsInf(f[p], 1) {
				s = math.Inf(-1)
			} else {
				s = ((f[q] + float64(q*q)) - (f[p] + float64(p*p))) / float64(2*(q-p))
			}
			if s > z[k] {
				k++
				v[k] = q
				z[k] = s
				z[k+1] = math.Inf(1)
				break
			}
			if k == 0 {
				v[0] = q
				z[0] = math.Inf(-1)
				z[1] = math.Inf(1)
				break
			}
			k--
		}
	}
	out := make([]float64, n)
	k = 0
	for q := 0; q < n; q++ {
		for z[k+1] < float64(q) {
			k++
		}
		p := v[k]
		if math.IsInf(f[p], 1) {
			out[q] = math.Inf(1)
		} else {
			d := float64(q - p)
			out[q] = d*d + f[p]
		}
	}
	copy(f, out)
}
