package raster

// Labels holds a connected-component labeling of a bitmap. Component
// ids run 1..N; background pixels have label 0.
type Labels struct {
	Grid Grid
	L    []int32 // row-major labels, 0 = background
	N    int     // number of components
}

// ConnectedComponents labels the 4-connected components of the true
// pixels of b using an iterative flood fill. The paper's shot-addition
// step (§4.3) merges failing pixels into polygons this way before
// picking the best bounding box.
func ConnectedComponents(b *Bitmap) *Labels {
	g := b.Grid
	lab := &Labels{Grid: g, L: make([]int32, g.Len())}
	var stack []int
	for start, v := range b.Bits {
		if !v || lab.L[start] != 0 {
			continue
		}
		lab.N++
		id := int32(lab.N)
		stack = append(stack[:0], start)
		lab.L[start] = id
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			i, j := g.Coords(k)
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				ni, nj := i+d[0], j+d[1]
				if !g.In(ni, nj) {
					continue
				}
				nk := g.Index(ni, nj)
				if b.Bits[nk] && lab.L[nk] == 0 {
					lab.L[nk] = id
					stack = append(stack, nk)
				}
			}
		}
	}
	return lab
}

// ComponentBox describes one connected component: its pixel count and
// pixel-coordinate bounding box (inclusive).
type ComponentBox struct {
	ID             int
	Count          int
	I0, J0, I1, J1 int
}

// Boxes returns per-component pixel counts and bounding boxes, indexed
// by component id minus one.
func (l *Labels) Boxes() []ComponentBox {
	boxes := make([]ComponentBox, l.N)
	for c := range boxes {
		boxes[c] = ComponentBox{ID: c + 1, I0: l.Grid.W, J0: l.Grid.H, I1: -1, J1: -1}
	}
	for k, id := range l.L {
		if id == 0 {
			continue
		}
		b := &boxes[id-1]
		i, j := l.Grid.Coords(k)
		b.Count++
		if i < b.I0 {
			b.I0 = i
		}
		if i > b.I1 {
			b.I1 = i
		}
		if j < b.J0 {
			b.J0 = j
		}
		if j > b.J1 {
			b.J1 = j
		}
	}
	return boxes
}
