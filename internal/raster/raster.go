// Package raster provides the pixel-grid substrate for model-based mask
// fracturing: polygon rasterization at the Δp sampling pitch, scalar
// dose fields, Euclidean distance transforms, connected-component
// labeling and contour extraction from bitmaps.
//
// The fracturing problem is defined on pixels sampled at 1 nm pitch
// (paper §2): the target shape is rasterized, pixels are classified into
// Pon/Poff/Px, and shot intensity is accumulated per pixel.
package raster

import (
	"fmt"
	"math"

	"maskfrac/internal/geom"
)

// Grid describes a regular pixel grid. Pixel (i, j) covers the square
// [X0+i·Pitch, X0+(i+1)·Pitch] × [Y0+j·Pitch, Y0+(j+1)·Pitch] and is
// sampled at its center. i runs 0..W-1 (x), j runs 0..H-1 (y).
type Grid struct {
	X0, Y0 float64 // world coordinate of the lower-left grid corner
	Pitch  float64 // pixel size Δp in nm
	W, H   int     // pixel counts
}

// GridCovering returns a Grid with pitch Δp covering r expanded by
// margin on every side. The origin is aligned so pixel boundaries land
// on multiples of pitch relative to r's lower-left corner.
func GridCovering(r geom.Rect, margin, pitch float64) Grid {
	x0 := r.X0 - margin
	y0 := r.Y0 - margin
	w := int(math.Ceil((r.W() + 2*margin) / pitch))
	h := int(math.Ceil((r.H() + 2*margin) / pitch))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return Grid{X0: x0, Y0: y0, Pitch: pitch, W: w, H: h}
}

// Center returns the world coordinate of the center of pixel (i, j).
func (g Grid) Center(i, j int) geom.Point {
	return geom.Pt(g.X0+(float64(i)+0.5)*g.Pitch, g.Y0+(float64(j)+0.5)*g.Pitch)
}

// Index returns the linear index of pixel (i, j).
func (g Grid) Index(i, j int) int { return j*g.W + i }

// Coords returns the (i, j) pixel coordinates for linear index k.
func (g Grid) Coords(k int) (i, j int) { return k % g.W, k / g.W }

// Len returns the number of pixels in the grid.
func (g Grid) Len() int { return g.W * g.H }

// In reports whether (i, j) is a valid pixel coordinate.
func (g Grid) In(i, j int) bool { return i >= 0 && i < g.W && j >= 0 && j < g.H }

// PixelOf returns the pixel coordinates containing world point p.
// The result may be out of range; check with In.
func (g Grid) PixelOf(p geom.Point) (i, j int) {
	return int(math.Floor((p.X - g.X0) / g.Pitch)), int(math.Floor((p.Y - g.Y0) / g.Pitch))
}

// ClampX clamps pixel column i into [0, W-1].
func (g Grid) ClampX(i int) int { return clamp(i, 0, g.W-1) }

// ClampY clamps pixel row j into [0, H-1].
func (g Grid) ClampY(j int) int { return clamp(j, 0, g.H-1) }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Bounds returns the world-coordinate rectangle covered by the grid.
func (g Grid) Bounds() geom.Rect {
	return geom.Rect{X0: g.X0, Y0: g.Y0, X1: g.X0 + float64(g.W)*g.Pitch, Y1: g.Y0 + float64(g.H)*g.Pitch}
}

// Bitmap is a boolean image over a Grid.
type Bitmap struct {
	Grid Grid
	Bits []bool // length Grid.Len(), row-major
}

// NewBitmap returns an all-false bitmap over g.
func NewBitmap(g Grid) *Bitmap {
	return &Bitmap{Grid: g, Bits: make([]bool, g.Len())}
}

// Get reports the value at (i, j); out-of-range pixels are false.
func (b *Bitmap) Get(i, j int) bool {
	if !b.Grid.In(i, j) {
		return false
	}
	return b.Bits[b.Grid.Index(i, j)]
}

// Set sets the value at (i, j); out-of-range coordinates are ignored.
func (b *Bitmap) Set(i, j int, v bool) {
	if b.Grid.In(i, j) {
		b.Bits[b.Grid.Index(i, j)] = v
	}
}

// Count returns the number of true pixels.
func (b *Bitmap) Count() int {
	n := 0
	for _, v := range b.Bits {
		if v {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	out := NewBitmap(b.Grid)
	copy(out.Bits, b.Bits)
	return out
}

// Field is a float64 image over a Grid (for example the total dose
// Itot(x, y)).
type Field struct {
	Grid Grid
	V    []float64 // length Grid.Len(), row-major
}

// NewField returns an all-zero field over g.
func NewField(g Grid) *Field {
	return &Field{Grid: g, V: make([]float64, g.Len())}
}

// At returns the value at (i, j); out-of-range pixels are 0.
func (f *Field) At(i, j int) float64 {
	if !f.Grid.In(i, j) {
		return 0
	}
	return f.V[f.Grid.Index(i, j)]
}

// SetAt stores v at (i, j); out-of-range coordinates are ignored.
func (f *Field) SetAt(i, j int, v float64) {
	if f.Grid.In(i, j) {
		f.V[f.Grid.Index(i, j)] = v
	}
}

// Threshold returns the bitmap of pixels with value >= iso.
func (f *Field) Threshold(iso float64) *Bitmap {
	out := NewBitmap(f.Grid)
	for k, v := range f.V {
		out.Bits[k] = v >= iso
	}
	return out
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	out := NewField(f.Grid)
	copy(out.V, f.V)
	return out
}

// Rasterize samples polygon pg onto grid g: a pixel is set when its
// center lies inside the polygon (even-odd rule), matching the paper's
// pixel sampling of the target shape. Scanline implementation: O(H·n)
// plus fill.
func Rasterize(pg geom.Polygon, g Grid) (*Bitmap, error) {
	if err := pg.Validate(); err != nil {
		return nil, fmt.Errorf("raster: %w", err)
	}
	b := NewBitmap(g)
	n := len(pg)
	xs := make([]float64, 0, 16)
	for j := 0; j < g.H; j++ {
		y := g.Y0 + (float64(j)+0.5)*g.Pitch
		xs = xs[:0]
		for i := 0; i < n; i++ {
			a, c := pg[i], pg[(i+1)%n]
			if (a.Y > y) != (c.Y > y) {
				x := (c.X-a.X)*(y-a.Y)/(c.Y-a.Y) + a.X
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			continue
		}
		sortFloats(xs)
		for k := 0; k+1 < len(xs); k += 2 {
			// Half-open span [lo, hi): a pixel center exactly at lo is
			// inside, exactly at hi is outside. This matches the
			// even-odd rule of geom.Polygon.Contains.
			lo, hi := xs[k], xs[k+1]
			i0 := int(math.Ceil((lo-g.X0)/g.Pitch - 0.5))
			i1 := int(math.Ceil((hi-g.X0)/g.Pitch-0.5)) - 1
			for i := max(i0, 0); i <= i1 && i < g.W; i++ {
				b.Bits[g.Index(i, j)] = true
			}
		}
	}
	return b, nil
}

// sortFloats sorts a small float slice in place (insertion sort; the
// crossing lists per scanline are tiny).
func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
