package raster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"maskfrac/internal/geom"
)

// poly builds a polygon from a flat list of x,y coordinates.
func poly(xy ...float64) geom.Polygon {
	pg := make(geom.Polygon, len(xy)/2)
	for i := range pg {
		pg[i] = geom.Pt(xy[2*i], xy[2*i+1])
	}
	return pg
}

func TestGridCovering(t *testing.T) {
	g := GridCovering(geom.Rect{X0: 0, Y0: 0, X1: 10, Y1: 5}, 2, 1)
	if g.X0 != -2 || g.Y0 != -2 {
		t.Errorf("origin = %v %v", g.X0, g.Y0)
	}
	if g.W != 14 || g.H != 9 {
		t.Errorf("size = %d x %d", g.W, g.H)
	}
	if c := g.Center(0, 0); c != geom.Pt(-1.5, -1.5) {
		t.Errorf("Center(0,0) = %v", c)
	}
	b := g.Bounds()
	if b.X0 != -2 || b.X1 != 12 || b.Y0 != -2 || b.Y1 != 7 {
		t.Errorf("Bounds = %v", b)
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := Grid{Pitch: 1, W: 7, H: 5}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			k := g.Index(i, j)
			ri, rj := g.Coords(k)
			if ri != i || rj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, k, ri, rj)
			}
		}
	}
	if g.Len() != 35 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGridPixelOf(t *testing.T) {
	g := Grid{X0: 10, Y0: 20, Pitch: 2, W: 5, H: 5}
	i, j := g.PixelOf(geom.Pt(10.5, 21.5))
	if i != 0 || j != 0 {
		t.Errorf("PixelOf = (%d,%d)", i, j)
	}
	i, j = g.PixelOf(geom.Pt(19.9, 29.9))
	if i != 4 || j != 4 {
		t.Errorf("PixelOf corner = (%d,%d)", i, j)
	}
	i, j = g.PixelOf(geom.Pt(9, 19))
	if g.In(i, j) {
		t.Errorf("out-of-range point reported in grid: (%d,%d)", i, j)
	}
	if g.ClampX(-3) != 0 || g.ClampX(99) != 4 || g.ClampY(2) != 2 {
		t.Error("clamp failed")
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(Grid{Pitch: 1, W: 4, H: 3})
	b.Set(1, 2, true)
	b.Set(3, 0, true)
	b.Set(-1, 0, true) // ignored
	if !b.Get(1, 2) || !b.Get(3, 0) {
		t.Error("Get after Set failed")
	}
	if b.Get(9, 9) {
		t.Error("out of range Get should be false")
	}
	if b.Count() != 2 {
		t.Errorf("Count = %d", b.Count())
	}
	c := b.Clone()
	c.Set(0, 0, true)
	if b.Get(0, 0) {
		t.Error("Clone aliases original")
	}
}

func TestFieldBasics(t *testing.T) {
	f := NewField(Grid{Pitch: 1, W: 3, H: 3})
	f.SetAt(1, 1, 0.75)
	f.SetAt(2, 2, 0.25)
	if f.At(1, 1) != 0.75 || f.At(0, 0) != 0 || f.At(9, 9) != 0 {
		t.Error("At/SetAt failed")
	}
	th := f.Threshold(0.5)
	if th.Count() != 1 || !th.Get(1, 1) {
		t.Error("Threshold failed")
	}
	c := f.Clone()
	c.SetAt(0, 0, 1)
	if f.At(0, 0) != 0 {
		t.Error("Clone aliases original")
	}
}

func TestRasterizeSquare(t *testing.T) {
	pg := poly(0, 0, 4, 0, 4, 4, 0, 4)
	g := Grid{X0: -1, Y0: -1, Pitch: 1, W: 6, H: 6}
	b, err := Rasterize(pg, g)
	if err != nil {
		t.Fatal(err)
	}
	// exactly the 16 pixels with centers in (0,4)^2
	if b.Count() != 16 {
		t.Errorf("Count = %d, want 16", b.Count())
	}
	if !b.Get(1, 1) || b.Get(0, 0) || b.Get(5, 3) {
		t.Error("wrong pixels set")
	}
}

func TestRasterizeLShape(t *testing.T) {
	l := poly(0, 0, 4, 0, 4, 2, 2, 2, 2, 4, 0, 4)
	g := Grid{X0: 0, Y0: 0, Pitch: 1, W: 4, H: 4}
	b, err := Rasterize(l, g)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != 12 {
		t.Errorf("Count = %d, want 12", b.Count())
	}
	if b.Get(3, 3) || b.Get(2, 2) {
		t.Error("notch pixels set")
	}
	if !b.Get(1, 3) || !b.Get(3, 1) {
		t.Error("arm pixels missing")
	}
}

func TestRasterizeErrors(t *testing.T) {
	if _, err := Rasterize(poly(0, 0, 1, 1), Grid{Pitch: 1, W: 2, H: 2}); err == nil {
		t.Error("degenerate polygon accepted")
	}
}

func TestRasterizeMatchesContains(t *testing.T) {
	// pixel-center sampling must agree with point-in-polygon on a
	// non-rectilinear shape
	pg := poly(0, 0, 8, 0, 8, 8, 4, 4, 0, 8)
	g := Grid{X0: -1, Y0: -1, Pitch: 1, W: 10, H: 10}
	b, err := Rasterize(pg, g)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			want := pg.Contains(g.Center(i, j))
			if got := b.Get(i, j); got != want {
				t.Errorf("pixel (%d,%d) center %v: raster=%v contains=%v", i, j, g.Center(i, j), got, want)
			}
		}
	}
}

func TestDistanceTransformSingleSeed(t *testing.T) {
	g := Grid{Pitch: 1, W: 9, H: 9}
	b := NewBitmap(g)
	b.Set(4, 4, true)
	d := DistanceTransform(b)
	if d.At(4, 4) != 0 {
		t.Errorf("seed distance = %v", d.At(4, 4))
	}
	if d.At(7, 4) != 3 {
		t.Errorf("axis distance = %v", d.At(7, 4))
	}
	if got := d.At(7, 8); math.Abs(got-5) > 1e-9 {
		t.Errorf("diagonal distance = %v, want 5", got)
	}
}

func TestDistanceTransformExhaustive(t *testing.T) {
	// brute-force comparison on a small random-ish pattern
	g := Grid{Pitch: 2, W: 12, H: 7}
	b := NewBitmap(g)
	seeds := [][2]int{{0, 0}, {11, 6}, {5, 3}, {6, 3}, {2, 5}}
	for _, s := range seeds {
		b.Set(s[0], s[1], true)
	}
	d := DistanceTransform(b)
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			want := math.Inf(1)
			for _, s := range seeds {
				dx, dy := float64(i-s[0]), float64(j-s[1])
				want = math.Min(want, math.Hypot(dx, dy)*g.Pitch)
			}
			if got := d.At(i, j); math.Abs(got-want) > 1e-9 {
				t.Errorf("(%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

func TestDistanceTransformEmpty(t *testing.T) {
	d := DistanceTransform(NewBitmap(Grid{Pitch: 1, W: 3, H: 3}))
	for _, v := range d.V {
		if !math.IsInf(v, 1) {
			t.Fatalf("empty bitmap distance = %v", v)
		}
	}
}

func TestDistanceTransformQuick(t *testing.T) {
	f := func(raw []bool) bool {
		w, h := 8, 8
		g := Grid{Pitch: 1, W: w, H: h}
		b := NewBitmap(g)
		for k := 0; k < len(raw) && k < w*h; k++ {
			b.Bits[k] = raw[k]
		}
		d := DistanceTransform(b)
		// spot-check a few pixels against brute force
		for _, k := range []int{0, 13, 37, 63} {
			i, j := g.Coords(k)
			want := math.Inf(1)
			for s, v := range b.Bits {
				if !v {
					continue
				}
				si, sj := g.Coords(s)
				want = math.Min(want, math.Hypot(float64(i-si), float64(j-sj)))
			}
			got := d.At(i, j)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				return false
			}
			if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := Grid{Pitch: 1, W: 6, H: 4}
	b := NewBitmap(g)
	// two blobs, one single pixel
	for _, p := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {4, 2}, {4, 3}, {5, 2}, {2, 3}} {
		b.Set(p[0], p[1], true)
	}
	lab := ConnectedComponents(b)
	if lab.N != 3 {
		t.Fatalf("N = %d, want 3", lab.N)
	}
	if lab.L[g.Index(0, 0)] != lab.L[g.Index(1, 0)] {
		t.Error("adjacent pixels in different components")
	}
	if lab.L[g.Index(0, 0)] == lab.L[g.Index(4, 2)] {
		t.Error("separate blobs share a component")
	}
	boxes := lab.Boxes()
	total := 0
	for _, bx := range boxes {
		total += bx.Count
	}
	if total != 7 {
		t.Errorf("total count = %d, want 7", total)
	}
	for _, bx := range boxes {
		if bx.Count == 1 {
			if bx.I0 != 2 || bx.J0 != 3 || bx.I1 != 2 || bx.J1 != 3 {
				t.Errorf("singleton box = %+v", bx)
			}
		}
	}
}

func TestConnectedComponentsDiagonal(t *testing.T) {
	// diagonal pixels are NOT 4-connected
	g := Grid{Pitch: 1, W: 3, H: 3}
	b := NewBitmap(g)
	b.Set(0, 0, true)
	b.Set(1, 1, true)
	if lab := ConnectedComponents(b); lab.N != 2 {
		t.Errorf("N = %d, want 2 (4-connectivity)", lab.N)
	}
}

func TestContoursSquare(t *testing.T) {
	g := Grid{Pitch: 1, W: 6, H: 6}
	b := NewBitmap(g)
	for j := 1; j < 4; j++ {
		for i := 1; i < 4; i++ {
			b.Set(i, j, true)
		}
	}
	loops := Contours(b)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	pg := loops[0]
	if len(pg) != 4 {
		t.Errorf("vertices = %d, want 4 (collinear collapsed): %v", len(pg), pg)
	}
	if !pg.IsCCW() {
		t.Error("outer contour not CCW")
	}
	if pg.Area() != 9 {
		t.Errorf("area = %v, want 9", pg.Area())
	}
}

func TestContoursHole(t *testing.T) {
	g := Grid{Pitch: 1, W: 7, H: 7}
	b := NewBitmap(g)
	for j := 1; j < 6; j++ {
		for i := 1; i < 6; i++ {
			b.Set(i, j, true)
		}
	}
	b.Set(3, 3, false) // hole
	loops := Contours(b)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	var outer, hole geom.Polygon
	for _, l := range loops {
		if l.IsCCW() {
			outer = l
		} else {
			hole = l
		}
	}
	if outer == nil || hole == nil {
		t.Fatal("missing outer or hole loop")
	}
	if outer.Area() != 25 || hole.Area() != 1 {
		t.Errorf("areas = %v %v", outer.Area(), hole.Area())
	}
}

func TestContoursCheckerboard(t *testing.T) {
	// diagonal pixels stay on separate loops (4-connectivity)
	g := Grid{Pitch: 1, W: 4, H: 4}
	b := NewBitmap(g)
	b.Set(1, 1, true)
	b.Set(2, 2, true)
	loops := Contours(b)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	for _, l := range loops {
		if l.Area() != 1 {
			t.Errorf("loop area = %v, want 1", l.Area())
		}
	}
}

func TestContoursRoundTrip(t *testing.T) {
	// rasterize an L, trace it, re-rasterize the contour: same bitmap
	l := poly(0, 0, 4, 0, 4, 2, 2, 2, 2, 4, 0, 4)
	g := Grid{X0: -1, Y0: -1, Pitch: 1, W: 7, H: 7}
	b, err := Rasterize(l, g)
	if err != nil {
		t.Fatal(err)
	}
	pg := LargestContour(b)
	if pg == nil {
		t.Fatal("no contour")
	}
	b2, err := Rasterize(pg, g)
	if err != nil {
		t.Fatal(err)
	}
	for k := range b.Bits {
		if b.Bits[k] != b2.Bits[k] {
			i, j := g.Coords(k)
			t.Errorf("pixel (%d,%d) differs after round trip", i, j)
		}
	}
}

func TestLargestContourEmpty(t *testing.T) {
	if pg := LargestContour(NewBitmap(Grid{Pitch: 1, W: 3, H: 3})); pg != nil {
		t.Errorf("empty bitmap contour = %v", pg)
	}
}

func TestContoursFuzzRoundTrip(t *testing.T) {
	// random connected unions of rectangles: tracing the contours and
	// re-rasterizing every CCW loop (minus CW holes) must reproduce the
	// original bitmap exactly
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		g := Grid{Pitch: 1, W: 36, H: 36}
		b := NewBitmap(g)
		n := 1 + rng.Intn(5)
		for k := 0; k < n; k++ {
			x0, y0 := 2+rng.Intn(24), 2+rng.Intn(24)
			w, h := 2+rng.Intn(10), 2+rng.Intn(10)
			for j := y0; j < y0+h && j < 34; j++ {
				for i := x0; i < x0+w && i < 34; i++ {
					b.Set(i, j, true)
				}
			}
		}
		loops := Contours(b)
		rebuilt := NewBitmap(g)
		for _, pg := range loops {
			if !pg.IsCCW() {
				continue // holes handled below
			}
			fill, err := Rasterize(pg, g)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for k, v := range fill.Bits {
				if v {
					rebuilt.Bits[k] = true
				}
			}
		}
		for _, pg := range loops {
			if pg.IsCCW() {
				continue
			}
			hole, err := Rasterize(pg.EnsureCCW(), g)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for k, v := range hole.Bits {
				if v {
					rebuilt.Bits[k] = false
				}
			}
		}
		for k := range b.Bits {
			if b.Bits[k] != rebuilt.Bits[k] {
				i, j := g.Coords(k)
				t.Fatalf("trial %d: pixel (%d,%d) differs after contour round trip", trial, i, j)
			}
		}
	}
}
