package shapecache

import (
	"context"
	"testing"

	"maskfrac/internal/geom"
)

func statKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func statEntry(shots int) *Entry {
	e := &Entry{Bytes: 1}
	for i := 0; i < shots; i++ {
		e.Shots = append(e.Shots, geom.Rect{X0: 0, Y0: float64(i) * 10, X1: 20, Y1: float64(i)*10 + 8})
	}
	return e
}

// TestClassStatsCounting checks that placements accumulate across the
// solve and every later hit, and that the stored solution's shot count
// and canonical bbox are recorded.
func TestClassStatsCounting(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	k := statKey(1)
	for i := 0; i < 5; i++ {
		_, _, err := c.Do(ctx, k, func() (*Entry, error) { return statEntry(3), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	top := c.TopClasses(0)
	if len(top) != 1 {
		t.Fatalf("tracked classes = %d, want 1", len(top))
	}
	st := top[0]
	if st.Key != k || st.Placements != 5 || st.Shots != 3 {
		t.Errorf("stat = %+v, want key %x placements 5 shots 3", st, k[:2])
	}
	if st.W != 20 || st.H != 28 {
		t.Errorf("bbox = %gx%g, want 20x28", st.W, st.H)
	}
}

// TestClassStatsFlashes: a stored solution with L-shot pairs records
// its flash count (shots − pairs) alongside the shot count.
func TestClassStatsFlashes(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	k := statKey(7)
	paired := statEntry(4)
	paired.Pairs = [][2]int{{0, 1}}
	if _, _, err := c.Do(ctx, k, func() (*Entry, error) { return paired, nil }); err != nil {
		t.Fatal(err)
	}
	top := c.TopClasses(0)
	if len(top) != 1 || top[0].Shots != 4 || top[0].Flashes != 3 {
		t.Errorf("stat = %+v, want shots 4 flashes 3", top[0])
	}
}

// TestAddClassUses: crediting multiplicities bumps placements without a
// lookup, creates records for unseen classes, and backfills the
// solution shape from a stored entry.
func TestAddClassUses(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	k := statKey(9)
	if _, _, err := c.Do(ctx, k, func() (*Entry, error) { return statEntry(2), nil }); err != nil {
		t.Fatal(err)
	}
	c.AddClassUses(k, 99)
	c.AddClassUses(statKey(10), 5) // never looked up: record with no shape
	c.AddClassUses(statKey(11), 0) // no-op

	top := c.TopClasses(0)
	if len(top) != 2 {
		t.Fatalf("tracked classes = %d, want 2", len(top))
	}
	if top[0].Key != k || top[0].Placements != 100 || top[0].Shots != 2 {
		t.Errorf("top[0] = %+v, want key 9 placements 100 shots 2", top[0])
	}
	if top[1].Key != statKey(10) || top[1].Placements != 5 || top[1].Shots != 0 {
		t.Errorf("top[1] = %+v, want key 10 placements 5 shots 0", top[1])
	}
}

// TestClassStatsTopKOrder checks descending-placement order with the
// key-byte tie-break, and the k bound.
func TestClassStatsTopKOrder(t *testing.T) {
	c := New(16)
	ctx := context.Background()
	// key 3 looked up 3 times, key 1 twice, keys 5 and 4 once (tie)
	for _, b := range []byte{3, 3, 3, 1, 1, 5, 4} {
		if _, _, err := c.Do(ctx, statKey(b), func() (*Entry, error) { return statEntry(int(b)), nil }); err != nil {
			t.Fatal(err)
		}
	}
	top := c.TopClasses(3)
	if len(top) != 3 {
		t.Fatalf("top 3 returned %d", len(top))
	}
	wantKeys := []byte{3, 1, 4} // 4 beats 5 on the byte tie-break
	wantN := []uint64{3, 2, 1}
	for i, st := range top {
		if st.Key != statKey(wantKeys[i]) || st.Placements != wantN[i] {
			t.Errorf("top[%d] = key %d placements %d, want key %d placements %d",
				i, st.Key[0], st.Placements, wantKeys[i], wantN[i])
		}
	}
}

// TestClassStatsSurviveEviction: the LRU may drop an entry, but its
// frequency record must survive — a hot class cycled out of a small
// cache still belongs on the stencil.
func TestClassStatsSurviveEviction(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	for b := byte(1); b <= 4; b++ {
		if _, _, err := c.Do(ctx, statKey(b), func() (*Entry, error) { return statEntry(2), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	if got := len(c.TopClasses(0)); got != 4 {
		t.Errorf("tracked classes = %d, want 4 (records outlive eviction)", got)
	}
}

// TestClassStatsBounded: the tracker prunes to stay within its cap,
// keeping the highest-placement classes.
func TestClassStatsBounded(t *testing.T) {
	c := New(1) // classCap = 4
	ctx := context.Background()
	hot := statKey(200)
	for i := 0; i < 10; i++ {
		if _, _, err := c.Do(ctx, hot, func() (*Entry, error) { return statEntry(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	for b := byte(1); b <= 40; b++ {
		if _, _, err := c.Do(ctx, statKey(b), func() (*Entry, error) { return statEntry(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	top := c.TopClasses(0)
	if len(top) > 4 {
		t.Errorf("tracked classes = %d, want <= cap 4", len(top))
	}
	if top[0].Key != hot {
		t.Errorf("hottest class pruned: top is key %d", top[0].Key[0])
	}
}
