package shapecache

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"maskfrac/internal/geom"
)

var updateGolden = flag.Bool("update", false, "rewrite the canonical-key golden file")

// goldenShapes is a fixed shape set whose canonical sha256 keys are
// pinned in testdata/canonical_keys.golden. These keys are a wire-level
// contract, not an implementation detail: the cluster router
// (internal/cluster) consistent-hashes them to pick the owning node of
// each congruence class, so if canonicalization ever changes — a vertex
// ordering tweak, a transform reordering, a serialization change —
// every key moves, every node's cache turns cold, and congruence
// classes silently get re-solved on new owners. Any diff here must be a
// deliberate, flag-day decision.
func goldenShapes() map[string]geom.Polygon {
	rect := geom.Polygon{geom.Pt(0, 0), geom.Pt(70, 0), geom.Pt(70, 30), geom.Pt(0, 30)}
	lsh := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(90, 0), geom.Pt(90, 30),
		geom.Pt(30, 30), geom.Pt(30, 120), geom.Pt(0, 120),
	}
	tsh := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(110, 0), geom.Pt(110, 30), geom.Pt(70, 30),
		geom.Pt(70, 100), geom.Pt(40, 100), geom.Pt(40, 30), geom.Pt(0, 30),
	}
	stair := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(40, 0), geom.Pt(40, 20), geom.Pt(80, 20),
		geom.Pt(80, 40), geom.Pt(120, 40), geom.Pt(120, 60), geom.Pt(0, 60),
	}
	cross := geom.Polygon{
		geom.Pt(30, 0), geom.Pt(60, 0), geom.Pt(60, 30), geom.Pt(90, 30),
		geom.Pt(90, 60), geom.Pt(60, 60), geom.Pt(60, 90), geom.Pt(30, 90),
		geom.Pt(30, 60), geom.Pt(0, 60), geom.Pt(0, 30), geom.Pt(30, 30),
	}
	nonManhattan := geom.Polygon{
		geom.Pt(0, 0), geom.Pt(50, 0), geom.Pt(65, 25), geom.Pt(25, 60),
	}
	return map[string]geom.Polygon{
		"rect-70x30":    rect,
		"L":             lsh,
		"T":             tsh,
		"stair":         stair,
		"cross":         cross,
		"non-manhattan": nonManhattan,
	}
}

func goldenPath() string {
	return filepath.Join("testdata", "canonical_keys.golden")
}

func keyHex(pg geom.Polygon) string {
	k := Canonicalize(pg).KeyWith(nil)
	return hex.EncodeToString(k[:])
}

// TestCanonicalKeysGolden pins the canonical sha256 key of every golden
// shape. Regenerate with `go test ./internal/shapecache -run Golden
// -update` — and understand that doing so invalidates every deployed
// cache and reshuffles cluster routing.
func TestCanonicalKeysGolden(t *testing.T) {
	shapes := goldenShapes()
	got := make(map[string]string, len(shapes))
	names := make([]string, 0, len(shapes))
	for name, pg := range shapes {
		got[name] = keyHex(pg)
		names = append(names, name)
	}
	sort.Strings(names)

	if *updateGolden {
		var sb strings.Builder
		sb.WriteString("# canonical sha256 keys of the golden shape set (KeyWith(nil)).\n")
		sb.WriteString("# regenerating this file is a cache+routing flag day; see golden_test.go.\n")
		for _, name := range names {
			fmt.Fprintf(&sb, "%s %s\n", name, got[name])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath())
		return
	}

	f, err := os.Open(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	defer f.Close()
	want := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d keys, test set has %d", len(want), len(got))
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden file (run -update after auditing)", name)
			continue
		}
		if got[name] != w {
			t.Errorf("%s: canonical key changed\n  golden: %s\n  got:    %s\n"+
				"canonicalization is a routing contract — see golden_test.go before updating",
				name, w, got[name])
		}
	}
}

// TestCanonicalKeysCongruenceInvariance verifies the other half of the
// contract: every D4 symmetry and translation of a golden shape hashes
// to the identical key, which is what lets the cluster route all
// placements of a congruence class to one node.
func TestCanonicalKeysCongruenceInvariance(t *testing.T) {
	for name, pg := range goldenShapes() {
		base := keyHex(pg)
		for tr := Identity; tr < numTransforms; tr++ {
			moved := make(geom.Polygon, len(pg))
			for i, p := range pg {
				moved[i] = tr.Apply(p).Add(geom.Pt(1337, -4096))
			}
			if got := keyHex(moved); got != base {
				t.Errorf("%s under transform %d: key %s != base %s", name, tr, got, base)
			}
		}
	}
}
