// Package shapecache is a content-addressed result cache for mask
// fracturing. A full mask holds billions of polygons but most are
// repeats of a small dictionary of shapes (paper §2), so fracturing
// results are cached under a canonical form of the target polygon:
// congruent shapes — equal up to translation and the eight axis-aligned
// symmetries (rotations by multiples of 90° and mirrors) — share one
// cache entry, and each congruence class pays the solver cost once.
package shapecache

import (
	"crypto/sha256"

	"maskfrac/internal/geom"
	"maskfrac/internal/maskio"
)

// Transform is one of the eight axis-aligned symmetries of the plane
// (the dihedral group D4): the identity, rotations by 90/180/270
// degrees, and the four reflections.
type Transform uint8

const (
	Identity      Transform = iota // (x, y)
	Rot90                          // (-y, x)
	Rot180                         // (-x, -y)
	Rot270                         // (y, -x)
	MirrorX                        // (-x, y)  reflect across the vertical axis
	MirrorY                        // (x, -y)  reflect across the horizontal axis
	Transpose                      // (y, x)   reflect across the main diagonal
	AntiTranspose                  // (-y, -x) reflect across the anti-diagonal
	numTransforms
)

// Apply maps a point through the transform.
func (t Transform) Apply(p geom.Point) geom.Point {
	switch t {
	case Rot90:
		return geom.Pt(-p.Y, p.X)
	case Rot180:
		return geom.Pt(-p.X, -p.Y)
	case Rot270:
		return geom.Pt(p.Y, -p.X)
	case MirrorX:
		return geom.Pt(-p.X, p.Y)
	case MirrorY:
		return geom.Pt(p.X, -p.Y)
	case Transpose:
		return geom.Pt(p.Y, p.X)
	case AntiTranspose:
		return geom.Pt(-p.Y, -p.X)
	default:
		return p
	}
}

// ApplyRect maps an axis-parallel rectangle through the transform; the
// image of an axis-parallel rectangle under any D4 element is again
// axis-parallel.
func (t Transform) ApplyRect(r geom.Rect) geom.Rect {
	return geom.RectFromCorners(t.Apply(geom.Pt(r.X0, r.Y0)), t.Apply(geom.Pt(r.X1, r.Y1)))
}

// Inverse returns the transform undoing t. All D4 elements are
// involutions except the quarter turns, which invert each other.
func (t Transform) Inverse() Transform {
	switch t {
	case Rot90:
		return Rot270
	case Rot270:
		return Rot90
	default:
		return t
	}
}

// Mirrors reports whether the transform reverses orientation
// (determinant -1).
func (t Transform) Mirrors() bool {
	return t >= MirrorX
}

// Canonical relates a query polygon to its canonical form: for every
// query point q, the canonical-frame point is T(q) - Off.
type Canonical struct {
	Poly geom.Polygon // canonical polygon: T(query) translated to the origin
	T    Transform    // symmetry applied to the query
	Off  geom.Point   // bounding-box minimum of T(query)
}

// Canonicalize computes the canonical form of pg: the lexicographically
// least vertex sequence over the eight axis-aligned symmetries, after
// translating the transformed shape's bounding-box minimum to the
// origin, orienting counterclockwise and rotating the vertex list to
// start at its least vertex. Congruent polygons — equal up to vertex
// list rotation, orientation, translation and any D4 symmetry — map to
// the same canonical polygon, so its bytes can serve as a cache key.
//
// Float caveat: translation subtracts the bounding-box minimum, so two
// translated copies of a shape canonicalize identically only when the
// subtraction is exact (always true for integer-nanometer and other
// dyadic coordinates, the common case for mask data). Inexact cases
// fall back to a harmless cache miss, never a wrong hit.
func Canonicalize(pg geom.Polygon) Canonical {
	ccw := pg.EnsureCCW()
	var best Canonical
	for t := Identity; t < numTransforms; t++ {
		cand := transformPoly(ccw, t)
		off := bboxMin(cand)
		for i := range cand {
			cand[i] = normZero(cand[i].Sub(off))
		}
		rotateToLeast(cand)
		if best.Poly == nil || lessPoly(cand, best.Poly) {
			best = Canonical{Poly: cand, T: t, Off: off}
		}
	}
	return best
}

// ToCanonical maps query-frame shots into the canonical frame.
func (c Canonical) ToCanonical(shots []geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(shots))
	for i, s := range shots {
		r := c.T.ApplyRect(s)
		out[i] = geom.Rect{X0: r.X0 - c.Off.X, Y0: r.Y0 - c.Off.Y, X1: r.X1 - c.Off.X, Y1: r.Y1 - c.Off.Y}
	}
	return out
}

// FromCanonical maps canonical-frame shots back into the query frame.
func (c Canonical) FromCanonical(shots []geom.Rect) []geom.Rect {
	inv := c.T.Inverse()
	out := make([]geom.Rect, len(shots))
	for i, s := range shots {
		r := geom.Rect{X0: s.X0 + c.Off.X, Y0: s.Y0 + c.Off.Y, X1: s.X1 + c.Off.X, Y1: s.Y1 + c.Off.Y}
		out[i] = inv.ApplyRect(r)
	}
	return out
}

// Key identifies a cached solution: the hash of the canonical polygon
// plus whatever solver configuration the caller mixes in.
type Key [sha256.Size]byte

// KeyWith hashes the canonical polygon together with extra bytes
// describing the solver configuration (parameters, method, options).
func (c Canonical) KeyWith(extra []byte) Key {
	buf := maskio.AppendPolygon(nil, c.Poly)
	h := sha256.New()
	h.Write(buf)
	h.Write(extra)
	var k Key
	h.Sum(k[:0])
	return k
}

// transformPoly applies t to every vertex, reversing the result when t
// mirrors so the output stays counterclockwise.
func transformPoly(pg geom.Polygon, t Transform) geom.Polygon {
	out := make(geom.Polygon, len(pg))
	if t.Mirrors() {
		for i, p := range pg {
			out[len(pg)-1-i] = t.Apply(p)
		}
	} else {
		for i, p := range pg {
			out[i] = t.Apply(p)
		}
	}
	return out
}

// bboxMin returns the bounding-box minimum corner of pg.
func bboxMin(pg geom.Polygon) geom.Point {
	b := pg.Bounds()
	return geom.Pt(b.X0, b.Y0)
}

// normZero collapses negative zeros so hashing and comparison see one
// representation; transforms negate coordinates, which turns +0 into
// -0 even though the two compare equal.
func normZero(p geom.Point) geom.Point {
	if p.X == 0 {
		p.X = 0
	}
	if p.Y == 0 {
		p.Y = 0
	}
	return p
}

// rotateToLeast rotates the vertex list in place so it starts at the
// rotation yielding the lexicographically least sequence. Candidate
// start points are the occurrences of the least vertex; ties between
// equal vertices are broken by comparing the full sequences.
func rotateToLeast(pg geom.Polygon) {
	n := len(pg)
	if n == 0 {
		return
	}
	start := 0
	for i := 1; i < n; i++ {
		switch cmpPoint(pg[i], pg[start]) {
		case -1:
			start = i
		case 0:
			if cmpRotations(pg, i, start) < 0 {
				start = i
			}
		}
	}
	if start == 0 {
		return
	}
	rotated := make(geom.Polygon, n)
	copy(rotated, pg[start:])
	copy(rotated[n-start:], pg[:start])
	copy(pg, rotated)
}

// cmpPoint orders points by (X, Y).
func cmpPoint(a, b geom.Point) int {
	switch {
	case a.X < b.X:
		return -1
	case a.X > b.X:
		return 1
	case a.Y < b.Y:
		return -1
	case a.Y > b.Y:
		return 1
	}
	return 0
}

// cmpRotations compares the rotations of pg starting at i and j.
func cmpRotations(pg geom.Polygon, i, j int) int {
	n := len(pg)
	for k := 0; k < n; k++ {
		if c := cmpPoint(pg[(i+k)%n], pg[(j+k)%n]); c != 0 {
			return c
		}
	}
	return 0
}

// lessPoly reports whether a precedes b lexicographically (vertex by
// vertex, shorter first on a shared prefix; canonical candidates always
// share a length).
func lessPoly(a, b geom.Polygon) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := cmpPoint(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}
