package shapecache

import (
	"container/list"
	"context"
	"sync"

	"maskfrac/internal/geom"
)

// Entry is one cached fracturing solution, stored in the canonical
// frame of its congruence class.
type Entry struct {
	// Shots is the solver's shot list mapped into the canonical frame.
	Shots []geom.Rect
	// Meta carries caller-defined solution metadata (evaluation counts,
	// stage statistics, timings). The cache never inspects it.
	Meta any
	// Bytes is the caller's estimate of the entry's memory footprint,
	// used for the Stats byte accounting.
	Bytes int64
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits       uint64 // lookups answered from a stored entry or an in-flight solve
	Misses     uint64 // lookups that ran the compute function
	Evictions  uint64 // entries dropped by the LRU bound
	Coalesced  uint64 // hits served by waiting on a concurrent in-flight solve
	Entries    int    // stored entries
	Bytes      int64  // sum of stored entry Bytes estimates
	MaxEntries int    // configured entry bound
}

// Cache is a concurrency-safe, content-addressed LRU cache of
// fracturing solutions. Lookups for a key being computed by another
// goroutine wait for that computation instead of duplicating it, so a
// congruence class is solved exactly once even under concurrent load.
type Cache struct {
	mu        sync.Mutex
	maxEntry  int
	entries   map[Key]*list.Element
	order     *list.List // front = most recently used; values are *lruItem
	flights   map[Key]*flight
	hits      uint64
	misses    uint64
	evictions uint64
	coalesced uint64
	bytes     int64
}

type lruItem struct {
	key   Key
	entry *Entry
}

// flight is an in-progress computation other goroutines can wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// New returns a cache bounded to maxEntries stored solutions;
// maxEntries <= 0 selects a default of 4096.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Cache{
		maxEntry: maxEntries,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
		flights:  make(map[Key]*flight),
	}
}

// Get returns the entry stored under k, marking it most recently used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.getLocked(k); e != nil {
		c.hits++
		return e, true
	}
	c.misses++
	return nil, false
}

// Put stores e under k, evicting least-recently-used entries beyond
// the bound.
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, e)
}

// Do returns the entry for k, computing and storing it with compute on
// a miss. Concurrent calls for the same key run compute once; the rest
// wait for its result (or their context). The boolean reports whether
// the entry came from the cache or a concurrent computation rather than
// this call's own compute. Errors are returned to every waiter and
// never cached.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (*Entry, error)) (*Entry, bool, error) {
	c.mu.Lock()
	if e := c.getLocked(k); e != nil {
		c.hits++
		c.mu.Unlock()
		return e, true, nil
	}
	if fl, ok := c.flights[k]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.hits++
		c.coalesced++
		c.mu.Unlock()
		return fl.entry, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[k] = fl
	c.misses++
	c.mu.Unlock()

	e, err := compute()
	fl.entry, fl.err = e, err
	c.mu.Lock()
	delete(c.flights, k)
	if err == nil {
		c.putLocked(k, e)
	}
	c.mu.Unlock()
	close(fl.done)
	return e, false, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Coalesced:  c.coalesced,
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		MaxEntries: c.maxEntry,
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) getLocked(k Key) *Entry {
	el, ok := c.entries[k]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry
}

func (c *Cache) putLocked(k Key, e *Entry) {
	if el, ok := c.entries[k]; ok {
		it := el.Value.(*lruItem)
		c.bytes += e.Bytes - it.entry.Bytes
		it.entry = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruItem{key: k, entry: e})
	c.bytes += e.Bytes
	for len(c.entries) > c.maxEntry {
		back := c.order.Back()
		if back == nil {
			break
		}
		it := c.order.Remove(back).(*lruItem)
		delete(c.entries, it.key)
		c.bytes -= it.entry.Bytes
		c.evictions++
	}
}
