package shapecache

import (
	"bytes"
	"container/list"
	"context"
	"sort"
	"sync"

	"maskfrac/internal/geom"
)

// Entry is one cached fracturing solution, stored in the canonical
// frame of its congruence class.
type Entry struct {
	// Shots is the solver's shot list mapped into the canonical frame.
	Shots []geom.Rect
	// Pairs lists the solution's L-shot pairs as {i, j} indices into
	// Shots (i < j, each shot in at most one pair). Canonicalization
	// preserves shot order, so the indices are frame-independent. Nil
	// for rectangle-only solutions.
	Pairs [][2]int
	// Meta carries caller-defined solution metadata (evaluation counts,
	// stage statistics, timings). The cache never inspects it.
	Meta any
	// Bytes is the caller's estimate of the entry's memory footprint,
	// used for the Stats byte accounting.
	Bytes int64
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits       uint64 // lookups answered from a stored entry or an in-flight solve
	Misses     uint64 // lookups that ran the compute function
	Evictions  uint64 // entries dropped by the LRU bound
	Coalesced  uint64 // hits served by waiting on a concurrent in-flight solve
	Entries    int    // stored entries
	Bytes      int64  // sum of stored entry Bytes estimates
	MaxEntries int    // configured entry bound
}

// ClassStat is the per-congruence-class usage record the stencil
// planner mines: how often the class was looked up and what its stored
// solution looks like. Placements counts successful lookups — hits,
// coalesced waits and the solve that stored the entry — so on a
// placement-per-request workload it equals the class's placement count.
// The record survives LRU eviction of its entry: frequency is the
// signal, and a hot class that cycled out of a small cache still
// belongs on the stencil.
type ClassStat struct {
	Key        Key
	Placements uint64  // successful lookups for the class
	Shots      int     // stored solution shot count
	Flashes    int     // VSB flashes: shots minus L-shot pairs
	W, H       float64 // canonical-frame bbox of the stored shot list, nm
}

// Cache is a concurrency-safe, content-addressed LRU cache of
// fracturing solutions. Lookups for a key being computed by another
// goroutine wait for that computation instead of duplicating it, so a
// congruence class is solved exactly once even under concurrent load.
type Cache struct {
	mu        sync.Mutex
	maxEntry  int
	entries   map[Key]*list.Element
	order     *list.List // front = most recently used; values are *lruItem
	flights   map[Key]*flight
	classes   map[Key]*ClassStat // per-class usage, bounded to classCap
	classCap  int
	hits      uint64
	misses    uint64
	evictions uint64
	coalesced uint64
	bytes     int64
}

type lruItem struct {
	key   Key
	entry *Entry
}

// flight is an in-progress computation other goroutines can wait on.
type flight struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// New returns a cache bounded to maxEntries stored solutions;
// maxEntries <= 0 selects a default of 4096.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Cache{
		maxEntry: maxEntries,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
		flights:  make(map[Key]*flight),
		classes:  make(map[Key]*ClassStat),
		classCap: 4 * maxEntries,
	}
}

// Get returns the entry stored under k, marking it most recently used.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.getLocked(k); e != nil {
		c.hits++
		c.noteClassLocked(k, e)
		return e, true
	}
	c.misses++
	return nil, false
}

// Put stores e under k, evicting least-recently-used entries beyond
// the bound.
func (c *Cache) Put(k Key, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, e)
}

// Do returns the entry for k, computing and storing it with compute on
// a miss. Concurrent calls for the same key run compute once; the rest
// wait for its result (or their context). The boolean reports whether
// the entry came from the cache or a concurrent computation rather than
// this call's own compute. Errors are returned to every waiter and
// never cached.
func (c *Cache) Do(ctx context.Context, k Key, compute func() (*Entry, error)) (*Entry, bool, error) {
	c.mu.Lock()
	if e := c.getLocked(k); e != nil {
		c.hits++
		c.noteClassLocked(k, e)
		c.mu.Unlock()
		return e, true, nil
	}
	if fl, ok := c.flights[k]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.mu.Lock()
		c.hits++
		c.coalesced++
		c.noteClassLocked(k, fl.entry)
		c.mu.Unlock()
		return fl.entry, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[k] = fl
	c.misses++
	c.mu.Unlock()

	e, err := compute()
	fl.entry, fl.err = e, err
	c.mu.Lock()
	delete(c.flights, k)
	if err == nil {
		c.putLocked(k, e)
		c.noteClassLocked(k, e)
	}
	c.mu.Unlock()
	close(fl.done)
	return e, false, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Coalesced:  c.coalesced,
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		MaxEntries: c.maxEntry,
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// TopClasses returns the k highest-placement-count classes, sorted by
// placements descending with key bytes as the deterministic tie-break.
// k <= 0 returns every tracked class. The returned records are copies.
func (c *Cache) TopClasses(k int) []ClassStat {
	c.mu.Lock()
	out := make([]ClassStat, 0, len(c.classes))
	for _, st := range c.classes {
		out = append(out, *st)
	}
	c.mu.Unlock()
	sortClassStats(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// sortClassStats orders by placements descending, then key ascending.
func sortClassStats(s []ClassStat) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Placements != s[j].Placements {
			return s[i].Placements > s[j].Placements
		}
		return bytes.Compare(s[i].Key[:], s[j].Key[:]) < 0
	})
}

// noteClassLocked records one successful lookup for k. e carries the
// stored solution so the record has its shot count and canonical bbox.
func (c *Cache) noteClassLocked(k Key, e *Entry) {
	st := c.classes[k]
	if st == nil {
		if len(c.classes) >= c.classCap {
			c.pruneClassesLocked()
		}
		st = &ClassStat{Key: k}
		c.classes[k] = st
	}
	st.Placements++
	if e != nil && (len(e.Shots) != st.Shots || len(e.Shots)-len(e.Pairs) != st.Flashes) {
		st.Shots = len(e.Shots)
		st.Flashes = len(e.Shots) - len(e.Pairs)
		st.W, st.H = shotsBBox(e.Shots)
	}
}

// AddClassUses credits k with n extra placements without a lookup.
// The cluster pipeline calls this for class-memo multiplicities: a
// shard's memo collapses congruent placements into one wire request,
// so the server-side cache sees one lookup where the mask has many
// placements. n placements are added to the class record (creating it
// if needed), keeping the stencil planner's frequency signal honest.
// A class never seen by a lookup has no stored solution to size, so a
// record created here carries zero Shots/Flashes until a real lookup
// fills them in.
func (c *Cache) AddClassUses(k Key, n uint64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.classes[k]
	if st == nil {
		if len(c.classes) >= c.classCap {
			c.pruneClassesLocked()
		}
		st = &ClassStat{Key: k}
		c.classes[k] = st
	}
	st.Placements += n
	if st.Shots == 0 {
		if e := c.peekLocked(k); e != nil {
			st.Shots = len(e.Shots)
			st.Flashes = len(e.Shots) - len(e.Pairs)
			st.W, st.H = shotsBBox(e.Shots)
		}
	}
}

// peekLocked returns the entry stored under k without touching the
// LRU order.
func (c *Cache) peekLocked(k Key) *Entry {
	if el, ok := c.entries[k]; ok {
		return el.Value.(*lruItem).entry
	}
	return nil
}

// pruneClassesLocked halves the class-stat map, keeping the highest
// placement counts, so the tracker stays bounded on a mask with more
// distinct classes than classCap. The planner only ever asks for the
// top of the distribution, which pruning preserves.
func (c *Cache) pruneClassesLocked() {
	all := make([]ClassStat, 0, len(c.classes))
	for _, st := range c.classes {
		all = append(all, *st)
	}
	sortClassStats(all)
	for _, st := range all[c.classCap/2:] {
		delete(c.classes, st.Key)
	}
}

// shotsBBox returns the width and height of the bounding box of a
// canonical-frame shot list.
func shotsBBox(shots []geom.Rect) (w, h float64) {
	if len(shots) == 0 {
		return 0, 0
	}
	bb := shots[0]
	for _, s := range shots[1:] {
		bb = bb.Union(s)
	}
	return bb.W(), bb.H()
}

func (c *Cache) getLocked(k Key) *Entry {
	el, ok := c.entries[k]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).entry
}

func (c *Cache) putLocked(k Key, e *Entry) {
	if el, ok := c.entries[k]; ok {
		it := el.Value.(*lruItem)
		c.bytes += e.Bytes - it.entry.Bytes
		it.entry = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruItem{key: k, entry: e})
	c.bytes += e.Bytes
	for len(c.entries) > c.maxEntry {
		back := c.order.Back()
		if back == nil {
			break
		}
		it := c.order.Remove(back).(*lruItem)
		delete(c.entries, it.key)
		c.bytes -= it.entry.Bytes
		c.evictions++
	}
}
