package shapecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"maskfrac/internal/geom"
)

// lShape is an asymmetric test polygon (no self-symmetry, so all eight
// transforms produce distinct vertex sets).
func lShape() geom.Polygon {
	return geom.Polygon{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30, Y: 10},
		{X: 10, Y: 10}, {X: 10, Y: 40}, {X: 0, Y: 40},
	}
}

func TestCanonicalizeInvariantUnderCongruence(t *testing.T) {
	base := lShape()
	want := Canonicalize(base)
	for tr := Identity; tr < numTransforms; tr++ {
		for _, d := range []geom.Point{{X: 0, Y: 0}, {X: 137, Y: -41}, {X: -9, Y: 1024}} {
			q := transformPoly(base, tr).Translate(d)
			got := Canonicalize(q)
			if !samePoly(got.Poly, want.Poly) {
				t.Errorf("transform %d offset %v: canonical poly differs", tr, d)
			}
			if got.KeyWith(nil) != want.KeyWith(nil) {
				t.Errorf("transform %d offset %v: key differs", tr, d)
			}
		}
	}
}

func TestCanonicalizeInvariantUnderVertexOrder(t *testing.T) {
	base := lShape()
	want := Canonicalize(base).KeyWith(nil)
	// rotate the start vertex
	for s := 1; s < len(base); s++ {
		rot := append(base[s:].Clone(), base[:s]...)
		if Canonicalize(rot).KeyWith(nil) != want {
			t.Errorf("start vertex %d: key differs", s)
		}
	}
	// reverse orientation
	rev := make(geom.Polygon, len(base))
	for i, p := range base {
		rev[len(base)-1-i] = p
	}
	if Canonicalize(rev).KeyWith(nil) != want {
		t.Error("reversed orientation: key differs")
	}
}

func TestCanonicalizeDistinguishesShapes(t *testing.T) {
	a := Canonicalize(lShape()).KeyWith(nil)
	bigger := lShape().Translate(geom.Pt(0, 0))
	bigger[1].X = 31 // not congruent
	b := Canonicalize(bigger).KeyWith(nil)
	if a == b {
		t.Error("non-congruent shapes share a key")
	}
	if a == Canonicalize(lShape()).KeyWith([]byte("other-params")) {
		t.Error("different extra bytes share a key")
	}
}

func TestShotRoundTripThroughCanonicalFrame(t *testing.T) {
	base := lShape()
	shots := []geom.Rect{{X0: 0, Y0: 0, X1: 30, Y1: 10}, {X0: 0, Y0: 10, X1: 10, Y1: 40}}
	for tr := Identity; tr < numTransforms; tr++ {
		q := transformPoly(base, tr).Translate(geom.Pt(55, -13))
		c := Canonicalize(q)
		// the canonical solution for every congruent query is identical
		canonBase := Canonicalize(base)
		canonShots := canonBase.ToCanonical(shots)
		back := c.FromCanonical(canonShots)
		// shots mapped into q's frame must tile q exactly: same total
		// area, all inside q's bounds
		var area float64
		bounds := q.Bounds()
		for _, s := range back {
			area += s.Area()
			if !bounds.ContainsRect(s) {
				t.Errorf("transform %d: shot %v outside bounds %v", tr, s, bounds)
			}
		}
		if want := q.Area(); area != want {
			t.Errorf("transform %d: shot area %g, want %g", tr, area, want)
		}
	}
}

func TestTransformRectInverse(t *testing.T) {
	r := geom.Rect{X0: 1, Y0: 2, X1: 7, Y1: 11}
	for tr := Identity; tr < numTransforms; tr++ {
		back := tr.Inverse().ApplyRect(tr.ApplyRect(r))
		if back != r {
			t.Errorf("transform %d: round trip %v != %v", tr, back, r)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	keys := make([]Key, 3)
	for i := range keys {
		pg := lShape().Translate(geom.Pt(float64(i), 0))
		pg[1].X += float64(i) // make the classes distinct
		keys[i] = Canonicalize(pg).KeyWith(nil)
	}
	c.Put(keys[0], &Entry{Bytes: 100})
	c.Put(keys[1], &Entry{Bytes: 100})
	if _, ok := c.Get(keys[0]); !ok { // key0 now most recent
		t.Fatal("key0 missing")
	}
	c.Put(keys[2], &Entry{Bytes: 100}) // evicts key1
	if _, ok := c.Get(keys[1]); ok {
		t.Error("key1 survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("key0 evicted out of LRU order")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheDoDedupsConcurrentCompute(t *testing.T) {
	c := New(16)
	k := Canonicalize(lShape()).KeyWith(nil)
	var computes atomic.Int64
	var hits atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, hit, err := c.Do(context.Background(), k, func() (*Entry, error) {
				computes.Add(1)
				<-release
				return &Entry{Bytes: 1}, nil
			})
			if err != nil || e == nil {
				t.Errorf("Do: %v", err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	// let all goroutines reach Do before releasing the computation
	for computes.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if got := hits.Load(); got != 7 {
		t.Errorf("hits = %d, want 7", got)
	}
}

func TestCacheDoErrorNotCached(t *testing.T) {
	c := New(16)
	k := Canonicalize(lShape()).KeyWith(nil)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), k, func() (*Entry, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var ran bool
	_, hit, err := c.Do(context.Background(), k, func() (*Entry, error) {
		ran = true
		return &Entry{}, nil
	})
	if err != nil || hit || !ran {
		t.Errorf("after error: hit=%v ran=%v err=%v", hit, ran, err)
	}
}

func TestCacheDoContextCancelledWaiter(t *testing.T) {
	c := New(16)
	k := Canonicalize(lShape()).KeyWith(nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), k, func() (*Entry, error) {
		close(started)
		<-release
		return &Entry{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, k, func() (*Entry, error) { return &Entry{}, nil })
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestCacheConcurrentMixedAccess(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pg := lShape()
				pg[1].X = float64(20 + (g+i)%12)
				k := Canonicalize(pg).KeyWith(nil)
				if _, ok := c.Get(k); !ok {
					c.Put(k, &Entry{Bytes: int64(i)})
				}
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("cache over bound: %d", c.Len())
	}
}

func samePoly(a, b geom.Polygon) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ExampleCanonicalize() {
	q := lShape().Translate(geom.Pt(100, 200))
	c := Canonicalize(q)
	fmt.Println(len(c.Poly) == len(q), c.Poly.Bounds().X0, c.Poly.Bounds().Y0)
	// Output: true 0 0
}
