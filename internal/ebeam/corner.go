package ebeam

import (
	"math"

	"maskfrac/internal/geom"
)

// Corner rounding (paper Fig 2). Near the corner of a large shot the
// printed dose contour Itot = ρ rounds off instead of following the
// sharp 90° corner. Model-based fracturing exploits this: a 45° target
// boundary segment can be written by the rounded corner of a single
// shot, as long as the segment is no longer than Lth — the longest 45°
// chord that the rounded contour tracks within the CD tolerance γ.
//
// We analyze a quarter-plane shot occupying {x ≤ 0, y ≤ 0} with its
// ideal corner at the origin. Its intensity is I(x,y) = P(−x)·P(−y).
// The iso-dose contour I = ρ runs along the edge y = 0 far from the
// corner (x ≪ 0), pulls inside near the corner (the dose at the exact
// corner is only ρ²·4... i.e. P(0)² = ¼ < ½), crosses the diagonal at
// x = y = −P⁻¹(√ρ), and exits along the edge x = 0.

// CornerContour returns sample points of the contour P(−x)·P(−y) = rho
// for the quarter-plane shot, ordered by increasing x from the edge
// regime (x ≈ −3σ, y ≈ 0) through the rounded corner to (x ≈ 0,
// y ≈ −3σ). n is the number of samples.
func (m *Model) CornerContour(rho float64, n int) []geom.Point {
	if n < 2 {
		n = 2
	}
	xMin := -m.Support()
	xMax := -m.ProfileInv(rho) // beyond this P(−x) < rho and no solution
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		x := xMin + (xMax-xMin)*float64(i)/float64(n-1)
		px := m.EdgeProfile(-x)
		if px < rho || px <= 0 {
			continue
		}
		q := rho / px
		if q > 1 {
			continue
		}
		pts = append(pts, geom.Pt(x, -m.ProfileInv(q)))
	}
	return pts
}

// CornerDepth returns the diagonal depth of corner rounding: the
// distance from the ideal corner (origin) to the iso-dose contour along
// the inward diagonal (−1,−1)/√2. On the diagonal P(−x)² = rho, so the
// crossing is at x = y = −P⁻¹(√rho) and the depth is √2·P⁻¹(√rho).
func (m *Model) CornerDepth(rho float64) float64 {
	return math.Sqrt2 * math.Abs(m.ProfileInv(math.Sqrt(rho)))
}

// Lth returns the longest 45° line segment that a single shot corner can
// write within CD tolerance gamma at dose threshold rho (paper Fig 2,
// following the construction of the ICCAD'14 benchmarking work).
//
// In the rotated frame, the contour's inward diagonal depth
// d(s) = −(x+y)/√2 (s the position along the 45° direction) is smallest
// at the corner, d(0) = CornerDepth, and grows toward the edges. Placing
// the target 45° line at offset CornerDepth + γ, the contour stays
// within ±γ of the line while d(s) ≤ CornerDepth + 2γ. Lth is the
// distance between the two symmetric contour points where d hits that
// limit, found by bisection.
func (m *Model) Lth(rho, gamma float64) float64 {
	depth := m.CornerDepth(rho)
	limit := depth + 2*gamma
	// diagonal depth of the contour point parameterized by x
	f := func(x float64) float64 {
		px := m.EdgeProfile(-x)
		if px < rho || px <= 0 {
			return math.Inf(1)
		}
		q := rho / px
		if q > 1 {
			return math.Inf(1)
		}
		y := -m.ProfileInv(q)
		return -(x + y) / math.Sqrt2
	}
	xPeak := -m.ProfileInv(math.Sqrt(rho)) // diagonal crossing, min depth
	xEnd := -m.ProfileInv(rho)             // contour exits toward y = −support
	if f(xEnd) <= limit {
		// The whole corner region stays within tolerance; the 45°
		// extent is capped by the kernel support.
		return math.Abs(xEnd+m.Support()) * math.Sqrt2
	}
	lo, hi := xPeak, xEnd
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		if f(mid) <= limit {
			lo = mid
		} else {
			hi = mid
		}
	}
	xStar := (lo + hi) / 2
	yStar := -m.ProfileInv(rho / m.EdgeProfile(-xStar))
	// By symmetry the limit points are (x*, y*) and (y*, x*); their
	// separation along the 45° direction (1,−1)/√2:
	return math.Abs(xStar-yStar) * math.Sqrt2
}
