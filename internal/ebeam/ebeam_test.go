package ebeam

import (
	"math"
	"testing"
	"testing/quick"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

const sigma = 6.25 // paper's σ in nm

func model() *Model { return NewModel(sigma) }

func TestNewModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewModel(0) did not panic")
		}
	}()
	NewModel(0)
}

func TestEdgeProfileBasics(t *testing.T) {
	m := model()
	if got := m.EdgeProfile(0); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("P(0) = %v, want 0.5", got)
	}
	if got := m.EdgeProfile(100); got != 1 {
		t.Errorf("P(+inf) = %v", got)
	}
	if got := m.EdgeProfile(-100); got != 0 {
		t.Errorf("P(-inf) = %v", got)
	}
	// symmetry: P(d) + P(-d) = 1
	for _, d := range []float64{0.3, 1, 2.5, 6.25, 10} {
		if s := m.EdgeProfile(d) + m.EdgeProfile(-d); math.Abs(s-1) > 1e-5 {
			t.Errorf("P(%v)+P(-%v) = %v", d, d, s)
		}
	}
}

func TestEdgeProfileLUTAccuracy(t *testing.T) {
	m := model()
	for d := -20.0; d <= 20; d += 0.0137 {
		lut := m.EdgeProfile(d)
		exact := m.EdgeProfileExact(d)
		// clamping beyond 3σ introduces at most erfc(3)/2 ≈ 1.1e-5
		if math.Abs(lut-exact) > 2e-5 {
			t.Fatalf("LUT error at d=%v: %v vs %v", d, lut, exact)
		}
	}
}

func TestEdgeProfileMonotone(t *testing.T) {
	m := model()
	prev := -1.0
	for d := -19.0; d <= 19; d += 0.1 {
		v := m.EdgeProfile(d)
		if v < prev {
			t.Fatalf("profile not monotone at d=%v", d)
		}
		prev = v
	}
}

func TestProfileInv(t *testing.T) {
	m := model()
	for _, v := range []float64{0.01, 0.1, 0.25, 0.5, 0.7071, 0.9, 0.99} {
		d := m.ProfileInv(v)
		if got := m.EdgeProfile(d); math.Abs(got-v) > 1e-4 {
			t.Errorf("P(P^-1(%v)) = %v", v, got)
		}
	}
	if got := m.ProfileInv(0.5); math.Abs(got) > 1e-3 {
		t.Errorf("P^-1(0.5) = %v, want 0", got)
	}
	if m.ProfileInv(0) != -3*sigma || m.ProfileInv(1) != 3*sigma {
		t.Error("clamped inverse wrong")
	}
}

func TestProfileInvQuick(t *testing.T) {
	m := model()
	f := func(raw uint16) bool {
		v := 0.001 + 0.998*float64(raw)/65535
		d := m.ProfileInv(v)
		return math.Abs(m.EdgeProfile(d)-v) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShotIntensityCenterAndEdges(t *testing.T) {
	m := model()
	// a shot much larger than 6σ: center dose 1, edge dose 0.5,
	// corner dose 0.25
	s := geom.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	if got := m.ShotIntensity(s, geom.Pt(50, 50)); math.Abs(got-1) > 1e-5 {
		t.Errorf("center = %v", got)
	}
	if got := m.ShotIntensity(s, geom.Pt(0, 50)); math.Abs(got-0.5) > 1e-5 {
		t.Errorf("edge = %v", got)
	}
	if got := m.ShotIntensity(s, geom.Pt(0, 0)); math.Abs(got-0.25) > 1e-5 {
		t.Errorf("corner = %v", got)
	}
	if got := m.ShotIntensity(s, geom.Pt(-30, 50)); got != 0 {
		t.Errorf("far outside = %v", got)
	}
}

func TestShotIntensitySmallShot(t *testing.T) {
	m := model()
	// a shot comparable to σ never reaches full dose
	s := geom.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}
	center := m.ShotIntensity(s, geom.Pt(2.5, 2.5))
	if center >= 1 || center <= 0.1 {
		t.Errorf("small shot center = %v", center)
	}
	// analytic check: E(2.5;0,5) = P(2.5)-P(-2.5)
	e := m.EdgeProfileExact(2.5) - m.EdgeProfileExact(-2.5)
	if math.Abs(center-e*e) > 1e-4 {
		t.Errorf("separable mismatch: %v vs %v", center, e*e)
	}
}

func TestShotIntensitySymmetryQuick(t *testing.T) {
	m := model()
	s := geom.Rect{X0: -10, Y0: -4, X1: 10, Y1: 4}
	f := func(xr, yr int16) bool {
		x := float64(xr) / 1000
		y := float64(yr) / 1000
		a := m.ShotIntensity(s, geom.Pt(x, y))
		b := m.ShotIntensity(s, geom.Pt(-x, y))
		c := m.ShotIntensity(s, geom.Pt(x, -y))
		return math.Abs(a-b) < 1e-9 && math.Abs(a-c) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupportBox(t *testing.T) {
	m := model()
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: 100, H: 100}
	s := geom.Rect{X0: 40, Y0: 40, X1: 50, Y1: 50}
	i0, j0, i1, j1 := m.SupportBox(g, s)
	// 3σ = 18.75 → box [21.25, 68.75]
	if i0 != 21 || j0 != 21 || i1 != 68 || j1 != 68 {
		t.Errorf("SupportBox = (%d,%d)-(%d,%d)", i0, j0, i1, j1)
	}
	// clamped at grid borders
	s2 := geom.Rect{X0: -5, Y0: -5, X1: 2, Y1: 200}
	i0, j0, i1, j1 = m.SupportBox(g, s2)
	if i0 != 0 || j0 != 0 || j1 != 99 {
		t.Errorf("clamped SupportBox = (%d,%d)-(%d,%d)", i0, j0, i1, j1)
	}
}

func TestAccumulateShotMatchesDirect(t *testing.T) {
	m := model()
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: 60, H: 60}
	s := geom.Rect{X0: 20, Y0: 25, X1: 40, Y1: 35}
	f := raster.NewField(g)
	m.AccumulateShot(f, s, 1)
	// the accumulate path reads the float32 strip kernels, the point
	// path the float64 reference: agreement is bounded by ProfileTol32
	// per axis factor, ~2e-6 on the 2D product
	for j := 0; j < g.H; j += 3 {
		for i := 0; i < g.W; i += 3 {
			want := m.ShotIntensity(s, g.Center(i, j))
			if got := f.At(i, j); math.Abs(got-want) > 2*ProfileTol32 {
				t.Errorf("(%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestAccumulateShotAddRemove(t *testing.T) {
	m := model()
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: 40, H: 40}
	s1 := geom.Rect{X0: 5, Y0: 5, X1: 20, Y1: 20}
	s2 := geom.Rect{X0: 15, Y0: 10, X1: 35, Y1: 25}
	f := raster.NewField(g)
	m.AccumulateShot(f, s1, 1)
	m.AccumulateShot(f, s2, 1)
	m.AccumulateShot(f, s2, -1)
	only1 := m.DoseMap(g, []geom.Rect{s1})
	for k := range f.V {
		if math.Abs(f.V[k]-only1.V[k]) > 1e-12 {
			t.Fatalf("add/remove not exact at %d: %v vs %v", k, f.V[k], only1.V[k])
		}
	}
}

func TestDoseMapSuperposition(t *testing.T) {
	m := model()
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: 50, H: 50}
	shots := []geom.Rect{
		{X0: 5, Y0: 5, X1: 25, Y1: 20},
		{X0: 20, Y0: 15, X1: 45, Y1: 30},
	}
	total := m.DoseMap(g, shots)
	p := geom.Pt(22.5, 17.5)
	want := m.ShotIntensity(shots[0], p) + m.ShotIntensity(shots[1], p)
	i, j := g.PixelOf(p)
	if got := total.At(i, j); math.Abs(got-want) > 4*ProfileTol32 {
		t.Errorf("superposition: %v vs %v", got, want)
	}
}

func TestCornerDepth(t *testing.T) {
	m := model()
	d := m.CornerDepth(0.5)
	// x = P^-1(sqrt(0.5)): erf(x/σ) = 2·0.7071-1 = 0.41421 → x ≈ 0.3829σ
	want := math.Sqrt2 * 0.3829 * sigma
	if math.Abs(d-want) > 0.05 {
		t.Errorf("CornerDepth = %v, want ≈ %v", d, want)
	}
}

func TestCornerContourOnIso(t *testing.T) {
	m := model()
	pts := m.CornerContour(0.5, 64)
	if len(pts) < 32 {
		t.Fatalf("too few contour points: %d", len(pts))
	}
	for _, p := range pts {
		dose := m.EdgeProfile(-p.X) * m.EdgeProfile(-p.Y)
		if math.Abs(dose-0.5) > 1e-3 {
			t.Errorf("contour point %v has dose %v", p, dose)
		}
	}
}

func TestLthReasonableRange(t *testing.T) {
	m := model()
	lth := m.Lth(0.5, 2)
	// hand computation: contour point with diagonal depth
	// depth+2γ ≈ 7.39 nm sits near (−0.05, −10.39) → Lth ≈ 14.6 nm
	if lth < 12 || lth > 18 {
		t.Errorf("Lth(0.5, 2) = %v, want ≈ 14.6", lth)
	}
}

func TestLthMonotoneInGamma(t *testing.T) {
	m := model()
	prev := 0.0
	for _, gamma := range []float64{0.5, 1, 2, 3, 4} {
		l := m.Lth(0.5, gamma)
		if l <= prev {
			t.Errorf("Lth not increasing at gamma=%v: %v <= %v", gamma, l, prev)
		}
		prev = l
	}
}

func TestLthScalesWithSigma(t *testing.T) {
	// larger blur rounds corners more gently → longer 45° segments
	small := NewModel(3).Lth(0.5, 2)
	large := NewModel(12).Lth(0.5, 2)
	if large <= small {
		t.Errorf("Lth should grow with sigma: σ=3 → %v, σ=12 → %v", small, large)
	}
}

func TestDoubleGaussianBasics(t *testing.T) {
	m := NewDoubleGaussian(6.25, 30, 0.5)
	if m.Components() != 2 {
		t.Fatalf("components = %d", m.Components())
	}
	if w := m.Weight(0) + m.Weight(1); math.Abs(w-1) > 1e-12 {
		t.Errorf("weights sum to %v", w)
	}
	if m.Support() != 90 {
		t.Errorf("support = %v, want 3*30", m.Support())
	}
	// combined profile is still a monotone 0..1 edge profile
	if got := m.EdgeProfile(0); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("P(0) = %v", got)
	}
	if m.EdgeProfile(-100) != 0 || m.EdgeProfile(100) != 1 {
		t.Error("profile clamps wrong")
	}
	prev := -1.0
	for d := -90.0; d <= 90; d += 0.5 {
		v := m.EdgeProfile(d)
		if v < prev {
			t.Fatalf("combined profile not monotone at %v", d)
		}
		prev = v
	}
}

func TestDoubleGaussianEtaZeroDegenerates(t *testing.T) {
	a := NewDoubleGaussian(6.25, 30, 0)
	b := NewModel(6.25)
	if a.Components() != 1 {
		t.Fatalf("eta=0 has %d components", a.Components())
	}
	for d := -18.0; d <= 18; d += 1.3 {
		if math.Abs(a.EdgeProfile(d)-b.EdgeProfile(d)) > 1e-12 {
			t.Fatalf("eta=0 profile differs at %v", d)
		}
	}
}

func TestDoubleGaussianShotIntensity(t *testing.T) {
	m := NewDoubleGaussian(6.25, 25, 0.4)
	s := geom.Rect{X0: 0, Y0: 0, X1: 200, Y1: 200}
	// deep inside a huge shot the dose saturates to 1 for any PSF
	if got := m.ShotIntensity(s, geom.Pt(100, 100)); math.Abs(got-1) > 1e-4 {
		t.Errorf("center = %v", got)
	}
	// at a long straight edge the dose is 0.5
	if got := m.ShotIntensity(s, geom.Pt(0, 100)); math.Abs(got-0.5) > 1e-4 {
		t.Errorf("edge = %v", got)
	}
	// backscatter spreads dose farther out than the forward Gaussian
	single := NewModel(6.25)
	d := 15.0
	if m.ShotIntensity(s, geom.Pt(-d, 100)) <= single.ShotIntensity(s, geom.Pt(-d, 100)) {
		t.Error("backscatter tail not wider than forward-only")
	}
}

func TestDoubleGaussianAccumulateMatchesPoint(t *testing.T) {
	m := NewDoubleGaussian(6.25, 20, 0.3)
	g := raster.Grid{X0: 0, Y0: 0, Pitch: 1, W: 80, H: 80}
	s := geom.Rect{X0: 25, Y0: 30, X1: 55, Y1: 50}
	f := raster.NewField(g)
	m.AccumulateShot(f, s, 1)
	// float32 strip kernels vs the float64 point path: see ProfileTol32
	for j := 0; j < g.H; j += 7 {
		for i := 0; i < g.W; i += 7 {
			want := m.ShotIntensity(s, g.Center(i, j))
			if got := f.At(i, j); math.Abs(got-want) > 2*ProfileTol32 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestDoubleGaussianPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDoubleGaussian(0, 10, 0.5) },
		func() { NewDoubleGaussian(5, 0, 0.5) },
		func() { NewDoubleGaussian(5, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for invalid double-Gaussian params")
				}
			}()
			f()
		}()
	}
}

func TestLthDoubleGaussian(t *testing.T) {
	// backscatter softens the profile; Lth stays finite and positive
	m := NewDoubleGaussian(6.25, 25, 0.3)
	lth := m.Lth(0.5, 2)
	if lth <= 0 || lth > 2*m.Support() {
		t.Errorf("double-Gaussian Lth = %v", lth)
	}
}
