package ebeam

import (
	"math"
	"math/rand"
	"testing"
)

// TestEdgeProfiles32MatchesReference is the randomized strip property
// test for the float32 kernel: for both model shapes it samples random
// strip geometries (origin, pitch, window offset/length, edge pair) and
// asserts every sample agrees with the float64 EdgeProfiles reference
// within ProfileTol32, reporting the first diverging strip coordinate.
func TestEdgeProfiles32MatchesReference(t *testing.T) {
	models := map[string]*Model{
		"single": NewModel(12),
		"double": NewDoubleGaussian(10, 120, 0.5),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(8))
			ref := make([]float64, 0, 512)
			got := make([]float32, 0, 512)
			for seq := 0; seq < 120; seq++ {
				c := rng.Intn(m.Components())
				sigma := m.comps[c].sigma
				t0 := (rng.Float64() - 0.5) * 200
				pitch := 0.5 + rng.Float64()*2*sigma // sub-pixel ramps through multi-σ pitches
				i0 := rng.Intn(64) - 32
				n := 1 + rng.Intn(512)
				// place edges so strips cover interior, clamp boundary,
				// and fully-saturated cases
				a := t0 + (rng.Float64()*float64(n)-8)*pitch
				b := a + rng.Float64()*6*sigma
				ref = append(ref[:0], make([]float64, n)...)
				got = append(got[:0], make([]float32, n)...)
				m.EdgeProfiles(ref, c, t0, pitch, i0, a, b)
				m.EdgeProfiles32(got, c, t0, pitch, i0, a, b)
				for i := range ref {
					if d := math.Abs(float64(got[i]) - ref[i]); d > ProfileTol32 {
						t.Fatalf("seq %d: component %d (σ=%g) strip t0=%g pitch=%g i0=%d edges (%g,%g): "+
							"first divergence at pixel %d (t=%g): float32 %v vs float64 %v (|Δ|=%.3g > %g)",
							seq, c, sigma, t0, pitch, i0, a, b,
							i0+i, t0+(float64(i0+i)+0.5)*pitch, got[i], ref[i], d, ProfileTol32)
					}
				}
			}
		})
	}
}

// TestEdgeProfiles32WindowExactness pins the kernel's exactness
// contract: the same absolute pixel filled through two different
// (i0, len) windows must produce bit-identical float32 values, since
// the incremental evaluator relies on add/remove strips cancelling a
// shot's accumulated dose exactly.
func TestEdgeProfiles32WindowExactness(t *testing.T) {
	m := NewDoubleGaussian(10, 120, 0.5)
	rng := rand.New(rand.NewSource(9))
	for seq := 0; seq < 60; seq++ {
		c := rng.Intn(m.Components())
		t0 := (rng.Float64() - 0.5) * 100
		pitch := 0.5 + rng.Float64()*10
		a := t0 + rng.Float64()*80
		b := a + rng.Float64()*60
		// a wide window and a shifted, shorter one overlapping it
		wide := make([]float32, 400)
		m.EdgeProfiles32(wide, c, t0, pitch, -50, a, b)
		off := rng.Intn(200)
		n := 1 + rng.Intn(400-off)
		sub := make([]float32, n)
		m.EdgeProfiles32(sub, c, t0, pitch, -50+off, a, b)
		for i := range sub {
			if sub[i] != wide[off+i] {
				t.Fatalf("seq %d: pixel %d differs across windows: %v (sub) vs %v (wide)",
					seq, -50+off+i, sub[i], wide[off+i])
			}
		}
	}
}

// TestSetProfileCheck verifies the toggle semantics and that a checked
// fill passes cleanly (a divergence would panic inside EdgeProfiles32).
func TestSetProfileCheck(t *testing.T) {
	prev := SetProfileCheck(true)
	defer SetProfileCheck(prev)
	m := NewDoubleGaussian(10, 120, 0.5)
	dst := make([]float32, 256)
	m.EdgeProfiles32(dst, 1, -30, 1.25, -7, 3, 95)
	if on := SetProfileCheck(false); !on {
		t.Fatal("SetProfileCheck(true) did not stick")
	}
	if on := SetProfileCheck(prev); on {
		t.Fatal("SetProfileCheck(false) did not stick")
	}
}
