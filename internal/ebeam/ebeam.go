// Package ebeam models the electron-beam proximity effect used in
// model-based mask fracturing (paper §2).
//
// The paper's kernel is the single 2D Gaussian
//
//	G(x,y) = (1/πσ²)·exp(−(x²+y²)/σ²), truncated at radius 3σ,
//
// and the intensity of a rectangular shot s is Is = G ⋆ Rs. Because the
// untruncated kernel is separable, the convolution has the closed form
//
//	Is(x,y) = E(x; x0, x1) · E(y; y0, y1)
//	E(t; a, b) = ½[erf((t−a)/σ) − erf((t−b)/σ)] = P(t−a) − P(t−b)
//	P(d) = ½(1 + erf(d/σ))
//
// with P the 1D edge profile, evaluated via a lookup table (the paper
// also uses an LUT) and clamped to 0/1 beyond 3σ, which reproduces the
// truncated kernel to better than 1e-4.
//
// The package also supports the standard two-Gaussian proximity-effect
// model (forward scattering α plus backscatter β weighted by η):
//
//	PSF = [ (1/πα²)·e^(−r²/α²) + (η/πβ²)·e^(−r²/β²) ] / (1+η)
//
// whose shot intensity is the weighted sum of two separable terms.
// NewModel builds the paper's single-Gaussian model; NewDoubleGaussian
// builds the two-component model.
package ebeam

import (
	"math"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// lutCells is the number of LUT samples across the [-3σ, 3σ] support of
// each component's edge profile.
const lutCells = 4096

// component is one Gaussian term of the point spread function.
type component struct {
	sigma  float64
	weight float64
	lut    []float64 // P sampled on [-3σ, 3σ]
	step   float64   // LUT sample spacing in nm
}

// Model is a fixed-dose e-beam proximity model: a weighted sum of
// Gaussian components (one for the paper's model, two with backscatter).
type Model struct {
	comps   []component
	support float64 // 3 × the largest component sigma
}

// NewModel returns the paper's proximity model with forward-scattering
// range σ in nanometers (σ = 6.25 nm in the experiments).
func NewModel(sigma float64) *Model {
	if sigma <= 0 {
		panic("ebeam: sigma must be positive")
	}
	return &Model{
		comps:   []component{newComponent(sigma, 1)},
		support: 3 * sigma,
	}
}

// NewDoubleGaussian returns the two-Gaussian proximity model with
// forward range alpha, backscatter range beta and backscatter ratio
// eta. alpha < beta is expected; eta = 0 degenerates to NewModel(alpha).
func NewDoubleGaussian(alpha, beta, eta float64) *Model {
	if alpha <= 0 || beta <= 0 {
		panic("ebeam: ranges must be positive")
	}
	if eta < 0 {
		panic("ebeam: eta must be non-negative")
	}
	if eta == 0 {
		return NewModel(alpha)
	}
	norm := 1 + eta
	m := &Model{
		comps: []component{
			newComponent(alpha, 1/norm),
			newComponent(beta, eta/norm),
		},
	}
	m.support = 3 * math.Max(alpha, beta)
	return m
}

// newComponent builds one Gaussian term with its LUT.
func newComponent(sigma, weight float64) component {
	c := component{sigma: sigma, weight: weight, step: 6 * sigma / lutCells}
	c.lut = make([]float64, lutCells+1)
	for i := range c.lut {
		d := -3*sigma + float64(i)*c.step
		c.lut[i] = 0.5 * (1 + math.Erf(d/sigma))
	}
	return c
}

// Sigma returns the forward-scattering range (the first component's σ).
func (m *Model) Sigma() float64 { return m.comps[0].sigma }

// Components returns the number of Gaussian terms (1 or 2).
func (m *Model) Components() int { return len(m.comps) }

// Weight returns the dose weight of component c.
func (m *Model) Weight(c int) float64 { return m.comps[c].weight }

// Support returns the truncation radius (3× the widest component's σ):
// a shot's intensity is treated as zero farther than this from the shot.
func (m *Model) Support() float64 { return m.support }

// profile evaluates one component's edge profile from its LUT with
// linear interpolation, clamped to {0, 1} beyond 3σ.
func (c *component) profile(d float64) float64 {
	if d <= -3*c.sigma {
		return 0
	}
	if d >= 3*c.sigma {
		return 1
	}
	u := (d + 3*c.sigma) / c.step
	i := int(u)
	if i >= lutCells {
		i = lutCells - 1
	}
	frac := u - float64(i)
	return c.lut[i]*(1-frac) + c.lut[i+1]*frac
}

// EdgeProfileExact returns the combined profile without LUTs, for
// reference and tests.
func (m *Model) EdgeProfileExact(d float64) float64 {
	total := 0.0
	for _, c := range m.comps {
		total += c.weight * 0.5 * (1 + math.Erf(d/c.sigma))
	}
	return total
}

// EdgeProfile returns the combined 1D edge profile P(d): the intensity
// at signed distance d from an isolated straight shot edge (positive d
// inside the shot).
func (m *Model) EdgeProfile(d float64) float64 {
	total := 0.0
	for i := range m.comps {
		total += m.comps[i].weight * m.comps[i].profile(d)
	}
	return total
}

// ProfileInv returns the signed distance d such that EdgeProfile(d) = v,
// for v in (0, 1), by bisection on the monotone combined profile.
// Values at or beyond the clamp return ±Support.
func (m *Model) ProfileInv(v float64) float64 {
	lo, hi := -m.support, m.support
	if v <= m.EdgeProfile(lo) {
		return lo
	}
	if v >= m.EdgeProfile(hi) {
		return hi
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if m.EdgeProfile(mid) <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Edge returns the combined E(t; a, b) = P(t−a) − P(t−b): the 1D
// intensity cross section of an infinitely tall shot spanning [a, b].
// NOTE: for multi-component models the 2D shot intensity is NOT
// Edge(x)·Edge(y); use ShotIntensity or EdgeComponent per component.
func (m *Model) Edge(t, a, b float64) float64 {
	return m.EdgeProfile(t-a) - m.EdgeProfile(t-b)
}

// EdgeComponent returns component c's E_c(t; a, b) = P_c(t−a) − P_c(t−b).
func (m *Model) EdgeComponent(c int, t, a, b float64) float64 {
	return m.comps[c].profile(t-a) - m.comps[c].profile(t-b)
}

// ShotIntensity returns Is(x, y) for shot rectangle s at point p:
// Σ_c w_c · E_c(x)·E_c(y).
func (m *Model) ShotIntensity(s geom.Rect, p geom.Point) float64 {
	total := 0.0
	for c := range m.comps {
		ex := m.EdgeComponent(c, p.X, s.X0, s.X1)
		if ex == 0 {
			continue
		}
		ey := m.EdgeComponent(c, p.Y, s.Y0, s.Y1)
		total += m.comps[c].weight * ex * ey
	}
	return total
}

// EdgeProfiles fills dst[i] with component c's edge factor
// E_c(t; a, b) = P_c(t−a) − P_c(t−b) sampled at the centers of pixel
// indices i0, i0+1, … along one grid axis with origin t0 and the given
// pitch (dst[i] is the value at pixel index i0+i). It is the 1D
// precomputation shared by AccumulateShot and the incremental
// evaluator's strip scans: filling both axes once makes a box or strip
// update O(W+H) profile evaluations plus a multiply-add per visited
// pixel, instead of per-pixel LUT interpolation.
func (m *Model) EdgeProfiles(dst []float64, c int, t0, pitch float64, i0 int, a, b float64) {
	comp := &m.comps[c]
	for i := range dst {
		t := t0 + (float64(i0+i)+0.5)*pitch
		dst[i] = comp.profile(t-a) - comp.profile(t-b)
	}
}

// SupportBox returns the pixel-coordinate box (inclusive) of grid g that
// a shot s can influence: s expanded by the support radius, clamped to
// the grid.
func (m *Model) SupportBox(g raster.Grid, s geom.Rect) (i0, j0, i1, j1 int) {
	r := s.Inset(-m.Support())
	i0, j0 = g.PixelOf(geom.Pt(r.X0, r.Y0))
	i1, j1 = g.PixelOf(geom.Pt(r.X1, r.Y1))
	return g.ClampX(i0), g.ClampY(j0), g.ClampX(i1), g.ClampY(j1)
}

// AccumulateShot adds sign × Is to the field f over the shot's support
// box. sign is +1 to add a shot and −1 to remove it (fractional values
// express variable dose). The separable form makes each component
// O(W + H + box area) with two 1D profile passes.
func (m *Model) AccumulateShot(f *raster.Field, s geom.Rect, sign float64) {
	g := f.Grid
	i0, j0, i1, j1 := m.SupportBox(g, s)
	if i1 < i0 || j1 < j0 {
		return
	}
	width := i1 - i0 + 1
	ex := make([]float64, width)
	ey := make([]float64, j1-j0+1)
	for c := range m.comps {
		m.EdgeProfiles(ex, c, g.X0, g.Pitch, i0, s.X0, s.X1)
		m.EdgeProfiles(ey, c, g.Y0, g.Pitch, j0, s.Y0, s.Y1)
		w := sign * m.comps[c].weight
		for j := j0; j <= j1; j++ {
			rowW := w * ey[j-j0]
			if rowW == 0 {
				continue
			}
			row := f.V[j*g.W : (j+1)*g.W]
			for i := i0; i <= i1; i++ {
				row[i] += rowW * ex[i-i0]
			}
		}
	}
}

// DoseMap returns the total intensity field Itot = Σ Is over grid g for
// the given shots.
func (m *Model) DoseMap(g raster.Grid, shots []geom.Rect) *raster.Field {
	f := raster.NewField(g)
	for _, s := range shots {
		m.AccumulateShot(f, s, 1)
	}
	return f
}
