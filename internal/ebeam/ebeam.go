// Package ebeam models the electron-beam proximity effect used in
// model-based mask fracturing (paper §2).
//
// The paper's kernel is the single 2D Gaussian
//
//	G(x,y) = (1/πσ²)·exp(−(x²+y²)/σ²), truncated at radius 3σ,
//
// and the intensity of a rectangular shot s is Is = G ⋆ Rs. Because the
// untruncated kernel is separable, the convolution has the closed form
//
//	Is(x,y) = E(x; x0, x1) · E(y; y0, y1)
//	E(t; a, b) = ½[erf((t−a)/σ) − erf((t−b)/σ)] = P(t−a) − P(t−b)
//	P(d) = ½(1 + erf(d/σ))
//
// with P the 1D edge profile, evaluated via a lookup table (the paper
// also uses an LUT) and clamped to 0/1 beyond 3σ, which reproduces the
// truncated kernel to better than 1e-4.
//
// The package also supports the standard two-Gaussian proximity-effect
// model (forward scattering α plus backscatter β weighted by η):
//
//	PSF = [ (1/πα²)·e^(−r²/α²) + (η/πβ²)·e^(−r²/β²) ] / (1+η)
//
// whose shot intensity is the weighted sum of two separable terms.
// NewModel builds the paper's single-Gaussian model; NewDoubleGaussian
// builds the two-component model.
package ebeam

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"maskfrac/internal/geom"
	"maskfrac/internal/raster"
)

// lutCells is the number of LUT samples across the [-3σ, 3σ] support of
// each component's edge profile.
const lutCells = 4096

// ProfileTol32 is the documented agreement tolerance between the
// float32 strip kernels (EdgeProfiles32) and the float64 reference path
// (EdgeProfiles): absolute, on edge-factor values in [-1, 1]. The
// float32 LUT stores values rounded from the float64 table (≤ 2⁻²⁴
// each) and the interpolation spends ~3 float32 operations per sample,
// so the difference of two profiles stays below ~1e-6; 1e-5 — about
// 84 ULP of float32 at full scale — leaves an order of magnitude of
// slack. The strip cross-check and the randomized property suite both
// assert against this bound.
const ProfileTol32 = 1e-5

// profileCheck enables the float32-vs-float64 strip cross-check inside
// EdgeProfiles32: every filled strip is re-derived on the float64
// reference path and the first sample diverging by more than
// ProfileTol32 panics with its strip coordinates. The process default
// follows MASKFRAC_EVAL_CHECK (shared with cover.Eval's cross-check
// mode); tests flip it with SetProfileCheck.
var profileCheck atomic.Bool

func init() {
	profileCheck.Store(os.Getenv("MASKFRAC_EVAL_CHECK") != "")
}

// SetProfileCheck toggles the float32 strip kernel cross-check
// process-wide and returns the previous setting. When enabled, every
// EdgeProfiles32 strip is verified sample-by-sample against the float64
// reference within ProfileTol32, panicking with the first diverging
// strip coordinate. Meant for tests and debugging: it multiplies the
// cost of every strip fill.
func SetProfileCheck(on bool) (prev bool) {
	return profileCheck.Swap(on)
}

// component is one Gaussian term of the point spread function.
type component struct {
	sigma  float64
	weight float64
	lut    []float64 // P sampled on [-3σ, 3σ]: the float64 reference
	lut32  []float32 // the same table rounded to float32: the fast path
	step   float64   // LUT sample spacing in nm
}

// Model is a fixed-dose e-beam proximity model: a weighted sum of
// Gaussian components (one for the paper's model, two with backscatter).
type Model struct {
	comps   []component
	support float64 // 3 × the largest component sigma
}

// NewModel returns the paper's proximity model with forward-scattering
// range σ in nanometers (σ = 6.25 nm in the experiments).
func NewModel(sigma float64) *Model {
	if sigma <= 0 {
		panic("ebeam: sigma must be positive")
	}
	return &Model{
		comps:   []component{newComponent(sigma, 1)},
		support: 3 * sigma,
	}
}

// NewDoubleGaussian returns the two-Gaussian proximity model with
// forward range alpha, backscatter range beta and backscatter ratio
// eta. alpha < beta is expected; eta = 0 degenerates to NewModel(alpha).
func NewDoubleGaussian(alpha, beta, eta float64) *Model {
	if alpha <= 0 || beta <= 0 {
		panic("ebeam: ranges must be positive")
	}
	if eta < 0 {
		panic("ebeam: eta must be non-negative")
	}
	if eta == 0 {
		return NewModel(alpha)
	}
	norm := 1 + eta
	m := &Model{
		comps: []component{
			newComponent(alpha, 1/norm),
			newComponent(beta, eta/norm),
		},
	}
	m.support = 3 * math.Max(alpha, beta)
	return m
}

// newComponent builds one Gaussian term with its LUTs: the float64
// reference table and its float32 rounding used by the strip kernels.
func newComponent(sigma, weight float64) component {
	c := component{sigma: sigma, weight: weight, step: 6 * sigma / lutCells}
	c.lut = make([]float64, lutCells+1)
	c.lut32 = make([]float32, lutCells+1)
	for i := range c.lut {
		d := -3*sigma + float64(i)*c.step
		c.lut[i] = 0.5 * (1 + math.Erf(d/sigma))
		c.lut32[i] = float32(c.lut[i])
	}
	return c
}

// Sigma returns the forward-scattering range (the first component's σ).
func (m *Model) Sigma() float64 { return m.comps[0].sigma }

// Components returns the number of Gaussian terms (1 or 2).
func (m *Model) Components() int { return len(m.comps) }

// Weight returns the dose weight of component c.
func (m *Model) Weight(c int) float64 { return m.comps[c].weight }

// Support returns the truncation radius (3× the widest component's σ):
// a shot's intensity is treated as zero farther than this from the shot.
func (m *Model) Support() float64 { return m.support }

// profile evaluates one component's edge profile from its LUT with
// linear interpolation, clamped to {0, 1} beyond 3σ.
func (c *component) profile(d float64) float64 {
	if d <= -3*c.sigma {
		return 0
	}
	if d >= 3*c.sigma {
		return 1
	}
	u := (d + 3*c.sigma) / c.step
	i := int(u)
	if i >= lutCells {
		i = lutCells - 1
	}
	frac := u - float64(i)
	return c.lut[i]*(1-frac) + c.lut[i+1]*frac
}

// EdgeProfileExact returns the combined profile without LUTs, for
// reference and tests.
func (m *Model) EdgeProfileExact(d float64) float64 {
	total := 0.0
	for _, c := range m.comps {
		total += c.weight * 0.5 * (1 + math.Erf(d/c.sigma))
	}
	return total
}

// EdgeProfile returns the combined 1D edge profile P(d): the intensity
// at signed distance d from an isolated straight shot edge (positive d
// inside the shot).
func (m *Model) EdgeProfile(d float64) float64 {
	total := 0.0
	for i := range m.comps {
		total += m.comps[i].weight * m.comps[i].profile(d)
	}
	return total
}

// ProfileInv returns the signed distance d such that EdgeProfile(d) = v,
// for v in (0, 1), by bisection on the monotone combined profile.
// Values at or beyond the clamp return ±Support.
func (m *Model) ProfileInv(v float64) float64 {
	lo, hi := -m.support, m.support
	if v <= m.EdgeProfile(lo) {
		return lo
	}
	if v >= m.EdgeProfile(hi) {
		return hi
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if m.EdgeProfile(mid) <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Edge returns the combined E(t; a, b) = P(t−a) − P(t−b): the 1D
// intensity cross section of an infinitely tall shot spanning [a, b].
// NOTE: for multi-component models the 2D shot intensity is NOT
// Edge(x)·Edge(y); use ShotIntensity or EdgeComponent per component.
func (m *Model) Edge(t, a, b float64) float64 {
	return m.EdgeProfile(t-a) - m.EdgeProfile(t-b)
}

// EdgeComponent returns component c's E_c(t; a, b) = P_c(t−a) − P_c(t−b).
func (m *Model) EdgeComponent(c int, t, a, b float64) float64 {
	return m.comps[c].profile(t-a) - m.comps[c].profile(t-b)
}

// ShotIntensity returns Is(x, y) for shot rectangle s at point p:
// Σ_c w_c · E_c(x)·E_c(y).
func (m *Model) ShotIntensity(s geom.Rect, p geom.Point) float64 {
	total := 0.0
	for c := range m.comps {
		ex := m.EdgeComponent(c, p.X, s.X0, s.X1)
		if ex == 0 {
			continue
		}
		ey := m.EdgeComponent(c, p.Y, s.Y0, s.Y1)
		total += m.comps[c].weight * ex * ey
	}
	return total
}

// EdgeProfiles fills dst[i] with component c's edge factor
// E_c(t; a, b) = P_c(t−a) − P_c(t−b) sampled at the centers of pixel
// indices i0, i0+1, … along one grid axis with origin t0 and the given
// pitch (dst[i] is the value at pixel index i0+i).
//
// This is the float64 REFERENCE path: the production strip kernels are
// EdgeProfiles32, and this table is what the MASKFRAC_EVAL_CHECK strip
// cross-check re-derives them against. The sample position depends only
// on the absolute pixel index i0+i, so overlapping fills (a shot's
// support box vs a move's union box) produce bit-identical values.
func (m *Model) EdgeProfiles(dst []float64, c int, t0, pitch float64, i0 int, a, b float64) {
	comp := &m.comps[c]
	for i := range dst {
		t := t0 + (float64(i0+i)+0.5)*pitch
		dst[i] = comp.profile(t-a) - comp.profile(t-b)
	}
}

// EdgeProfiles32 is the float32 strip kernel behind the evaluator hot
// path: it fills dst[i] with component c's edge factor
// E_c(t; a, b) = P_c(t−a) − P_c(t−b), like EdgeProfiles, but reads the
// float32 LUT and runs strip-mined inner loops. Because the edge
// profile is a clamped ramp, each edge splits the strip into three
// contiguous segments — a constant prefix, a short LUT-interpolated
// ramp (~6σ/pitch samples), and a constant suffix — so the bulk of a
// wide strip is a branch-free constant fill and only the ramp pays for
// interpolation, with no per-sample clamp tests in either loop.
//
// Exactness contract: dst[i] is a deterministic function of the
// absolute pixel index i0+i and the edge pair (a, b) alone — the same
// sample filled through any (i0, len) window yields the identical
// float32 bits, which is what lets the incremental evaluator's strip
// updates cancel a shot's accumulated dose exactly. Values agree with
// the float64 reference within ProfileTol32; when SetProfileCheck (or
// MASKFRAC_EVAL_CHECK) is on, every fill is verified against it and
// panics with the first diverging strip coordinate.
func (m *Model) EdgeProfiles32(dst []float32, c int, t0, pitch float64, i0 int, a, b float64) {
	comp := &m.comps[c]
	comp.applyProfile32(dst, t0, pitch, i0, a, +1)
	comp.applyProfile32(dst, t0, pitch, i0, b, -1)
	if profileCheck.Load() {
		m.checkStrip32(dst, c, t0, pitch, i0, a, b)
	}
}

// applyProfile32 adds sign × P_c(t−e) to dst over the strip, with
// t = t0 + (i0+i+0.5)·pitch. sign=+1 lays down the leading edge
// (overwriting dst), sign=−1 subtracts the trailing edge.
func (c *component) applyProfile32(dst []float32, t0, pitch float64, i0 int, e float64, sign int) {
	n := len(dst)
	s3 := 3 * c.sigma
	step := c.step
	// The LUT coordinate of sample m (absolute index) is
	//	u(m) = (t0 + (m+0.5)·pitch − e + 3σ) / step,
	// increasing in m (pitch > 0). Samples with u ∈ [1, lutCells−1]
	// interpolate without clamp tests; the conservative one-cell margin
	// keeps k and k+1 in range even at the rounded boundaries.
	mLo := int(math.Ceil((1*step-s3+e-t0)/pitch - 0.5))
	mHi := int(math.Floor((float64(lutCells-1)*step-s3+e-t0)/pitch - 0.5))
	lo := min(max(mLo-i0, 0), n)
	hi := min(max(mHi-i0+1, lo), n)

	lut := c.lut32
	// constant prefix/suffix plus the few clamp-boundary samples
	for i := 0; i < lo; i++ {
		applySample32(dst, lut, i, t0, pitch, i0, e, s3, step, sign)
	}
	for i := hi; i < n; i++ {
		applySample32(dst, lut, i, t0, pitch, i0, e, s3, step, sign)
	}
	// the ramp: branch-free interpolation, k ∈ [0, lutCells−1] by the
	// margin above so only the slice bounds checks remain
	ramp := dst[lo:hi]
	if sign > 0 {
		for i := range ramp {
			u := (t0 + (float64(i0+lo+i)+0.5)*pitch - e + s3) / step
			k := int(u)
			f := float32(u - float64(k))
			ramp[i] = lut[k] + f*(lut[k+1]-lut[k])
		}
	} else {
		for i := range ramp {
			u := (t0 + (float64(i0+lo+i)+0.5)*pitch - e + s3) / step
			k := int(u)
			f := float32(u - float64(k))
			ramp[i] -= lut[k] + f*(lut[k+1]-lut[k])
		}
	}
}

// applySample32 handles one clamp-region sample of applyProfile32 with
// the full branchy profile evaluation; it computes the identical
// formula as the ramp loop when u happens to land in range, so segment
// boundaries never change a sample's value.
func applySample32(dst []float32, lut []float32, i int, t0, pitch float64, i0 int, e, s3, step float64, sign int) {
	u := (t0 + (float64(i0+i)+0.5)*pitch - e + s3) / step
	var v float32
	switch {
	case u <= 0:
		v = 0
	case u >= lutCells:
		v = 1
	default:
		k := int(u)
		if k >= lutCells {
			k = lutCells - 1
		}
		f := float32(u - float64(k))
		v = lut[k] + f*(lut[k+1]-lut[k])
	}
	if sign > 0 {
		dst[i] = v
	} else {
		dst[i] -= v
	}
}

// checkStrip32 re-derives a float32 strip on the float64 reference path
// and panics with the first diverging sample's strip coordinates.
func (m *Model) checkStrip32(dst []float32, c int, t0, pitch float64, i0 int, a, b float64) {
	comp := &m.comps[c]
	for i, got := range dst {
		t := t0 + (float64(i0+i)+0.5)*pitch
		want := comp.profile(t-a) - comp.profile(t-b)
		if math.Abs(float64(got)-want) > ProfileTol32 {
			panic(fmt.Sprintf(
				"ebeam: float32 strip kernel diverged from float64 reference: "+
					"component %d (σ=%g) pixel %d (t=%g, edges a=%g b=%g): got %v want %v (|Δ|=%.3g > %g)",
				c, comp.sigma, i0+i, t, a, b, got, want,
				math.Abs(float64(got)-want), ProfileTol32))
		}
	}
}

// SupportBox returns the pixel-coordinate box (inclusive) of grid g that
// a shot s can influence: s expanded by the support radius, clamped to
// the grid.
func (m *Model) SupportBox(g raster.Grid, s geom.Rect) (i0, j0, i1, j1 int) {
	r := s.Inset(-m.Support())
	i0, j0 = g.PixelOf(geom.Pt(r.X0, r.Y0))
	i1, j1 = g.PixelOf(geom.Pt(r.X1, r.Y1))
	return g.ClampX(i0), g.ClampY(j0), g.ClampX(i1), g.ClampY(j1)
}

// AccumulateShot adds sign × Is to the field f over the shot's support
// box. sign is +1 to add a shot and −1 to remove it (fractional values
// express variable dose). The separable form makes each component
// O(W + H + box area) with two 1D profile passes. Allocates the 1D
// tables per call; hot paths should use AccumulateShotBuf with a reused
// scratch buffer.
func (m *Model) AccumulateShot(f *raster.Field, s geom.Rect, sign float64) {
	m.AccumulateShotBuf(f, s, sign, nil)
}

// AccumulateShotBuf is AccumulateShot drawing its per-axis edge tables
// from scratch (grown as needed) instead of allocating; it returns the
// possibly-grown buffer for reuse. The dose added for a given shot is a
// deterministic function of the shot and the grid — independent of the
// buffer passed — so an add followed by a remove cancels to float64
// rounding exactly as with fresh allocations.
//
// The edge tables are the float32 strip kernels (EdgeProfiles32); the
// per-row accumulation widens each product to float64 before adding to
// the field, so the float32 rounding lives only in the table values,
// shared by every path that scores or commits the same shot.
func (m *Model) AccumulateShotBuf(f *raster.Field, s geom.Rect, sign float64, scratch []float32) []float32 {
	g := f.Grid
	i0, j0, i1, j1 := m.SupportBox(g, s)
	if i1 < i0 || j1 < j0 {
		return scratch
	}
	width := i1 - i0 + 1
	height := j1 - j0 + 1
	if cap(scratch) < width+height {
		scratch = make([]float32, width+height)
	}
	ex := scratch[:width]
	ey := scratch[width : width+height]
	for c := range m.comps {
		m.EdgeProfiles32(ex, c, g.X0, g.Pitch, i0, s.X0, s.X1)
		m.EdgeProfiles32(ey, c, g.Y0, g.Pitch, j0, s.Y0, s.Y1)
		w := sign * m.comps[c].weight
		for j := j0; j <= j1; j++ {
			rowW := w * float64(ey[j-j0])
			if rowW == 0 {
				continue
			}
			row := f.V[j*g.W+i0 : j*g.W+i1+1]
			exr := ex[:len(row)]
			for i := range row {
				row[i] += rowW * float64(exr[i])
			}
		}
	}
	return scratch
}

// DoseMap returns the total intensity field Itot = Σ Is over grid g for
// the given shots.
func (m *Model) DoseMap(g raster.Grid, shots []geom.Rect) *raster.Field {
	f := raster.NewField(g)
	var scratch []float32
	for _, s := range shots {
		scratch = m.AccumulateShotBuf(f, s, 1, scratch)
	}
	return f
}
