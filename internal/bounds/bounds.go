// Package bounds computes per-shape lower and upper bounds on the
// optimal shot count, standing in for the ILP-based bounds of the
// ICCAD'14 benchmarking flow the paper normalizes against (Table 2's
// LB/UB column). See DESIGN.md for the substitution rationale.
//
//   - Upper bound: the shot count of a conventional rectilinear
//     partition of the (rasterized) target — a feasible non-overlapping
//     fracture always exists at that count, and overlap can only help.
//   - Lower bound: a greedy independent set in the shot-corner
//     compatibility graph. Corner points of pairwise-incompatible types
//     cannot be written by one shot, so each needs its own; the bound is
//     heuristic in the same sense as the benchmark's time-limited ILP
//     lower bounds.
package bounds

import (
	"maskfrac/internal/cover"
	"maskfrac/internal/fracture/mbf"
	"maskfrac/internal/fracture/partition"
	"maskfrac/internal/raster"
)

// Bounds holds the shot-count bounds for one shape.
type Bounds struct {
	Lower int
	Upper int
}

// Compute returns shot-count bounds for the problem's target shape.
func Compute(p *cover.Problem) Bounds {
	return Bounds{Lower: lowerBound(p), Upper: upperBound(p)}
}

// upperBound counts the rectangles of a minimum rectilinear partition
// of the rasterized target. Rasterization staircases curvilinear
// boundaries, so the partition runs on a coarsened contour first (like
// a conventional fracture tool would), falling back to the sweep
// partition when the chord recursion fails.
func upperBound(p *cover.Problem) int {
	coarse := raster.GridCovering(p.TargetBounds(), 4, 4)
	bm := raster.NewBitmap(coarse)
	for _, t := range p.Targets {
		one, err := raster.Rasterize(t, coarse)
		if err != nil {
			return 0
		}
		for k, v := range one.Bits {
			if v {
				bm.Bits[k] = true
			}
		}
	}
	total := 0
	for _, pg := range raster.Contours(bm) {
		if !pg.IsCCW() {
			continue
		}
		rects, err := partition.Minimum(pg)
		if err != nil {
			if rects, err = partition.Sweep(pg); err != nil {
				continue
			}
		}
		total += len(rects)
	}
	return total
}

// lowerBound runs the corner-extraction stage of the paper's method and
// takes a greedy independent set of the compatibility graph. Any two
// corner points without a compatibility edge cannot be corners of the
// same shot, so a pairwise-incompatible set needs that many distinct
// shots to realize the extracted corners.
func lowerBound(p *cover.Problem) int {
	g := mbf.CompatibilityGraph(p)
	if g == nil || g.N == 0 {
		return 1
	}
	n := len(g.GreedyIndependentSet())
	if n < 1 {
		n = 1
	}
	return n
}
