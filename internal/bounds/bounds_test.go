package bounds

import (
	"testing"

	"maskfrac/internal/cover"
	"maskfrac/internal/geom"
	"maskfrac/internal/shapegen"
)

func problem(t *testing.T, pg geom.Polygon) *cover.Problem {
	t.Helper()
	p, err := cover.NewProblem(pg, cover.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSquareBounds(t *testing.T) {
	p := problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)})
	b := Compute(p)
	if b.Upper != 1 {
		t.Errorf("square upper = %d, want 1 (single rectangle)", b.Upper)
	}
	if b.Lower < 1 {
		t.Errorf("square lower = %d", b.Lower)
	}
}

func TestLBounds(t *testing.T) {
	p := problem(t, geom.Polygon{
		geom.Pt(0, 0), geom.Pt(120, 0), geom.Pt(120, 50),
		geom.Pt(50, 50), geom.Pt(50, 120), geom.Pt(0, 120),
	})
	b := Compute(p)
	if b.Upper != 2 {
		t.Errorf("L upper = %d, want 2", b.Upper)
	}
	if b.Lower < 1 || b.Lower > 4 {
		t.Errorf("L lower = %d out of sane range", b.Lower)
	}
}

func TestUpperGrowsWithComplexity(t *testing.T) {
	simple := Compute(problem(t, geom.Polygon{geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 80), geom.Pt(0, 80)}))
	complexShape := shapegen.ILTShape(104, 5)
	rich := Compute(problem(t, complexShape.Target))
	if rich.Upper <= simple.Upper {
		t.Errorf("complex shape upper (%d) not larger than square (%d)", rich.Upper, simple.Upper)
	}
}

func TestUpperIsAchievable(t *testing.T) {
	// the upper bound comes from a real partition, so a feasible
	// non-overlapping decomposition with that count exists; sanity-check
	// it is positive and bounded for the generated suite
	params := cover.DefaultParams()
	sh := shapegen.RGB(5, 4, params)
	if sh.Target == nil {
		t.Fatal("generation failed")
	}
	b := Compute(problem(t, sh.Target))
	if b.Upper < sh.Known {
		t.Errorf("partition upper bound %d below certified optimal %d", b.Upper, sh.Known)
	}
	if b.Upper > 10*sh.Known {
		t.Errorf("upper bound %d absurdly large for optimal %d", b.Upper, sh.Known)
	}
}
