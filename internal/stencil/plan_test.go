package stencil

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"maskfrac/internal/writecost"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testModel is a small, exactly-representable parameterization: shots
// at 1ms and flashes at 2ms keep every saving an integer number of ms.
func testModel() writecost.Model {
	return writecost.Model{
		ShotTime:       time.Millisecond,
		Overhead:       0,
		WriteFraction:  0.20,
		MaskSetCost:    1_500_000,
		CPFlashTime:    2 * time.Millisecond,
		CPSlots:        4,
		CPStencilW:     300,
		CPStencilH:     300,
		CPLoadOverhead: 0,
	}
}

func testClasses() []Class {
	return []Class{
		{Key: "aa", Placements: 100, Shots: 12, W: 80, H: 60},  // saved 100*(12-2)=1000ms
		{Key: "bb", Placements: 50, Shots: 30, W: 120, H: 100}, // saved 50*28=1400ms
		{Key: "cc", Placements: 400, Shots: 3, W: 40, H: 40},   // saved 400*1=400ms
		{Key: "dd", Placements: 10, Shots: 2, W: 30, H: 30},    // saved 10*0=0 -> not viable
		{Key: "ee", Placements: 9999, Shots: 5, W: 400, H: 50}, // too wide for stencil
		{Key: "ff", Placements: 70, Shots: 8, W: 60, H: 60},    // saved 70*6=420ms
		{Key: "gg", Placements: 5, Shots: 1, W: 20, H: 20},     // saved 5*(-1) < 0
		{Key: "hh", Placements: 200, Shots: 0, W: 50, H: 50},   // unsolved: skipped
	}
}

func TestPlanCPSelection(t *testing.T) {
	p := PlanCP(context.Background(), testClasses(), testModel())
	if p.Viable != 4 {
		t.Fatalf("viable = %d, want 4 (aa bb cc ff)", p.Viable)
	}
	var keys []string
	for _, ch := range p.Characters {
		keys = append(keys, ch.Key)
	}
	// value order: bb 1400, aa 1000, ff 420, cc 400
	want := []string{"bb", "aa", "ff", "cc"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("selected %v, want %v", keys, want)
	}
	r := p.Report
	if r.TotalPlacements != 100+50+400+10+9999+70+5+200 {
		t.Errorf("total placements = %d", r.TotalPlacements)
	}
	if r.ClassSavedMS != 1400+1000+420+400 {
		t.Errorf("gross saving = %v ms, want 3220", r.ClassSavedMS)
	}
	if r.WithCPWriteMS >= r.BaselineWriteMS {
		t.Errorf("CP write %v not below baseline %v", r.WithCPWriteMS, r.BaselineWriteMS)
	}
	// the acceptance identity: per-class savings sum to the report total
	sum := 0.0
	for _, ch := range p.Characters {
		sum += ch.SavedMS
	}
	if sum != r.ClassSavedMS {
		t.Errorf("Σ per-class saved %v != reported %v", sum, r.ClassSavedMS)
	}
	if got := r.BaselineWriteMS - r.ClassSavedMS + r.LoadOverheadMS; got != r.WithCPWriteMS {
		t.Errorf("write-time identity broken: %v != %v", got, r.WithCPWriteMS)
	}
}

// TestPlanCPPackingEviction forces the knapsack's pick past what the
// stencil can geometrically hold: five 140×140 footprints pass the
// slot and area budgets, but a 300×340 stencil shelves only four of
// them (two per row, two rows), so the lowest-value pick is evicted —
// and the freed fifth slot back-fills with a small class skipped by
// the knapsack that still fits a third, short shelf.
func TestPlanCPPackingEviction(t *testing.T) {
	m := testModel()
	m.CPSlots = 5
	m.CPStencilH = 340
	classes := []Class{
		{Key: "k1", Placements: 500, Shots: 10, W: 120, H: 120},
		{Key: "k2", Placements: 400, Shots: 10, W: 120, H: 120},
		{Key: "k3", Placements: 300, Shots: 10, W: 120, H: 120},
		{Key: "k4", Placements: 200, Shots: 10, W: 120, H: 120},
		{Key: "k5", Placements: 100, Shots: 10, W: 120, H: 120}, // won't fit: evicted
		{Key: "k6", Placements: 2, Shots: 10, W: 10, H: 10},     // tiny: refilled
	}
	p := PlanCP(context.Background(), classes, m)
	var keys []string
	for _, ch := range p.Characters {
		keys = append(keys, ch.Key)
	}
	want := []string{"k1", "k2", "k3", "k4", "k6"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("selected %v, want %v (drops=%d adds=%d)", keys, want, p.PackDrops, p.PackAdds)
	}
	if p.PackDrops != 1 || p.PackAdds != 1 {
		t.Errorf("drops=%d adds=%d, want 1/1", p.PackDrops, p.PackAdds)
	}
	// no overlap, all inside the stencil
	for i, a := range p.Characters {
		fa := [4]float64{a.X, a.Y, a.X + a.W, a.Y + a.H}
		if fa[0] < 0 || fa[1] < 0 || fa[2] > m.CPStencilW || fa[3] > m.CPStencilH {
			t.Errorf("%s out of stencil: %v", a.Key, fa)
		}
		for _, b := range p.Characters[i+1:] {
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Errorf("%s overlaps %s", a.Key, b.Key)
			}
		}
	}
}

// TestPlanCPLoadOverheadGuard: when the stencil mount costs more than
// the gross saving, the planner must return the empty plan rather than
// a plan that loses write time.
func TestPlanCPLoadOverheadGuard(t *testing.T) {
	m := testModel()
	m.CPLoadOverhead = time.Hour
	p := PlanCP(context.Background(), testClasses(), m)
	if len(p.Characters) != 0 {
		t.Fatalf("unprofitable stencil planned: %d characters", len(p.Characters))
	}
	r := p.Report
	if r.WithCPWriteMS != r.BaselineWriteMS || r.NetSavedMS != 0 || r.LoadOverheadMS != 0 {
		t.Errorf("empty plan must price at baseline: %+v", r)
	}
}

func TestPlanCPEmptyInput(t *testing.T) {
	p := PlanCP(context.Background(), nil, testModel())
	if len(p.Characters) != 0 || p.Report.BaselineWriteMS != 0 {
		t.Errorf("empty mine should produce the zero plan: %+v", p)
	}
}

// TestPlanCPGolden pins the full plan — selection, packing positions,
// and report — against testdata/plan_golden.json. Run with -update to
// regenerate after an intentional planner change.
func TestPlanCPGolden(t *testing.T) {
	p := PlanCP(context.Background(), testClasses(), testModel())
	got, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "plan_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("plan diverged from golden file:\n got: %s\nwant: %s", got, want)
	}
}

// TestPlanCPDeterministic runs the planner repeatedly over a permuted
// input and demands byte-identical plans.
func TestPlanCPDeterministic(t *testing.T) {
	classes := testClasses()
	base, err := json.Marshal(PlanCP(context.Background(), classes, testModel()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		perm := append([]Class(nil), classes...)
		// rotate to vary input order without randomness
		perm = append(perm[i%len(perm):], perm[:i%len(perm)]...)
		got, err := json.Marshal(PlanCP(context.Background(), perm, testModel()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(base, got) {
			t.Fatalf("rotation %d changed the plan:\n%s\nvs\n%s", i, base, got)
		}
	}
}

func TestMerge(t *testing.T) {
	a := []Class{
		{Key: "x", Placements: 3, Shots: 4, W: 10, H: 10},
		{Key: "y", Placements: 1},
	}
	b := []Class{
		{Key: "y", Placements: 2, Shots: 7, W: 5, H: 6},
		{Key: "x", Placements: 5},
	}
	got := Merge(a, b)
	want := []Class{
		{Key: "x", Placements: 8, Shots: 4, W: 10, H: 10},
		{Key: "y", Placements: 3, Shots: 7, W: 5, H: 6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Merge = %+v, want %+v", got, want)
	}
}

func TestWriteReportTable(t *testing.T) {
	var buf bytes.Buffer
	PlanCP(context.Background(), testClasses(), testModel()).WriteReport(&buf)
	out := buf.String()
	for _, frag := range []string{"4/4 characters", "bb", "cc", "mask cost"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestPackerShelves(t *testing.T) {
	pk := newPacker(Budget{W: 100, H: 100})
	type pl struct{ w, h, x, y float64 }
	cases := []pl{
		{60, 40, 0, 0},  // opens shelf 0
		{40, 30, 60, 0}, // fits on shelf 0
		{80, 50, 0, 40}, // opens shelf 1
		{20, 10, 80, 50},
	}
	_ = cases[3]
	for i, c := range cases[:3] {
		x, y, ok := pk.place(c.w, c.h)
		if !ok || x != c.x || y != c.y {
			t.Fatalf("place %d = (%v,%v,%v), want (%v,%v,true)", i, x, y, ok, c.x, c.y)
		}
	}
	// 20×20 no longer fits: shelves are full-height
	if _, _, ok := pk.place(30, 20); ok {
		t.Error("placed past stencil height")
	}
	// but something short enough for shelf 1's leftover width does
	if x, y, ok := pk.place(20, 50); !ok || x != 80 || y != 40 {
		t.Errorf("shelf-1 leftover place = (%v,%v,%v)", x, y, ok)
	}
}

func ExamplePlan_WriteReport() {
	m := testModel()
	p := PlanCP(context.Background(), []Class{
		{Key: "deadbeef", Placements: 1000, Shots: 10, W: 50, H: 50},
	}, m)
	fmt.Println(len(p.Characters))
	// Output: 1
}
