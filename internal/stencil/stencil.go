// Package stencil plans a character-projection (CP) stencil for a whole
// mask write, in the spirit of E-BLOW (Yu et al., arXiv:1402.2435): an
// e-beam tool that carries a stencil of pre-etched characters writes a
// placement of a stenciled shape in ONE flash instead of its
// variable-shaped-beam shot list, so putting the highest-traffic
// congruence classes on the bounded stencil cuts total write time —
// and write time is mask cost.
//
// The subsystem has three parts:
//
//   - a miner that aggregates per-congruence-class placement counts and
//     solved shot counts from the cluster's shape caches (Merge over the
//     per-node /stats class tables),
//   - a planner that selects which classes become stencil characters
//     under the slot/area budget (greedy knapsack over write-time value
//     with a packing-aware refinement pass; see plan.go), and
//   - a reporter that prices the plan with the writecost model (total
//     mask write time and cost with vs. without CP, per-class
//     contribution table; see report.go).
package stencil

import (
	"sort"
)

// Class is one congruence-class candidate for the stencil: how often it
// appears on the mask, what its VSB solution costs, and how big its
// canonical footprint is.
type Class struct {
	// Key is the canonical cache key of the class, hex-encoded.
	Key string `json:"key"`
	// Placements is how many mask placements belong to the class.
	Placements int64 `json:"placements"`
	// Shots is the class's solved VSB shot count per placement.
	Shots int `json:"shots"`
	// Flashes is the class's VSB flash count per placement: Shots minus
	// the solution's L-shot pairs. Zero means "not reported" (a
	// rectangle-only solution or an older node) and is read as Shots —
	// see VSBFlashes.
	Flashes int `json:"flashes,omitempty"`
	// W, H is the canonical-frame bounding box of the solved shot list
	// in nm — the area the character occupies on the stencil.
	W float64 `json:"w"`
	H float64 `json:"h"`
}

// VSBFlashes returns the beam flashes one placement of the class costs
// without CP: Flashes when reported, else Shots (rectangle-only
// solutions write one flash per shot).
func (c Class) VSBFlashes() int {
	if c.Flashes > 0 {
		return c.Flashes
	}
	return c.Shots
}

// Merge combines per-node class tables into one mask-wide view. The
// same key can be reported by several nodes (failover and hedging
// scatter a class's requests), so placement counts sum; the solution
// shape (shots, bbox) takes the first non-zero report. The result is
// sorted by placements descending with the key as the deterministic
// tie-break.
func Merge(lists ...[]Class) []Class {
	byKey := make(map[string]*Class)
	order := make([]string, 0)
	for _, list := range lists {
		for _, c := range list {
			m := byKey[c.Key]
			if m == nil {
				cc := c
				byKey[c.Key] = &cc
				order = append(order, c.Key)
				continue
			}
			m.Placements += c.Placements
			if m.Shots == 0 {
				m.Shots, m.Flashes, m.W, m.H = c.Shots, c.Flashes, c.W, c.H
			}
		}
	}
	out := make([]Class, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	SortClasses(out)
	return out
}

// SortClasses orders classes by placements descending, then key
// ascending — the canonical mining order.
func SortClasses(s []Class) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Placements != s[j].Placements {
			return s[i].Placements > s[j].Placements
		}
		return s[i].Key < s[j].Key
	})
}
