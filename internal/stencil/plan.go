package stencil

import (
	"context"
	"sort"
	"time"

	"maskfrac/internal/telemetry"
	"maskfrac/internal/writecost"
)

// DefaultMargin is the clearance kept between packed characters and
// around each character's aperture, in nm.
const DefaultMargin = 20

// Budget bounds the stencil the planner may fill.
type Budget struct {
	// Slots is the maximum number of characters.
	Slots int `json:"slots"`
	// W, H is the usable stencil rectangle in nm.
	W float64 `json:"w"`
	H float64 `json:"h"`
	// Margin is the clearance added around each character, nm.
	Margin float64 `json:"margin"`
}

// BudgetFrom derives the planning budget from a write-cost model's CP
// parameters.
func BudgetFrom(m writecost.Model) Budget {
	return Budget{Slots: m.CPSlots, W: m.CPStencilW, H: m.CPStencilH, Margin: DefaultMargin}
}

// Character is one selected class with its packed stencil position and
// its write-time contribution.
type Character struct {
	Class
	// X, Y is the packed lower-left corner of the character on the
	// stencil, nm (margin already applied).
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// SavedMS is the per-mask write-time saving from stenciling the
	// class: placements × (VSBFlashes×ShotTime − CPFlashTime), in ms.
	// The VSB baseline is flashes, not rectangles: a class solved with
	// L-shot pairs already writes fewer flashes than shots, so its
	// stencil value is correspondingly lower.
	SavedMS float64 `json:"saved_ms"`
}

// Plan is the planner's output: the selected characters, the budget
// they fit, and the priced report.
type Plan struct {
	Budget     Budget      `json:"budget"`
	Characters []Character `json:"characters"`
	// Candidates is the number of classes considered; Viable the number
	// with positive stencil value that fit the stencil individually.
	Candidates int `json:"candidates"`
	Viable     int `json:"viable"`
	// PackDrops counts knapsack picks the packing refinement had to
	// evict because they did not fit geometrically; PackAdds counts
	// skipped candidates the refinement pulled back into freed space.
	PackDrops int    `json:"pack_drops"`
	PackAdds  int    `json:"pack_adds"`
	Report    Report `json:"report"`
}

// cand is a planning candidate: its class, its value, and its packing
// footprint (bbox plus margin).
type cand struct {
	Class
	savedMS float64
	fw, fh  float64
}

// PlanCP selects and packs a character-projection stencil for the mined
// classes under the model's CP budget, and prices it. The selection is
// deterministic: every ordering ties back to (value, key).
//
// The algorithm is a two-stage heuristic standing in for E-BLOW's ILT
// formulation: a greedy knapsack over write-time value density picks
// the candidate set, then a shelf-packing refinement makes the set
// geometrically feasible — evicting picks that cannot be placed and
// back-filling freed space with skipped candidates in value order.
// A plan whose gross saving does not beat the stencil load overhead is
// returned empty: never plan a stencil that loses time.
func PlanCP(ctx context.Context, classes []Class, m writecost.Model) *Plan {
	ctx, span := telemetry.StartSpan(ctx, "stencil.plan")
	defer span.End()
	b := BudgetFrom(m)
	p := &Plan{Budget: b, Candidates: len(classes)}

	shotMS := ms(m.ShotTime)
	flashMS := ms(m.CPFlashTime)

	// stage 0: viability — positive write-time value, fits the stencil
	// alone, solution known
	_, cspan := telemetry.StartSpan(ctx, "stencil.candidates")
	var viable []cand
	for _, c := range classes {
		saved := float64(c.Placements) * (float64(c.VSBFlashes())*shotMS - flashMS)
		fw, fh := c.W+b.Margin, c.H+b.Margin
		if saved <= 0 || c.Shots == 0 || c.W <= 0 || c.H <= 0 || fw > b.W || fh > b.H {
			continue
		}
		viable = append(viable, cand{Class: c, savedMS: saved, fw: fw, fh: fh})
	}
	sort.Slice(viable, func(i, j int) bool {
		if viable[i].savedMS != viable[j].savedMS {
			return viable[i].savedMS > viable[j].savedMS
		}
		return viable[i].Key < viable[j].Key
	})
	p.Viable = len(viable)
	cspan.Set("candidates", len(classes))
	cspan.Set("viable", len(viable))
	cspan.End()

	// stage 1: greedy knapsack over value with slot + area budgets
	_, kspan := telemetry.StartSpan(ctx, "stencil.knapsack")
	areaBudget := b.W * b.H
	var sel []cand
	usedArea := 0.0
	for _, c := range viable {
		if len(sel) >= b.Slots {
			break
		}
		if usedArea+c.fw*c.fh > areaBudget {
			continue
		}
		sel = append(sel, c)
		usedArea += c.fw * c.fh
	}
	kspan.Set("selected", len(sel))
	kspan.End()

	// stage 2: packing-aware refinement — shelf-pack the pick; evict
	// what cannot be placed, then back-fill leftover space with skipped
	// candidates in value order
	_, pspan := telemetry.StartSpan(ctx, "stencil.pack")
	var placed []Character
	for {
		pk := newPacker(b)
		placed = placed[:0]
		failedIdx := -1
		for i, c := range sel {
			if x, y, ok := pk.place(c.fw, c.fh); ok {
				placed = append(placed, Character{
					Class: c.Class, X: x + b.Margin/2, Y: y + b.Margin/2, SavedMS: c.savedMS,
				})
			} else if failedIdx < 0 {
				failedIdx = i
			}
		}
		if failedIdx < 0 {
			// everything placed: back-fill remaining viable candidates
			inSel := make(map[string]bool, len(sel))
			for _, c := range sel {
				inSel[c.Key] = true
			}
			for _, c := range viable {
				if len(placed) >= b.Slots {
					break
				}
				if inSel[c.Key] {
					continue
				}
				if x, y, ok := pk.place(c.fw, c.fh); ok {
					placed = append(placed, Character{
						Class: c.Class, X: x + b.Margin/2, Y: y + b.Margin/2, SavedMS: c.savedMS,
					})
					p.PackAdds++
				}
			}
			break
		}
		// evict the lowest-value unplaceable pick and re-pack; sel is in
		// value order, so the last failing index is the cheapest loss —
		// but any failing candidate blocks the pack, so drop the first
		// failure's slot from the tail end of the order: remove the
		// lowest-value element at or after the failure point
		sel = append(sel[:failedIdx], sel[failedIdx+1:]...)
		p.PackDrops++
	}
	// table order: value descending, key tie-break
	sort.Slice(placed, func(i, j int) bool {
		if placed[i].SavedMS != placed[j].SavedMS {
			return placed[i].SavedMS > placed[j].SavedMS
		}
		return placed[i].Key < placed[j].Key
	})
	pspan.Set("placed", len(placed))
	pspan.Set("drops", p.PackDrops)
	pspan.Set("adds", p.PackAdds)
	pspan.End()
	p.Characters = placed

	// stage 3: price the plan; drop it entirely when the stencil load
	// overhead eats the gross saving
	_, rspan := telemetry.StartSpan(ctx, "stencil.price")
	p.price(classes, m)
	if len(p.Characters) > 0 && p.Report.ClassSavedMS <= p.Report.LoadOverheadMS {
		p.Characters = nil
		p.price(classes, m)
	}
	rspan.Set("saved_ms", p.Report.NetSavedMS)
	rspan.End()
	span.Set("characters", len(p.Characters))
	span.Set("saved_ms", p.Report.NetSavedMS)
	return p
}

// packer is a bottom-left shelf packer over the stencil rectangle.
// Characters land on shelves (full-width rows); a character opens a new
// shelf when no existing shelf has room. Deterministic in insertion
// order.
type packer struct {
	b       Budget
	shelves []shelf
	yUsed   float64
}

type shelf struct {
	y, h, xUsed float64
}

func newPacker(b Budget) *packer { return &packer{b: b} }

// place returns the lower-left corner for a footprint of w×h, or false
// when it fits on no shelf and no new shelf can open.
func (p *packer) place(w, h float64) (x, y float64, ok bool) {
	for i := range p.shelves {
		s := &p.shelves[i]
		if h <= s.h && s.xUsed+w <= p.b.W {
			x, y = s.xUsed, s.y
			s.xUsed += w
			return x, y, true
		}
	}
	if p.yUsed+h <= p.b.H && w <= p.b.W {
		p.shelves = append(p.shelves, shelf{y: p.yUsed, h: h, xUsed: w})
		x, y = 0, p.yUsed
		p.yUsed += h
		return x, y, true
	}
	return 0, 0, false
}

// ms converts a duration to float64 milliseconds. Pricing math runs in
// float ms so the per-class savings table sums exactly to the report's
// total (no Duration truncation between the two).
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
