package stencil

import (
	"fmt"
	"io"
	"time"

	"maskfrac/internal/writecost"
)

// Report prices a stencil plan against the no-CP baseline. All times
// are float64 milliseconds computed in one pass with a fixed summation
// order, so ClassSavedMS is exactly the sum of the plan's per-character
// SavedMS values and WithCPWriteMS is exactly
// BaselineWriteMS − ClassSavedMS + LoadOverheadMS.
type Report struct {
	// TotalPlacements and TotalShots describe the mined mask: every
	// placement of every class, and the VSB shots they need without CP.
	// TotalFlashes is the beam flashes those shots cost — TotalShots
	// minus the classes' L-shot pairs — and is what the baseline write
	// time is priced on.
	TotalPlacements int64 `json:"total_placements"`
	TotalShots      int64 `json:"total_shots"`
	TotalFlashes    int64 `json:"total_flashes"`
	// CPPlacements is the number of placements written by stencil flash;
	// CPShotsReplaced the VSB shots those flashes replace.
	CPPlacements    int64 `json:"cp_placements"`
	CPShotsReplaced int64 `json:"cp_shots_replaced"`
	// BaselineWriteMS is the modeled no-CP write time; WithCPWriteMS the
	// modeled write time with the planned stencil.
	BaselineWriteMS float64 `json:"baseline_write_ms"`
	WithCPWriteMS   float64 `json:"with_cp_write_ms"`
	// ClassSavedMS is the gross saving (Σ per-character SavedMS);
	// LoadOverheadMS the one-time stencil mount cost; NetSavedMS their
	// difference (= BaselineWriteMS − WithCPWriteMS).
	ClassSavedMS   float64 `json:"class_saved_ms"`
	LoadOverheadMS float64 `json:"load_overhead_ms"`
	NetSavedMS     float64 `json:"net_saved_ms"`
	// CostReduction is the fractional mask cost reduction; DollarSavings
	// the projected mask-set savings.
	CostReduction float64 `json:"cost_reduction"`
	DollarSavings float64 `json:"dollar_savings"`
}

// price fills the plan's report from the full mined class table and the
// cost model. Deliberately additive in a fixed order so the identities
// documented on Report hold bit-for-bit.
func (p *Plan) price(classes []Class, m writecost.Model) {
	shotMS := ms(m.ShotTime)
	r := Report{LoadOverheadMS: ms(m.CPLoadOverhead)}
	for _, c := range classes {
		r.TotalPlacements += c.Placements
		r.TotalShots += c.Placements * int64(c.Shots)
		r.TotalFlashes += c.Placements * int64(c.VSBFlashes())
	}
	r.BaselineWriteMS = ms(m.Overhead) + float64(r.TotalFlashes)*shotMS
	for _, ch := range p.Characters {
		r.CPPlacements += ch.Placements
		r.CPShotsReplaced += ch.Placements * int64(ch.Shots)
		r.ClassSavedMS += ch.SavedMS
	}
	if len(p.Characters) == 0 {
		r.LoadOverheadMS = 0
		r.WithCPWriteMS = r.BaselineWriteMS
	} else {
		r.WithCPWriteMS = r.BaselineWriteMS - r.ClassSavedMS + r.LoadOverheadMS
	}
	r.NetSavedMS = r.BaselineWriteMS - r.WithCPWriteMS
	if r.BaselineWriteMS > 0 {
		r.CostReduction = m.WriteFraction * (r.NetSavedMS / r.BaselineWriteMS)
		r.DollarSavings = m.MaskSetCost * r.CostReduction
	}
	p.Report = r
}

// WriteReport prints the plan as a human-readable table: headline
// numbers first, then the per-class contribution table in value order.
func (p *Plan) WriteReport(w io.Writer) {
	r := p.Report
	fmt.Fprintf(w, "stencil plan: %d/%d characters (viable %d of %d classes, %d pack drops, %d refills)\n",
		len(p.Characters), p.Budget.Slots, p.Viable, p.Candidates, p.PackDrops, p.PackAdds)
	fmt.Fprintf(w, "  mask: %d placements, %d VSB shots; CP covers %d placements (%d shots replaced)\n",
		r.TotalPlacements, r.TotalShots, r.CPPlacements, r.CPShotsReplaced)
	fmt.Fprintf(w, "  write time: %v -> %v (saved %v gross, %v stencil load, %v net)\n",
		fmtMS(r.BaselineWriteMS), fmtMS(r.WithCPWriteMS),
		fmtMS(r.ClassSavedMS), fmtMS(r.LoadOverheadMS), fmtMS(r.NetSavedMS))
	fmt.Fprintf(w, "  mask cost: -%.3f%% ($%.0f of a mask set)\n", 100*r.CostReduction, r.DollarSavings)
	if len(p.Characters) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-16s %10s %6s %9s %12s %10s\n", "class", "placements", "shots", "size nm", "stencil xy", "saved")
	for _, ch := range p.Characters {
		key := ch.Key
		if len(key) > 16 {
			key = key[:16]
		}
		fmt.Fprintf(w, "  %-16s %10d %6d %4.0fx%-4.0f %5.0f,%-6.0f %10s\n",
			key, ch.Placements, ch.Shots, ch.W, ch.H, ch.X, ch.Y, fmtMS(ch.SavedMS))
	}
}

// fmtMS renders a float millisecond quantity as a rounded duration.
func fmtMS(v float64) string {
	d := time.Duration(v * float64(time.Millisecond))
	switch {
	case d >= time.Hour:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	}
	return d.Round(time.Microsecond).String()
}
