#!/bin/sh
# check.sh — the repo's CI gate: formatting, vet, and the full test
# suite under the race detector. Equivalent to `make check` for
# environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

# -short skips the multi-minute fracturing integration suites, which are
# too slow under the race detector; the concurrency-heavy tests
# (shapecache, fracserve, batch, cache) all still run.
echo "== go test -race -short =="
go test -race -short ./...

echo "check ok"
