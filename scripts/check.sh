#!/bin/sh
# check.sh — the repo's CI gate: formatting, vet, and the full test
# suite under the race detector. Equivalent to `make check` for
# environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

# -shuffle=on randomizes test execution order so hidden inter-test
# dependencies surface in CI rather than in a refactor
echo "== go test =="
go test -shuffle=on ./...

# the service end-to-end tests exercise the worker pool, the metrics
# middleware and graceful drain concurrently; run them all under the
# race detector explicitly (the -short sweep below also covers them,
# but this line keeps the e2e surface racing even if -short semantics
# change)
echo "== go test -race fracserve e2e =="
go test -race -run 'TestE2E' ./internal/fracserve

# the cluster e2e smoke spawns 3 in-process fracd servers, routes a
# small hierarchical mask through the consistent-hash ring, and asserts
# the single-solve-per-congruence-class invariant (sum of cache misses
# across nodes == distinct canonical keys via /stats), plus node-kill
# failover with zero lost placements — all under the race detector
echo "== go test -race cluster e2e (3-node smoke) =="
go test -race -run 'TestClusterE2E' ./internal/cluster

# the stencil planner e2e mines per-class placement stats from all 3
# nodes of a live cluster (/stats?classes=K), plans a CP stencil, and
# asserts the plan beats the no-CP baseline, the per-class savings sum
# exactly to the reported total, and a re-mine + re-plan is
# byte-identical — the determinism contract the golden test pins
echo "== go test -race stencil plan e2e (3-node mine) =="
go test -race -run 'TestStencilPlanE2E' ./internal/cluster

# the soak smoke holds 3 in-process nodes at a steady QPS for a few
# seconds under the race detector and asserts a gap-free rolling time
# series (zero dropped windows) plus at least one complete cross-node
# trace waterfall stitched from the daemons' span trees
echo "== go test -race loadgen soak smoke (3-node) =="
go test -race -count=1 -run 'TestSoakSmoke' ./cmd/loadgen

# -short skips the multi-minute fracturing integration suites, which are
# too slow under the race detector; the concurrency-heavy tests
# (shapecache, fracserve, batch, cache, telemetry) all still run.
echo "== go test -race -short =="
go test -race -short ./...

# one pass of the refinement benchmark exercises the incremental
# evaluator's strip scans, effort counters and observer hook under the
# race detector on every check
echo "== go test -race -bench Refine (smoke) =="
go test -race -run '^$' -bench 'BenchmarkRefine' -benchtime 1x .

# the engine benchmark smoke runs the work-stealing region scheduler at
# -cpu 1 and 4 under the race detector (identical shot lists asserted
# inside the benchmark), then the ≥2x multicore speedup gate. On
# builders with fewer than 4 CPUs the gate logs an explicit SKIP — a
# visible skip, never a silent pass.
echo "== go test -race -bench EngineRegions -cpu 1,4 (smoke) =="
go test -race -run '^$' -bench 'BenchmarkEngineRegions' -benchtime 1x -cpu 1,4 .

echo "== go test engine multicore speedup gate (>=2x at 4 workers) =="
go test -count=1 -run 'TestEngineParallelSpeedup' -v . | grep -E 'SKIP|PASS|FAIL|speedup' || true
go test -count=1 -run 'TestEngineParallelSpeedup' .

# the L-shot gate fractures the EXPERIMENTS.md L-shape suite with both
# mbf and mbf-l under the race detector and asserts the never-worse
# guarantee: per shape, mbf-l flashes <= mbf shots at no more CD
# violations. The determinism companion pins identical shot and pair
# lists across 1/2/8 engine workers.
echo "== go test -race L-shot gate (flashes <= rectangle shots) =="
go test -race -count=1 -run 'TestLShotSuiteGate|TestLShotEngineDeterminism' .

echo "check ok"
