#!/bin/sh
# benchstat.sh — run the Go benchmarks with -benchmem and write the
# results as JSON to BENCH_<date>.json in the repo root, so runs can be
# diffed across commits.
#
# Usage:
#	scripts/benchstat.sh [BENCH_PATTERN] [BENCHTIME]
#
# BENCH_PATTERN defaults to the quick cache benchmarks, the
# decompose–solve–stitch engine benchmark and the incremental-evaluator
# refinement benchmark (the full Table 2 solver benchmarks take minutes
# each); pass '.' to run everything. BENCHTIME defaults to 1x. Set OUT
# to override the output filename.
#
# BenchmarkEngineRegions compares 1 vs 4 workers on a four-region
# instance; the speedup scales with available CPUs (a single-CPU
# machine shows parity, which is the determinism baseline, not a
# regression). The JSON metadata records GOMAXPROCS, the CPU count and
# the CPU model so 1-vs-4-worker results are interpretable across
# builders.
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-BenchmarkShapeCache|BenchmarkBatchCache|BenchmarkEngineRegions|BenchmarkRefine|BenchmarkLShapeSuite}"
benchtime="${2:-1x}"
date="$(date -u +%Y-%m-%d)"
out="${OUT:-BENCH_${date}.json}"

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
gomaxprocs="${GOMAXPROCS:-$cpus}"
cpu_model="$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu_model" ] || cpu_model="unknown"

echo "running benchmarks matching '$pattern' (benchtime $benchtime)..." >&2
if ! raw="$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./... 2>&1)"; then
	echo "$raw" >&2
	exit 1
fi
echo "$raw" >&2

echo "$raw" | awk -v date="$date" -v gover="$(go version | cut -d' ' -f3)" \
	-v pattern="$pattern" -v benchtime="$benchtime" \
	-v gomaxprocs="$gomaxprocs" -v cpus="$cpus" -v cpu_model="$cpu_model" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, gover
	printf "  \"pattern\": \"%s\",\n  \"benchtime\": \"%s\",\n", pattern, benchtime
	gsub(/\\/, "\\\\", cpu_model); gsub(/"/, "\\\"", cpu_model)
	printf "  \"gomaxprocs\": %s,\n  \"cpus\": %s,\n  \"cpu_model\": \"%s\",\n", gomaxprocs, cpus, cpu_model
	printf "  \"benchmarks\": [\n"
	n = 0
}
# benchmark result lines look like:
#   BenchmarkShapeCacheHit-8   1000  1234 ns/op  456 B/op  7 allocs/op
# b.ReportMetric units append as extra "<value> <unit>/op" pairs, e.g.
#   BenchmarkLShapeSuite-8  1  9e8 ns/op  11 flashes/op  31 %reduction/op
/^Benchmark/ && / ns\/op/ {
	name = $1
	iters = $2
	nsop = $3
	bop = ""; allocs = ""; extras = ""
	for (i = 3; i < NF; i++) {
		unit = $(i+1)
		if (unit == "ns/op") nsop = $i
		else if (unit == "B/op") bop = $i
		else if (unit == "allocs/op") allocs = $i
		else if (unit ~ /\/op$/ && $i ~ /^[0-9.eE+-]+$/) {
			# custom b.ReportMetric unit: keep it verbatim as the key
			gsub(/\\/, "\\\\", unit); gsub(/"/, "\\\"", unit)
			if (extras != "") extras = extras ", "
			extras = extras sprintf("\"%s\": %s", unit, $i)
		}
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, nsop
	if (bop != "") printf ", \"bytes_per_op\": %s", bop
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (extras != "") printf ", \"metrics\": {%s}", extras
	printf "}"
}
END {
	printf "\n  ]\n}\n"
}' >"$out"

echo "wrote $out" >&2
