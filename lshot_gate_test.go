package maskfrac

import (
	"fmt"
	"testing"
)

// lShapeSuite returns the rectilinear shape suite of the L-shape
// evaluation protocol (EXPERIMENTS.md): shapes whose minimal covers
// contain many flush rectangle pairs, so an L-shot pass has real
// pairing opportunities. Coordinates are in nanometers on the default
// 1 nm pitch.
func lShapeSuite() []struct {
	Name string
	Poly Polygon
} {
	return []struct {
		Name string
		Poly Polygon
	}{
		{"L", Polygon{
			{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 60, Y: 20},
			{X: 20, Y: 20}, {X: 20, Y: 60}, {X: 0, Y: 60},
		}},
		{"T", Polygon{
			{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 60, Y: 20}, {X: 40, Y: 20},
			{X: 40, Y: 60}, {X: 20, Y: 60}, {X: 20, Y: 20}, {X: 0, Y: 20},
		}},
		{"U", Polygon{
			{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 60, Y: 50}, {X: 40, Y: 50},
			{X: 40, Y: 20}, {X: 20, Y: 20}, {X: 20, Y: 50}, {X: 0, Y: 50},
		}},
		{"staircase", Polygon{
			{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 30, Y: 20}, {X: 50, Y: 20},
			{X: 50, Y: 40}, {X: 70, Y: 40}, {X: 70, Y: 60}, {X: 40, Y: 60},
			{X: 40, Y: 45}, {X: 20, Y: 45}, {X: 20, Y: 25}, {X: 0, Y: 25},
		}},
		{"cross", Polygon{
			{X: 20, Y: 0}, {X: 40, Y: 0}, {X: 40, Y: 20}, {X: 60, Y: 20},
			{X: 60, Y: 40}, {X: 40, Y: 40}, {X: 40, Y: 60}, {X: 20, Y: 60},
			{X: 20, Y: 40}, {X: 0, Y: 40}, {X: 0, Y: 20}, {X: 20, Y: 20},
		}},
	}
}

// checkLPairs asserts the structural LPairs contract: i < j in range,
// every shot in at most one pair.
func checkLPairs(t *testing.T, res *Result) {
	t.Helper()
	used := make(map[int]bool)
	for _, pr := range res.LPairs {
		if pr[0] >= pr[1] || pr[0] < 0 || pr[1] >= len(res.Shots) {
			t.Fatalf("malformed pair %v over %d shots", pr, len(res.Shots))
		}
		if used[pr[0]] || used[pr[1]] {
			t.Fatalf("shot in two pairs: %v (pairs %v)", pr, res.LPairs)
		}
		used[pr[0]], used[pr[1]] = true, true
	}
}

// TestLShotSuiteGate is the CI gate of the L-shape evaluation protocol
// (EXPERIMENTS.md, scripts/check.sh): on every suite shape, mbf-l must
// write in no more flashes than mbf writes shots, at no more CD
// violations — the never-worse guarantee of the matching pass.
func TestLShotSuiteGate(t *testing.T) {
	totalShots, totalFlashes := 0, 0
	for _, sh := range lShapeSuite() {
		sh := sh
		t.Run(sh.Name, func(t *testing.T) {
			prob, err := NewProblem(sh.Poly, DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			base, err := prob.Fracture(MethodMBF, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := prob.Fracture(MethodMBFL, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkLPairs(t, res)
			if res.FlashCount() > base.ShotCount() {
				t.Errorf("mbf-l flashes %d > mbf shots %d", res.FlashCount(), base.ShotCount())
			}
			if res.FailingPixels() > base.FailingPixels() {
				t.Errorf("mbf-l fail %d > mbf fail %d", res.FailingPixels(), base.FailingPixels())
			}
			totalShots += base.ShotCount()
			totalFlashes += res.FlashCount()
			t.Logf("%s: mbf %d shots (fail %d) → mbf-l %d flashes, %d pairs (fail %d)",
				sh.Name, base.ShotCount(), base.FailingPixels(),
				res.FlashCount(), len(res.LPairs), res.FailingPixels())
		})
	}
	t.Logf("suite total: %d shots → %d flashes (%.0f%% reduction)",
		totalShots, totalFlashes, 100*(1-float64(totalFlashes)/float64(totalShots)))
}

// BenchmarkLShapeSuite measures the L-shape evaluation protocol's
// headline numbers: flashes and CD violations of mbf-l vs the
// rectangle-only mbf baseline over the whole suite, reported as custom
// benchmark metrics for scripts/benchstat.sh.
func BenchmarkLShapeSuite(b *testing.B) {
	suite := lShapeSuite()
	probs := make([]*Problem, len(suite))
	for i, sh := range suite {
		p, err := NewProblem(sh.Poly, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		probs[i] = p
	}
	b.ResetTimer()
	var shots, flashes, baseFail, lFail int
	for i := 0; i < b.N; i++ {
		shots, flashes, baseFail, lFail = 0, 0, 0, 0
		for _, p := range probs {
			base, err := p.Fracture(MethodMBF, nil)
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Fracture(MethodMBFL, nil)
			if err != nil {
				b.Fatal(err)
			}
			shots += base.ShotCount()
			flashes += res.FlashCount()
			baseFail += base.FailingPixels()
			lFail += res.FailingPixels()
		}
	}
	b.ReportMetric(float64(shots), "rect-shots/op")
	b.ReportMetric(float64(flashes), "flashes/op")
	b.ReportMetric(100*(1-float64(flashes)/float64(shots)), "%reduction/op")
	b.ReportMetric(float64(baseFail), "rect-fail/op")
	b.ReportMetric(float64(lFail), "l-fail/op")
	if flashes > shots || lFail > baseFail {
		b.Fatalf("gate violated: %d flashes vs %d shots, fail %d vs %d", flashes, shots, lFail, baseFail)
	}
}

// TestLShotEngineDeterminism pins the stitch contract for paired
// solutions: a multi-region mbf-l run returns identical shots AND
// identical pair index lists regardless of the Workers setting.
func TestLShotEngineDeterminism(t *testing.T) {
	// three far-apart copies of an L: well beyond the interaction
	// radius, so the engine plans three independent regions
	mkL := func(dx, dy float64) Polygon {
		return Polygon{
			{X: dx, Y: dy}, {X: dx + 50, Y: dy}, {X: dx + 50, Y: dy + 16},
			{X: dx + 16, Y: dy + 16}, {X: dx + 16, Y: dy + 50}, {X: dx, Y: dy + 50},
		}
	}
	prob, err := NewMultiProblem([]Polygon{mkL(0, 0), mkL(200, 0), mkL(0, 200)}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := prob.Fracture(MethodMBFL, &Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Regions != 3 {
			t.Fatalf("planned %d regions, want 3", res.Regions)
		}
		checkLPairs(t, res)
		if ref == nil {
			ref = res
			if len(ref.LPairs) == 0 {
				t.Fatal("no L-pairs on a pure L suite instance")
			}
			continue
		}
		if fmt.Sprint(res.Shots) != fmt.Sprint(ref.Shots) {
			t.Errorf("workers=%d: shot list differs from workers=1", workers)
		}
		if fmt.Sprint(res.LPairs) != fmt.Sprint(ref.LPairs) {
			t.Errorf("workers=%d: pairs %v != workers=1 pairs %v", workers, res.LPairs, ref.LPairs)
		}
		if res.FailingPixels() != ref.FailingPixels() {
			t.Errorf("workers=%d: fail %d != %d", workers, res.FailingPixels(), ref.FailingPixels())
		}
	}
}
